file(REMOVE_RECURSE
  "libgsnp.a"
)
