# Empty compiler generated dependencies file for gsnp.
# This may be replaced when dependencies are built.
