
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/ingest.cpp" "src/CMakeFiles/gsnp.dir/common/ingest.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/common/ingest.cpp.o.d"
  "/root/repo/src/compress/codecs.cpp" "src/CMakeFiles/gsnp.dir/compress/codecs.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/compress/codecs.cpp.o.d"
  "/root/repo/src/compress/device_rledict.cpp" "src/CMakeFiles/gsnp.dir/compress/device_rledict.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/compress/device_rledict.cpp.o.d"
  "/root/repo/src/compress/temp_input.cpp" "src/CMakeFiles/gsnp.dir/compress/temp_input.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/compress/temp_input.cpp.o.d"
  "/root/repo/src/compress/zlibwrap.cpp" "src/CMakeFiles/gsnp.dir/compress/zlibwrap.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/compress/zlibwrap.cpp.o.d"
  "/root/repo/src/core/consistency.cpp" "src/CMakeFiles/gsnp.dir/core/consistency.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/consistency.cpp.o.d"
  "/root/repo/src/core/engine.cpp" "src/CMakeFiles/gsnp.dir/core/engine.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/engine.cpp.o.d"
  "/root/repo/src/core/genome_pipeline.cpp" "src/CMakeFiles/gsnp.dir/core/genome_pipeline.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/genome_pipeline.cpp.o.d"
  "/root/repo/src/core/kernels.cpp" "src/CMakeFiles/gsnp.dir/core/kernels.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/kernels.cpp.o.d"
  "/root/repo/src/core/likelihood.cpp" "src/CMakeFiles/gsnp.dir/core/likelihood.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/likelihood.cpp.o.d"
  "/root/repo/src/core/log_table.cpp" "src/CMakeFiles/gsnp.dir/core/log_table.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/log_table.cpp.o.d"
  "/root/repo/src/core/new_pmatrix.cpp" "src/CMakeFiles/gsnp.dir/core/new_pmatrix.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/new_pmatrix.cpp.o.d"
  "/root/repo/src/core/output_codec.cpp" "src/CMakeFiles/gsnp.dir/core/output_codec.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/output_codec.cpp.o.d"
  "/root/repo/src/core/pmatrix.cpp" "src/CMakeFiles/gsnp.dir/core/pmatrix.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/pmatrix.cpp.o.d"
  "/root/repo/src/core/posterior.cpp" "src/CMakeFiles/gsnp.dir/core/posterior.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/posterior.cpp.o.d"
  "/root/repo/src/core/prior.cpp" "src/CMakeFiles/gsnp.dir/core/prior.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/prior.cpp.o.d"
  "/root/repo/src/core/ranksum.cpp" "src/CMakeFiles/gsnp.dir/core/ranksum.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/ranksum.cpp.o.d"
  "/root/repo/src/core/run_manifest.cpp" "src/CMakeFiles/gsnp.dir/core/run_manifest.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/run_manifest.cpp.o.d"
  "/root/repo/src/core/snp_row.cpp" "src/CMakeFiles/gsnp.dir/core/snp_row.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/snp_row.cpp.o.d"
  "/root/repo/src/core/vcf.cpp" "src/CMakeFiles/gsnp.dir/core/vcf.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/vcf.cpp.o.d"
  "/root/repo/src/core/window.cpp" "src/CMakeFiles/gsnp.dir/core/window.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/core/window.cpp.o.d"
  "/root/repo/src/device/device.cpp" "src/CMakeFiles/gsnp.dir/device/device.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/device/device.cpp.o.d"
  "/root/repo/src/genome/dbsnp.cpp" "src/CMakeFiles/gsnp.dir/genome/dbsnp.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/genome/dbsnp.cpp.o.d"
  "/root/repo/src/genome/reference.cpp" "src/CMakeFiles/gsnp.dir/genome/reference.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/genome/reference.cpp.o.d"
  "/root/repo/src/genome/synthetic.cpp" "src/CMakeFiles/gsnp.dir/genome/synthetic.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/genome/synthetic.cpp.o.d"
  "/root/repo/src/reads/alignment.cpp" "src/CMakeFiles/gsnp.dir/reads/alignment.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/reads/alignment.cpp.o.d"
  "/root/repo/src/reads/fuzz.cpp" "src/CMakeFiles/gsnp.dir/reads/fuzz.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/reads/fuzz.cpp.o.d"
  "/root/repo/src/reads/quality_model.cpp" "src/CMakeFiles/gsnp.dir/reads/quality_model.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/reads/quality_model.cpp.o.d"
  "/root/repo/src/reads/sam.cpp" "src/CMakeFiles/gsnp.dir/reads/sam.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/reads/sam.cpp.o.d"
  "/root/repo/src/reads/simulator.cpp" "src/CMakeFiles/gsnp.dir/reads/simulator.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/reads/simulator.cpp.o.d"
  "/root/repo/src/reads/stats.cpp" "src/CMakeFiles/gsnp.dir/reads/stats.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/reads/stats.cpp.o.d"
  "/root/repo/src/sortnet/batch_sort.cpp" "src/CMakeFiles/gsnp.dir/sortnet/batch_sort.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/sortnet/batch_sort.cpp.o.d"
  "/root/repo/src/sortnet/bitonic.cpp" "src/CMakeFiles/gsnp.dir/sortnet/bitonic.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/sortnet/bitonic.cpp.o.d"
  "/root/repo/src/sortnet/multipass.cpp" "src/CMakeFiles/gsnp.dir/sortnet/multipass.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/sortnet/multipass.cpp.o.d"
  "/root/repo/src/sortnet/var_arrays.cpp" "src/CMakeFiles/gsnp.dir/sortnet/var_arrays.cpp.o" "gcc" "src/CMakeFiles/gsnp.dir/sortnet/var_arrays.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
