# Empty compiler generated dependencies file for bench_fig6_sort_vs_comp.
# This may be replaced when dependencies are built.
