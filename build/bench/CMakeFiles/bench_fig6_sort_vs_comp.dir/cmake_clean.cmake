file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_sort_vs_comp.dir/bench_fig6_sort_vs_comp.cpp.o"
  "CMakeFiles/bench_fig6_sort_vs_comp.dir/bench_fig6_sort_vs_comp.cpp.o.d"
  "CMakeFiles/bench_fig6_sort_vs_comp.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig6_sort_vs_comp.dir/bench_util.cpp.o.d"
  "bench_fig6_sort_vs_comp"
  "bench_fig6_sort_vs_comp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_sort_vs_comp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
