# Empty compiler generated dependencies file for bench_fig9a_output_size.
# This may be replaced when dependencies are built.
