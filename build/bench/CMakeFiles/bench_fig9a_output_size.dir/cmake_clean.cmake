file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9a_output_size.dir/bench_fig9a_output_size.cpp.o"
  "CMakeFiles/bench_fig9a_output_size.dir/bench_fig9a_output_size.cpp.o.d"
  "CMakeFiles/bench_fig9a_output_size.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig9a_output_size.dir/bench_util.cpp.o.d"
  "bench_fig9a_output_size"
  "bench_fig9a_output_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9a_output_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
