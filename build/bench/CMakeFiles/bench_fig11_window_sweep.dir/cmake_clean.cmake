file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_window_sweep.dir/bench_fig11_window_sweep.cpp.o"
  "CMakeFiles/bench_fig11_window_sweep.dir/bench_fig11_window_sweep.cpp.o.d"
  "CMakeFiles/bench_fig11_window_sweep.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig11_window_sweep.dir/bench_util.cpp.o.d"
  "bench_fig11_window_sweep"
  "bench_fig11_window_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_window_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
