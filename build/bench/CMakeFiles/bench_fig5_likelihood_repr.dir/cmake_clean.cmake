file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_likelihood_repr.dir/bench_fig5_likelihood_repr.cpp.o"
  "CMakeFiles/bench_fig5_likelihood_repr.dir/bench_fig5_likelihood_repr.cpp.o.d"
  "CMakeFiles/bench_fig5_likelihood_repr.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig5_likelihood_repr.dir/bench_util.cpp.o.d"
  "bench_fig5_likelihood_repr"
  "bench_fig5_likelihood_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_likelihood_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
