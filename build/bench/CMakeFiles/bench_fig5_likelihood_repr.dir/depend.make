# Empty dependencies file for bench_fig5_likelihood_repr.
# This may be replaced when dependencies are built.
