# Empty dependencies file for bench_fig4a_memaccess.
# This may be replaced when dependencies are built.
