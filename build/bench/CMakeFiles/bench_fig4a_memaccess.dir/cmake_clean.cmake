file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4a_memaccess.dir/bench_fig4a_memaccess.cpp.o"
  "CMakeFiles/bench_fig4a_memaccess.dir/bench_fig4a_memaccess.cpp.o.d"
  "CMakeFiles/bench_fig4a_memaccess.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig4a_memaccess.dir/bench_util.cpp.o.d"
  "bench_fig4a_memaccess"
  "bench_fig4a_memaccess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4a_memaccess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
