# Empty dependencies file for bench_fig4b_sparsity.
# This may be replaced when dependencies are built.
