file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4b_sparsity.dir/bench_fig4b_sparsity.cpp.o"
  "CMakeFiles/bench_fig4b_sparsity.dir/bench_fig4b_sparsity.cpp.o.d"
  "CMakeFiles/bench_fig4b_sparsity.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig4b_sparsity.dir/bench_util.cpp.o.d"
  "bench_fig4b_sparsity"
  "bench_fig4b_sparsity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4b_sparsity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
