# Empty compiler generated dependencies file for bench_fig8_comp_opts.
# This may be replaced when dependencies are built.
