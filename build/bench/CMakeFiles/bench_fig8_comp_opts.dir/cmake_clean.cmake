file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_comp_opts.dir/bench_fig8_comp_opts.cpp.o"
  "CMakeFiles/bench_fig8_comp_opts.dir/bench_fig8_comp_opts.cpp.o.d"
  "CMakeFiles/bench_fig8_comp_opts.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig8_comp_opts.dir/bench_util.cpp.o.d"
  "bench_fig8_comp_opts"
  "bench_fig8_comp_opts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_comp_opts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
