file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10a_decompress.dir/bench_fig10a_decompress.cpp.o"
  "CMakeFiles/bench_fig10a_decompress.dir/bench_fig10a_decompress.cpp.o.d"
  "CMakeFiles/bench_fig10a_decompress.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig10a_decompress.dir/bench_util.cpp.o.d"
  "bench_fig10a_decompress"
  "bench_fig10a_decompress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10a_decompress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
