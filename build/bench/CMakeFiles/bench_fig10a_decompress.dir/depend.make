# Empty dependencies file for bench_fig10a_decompress.
# This may be replaced when dependencies are built.
