# Empty compiler generated dependencies file for bench_table4_gsnp_breakdown.
# This may be replaced when dependencies are built.
