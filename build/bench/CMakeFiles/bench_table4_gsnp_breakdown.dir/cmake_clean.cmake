file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_gsnp_breakdown.dir/bench_table4_gsnp_breakdown.cpp.o"
  "CMakeFiles/bench_table4_gsnp_breakdown.dir/bench_table4_gsnp_breakdown.cpp.o.d"
  "CMakeFiles/bench_table4_gsnp_breakdown.dir/bench_util.cpp.o"
  "CMakeFiles/bench_table4_gsnp_breakdown.dir/bench_util.cpp.o.d"
  "bench_table4_gsnp_breakdown"
  "bench_table4_gsnp_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_gsnp_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
