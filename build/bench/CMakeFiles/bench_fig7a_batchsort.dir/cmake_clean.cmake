file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7a_batchsort.dir/bench_fig7a_batchsort.cpp.o"
  "CMakeFiles/bench_fig7a_batchsort.dir/bench_fig7a_batchsort.cpp.o.d"
  "CMakeFiles/bench_fig7a_batchsort.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig7a_batchsort.dir/bench_util.cpp.o.d"
  "bench_fig7a_batchsort"
  "bench_fig7a_batchsort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7a_batchsort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
