# Empty compiler generated dependencies file for bench_fig7a_batchsort.
# This may be replaced when dependencies are built.
