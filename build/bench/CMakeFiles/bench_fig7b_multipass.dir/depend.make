# Empty dependencies file for bench_fig7b_multipass.
# This may be replaced when dependencies are built.
