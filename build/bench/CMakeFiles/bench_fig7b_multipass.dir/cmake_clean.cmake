file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7b_multipass.dir/bench_fig7b_multipass.cpp.o"
  "CMakeFiles/bench_fig7b_multipass.dir/bench_fig7b_multipass.cpp.o.d"
  "CMakeFiles/bench_fig7b_multipass.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig7b_multipass.dir/bench_util.cpp.o.d"
  "bench_fig7b_multipass"
  "bench_fig7b_multipass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7b_multipass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
