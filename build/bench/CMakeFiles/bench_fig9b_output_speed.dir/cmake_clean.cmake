file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9b_output_speed.dir/bench_fig9b_output_speed.cpp.o"
  "CMakeFiles/bench_fig9b_output_speed.dir/bench_fig9b_output_speed.cpp.o.d"
  "CMakeFiles/bench_fig9b_output_speed.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig9b_output_speed.dir/bench_util.cpp.o.d"
  "bench_fig9b_output_speed"
  "bench_fig9b_output_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9b_output_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
