# Empty compiler generated dependencies file for bench_fig9b_output_speed.
# This may be replaced when dependencies are built.
