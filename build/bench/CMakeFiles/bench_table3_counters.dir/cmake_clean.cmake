file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_counters.dir/bench_table3_counters.cpp.o"
  "CMakeFiles/bench_table3_counters.dir/bench_table3_counters.cpp.o.d"
  "CMakeFiles/bench_table3_counters.dir/bench_util.cpp.o"
  "CMakeFiles/bench_table3_counters.dir/bench_util.cpp.o.d"
  "bench_table3_counters"
  "bench_table3_counters.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_counters.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
