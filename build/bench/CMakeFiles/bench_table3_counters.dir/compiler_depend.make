# Empty compiler generated dependencies file for bench_table3_counters.
# This may be replaced when dependencies are built.
