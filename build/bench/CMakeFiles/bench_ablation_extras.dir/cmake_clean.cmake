file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_extras.dir/bench_ablation_extras.cpp.o"
  "CMakeFiles/bench_ablation_extras.dir/bench_ablation_extras.cpp.o.d"
  "CMakeFiles/bench_ablation_extras.dir/bench_util.cpp.o"
  "CMakeFiles/bench_ablation_extras.dir/bench_util.cpp.o.d"
  "bench_ablation_extras"
  "bench_ablation_extras.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_extras.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
