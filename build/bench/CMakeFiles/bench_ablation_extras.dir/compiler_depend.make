# Empty compiler generated dependencies file for bench_ablation_extras.
# This may be replaced when dependencies are built.
