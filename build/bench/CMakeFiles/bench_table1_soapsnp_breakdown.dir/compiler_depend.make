# Empty compiler generated dependencies file for bench_table1_soapsnp_breakdown.
# This may be replaced when dependencies are built.
