file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_tempinput.dir/bench_fig10b_tempinput.cpp.o"
  "CMakeFiles/bench_fig10b_tempinput.dir/bench_fig10b_tempinput.cpp.o.d"
  "CMakeFiles/bench_fig10b_tempinput.dir/bench_util.cpp.o"
  "CMakeFiles/bench_fig10b_tempinput.dir/bench_util.cpp.o.d"
  "bench_fig10b_tempinput"
  "bench_fig10b_tempinput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_tempinput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
