# Empty dependencies file for bench_fig10b_tempinput.
# This may be replaced when dependencies are built.
