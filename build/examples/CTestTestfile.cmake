# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "5000" "8")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;10;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_whole_genome "/root/repo/build/examples/whole_genome_pipeline" "4000" "2")
set_tests_properties(example_whole_genome PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_accuracy "/root/repo/build/examples/accuracy_eval" "8000")
set_tests_properties(example_accuracy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compression_tool_usage "/root/repo/build/examples/compression_tool")
set_tests_properties(example_compression_tool_usage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_cli_usage "/root/repo/build/examples/gsnp_cli")
set_tests_properties(example_cli_usage PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_calibration "/root/repo/build/examples/calibration_report" "30000" "6" "2")
set_tests_properties(example_calibration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
