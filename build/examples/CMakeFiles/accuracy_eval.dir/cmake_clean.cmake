file(REMOVE_RECURSE
  "CMakeFiles/accuracy_eval.dir/accuracy_eval.cpp.o"
  "CMakeFiles/accuracy_eval.dir/accuracy_eval.cpp.o.d"
  "accuracy_eval"
  "accuracy_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accuracy_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
