# Empty compiler generated dependencies file for accuracy_eval.
# This may be replaced when dependencies are built.
