# Empty dependencies file for calibration_report.
# This may be replaced when dependencies are built.
