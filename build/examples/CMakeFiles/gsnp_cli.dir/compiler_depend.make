# Empty compiler generated dependencies file for gsnp_cli.
# This may be replaced when dependencies are built.
