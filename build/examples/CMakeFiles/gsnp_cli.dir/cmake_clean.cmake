file(REMOVE_RECURSE
  "CMakeFiles/gsnp_cli.dir/gsnp_cli.cpp.o"
  "CMakeFiles/gsnp_cli.dir/gsnp_cli.cpp.o.d"
  "gsnp_cli"
  "gsnp_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gsnp_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
