file(REMOVE_RECURSE
  "CMakeFiles/whole_genome_pipeline.dir/whole_genome_pipeline.cpp.o"
  "CMakeFiles/whole_genome_pipeline.dir/whole_genome_pipeline.cpp.o.d"
  "whole_genome_pipeline"
  "whole_genome_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whole_genome_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
