# Empty dependencies file for whole_genome_pipeline.
# This may be replaced when dependencies are built.
