file(REMOVE_RECURSE
  "CMakeFiles/compression_tool.dir/compression_tool.cpp.o"
  "CMakeFiles/compression_tool.dir/compression_tool.cpp.o.d"
  "compression_tool"
  "compression_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
