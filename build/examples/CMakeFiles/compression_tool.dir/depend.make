# Empty dependencies file for compression_tool.
# This may be replaced when dependencies are built.
