# Empty dependencies file for test_reads.
# This may be replaced when dependencies are built.
