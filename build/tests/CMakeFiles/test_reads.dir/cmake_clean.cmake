file(REMOVE_RECURSE
  "CMakeFiles/test_reads.dir/test_reads.cpp.o"
  "CMakeFiles/test_reads.dir/test_reads.cpp.o.d"
  "test_reads"
  "test_reads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
