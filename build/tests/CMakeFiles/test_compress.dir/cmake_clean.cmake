file(REMOVE_RECURSE
  "CMakeFiles/test_compress.dir/test_compress.cpp.o"
  "CMakeFiles/test_compress.dir/test_compress.cpp.o.d"
  "test_compress"
  "test_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
