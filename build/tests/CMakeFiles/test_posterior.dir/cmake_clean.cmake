file(REMOVE_RECURSE
  "CMakeFiles/test_posterior.dir/test_posterior.cpp.o"
  "CMakeFiles/test_posterior.dir/test_posterior.cpp.o.d"
  "test_posterior"
  "test_posterior.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posterior.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
