# Empty compiler generated dependencies file for test_posterior.
# This may be replaced when dependencies are built.
