file(REMOVE_RECURSE
  "CMakeFiles/test_output_codec.dir/test_output_codec.cpp.o"
  "CMakeFiles/test_output_codec.dir/test_output_codec.cpp.o.d"
  "test_output_codec"
  "test_output_codec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_output_codec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
