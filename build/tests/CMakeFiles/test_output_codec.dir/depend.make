# Empty dependencies file for test_output_codec.
# This may be replaced when dependencies are built.
