# Empty compiler generated dependencies file for test_sam.
# This may be replaced when dependencies are built.
