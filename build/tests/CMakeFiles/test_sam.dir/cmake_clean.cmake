file(REMOVE_RECURSE
  "CMakeFiles/test_sam.dir/test_sam.cpp.o"
  "CMakeFiles/test_sam.dir/test_sam.cpp.o.d"
  "test_sam"
  "test_sam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
