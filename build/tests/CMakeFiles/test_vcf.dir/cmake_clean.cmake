file(REMOVE_RECURSE
  "CMakeFiles/test_vcf.dir/test_vcf.cpp.o"
  "CMakeFiles/test_vcf.dir/test_vcf.cpp.o.d"
  "test_vcf"
  "test_vcf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vcf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
