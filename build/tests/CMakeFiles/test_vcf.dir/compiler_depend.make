# Empty compiler generated dependencies file for test_vcf.
# This may be replaced when dependencies are built.
