file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_extra.dir/test_kernels_extra.cpp.o"
  "CMakeFiles/test_kernels_extra.dir/test_kernels_extra.cpp.o.d"
  "test_kernels_extra"
  "test_kernels_extra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_extra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
