# Empty compiler generated dependencies file for test_sortnet.
# This may be replaced when dependencies are built.
