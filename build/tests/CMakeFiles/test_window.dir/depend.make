# Empty dependencies file for test_window.
# This may be replaced when dependencies are built.
