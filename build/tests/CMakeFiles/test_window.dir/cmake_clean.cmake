file(REMOVE_RECURSE
  "CMakeFiles/test_window.dir/test_window.cpp.o"
  "CMakeFiles/test_window.dir/test_window.cpp.o.d"
  "test_window"
  "test_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
