file(REMOVE_RECURSE
  "CMakeFiles/test_genome.dir/test_genome.cpp.o"
  "CMakeFiles/test_genome.dir/test_genome.cpp.o.d"
  "test_genome"
  "test_genome.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_genome.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
