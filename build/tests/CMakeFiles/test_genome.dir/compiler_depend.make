# Empty compiler generated dependencies file for test_genome.
# This may be replaced when dependencies are built.
