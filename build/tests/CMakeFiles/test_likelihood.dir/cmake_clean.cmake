file(REMOVE_RECURSE
  "CMakeFiles/test_likelihood.dir/test_likelihood.cpp.o"
  "CMakeFiles/test_likelihood.dir/test_likelihood.cpp.o.d"
  "test_likelihood"
  "test_likelihood.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_likelihood.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
