# Empty compiler generated dependencies file for test_likelihood.
# This may be replaced when dependencies are built.
