file(REMOVE_RECURSE
  "CMakeFiles/test_core_repr.dir/test_core_repr.cpp.o"
  "CMakeFiles/test_core_repr.dir/test_core_repr.cpp.o.d"
  "test_core_repr"
  "test_core_repr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_repr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
