# Empty compiler generated dependencies file for test_core_repr.
# This may be replaced when dependencies are built.
