# Empty compiler generated dependencies file for test_core_tables.
# This may be replaced when dependencies are built.
