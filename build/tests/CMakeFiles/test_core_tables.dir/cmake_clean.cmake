file(REMOVE_RECURSE
  "CMakeFiles/test_core_tables.dir/test_core_tables.cpp.o"
  "CMakeFiles/test_core_tables.dir/test_core_tables.cpp.o.d"
  "test_core_tables"
  "test_core_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
