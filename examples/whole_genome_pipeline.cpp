// Whole-genome pipeline example: runs SOAPsnp, GSNP_CPU, and GSNP over a
// scaled-down multi-chromosome dataset (the human karyotype proportions of
// paper Fig. 12) through the fault-tolerant core::run_genome driver, and
// prints the per-component time breakdown for each engine in the format of
// paper Tables I and IV.
//
// Usage: whole_genome_pipeline [chr1_sites] [n_chromosomes]
//                              [--fault-alloc N] [--fault-count C]
//                              [--resume] [--no-fallback]
//        defaults: 120000 sites for chr1, first 4 chromosomes
//
// --fault-alloc injects a device allocation failure at the Nth allocation
// (see device::FaultPlan) to demonstrate retry + CPU degradation;
// --resume re-runs against the existing manifests, skipping chromosomes
// whose outputs still verify.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "src/core/consistency.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/karyotype.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace fs = std::filesystem;
using namespace gsnp;

namespace {

void print_breakdown(const char* engine, const core::GenomeReport& report,
                     const std::vector<std::string>& names) {
  for (std::size_t i = 0; i < report.per_chromosome.size(); ++i) {
    const core::RunReport& r = report.per_chromosome[i];
    const core::ChromosomeStatus& s = report.statuses[i];
    std::printf("%-9s %-6s", engine, names[i].c_str());
    if (s.resumed) {
      std::printf("  (resumed from manifest, crc %08x)\n", s.output_crc);
      continue;
    }
    for (const char* c : core::kComponents) std::printf(" %8.3f", r.component(c));
    std::printf(" %9.3f", r.total());
    if (s.degraded)
      std::printf("  DEGRADED to %s after %d attempts", engine_name(s.used),
                  s.attempts);
    else if (s.attempts > 1)
      std::printf("  (%d attempts)", s.attempts);
    std::printf("\n");
  }
}

int run(int argc, char** argv) {
  u64 chr1_sites = 120'000;
  std::size_t n_chroms = 4;
  i64 fault_alloc = -1, fault_count = 1;
  bool resume = false, fallback = true;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--fault-alloc") == 0 && i + 1 < argc)
      fault_alloc = std::strtoll(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--fault-count") == 0 && i + 1 < argc)
      fault_count = std::strtoll(argv[++i], nullptr, 10);
    else if (std::strcmp(argv[i], "--resume") == 0)
      resume = true;
    else if (std::strcmp(argv[i], "--no-fallback") == 0)
      fallback = false;
    else if (positional == 0)
      chr1_sites = std::strtoull(argv[i], nullptr, 10), ++positional;
    else
      n_chroms = std::strtoull(argv[i], nullptr, 10), ++positional;
  }

  const fs::path dir = fs::temp_directory_path() / "gsnp_whole_genome";
  fs::create_directories(dir);

  // -- simulate the dataset and collect per-chromosome jobs.  References and
  // dbSNP tables are owned here (jobs hold pointers), so fill the storage
  // vectors completely before building jobs.
  n_chroms = std::min(n_chroms, genome::kHumanKaryotype.size());
  std::vector<genome::Reference> refs;
  std::vector<genome::DbSnpTable> dbsnps;
  std::vector<std::string> names;
  for (std::size_t c = 0; c < n_chroms; ++c) {
    const auto& info = genome::kHumanKaryotype[c];
    genome::GenomeSpec gspec;
    gspec.name = std::string(info.name);
    gspec.length = genome::scaled_sites(info, chr1_sites);
    gspec.seed = 100 + c;
    refs.push_back(genome::generate_reference(gspec));
    const genome::Reference& ref = refs.back();
    genome::SnpPlantSpec pspec;
    pspec.seed = 200 + c;
    const auto snps = genome::plant_snps(ref, pspec);
    dbsnps.push_back(genome::make_dbsnp(ref, snps, 0.002, c));

    reads::ReadSimSpec rspec;
    rspec.depth = 10.0;
    rspec.seed = 300 + c;
    const genome::Diploid individual(ref, snps);
    reads::write_alignment_file(dir / (gspec.name + ".soap"),
                                reads::simulate_reads(individual, rspec));
    names.push_back(gspec.name);
  }

  core::GenomeRunConfig config;
  config.output_dir = dir;
  config.resume = resume;
  config.retry.allow_cpu_fallback = fallback;
  for (std::size_t c = 0; c < n_chroms; ++c) {
    core::ChromosomeJob job;
    job.name = names[c];
    job.alignment_file = dir / (names[c] + ".soap");
    job.reference = &refs[c];
    job.dbsnp = &dbsnps[c];
    config.chromosomes.push_back(std::move(job));
  }

  std::printf("engine    chr     %8s %8s %8s %8s %8s %8s %8s %9s\n", "cal_p",
              "read", "count", "likeli", "post", "output", "recycle", "total");

  double totals[3] = {0, 0, 0};

  config.window_size = 4'000;
  config.manifest_file = dir / "manifest.soapsnp.json";
  const auto soapsnp = core::run_genome(config, core::EngineKind::kSoapsnp);
  print_breakdown("SOAPsnp", soapsnp, names);
  totals[0] = soapsnp.total_seconds;

  config.window_size = 65'536;
  config.manifest_file = dir / "manifest.gsnp_cpu.json";
  const auto gsnp_cpu = core::run_genome(config, core::EngineKind::kGsnpCpu);
  print_breakdown("GSNP_CPU", gsnp_cpu, names);
  totals[1] = gsnp_cpu.total_seconds;

  device::DeviceSpec spec;
  spec.fault.fail_alloc_at = fault_alloc;
  spec.fault.fault_count = fault_count;
  device::Device dev(spec);
  config.manifest_file = dir / "manifest.gsnp.json";
  const auto gsnp = core::run_genome(config, core::EngineKind::kGsnp, &dev);
  print_breakdown("GSNP", gsnp, names);
  totals[2] = gsnp.total_seconds;

  for (std::size_t c = 0; c < n_chroms; ++c) {
    const auto check = core::compare_output_files(
        dir / (names[c] + ".soapsnp.txt"), dir / (names[c] + ".gsnp.snp"));
    if (!check.identical) {
      std::printf("CONSISTENCY FAILURE on %s:\n%s\n", names[c].c_str(),
                  check.detail.c_str());
      return 1;
    }
  }

  const auto speedup = [&](double t) { return t > 0.0 ? totals[0] / t : 0.0; };
  std::printf("\nTotals: SOAPsnp %.2fs, GSNP_CPU %.2fs (%.1fx), GSNP %.2fs "
              "(%.1fx)\n",
              totals[0], totals[1], speedup(totals[1]), totals[2],
              speedup(totals[2]));
  if (gsnp.any_degraded())
    std::printf("Some chromosomes degraded to the CPU engine; outputs are "
                "still bit-identical (§IV-G).\n");
  std::printf("All chromosome outputs consistent across engines.\n");
  std::printf("Manifests: %s\n", (dir / "manifest.*.json").string().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const std::exception& e) {
    // A persistent device fault with --no-fallback lands here: report it
    // instead of std::terminate so shell drivers see a clean exit code.
    std::fprintf(stderr, "whole_genome_pipeline: %s\n", e.what());
    return 1;
  }
}
