// Whole-genome pipeline example: runs SOAPsnp, GSNP_CPU, and GSNP over a
// scaled-down multi-chromosome dataset (the human karyotype proportions of
// paper Fig. 12) and prints the per-component time breakdown for each engine
// in the format of paper Tables I and IV.
//
// Usage: whole_genome_pipeline [chr1_sites] [n_chromosomes]
//        defaults: 120000 sites for chr1, first 4 chromosomes

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/karyotype.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace fs = std::filesystem;
using namespace gsnp;

namespace {

void print_breakdown(const char* engine, const std::string& chr,
                     const core::RunReport& r) {
  std::printf("%-9s %-6s", engine, chr.c_str());
  for (const char* c : core::kComponents)
    std::printf(" %8.3f", r.component(c));
  std::printf(" %9.3f\n", r.total());
}

}  // namespace

int main(int argc, char** argv) {
  const u64 chr1_sites =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 120'000;
  const std::size_t n_chroms =
      argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 4;

  const fs::path dir = fs::temp_directory_path() / "gsnp_whole_genome";
  fs::create_directories(dir);

  std::printf("engine    chr     %8s %8s %8s %8s %8s %8s %8s %9s\n", "cal_p",
              "read", "count", "likeli", "post", "output", "recycle", "total");

  double totals[3] = {0, 0, 0};
  for (std::size_t c = 0; c < n_chroms && c < genome::kHumanKaryotype.size();
       ++c) {
    const auto& info = genome::kHumanKaryotype[c];
    const u64 sites = genome::scaled_sites(info, chr1_sites);

    genome::GenomeSpec gspec;
    gspec.name = std::string(info.name);
    gspec.length = sites;
    gspec.seed = 100 + c;
    const genome::Reference ref = genome::generate_reference(gspec);
    genome::SnpPlantSpec pspec;
    pspec.seed = 200 + c;
    const auto snps = genome::plant_snps(ref, pspec);
    const genome::Diploid individual(ref, snps);
    const genome::DbSnpTable dbsnp = genome::make_dbsnp(ref, snps, 0.002, c);

    reads::ReadSimSpec rspec;
    rspec.depth = 10.0;
    rspec.seed = 300 + c;
    const auto records = reads::simulate_reads(individual, rspec);
    const fs::path align = dir / (gspec.name + ".soap");
    reads::write_alignment_file(align, records);

    core::EngineConfig config;
    config.alignment_file = align;
    config.reference = &ref;
    config.dbsnp = &dbsnp;
    config.temp_file = dir / (gspec.name + ".tmp");

    config.output_file = dir / (gspec.name + ".soapsnp.txt");
    config.window_size = 4'000;
    const auto soapsnp = core::run_soapsnp(config);
    print_breakdown("SOAPsnp", gspec.name, soapsnp);
    totals[0] += soapsnp.total();

    config.window_size = 65'536;
    config.output_file = dir / (gspec.name + ".gsnpcpu.bin");
    const auto gsnp_cpu = core::run_gsnp_cpu(config);
    print_breakdown("GSNP_CPU", gspec.name, gsnp_cpu);
    totals[1] += gsnp_cpu.total();

    device::Device dev;
    config.output_file = dir / (gspec.name + ".gsnp.bin");
    const auto gsnp = core::run_gsnp(config, dev);
    print_breakdown("GSNP", gspec.name, gsnp);
    totals[2] += gsnp.total();

    const auto check = core::compare_output_files(
        dir / (gspec.name + ".soapsnp.txt"), dir / (gspec.name + ".gsnp.bin"));
    if (!check.identical) {
      std::printf("CONSISTENCY FAILURE on %s:\n%s\n", gspec.name.c_str(),
                  check.detail.c_str());
      return 1;
    }
  }

  std::printf("\nTotals: SOAPsnp %.2fs, GSNP_CPU %.2fs (%.1fx), GSNP %.2fs "
              "(%.1fx)\n",
              totals[0], totals[1], totals[0] / totals[1], totals[2],
              totals[0] / totals[2]);
  std::printf("All chromosome outputs consistent across engines.\n");
  return 0;
}
