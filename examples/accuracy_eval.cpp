// Accuracy evaluation: precision/recall of GSNP's calls against planted
// ground truth, swept over sequencing depth and the consensus-quality
// threshold.  The Bayesian model (SOAPsnp's, Li et al. 2009) trades recall
// for precision through the quality filter; this example shows the curve and
// verifies the dbSNP prior's effect on known sites.
//
// Usage: accuracy_eval [sites]          (default 150000)

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <vector>

#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace fs = std::filesystem;
using namespace gsnp;

namespace {

struct Score {
  u64 tp = 0, fp = 0, fn = 0;
  double precision() const {
    return tp + fp ? static_cast<double>(tp) / (tp + fp) : 1.0;
  }
  double recall() const {
    return tp + fn ? static_cast<double>(tp) / (tp + fn) : 1.0;
  }
};

Score score_calls(const std::vector<core::SnpRow>& rows,
                  const std::vector<genome::PlantedSnp>& snps, int min_q,
                  bool known_only) {
  Score s;
  std::size_t idx = 0;
  for (const auto& row : rows) {
    while (idx < snps.size() && snps[idx].pos < row.pos) ++idx;
    const genome::PlantedSnp* truth =
        (idx < snps.size() && snps[idx].pos == row.pos) ? &snps[idx] : nullptr;
    if (known_only && truth && !truth->in_dbsnp) truth = nullptr;

    const bool called =
        row.genotype_rank >= 0 && row.ref_base < kNumBases &&
        row.genotype_rank != genotype_rank(row.ref_base, row.ref_base) &&
        row.quality >= static_cast<u16>(min_q);
    if (called && truth) {
      // Genotype must match exactly, not just "is a SNP".
      const Genotype g = genotype_from_rank(row.genotype_rank);
      if (g == truth->genotype)
        ++s.tp;
      else
        ++s.fp;
    } else if (called) {
      ++s.fp;
    } else if (truth && row.depth >= 4) {
      ++s.fn;
    }
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  const u64 sites = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 150'000;
  const fs::path dir = fs::temp_directory_path() / "gsnp_accuracy";
  fs::create_directories(dir);

  std::printf("depth  min_q  precision  recall   (genotype-exact, covered "
              "truth sites)\n");

  for (const double depth : {6.0, 12.0, 20.0}) {
    genome::GenomeSpec gspec;
    gspec.name = "chrA";
    gspec.length = sites;
    const genome::Reference ref = genome::generate_reference(gspec);
    genome::SnpPlantSpec pspec;
    pspec.snp_rate = 0.002;  // denser SNPs for tighter statistics
    const auto snps = genome::plant_snps(ref, pspec);
    const genome::Diploid individual(ref, snps);
    const genome::DbSnpTable dbsnp = genome::make_dbsnp(ref, snps, 0.002, 7);

    reads::ReadSimSpec rspec;
    rspec.depth = depth;
    const auto records = reads::simulate_reads(individual, rspec);
    reads::write_alignment_file(dir / "a.soap", records);

    core::EngineConfig config;
    config.alignment_file = dir / "a.soap";
    config.reference = &ref;
    config.dbsnp = &dbsnp;
    config.temp_file = dir / "a.tmp";
    config.output_file = dir / "a.bin";
    config.window_size = 65'536;

    device::Device dev;
    core::run_gsnp(config, dev);
    std::string seq_name;
    const auto rows = core::read_snp_output(dir / "a.bin", seq_name);

    for (const int min_q : {0, 13, 20, 30}) {
      const Score s = score_calls(rows, snps, min_q, false);
      std::printf("%5.0f  %5d  %9.4f  %6.4f\n", depth, min_q, s.precision(),
                  s.recall());
    }
  }
  return 0;
}
