// Quality-calibration report: compares nominal Phred qualities against the
// empirical miscall rates measured by the cal_p_matrix counting pass — the
// data behind GSNP/SOAPsnp's recalibrated p_matrix.  Shows per-quality-bin
// and per-cycle error structure, the reason the likelihood model indexes
// p_matrix by (quality, cycle) instead of trusting the nominal quality.
//
// Usage: calibration_report [sites] [depth] [error_scale]

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "src/common/phred.hpp"
#include "src/core/pmatrix.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

using namespace gsnp;

int main(int argc, char** argv) {
  const u64 sites = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 200'000;
  const double depth = argc > 2 ? std::strtod(argv[2], nullptr) : 10.0;
  const double error_scale = argc > 3 ? std::strtod(argv[3], nullptr) : 2.0;

  genome::GenomeSpec gspec;
  gspec.name = "chrC";
  gspec.length = sites;
  const genome::Reference ref = genome::generate_reference(gspec);
  const genome::Diploid individual(ref, {});  // no SNPs: mismatch == error

  reads::ReadSimSpec rspec;
  rspec.depth = depth;
  rspec.error_scale = error_scale;
  const auto records = reads::simulate_reads(individual, rspec);

  // The cal_p_matrix counting pass.
  core::PMatrixCounter counter;
  for (const auto& rec : records) {
    if (rec.hit_count != 1) continue;
    for (u64 p = rec.pos; p < rec.pos + rec.length; ++p) {
      reads::SiteObservation so;
      if (!reads::observe_site(rec, p, so)) continue;
      const u8 r = ref.base(p);
      if (r < kNumBases) counter.add(so.quality, so.coord, r, so.base);
    }
  }

  // Per-quality-bin empirical error rate vs the nominal Phred expectation.
  std::printf("quality bin | observations | nominal err | empirical err | "
              "empirical Q\n");
  for (int q0 = 0; q0 < kQualityLevels; q0 += 8) {
    u64 total = 0, errors = 0;
    for (int q = q0; q < q0 + 8; ++q) {
      for (int c = 0; c < kMaxReadLen; ++c) {
        for (int a = 0; a < kNumBases; ++a) {
          for (int o = 0; o < kNumBases; ++o) {
            const u64 n = counter.counts()[core::PMatrix::index(q, c, a, o)];
            total += n;
            if (o != a) errors += n;
          }
        }
      }
    }
    if (total == 0) continue;
    const double empirical = static_cast<double>(errors) / total;
    std::printf("  q%02d-%02d    | %12llu | %10.5f  | %12.5f  | %10d\n", q0,
                q0 + 7,
                static_cast<unsigned long long>(total),
                phred_to_error(q0 + 4), empirical,
                error_to_phred(empirical));
  }

  // Per-cycle error profile (first/middle/last cycles).
  std::printf("\ncycle | observations | empirical err\n");
  for (const int c : {0, 24, 49, 74, 99}) {
    u64 total = 0, errors = 0;
    for (int q = 0; q < kQualityLevels; ++q) {
      for (int a = 0; a < kNumBases; ++a) {
        for (int o = 0; o < kNumBases; ++o) {
          const u64 n = counter.counts()[core::PMatrix::index(q, c, a, o)];
          total += n;
          if (o != a) errors += n;
        }
      }
    }
    if (total == 0) continue;
    std::printf("  %3d | %12llu | %12.5f\n", c,
                static_cast<unsigned long long>(total),
                static_cast<double>(errors) / total);
  }

  std::printf("\n(error_scale=%.1f inflates miscalls %gx over nominal — the "
              "recalibrated p_matrix absorbs exactly this gap)\n",
              error_scale, error_scale);
  return 0;
}
