// gsnp: the command-line front end — simulate datasets, call SNPs with any
// registered backend, convert SAM input, compare outputs, score calls
// against truth.
//
//   gsnp_cli simulate --out <dir> [--sites N] [--depth X] [--seed S]
//                     [--snp-rate R] [--name chrS] [--sam]
//   gsnp_cli call     --ref <fa> --align <soap|sam> --out <file>
//                     [--engine gsnp|gsnp-cpu|gsnp-simd|soapsnp]
//                     [--dbsnp <file>]
//                     [--window N] [--threads N] [--streams N]
//                     [--pipeline-depth D] [--host-threads T]
//                     [--save-matrix <file>]
//                     [--lenient] [--quarantine <file>] [--max-bad N]
//                     [--max-bad-frac P] [--trace-out <json>]
//                     [--metrics-out <json>] [--profile-out <json>]
//   gsnp_cli profile  --ref <fa> --align <soap> [--dbsnp <file>] [--window N]
//                     [--out <file>] [--profile-out <json>]
//   gsnp_cli profile  --diff <base.json> <other.json>
//   gsnp_cli profile  --validate <profile.json>
//   gsnp_cli compare  <a> <b>
//   gsnp_cli eval     --calls <file> --truth <truth.tsv> [--min-q Q]
//   gsnp_cli stats    --align <soap> --sites N
//   gsnp_cli manifest <manifest.json>   (per-chromosome run + ingest table)
//   gsnp_cli serve    --socket <path> --spool <dir> [--workers N]
//                     [--queue N --quota N --max-payload-mb M]
//                     [--retries N --backoff S --jitter F]
//   gsnp_cli submit   --socket <path> --ref <fa> --align <soap>
//                     [--name chr --dbsnp F --engine E --tenant T]
//                     [--out DIR --window N --deadline S --job ID --wait]
//   gsnp_cli status   --socket <path> [--job ID]
//   gsnp_cli cancel   --socket <path> --job ID
//   gsnp_cli metrics  --socket <path>   (or --demo [--workdir DIR])
//   gsnp_cli health   --socket <path>
//   gsnp_cli shutdown --socket <path>
//
// Truth files are what `simulate` writes: "pos ref genotype" per line.
// Long runs handle SIGINT/SIGTERM cooperatively: `call` discards its staged
// `.part` output (the published file is only ever renamed into place whole)
// and `serve` parks unfinished jobs as "interrupted" so the next daemon's
// recovery resumes them.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>

#include "src/common/atomic_file.hpp"
#include "src/common/cancel.hpp"
#include "src/common/error.hpp"
#include "src/common/fs_fault.hpp"
#include "src/common/json.hpp"
#include "src/compress/temp_input.hpp"
#include "src/core/backend.hpp"
#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/core/output_codec.hpp"
#include "src/core/run_manifest.hpp"
#include "src/core/vcf.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/synthetic.hpp"
#include "src/obs/profiler.hpp"
#include "src/obs/trace.hpp"
#include "src/reads/sam.hpp"
#include "src/reads/simulator.hpp"
#include "src/reads/stats.hpp"
#include "src/service/daemon.hpp"
#include "src/service/dispatch.hpp"
#include "src/service/protocol.hpp"
#include "src/service/socket.hpp"

namespace fs = std::filesystem;
using namespace gsnp;

namespace {

/// Process-wide interrupt token: the SIGINT/SIGTERM handler only flips this
/// (an async-signal-safe relaxed atomic store); the long-running verbs poll
/// it at their cancellation points and unwind cleanly.
CancelToken g_interrupt;

extern "C" void handle_interrupt(int) {
  g_interrupt.cancel(CancelReason::kSignal);
}

void install_signal_handlers() {
  std::signal(SIGINT, handle_interrupt);
  std::signal(SIGTERM, handle_interrupt);
}

/// Minimal --flag value parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      const std::string arg = argv[i];
      if (arg.rfind("--", 0) == 0) {
        if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
          values_[arg] = argv[++i];
        } else {
          values_[arg] = "1";  // boolean flag
        }
      } else {
        positional_.push_back(arg);
      }
    }
  }
  std::string get(const std::string& key, const std::string& fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool has(const std::string& key) const { return values_.count(key) > 0; }
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

int cmd_simulate(const Args& args) {
  const fs::path dir = args.get("--out", "gsnp_sim");
  fs::create_directories(dir);
  genome::GenomeSpec gspec;
  gspec.name = args.get("--name", "chrS");
  gspec.length = std::stoull(args.get("--sites", "200000"));
  gspec.seed = std::stoull(args.get("--seed", "1"));
  const genome::Reference ref = genome::generate_reference(gspec);
  genome::write_fasta_file(dir / "ref.fa", {ref});

  genome::SnpPlantSpec pspec;
  pspec.snp_rate = std::stod(args.get("--snp-rate", "0.001"));
  pspec.seed = gspec.seed + 1;
  const auto snps = genome::plant_snps(ref, pspec);
  const genome::Diploid individual(ref, snps);
  genome::write_dbsnp_file(dir / "dbsnp.txt",
                           genome::make_dbsnp(ref, snps, 0.002, gspec.seed + 2));

  reads::ReadSimSpec rspec;
  rspec.depth = std::stod(args.get("--depth", "10"));
  rspec.seed = gspec.seed + 3;
  const auto records = reads::simulate_reads(individual, rspec);
  reads::write_alignment_file(dir / "align.soap", records);
  if (args.has("--sam"))
    reads::write_sam_file(dir / "align.sam", records, ref.name(), ref.size());

  std::ofstream truth(dir / "truth.tsv");
  for (const auto& snp : snps)
    truth << snp.pos << '\t' << char_from_base(snp.ref_base) << '\t'
          << snp.genotype.to_string() << '\n';

  std::printf("wrote %s: %llu sites, %zu reads, %zu SNPs%s\n",
              dir.string().c_str(),
              static_cast<unsigned long long>(ref.size()), records.size(),
              snps.size(), args.has("--sam") ? " (+SAM)" : "");
  return 0;
}

int cmd_call(const Args& args) {
  const fs::path ref_path = args.get("--ref", "");
  fs::path align_path = args.get("--align", "");
  const fs::path out_path = args.get("--out", "out.snp");
  if (ref_path.empty() || align_path.empty()) {
    std::fprintf(stderr, "call: --ref and --align are required\n");
    return 2;
  }

  const auto refs = genome::read_fasta_file(ref_path);
  if (refs.size() != 1) {
    std::fprintf(stderr, "call: expected exactly one sequence in %s\n",
                 ref_path.string().c_str());
    return 2;
  }

  // Malformed-input handling: strict by default (first bad record aborts
  // with file:line:reason); --lenient skips bad records into the quarantine
  // sidecar, bounded by the --max-bad / --max-bad-frac error budget.
  IngestPolicy ingest;
  if (args.has("--lenient")) {
    ingest.mode = IngestMode::kLenient;
    ingest.quarantine_file =
        args.get("--quarantine", out_path.string() + ".quarantine.txt");
  }
  if (args.has("--max-bad"))
    ingest.max_bad_records = std::stoull(args.get("--max-bad", ""));
  if (args.has("--max-bad-frac"))
    ingest.max_bad_fraction = std::stod(args.get("--max-bad-frac", ""));

  // SAM input: convert to the SOAP format the engines consume.  The
  // conversion applies the same ingest policy; a converted file is fully
  // validated, so the engine pass below sees only clean records.
  if (align_path.extension() == ".sam") {
    const fs::path converted = out_path.string() + ".soap";
    IngestStats sam_stats;
    const u64 n = reads::sam_to_soap(align_path, converted, ingest, &sam_stats);
    std::printf("converted %llu SAM records (%s)\n",
                static_cast<unsigned long long>(n),
                sam_stats.summary().c_str());
    align_path = converted;
  }

  std::optional<genome::DbSnpTable> dbsnp;
  if (args.has("--dbsnp"))
    dbsnp = genome::read_dbsnp_file(args.get("--dbsnp", ""), {}, nullptr,
                                    refs[0].size());

  // Stage the output and publish it atomically at the end: an interrupt
  // (SIGINT/SIGTERM) mid-run discards the staging file instead of leaving a
  // torn `.part` where the caller expects a complete output.
  install_signal_handlers();
  const fs::path staged_out = out_path.string() + ".part";

  core::EngineConfig config;
  config.alignment_file = align_path;
  config.reference = &refs[0];
  config.dbsnp = dbsnp ? &*dbsnp : nullptr;
  config.output_file = staged_out;
  config.temp_file = out_path.string() + ".tmp";
  config.cancel = &g_interrupt;
  config.window_size = static_cast<u32>(std::stoul(args.get("--window", "0")));
  config.soapsnp_threads = std::stoi(args.get("--threads", "1"));
  // Overlapped pipeline: --streams 1 (default) = serial reference path;
  // --streams N>=2 = double-buffered pipeline, byte-identical output.
  config.streams = static_cast<u32>(std::stoul(args.get("--streams", "1")));
  config.pipeline_depth =
      static_cast<u32>(std::stoul(args.get("--pipeline-depth", "2")));
  config.host_threads =
      static_cast<u32>(std::stoul(args.get("--host-threads", "2")));
  // Depth-aware batching: split each window into device batches whose
  // planned footprint never exceeds this many bytes (0 = fixed windows).
  config.batch_bytes = std::stoull(args.get("--batch-bytes", "0"));
  config.ingest = ingest;
  if (args.has("--save-matrix")) config.p_matrix_out = args.get("--save-matrix", "");
  if (args.has("--load-matrix")) config.p_matrix_in = args.get("--load-matrix", "");

  // --trace-out / --metrics-out attach a tracer for the run and export the
  // span stream (Chrome trace_event JSON, for chrome://tracing / Perfetto)
  // and/or the compact metrics JSON when the call finishes.
  const fs::path trace_out = args.get("--trace-out", "");
  const fs::path metrics_out = args.get("--metrics-out", "");
  std::optional<obs::Tracer> tracer;
  if (!trace_out.empty() || !metrics_out.empty()) {
    tracer.emplace();
    config.tracer = &*tracer;
  }

  // Backend selection goes through the registry: unknown names are a typed
  // UnknownBackendError whose message lists every valid name.
  const std::string engine = args.get("--engine", "gsnp");
  const core::BackendInfo* backend = core::find_backend(engine);
  if (backend == nullptr) {
    std::fprintf(stderr, "call: unknown backend '%s' (valid: %s)\n",
                 engine.c_str(), core::backend_name_list().c_str());
    return 2;
  }
  const fs::path profile_out = args.get("--profile-out", "");
  core::RunReport report;
  std::optional<device::Device> dev;
  std::optional<obs::Profiler> profiler;
  try {
    if (backend->needs_device) {
      dev.emplace();
      if (!profile_out.empty()) profiler.emplace(*dev);
    }
    report = core::run_backend(*backend, config, dev ? &*dev : nullptr);
  } catch (const CancelledError& e) {
    std::error_code ec;
    fs::remove(staged_out, ec);
    fs::remove(config.temp_file, ec);
    std::fprintf(stderr,
                 "call: %s — staged output discarded, nothing published\n",
                 e.what());
    return 130;
  }
  atomic_publish(staged_out, out_path);

  std::printf("%-8s %8s\n", "component", "sec");
  for (const char* c : core::kComponents)
    std::printf("%-8s %8.3f\n", c, report.component(c));
  std::printf("%-8s %8.3f   (%llu sites, %llu bytes out)\n", "total",
              report.total(), static_cast<unsigned long long>(report.sites),
              static_cast<unsigned long long>(report.output_bytes));
  if (report.streams_used >= 2)
    std::printf("streams  %8u   modeled wall %.3fs vs serial %.3fs (%.2fx)\n",
                report.streams_used, report.modeled_wall_seconds,
                report.modeled_serial_seconds,
                report.modeled_wall_seconds > 0.0
                    ? report.modeled_serial_seconds / report.modeled_wall_seconds
                    : 0.0);
  if (ingest.lenient() || !report.ingest.clean()) {
    std::printf("ingest   %s\n", report.ingest.summary().c_str());
    if (report.ingest.records_quarantined > 0 &&
        !ingest.quarantine_file.empty())
      std::printf("quarantine: %s\n", ingest.quarantine_file.string().c_str());
  }

  if (tracer) {
    if (!trace_out.empty()) {
      obs::write_chrome_trace(trace_out, *tracer);
      std::printf("trace:   %s (%zu spans)\n", trace_out.string().c_str(),
                  tracer->spans().size());
    }
    if (!metrics_out.empty()) {
      obs::write_metrics_json(metrics_out, *tracer);
      std::printf("metrics: %s\n", metrics_out.string().c_str());
    }
  }
  if (profiler) {
    const obs::ProfileReport prof = profiler->report();
    obs::write_profile_json(profile_out, prof);
    std::printf("profile: %s (%zu kernels, %llu launches)\n",
                profile_out.string().c_str(), prof.kernels.size(),
                static_cast<unsigned long long>(prof.launches));
  } else if (!profile_out.empty()) {
    std::fprintf(stderr,
                 "call: --profile-out needs a device backend (--engine gsnp; "
                 "the profiler instruments the device simulator); no profile "
                 "written\n");
  }

  return 0;
}

int cmd_profile(const Args& args) {
  // Diff mode: gsnp_cli profile --diff BASE.json OTHER.json
  if (args.has("--diff")) {
    if (args.positional().empty()) {
      std::fprintf(stderr, "profile: --diff needs two profile.json paths\n");
      return 2;
    }
    const fs::path base_path = args.get("--diff", "");
    const fs::path other_path = args.positional()[0];
    const obs::ProfileReport base = obs::read_profile_json(base_path);
    const obs::ProfileReport other = obs::read_profile_json(other_path);
    std::fputs(obs::format_profile_diff(base, other,
                                        base_path.stem().string(),
                                        other_path.stem().string())
                   .c_str(),
               stdout);
    return 0;
  }

  // Validate mode: schema check for CI (nonzero exit on mismatch).
  if (args.has("--validate")) {
    const fs::path path = args.get("--validate", "");
    const obs::ProfileReport rep = obs::read_profile_json(path);
    std::printf("%s: OK (gsnp-profile v1, %zu kernels, %llu launches, "
                "%.3f modeled ms)\n",
                path.string().c_str(), rep.kernels.size(),
                static_cast<unsigned long long>(rep.launches),
                rep.modeled_sec * 1e3);
    return 0;
  }

  // Run mode: profile the gsnp engine over a dataset and print the table.
  const fs::path ref_path = args.get("--ref", "");
  const fs::path align_path = args.get("--align", "");
  if (ref_path.empty() || align_path.empty()) {
    std::fprintf(stderr, "profile: --ref and --align are required\n");
    return 2;
  }
  const auto refs = genome::read_fasta_file(ref_path);
  if (refs.size() != 1) {
    std::fprintf(stderr, "profile: expected exactly one sequence in %s\n",
                 ref_path.string().c_str());
    return 2;
  }
  std::optional<genome::DbSnpTable> dbsnp;
  if (args.has("--dbsnp"))
    dbsnp = genome::read_dbsnp_file(args.get("--dbsnp", ""), {}, nullptr,
                                    refs[0].size());

  const fs::path out_path = args.get("--out", "profile_out.snp");
  core::EngineConfig config;
  config.alignment_file = align_path;
  config.reference = &refs[0];
  config.dbsnp = dbsnp ? &*dbsnp : nullptr;
  config.output_file = out_path;
  config.temp_file = out_path.string() + ".tmp";
  config.window_size = static_cast<u32>(std::stoul(args.get("--window", "0")));
  config.streams = static_cast<u32>(std::stoul(args.get("--streams", "1")));
  config.pipeline_depth =
      static_cast<u32>(std::stoul(args.get("--pipeline-depth", "2")));
  config.host_threads =
      static_cast<u32>(std::stoul(args.get("--host-threads", "2")));
  config.batch_bytes = std::stoull(args.get("--batch-bytes", "0"));

  device::Device dev;
  obs::Profiler profiler(dev);
  const core::RunReport report = core::run_gsnp(config, dev);
  const obs::ProfileReport prof = profiler.report();

  std::fputs(obs::format_profile_table(prof).c_str(), stdout);
  std::printf("\n%llu sites, %llu bytes out, %.3f s wall\n",
              static_cast<unsigned long long>(report.sites),
              static_cast<unsigned long long>(report.output_bytes),
              report.total());

  const fs::path profile_out = args.get("--profile-out", "");
  if (!profile_out.empty()) {
    obs::write_profile_json(profile_out, prof);
    std::printf("profile: %s\n", profile_out.string().c_str());
  }
  return 0;
}

int cmd_manifest(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr, "manifest: need a manifest.json path\n");
    return 2;
  }
  const core::RunManifest manifest =
      core::read_run_manifest(args.positional()[0]);
  std::printf("engine=%s chromosomes=%zu\n", manifest.engine.c_str(),
              manifest.chromosomes.size());
  std::printf("%-12s %-6s %-8s %-4s %10s %6s %6s %6s\n", "name", "status",
              "engine", "try", "sites", "ok", "unsup", "quar");
  IngestStats total;
  for (const auto& e : manifest.chromosomes) {
    std::printf("%-12s %-6s %-8s %-4d %10llu %6llu %6llu %6llu%s\n",
                e.name.c_str(), e.status.c_str(), e.engine.c_str(), e.attempts,
                static_cast<unsigned long long>(e.sites),
                static_cast<unsigned long long>(e.ingest.records_ok),
                static_cast<unsigned long long>(e.ingest.records_unsupported),
                static_cast<unsigned long long>(e.ingest.records_quarantined),
                e.degraded ? "  (degraded)" : "");
    if (e.ingest.records_quarantined > 0) {
      std::printf("%14s", "");
      for (std::size_t r = 0; r < kNumIngestReasons; ++r)
        if (e.ingest.by_reason[r] > 0)
          std::printf(" %s=%llu",
                      ingest_reason_name(static_cast<IngestReason>(r)),
                      static_cast<unsigned long long>(e.ingest.by_reason[r]));
      std::printf("\n");
    }
    total.merge(e.ingest);
  }
  std::printf("total: %s\n", total.summary().c_str());
  return 0;
}

int cmd_compare(const Args& args) {
  if (args.positional().size() < 2) {
    std::fprintf(stderr, "compare: need two output files\n");
    return 2;
  }
  const auto report = core::compare_output_files(args.positional()[0],
                                                 args.positional()[1]);
  if (report.identical) {
    std::printf("IDENTICAL (%llu rows)\n",
                static_cast<unsigned long long>(report.rows_compared));
    return 0;
  }
  std::printf("MISMATCH\n%s\n", report.detail.c_str());
  return 1;
}

int cmd_eval(const Args& args) {
  const fs::path calls_path = args.get("--calls", "");
  const fs::path truth_path = args.get("--truth", "");
  const int min_q = std::stoi(args.get("--min-q", "13"));
  if (calls_path.empty() || truth_path.empty()) {
    std::fprintf(stderr, "eval: --calls and --truth are required\n");
    return 2;
  }

  std::map<u64, Genotype> truth;
  {
    std::ifstream in(truth_path);
    if (!in.good()) {
      std::fprintf(stderr, "eval: cannot open truth file %s\n",
                   truth_path.string().c_str());
      return 2;
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      u64 pos;
      char ref, a1, a2;
      if (std::sscanf(line.c_str(), "%llu\t%c\t%c%c",
                      reinterpret_cast<unsigned long long*>(&pos), &ref, &a1,
                      &a2) == 4)
        truth[pos] = Genotype{base_from_char(a1), base_from_char(a2)};
    }
  }

  std::string seq_name;
  const auto rows = core::read_snp_output(calls_path, seq_name);
  u64 tp = 0, fp = 0, fn = 0;
  for (const auto& row : rows) {
    const auto it = truth.find(row.pos);
    const bool called =
        row.genotype_rank >= 0 && row.ref_base < kNumBases &&
        row.genotype_rank != genotype_rank(row.ref_base, row.ref_base) &&
        row.quality >= static_cast<u16>(min_q);
    if (called && it != truth.end() &&
        genotype_from_rank(row.genotype_rank) == it->second) {
      ++tp;
    } else if (called) {
      ++fp;
    } else if (it != truth.end() && row.depth >= 4) {
      ++fn;
    }
  }
  std::printf("TP=%llu FP=%llu FN=%llu precision=%.4f recall=%.4f (min_q=%d)\n",
              static_cast<unsigned long long>(tp),
              static_cast<unsigned long long>(fp),
              static_cast<unsigned long long>(fn),
              tp + fp ? static_cast<double>(tp) / (tp + fp) : 1.0,
              tp + fn ? static_cast<double>(tp) / (tp + fn) : 1.0, min_q);
  return 0;
}

int cmd_vcf(const Args& args) {
  const fs::path calls = args.get("--calls", "");
  const fs::path out = args.get("--out", "out.vcf");
  if (calls.empty()) {
    std::fprintf(stderr, "vcf: --calls is required\n");
    return 2;
  }
  std::string seq_name;
  const auto rows = core::read_snp_output(calls, seq_name);
  core::VcfOptions options;
  options.min_quality = std::stoi(args.get("--min-q", "13"));
  options.include_ref_sites = args.has("--all-sites");
  const u64 n =
      core::write_vcf_file(out, seq_name, rows.size(), rows, options);
  std::printf("wrote %llu VCF records to %s\n",
              static_cast<unsigned long long>(n), out.string().c_str());
  return 0;
}

int cmd_verify(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr, "verify: need at least one .snp or .tmp file\n");
    return 2;
  }
  int rc = 0;
  for (const std::string& path : args.positional()) {
    char magic[8] = {};
    {
      std::ifstream in(path, std::ios::binary);
      if (!in.good()) {
        std::printf("%-40s FAIL (cannot open)\n", path.c_str());
        rc = 1;
        continue;
      }
      in.read(magic, sizeof(magic));
    }
    try {
      if (std::memcmp(magic, core::kOutputMagic, sizeof(magic)) == 0) {
        // Reading every window checks each frame's CRC.
        std::string seq_name;
        const auto rows = core::read_snp_compressed_file(path, seq_name);
        std::printf("%-40s OK (snp output, %zu rows)\n", path.c_str(),
                    rows.size());
      } else if (std::memcmp(magic, compress::kTempMagic, sizeof(magic)) == 0) {
        compress::TempInputReader reader(path);
        u64 records = 0;
        while (reader.next()) ++records;
        std::printf("%-40s OK (temp input, %llu records)\n", path.c_str(),
                    static_cast<unsigned long long>(records));
      } else {
        std::printf("%-40s FAIL (unrecognized magic)\n", path.c_str());
        rc = 1;
      }
    } catch (const Error& e) {
      std::printf("%-40s FAIL (%s)\n", path.c_str(), e.what());
      rc = 1;
    }
  }
  return rc;
}

int cmd_stats(const Args& args) {
  const fs::path align = args.get("--align", "");
  const u64 sites = std::stoull(args.get("--sites", "0"));
  if (align.empty() || sites == 0) {
    std::fprintf(stderr, "stats: --align and --sites are required\n");
    return 2;
  }
  const auto records = reads::read_alignment_file(align);
  const auto stats = reads::compute_stats(records, sites);
  std::printf("reads=%llu depth=%.2fX coverage=%.1f%%\n",
              static_cast<unsigned long long>(stats.num_reads), stats.depth,
              100.0 * stats.coverage);
  return 0;
}

// ---------------------------------------------------------------------------
// gsnpd verbs: serve runs the daemon on an AF_UNIX socket; submit/status/
// cancel/shutdown are thin line-protocol clients (FORMATS.md §12).

int cmd_serve(const Args& args) {
  const fs::path socket_path = args.get("--socket", "gsnpd.sock");
  service::DaemonConfig config;
  config.spool_dir = args.get("--spool", "gsnpd_spool");
  config.workers = std::stoul(args.get("--workers", "2"));
  config.queue_capacity = std::stoul(args.get("--queue", "8"));
  config.tenant_quota = std::stoul(args.get("--quota", "4"));
  config.max_payload_bytes = std::stoull(args.get("--max-payload-mb", "64"))
                             << 20;
  config.batch_bytes = std::stoull(args.get("--batch-bytes", "0"));
  config.max_device_bytes = std::stoull(args.get("--max-device-mb", "0")) << 20;
  config.retry.max_attempts = std::stoi(args.get("--retries", "2"));
  config.retry.backoff_seconds = std::stod(args.get("--backoff", "0.05"));
  config.retry.jitter_fraction = std::stod(args.get("--jitter", "0.5"));
  config.fsck_on_recover = !args.has("--no-fsck");
  config.fsck_deep_verify = args.has("--deep-fsck");
  if (args.has("--fs-fault-plan")) {
    // Chaos drills: arm the storage fault injector from a §13 plan JSON,
    // e.g. '{"kind":"enospc","at":2,"path":"manifest"}'.
    const FsFaultPlan plan =
        fs_fault_plan_from_json(json::parse(args.get("--fs-fault-plan", "")));
    fsfault::arm(plan);
    std::printf("gsnpd: armed fs fault plan kind=%s at=%lld count=%lld\n",
                fs_fault_kind_name(plan.kind),
                static_cast<long long>(plan.trigger_at),
                static_cast<long long>(plan.fault_count));
  }
  install_signal_handlers();

  service::Daemon daemon(config);
  const std::size_t resumed = daemon.recover();
  if (!daemon.last_fsck().jobs.empty())
    std::printf("gsnpd: fsck %s\n", daemon.last_fsck().summary().c_str());
  if (resumed > 0)
    std::printf("gsnpd: resumed %zu incomplete job(s) from %s\n", resumed,
                config.spool_dir.string().c_str());

  service::ServerOptions server_options;
  server_options.max_frame_bytes =
      std::stoull(args.get("--max-frame-mb", "4")) << 20;
  server_options.idle_timeout_seconds =
      std::stod(args.get("--idle-timeout", "0"));

  std::atomic<bool> stop_requested{false};
  service::LineServer server(
      socket_path, [&daemon, &stop_requested](const std::string& line) {
        try {
          const service::Request request = service::parse_request(line);
          const service::Response response =
              service::handle_request(daemon, request);
          if (request.op == "shutdown" && response.ok)
            stop_requested.store(true);
          return service::encode_response(response);
        } catch (const std::exception& e) {
          service::Response response;
          response.error = service::ErrorCode::kBadRequest;
          response.message = e.what();
          return service::encode_response(response);
        }
      },
      server_options);
  std::printf("gsnpd: listening on %s (spool %s, %zu workers, queue %zu)\n",
              socket_path.string().c_str(), config.spool_dir.string().c_str(),
              config.workers, config.queue_capacity);

  while (!stop_requested.load() && !g_interrupt.cancelled())
    std::this_thread::sleep_for(std::chrono::milliseconds(50));

  std::printf("gsnpd: draining (%s)\n",
              stop_requested.load() ? "shutdown requested" : "signal");
  server.stop();
  // The daemon destructor parks unfinished jobs as "interrupted" in their
  // journals; the next serve's recover() resumes them exactly once.
  return 0;
}

/// The gsnpd verbs all talk through the resilient client: per-op poll
/// deadlines and jittered reconnect (safe to resend — submit is idempotent
/// when --job names the id).  --timeout 0 waits forever; --attempts 1
/// restores the old fail-fast behavior.
service::LineClient make_client(const Args& args) {
  service::ClientOptions options;
  options.op_timeout_seconds = std::stod(args.get("--timeout", "10"));
  options.retry.max_attempts = std::stoi(args.get("--attempts", "3"));
  options.retry.backoff_seconds = 0.05;
  options.retry.jitter_fraction = 0.5;
  options.backoff_salt = "gsnp_cli";
  return service::LineClient(args.get("--socket", "gsnpd.sock"), options);
}

int cmd_submit(const Args& args) {
  const fs::path ref_path = args.get("--ref", "");
  const fs::path align_path = args.get("--align", "");
  if (ref_path.empty() || align_path.empty()) {
    std::fprintf(stderr, "submit: --ref and --align are required\n");
    return 2;
  }
  service::Request request;
  request.op = "submit";
  request.job.job_id = args.get("--job", "");
  request.job.tenant = args.get("--tenant", "default");
  request.job.engine = args.get("--engine", "gsnp");
  // Validate client-side too: a typo fails fast with the valid-name list
  // instead of a round-trip to the daemon (which enforces the same rule
  // with a typed invalid_argument rejection).
  if (core::find_backend(request.job.engine) == nullptr) {
    std::fprintf(stderr, "submit: unknown backend '%s' (valid: %s)\n",
                 request.job.engine.c_str(),
                 core::backend_name_list().c_str());
    return 2;
  }
  request.job.output_dir = args.get("--out", "");
  request.job.window_size =
      static_cast<u32>(std::stoul(args.get("--window", "0")));
  request.job.batch_bytes = std::stoull(args.get("--batch-bytes", "0"));
  request.job.deadline_seconds = std::stod(args.get("--deadline", "0"));
  service::ChromosomeSpec chrom;
  chrom.name = args.get("--name", "chrS");
  chrom.alignment_file = align_path.string();
  chrom.reference_file = ref_path.string();
  chrom.dbsnp_file = args.get("--dbsnp", "");
  request.job.chromosomes.push_back(std::move(chrom));

  service::LineClient client = make_client(args);
  service::Response response =
      service::parse_response(client.request(service::encode_request(request)));
  if (!response.ok) {
    std::fprintf(stderr, "submit: rejected [%s] %s\n",
                 service::error_code_name(response.error),
                 response.message.c_str());
    return 3;
  }
  const std::string job_id = response.fields["job_id"];
  std::printf("job %s admitted\n", job_id.c_str());

  if (args.has("--wait")) {
    service::Request poll;
    poll.op = "status";
    poll.job_id = job_id;
    const std::string poll_line = service::encode_request(poll);
    for (;;) {
      response = service::parse_response(client.request(poll_line));
      if (!response.ok) {
        std::fprintf(stderr, "submit: status failed: %s\n",
                     response.message.c_str());
        return 3;
      }
      const std::string& state = response.fields["state"];
      if (state != "queued" && state != "running") {
        std::printf("job %s %s (%s/%s chromosomes, %ss)%s%s\n",
                    job_id.c_str(), state.c_str(),
                    response.fields["chromosomes_done"].c_str(),
                    response.fields["chromosomes_total"].c_str(),
                    response.fields["run_seconds"].c_str(),
                    response.fields.count("degraded") ? " [degraded]" : "",
                    response.fields.count("error")
                        ? (" error=" + response.fields["error"]).c_str()
                        : "");
        return state == "done" ? 0 : 1;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
  }
  return 0;
}

int cmd_status(const Args& args) {
  service::LineClient client = make_client(args);
  service::Request request;
  request.op = args.has("--stats") ? "stats" : "status";
  request.job_id = args.get("--job", "");
  const service::Response response =
      service::parse_response(client.request(service::encode_request(request)));
  if (!response.ok) {
    std::fprintf(stderr, "status: [%s] %s\n",
                 service::error_code_name(response.error),
                 response.message.c_str());
    return 3;
  }
  for (const auto& [key, value] : response.fields)
    std::printf("%s=%s\n", key.c_str(), value.c_str());
  return 0;
}

int cmd_cancel(const Args& args) {
  const std::string job_id = args.get("--job", "");
  if (job_id.empty()) {
    std::fprintf(stderr, "cancel: --job is required\n");
    return 2;
  }
  service::LineClient client = make_client(args);
  service::Request request;
  request.op = "cancel";
  request.job_id = job_id;
  const service::Response response =
      service::parse_response(client.request(service::encode_request(request)));
  if (!response.ok) {
    std::fprintf(stderr, "cancel: [%s] %s\n",
                 service::error_code_name(response.error),
                 response.message.c_str());
    return 3;
  }
  std::printf("job %s cancel requested\n", job_id.c_str());
  return 0;
}

int cmd_shutdown(const Args& args) {
  service::LineClient client = make_client(args);
  service::Request request;
  request.op = "shutdown";
  const service::Response response =
      service::parse_response(client.request(service::encode_request(request)));
  if (!response.ok) {
    std::fprintf(stderr, "shutdown: %s\n", response.message.c_str());
    return 3;
  }
  std::printf("gsnpd stopping\n");
  return 0;
}

/// `metrics --demo`: run a tiny in-process daemon over a simulated dataset
/// and print its Prometheus exposition — a hermetic, socket-free sample of
/// the real telemetry plane, which scripts/check_metrics.py lints in
/// verify.sh against the committed metric-name inventory.
int run_metrics_demo(const Args& args) {
  const fs::path workdir = args.get("--workdir", "gsnp_metrics_demo");
  std::error_code ec;
  fs::remove_all(workdir, ec);
  fs::create_directories(workdir);

  service::JobSpec spec;
  spec.job_id = "demo-job";
  spec.tenant = "demo";
  spec.engine = args.get("--engine", "gsnp");
  for (int i = 0; i < 2; ++i) {
    genome::GenomeSpec gspec;
    gspec.name = "chr" + std::to_string(i + 1);
    gspec.length = 4000;
    gspec.seed = 100 + static_cast<u64>(i);
    const genome::Reference ref = genome::generate_reference(gspec);
    const fs::path ref_path = workdir / (gspec.name + ".fa");
    genome::write_fasta_file(ref_path, {ref});

    genome::SnpPlantSpec pspec;
    pspec.seed = gspec.seed + 1;
    const auto snps = genome::plant_snps(ref, pspec);
    const genome::Diploid individual(ref, snps);
    reads::ReadSimSpec rspec;
    rspec.depth = 4.0;
    rspec.seed = gspec.seed + 2;
    const fs::path align_path = workdir / (gspec.name + ".soap");
    reads::write_alignment_file(align_path,
                                reads::simulate_reads(individual, rspec));

    service::ChromosomeSpec chrom;
    chrom.name = gspec.name;
    chrom.alignment_file = align_path.string();
    chrom.reference_file = ref_path.string();
    spec.chromosomes.push_back(std::move(chrom));
  }

  service::DaemonConfig config;
  config.spool_dir = workdir / "spool";
  config.workers = 2;
  service::Daemon daemon(config);
  daemon.recover();  // registers the fsck_* counters (clean, all zero)
  daemon.submit(std::move(spec));
  daemon.wait_idle();
  std::fputs(daemon.prometheus_text().c_str(), stdout);
  return 0;
}

int cmd_metrics(const Args& args) {
  if (args.has("--demo")) return run_metrics_demo(args);
  service::LineClient client = make_client(args);
  service::Request request;
  request.op = "metrics";
  service::Response response =
      service::parse_response(client.request(service::encode_request(request)));
  if (!response.ok) {
    std::fprintf(stderr, "metrics: [%s] %s\n",
                 service::error_code_name(response.error),
                 response.message.c_str());
    return 3;
  }
  std::fputs(response.fields["text"].c_str(), stdout);
  return 0;
}

int cmd_health(const Args& args) {
  service::LineClient client = make_client(args);
  service::Request request;
  request.op = "health";
  service::Response response =
      service::parse_response(client.request(service::encode_request(request)));
  if (!response.ok) {
    std::fprintf(stderr, "health: [%s] %s\n",
                 service::error_code_name(response.error),
                 response.message.c_str());
    return 3;
  }
  for (const auto& [key, value] : response.fields)
    std::printf("%s=%s\n", key.c_str(), value.c_str());
  // A load balancer can gate on the exit code alone.
  return response.fields["ready"] == "true" ? 0 : 1;
}

int cmd_fsck(const Args& args) {
  if (args.positional().empty()) {
    std::fprintf(stderr,
                 "fsck: usage: gsnp_cli fsck <spool-dir> [--repair] [--deep]\n");
    return 2;
  }
  const fs::path spool = args.positional()[0];
  if (!fs::exists(spool)) {
    std::fprintf(stderr, "fsck: no such spool %s\n", spool.string().c_str());
    return 2;
  }
  service::FsckOptions options;
  options.repair = args.has("--repair");
  options.deep_verify = args.has("--deep");
  const service::FsckReport report = service::fsck_spool(spool, options);
  for (const service::FsckJobReport& job : report.jobs) {
    std::printf("%-28s %s\n", job.job_id.c_str(),
                service::fsck_verdict_name(job.verdict));
    for (const std::string& issue : job.issues)
      std::printf("  issue:  %s\n", issue.c_str());
    for (const std::string& repair : job.repairs)
      std::printf("  repair: %s\n", repair.c_str());
  }
  std::printf("fsck: %s\n", report.summary().c_str());
  // Exit 0 when nothing needs an operator (clean or plain resumable); 1 when
  // torn/orphaned/corrupt jobs remain (run again with --repair to fix).
  return report.all_recoverable() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2) {
    const Args args(argc, argv, 2);
    try {
      if (std::strcmp(argv[1], "simulate") == 0) return cmd_simulate(args);
      if (std::strcmp(argv[1], "call") == 0) return cmd_call(args);
      if (std::strcmp(argv[1], "profile") == 0) return cmd_profile(args);
      if (std::strcmp(argv[1], "compare") == 0) return cmd_compare(args);
      if (std::strcmp(argv[1], "eval") == 0) return cmd_eval(args);
      if (std::strcmp(argv[1], "stats") == 0) return cmd_stats(args);
      if (std::strcmp(argv[1], "vcf") == 0) return cmd_vcf(args);
      if (std::strcmp(argv[1], "verify") == 0) return cmd_verify(args);
      if (std::strcmp(argv[1], "manifest") == 0) return cmd_manifest(args);
      if (std::strcmp(argv[1], "serve") == 0) return cmd_serve(args);
      if (std::strcmp(argv[1], "submit") == 0) return cmd_submit(args);
      if (std::strcmp(argv[1], "status") == 0) return cmd_status(args);
      if (std::strcmp(argv[1], "cancel") == 0) return cmd_cancel(args);
      if (std::strcmp(argv[1], "metrics") == 0) return cmd_metrics(args);
      if (std::strcmp(argv[1], "health") == 0) return cmd_health(args);
      if (std::strcmp(argv[1], "shutdown") == 0) return cmd_shutdown(args);
      if (std::strcmp(argv[1], "fsck") == 0) return cmd_fsck(args);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "gsnp_cli: %s\n", e.what());
      return 1;
    }
  }
  std::printf("usage: gsnp_cli "
              "<simulate|call|profile|compare|eval|vcf|stats|verify|manifest|"
              "serve|submit|status|cancel|metrics|health|shutdown|fsck> "
              "[options]\n"
              "  simulate --out DIR [--sites N --depth X --seed S --sam]\n"
              "  call     --ref FA --align SOAP|SAM --out FILE\n"
              "           [--engine gsnp|gsnp-cpu|gsnp-simd|soapsnp]\n"
              "           [--dbsnp F --window N]\n"
              "           [--streams N --pipeline-depth D --host-threads T]\n"
              "           [--batch-bytes B]   (depth-aware device batching)\n"
              "           [--lenient --quarantine F --max-bad N --max-bad-frac P]\n"
              "           [--trace-out TRACE.json --metrics-out METRICS.json]\n"
              "           [--profile-out PROFILE.json]\n"
              "  profile  --ref FA --align SOAP [--dbsnp F --window N --out FILE]\n"
              "           [--profile-out PROFILE.json]   (per-kernel table)\n"
              "  profile  --diff BASE.json OTHER.json   (Table III-style diff)\n"
              "  profile  --validate PROFILE.json       (schema check)\n"
              "  compare  A B\n"
              "  eval     --calls FILE --truth TSV [--min-q Q]\n"
              "  vcf      --calls FILE --out OUT.vcf [--min-q Q --all-sites]\n"
              "  stats    --align SOAP --sites N\n"
              "  verify   FILE...   (check container frame CRCs)\n"
              "  manifest MANIFEST.json   (per-chromosome run + ingest table)\n"
              "  serve    --socket SOCK --spool DIR [--workers N --queue N]\n"
              "           [--quota N --max-payload-mb M --retries N]\n"
              "           [--batch-bytes B --max-device-mb M]   (admission budget)\n"
              "           [--no-fsck --deep-fsck --fs-fault-plan JSON]\n"
              "           [--max-frame-mb M --idle-timeout S]\n"
              "           (client verbs below also take --timeout S"
              " --attempts N)\n"
              "  submit   --socket SOCK --ref FA --align SOAP [--name CHR]\n"
              "           [--engine E --tenant T --deadline S --wait]\n"
              "           [--window N --batch-bytes B]\n"
              "  status   --socket SOCK [--job ID | --stats]\n"
              "  cancel   --socket SOCK --job ID\n"
              "  metrics  --socket SOCK   (Prometheus text exposition)\n"
              "  metrics  --demo [--workdir DIR]   (hermetic sample daemon)\n"
              "  health   --socket SOCK   (readiness; exit 0 iff ready)\n"
              "  shutdown --socket SOCK\n"
              "  fsck     SPOOL_DIR [--repair --deep]   (spool scrubber)\n");
  return argc == 1 ? 0 : 2;
}
