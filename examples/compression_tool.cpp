// gsnp-compress: command-line decompression tools for GSNP output files
// (the "decompression tools and APIs" paper §V-B ships for downstream use).
//
//   compression_tool info   <file.bin>            — window/frame statistics
//   compression_tool cat    <file.bin>            — decompress to text (stdout)
//   compression_tool totext <file.bin> <out.txt>  — decompress to a text file
//   compression_tool pack   <in.txt>   <out.bin>  — compress a text output
//   compression_tool query  <file.bin> <min_q>    — sequential scan: print
//                                                   SNP rows with consensus
//                                                   quality >= min_q whose
//                                                   genotype differs from ref

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "src/core/output_codec.hpp"

using namespace gsnp;

namespace {

int cmd_info(const char* path) {
  core::SnpOutputReader reader(path);
  std::vector<core::SnpRow> window;
  u64 windows = 0, rows = 0, snps = 0;
  while (reader.next_window(window)) {
    ++windows;
    rows += window.size();
    for (const auto& r : window)
      if (r.genotype_rank >= 0 && r.ref_base < kNumBases &&
          r.genotype_rank != genotype_rank(r.ref_base, r.ref_base))
        ++snps;
  }
  std::printf("sequence: %s\nwindows: %llu\nrows: %llu\ncandidate SNP rows: "
              "%llu\n",
              reader.seq_name().c_str(), static_cast<unsigned long long>(windows),
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(snps));
  return 0;
}

int cmd_cat(const char* path, std::FILE* out) {
  core::SnpOutputReader reader(path);
  std::vector<core::SnpRow> window;
  while (reader.next_window(window)) {
    for (const auto& row : window)
      std::fprintf(out, "%s\n",
                   core::format_snp_row(reader.seq_name(), row).c_str());
  }
  return 0;
}

int cmd_totext(const char* in_path, const char* out_path) {
  std::FILE* out = std::fopen(out_path, "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path);
    return 1;
  }
  const int rc = cmd_cat(in_path, out);
  std::fclose(out);
  return rc;
}

int cmd_pack(const char* in_path, const char* out_path) {
  std::string seq_name;
  const auto rows = core::read_snp_text_file(in_path, seq_name);
  core::SnpOutputWriter writer(out_path, seq_name);
  const auto rle = core::host_rle_dict();
  constexpr std::size_t kWindow = 65'536;
  for (std::size_t i = 0; i < rows.size(); i += kWindow) {
    const std::size_t n = std::min(kWindow, rows.size() - i);
    writer.write_window({rows.data() + i, n}, rle);
  }
  const u64 bytes = writer.finish();
  std::printf("packed %zu rows into %llu bytes\n", rows.size(),
              static_cast<unsigned long long>(bytes));
  return 0;
}

int cmd_range(const char* path, u64 lo, u64 hi) {
  std::string seq_name;
  const auto rows = core::read_snp_range(path, lo, hi, seq_name);
  for (const auto& row : rows)
    std::printf("%s\n", core::format_snp_row(seq_name, row).c_str());
  std::fprintf(stderr, "%zu rows in [%llu, %llu) — non-overlapping windows "
               "skipped without decompression\n",
               rows.size(), static_cast<unsigned long long>(lo),
               static_cast<unsigned long long>(hi));
  return 0;
}

int cmd_query(const char* path, int min_q) {
  core::SnpOutputReader reader(path);
  std::vector<core::SnpRow> window;
  u64 hits = 0;
  while (reader.next_window(window)) {
    for (const auto& row : window) {
      if (row.genotype_rank < 0 || row.ref_base >= kNumBases) continue;
      if (row.genotype_rank == genotype_rank(row.ref_base, row.ref_base))
        continue;
      if (row.quality < static_cast<u16>(min_q)) continue;
      std::printf("%s\n", core::format_snp_row(reader.seq_name(), row).c_str());
      ++hits;
    }
  }
  std::fprintf(stderr, "%llu rows matched\n",
               static_cast<unsigned long long>(hits));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "info") == 0) return cmd_info(argv[2]);
  if (argc >= 3 && std::strcmp(argv[1], "cat") == 0)
    return cmd_cat(argv[2], stdout);
  if (argc >= 4 && std::strcmp(argv[1], "totext") == 0)
    return cmd_totext(argv[2], argv[3]);
  if (argc >= 4 && std::strcmp(argv[1], "pack") == 0)
    return cmd_pack(argv[2], argv[3]);
  if (argc >= 4 && std::strcmp(argv[1], "query") == 0)
    return cmd_query(argv[2], std::atoi(argv[3]));
  if (argc >= 5 && std::strcmp(argv[1], "range") == 0)
    return cmd_range(argv[2], std::strtoull(argv[3], nullptr, 10),
                     std::strtoull(argv[4], nullptr, 10));

  // With no arguments, run a self-demonstration on a tiny synthetic file so
  // the binary is exercised by "run every example" harnesses.
  std::printf("usage:\n"
              "  compression_tool info   <file.bin>\n"
              "  compression_tool cat    <file.bin>\n"
              "  compression_tool totext <file.bin> <out.txt>\n"
              "  compression_tool pack   <in.txt> <out.bin>\n"
              "  compression_tool query  <file.bin> <min_quality>\n"
              "  compression_tool range  <file.bin> <lo> <hi>\n");
  return argc == 1 ? 0 : 1;
}
