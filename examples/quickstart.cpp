// Quickstart: the minimal end-to-end GSNP workflow on a small synthetic
// dataset.
//
//   1. Generate a reference, plant SNPs, simulate short-read alignments.
//   2. Run the GPU-accelerated GSNP engine.
//   3. Run the CPU baseline (SOAPsnp) and verify the results are identical
//      (paper §IV-G: GSNP produces exactly the same output as SOAPsnp).
//   4. Score the calls against the planted truth.
//
// Usage: quickstart [sites] [depth]          (defaults: 100000 sites, 10x)

#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "src/core/consistency.hpp"
#include "src/core/engine.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace fs = std::filesystem;
using namespace gsnp;

int main(int argc, char** argv) {
  const u64 sites = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 100'000;
  const double depth = argc > 2 ? std::strtod(argv[2], nullptr) : 10.0;

  const fs::path dir = fs::temp_directory_path() / "gsnp_quickstart";
  fs::create_directories(dir);

  // --- 1. synthetic dataset ---------------------------------------------------
  std::printf("Generating %llu sites at %.1fx depth...\n",
              static_cast<unsigned long long>(sites), depth);
  genome::GenomeSpec gspec;
  gspec.name = "chrQ";
  gspec.length = sites;
  const genome::Reference ref = genome::generate_reference(gspec);

  genome::SnpPlantSpec pspec;
  const auto snps = genome::plant_snps(ref, pspec);
  const genome::Diploid individual(ref, snps);
  const genome::DbSnpTable dbsnp =
      genome::make_dbsnp(ref, snps, /*decoy_rate=*/0.002, /*seed=*/7);

  reads::ReadSimSpec rspec;
  rspec.depth = depth;
  const auto records = reads::simulate_reads(individual, rspec);
  reads::write_alignment_file(dir / "alignments.soap", records);
  std::printf("  %zu reads, %zu planted SNPs\n", records.size(), snps.size());

  // --- 2. GSNP ------------------------------------------------------------------
  core::EngineConfig config;
  config.alignment_file = dir / "alignments.soap";
  config.reference = &ref;
  config.dbsnp = &dbsnp;
  config.temp_file = dir / "temp.gsnp";
  config.window_size = 32'768;

  device::Device dev;
  config.output_file = dir / "out_gsnp.bin";
  const core::RunReport gsnp = core::run_gsnp(config, dev);
  std::printf("GSNP: %llu windows, output %llu bytes, modeled GPU time %.3fs\n",
              static_cast<unsigned long long>(gsnp.windows),
              static_cast<unsigned long long>(gsnp.output_bytes),
              gsnp.device_modeled.total());

  // --- 3. SOAPsnp baseline + consistency ---------------------------------------
  config.output_file = dir / "out_soapsnp.txt";
  config.window_size = 4'000;
  const core::RunReport soapsnp = core::run_soapsnp(config);
  std::printf("SOAPsnp: output %llu bytes (%.1fx larger than GSNP)\n",
              static_cast<unsigned long long>(soapsnp.output_bytes),
              static_cast<double>(soapsnp.output_bytes) /
                  static_cast<double>(gsnp.output_bytes));

  const auto consistency =
      core::compare_output_files(dir / "out_gsnp.bin", dir / "out_soapsnp.txt");
  std::printf("Consistency (GSNP vs SOAPsnp): %s (%llu rows)\n",
              consistency.identical ? "IDENTICAL" : "MISMATCH",
              static_cast<unsigned long long>(consistency.rows_compared));
  if (!consistency.identical) {
    std::printf("%s\n", consistency.detail.c_str());
    return 1;
  }

  // --- 4. accuracy vs planted truth ----------------------------------------------
  std::string seq_name;
  const auto rows = core::read_snp_output(dir / "out_gsnp.bin", seq_name);
  u64 tp = 0, fp = 0, fn = 0;
  std::size_t snp_idx = 0;
  for (const auto& row : rows) {
    const bool called_snp =
        row.genotype_rank >= 0 && row.ref_base < kNumBases &&
        row.genotype_rank != genotype_rank(row.ref_base, row.ref_base) &&
        row.quality >= 13;
    while (snp_idx < snps.size() && snps[snp_idx].pos < row.pos) ++snp_idx;
    const bool truth_snp = snp_idx < snps.size() && snps[snp_idx].pos == row.pos;
    if (called_snp && truth_snp) ++tp;
    else if (called_snp) ++fp;
    else if (truth_snp && row.depth >= 4) ++fn;  // callable truth sites only
  }
  std::printf("Accuracy (q>=13 calls, covered sites): TP=%llu FP=%llu FN=%llu "
              "precision=%.3f recall=%.3f\n",
              static_cast<unsigned long long>(tp),
              static_cast<unsigned long long>(fp),
              static_cast<unsigned long long>(fn),
              tp + fp ? static_cast<double>(tp) / (tp + fp) : 0.0,
              tp + fn ? static_cast<double>(tp) / (tp + fn) : 0.0);
  return 0;
}
