#pragma once
// Sorting strategies for a large number of small, variable-size arrays
// (paper §IV-C and Fig 7).
//
//  * sort_cpu_batch       — parallel CPU baseline: one thread sorts one array
//                           with std::sort (the paper's OpenMP quicksort).
//  * sort_device_multipass — GSNP's strategy: bucket arrays into size classes,
//                           pad each class to its own power-of-two batch size,
//                           and run the batch bitonic primitive per class.
//  * sort_device_singlepass — pad *every* array to the global maximum size and
//                           run one batch sort (wastes work on padding).
//  * sort_device_noneq    — sort each array with a bitonic network padded to
//                           its own size, but launched with a uniform block
//                           size; small arrays leave most threads idle
//                           (workload imbalance the paper observed).
//  * sort_device_radix_seq — sorts arrays one at a time with the device-wide
//                           radix sort; models the Thrust-style baseline that
//                           underutilizes the device and pays per-array
//                           launch overhead.
//
// All strategies sort each array ascending in place and are interchangeable;
// tests verify they agree with std::sort.

#include <array>
#include <span>
#include <vector>

#include "src/device/device.hpp"
#include "src/obs/trace.hpp"
#include "src/sortnet/batch_sort.hpp"
#include "src/sortnet/var_arrays.hpp"

namespace gsnp::sortnet {

/// Size-class upper bounds for the multipass strategy.  The paper's six
/// passes: [0,1], (1,8], (8,16], (16,32], (32,64], (64, inf).
inline constexpr std::array<u32, 5> kDefaultClassBounds = {1, 8, 16, 32, 64};

void sort_cpu_batch(VarArrays& va);

/// Statistics a strategy reports (for the Fig 7b analysis).  One definition
/// across every strategy: `elements_real` counts the input elements of the
/// arrays a strategy actually sorted (arrays of size <= 1 are skipped and not
/// counted anywhere), so it is identical for the same VarArrays no matter the
/// path; `elements_padded` counts compare-network slots including padding —
/// the device work actually done, and the number Fig 7(b) compares.
struct SortStats {
  u64 arrays_sorted = 0;
  u64 elements_real = 0;    ///< input elements of the sorted arrays
  u64 elements_padded = 0;  ///< network slots incl. padding (work done)
  u32 passes = 0;
};

SortStats sort_device_multipass(
    device::Device& dev, VarArrays& va,
    std::span<const u32> class_bounds = kDefaultClassBounds,
    obs::Tracer* tracer = nullptr);

/// Device-resident multipass sort: the concatenated arrays stay in device
/// global memory; per-class gather/scatter between the CSR layout and the
/// padded batch layout runs as kernels (device-to-device), so the only PCIe
/// traffic is the small per-class member metadata.  This is how the real
/// GSNP pipeline keeps base_word on the card between counting, sorting and
/// likelihood.  `offsets_host` is the CSR offset table (count+1 entries)
/// matching the resident `words` buffer.
SortStats sort_device_multipass_resident(
    device::Device& dev, device::DeviceBuffer<u32>& words,
    std::span<const u64> offsets_host,
    std::span<const u32> class_bounds = kDefaultClassBounds,
    obs::Tracer* tracer = nullptr);

SortStats sort_device_singlepass(device::Device& dev, VarArrays& va);

SortStats sort_device_noneq(device::Device& dev, VarArrays& va);

SortStats sort_device_radix_seq(device::Device& dev, VarArrays& va);

}  // namespace gsnp::sortnet
