#pragma once
// CSR-style container for a large number of small variable-size arrays —
// the shape of per-site base_word arrays the multipass sorter operates on.

#include <span>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace gsnp::sortnet {

/// `count()` arrays concatenated in `values`, delimited by `offsets`
/// (offsets.size() == count() + 1, offsets.front() == 0).
struct VarArrays {
  std::vector<u32> values;
  std::vector<u64> offsets = {0};

  u64 count() const { return offsets.size() - 1; }
  u64 total_elements() const { return values.size(); }

  u64 size_of(u64 i) const { return offsets[i + 1] - offsets[i]; }

  std::span<u32> array(u64 i) {
    return std::span<u32>(values).subspan(offsets[i], size_of(i));
  }
  std::span<const u32> array(u64 i) const {
    return std::span<const u32>(values).subspan(offsets[i], size_of(i));
  }

  /// Append one array.
  void push_back(std::span<const u32> a) {
    values.insert(values.end(), a.begin(), a.end());
    offsets.push_back(values.size());
  }

  /// True if every array is individually sorted ascending.
  bool all_sorted() const;
};

/// Generate `count` arrays whose sizes follow a truncated geometric
/// distribution with the given mean (the empirical shape of per-site non-zero
/// counts, paper Fig 4b), values uniform in [0, value_bound).
VarArrays random_var_arrays(u64 count, double mean_size, u32 max_size,
                            u32 value_bound, u64 seed);

/// Generate `count` equal-size arrays (batch-sort primitive benchmarks).
VarArrays equal_var_arrays(u64 count, u32 size, u32 value_bound, u64 seed);

}  // namespace gsnp::sortnet
