#include "src/sortnet/var_arrays.hpp"

#include <algorithm>
#include <cmath>

namespace gsnp::sortnet {

bool VarArrays::all_sorted() const {
  for (u64 i = 0; i < count(); ++i) {
    const auto a = array(i);
    if (!std::is_sorted(a.begin(), a.end())) return false;
  }
  return true;
}

VarArrays random_var_arrays(u64 count, double mean_size, u32 max_size,
                            u32 value_bound, u64 seed) {
  GSNP_CHECK(mean_size > 0.0 && max_size >= 1);
  Rng rng(seed);
  VarArrays va;
  va.offsets.reserve(count + 1);
  va.values.reserve(static_cast<std::size_t>(mean_size * count * 1.2));
  const double p = 1.0 / mean_size;  // geometric "stop" probability
  for (u64 i = 0; i < count; ++i) {
    u32 size = 0;
    while (size < max_size && !rng.bernoulli(p)) ++size;
    for (u32 j = 0; j < size; ++j)
      va.values.push_back(static_cast<u32>(rng.uniform(value_bound)));
    va.offsets.push_back(va.values.size());
  }
  return va;
}

VarArrays equal_var_arrays(u64 count, u32 size, u32 value_bound, u64 seed) {
  Rng rng(seed);
  VarArrays va;
  va.offsets.reserve(count + 1);
  va.values.reserve(count * size);
  for (u64 i = 0; i < count; ++i) {
    for (u32 j = 0; j < size; ++j)
      va.values.push_back(static_cast<u32>(rng.uniform(value_bound)));
    va.offsets.push_back(va.values.size());
  }
  return va;
}

}  // namespace gsnp::sortnet
