#include "src/sortnet/multipass.hpp"

#include <algorithm>
#include <numeric>

#include "src/common/error.hpp"

namespace gsnp::sortnet {

using device::Access;
using device::BlockContext;
using device::Device;
using device::DeviceBuffer;
using device::ThreadContext;

void sort_cpu_batch(VarArrays& va) {
  const i64 n = static_cast<i64>(va.count());
#pragma omp parallel for schedule(dynamic, 1024)
  for (i64 i = 0; i < n; ++i) {
    auto a = va.array(static_cast<u64>(i));
    std::sort(a.begin(), a.end());
  }
}

namespace {

/// Gather the member arrays of one size class into a padded batch, sort on
/// the device, and scatter the sorted prefixes back.  Each class is one
/// "sort_pass" span, annotated with its batch geometry.
void sort_class(Device& dev, VarArrays& va, std::span<const u64> members,
                u32 batch_size, SortStats& stats,
                obs::Tracer* tracer = nullptr) {
  if (members.empty()) return;
  obs::Tracer::Scope span(tracer, "sort_pass", "sort", &dev);
  span.note("batch_size", std::to_string(batch_size));
  span.note("arrays", std::to_string(members.size()));
  std::vector<u32> batch(members.size() * batch_size, kPadValue);
  for (std::size_t m = 0; m < members.size(); ++m) {
    const auto a = va.array(members[m]);
    std::copy(a.begin(), a.end(), batch.begin() + m * batch_size);
    stats.elements_real += a.size();
  }
  DeviceBuffer<u32> buf = dev.to_device(std::span<const u32>(batch));
  batch_bitonic_sort(dev, buf, batch_size, members.size());
  batch = dev.to_host(buf);
  for (std::size_t m = 0; m < members.size(); ++m) {
    const auto a = va.array(members[m]);
    // Padding is kPadValue (the maximum), so the real values are the prefix.
    std::copy_n(batch.begin() + m * batch_size, a.size(), a.begin());
  }
  stats.arrays_sorted += members.size();
  stats.elements_padded += members.size() * batch_size;
  stats.passes += 1;
}

}  // namespace

SortStats sort_device_multipass(Device& dev, VarArrays& va,
                                std::span<const u32> class_bounds,
                                obs::Tracer* tracer) {
  GSNP_CHECK(std::is_sorted(class_bounds.begin(), class_bounds.end()));
  SortStats stats;

  // Bucket array ids by size class.  Class c holds sizes in
  // (bounds[c-1], bounds[c]]; the final class holds everything larger.
  const std::size_t n_classes = class_bounds.size() + 1;
  std::vector<std::vector<u64>> classes(n_classes);
  u32 max_size = 0;
  for (u64 i = 0; i < va.count(); ++i) {
    const u64 size = va.size_of(i);
    if (size <= 1) continue;  // already sorted
    max_size = std::max<u32>(max_size, static_cast<u32>(size));
    const auto it = std::lower_bound(class_bounds.begin(), class_bounds.end(),
                                     static_cast<u32>(size));
    classes[static_cast<std::size_t>(it - class_bounds.begin())].push_back(i);
  }

  for (std::size_t c = 0; c < n_classes; ++c) {
    if (classes[c].empty()) continue;
    const u32 upper = c < class_bounds.size() ? class_bounds[c] : max_size;
    sort_class(dev, va, classes[c], next_pow2(upper), stats, tracer);
  }
  return stats;
}

namespace {

/// Device-to-device gather/scatter between a CSR word buffer and a padded
/// equal-size batch for one size class.
struct ClassMeta {
  DeviceBuffer<u64> starts;  ///< CSR start offset per member array
  DeviceBuffer<u32> sizes;   ///< real size per member array
  u64 count = 0;
};

ClassMeta upload_class(Device& dev, std::span<const u64> offsets,
                       std::span<const u64> members) {
  std::vector<u64> starts(members.size());
  std::vector<u32> sizes(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    starts[m] = offsets[members[m]];
    sizes[m] = static_cast<u32>(offsets[members[m] + 1] - offsets[members[m]]);
  }
  ClassMeta meta;
  meta.starts = dev.to_device(std::span<const u64>(starts));
  meta.sizes = dev.to_device(std::span<const u32>(sizes));
  meta.count = members.size();
  return meta;
}

void class_copy_kernel(Device& dev, DeviceBuffer<u32>& words,
                       DeviceBuffer<u32>& batch, const ClassMeta& meta,
                       u32 batch_size, bool gather) {
  const u64 total = meta.count * batch_size;
  constexpr u32 kBlock = 256;
  const u32 grid = static_cast<u32>((total + kBlock - 1) / kBlock);
  dev.launch(gather ? "sort_class_gather" : "sort_class_scatter", grid, kBlock,
             [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) {
      const u64 slot = t.global_tid();
      t.inst();
      if (slot >= total) return;
      const u64 m = slot / batch_size;
      const u32 j = static_cast<u32>(slot % batch_size);
      const u32 size = t.gload(meta.sizes, m, Access::kCoalesced);
      if (gather) {
        const u32 v =
            j < size ? t.gload(words,
                               t.gload(meta.starts, m, Access::kCoalesced) + j,
                               Access::kRandom)
                     : kPadValue;
        t.gstore(batch, slot, v, Access::kCoalesced);
      } else if (j < size) {
        // Padding sorted to the tail: real values are the prefix.
        t.gstore(words, t.gload(meta.starts, m, Access::kCoalesced) + j,
                 t.gload(batch, slot, Access::kCoalesced), Access::kRandom);
      }
    });
  });
}

}  // namespace

SortStats sort_device_multipass_resident(Device& dev, DeviceBuffer<u32>& words,
                                         std::span<const u64> offsets_host,
                                         std::span<const u32> class_bounds,
                                         obs::Tracer* tracer) {
  GSNP_CHECK(std::is_sorted(class_bounds.begin(), class_bounds.end()));
  GSNP_CHECK(!offsets_host.empty());
  GSNP_CHECK_MSG(offsets_host.back() == words.size(),
                 "offsets do not match the resident word buffer");
  SortStats stats;

  const u64 count = offsets_host.size() - 1;
  const std::size_t n_classes = class_bounds.size() + 1;
  std::vector<std::vector<u64>> classes(n_classes);
  u32 max_size = 0;
  for (u64 i = 0; i < count; ++i) {
    const u64 size = offsets_host[i + 1] - offsets_host[i];
    if (size <= 1) continue;
    max_size = std::max<u32>(max_size, static_cast<u32>(size));
    const auto it = std::lower_bound(class_bounds.begin(), class_bounds.end(),
                                     static_cast<u32>(size));
    classes[static_cast<std::size_t>(it - class_bounds.begin())].push_back(i);
  }

  for (std::size_t c = 0; c < n_classes; ++c) {
    if (classes[c].empty()) continue;
    const u32 upper = c < class_bounds.size() ? class_bounds[c] : max_size;
    const u32 batch_size = next_pow2(upper);
    obs::Tracer::Scope span(tracer, "sort_pass", "sort", &dev);
    span.note("batch_size", std::to_string(batch_size));
    span.note("arrays", std::to_string(classes[c].size()));
    const ClassMeta meta = upload_class(dev, offsets_host, classes[c]);
    DeviceBuffer<u32> batch = dev.alloc<u32>(meta.count * batch_size);
    class_copy_kernel(dev, words, batch, meta, batch_size, /*gather=*/true);
    batch_bitonic_sort(dev, batch, batch_size, meta.count);
    class_copy_kernel(dev, words, batch, meta, batch_size, /*gather=*/false);
    for (const u64 i : classes[c])
      stats.elements_real += offsets_host[i + 1] - offsets_host[i];
    stats.arrays_sorted += meta.count;
    stats.elements_padded += meta.count * batch_size;
    stats.passes += 1;
  }
  return stats;
}

SortStats sort_device_singlepass(Device& dev, VarArrays& va) {
  SortStats stats;
  u32 max_size = 0;
  std::vector<u64> members;
  for (u64 i = 0; i < va.count(); ++i) {
    const u64 size = va.size_of(i);
    if (size <= 1) continue;
    max_size = std::max<u32>(max_size, static_cast<u32>(size));
    members.push_back(i);
  }
  if (members.empty()) return stats;
  sort_class(dev, va, members, next_pow2(max_size), stats);
  return stats;
}

SortStats sort_device_noneq(Device& dev, VarArrays& va) {
  SortStats stats;
  std::vector<u64> members;
  u32 max_size = 0;
  for (u64 i = 0; i < va.count(); ++i) {
    const u64 size = va.size_of(i);
    if (size <= 1) continue;
    members.push_back(i);
    max_size = std::max<u32>(max_size, static_cast<u32>(size));
  }
  if (members.empty()) return stats;
  const u32 block_threads = next_pow2(max_size);

  // Pack each array padded to its own power of two; record per-block extents.
  std::vector<u32> packed;
  std::vector<u64> base(members.size());
  std::vector<u32> pow2(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    const auto a = va.array(members[m]);
    base[m] = packed.size();
    pow2[m] = next_pow2(static_cast<u32>(a.size()));
    packed.insert(packed.end(), a.begin(), a.end());
    packed.resize(base[m] + pow2[m], kPadValue);
    stats.elements_real += a.size();
    stats.elements_padded += pow2[m];
  }
  stats.arrays_sorted = members.size();
  stats.passes = 1;

  DeviceBuffer<u32> buf = dev.to_device(std::span<const u32>(packed));
  DeviceBuffer<u64> bases = dev.to_device(std::span<const u64>(base));
  DeviceBuffer<u32> sizes = dev.to_device(std::span<const u32>(pow2));

  // One block per array, but a *uniform* block size set by the largest array:
  // blocks sorting small arrays leave most threads idle every phase, which is
  // exactly the imbalance the paper's Fig 7(b) attributes the slowdown to.
  dev.launch("bitonic_noneq_sort", static_cast<u32>(members.size()),
             block_threads, [&](BlockContext& blk) {
               auto sh = blk.shared_array<u32>(block_threads);
               u64 my_base = 0;
               u32 my_n = 0;
               blk.single_thread([&](ThreadContext& t) {
                 my_base = t.gload(bases, blk.block_idx());
                 my_n = t.gload(sizes, blk.block_idx());
               });
               blk.threads([&](ThreadContext& t) {
                 if (t.tid() < my_n)
                   t.sstore(sh, t.tid(),
                            t.gload(buf, my_base + t.tid(), Access::kCoalesced));
                 else
                   t.inst();  // idle lane still occupies the SIMT slot
               });
               for (u32 k = 2; k <= my_n; k <<= 1) {
                 for (u32 j = k >> 1; j > 0; j >>= 1) {
                   blk.threads([&](ThreadContext& t) {
                     t.inst();
                     const u32 i = t.tid();
                     if (i >= my_n) return;  // idle lane
                     const u32 l = i ^ j;
                     if (l <= i || l >= my_n) return;
                     const u32 a = t.sload<u32>(sh, i);
                     const u32 b = t.sload<u32>(sh, l);
                     const bool ascending = (i & k) == 0;
                     if ((a > b) == ascending) {
                       t.sstore(sh, i, b);
                       t.sstore(sh, l, a);
                     }
                   });
                 }
               }
               blk.threads([&](ThreadContext& t) {
                 if (t.tid() < my_n)
                   t.gstore(buf, my_base + t.tid(), t.sload<u32>(sh, t.tid()),
                            Access::kCoalesced);
                 else
                   t.inst();
               });
             });

  packed = dev.to_host(buf);
  for (std::size_t m = 0; m < members.size(); ++m) {
    const auto a = va.array(members[m]);
    std::copy_n(packed.begin() + static_cast<std::ptrdiff_t>(base[m]),
                a.size(), a.begin());
  }
  return stats;
}

SortStats sort_device_radix_seq(Device& dev, VarArrays& va) {
  SortStats stats;
  for (u64 i = 0; i < va.count(); ++i) {
    const auto a = va.array(i);
    if (a.size() <= 1) continue;
    DeviceBuffer<u32> buf = dev.to_device(std::span<const u32>(a));
    device_radix_sort(dev, buf);
    const auto sorted = dev.to_host(buf);
    std::copy(sorted.begin(), sorted.end(), a.begin());
    stats.arrays_sorted += 1;
    stats.elements_real += a.size();
    stats.elements_padded += a.size();  // radix pads nothing
    stats.passes += 1;
  }
  return stats;
}

}  // namespace gsnp::sortnet
