#pragma once
// Bitonic sorting network building blocks (host reference implementation).
//
// Bitonic sort runs in O(n log^2 n) compare-exchanges arranged in a fixed
// network, which maps perfectly onto SIMT execution: every thread performs
// the same compare-exchange schedule with no data-dependent control flow.
// The host version here is the correctness oracle for the device kernels.

#include <span>

#include "src/common/types.hpp"

namespace gsnp::sortnet {

/// Values equal to kPadValue are used to pad sub-power-of-two arrays; sorting
/// ascending pushes padding to the tail.  Callers must keep real values
/// strictly below kPadValue (base_word keys use < 2^18, far below).
inline constexpr u32 kPadValue = 0xFFFFFFFFu;

/// Smallest power of two >= n (n >= 1).
constexpr u32 next_pow2(u32 n) noexcept {
  u32 p = 1;
  while (p < n) p <<= 1;
  return p;
}

/// In-place ascending bitonic sort; a.size() must be a power of two.
void bitonic_sort_host(std::span<u32> a);

}  // namespace gsnp::sortnet
