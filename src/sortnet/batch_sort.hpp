#pragma once
// Device batch-sort primitive (paper §IV-C).
//
// Sorts `num_arrays` equal-size arrays, concatenated in one device buffer,
// with a bitonic network executed in shared memory.  Each thread block takes
// one or more whole arrays: the block loads them into shared memory with
// coalesced reads, runs the compare-exchange schedule with a barrier between
// stages, and writes the sorted arrays back with coalesced stores.  Sizes
// must be powers of two; callers pad with kPadValue.

#include "src/device/device.hpp"
#include "src/sortnet/bitonic.hpp"

namespace gsnp::sortnet {

/// Threads per block the primitive targets; arrays_per_block is derived as
/// max(1, kBatchSortBlockThreads / array_size).
inline constexpr u32 kBatchSortBlockThreads = 256;

/// Sort each of the `num_arrays` sub-arrays of `data` (each `array_size`
/// elements, a power of two) ascending, in place on the device.
void batch_bitonic_sort(device::Device& dev, device::DeviceBuffer<u32>& data,
                        u32 array_size, u64 num_arrays);

/// Sort one device-resident array of arbitrary size with a multi-kernel LSD
/// radix sort (histogram / scan / scatter per 8-bit digit).  This is the
/// "device-wide sort" building block used by the sequential per-array
/// baseline of paper Fig 7(a): correct, but wasteful when arrays are tiny.
void device_radix_sort(device::Device& dev, device::DeviceBuffer<u32>& data);

}  // namespace gsnp::sortnet
