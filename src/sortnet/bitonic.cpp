#include "src/sortnet/bitonic.hpp"

#include <algorithm>
#include <utility>

#include "src/common/error.hpp"

namespace gsnp::sortnet {

void bitonic_sort_host(std::span<u32> a) {
  const u32 n = static_cast<u32>(a.size());
  GSNP_CHECK_MSG(n > 0 && (n & (n - 1)) == 0,
                 "bitonic size must be a power of two, got " << n);
  for (u32 k = 2; k <= n; k <<= 1) {
    for (u32 j = k >> 1; j > 0; j >>= 1) {
      for (u32 i = 0; i < n; ++i) {
        const u32 l = i ^ j;
        if (l <= i) continue;
        const bool ascending = (i & k) == 0;
        if ((a[i] > a[l]) == ascending) std::swap(a[i], a[l]);
      }
    }
  }
}

}  // namespace gsnp::sortnet
