#include "src/sortnet/batch_sort.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace gsnp::sortnet {

using device::Access;
using device::BlockContext;
using device::Device;
using device::DeviceBuffer;
using device::ThreadContext;

void batch_bitonic_sort(Device& dev, DeviceBuffer<u32>& data, u32 array_size,
                        u64 num_arrays) {
  GSNP_CHECK_MSG(array_size >= 1 && (array_size & (array_size - 1)) == 0,
                 "array_size must be a power of two, got " << array_size);
  GSNP_CHECK_MSG(data.size() == static_cast<u64>(array_size) * num_arrays,
                 "buffer size mismatch");
  if (array_size == 1 || num_arrays == 0) return;

  const u32 arrays_per_block =
      std::max<u32>(1, kBatchSortBlockThreads / array_size);
  const u32 block_threads = arrays_per_block * array_size;
  const u32 grid = static_cast<u32>(
      (num_arrays + arrays_per_block - 1) / arrays_per_block);

  dev.launch("batch_bitonic_sort", grid, block_threads,
             [&](BlockContext& blk) {
    auto sh = blk.shared_array<u32>(block_threads);
    const u64 block_base =
        static_cast<u64>(blk.block_idx()) * block_threads;

    // Phase 1: coalesced load of the block's arrays into shared memory.
    // Trailing threads past the final array load padding.
    blk.threads([&](ThreadContext& t) {
      const u64 g = block_base + t.tid();
      const u32 v = g < data.size() ? t.gload(data, g, Access::kCoalesced)
                                    : kPadValue;
      t.sstore(sh, t.tid(), v);
    });

    // Phase 2..: the bitonic compare-exchange schedule.  All arrays in the
    // block share the same schedule; thread tid handles element
    // (tid % array_size) of array (tid / array_size).
    for (u32 k = 2; k <= array_size; k <<= 1) {
      for (u32 j = k >> 1; j > 0; j >>= 1) {
        blk.threads([&](ThreadContext& t) {
          const u32 i = t.tid() % array_size;
          const u32 l = i ^ j;
          t.inst();  // index arithmetic + predicate
          if (l <= i) return;
          const u32 base = (t.tid() / array_size) * array_size;
          const u32 a = t.sload<u32>(sh, base + i);
          const u32 b = t.sload<u32>(sh, base + l);
          const bool ascending = (i & k) == 0;
          if ((a > b) == ascending) {
            t.sstore(sh, base + i, b);
            t.sstore(sh, base + l, a);
          }
        });
      }
    }

    // Final phase: coalesced store back to global memory.
    blk.threads([&](ThreadContext& t) {
      const u64 g = block_base + t.tid();
      if (g < data.size())
        t.gstore(data, g, t.sload<u32>(sh, t.tid()), Access::kCoalesced);
    });
  });
}

namespace {

constexpr u32 kRadixBits = 8;
constexpr u32 kRadixBuckets = 1u << kRadixBits;
constexpr u32 kRadixBlockThreads = 256;

}  // namespace

void device_radix_sort(Device& dev, DeviceBuffer<u32>& data) {
  const u64 n = data.size();
  if (n <= 1) return;
  const u32 grid =
      static_cast<u32>((n + kRadixBlockThreads - 1) / kRadixBlockThreads);

  DeviceBuffer<u32> ping = dev.alloc<u32>(n);
  DeviceBuffer<u64> block_hist =
      dev.alloc<u64>(static_cast<u64>(grid) * kRadixBuckets);
  DeviceBuffer<u64> bucket_base = dev.alloc<u64>(kRadixBuckets);

  DeviceBuffer<u32>* src = &data;
  DeviceBuffer<u32>* dst = &ping;

  for (u32 pass = 0; pass < 32 / kRadixBits; ++pass) {
    const u32 shift = pass * kRadixBits;

    // Kernel 1: per-block digit histogram.  Threads within a simulator block
    // run sequentially, so shared-memory accumulation needs no atomics (on
    // hardware this would be shared-memory atomics).
    dev.launch("radix_histogram", grid, kRadixBlockThreads,
               [&](BlockContext& blk) {
      auto hist = blk.shared_array<u64>(kRadixBuckets);
      blk.threads([&](ThreadContext& t) {
        const u64 g = static_cast<u64>(blk.block_idx()) * kRadixBlockThreads +
                      t.tid();
        if (g >= n) return;
        const u32 v = t.gload(*src, g, Access::kCoalesced);
        const u32 d = (v >> shift) & (kRadixBuckets - 1);
        t.inst(2);
        t.sstore<u64>(hist, d, t.sload<u64>(hist, d) + 1);
      });
      blk.threads([&](ThreadContext& t) {
        // One thread per bucket writes the block histogram out (coalesced).
        if (t.tid() < kRadixBuckets)
          t.gstore(block_hist,
                   static_cast<u64>(blk.block_idx()) * kRadixBuckets + t.tid(),
                   t.sload<u64>(hist, t.tid()), Access::kCoalesced);
      });
    });

    // Kernel 2: single-block exclusive scan over buckets x blocks, producing
    // for each (block, bucket) its global scatter base.  Small problem, one
    // block — exactly the kind of serial bottleneck real GPU scans amortize;
    // size here is grid*256 entries.
    dev.launch("radix_scan", 1, 1, [&](BlockContext& blk) {
      blk.single_thread([&](ThreadContext& t) {
        u64 running = 0;
        for (u32 b = 0; b < kRadixBuckets; ++b) {
          t.gstore(bucket_base, b, running);
          for (u32 g = 0; g < grid; ++g) {
            const u64 idx = static_cast<u64>(g) * kRadixBuckets + b;
            const u64 c = t.gload(block_hist, idx);
            t.gstore(block_hist, idx, running);
            running += c;
            t.inst();
          }
        }
      });
    });

    // Kernel 3: scatter.  Each block re-reads its chunk and places elements
    // at block_hist[block][digit]++ (stable within a block because simulator
    // threads run in tid order; hardware uses a local ranking pass).
    dev.launch("radix_scatter", grid, kRadixBlockThreads,
               [&](BlockContext& blk) {
      auto local_base = blk.shared_array<u64>(kRadixBuckets);
      blk.threads([&](ThreadContext& t) {
        if (t.tid() < kRadixBuckets)
          t.sstore(local_base, t.tid(),
                   t.gload(block_hist,
                           static_cast<u64>(blk.block_idx()) * kRadixBuckets +
                               t.tid(),
                           Access::kCoalesced));
      });
      blk.threads([&](ThreadContext& t) {
        const u64 g = static_cast<u64>(blk.block_idx()) * kRadixBlockThreads +
                      t.tid();
        if (g >= n) return;
        const u32 v = t.gload(*src, g, Access::kCoalesced);
        const u32 d = (v >> shift) & (kRadixBuckets - 1);
        const u64 out = t.sload<u64>(local_base, d);
        t.sstore<u64>(local_base, d, out + 1);
        t.inst(2);
        t.gstore(*dst, out, v, Access::kRandom);
      });
    });

    std::swap(src, dst);
  }
  // 32/8 = 4 passes — an even number, so the result landed back in `data`.
  GSNP_CHECK(src == &data);
}

}  // namespace gsnp::sortnet
