#pragma once
// Wilcoxon rank-sum test (Mann-Whitney U) on quality scores.
//
// SOAPsnp's output column 15 reports, for each site, the rank-sum p-value
// comparing the quality scores of reads supporting the best base against
// those supporting the second-best base: a lopsided distribution suggests
// the minority allele is a systematic sequencing artifact rather than a true
// heterozygote.  Computed with the normal approximation and tie correction.

#include <span>

#include "src/common/types.hpp"

namespace gsnp::core {

/// Two-sided rank-sum p-value for samples `a` and `b` (quality scores).
/// Returns 1.0 when either sample is empty or both are too small for the
/// approximation to mean anything (n1*n2 == 0).
double rank_sum_p(std::span<const u8> a, std::span<const u8> b);

/// Round a p-value to the 1e-4 grid used by the output table (column 15),
/// ensuring it is exactly representable for the quantized codec.
double round_p(double p);

}  // namespace gsnp::core
