#pragma once
// Depth-aware device batcher (ROADMAP item 5).
//
// The engines historically scheduled device work in fixed-site-count windows,
// so the device footprint of a window was an emergent property of whatever
// coverage the input happened to have: a 50-200x pileup island blows the
// per-window base-word payload up by the same factor.  The batcher inverts
// that: the caller states a byte budget and `plan_batches` packs sites — in
// position order, each exactly once — into contiguous batches whose *planned
// peak device bytes* never exceed it.  Effective batch size then floats with
// observed depth (many shallow sites per batch, few deep ones), the same
// variable-size-work-into-fixed-buffers move as minimap2-acceleration's
// memory_scheduler.
//
// The cost model is exact, not heuristic: it charges precisely the
// allocations the device pipeline makes for a batch of S sites and W base
// words, phase by phase, and takes the maximum (the phases free their scratch
// before the next begins):
//
//   resident          4W (base words)  +  8(S+1) (CSR offsets)
//   sort scratch      max over occupied size classes c of
//                       12*m_c  (ClassMeta starts u64 + sizes u32)
//                     + 4*m_c*P_c (padded gather buffer), where m_c counts
//                     member arrays (size >= 2) and P_c = next_pow2 of the
//                     class bound (next_pow2 of the batch's largest array for
//                     the overflow class) — multipass.cpp sorts one class at
//                     a time and frees between classes
//   likelihood        4*kDepEntriesPerSite*S (dep_count) + 80S (out doubles)
//   posterior         80S (type_likely) + 80S (priors) + 4S (packed calls)
//
//   planned_peak = resident + max(sort, likelihood, posterior)
//
// Because every term is monotone in the appended site, greedy position-order
// packing with an O(#classes) incremental update is optimal for "never
// exceed the budget" packing and is what plan_batches implements.  Sortnet
// bucket occupancy (per-class member counts) is therefore known at pack time
// — it is stored on each SiteBatch — instead of discovered inside the sort.
//
// Batches are sub-ranges of one loader window, never spanning windows: the
// GSNPOUT2 writer emits one compressed frame per window, so splitting (not
// merging) is the only packing that keeps output byte-identical to the
// fixed-window baseline (DESIGN.md "Batcher").

#include <span>
#include <vector>

#include "src/common/error.hpp"
#include "src/sortnet/multipass.hpp"

namespace gsnp::core {

/// Thrown when a single site's device footprint already exceeds the byte
/// budget — no valid packing exists.  Callers surface this typed (the daemon
/// maps it to a client error rather than a crash).
class BatchBudgetError : public Error {
 public:
  BatchBudgetError(u64 budget_bytes, u64 needed_bytes, u64 site_index);

  u64 budget_bytes() const { return budget_bytes_; }
  u64 needed_bytes() const { return needed_bytes_; }
  /// Window-local index of the site that cannot fit alone.
  u64 site_index() const { return site_index_; }

 private:
  u64 budget_bytes_ = 0;
  u64 needed_bytes_ = 0;
  u64 site_index_ = 0;
};

/// One capacity-bounded batch: sites [begin, end) of a window's CSR, whose
/// base words occupy [words_begin, words_end) of the window word array.
struct SiteBatch {
  u32 begin = 0;
  u32 end = 0;
  u64 words_begin = 0;
  u64 words_end = 0;
  /// Cost-model peak for this batch; never exceeds the plan's budget.
  u64 planned_peak_bytes = 0;
  /// Sortnet bucket occupancy planned at pack time: member count per size
  /// class (one entry per bound in `class_bounds`, plus the overflow class).
  /// Arrays of size <= 1 are skipped by the sort and counted nowhere, same
  /// as sort_device_multipass_resident.
  std::vector<u32> class_members;
  /// Largest per-site array in the batch (drives the overflow class pad).
  u32 max_array_size = 0;

  u32 sites() const { return end - begin; }
  u64 words() const { return words_end - words_begin; }
};

/// plan_batches output: position-ordered batches covering every site of the
/// window exactly once.
struct BatchPlan {
  u64 budget_bytes = 0;
  std::vector<SiteBatch> batches;
  /// max over batches of planned_peak_bytes (0 for an empty window).
  u64 planned_peak_bytes = 0;
};

/// Exact planned device peak for one batch under the model above.  Exposed so
/// tests can pin the model against hand-computed values; `class_members` must
/// have class_bounds.size() + 1 entries (last = overflow class).
u64 planned_batch_peak_bytes(u64 sites, u64 words,
                             std::span<const u32> class_members,
                             u32 max_array_size,
                             std::span<const u32> class_bounds);

/// Pack the window described by its CSR `offsets` (site i owns words
/// [offsets[i], offsets[i+1]); offsets.size() == sites + 1) into batches with
/// planned peaks <= budget_bytes.  Greedy in position order.  Throws
/// BatchBudgetError if any single site alone exceeds the budget;
/// GSNP_CHECKs budget_bytes > 0 (a zero budget means "batching off" and must
/// be handled by the caller, not here).
BatchPlan plan_batches(
    std::span<const u64> offsets, u64 budget_bytes,
    std::span<const u32> class_bounds = sortnet::kDefaultClassBounds);

/// Worst-case device footprint of a run with the given batch budget and
/// window size: the resident score tables (p_matrix + new_p_matrix) plus one
/// batch at the budget plus the per-window RLE-DICT output scratch (the
/// output phase compresses whole windows, outside the batch budget; its
/// per-column scratch is bounded by a small constant times the window size).
/// This is what gsnpd admission control compares against its device-capacity
/// limit before admitting a job.
u64 worst_case_device_bytes(u64 batch_bytes, u64 window_size);

/// Per-run batching statistics, aggregated across windows into
/// RunReport::batch and surfaced in bench_smoke JSON / engine metrics.
struct BatchStats {
  u64 budget_bytes = 0;
  u64 batches = 0;
  u64 windows_planned = 0;
  u32 min_batch_sites = 0;
  u32 max_batch_sites = 0;
  /// max over batches of the cost model's planned peak.
  u64 planned_peak_bytes = 0;
  /// max over batches of the device watermark actually measured while the
  /// batch's phases ran (serial device path; 0 for host backends, which use
  /// the plan for loop chunking only).
  u64 actual_peak_bytes = 0;

  /// Fold one window's plan into the run aggregate.
  void absorb(const BatchPlan& plan);
  /// Record one batch's measured device peak.
  void record_actual(u64 peak_bytes);
};

}  // namespace gsnp::core
