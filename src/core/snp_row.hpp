#pragma once
// The 17-column SNP result row — SOAPsnp's output schema (paper §V-B).
//
//  1. reference sequence name       (table-level; identical for all rows)
//  2. site position (1-based in text)
//  3. reference base
//  4. consensus genotype (IUPAC single character)
//  5. consensus quality (Phred)
//  6. best base
//  7. average quality of best base
//  8. count of uniquely mapped best base
//  9. count of all mapped best base
// 10. second-best base
// 11. average quality of second-best base
// 12. count of uniquely mapped second-best base
// 13. count of all mapped second-best base
// 14. sequencing depth
// 15. rank-sum test p-value
// 16. average copy number
// 17. whether the site is in dbSNP (0/1)

#include <iosfwd>
#include <string>

#include "src/common/types.hpp"

namespace gsnp::core {

/// Single-character IUPAC code for a diploid genotype (canonical rank order
/// A M R W C S Y G K T).
constexpr char iupac_from_rank(int rank) {
  constexpr char kIupac[kNumGenotypes + 1] = "AMRWCSYGKT";
  return kIupac[rank];
}

/// Inverse mapping; returns -1 for characters that are not genotype codes.
constexpr int rank_from_iupac(char c) {
  switch (c) {
    case 'A': return 0;
    case 'M': return 1;
    case 'R': return 2;
    case 'W': return 3;
    case 'C': return 4;
    case 'S': return 5;
    case 'Y': return 6;
    case 'G': return 7;
    case 'K': return 8;
    case 'T': return 9;
    default: return -1;
  }
}

struct SnpRow {
  u64 pos = 0;                 ///< 0-based internally, 1-based in text
  u8 ref_base = kInvalidBase;  ///< 0..3 or kInvalidBase ('N')
  i8 genotype_rank = -1;       ///< 0..9, or -1 for an uncallable ('N') site
  u16 quality = 0;
  u8 best_base = kInvalidBase;
  u16 best_avg_quality = 0;
  u32 best_uniq_count = 0;
  u32 best_all_count = 0;
  u8 second_base = kInvalidBase;
  u16 second_avg_quality = 0;
  u32 second_uniq_count = 0;
  u32 second_all_count = 0;
  u32 depth = 0;
  double rank_sum_p = 1.0;   ///< rounded to the 1e-4 grid
  double copy_number = 0.0;  ///< rounded to the 1e-2 grid
  bool in_dbsnp = false;

  bool operator==(const SnpRow&) const = default;
};

/// Tab-separated text form (the plain SOAPsnp-style output format).
std::string format_snp_row(const std::string& seq_name, const SnpRow& row);

/// Parse a line produced by format_snp_row (seq name returned via out-param).
SnpRow parse_snp_row(std::string_view line, std::string& seq_name);

}  // namespace gsnp::core
