#include "src/core/consistency.hpp"

#include <cstring>
#include <fstream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/core/output_codec.hpp"

namespace gsnp::core {

ConsistencyReport compare_rows(const std::vector<SnpRow>& a,
                               const std::vector<SnpRow>& b) {
  ConsistencyReport report;
  if (a.size() != b.size()) {
    std::ostringstream os;
    os << "row count mismatch: " << a.size() << " vs " << b.size();
    report.detail = os.str();
    return report;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) {
      report.first_mismatch_row = i;
      std::ostringstream os;
      os << "first mismatch at row " << i << ":\n  a: "
         << format_snp_row("?", a[i]) << "\n  b: " << format_snp_row("?", b[i]);
      report.detail = os.str();
      report.rows_compared = i;
      return report;
    }
  }
  report.identical = true;
  report.rows_compared = a.size();
  return report;
}

std::vector<SnpRow> read_snp_output(const std::filesystem::path& path,
                                    std::string& seq_name) {
  std::ifstream probe(path, std::ios::binary);
  GSNP_CHECK_MSG(probe.good(), "cannot open " << path);
  char magic[sizeof(kOutputMagic)] = {};
  probe.read(magic, sizeof(magic));
  probe.close();
  if (std::memcmp(magic, kOutputMagic, sizeof(kOutputMagic)) == 0)
    return read_snp_compressed_file(path, seq_name);
  return read_snp_text_file(path, seq_name);
}

ConsistencyReport compare_output_files(const std::filesystem::path& a,
                                       const std::filesystem::path& b) {
  std::string name_a, name_b;
  const std::vector<SnpRow> rows_a = read_snp_output(a, name_a);
  const std::vector<SnpRow> rows_b = read_snp_output(b, name_b);
  ConsistencyReport report = compare_rows(rows_a, rows_b);
  if (report.identical && name_a != name_b) {
    report.identical = false;
    report.detail = "sequence name mismatch: " + name_a + " vs " + name_b;
  }
  return report;
}

}  // namespace gsnp::core
