#include "src/core/run_manifest.hpp"

#include <fstream>
#include <sstream>

#include "src/common/atomic_file.hpp"
#include "src/common/error.hpp"
#include "src/common/json.hpp"
#include "src/common/sha256.hpp"

namespace gsnp::core {

const ManifestEntry* RunManifest::find(const std::string& name) const {
  for (const ManifestEntry& e : chromosomes)
    if (e.name == name) return &e;
  return nullptr;
}

void write_run_manifest(const std::filesystem::path& path,
                        const RunManifest& manifest) {
  // Build the complete document in memory, then publish in a single
  // fault-checked atomic write: either the whole manifest lands or (under an
  // injected/real storage fault) at most a torn `.part` stays for fsck.
  std::ostringstream out;
  {
    out << "{\n  \"version\": " << manifest.version << ",\n  \"engine\": ";
    json::write_escaped(out, manifest.engine);
    if (!manifest.trace_file.empty()) {
      out << ",\n  \"trace_file\": ";
      json::write_escaped(out, manifest.trace_file);
    }
    if (!manifest.metrics_file.empty()) {
      out << ",\n  \"metrics_file\": ";
      json::write_escaped(out, manifest.metrics_file);
    }
    out << ",\n  \"chromosomes\": [";
    for (std::size_t i = 0; i < manifest.chromosomes.size(); ++i) {
      const ManifestEntry& e = manifest.chromosomes[i];
      out << (i ? ",\n    {" : "\n    {") << "\"name\": ";
      json::write_escaped(out, e.name);
      out << ", \"status\": ";
      json::write_escaped(out, e.status);
      out << ", \"requested\": ";
      json::write_escaped(out, e.requested);
      out << ", \"engine\": ";
      json::write_escaped(out, e.engine);
      out << ", \"degraded\": " << (e.degraded ? "true" : "false")
          << ", \"attempts\": " << e.attempts << ", \"output\": ";
      json::write_escaped(out, e.output);
      out << ", \"output_bytes\": " << e.output_bytes
          << ", \"output_crc32\": " << e.output_crc32
          << ", \"sites\": " << e.sites << ", \"error\": ";
      json::write_escaped(out, e.error);
      out << ", \"ingest\": {\"ok\": " << e.ingest.records_ok
          << ", \"unsupported\": " << e.ingest.records_unsupported
          << ", \"quarantined\": " << e.ingest.records_quarantined
          << ", \"by_reason\": {";
      bool first_reason = true;
      for (std::size_t r = 0; r < kNumIngestReasons; ++r) {
        if (e.ingest.by_reason[r] == 0) continue;
        if (!first_reason) out << ", ";
        first_reason = false;
        json::write_escaped(out,
                            ingest_reason_name(static_cast<IngestReason>(r)));
        out << ": " << e.ingest.by_reason[r];
      }
      out << "}}}";
    }
    out << "\n  ]\n}\n";
  }
  write_file_atomic(path, out.str());
}

RunManifest read_run_manifest(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open manifest " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const json::Value root = json::parse(text);
  GSNP_CHECK_MSG(root.kind == json::Value::Kind::kObject,
                 "manifest " << path << " is not a JSON object");
  RunManifest manifest;
  manifest.version = static_cast<int>(json::get_u64(root, "version"));
  GSNP_CHECK_MSG(manifest.version == 1,
                 "unsupported manifest version " << manifest.version << " in "
                                                 << path);
  manifest.engine = json::get_string(root, "engine");
  // Optional: runs without tracing record no export paths.
  if (const json::Value* t = json::find(root, "trace_file"))
    manifest.trace_file = t->string;
  if (const json::Value* m = json::find(root, "metrics_file"))
    manifest.metrics_file = m->string;
  const json::Value* chroms = json::find(root, "chromosomes");
  GSNP_CHECK_MSG(chroms && chroms->kind == json::Value::Kind::kArray,
                 "manifest " << path << " has no chromosome list");
  for (const json::Value& c : chroms->array) {
    GSNP_CHECK_MSG(c.kind == json::Value::Kind::kObject,
                   "manifest chromosome entry is not an object");
    ManifestEntry e;
    e.name = json::get_string(c, "name");
    e.status = json::get_string(c, "status");
    e.requested = json::get_string(c, "requested");
    e.engine = json::get_string(c, "engine");
    e.degraded = json::get_bool(c, "degraded");
    e.attempts = static_cast<int>(json::get_u64(c, "attempts"));
    e.output = json::get_string(c, "output");
    e.output_bytes = json::get_u64(c, "output_bytes");
    e.output_crc32 = static_cast<u32>(json::get_u64(c, "output_crc32"));
    e.sites = json::get_u64(c, "sites");
    e.error = json::get_string(c, "error");
    // Optional: manifests written before the hardened-ingest layer have no
    // "ingest" object; those entries read back with all-zero stats.
    if (const json::Value* ing = json::find(c, "ingest");
        ing && ing->kind == json::Value::Kind::kObject) {
      e.ingest.records_ok = json::get_u64(*ing, "ok");
      e.ingest.records_unsupported = json::get_u64(*ing, "unsupported");
      e.ingest.records_quarantined = json::get_u64(*ing, "quarantined");
      if (const json::Value* by = json::find(*ing, "by_reason");
          by && by->kind == json::Value::Kind::kObject) {
        for (const auto& [name, count] : by->object) {
          const auto reason = ingest_reason_from_name(name);
          GSNP_CHECK_MSG(reason.has_value(),
                         "manifest: unknown ingest reason '" << name << "'");
          GSNP_CHECK_MSG(count.kind == json::Value::Kind::kNumber &&
                             count.number >= 0,
                         "manifest: bad ingest count for '" << name << "'");
          e.ingest.by_reason[static_cast<std::size_t>(*reason)] =
              static_cast<u64>(count.number);
        }
      }
    }
    manifest.chromosomes.push_back(std::move(e));
  }
  return manifest;
}

std::string manifest_digest(const RunManifest& manifest) {
  // Canonical text form: stable field order, newline-separated, machine-
  // dependent fields omitted (see the header comment).
  std::ostringstream os;
  os << "gsnp-manifest-digest.v1\n";
  os << "engine=" << manifest.engine << "\n";
  for (const ManifestEntry& e : manifest.chromosomes) {
    os << "chromosome=" << e.name << "\nstatus=" << e.status
       << "\nrequested=" << e.requested << "\nengine=" << e.engine
       << "\ndegraded=" << (e.degraded ? 1 : 0) << "\noutput=" << e.output
       << "\noutput_bytes=" << e.output_bytes
       << "\noutput_crc32=" << e.output_crc32 << "\nsites=" << e.sites
       << "\ningest_ok=" << e.ingest.records_ok
       << "\ningest_unsupported=" << e.ingest.records_unsupported
       << "\ningest_quarantined=" << e.ingest.records_quarantined << "\n";
  }
  return sha256_hex(os.str());
}

}  // namespace gsnp::core
