#include "src/core/run_manifest.hpp"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "src/common/atomic_file.hpp"
#include "src/common/error.hpp"

namespace gsnp::core {

namespace {

// ---- JSON writing ---------------------------------------------------------------

void append_escaped(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

// ---- minimal JSON parsing -------------------------------------------------------
// The manifest schema only needs objects, arrays, strings, integers, and
// booleans; the parser supports exactly JSON's grammar for those (plus null)
// and throws gsnp::Error with a byte offset on any malformed input.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;
};

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    check(pos_ == text_.size(), "trailing bytes after JSON document");
    return v;
  }

 private:
  void check(bool cond, const char* what) const {
    GSNP_CHECK_MSG(cond, "manifest JSON: " << what << " at byte " << pos_);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    check(pos_ < text_.size() && text_[pos_] == c, "unexpected character");
    ++pos_;
  }
  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = string();
        return v;
      }
      case 't': {
        check(consume("true"), "bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        check(consume("false"), "bad literal");
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        return v;
      }
      case 'n': {
        check(consume("null"), "bad literal");
        return JsonValue{};
      }
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      check(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      check(pos_ < text_.size(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          check(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else check(false, "bad \\u escape");
          }
          // Manifest strings are ASCII (paths, engine names, messages);
          // store BMP code points naively as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: check(false, "bad escape character");
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    check(pos_ > start, "expected a value");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      check(false, "bad number");
    }
    return v;
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

// ---- schema mapping -------------------------------------------------------------

const JsonValue* get(const JsonValue& obj, const std::string& key) {
  const auto it = obj.object.find(key);
  return it == obj.object.end() ? nullptr : &it->second;
}

std::string get_string(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = get(obj, key);
  GSNP_CHECK_MSG(v && v->kind == JsonValue::Kind::kString,
                 "manifest: missing string field '" << key << "'");
  return v->string;
}

u64 get_u64(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = get(obj, key);
  GSNP_CHECK_MSG(v && v->kind == JsonValue::Kind::kNumber && v->number >= 0,
                 "manifest: missing numeric field '" << key << "'");
  return static_cast<u64>(v->number);
}

bool get_bool(const JsonValue& obj, const std::string& key) {
  const JsonValue* v = get(obj, key);
  GSNP_CHECK_MSG(v && v->kind == JsonValue::Kind::kBool,
                 "manifest: missing boolean field '" << key << "'");
  return v->boolean;
}

}  // namespace

const ManifestEntry* RunManifest::find(const std::string& name) const {
  for (const ManifestEntry& e : chromosomes)
    if (e.name == name) return &e;
  return nullptr;
}

void write_run_manifest(const std::filesystem::path& path,
                        const RunManifest& manifest) {
  const std::filesystem::path tmp = path.string() + ".part";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    GSNP_CHECK_MSG(out.good(), "cannot open manifest for write " << tmp);
    out << "{\n  \"version\": " << manifest.version << ",\n  \"engine\": ";
    append_escaped(out, manifest.engine);
    out << ",\n  \"chromosomes\": [";
    for (std::size_t i = 0; i < manifest.chromosomes.size(); ++i) {
      const ManifestEntry& e = manifest.chromosomes[i];
      out << (i ? ",\n    {" : "\n    {") << "\"name\": ";
      append_escaped(out, e.name);
      out << ", \"status\": ";
      append_escaped(out, e.status);
      out << ", \"requested\": ";
      append_escaped(out, e.requested);
      out << ", \"engine\": ";
      append_escaped(out, e.engine);
      out << ", \"degraded\": " << (e.degraded ? "true" : "false")
          << ", \"attempts\": " << e.attempts << ", \"output\": ";
      append_escaped(out, e.output);
      out << ", \"output_bytes\": " << e.output_bytes
          << ", \"output_crc32\": " << e.output_crc32
          << ", \"sites\": " << e.sites << ", \"error\": ";
      append_escaped(out, e.error);
      out << ", \"ingest\": {\"ok\": " << e.ingest.records_ok
          << ", \"unsupported\": " << e.ingest.records_unsupported
          << ", \"quarantined\": " << e.ingest.records_quarantined
          << ", \"by_reason\": {";
      bool first_reason = true;
      for (std::size_t r = 0; r < kNumIngestReasons; ++r) {
        if (e.ingest.by_reason[r] == 0) continue;
        if (!first_reason) out << ", ";
        first_reason = false;
        append_escaped(out, ingest_reason_name(static_cast<IngestReason>(r)));
        out << ": " << e.ingest.by_reason[r];
      }
      out << "}}}";
    }
    out << "\n  ]\n}\n";
    out.flush();
    GSNP_CHECK_MSG(out.good(), "manifest write failed " << tmp);
  }
  atomic_publish(tmp, path);
}

RunManifest read_run_manifest(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open manifest " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();

  const JsonValue root = JsonParser(text).parse();
  GSNP_CHECK_MSG(root.kind == JsonValue::Kind::kObject,
                 "manifest " << path << " is not a JSON object");
  RunManifest manifest;
  manifest.version = static_cast<int>(get_u64(root, "version"));
  GSNP_CHECK_MSG(manifest.version == 1,
                 "unsupported manifest version " << manifest.version << " in "
                                                 << path);
  manifest.engine = get_string(root, "engine");
  const JsonValue* chroms = get(root, "chromosomes");
  GSNP_CHECK_MSG(chroms && chroms->kind == JsonValue::Kind::kArray,
                 "manifest " << path << " has no chromosome list");
  for (const JsonValue& c : chroms->array) {
    GSNP_CHECK_MSG(c.kind == JsonValue::Kind::kObject,
                   "manifest chromosome entry is not an object");
    ManifestEntry e;
    e.name = get_string(c, "name");
    e.status = get_string(c, "status");
    e.requested = get_string(c, "requested");
    e.engine = get_string(c, "engine");
    e.degraded = get_bool(c, "degraded");
    e.attempts = static_cast<int>(get_u64(c, "attempts"));
    e.output = get_string(c, "output");
    e.output_bytes = get_u64(c, "output_bytes");
    e.output_crc32 = static_cast<u32>(get_u64(c, "output_crc32"));
    e.sites = get_u64(c, "sites");
    e.error = get_string(c, "error");
    // Optional: manifests written before the hardened-ingest layer have no
    // "ingest" object; those entries read back with all-zero stats.
    if (const JsonValue* ing = get(c, "ingest");
        ing && ing->kind == JsonValue::Kind::kObject) {
      e.ingest.records_ok = get_u64(*ing, "ok");
      e.ingest.records_unsupported = get_u64(*ing, "unsupported");
      e.ingest.records_quarantined = get_u64(*ing, "quarantined");
      if (const JsonValue* by = get(*ing, "by_reason");
          by && by->kind == JsonValue::Kind::kObject) {
        for (const auto& [name, count] : by->object) {
          const auto reason = ingest_reason_from_name(name);
          GSNP_CHECK_MSG(reason.has_value(),
                         "manifest: unknown ingest reason '" << name << "'");
          GSNP_CHECK_MSG(count.kind == JsonValue::Kind::kNumber &&
                             count.number >= 0,
                         "manifest: bad ingest count for '" << name << "'");
          e.ingest.by_reason[static_cast<std::size_t>(*reason)] =
              static_cast<u64>(count.number);
        }
      }
    }
    manifest.chromosomes.push_back(std::move(e));
  }
  return manifest;
}

}  // namespace gsnp::core
