#include "src/core/vcf.hpp"

#include <fstream>
#include <sstream>

#include "src/common/error.hpp"

namespace gsnp::core {

void write_vcf_header(std::ostream& out, const std::string& seq_name,
                      u64 seq_length, const VcfOptions& options) {
  out << "##fileformat=VCFv4.2\n"
      << "##source=gsnp\n"
      << "##contig=<ID=" << seq_name << ",length=" << seq_length << ">\n"
      << "##INFO=<ID=DP,Number=1,Type=Integer,Description=\"Sequencing "
         "depth\">\n"
      << "##INFO=<ID=RSP,Number=1,Type=Float,Description=\"Rank-sum test "
         "p-value between best and second-best base qualities\">\n"
      << "##INFO=<ID=CN,Number=1,Type=Float,Description=\"Average copy "
         "number of covering reads\">\n"
      << "##INFO=<ID=DB,Number=0,Type=Flag,Description=\"Site present in "
         "the known-SNP prior table\">\n"
      << "##FORMAT=<ID=GT,Number=1,Type=String,Description=\"Genotype\">\n"
      << "##FORMAT=<ID=GQ,Number=1,Type=Integer,Description=\"Consensus "
         "quality\">\n"
      << "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\t"
      << options.sample_name << '\n';
}

std::string format_vcf_line(const std::string& seq_name, const SnpRow& row,
                            const VcfOptions& options) {
  if (row.genotype_rank < 0 || row.ref_base >= kNumBases) return {};
  if (row.quality < static_cast<u16>(options.min_quality)) return {};

  const Genotype g = genotype_from_rank(row.genotype_rank);
  const bool is_ref = g.allele1 == row.ref_base && g.allele2 == row.ref_base;
  if (is_ref && !options.include_ref_sites) return {};

  // ALT alleles: the genotype's non-reference alleles, deduplicated.
  std::string alt;
  int alt1 = 0, alt2 = 0;  // GT indices (0 = REF)
  const auto alt_index = [&](u8 allele) {
    if (allele == row.ref_base) return 0;
    const char c = char_from_base(allele);
    const auto at = alt.find(c);
    if (at != std::string::npos) return static_cast<int>(at / 2) + 1;
    if (!alt.empty()) alt += ',';
    alt += c;
    return static_cast<int>((alt.size() - 1) / 2) + 1;
  };
  alt1 = alt_index(g.allele1);
  alt2 = alt_index(g.allele2);
  if (alt.empty()) alt = ".";

  std::ostringstream os;
  os << seq_name << '\t' << (row.pos + 1) << "\t.\t"
     << char_from_base(row.ref_base) << '\t' << alt << '\t' << row.quality
     << "\tPASS\tDP=" << row.depth;
  {
    char buf[32];
    std::snprintf(buf, sizeof(buf), ";RSP=%.4f;CN=%.2f", row.rank_sum_p,
                  row.copy_number);
    os << buf;
  }
  if (row.in_dbsnp) os << ";DB";
  os << "\tGT:GQ\t" << std::min(alt1, alt2) << '/' << std::max(alt1, alt2)
     << ':' << row.quality;
  return os.str();
}

u64 write_vcf_file(const std::filesystem::path& path,
                   const std::string& seq_name, u64 seq_length,
                   std::span<const SnpRow> rows, const VcfOptions& options) {
  std::ofstream out(path);
  GSNP_CHECK_MSG(out.good(), "cannot open VCF file for write " << path);
  write_vcf_header(out, seq_name, seq_length, options);
  u64 written = 0;
  for (const SnpRow& row : rows) {
    const std::string line = format_vcf_line(seq_name, row, options);
    if (line.empty()) continue;
    out << line << '\n';
    ++written;
  }
  GSNP_CHECK_MSG(out.good(), "VCF write failed");
  return written;
}

}  // namespace gsnp::core
