#include "src/core/genome_pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <thread>

#include "src/common/atomic_file.hpp"
#include "src/common/crc32.hpp"
#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/obs/trace.hpp"

namespace gsnp::core {

std::vector<double> backoff_sequence(const RetryPolicy& policy, u64 salt) {
  std::vector<double> sleeps;
  const int retries = std::max(1, policy.max_attempts) - 1;
  if (retries <= 0) return sleeps;
  sleeps.reserve(static_cast<size_t>(retries));
  Rng rng(policy.jitter_seed ^ salt);
  const double fraction = std::clamp(policy.jitter_fraction, 0.0, 1.0);
  double base = policy.backoff_seconds;
  for (int k = 0; k < retries; ++k) {
    double capped = std::min(base, policy.backoff_cap_seconds);
    if (capped < 0.0) capped = 0.0;
    double sleep = capped;
    if (fraction > 0.0 && capped > 0.0)
      sleep = capped * (1.0 - fraction * rng.uniform_double());
    sleeps.push_back(sleep);
    base *= policy.backoff_multiplier;
  }
  return sleeps;
}

namespace {

RunReport run_engine(const EngineConfig& config, EngineKind kind,
                     device::Device* dev) {
  // Registry dispatch: the backend's capability flags replace the old
  // hard-coded switch here.
  return run_backend(backend_info(kind), config, dev);
}

/// Can a previously recorded chromosome be skipped on resume?  Requires a
/// "done" manifest entry for the same requested engine whose output file
/// still exists and matches the recorded CRC-32 (a torn or tampered output
/// is re-run, not trusted).
bool verified_done(const ManifestEntry* entry, EngineKind kind,
                   const std::filesystem::path& output) {
  if (entry == nullptr || entry->status != "done") return false;
  if (entry->requested != engine_name(kind)) return false;
  if (!std::filesystem::exists(output)) return false;
  return crc32_file(output) == entry->output_crc32;
}

/// FNV-1a over "<run_id>:<chromosome>": the jitter salt, so each (job,
/// chromosome) pair draws its own deterministic backoff stream.
u64 jitter_salt(const std::string& run_id, const std::string& chromosome) {
  u64 h = 1469598103934665603ULL;
  const auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 1099511628211ULL;
    }
  };
  mix(run_id);
  mix(":");
  mix(chromosome);
  return h;
}

/// Sleep `seconds` in small slices so a cancellation lands within ~50 ms
/// instead of waiting out a long backoff.
void sleep_with_cancel(double seconds, const CancelToken* cancel) {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::duration_cast<clock::duration>(
                         std::chrono::duration<double>(seconds));
  for (;;) {
    check_cancel(cancel, "backoff");
    const auto now = clock::now();
    if (now >= deadline) break;
    std::this_thread::sleep_for(std::min<clock::duration>(
        deadline - now, std::chrono::milliseconds(50)));
  }
}

}  // namespace

ChromosomeRunResult run_one_chromosome(const GenomeRunConfig& config,
                                       EngineKind kind, device::Device* dev,
                                       const ChromosomeJob& job,
                                       const RunManifest* previous) {
  GSNP_CHECK_MSG(job.reference != nullptr,
                 "chromosome " << job.name << " has no reference");
  const BackendInfo& backend = backend_info(kind);
  GSNP_CHECK_MSG(!backend.needs_device || dev != nullptr,
                 "the " << backend.name << " backend needs a device");
  check_cancel(config.cancel, "chromosome");

  const bool text_output = backend.text_output;
  const std::string output_name =
      job.name + "." + engine_name(kind) + (text_output ? ".txt" : ".snp");

  ChromosomeRunResult result;
  result.output_path = config.output_dir / output_name;
  ChromosomeStatus& status = result.status;
  status.name = job.name;
  status.requested = kind;
  status.used = kind;

  obs::Tracer* const tracer = config.tracer;
  // One span per chromosome: the failure-isolation unit.  Engine stage
  // spans nest inside; the notes record what fault handling did.
  obs::Tracer::Scope chrom_span(tracer, "chromosome:" + job.name, "pipeline");
  chrom_span.note("requested", engine_name(kind));
  if (config.streams >= 2)
    chrom_span.note("streams", std::to_string(config.streams));

  // -- resume: skip chromosomes whose recorded output still verifies.
  if (config.resume && previous != nullptr &&
      verified_done(previous->find(job.name), kind, result.output_path)) {
    const ManifestEntry& done = *previous->find(job.name);
    status.resumed = true;
    chrom_span.note("resumed", "true");
    status.used = engine_kind_from_name(done.engine).value_or(kind);
    status.degraded = done.degraded;
    status.output_crc = done.output_crc32;
    status.ingest = done.ingest;
    result.entry = done;
    return result;
  }

  // -- run, retrying device faults, into an atomically published .part.
  // Scratch artifacts (quarantine sidecar, temp input, .part staging) are
  // namespaced by run_id so concurrent jobs sharing output_dir never write
  // into each other's files; the published output name is shared on purpose
  // (identical results must rename onto identical paths).
  const std::string prefix =
      config.run_id.empty() ? std::string() : config.run_id + ".";
  EngineConfig engine_config;
  engine_config.alignment_file = job.alignment_file;
  engine_config.reference = job.reference;
  engine_config.dbsnp = job.dbsnp;
  engine_config.window_size = config.window_size;
  engine_config.prior = config.prior;
  engine_config.soapsnp_threads = config.soapsnp_threads;
  engine_config.streams = config.streams;
  engine_config.pipeline_depth = config.pipeline_depth;
  engine_config.host_threads = config.host_threads;
  engine_config.batch_bytes = config.batch_bytes;
  engine_config.ingest = config.ingest;
  if (engine_config.ingest.lenient() &&
      engine_config.ingest.quarantine_file.empty())
    engine_config.ingest.quarantine_file =
        config.output_dir / (prefix + job.name + ".quarantine.txt");
  engine_config.temp_file =
      config.output_dir /
      (prefix + job.name + "." + engine_name(kind) + ".tmp");
  engine_config.output_file = config.output_dir / (prefix + output_name + ".part");
  engine_config.tracer = tracer;
  engine_config.cancel = config.cancel;

  RunReport run;
  bool succeeded = false;
  std::exception_ptr last_fault;
  const int max_attempts = std::max(1, config.retry.max_attempts);
  const std::vector<double> sleeps =
      backoff_sequence(config.retry, jitter_salt(config.run_id, job.name));
  try {
    for (int attempt = 1; attempt <= max_attempts && !succeeded; ++attempt) {
      check_cancel(config.cancel, "attempt");
      ++status.attempts;
      {
        obs::Tracer::Scope attempt_span(tracer, "attempt", "pipeline");
        attempt_span.note("attempt", std::to_string(attempt));
        try {
          run = run_engine(engine_config, kind, dev);
          succeeded = true;
          attempt_span.note("outcome", "ok");
        } catch (const device::DeviceFaultError& fault) {
          // Transient or persistent device trouble: retry; anything else
          // (corrupt input, broken invariants) propagates immediately.
          status.error = fault.what();
          last_fault = std::current_exception();
          attempt_span.note("outcome", "device_fault");
          if (tracer) tracer->metrics().add("device_faults");
        } catch (const FsFaultError& fault) {
          // Storage trouble (ENOSPC/EIO/short write) while staging the
          // container or temp file is as retryable as a device fault: the
          // next attempt reopens the `.part` truncated, so a torn prefix
          // never leaks into the retry.
          status.error = fault.what();
          last_fault = std::current_exception();
          attempt_span.note("outcome", "storage_fault");
          if (tracer) tracer->metrics().add("storage_faults");
        }
      }
      // Backoff sleeps outside the attempt span: idle time is not work.
      if (!succeeded && attempt < max_attempts) {
        const double pause = sleeps[static_cast<size_t>(attempt - 1)];
        if (pause > 0.0) sleep_with_cancel(pause, config.cancel);
      }
    }

    // -- graceful degradation: the GSNP algorithm without the GPU produces
    // the same bytes (§IV-G), so a persistently faulty device costs speed,
    // not the run.
    if (!succeeded && kind == EngineKind::kGsnp &&
        config.retry.allow_cpu_fallback) {
      ++status.attempts;
      obs::Tracer::Scope fallback_span(tracer, "attempt", "pipeline");
      fallback_span.note("attempt", std::to_string(status.attempts));
      try {
        run = run_engine(engine_config, EngineKind::kGsnpCpu, nullptr);
        succeeded = true;
        status.degraded = true;
        status.used = EngineKind::kGsnpCpu;
        fallback_span.note("outcome", "degraded_to_cpu");
        if (tracer) tracer->metrics().add("chromosomes_degraded");
      } catch (const FsFaultError& fault) {
        // A disk that keeps failing fails the CPU path too; report it as the
        // chromosome's failure instead of letting it escape unjournaled.
        status.error = fault.what();
        last_fault = std::current_exception();
        fallback_span.note("outcome", "storage_fault");
        if (tracer) tracer->metrics().add("storage_faults");
      }
    }
  } catch (const CancelledError&) {
    // Clean unwind: discard the torn staging/temp artifacts so an interrupt
    // never leaves `.part` litter; published outputs are untouched and the
    // caller journals the interruption before rethrowing.
    std::error_code ec;
    std::filesystem::remove(engine_config.output_file, ec);
    std::filesystem::remove(engine_config.temp_file, ec);
    chrom_span.note("outcome", "cancelled");
    throw;
  }

  if (!succeeded) {
    // Report the failure as data so the caller journals it before the fault
    // surfaces — a later resume run picks up right here.
    ManifestEntry& entry = result.entry;
    entry.name = job.name;
    entry.status = "failed";
    entry.requested = engine_name(kind);
    entry.engine = engine_name(kind);
    entry.attempts = status.attempts;
    entry.output = output_name;
    entry.sites = job.reference->size();
    entry.error = status.error;
    chrom_span.note("outcome", "failed");
    result.fault = last_fault;
    return result;
  }

  // Durability checkpoints: a hook that throws here models the process
  // dying with the `.part` complete ("pre_publish") or with the output
  // renamed but not yet journaled ("post_publish").
  if (config.checkpoint_hook) config.checkpoint_hook("pre_publish", job.name);
  {
    // Publish gets its own short retry: a failed fsync or torn rename
    // leaves the complete `.part` staged, so trying again risks no engine
    // work.  Exhaustion reports the chromosome failed with the `.part`
    // intact for fsck/resume.
    const std::vector<double> publish_sleeps = backoff_sequence(
        config.retry, jitter_salt(config.run_id, job.name + "/publish"));
    for (int attempt = 1;; ++attempt) {
      try {
        atomic_publish(engine_config.output_file, result.output_path);
        break;
      } catch (const FsFaultError& fault) {
        status.error = fault.what();
        if (tracer) tracer->metrics().add("storage_faults");
        if (attempt >= max_attempts) {
          ManifestEntry& entry = result.entry;
          entry.name = job.name;
          entry.status = "failed";
          entry.requested = engine_name(kind);
          entry.engine = engine_name(status.used);
          entry.attempts = status.attempts;
          entry.output = output_name;
          entry.sites = job.reference->size();
          entry.error = status.error;
          chrom_span.note("outcome", "publish_failed");
          result.fault = std::current_exception();
          return result;
        }
        const std::size_t sleep_index = static_cast<std::size_t>(
            std::min<int>(attempt - 1,
                          static_cast<int>(publish_sleeps.size()) - 1));
        if (!publish_sleeps.empty() && publish_sleeps[sleep_index] > 0.0)
          sleep_with_cancel(publish_sleeps[sleep_index], config.cancel);
      }
    }
  }
  if (config.checkpoint_hook) config.checkpoint_hook("post_publish", job.name);

  status.output_crc = crc32_file(result.output_path);
  status.ingest = run.ingest;

  ManifestEntry& entry = result.entry;
  entry.name = job.name;
  entry.status = "done";
  entry.requested = engine_name(kind);
  entry.engine = engine_name(status.used);
  entry.degraded = status.degraded;
  entry.attempts = status.attempts;
  entry.output = output_name;
  entry.output_bytes = run.output_bytes;
  entry.output_crc32 = status.output_crc;
  entry.sites = run.sites;
  entry.error = status.error;
  entry.ingest = run.ingest;

  chrom_span.note("engine", engine_name(status.used));
  chrom_span.note("attempts", std::to_string(status.attempts));
  if (status.degraded) chrom_span.note("degraded", "true");
  if (tracer) tracer->metrics().add("chromosomes");
  result.run = std::move(run);
  return result;
}

GenomeReport run_genome(const GenomeRunConfig& config, EngineKind kind,
                        device::Device* dev) {
  GSNP_CHECK_MSG(!backend_info(kind).needs_device || dev != nullptr,
                 "the " << backend_info(kind).name << " backend needs a device");
  std::filesystem::create_directories(config.output_dir);
  const std::filesystem::path manifest_path =
      config.manifest_file.empty() ? config.output_dir / "manifest.json"
                                   : config.manifest_file;

  RunManifest previous;
  if (config.resume && std::filesystem::exists(manifest_path))
    previous = read_run_manifest(manifest_path);

  RunManifest manifest;
  manifest.engine = engine_name(kind);

  GenomeReport report;
  report.manifest_file = manifest_path;
  obs::Tracer* const tracer = config.tracer;

  // Exports are published on every exit path — a fatal fault still leaves
  // the spans collected so far on disk for post-mortems.  The manifest
  // records where they went.
  const auto publish_observability = [&](RunManifest& m) {
    if (tracer == nullptr) return;
    if (!config.trace_file.empty()) {
      obs::write_chrome_trace(config.trace_file, *tracer);
      m.trace_file = config.trace_file.string();
    }
    if (!config.metrics_file.empty()) {
      obs::write_metrics_json(config.metrics_file, *tracer);
      m.metrics_file = config.metrics_file.string();
    }
  };

  for (const ChromosomeJob& job : config.chromosomes) {
    ChromosomeRunResult r;
    try {
      r = run_one_chromosome(config, kind, dev, job,
                             config.resume ? &previous : nullptr);
    } catch (const CancelledError& cancelled) {
      // Journal the interruption (status "interrupted" never verifies as
      // done, so a resume run re-executes this chromosome) and flush what
      // completed before unwinding.
      ManifestEntry entry;
      entry.name = job.name;
      entry.status = "interrupted";
      entry.requested = engine_name(kind);
      entry.engine = engine_name(kind);
      entry.output = job.name + "." + engine_name(kind) +
                     (backend_info(kind).text_output ? ".txt" : ".snp");
      entry.error = cancelled.what();
      manifest.chromosomes.push_back(std::move(entry));
      publish_observability(manifest);
      write_run_manifest(manifest_path, manifest);
      throw;
    }

    manifest.chromosomes.push_back(r.entry);
    if (r.fault != nullptr) {
      // Record the failure so a later --resume run picks up right here,
      // then surface the device fault to the caller.
      publish_observability(manifest);
      write_run_manifest(manifest_path, manifest);
      std::rethrow_exception(r.fault);
    }
    write_run_manifest(manifest_path, manifest);

    report.total_ingest.merge(r.status.ingest);
    report.total_sites += r.entry.sites;
    report.total_output_bytes += r.entry.output_bytes;
    if (!r.status.resumed) report.total_seconds += r.run.total();
    report.output_files.push_back(std::move(r.output_path));
    report.per_chromosome.push_back(std::move(r.run));
    report.statuses.push_back(std::move(r.status));
  }

  if (tracer) {
    tracer->metrics().set_gauge("genome_total_seconds", report.total_seconds);
    if (report.total_seconds > 0.0)
      tracer->metrics().set_gauge(
          "genome_sites_per_sec",
          static_cast<double>(report.total_sites) / report.total_seconds);
    publish_observability(manifest);
    if (!manifest.trace_file.empty() || !manifest.metrics_file.empty())
      write_run_manifest(manifest_path, manifest);
  }
  return report;
}

}  // namespace gsnp::core
