#include "src/core/genome_pipeline.hpp"

#include <chrono>
#include <thread>

#include "src/common/atomic_file.hpp"
#include "src/common/crc32.hpp"
#include "src/common/error.hpp"
#include "src/core/run_manifest.hpp"
#include "src/obs/trace.hpp"

namespace gsnp::core {

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSoapsnp: return "soapsnp";
    case EngineKind::kGsnpCpu: return "gsnp_cpu";
    case EngineKind::kGsnp: return "gsnp";
  }
  return "?";
}

std::optional<EngineKind> engine_kind_from_name(std::string_view name) {
  if (name == "soapsnp") return EngineKind::kSoapsnp;
  if (name == "gsnp_cpu") return EngineKind::kGsnpCpu;
  if (name == "gsnp") return EngineKind::kGsnp;
  return std::nullopt;
}

namespace {

RunReport run_engine(const EngineConfig& config, EngineKind kind,
                     device::Device* dev) {
  switch (kind) {
    case EngineKind::kSoapsnp: return run_soapsnp(config);
    case EngineKind::kGsnpCpu: return run_gsnp_cpu(config);
    case EngineKind::kGsnp: return run_gsnp(config, *dev);
  }
  GSNP_CHECK_MSG(false, "bad engine kind");
  return {};
}

/// Can a previously recorded chromosome be skipped on resume?  Requires a
/// "done" manifest entry for the same requested engine whose output file
/// still exists and matches the recorded CRC-32 (a torn or tampered output
/// is re-run, not trusted).
bool verified_done(const ManifestEntry* entry, EngineKind kind,
                   const std::filesystem::path& output) {
  if (entry == nullptr || entry->status != "done") return false;
  if (entry->requested != engine_name(kind)) return false;
  if (!std::filesystem::exists(output)) return false;
  return crc32_file(output) == entry->output_crc32;
}

}  // namespace

GenomeReport run_genome(const GenomeRunConfig& config, EngineKind kind,
                        device::Device* dev) {
  GSNP_CHECK_MSG(kind != EngineKind::kGsnp || dev != nullptr,
                 "the GSNP engine needs a device");
  std::filesystem::create_directories(config.output_dir);
  const std::filesystem::path manifest_path =
      config.manifest_file.empty() ? config.output_dir / "manifest.json"
                                   : config.manifest_file;

  RunManifest previous;
  if (config.resume && std::filesystem::exists(manifest_path))
    previous = read_run_manifest(manifest_path);

  RunManifest manifest;
  manifest.engine = engine_name(kind);

  GenomeReport report;
  report.manifest_file = manifest_path;
  const bool text_output = kind == EngineKind::kSoapsnp;
  const char* extension = text_output ? ".txt" : ".snp";
  obs::Tracer* const tracer = config.tracer;

  // Exports are published on every exit path — a fatal fault still leaves
  // the spans collected so far on disk for post-mortems.  The manifest
  // records where they went.
  const auto publish_observability = [&](RunManifest& m) {
    if (tracer == nullptr) return;
    if (!config.trace_file.empty()) {
      obs::write_chrome_trace(config.trace_file, *tracer);
      m.trace_file = config.trace_file.string();
    }
    if (!config.metrics_file.empty()) {
      obs::write_metrics_json(config.metrics_file, *tracer);
      m.metrics_file = config.metrics_file.string();
    }
  };

  for (const ChromosomeJob& job : config.chromosomes) {
    GSNP_CHECK_MSG(job.reference != nullptr,
                   "chromosome " << job.name << " has no reference");
    const std::string output_name =
        job.name + "." + engine_name(kind) + extension;
    const std::filesystem::path output_path = config.output_dir / output_name;

    ChromosomeStatus status;
    status.name = job.name;
    status.requested = kind;
    status.used = kind;

    // One span per chromosome: the failure-isolation unit.  Engine stage
    // spans nest inside; the notes record what fault handling did.
    obs::Tracer::Scope chrom_span(tracer, "chromosome:" + job.name,
                                  "pipeline");
    chrom_span.note("requested", engine_name(kind));
    if (config.streams >= 2)
      chrom_span.note("streams", std::to_string(config.streams));

    // -- resume: skip chromosomes whose recorded output still verifies.
    if (config.resume &&
        verified_done(previous.find(job.name), kind, output_path)) {
      const ManifestEntry& done = *previous.find(job.name);
      status.resumed = true;
      chrom_span.note("resumed", "true");
      status.used = engine_kind_from_name(done.engine).value_or(kind);
      status.degraded = done.degraded;
      status.output_crc = done.output_crc32;
      status.ingest = done.ingest;
      report.total_ingest.merge(done.ingest);
      report.total_sites += done.sites;
      report.total_output_bytes += done.output_bytes;
      report.output_files.push_back(output_path);
      report.per_chromosome.emplace_back();  // no work done this run
      report.statuses.push_back(status);
      manifest.chromosomes.push_back(done);
      write_run_manifest(manifest_path, manifest);
      continue;
    }

    // -- run, retrying device faults, into an atomically published .part.
    EngineConfig engine_config;
    engine_config.alignment_file = job.alignment_file;
    engine_config.reference = job.reference;
    engine_config.dbsnp = job.dbsnp;
    engine_config.window_size = config.window_size;
    engine_config.prior = config.prior;
    engine_config.soapsnp_threads = config.soapsnp_threads;
    engine_config.streams = config.streams;
    engine_config.pipeline_depth = config.pipeline_depth;
    engine_config.host_threads = config.host_threads;
    engine_config.ingest = config.ingest;
    if (engine_config.ingest.lenient() &&
        engine_config.ingest.quarantine_file.empty())
      engine_config.ingest.quarantine_file =
          config.output_dir / (job.name + ".quarantine.txt");
    engine_config.temp_file =
        config.output_dir / (job.name + "." + engine_name(kind) + ".tmp");
    engine_config.output_file = output_path.string() + ".part";
    engine_config.tracer = tracer;

    RunReport run;
    bool succeeded = false;
    std::exception_ptr last_fault;
    const int max_attempts = std::max(1, config.retry.max_attempts);
    double backoff = config.retry.backoff_seconds;
    for (int attempt = 1; attempt <= max_attempts && !succeeded; ++attempt) {
      ++status.attempts;
      {
        obs::Tracer::Scope attempt_span(tracer, "attempt", "pipeline");
        attempt_span.note("attempt", std::to_string(attempt));
        try {
          run = run_engine(engine_config, kind, dev);
          succeeded = true;
          attempt_span.note("outcome", "ok");
        } catch (const device::DeviceFaultError& fault) {
          // Transient or persistent device trouble: retry; anything else
          // (corrupt input, broken invariants) propagates immediately.
          status.error = fault.what();
          last_fault = std::current_exception();
          attempt_span.note("outcome", "device_fault");
          if (tracer) tracer->metrics().add("device_faults");
        }
      }
      // Backoff sleeps outside the attempt span: idle time is not work.
      if (!succeeded && attempt < max_attempts && backoff > 0.0) {
        std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
        backoff *= config.retry.backoff_multiplier;
      }
    }

    // -- graceful degradation: the GSNP algorithm without the GPU produces
    // the same bytes (§IV-G), so a persistently faulty device costs speed,
    // not the run.
    if (!succeeded && kind == EngineKind::kGsnp &&
        config.retry.allow_cpu_fallback) {
      ++status.attempts;
      obs::Tracer::Scope fallback_span(tracer, "attempt", "pipeline");
      fallback_span.note("attempt", std::to_string(status.attempts));
      fallback_span.note("outcome", "degraded_to_cpu");
      run = run_engine(engine_config, EngineKind::kGsnpCpu, nullptr);
      succeeded = true;
      status.degraded = true;
      status.used = EngineKind::kGsnpCpu;
      if (tracer) tracer->metrics().add("chromosomes_degraded");
    }

    if (!succeeded) {
      // Record the failure so a later --resume run picks up right here,
      // then surface the device fault to the caller.
      ManifestEntry entry;
      entry.name = job.name;
      entry.status = "failed";
      entry.requested = engine_name(kind);
      entry.engine = engine_name(kind);
      entry.attempts = status.attempts;
      entry.output = output_name;
      entry.sites = job.reference->size();
      entry.error = status.error;
      manifest.chromosomes.push_back(std::move(entry));
      chrom_span.note("outcome", "failed");
      publish_observability(manifest);
      write_run_manifest(manifest_path, manifest);
      std::rethrow_exception(last_fault);
    }

    atomic_publish(engine_config.output_file, output_path);
    status.output_crc = crc32_file(output_path);
    status.ingest = run.ingest;
    report.total_ingest.merge(run.ingest);

    ManifestEntry entry;
    entry.name = job.name;
    entry.status = "done";
    entry.requested = engine_name(kind);
    entry.engine = engine_name(status.used);
    entry.degraded = status.degraded;
    entry.attempts = status.attempts;
    entry.output = output_name;
    entry.output_bytes = run.output_bytes;
    entry.output_crc32 = status.output_crc;
    entry.sites = run.sites;
    entry.error = status.error;
    entry.ingest = run.ingest;
    manifest.chromosomes.push_back(std::move(entry));
    write_run_manifest(manifest_path, manifest);

    report.total_seconds += run.total();
    report.total_sites += run.sites;
    report.total_output_bytes += run.output_bytes;
    report.output_files.push_back(output_path);
    report.per_chromosome.push_back(std::move(run));
    chrom_span.note("engine", engine_name(status.used));
    chrom_span.note("attempts", std::to_string(status.attempts));
    if (status.degraded) chrom_span.note("degraded", "true");
    if (tracer) tracer->metrics().add("chromosomes");
    report.statuses.push_back(std::move(status));
  }

  if (tracer) {
    tracer->metrics().set_gauge("genome_total_seconds", report.total_seconds);
    if (report.total_seconds > 0.0)
      tracer->metrics().set_gauge(
          "genome_sites_per_sec",
          static_cast<double>(report.total_sites) / report.total_seconds);
    publish_observability(manifest);
    if (!manifest.trace_file.empty() || !manifest.metrics_file.empty())
      write_run_manifest(manifest_path, manifest);
  }
  return report;
}

}  // namespace gsnp::core
