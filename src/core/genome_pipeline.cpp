#include "src/core/genome_pipeline.hpp"

#include "src/common/error.hpp"

namespace gsnp::core {

const char* engine_name(EngineKind kind) {
  switch (kind) {
    case EngineKind::kSoapsnp: return "soapsnp";
    case EngineKind::kGsnpCpu: return "gsnp_cpu";
    case EngineKind::kGsnp: return "gsnp";
  }
  return "?";
}

GenomeReport run_genome(const GenomeRunConfig& config, EngineKind kind,
                        device::Device* dev) {
  GSNP_CHECK_MSG(kind != EngineKind::kGsnp || dev != nullptr,
                 "the GSNP engine needs a device");
  std::filesystem::create_directories(config.output_dir);

  GenomeReport report;
  for (const ChromosomeJob& job : config.chromosomes) {
    GSNP_CHECK_MSG(job.reference != nullptr,
                   "chromosome " << job.name << " has no reference");
    EngineConfig engine_config;
    engine_config.alignment_file = job.alignment_file;
    engine_config.reference = job.reference;
    engine_config.dbsnp = job.dbsnp;
    engine_config.window_size = config.window_size;
    engine_config.prior = config.prior;
    engine_config.soapsnp_threads = config.soapsnp_threads;
    engine_config.temp_file =
        config.output_dir / (job.name + "." + engine_name(kind) + ".tmp");
    const bool text_output = kind == EngineKind::kSoapsnp;
    engine_config.output_file =
        config.output_dir /
        (job.name + "." + engine_name(kind) + (text_output ? ".txt" : ".snp"));

    RunReport run;
    switch (kind) {
      case EngineKind::kSoapsnp: run = run_soapsnp(engine_config); break;
      case EngineKind::kGsnpCpu: run = run_gsnp_cpu(engine_config); break;
      case EngineKind::kGsnp: run = run_gsnp(engine_config, *dev); break;
    }

    report.total_seconds += run.total();
    report.total_sites += run.sites;
    report.total_output_bytes += run.output_bytes;
    report.output_files.push_back(engine_config.output_file);
    report.per_chromosome.push_back(std::move(run));
  }
  return report;
}

}  // namespace gsnp::core
