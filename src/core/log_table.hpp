#pragma once
// The log_table of paper §IV-G: base-10 logarithms of the small integers used
// by the quality-adjustment step, computed once on the host.
//
// GSNP guarantees bit-exact agreement with the CPU implementation by never
// evaluating transcendental functions on the device: `adjust` reads this
// table (placed in constant memory), and the likelihood kernel reads
// new_p_matrix.  Both implementations here — dense/CPU and sparse/device —
// share this single table, which is how the consistency property is enforced
// structurally.

#include <array>
#include <cmath>

#include "src/common/types.hpp"

namespace gsnp::core {

/// Table size: log10 of the integers 0..64 (the paper's "64 integers").
inline constexpr int kLogTableSize = 65;

/// Build the table.  Entry 0 is defined as 0 (log10(0) never contributes: the
/// dependency count passed to adjust is always >= 1).
inline std::array<double, kLogTableSize> make_log_table() {
  std::array<double, kLogTableSize> table{};
  table[0] = 0.0;
  for (int i = 1; i < kLogTableSize; ++i)
    table[static_cast<std::size_t>(i)] = std::log10(static_cast<double>(i));
  return table;
}

/// Process-wide shared instance (computed once, immutable thereafter).
const std::array<double, kLogTableSize>& log_table();

}  // namespace gsnp::core
