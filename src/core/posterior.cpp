#include "src/core/posterior.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/core/ranksum.hpp"

namespace gsnp::core {

namespace {

/// Ranking for the "best" / "second best" base columns: by unique count,
/// breaking ties by total count, then by summed quality, then base id —
/// a total order so every implementation agrees.
struct BaseRank {
  u32 uniq;
  u32 all;
  u32 qual;
  u8 base;
};

bool better(const BaseRank& a, const BaseRank& b) {
  if (a.uniq != b.uniq) return a.uniq > b.uniq;
  if (a.all != b.all) return a.all > b.all;
  if (a.qual != b.qual) return a.qual > b.qual;
  return a.base < b.base;
}

}  // namespace

PosteriorCall select_from_log_posteriors(const double* lp) {
  int best_g = 0, second_g = 0;
  double best_lp = -1e300, second_lp = -1e300;
  for (int g = 0; g < kNumGenotypes; ++g) {
    const double v = lp[g];
    if (v > best_lp) {
      second_lp = best_lp;
      second_g = best_g;
      best_lp = v;
      best_g = g;
    } else if (v > second_lp) {
      second_lp = v;
      second_g = g;
    }
  }
  PosteriorCall call;
  call.best = static_cast<i8>(best_g);
  call.second = static_cast<i8>(second_g);
  const double gap = 10.0 * (best_lp - second_lp);
  call.quality = static_cast<u16>(
      std::clamp(static_cast<long>(std::lround(gap)), 0L, 99L));
  return call;
}

PosteriorCall select_genotype(const GenotypePriors& log_prior,
                              const TypeLikely& type_likely) {
  std::array<double, kNumGenotypes> lp;
  for (int g = 0; g < kNumGenotypes; ++g)
    lp[static_cast<std::size_t>(g)] = log_prior[static_cast<std::size_t>(g)] +
                                      type_likely[static_cast<std::size_t>(g)];
  return select_from_log_posteriors(lp.data());
}

PriorCache::PriorCache(const PriorParams& params) : params_(params) {
  for (u8 b = 0; b < kNumBases; ++b)
    novel_[b] = genotype_log_priors(b, nullptr, params);
  novel_[kNumBases] = genotype_log_priors(kInvalidBase, nullptr, params);
}

const GenotypePriors& PriorCache::get(u8 ref_base,
                                      const genome::KnownSnpEntry* known) {
  if (known == nullptr)
    return novel_[ref_base < kNumBases ? ref_base : kNumBases];
  scratch_ = genotype_log_priors(ref_base, known, params_);
  return scratch_;
}

SnpRow assemble_row(u64 pos, u8 ref_base, bool in_dbsnp,
                    const PosteriorCall& call, const SiteStats& stats,
                    std::span<const AlignedBase> site_obs,
                    std::span<const u32> site_hits) {
  SnpRow row;
  row.pos = pos;
  row.ref_base = ref_base;
  row.in_dbsnp = in_dbsnp;
  row.depth = stats.depth;
  row.genotype_rank = call.best;

  // Consensus quality: Phred-scaled gap between best and runner-up posterior.
  // Sites with no uniquely aligned evidence get quality 0 (prior-only call).
  u32 n_uniq = 0;
  for (const u32 h : site_hits) n_uniq += (h == 1);
  row.quality = n_uniq == 0 ? u16{0} : call.quality;

  // ---- best / second-best base columns ---------------------------------------
  std::array<BaseRank, kNumBases> ranks;
  for (u8 b = 0; b < kNumBases; ++b)
    ranks[b] = {stats.count_uniq[b], stats.count_all[b], stats.qual_sum_all[b],
                b};
  std::sort(ranks.begin(), ranks.end(), better);

  const auto fill = [&](const BaseRank& r, u8& base, u16& avg_q, u32& uniq,
                        u32& all) {
    if (r.all == 0) {
      base = kInvalidBase;
      avg_q = 0;
      uniq = 0;
      all = 0;
      return;
    }
    base = r.base;
    avg_q = static_cast<u16>(r.qual / r.all);
    uniq = r.uniq;
    all = r.all;
  };
  fill(ranks[0], row.best_base, row.best_avg_quality, row.best_uniq_count,
       row.best_all_count);
  fill(ranks[1], row.second_base, row.second_avg_quality,
       row.second_uniq_count, row.second_all_count);

  // ---- rank-sum test on unique-read qualities (best vs second base) ----------
  if (row.best_base != kInvalidBase && row.second_base != kInvalidBase) {
    std::vector<u8> q_best, q_second;
    for (std::size_t k = 0; k < site_obs.size(); ++k) {
      if (site_hits[k] != 1) continue;
      if (site_obs[k].base == row.best_base)
        q_best.push_back(site_obs[k].quality);
      else if (site_obs[k].base == row.second_base)
        q_second.push_back(site_obs[k].quality);
    }
    row.rank_sum_p = round_p(rank_sum_p(q_best, q_second));
  } else {
    row.rank_sum_p = 1.0;
  }

  // ---- average copy number -----------------------------------------------------
  row.copy_number =
      stats.depth == 0
          ? 0.0
          : std::round(100.0 * static_cast<double>(stats.hit_sum) /
                       static_cast<double>(stats.depth)) /
                100.0;
  return row;
}

SnpRow compute_posterior(u64 pos, u8 ref_base,
                         const genome::KnownSnpEntry* known,
                         const PriorParams& params,
                         const TypeLikely& type_likely, const SiteStats& stats,
                         std::span<const AlignedBase> site_obs,
                         std::span<const u32> site_hits) {
  const GenotypePriors log_prior = genotype_log_priors(ref_base, known, params);
  return assemble_row(pos, ref_base, known != nullptr,
                      select_genotype(log_prior, type_likely), stats, site_obs,
                      site_hits);
}

}  // namespace gsnp::core
