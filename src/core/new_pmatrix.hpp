#pragma once
// The new score table new_p_matrix (paper §IV-D, Algorithm 3).
//
// For every (q_adjusted, coord, observed-base) cell of p_matrix, precompute
// the ten values log10(0.5 * p[allele1] + 0.5 * p[allele2]) — one per
// unordered allele pair in canonical loop order — and store them
// consecutively.  This converts likely_update's two random reads of p_matrix
// plus one log10 call into a single table read:
//
//   idx = (q_adjusted << 10 | coord << 2 | base) * 10 + i          (Alg. 3)
//
// The table is computed once on the host (so CPU and device read identical
// doubles, §IV-G) and uploaded to device global memory before any likelihood
// work.

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/types.hpp"
#include "src/core/pmatrix.hpp"

namespace gsnp::core {

/// Floor for the averaged allele-pair probability inside likely_update
/// (Algorithm 2), shared by every implementation of the expression: the
/// dense CPU path, this precomputed table, and the device kernels.  A
/// zero-probability p_matrix cell (possible only in matrices loaded from
/// disk or constructed by hand — finalize_p_matrix's pseudocount keeps real
/// calibrations strictly positive, so the clamp never fires on them) would
/// otherwise make log10 return -inf and poison the whole site's TypeLikely;
/// the floor turns it into one large-but-finite penalty instead.
inline constexpr double kMinAllelePairProb = 1e-300;

/// likely_update's log term with the shared zero guard:
/// log10(max(0.5*p1 + 0.5*p2, kMinAllelePairProb)).  Every path (dense,
/// new-table precompute, device fallback) must call this so the §IV-G
/// bit-exactness contract covers degenerate matrices too.
inline double likely_log10(double p1, double p2) {
  return std::log10(std::max(0.5 * p1 + 0.5 * p2, kMinAllelePairProb));
}

class NewPMatrix {
 public:
  /// (q << 10 | coord << 2 | base) spans kQualityLevels << 10 cells.
  static constexpr u64 kCells = static_cast<u64>(kQualityLevels) << 10;
  static constexpr u64 kSize = kCells * kNumGenotypes;

  /// Build from a finalized p_matrix (host-side, once).
  explicit NewPMatrix(const PMatrix& pm);

  static constexpr u64 index(int q, int coord, int obs, int combo) {
    return ((static_cast<u64>(q) << 10) | (static_cast<u64>(coord) << 2) |
            static_cast<u64>(obs)) *
               kNumGenotypes +
           static_cast<u64>(combo);
  }

  double at(int q, int coord, int obs, int combo) const {
    return values_[index(q, coord, obs, combo)];
  }

  const std::vector<double>& flat() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace gsnp::core
