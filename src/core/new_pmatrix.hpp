#pragma once
// The new score table new_p_matrix (paper §IV-D, Algorithm 3).
//
// For every (q_adjusted, coord, observed-base) cell of p_matrix, precompute
// the ten values log10(0.5 * p[allele1] + 0.5 * p[allele2]) — one per
// unordered allele pair in canonical loop order — and store them
// consecutively.  This converts likely_update's two random reads of p_matrix
// plus one log10 call into a single table read:
//
//   idx = (q_adjusted << 10 | coord << 2 | base) * 10 + i          (Alg. 3)
//
// The table is computed once on the host (so CPU and device read identical
// doubles, §IV-G) and uploaded to device global memory before any likelihood
// work.

#include <vector>

#include "src/common/types.hpp"
#include "src/core/pmatrix.hpp"

namespace gsnp::core {

class NewPMatrix {
 public:
  /// (q << 10 | coord << 2 | base) spans kQualityLevels << 10 cells.
  static constexpr u64 kCells = static_cast<u64>(kQualityLevels) << 10;
  static constexpr u64 kSize = kCells * kNumGenotypes;

  /// Build from a finalized p_matrix (host-side, once).
  explicit NewPMatrix(const PMatrix& pm);

  static constexpr u64 index(int q, int coord, int obs, int combo) {
    return ((static_cast<u64>(q) << 10) | (static_cast<u64>(coord) << 2) |
            static_cast<u64>(obs)) *
               kNumGenotypes +
           static_cast<u64>(combo);
  }

  double at(int q, int coord, int obs, int combo) const {
    return values_[index(q, coord, obs, combo)];
  }

  const std::vector<double>& flat() const { return values_; }

 private:
  std::vector<double> values_;
};

}  // namespace gsnp::core
