#include "src/core/backend.hpp"

#include <array>
#include <sstream>

namespace gsnp::core {

namespace {

constexpr std::array<BackendInfo, 4> kRegistry{{
    {EngineKind::kSoapsnp, "soapsnp", "soapsnp",
     "SOAPsnp CPU baseline: dense base_occ, Algorithm 1, text output",
     /*needs_device=*/false, /*sparse=*/false, /*text_output=*/true,
     /*simd=*/false},
    {EngineKind::kGsnpCpu, "gsnp-cpu", "gsnp_cpu",
     "GSNP algorithm on the host: sparse base_word, new_p_matrix, "
     "compressed I/O",
     /*needs_device=*/false, /*sparse=*/true, /*text_output=*/false,
     /*simd=*/false},
    {EngineKind::kGsnp, "gsnp", "gsnp",
     "full GSNP system: device sort + likelihood kernels, device RLE-DICT "
     "output",
     /*needs_device=*/true, /*sparse=*/true, /*text_output=*/false,
     /*simd=*/false},
    {EngineKind::kGsnpSimd, "gsnp-simd", "gsnp_simd",
     "gsnp-cpu with vectorized likelihood/posterior kernels (AVX2 -> SSE2 "
     "-> scalar runtime dispatch)",
     /*needs_device=*/false, /*sparse=*/true, /*text_output=*/false,
     /*simd=*/true},
}};

std::string unknown_backend_message(std::string_view name) {
  std::ostringstream os;
  os << "unknown backend '" << name << "' (valid: " << backend_name_list()
     << ")";
  return os.str();
}

}  // namespace

const char* engine_name(EngineKind kind) { return backend_info(kind).id; }

std::optional<EngineKind> engine_kind_from_name(std::string_view name) {
  if (const BackendInfo* info = find_backend(name)) return info->kind;
  return std::nullopt;
}

std::span<const BackendInfo> backend_registry() {
  return {kRegistry.data(), kRegistry.size()};
}

const BackendInfo* find_backend(std::string_view name) {
  for (const BackendInfo& info : kRegistry)
    if (name == info.name || name == info.id) return &info;
  return nullptr;
}

const BackendInfo& backend_info(EngineKind kind) {
  for (const BackendInfo& info : kRegistry)
    if (info.kind == kind) return info;
  GSNP_CHECK_MSG(false, "unregistered engine kind "
                            << static_cast<int>(kind));
  return kRegistry[0];  // unreachable
}

std::string backend_name_list() {
  std::string names;
  for (const BackendInfo& info : kRegistry) {
    if (!names.empty()) names += ", ";
    names += info.name;
  }
  return names;
}

UnknownBackendError::UnknownBackendError(std::string_view name)
    : Error(unknown_backend_message(name)) {}

const BackendInfo& require_backend(std::string_view name) {
  const BackendInfo* info = find_backend(name);
  if (info == nullptr) throw UnknownBackendError(name);
  return *info;
}

RunReport run_backend(const BackendInfo& backend, const EngineConfig& config,
                      device::Device* dev, const device::PerfModel& model) {
  GSNP_CHECK_MSG(!backend.needs_device || dev != nullptr,
                 "backend " << backend.name << " needs a device");
  switch (backend.kind) {
    case EngineKind::kSoapsnp: return run_soapsnp(config);
    case EngineKind::kGsnpCpu: return run_gsnp_cpu(config);
    case EngineKind::kGsnpSimd: return run_gsnp_simd(config);
    case EngineKind::kGsnp: return run_gsnp(config, *dev, model);
  }
  GSNP_CHECK_MSG(false, "bad engine kind");
  return {};
}

}  // namespace gsnp::core
