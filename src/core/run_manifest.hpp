#pragma once
// The whole-genome run manifest (`manifest.json`): a crash-safe record of
// per-chromosome completion written atomically after every chromosome by
// core::run_genome.  A resumed run (`GenomeRunConfig::resume`) reads it back,
// verifies each completed chromosome's output file against the recorded
// CRC-32, and skips the verified ones.  Schema documented in FORMATS.md §10.

#include <filesystem>
#include <string>
#include <vector>

#include "src/common/ingest.hpp"
#include "src/common/types.hpp"

namespace gsnp::core {

struct ManifestEntry {
  std::string name;        ///< chromosome / job name
  std::string status;      ///< "done" | "failed"
  std::string requested;   ///< engine requested for the run
  std::string engine;      ///< engine that actually produced the output
  bool degraded = false;   ///< true when engine != requested (CPU fallback)
  int attempts = 0;        ///< engine attempts consumed (including fallback)
  std::string output;      ///< output file name, relative to the output dir
  u64 output_bytes = 0;    ///< size of the published output file
  u32 output_crc32 = 0;    ///< CRC-32 of the published output file
  u64 sites = 0;           ///< reference sites processed
  std::string error;       ///< last fault message ("" when clean)
  /// Alignment ingest outcome (ok / unsupported / quarantined per reason).
  /// Absent in pre-ingest manifests; reads back as all zeros then.
  IngestStats ingest;
};

struct RunManifest {
  int version = 1;
  std::string engine;      ///< requested engine for the whole run
  /// Observability exports published alongside the run ("" = tracing off):
  /// the Chrome trace_event JSON and the compact metrics JSON (DESIGN.md,
  /// "Observability").  Optional on read for pre-tracing manifests.
  std::string trace_file;
  std::string metrics_file;
  std::vector<ManifestEntry> chromosomes;

  const ManifestEntry* find(const std::string& name) const;
};

/// Serialize and atomically publish (write to `<path>.part`, fsync, rename).
void write_run_manifest(const std::filesystem::path& path,
                        const RunManifest& manifest);

/// Parse a manifest; throws gsnp::Error on missing file or malformed JSON.
RunManifest read_run_manifest(const std::filesystem::path& path);

/// Canonical SHA-256 digest of a manifest's *results*: engine, and per
/// chromosome the name/status/engines/degraded flag/output name/size/CRC/
/// site count and ingest totals.  Machine-dependent fields (trace and
/// metrics export paths, error prose, attempt counts — which legitimately
/// vary across retries of the same deterministic result) are excluded, so
/// two runs that produced identical outputs digest identically even on
/// different machines or run directories.  The determinism battery compares
/// serial vs overlapped runs with this.
std::string manifest_digest(const RunManifest& manifest);

}  // namespace gsnp::core
