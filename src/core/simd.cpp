#include "src/core/simd.hpp"

#include <array>
#include <cstdlib>
#include <string>

#include "src/common/error.hpp"
#include "src/core/adjust.hpp"
#include "src/core/log_table.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#define GSNP_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__)
#define GSNP_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace gsnp::core::simd {

namespace {

std::optional<Level>& forced_level() {
  static std::optional<Level> forced;
  return forced;
}

#if defined(GSNP_SIMD_X86)

// ---- sparse likelihood (Algorithm 4 computation step) ----------------------
//
// Per aligned base the scalar loop adds one contiguous ten-double NewPMatrix
// row into type_likely.  The vector kernels hold type_likely in vector
// accumulators (4+4+2 lanes for AVX2, 5x2 for SSE2) and add the row with
// unaligned loads; lane g performs exactly the scalar addition sequence for
// genotype g.  Unpack, depth counting, quality adjustment and sortedness
// validation are the same scalar code as likelihood.cpp.

TypeLikely sparse_site_sse2(std::span<const u32> sorted_words,
                            const NewPMatrix& npm) {
  TypeLikely type_likely{};
  std::array<u16, kNumStrands * kMaxReadLen> dep_count{};
  const double* logs = log_table().data();
  const double* flat = npm.flat().data();

  __m128d acc0 = _mm_setzero_pd();
  __m128d acc1 = _mm_setzero_pd();
  __m128d acc2 = _mm_setzero_pd();
  __m128d acc3 = _mm_setzero_pd();
  __m128d acc4 = _mm_setzero_pd();

  int last_base = 0;
  u32 prev_word = 0;
  std::size_t index = 0;
  for (const u32 word : sorted_words) {
    if (word < prev_word) detail::throw_unsorted_window(index, prev_word, word);
    prev_word = word;
    ++index;
    const AlignedBase ab = base_word_unpack(word);
    if (ab.base > last_base) {  // Alg. 4 lines 8-10
      dep_count.fill(0);
      last_base = ab.base;
    }
    const int dep = ++dep_count[static_cast<std::size_t>(
        static_cast<int>(ab.strand) * kMaxReadLen + ab.coord)];
    const int q_adj = adjust_quality(ab.quality, dep, logs);
    const double* row =
        flat + NewPMatrix::index(q_adj, ab.coord, ab.base, 0);
    acc0 = _mm_add_pd(acc0, _mm_loadu_pd(row));
    acc1 = _mm_add_pd(acc1, _mm_loadu_pd(row + 2));
    acc2 = _mm_add_pd(acc2, _mm_loadu_pd(row + 4));
    acc3 = _mm_add_pd(acc3, _mm_loadu_pd(row + 6));
    acc4 = _mm_add_pd(acc4, _mm_loadu_pd(row + 8));
  }
  _mm_storeu_pd(type_likely.data(), acc0);
  _mm_storeu_pd(type_likely.data() + 2, acc1);
  _mm_storeu_pd(type_likely.data() + 4, acc2);
  _mm_storeu_pd(type_likely.data() + 6, acc3);
  _mm_storeu_pd(type_likely.data() + 8, acc4);
  return type_likely;
}

__attribute__((target("avx2"))) TypeLikely sparse_site_avx2(
    std::span<const u32> sorted_words, const NewPMatrix& npm) {
  TypeLikely type_likely{};
  std::array<u16, kNumStrands * kMaxReadLen> dep_count{};
  const double* logs = log_table().data();
  const double* flat = npm.flat().data();

  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  __m128d acc2 = _mm_setzero_pd();

  int last_base = 0;
  u32 prev_word = 0;
  std::size_t index = 0;
  for (const u32 word : sorted_words) {
    if (word < prev_word) detail::throw_unsorted_window(index, prev_word, word);
    prev_word = word;
    ++index;
    const AlignedBase ab = base_word_unpack(word);
    if (ab.base > last_base) {  // Alg. 4 lines 8-10
      dep_count.fill(0);
      last_base = ab.base;
    }
    const int dep = ++dep_count[static_cast<std::size_t>(
        static_cast<int>(ab.strand) * kMaxReadLen + ab.coord)];
    const int q_adj = adjust_quality(ab.quality, dep, logs);
    const double* row =
        flat + NewPMatrix::index(q_adj, ab.coord, ab.base, 0);
    acc0 = _mm256_add_pd(acc0, _mm256_loadu_pd(row));
    acc1 = _mm256_add_pd(acc1, _mm256_loadu_pd(row + 4));
    acc2 = _mm_add_pd(acc2, _mm_loadu_pd(row + 8));
  }
  _mm256_storeu_pd(type_likely.data(), acc0);
  _mm256_storeu_pd(type_likely.data() + 4, acc1);
  _mm_storeu_pd(type_likely.data() + 8, acc2);
  return type_likely;
}

// ---- dense likelihood (Algorithms 1+2) -------------------------------------
//
// Per occurrence the scalar loop evaluates likely_update for the ten allele
// pairs: 0.5*p[a1] + 0.5*p[a2], clamped, log10, accumulate.  The vector
// kernels compute all ten clamped pair probabilities at once (the four
// p_matrix reads are shared across lanes), then run scalar libm log10 per
// lane so the transcendental bits match the reference exactly.  The max
// operand order (floor first) matches std::max(v, floor)'s NaN propagation.

// Lane g's allele pair (a1,a2) in canonical combo order.
constexpr int kPairA1[kNumGenotypes] = {0, 0, 0, 0, 1, 1, 1, 2, 2, 3};
constexpr int kPairA2[kNumGenotypes] = {0, 1, 2, 3, 1, 2, 3, 2, 3, 3};

TypeLikely dense_site_sse2(std::span<const u8> base_occ, const PMatrix& pm) {
  TypeLikely type_likely{};
  std::array<u16, kNumStrands * kMaxReadLen> dep_count{};
  const double* logs = log_table().data();
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d floor = _mm_set1_pd(kMinAllelePairProb);

  for (int base = 0; base < kNumBases; ++base) {
    dep_count.fill(0);  // Alg. 1 line 3
    for (int score = kQualityLevels - 1; score >= 0; --score) {
      for (int coord = 0; coord < kMaxReadLen; ++coord) {
        for (int strand = 0; strand < kNumStrands; ++strand) {
          const u8 occ = base_occ[base_occ_index(base, score, coord, strand)];
          for (u8 k = 0; k < occ; ++k) {
            const int dep = ++dep_count[static_cast<std::size_t>(
                strand * kMaxReadLen + coord)];
            const int q_adj = adjust_quality(score, dep, logs);
            double p[kNumBases];
            for (int a = 0; a < kNumBases; ++a)
              p[a] = pm[PMatrix::index(q_adj, coord, a, base)];
            alignas(16) double pair[kNumGenotypes];
            for (int g = 0; g < kNumGenotypes; g += 2) {
              const __m128d p1 = _mm_setr_pd(p[kPairA1[g]], p[kPairA1[g + 1]]);
              const __m128d p2 = _mm_setr_pd(p[kPairA2[g]], p[kPairA2[g + 1]]);
              const __m128d v =
                  _mm_add_pd(_mm_mul_pd(half, p1), _mm_mul_pd(half, p2));
              _mm_store_pd(pair + g, _mm_max_pd(floor, v));
            }
            for (int g = 0; g < kNumGenotypes; ++g)
              type_likely[static_cast<std::size_t>(g)] += std::log10(pair[g]);
          }
        }
      }
    }
  }
  return type_likely;
}

__attribute__((target("avx2"))) TypeLikely dense_site_avx2(
    std::span<const u8> base_occ, const PMatrix& pm) {
  TypeLikely type_likely{};
  std::array<u16, kNumStrands * kMaxReadLen> dep_count{};
  const double* logs = log_table().data();
  const __m256d half4 = _mm256_set1_pd(0.5);
  const __m256d floor4 = _mm256_set1_pd(kMinAllelePairProb);
  const __m128d half2 = _mm_set1_pd(0.5);
  const __m128d floor2 = _mm_set1_pd(kMinAllelePairProb);

  for (int base = 0; base < kNumBases; ++base) {
    dep_count.fill(0);  // Alg. 1 line 3
    for (int score = kQualityLevels - 1; score >= 0; --score) {
      for (int coord = 0; coord < kMaxReadLen; ++coord) {
        for (int strand = 0; strand < kNumStrands; ++strand) {
          const u8 occ = base_occ[base_occ_index(base, score, coord, strand)];
          for (u8 k = 0; k < occ; ++k) {
            const int dep = ++dep_count[static_cast<std::size_t>(
                strand * kMaxReadLen + coord)];
            const int q_adj = adjust_quality(score, dep, logs);
            double p[kNumBases];
            for (int a = 0; a < kNumBases; ++a)
              p[a] = pm[PMatrix::index(q_adj, coord, a, base)];
            alignas(32) double pair[kNumGenotypes];
            const __m256d p1_lo = _mm256_setr_pd(p[0], p[0], p[0], p[0]);
            const __m256d p2_lo = _mm256_setr_pd(p[0], p[1], p[2], p[3]);
            const __m256d p1_mid = _mm256_setr_pd(p[1], p[1], p[1], p[2]);
            const __m256d p2_mid = _mm256_setr_pd(p[1], p[2], p[3], p[2]);
            const __m128d p1_hi = _mm_setr_pd(p[2], p[3]);
            const __m128d p2_hi = _mm_setr_pd(p[3], p[3]);
            _mm256_store_pd(
                pair, _mm256_max_pd(floor4, _mm256_add_pd(
                                                _mm256_mul_pd(half4, p1_lo),
                                                _mm256_mul_pd(half4, p2_lo))));
            _mm256_store_pd(
                pair + 4,
                _mm256_max_pd(floor4,
                              _mm256_add_pd(_mm256_mul_pd(half4, p1_mid),
                                            _mm256_mul_pd(half4, p2_mid))));
            _mm_store_pd(pair + 8,
                         _mm_max_pd(floor2,
                                    _mm_add_pd(_mm_mul_pd(half2, p1_hi),
                                               _mm_mul_pd(half2, p2_hi))));
            for (int g = 0; g < kNumGenotypes; ++g)
              type_likely[static_cast<std::size_t>(g)] += std::log10(pair[g]);
          }
        }
      }
    }
  }
  return type_likely;
}

// ---- posterior selection ---------------------------------------------------
//
// Vectorize the prior + likelihood sums, then run the shared scalar
// selection scan (select_from_log_posteriors) so tie-breaking and quality
// rounding have one definition.

PosteriorCall select_sse2(const GenotypePriors& log_prior,
                          const TypeLikely& type_likely) {
  alignas(16) std::array<double, kNumGenotypes> lp;
  for (int g = 0; g < kNumGenotypes; g += 2)
    _mm_store_pd(lp.data() + g,
                 _mm_add_pd(_mm_loadu_pd(log_prior.data() + g),
                            _mm_loadu_pd(type_likely.data() + g)));
  return select_from_log_posteriors(lp.data());
}

__attribute__((target("avx2"))) PosteriorCall select_avx2(
    const GenotypePriors& log_prior, const TypeLikely& type_likely) {
  alignas(32) std::array<double, kNumGenotypes + 2> lp;
  _mm256_store_pd(lp.data(),
                  _mm256_add_pd(_mm256_loadu_pd(log_prior.data()),
                                _mm256_loadu_pd(type_likely.data())));
  _mm256_store_pd(lp.data() + 4,
                  _mm256_add_pd(_mm256_loadu_pd(log_prior.data() + 4),
                                _mm256_loadu_pd(type_likely.data() + 4)));
  _mm_store_pd(lp.data() + 8,
               _mm_add_pd(_mm_loadu_pd(log_prior.data() + 8),
                          _mm_loadu_pd(type_likely.data() + 8)));
  return select_from_log_posteriors(lp.data());
}

#elif defined(GSNP_SIMD_NEON)

// NEON (aarch64): the sparse accumulate and posterior sums are pure
// per-lane adds, vectorized below; the dense path keeps the scalar
// reference (it only serves parity tests, and the clamp/max NaN semantics
// are easiest kept exact in scalar).

TypeLikely sparse_site_neon(std::span<const u32> sorted_words,
                            const NewPMatrix& npm) {
  TypeLikely type_likely{};
  std::array<u16, kNumStrands * kMaxReadLen> dep_count{};
  const double* logs = log_table().data();
  const double* flat = npm.flat().data();

  float64x2_t acc[5] = {vdupq_n_f64(0.0), vdupq_n_f64(0.0), vdupq_n_f64(0.0),
                        vdupq_n_f64(0.0), vdupq_n_f64(0.0)};

  int last_base = 0;
  u32 prev_word = 0;
  std::size_t index = 0;
  for (const u32 word : sorted_words) {
    if (word < prev_word) detail::throw_unsorted_window(index, prev_word, word);
    prev_word = word;
    ++index;
    const AlignedBase ab = base_word_unpack(word);
    if (ab.base > last_base) {
      dep_count.fill(0);
      last_base = ab.base;
    }
    const int dep = ++dep_count[static_cast<std::size_t>(
        static_cast<int>(ab.strand) * kMaxReadLen + ab.coord)];
    const int q_adj = adjust_quality(ab.quality, dep, logs);
    const double* row =
        flat + NewPMatrix::index(q_adj, ab.coord, ab.base, 0);
    for (int v = 0; v < 5; ++v)
      acc[v] = vaddq_f64(acc[v], vld1q_f64(row + 2 * v));
  }
  for (int v = 0; v < 5; ++v) vst1q_f64(type_likely.data() + 2 * v, acc[v]);
  return type_likely;
}

PosteriorCall select_neon(const GenotypePriors& log_prior,
                          const TypeLikely& type_likely) {
  std::array<double, kNumGenotypes> lp;
  for (int g = 0; g < kNumGenotypes; g += 2)
    vst1q_f64(lp.data() + g, vaddq_f64(vld1q_f64(log_prior.data() + g),
                                       vld1q_f64(type_likely.data() + g)));
  return select_from_log_posteriors(lp.data());
}

#endif  // GSNP_SIMD_NEON

bool env_truthy(const char* name) {
  const char* v = std::getenv(name);
  return v != nullptr && v[0] != '\0' && std::string_view(v) != "0";
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
    case Level::kNeon: return "neon";
  }
  return "?";
}

std::optional<Level> level_from_name(std::string_view name) {
  if (name == "scalar") return Level::kScalar;
  if (name == "sse2") return Level::kSse2;
  if (name == "avx2") return Level::kAvx2;
  if (name == "neon") return Level::kNeon;
  return std::nullopt;
}

bool level_supported(Level level) {
  if (level == Level::kScalar) return true;
#if defined(GSNP_SIMD_X86)
  if (level == Level::kSse2) return true;  // x86-64 baseline
  if (level == Level::kAvx2) return __builtin_cpu_supports("avx2") != 0;
#elif defined(GSNP_SIMD_NEON)
  if (level == Level::kNeon) return true;  // aarch64 baseline
#endif
  return false;
}

std::vector<Level> supported_levels() {
  std::vector<Level> levels;
  for (const Level l :
       {Level::kScalar, Level::kSse2, Level::kAvx2, Level::kNeon})
    if (level_supported(l)) levels.push_back(l);
  return levels;
}

Level detect_level() {
  if (env_truthy("GSNP_FORCE_SCALAR")) return Level::kScalar;
  if (const char* request = std::getenv("GSNP_SIMD_LEVEL");
      request != nullptr && request[0] != '\0') {
    const auto level = level_from_name(request);
    if (!level)
      throw Error(std::string("GSNP_SIMD_LEVEL: unknown level '") + request +
                  "' (valid: scalar, sse2, avx2, neon)");
    if (!level_supported(*level))
      throw Error(std::string("GSNP_SIMD_LEVEL: level '") + request +
                  "' is not supported on this host");
    return *level;
  }
  const std::vector<Level> levels = supported_levels();
  return levels.back();
}

Level active_level() {
  if (const auto& forced = forced_level()) return *forced;
  return detect_level();
}

void force_level(std::optional<Level> level) {
  if (level && !level_supported(*level))
    throw Error(std::string("force_level: level '") + level_name(*level) +
                "' is not supported on this host");
  forced_level() = level;
}

const Kernels& kernels(Level level) {
  static const Kernels scalar{Level::kScalar, &core::likelihood_sparse_site,
                              &core::likelihood_dense_site,
                              &core::select_genotype};
#if defined(GSNP_SIMD_X86)
  static const Kernels sse2{Level::kSse2, &sparse_site_sse2, &dense_site_sse2,
                            &select_sse2};
  static const Kernels avx2{Level::kAvx2, &sparse_site_avx2, &dense_site_avx2,
                            &select_avx2};
#elif defined(GSNP_SIMD_NEON)
  static const Kernels neon{Level::kNeon, &sparse_site_neon,
                            &core::likelihood_dense_site, &select_neon};
#endif
  if (!level_supported(level))
    throw Error(std::string("simd::kernels: level '") + level_name(level) +
                "' is not supported on this host");
  switch (level) {
    case Level::kScalar: return scalar;
#if defined(GSNP_SIMD_X86)
    case Level::kSse2: return sse2;
    case Level::kAvx2: return avx2;
#elif defined(GSNP_SIMD_NEON)
    case Level::kNeon: return neon;
#endif
    default: break;
  }
  throw Error("simd::kernels: unreachable level");
}

const Kernels& active_kernels() { return kernels(active_level()); }

TypeLikely likelihood_sparse_site(std::span<const u32> sorted_words,
                                  const NewPMatrix& npm, Level level) {
  return kernels(level).sparse_site(sorted_words, npm);
}

TypeLikely likelihood_dense_site(std::span<const u8> base_occ,
                                 const PMatrix& pm, Level level) {
  return kernels(level).dense_site(base_occ, pm);
}

PosteriorCall select_genotype(const GenotypePriors& log_prior,
                              const TypeLikely& type_likely, Level level) {
  return kernels(level).select_genotype(log_prior, type_likely);
}

}  // namespace gsnp::core::simd
