#pragma once
// Whole-genome driver: runs an engine over many chromosomes (the paper's
// production setting — 24 per-chromosome alignment files processed in
// sequence, Fig 12) and aggregates the per-component reports.
//
// Fault tolerance: each chromosome is a failure-isolation unit.  Device
// faults (device::DeviceFaultError, including injected and real OOM) are
// retried per RetryPolicy with exponential backoff; when they persist, the
// kGsnp engine degrades to kGsnpCpu for that chromosome — bit-exact by the
// paper's §IV-G consistency guarantee, so degraded output files are
// byte-identical to GPU ones.  Outputs are published atomically
// (write `.part`, fsync, rename) and a JSON manifest records per-chromosome
// status + output CRC-32 after every chromosome, enabling `resume` to skip
// verified completed chromosomes after an aborted run.

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "src/core/engine.hpp"

namespace gsnp::core {

enum class EngineKind { kSoapsnp, kGsnpCpu, kGsnp };

const char* engine_name(EngineKind kind);
/// Inverse of engine_name; nullopt for unknown names (corrupt manifests).
std::optional<EngineKind> engine_kind_from_name(std::string_view name);

/// One chromosome's inputs; outputs are derived from `name` under the run's
/// output directory.
struct ChromosomeJob {
  std::string name;
  std::filesystem::path alignment_file;
  const genome::Reference* reference = nullptr;
  const genome::DbSnpTable* dbsnp = nullptr;
};

/// Per-chromosome retry/degradation policy for device faults.
struct RetryPolicy {
  int max_attempts = 2;            ///< engine attempts before giving up
  double backoff_seconds = 0.0;    ///< sleep before the first retry
  double backoff_multiplier = 2.0; ///< growth factor per subsequent retry
  bool allow_cpu_fallback = true;  ///< degrade kGsnp -> kGsnpCpu on failure
};

struct GenomeRunConfig {
  std::vector<ChromosomeJob> chromosomes;
  std::filesystem::path output_dir;
  u32 window_size = 0;  ///< 0 = engine default
  PriorParams prior;
  int soapsnp_threads = 1;
  /// Overlapped-pipeline knobs, passed through to every chromosome's
  /// EngineConfig (see there): streams <= 1 = serial reference path,
  /// streams >= 2 = double-buffered pipeline.  Output is byte-identical
  /// either way.
  u32 streams = 1;
  u32 pipeline_depth = 2;
  u32 host_threads = 2;
  RetryPolicy retry;
  /// Malformed-input handling for every chromosome's alignment file.  In
  /// lenient mode with no quarantine_file set, each chromosome defaults to
  /// its own `<output_dir>/<name>.quarantine.txt` sidecar.
  IngestPolicy ingest;
  /// Skip chromosomes recorded as done in the manifest whose output files
  /// verify against the recorded CRC-32 (checkpoint/resume).
  bool resume = false;
  /// Manifest location; empty = `<output_dir>/manifest.json`.
  std::filesystem::path manifest_file;

  /// Optional tracing (src/obs): when non-null, the run emits one
  /// "pipeline"-category span per chromosome (annotated with attempts,
  /// retries, degradation and resume outcomes) around the engine's own stage
  /// spans.  `trace_file` / `metrics_file` select exports written when the
  /// run finishes — or before a fatal fault is rethrown, so aborted runs
  /// leave a trace for post-mortems; both paths are recorded in the manifest.
  obs::Tracer* tracer = nullptr;
  std::filesystem::path trace_file;    ///< Chrome trace_event JSON
  std::filesystem::path metrics_file;  ///< compact metrics JSON
};

/// What happened to one chromosome (mirrors its manifest entry).
struct ChromosomeStatus {
  std::string name;
  EngineKind requested{};
  EngineKind used{};
  int attempts = 0;      ///< engine attempts consumed (0 when resumed)
  bool degraded = false; ///< fell back from kGsnp to kGsnpCpu
  bool resumed = false;  ///< skipped: manifest + CRC verified a previous run
  u32 output_crc = 0;    ///< CRC-32 of the published output file
  std::string error;     ///< last fault message when retries/fallback fired
  /// Ingest outcome for this chromosome's alignment file (restored from the
  /// manifest when resumed).
  IngestStats ingest;
};

struct GenomeReport {
  std::vector<RunReport> per_chromosome;  ///< default-constructed if resumed
  std::vector<ChromosomeStatus> statuses;
  std::vector<std::filesystem::path> output_files;
  std::filesystem::path manifest_file;
  double total_seconds = 0.0;
  u64 total_sites = 0;
  u64 total_output_bytes = 0;
  /// Aggregate ingest outcome across all chromosomes (resumed ones included,
  /// from their manifest entries).
  IngestStats total_ingest;

  bool any_degraded() const {
    for (const auto& s : statuses)
      if (s.degraded) return true;
    return false;
  }
};

/// Run `kind` over every chromosome.  For kGsnp a device must be supplied;
/// its counters accumulate across chromosomes (one card, many files — as in
/// production).  Output files land in config.output_dir as
/// <name>.<engine>.{txt,snp} — named after the *requested* engine even when
/// a chromosome degrades to the CPU engine (the streams are bit-identical).
/// Throws (after recording progress in the manifest) only when a chromosome
/// fails beyond retries with fallback unavailable or disabled.
GenomeReport run_genome(const GenomeRunConfig& config, EngineKind kind,
                        device::Device* dev = nullptr);

}  // namespace gsnp::core
