#pragma once
// Whole-genome driver: runs an engine over many chromosomes (the paper's
// production setting — 24 per-chromosome alignment files processed in
// sequence, Fig 12) and aggregates the per-component reports.
//
// Fault tolerance: each chromosome is a failure-isolation unit.  Device
// faults (device::DeviceFaultError, including injected and real OOM) are
// retried per RetryPolicy with seeded-jitter exponential backoff; when they
// persist, the kGsnp engine degrades to kGsnpCpu for that chromosome —
// bit-exact by the paper's §IV-G consistency guarantee, so degraded output
// files are byte-identical to GPU ones.  Outputs are published atomically
// (write `.part`, fsync, rename) and a JSON manifest records per-chromosome
// status + output CRC-32 after every chromosome, enabling `resume` to skip
// verified completed chromosomes after an aborted run.
//
// The per-chromosome body is exposed as run_one_chromosome() so the gsnpd
// service (src/service) can shard one job's chromosomes across a worker
// pool while keeping retry/degradation/publish/journal semantics identical
// to the serial driver.

#include <filesystem>
#include <functional>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/cancel.hpp"
#include "src/core/backend.hpp"
#include "src/core/engine.hpp"
#include "src/core/run_manifest.hpp"

namespace gsnp::core {
// EngineKind, engine_name and engine_kind_from_name moved to
// core/backend.hpp (the registry); included above so existing users keep
// compiling.

/// One chromosome's inputs; outputs are derived from `name` under the run's
/// output directory.
struct ChromosomeJob {
  std::string name;
  std::filesystem::path alignment_file;
  const genome::Reference* reference = nullptr;
  const genome::DbSnpTable* dbsnp = nullptr;
};

/// Per-chromosome retry/degradation policy for device faults.
///
/// Backoff before retry k (0-based) is
///   base_k = min(backoff_cap_seconds, backoff_seconds * multiplier^k)
/// jittered down into [base_k * (1 - jitter_fraction), base_k] by a
/// deterministic draw from xoshiro(jitter_seed ^ salt) — concurrent workers
/// salted differently (the service salts by job and chromosome) desynchronize
/// instead of retrying in lockstep against a recovering device, while any
/// fixed (policy, salt) pair always sleeps the exact same sequence
/// (reproducible chaos runs).  jitter_fraction = 0 restores plain
/// exponential backoff.
struct RetryPolicy {
  int max_attempts = 2;             ///< engine attempts before giving up
  double backoff_seconds = 0.0;     ///< sleep before the first retry
  double backoff_multiplier = 2.0;  ///< growth factor per subsequent retry
  double backoff_cap_seconds = 30.0;  ///< ceiling for any single sleep
  double jitter_fraction = 0.0;     ///< in [0,1]: spread below the base sleep
  u64 jitter_seed = 0x5EED;         ///< deterministic jitter stream seed
  bool allow_cpu_fallback = true;   ///< degrade kGsnp -> kGsnpCpu on failure
};

/// The exact sleep sequence a retry loop under `policy` executes: element k
/// is the pause before retry k (so size == max(0, max_attempts - 1)).
/// Deterministic in (policy, salt); see RetryPolicy for the formula.
std::vector<double> backoff_sequence(const RetryPolicy& policy, u64 salt = 0);

struct GenomeRunConfig {
  std::vector<ChromosomeJob> chromosomes;
  std::filesystem::path output_dir;
  u32 window_size = 0;  ///< 0 = engine default
  PriorParams prior;
  int soapsnp_threads = 1;
  /// Overlapped-pipeline knobs, passed through to every chromosome's
  /// EngineConfig (see there): streams <= 1 = serial reference path,
  /// streams >= 2 = double-buffered pipeline.  Output is byte-identical
  /// either way.
  u32 streams = 1;
  u32 pipeline_depth = 2;
  u32 host_threads = 2;
  /// Depth-aware batching budget in device bytes, passed through to every
  /// chromosome's EngineConfig (see there).  0 = off (fixed windows).
  u64 batch_bytes = 0;
  RetryPolicy retry;
  /// Malformed-input handling for every chromosome's alignment file.  In
  /// lenient mode with no quarantine_file set, each chromosome defaults to
  /// its own `<output_dir>/[<run_id>.]<name>.quarantine.txt` sidecar.
  IngestPolicy ingest;
  /// Skip chromosomes recorded as done in the manifest whose output files
  /// verify against the recorded CRC-32 (checkpoint/resume).
  bool resume = false;
  /// Manifest location; empty = `<output_dir>/manifest.json`.
  std::filesystem::path manifest_file;

  /// Namespace for per-chromosome scratch/sidecar files when several runs
  /// share one output_dir (concurrent service jobs): non-empty run_id
  /// prefixes the default quarantine sidecar, the temp input, and the
  /// `.part` staging name with "<run_id>." so two jobs can never interleave
  /// writes into the same sidecar.  Published output names (and therefore
  /// manifest digests) are unaffected.
  std::string run_id;

  /// Optional cooperative cancellation (deadlines, SIGINT, shutdown): polled
  /// at chromosome/attempt boundaries, inside backoff sleeps (sliced), and
  /// at every engine window.  On cancellation the pipeline removes the torn
  /// `.part`/temp files of the in-flight chromosome, records it as
  /// "interrupted" in the manifest, and rethrows CancelledError — completed
  /// chromosomes stay published and verified, so `resume` picks up exactly
  /// where the run stopped.
  const CancelToken* cancel = nullptr;

  /// Test/chaos hook invoked at named durability checkpoints of each
  /// chromosome: "pre_publish" (output computed, `.part` complete, rename
  /// not yet done) and "post_publish" (output renamed into place, manifest
  /// entry not yet written).  A hook that throws simulates the process
  /// dying at that instant — the crash-recovery tests drive exactly-once
  /// resume semantics through it.  Null = no checkpoints.
  std::function<void(std::string_view point, const std::string& chromosome)>
      checkpoint_hook;

  /// Optional tracing (src/obs): when non-null, the run emits one
  /// "pipeline"-category span per chromosome (annotated with attempts,
  /// retries, degradation and resume outcomes) around the engine's own stage
  /// spans.  `trace_file` / `metrics_file` select exports written when the
  /// run finishes — or before a fatal fault is rethrown, so aborted runs
  /// leave a trace for post-mortems; both paths are recorded in the manifest.
  obs::Tracer* tracer = nullptr;
  std::filesystem::path trace_file;    ///< Chrome trace_event JSON
  std::filesystem::path metrics_file;  ///< compact metrics JSON
};

/// What happened to one chromosome (mirrors its manifest entry).
struct ChromosomeStatus {
  std::string name;
  EngineKind requested{};
  EngineKind used{};
  int attempts = 0;      ///< engine attempts consumed (0 when resumed)
  bool degraded = false; ///< fell back from kGsnp to kGsnpCpu
  bool resumed = false;  ///< skipped: manifest + CRC verified a previous run
  u32 output_crc = 0;    ///< CRC-32 of the published output file
  std::string error;     ///< last fault message when retries/fallback fired
  /// Ingest outcome for this chromosome's alignment file (restored from the
  /// manifest when resumed).
  IngestStats ingest;
};

/// Outcome of one chromosome processed as an isolated unit of work (what the
/// service's worker pool executes).  `entry` is ready for the manifest;
/// `fault` is non-null exactly when entry.status == "failed" (retries
/// exhausted, fallback unavailable) so the caller journals first and
/// rethrows after.
struct ChromosomeRunResult {
  ChromosomeStatus status;
  ManifestEntry entry;
  RunReport run;  ///< default-constructed when resumed
  std::filesystem::path output_path;
  std::exception_ptr fault;
};

/// Run a single chromosome under `config`'s policies: resume verification
/// against `previous` (may be null), retry with jittered backoff, CPU
/// degradation, atomic output publish, checkpoint hooks.  Throws
/// CancelledError on cancellation (after removing the torn `.part`/temp);
/// non-device errors (corrupt input, broken invariants) propagate directly.
/// Thread-safe across distinct chromosomes of one config provided each
/// worker uses its own Device.
ChromosomeRunResult run_one_chromosome(const GenomeRunConfig& config,
                                       EngineKind kind, device::Device* dev,
                                       const ChromosomeJob& job,
                                       const RunManifest* previous);

struct GenomeReport {
  std::vector<RunReport> per_chromosome;  ///< default-constructed if resumed
  std::vector<ChromosomeStatus> statuses;
  std::vector<std::filesystem::path> output_files;
  std::filesystem::path manifest_file;
  double total_seconds = 0.0;
  u64 total_sites = 0;
  u64 total_output_bytes = 0;
  /// Aggregate ingest outcome across all chromosomes (resumed ones included,
  /// from their manifest entries).
  IngestStats total_ingest;

  bool any_degraded() const {
    for (const auto& s : statuses)
      if (s.degraded) return true;
    return false;
  }
};

/// Run `kind` over every chromosome.  For kGsnp a device must be supplied;
/// its counters accumulate across chromosomes (one card, many files — as in
/// production).  Output files land in config.output_dir as
/// <name>.<engine>.{txt,snp} — named after the *requested* engine even when
/// a chromosome degrades to the CPU engine (the streams are bit-identical).
/// Throws (after recording progress in the manifest) only when a chromosome
/// fails beyond retries with fallback unavailable or disabled, or when the
/// run is cancelled.
GenomeReport run_genome(const GenomeRunConfig& config, EngineKind kind,
                        device::Device* dev = nullptr);

}  // namespace gsnp::core
