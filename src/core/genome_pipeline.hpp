#pragma once
// Whole-genome driver: runs an engine over many chromosomes (the paper's
// production setting — 24 per-chromosome alignment files processed in
// sequence, Fig 12) and aggregates the per-component reports.

#include <filesystem>
#include <string>
#include <vector>

#include "src/core/engine.hpp"

namespace gsnp::core {

enum class EngineKind { kSoapsnp, kGsnpCpu, kGsnp };

const char* engine_name(EngineKind kind);

/// One chromosome's inputs; outputs are derived from `name` under the run's
/// output directory.
struct ChromosomeJob {
  std::string name;
  std::filesystem::path alignment_file;
  const genome::Reference* reference = nullptr;
  const genome::DbSnpTable* dbsnp = nullptr;
};

struct GenomeRunConfig {
  std::vector<ChromosomeJob> chromosomes;
  std::filesystem::path output_dir;
  u32 window_size = 0;  ///< 0 = engine default
  PriorParams prior;
  int soapsnp_threads = 1;
};

struct GenomeReport {
  std::vector<RunReport> per_chromosome;
  std::vector<std::filesystem::path> output_files;
  double total_seconds = 0.0;
  u64 total_sites = 0;
  u64 total_output_bytes = 0;
};

/// Run `kind` over every chromosome.  For kGsnp a device must be supplied;
/// its counters accumulate across chromosomes (one card, many files — as in
/// production).  Output files land in config.output_dir as
/// <name>.<engine>.{txt,snp}.
GenomeReport run_genome(const GenomeRunConfig& config, EngineKind kind,
                        device::Device* dev = nullptr);

}  // namespace gsnp::core
