#pragma once
// Window loading (workflow component read_site) and per-site counting
// (component counting).
//
// The pipeline processes the reference in fixed-size windows of sites.  The
// alignment stream is position-sorted, so the loader pulls records until one
// starts at/after the window end, keeping records that extend into the next
// window in a carry buffer.  Counting then converts a window's records into:
//   * an arrival-order CSR of per-site observations (always; posterior's
//     rank-sum test needs the raw quality lists),
//   * per-site aggregate statistics (best/second base bookkeeping),
//   * and either the dense BaseOccWindow or the sparse BaseWordWindow,
//     depending on the engine.
// Only uniquely aligned reads (hit_count == 1) contribute to the likelihood
// structures; all reads contribute to the statistics, with a unique/total
// split (SOAPsnp's columns 8/9 and 12/13).

#include <array>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "src/common/types.hpp"
#include "src/core/base_occ.hpp"
#include "src/core/base_word.hpp"
#include "src/reads/alignment.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::core {

/// A window's worth of alignment records (records overlapping the window;
/// boundary records also appear in the neighbouring window's set).
struct WindowRecords {
  u64 start = 0;
  u32 size = 0;
  std::vector<reads::AlignmentRecord> records;
};

/// Streams windows out of a position-sorted record source.
class WindowLoader {
 public:
  using RecordSource = std::function<std::optional<reads::AlignmentRecord>()>;

  WindowLoader(RecordSource source, u64 total_sites, u32 window_size);

  /// Load the next window; returns false after the final window.
  bool next(WindowRecords& out);

 private:
  RecordSource source_;
  u64 total_sites_;
  u32 window_size_;
  u64 next_start_ = 0;
  std::deque<reads::AlignmentRecord> carry_;
  std::optional<reads::AlignmentRecord> pending_;
  bool source_done_ = false;
};

/// Arrival-order per-site observations for one window (CSR).
struct WindowObs {
  std::vector<u64> offsets;          ///< window size + 1
  std::vector<AlignedBase> obs;      ///< concatenated, arrival order
  std::vector<u32> hits;             ///< parallel hit_count per observation

  u32 window_size() const { return static_cast<u32>(offsets.size() - 1); }
  std::span<const AlignedBase> site(u32 s) const {
    return std::span<const AlignedBase>(obs).subspan(
        offsets[s], offsets[s + 1] - offsets[s]);
  }
  std::span<const u32> site_hits(u32 s) const {
    return std::span<const u32>(hits).subspan(offsets[s],
                                              offsets[s + 1] - offsets[s]);
  }
};

/// Per-site aggregate statistics over ALL aligned reads.
struct SiteStats {
  std::array<u32, kNumBases> count_uniq = {0, 0, 0, 0};
  std::array<u32, kNumBases> count_all = {0, 0, 0, 0};
  std::array<u32, kNumBases> qual_sum_all = {0, 0, 0, 0};
  u32 depth = 0;    ///< total aligned bases (all hits)
  u32 hit_sum = 0;  ///< sum of hit_count values (for average copy number)
};

/// Counting pass: records -> arrival-order observations + stats.  The dense
/// and sparse structures are filled only if non-null (unique hits only).
void count_window(const WindowRecords& win, WindowObs& obs_out,
                  std::vector<SiteStats>& stats_out, BaseOccWindow* dense,
                  BaseWordWindow* sparse);

}  // namespace gsnp::core
