#include "src/core/likelihood.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

#include "src/core/adjust.hpp"
#include "src/core/log_table.hpp"

namespace gsnp::core {

namespace {

std::string unsorted_window_message(std::size_t index, u32 previous,
                                    u32 word) {
  std::ostringstream os;
  os << "likelihood_sparse_site: base_word array is not sorted — word["
     << index << "] = " << word << " after " << previous
     << "; run likelihood_sort (Algorithm 4) before the computation step";
  return os.str();
}

}  // namespace

UnsortedWindowError::UnsortedWindowError(std::size_t index, u32 previous,
                                         u32 word)
    : Error(unsorted_window_message(index, previous, word)) {}

namespace detail {

void throw_unsorted_window(std::size_t index, u32 previous, u32 word) {
  assert(!"likelihood_sparse_site: unsorted base_word window");
  throw UnsortedWindowError(index, previous, word);
}

}  // namespace detail

TypeLikely likelihood_dense_site(std::span<const u8> base_occ,
                                 const PMatrix& pm) {
  TypeLikely type_likely{};
  std::array<u16, kNumStrands * kMaxReadLen> dep_count{};
  const double* logs = log_table().data();

  for (int base = 0; base < kNumBases; ++base) {
    dep_count.fill(0);  // Alg. 1 line 3
    for (int score = kQualityLevels - 1; score >= 0; --score) {
      for (int coord = 0; coord < kMaxReadLen; ++coord) {
        for (int strand = 0; strand < kNumStrands; ++strand) {
          const u8 occ = base_occ[base_occ_index(base, score, coord, strand)];
          for (u8 k = 0; k < occ; ++k) {
            const int dep = ++dep_count[static_cast<std::size_t>(
                strand * kMaxReadLen + coord)];
            const int q_adj = adjust_quality(score, dep, logs);
            // likely_update (Algorithm 2) for the ten allele pairs.
            int combo = 0;
            for (int a1 = 0; a1 < kNumBases; ++a1) {
              for (int a2 = a1; a2 < kNumBases; ++a2) {
                const double p1 = pm[PMatrix::index(q_adj, coord, a1, base)];
                const double p2 = pm[PMatrix::index(q_adj, coord, a2, base)];
                type_likely[static_cast<std::size_t>(combo)] +=
                    likely_log10(p1, p2);
                ++combo;
              }
            }
          }
        }
      }
    }
  }
  return type_likely;
}

TypeLikely likelihood_sparse_site(std::span<const u32> sorted_words,
                                  const NewPMatrix& npm) {
  TypeLikely type_likely{};
  std::array<u16, kNumStrands * kMaxReadLen> dep_count{};
  const double* logs = log_table().data();

  int last_base = 0;
  u32 prev_word = 0;
  std::size_t index = 0;
  for (const u32 word : sorted_words) {
    // The depth-count recycle below only resets on a base *increase*; an
    // out-of-order word (word < its predecessor) would silently reuse stale
    // depth counts, so sortedness is validated rather than assumed.
    if (word < prev_word) detail::throw_unsorted_window(index, prev_word, word);
    prev_word = word;
    ++index;
    const AlignedBase ab = base_word_unpack(word);
    if (ab.base > last_base) {  // Alg. 4 lines 8-10
      dep_count.fill(0);
      last_base = ab.base;
    }
    const int dep = ++dep_count[static_cast<std::size_t>(
        static_cast<int>(ab.strand) * kMaxReadLen + ab.coord)];
    const int q_adj = adjust_quality(ab.quality, dep, logs);
    // opt_likely_update (Algorithm 3): one table row, ten reads, no log10.
    const u64 row = NewPMatrix::index(q_adj, ab.coord, ab.base, 0);
    for (int combo = 0; combo < kNumGenotypes; ++combo)
      type_likely[static_cast<std::size_t>(combo)] +=
          npm.flat()[row + static_cast<u64>(combo)];
  }
  return type_likely;
}

void likelihood_sort_cpu(BaseWordWindow& window) {
  const i64 n = static_cast<i64>(window.window_size());
#pragma omp parallel for schedule(dynamic, 1024)
  for (i64 s = 0; s < n; ++s) {
    auto site = window.site(static_cast<u32>(s));
    std::sort(site.begin(), site.end());
  }
}

}  // namespace gsnp::core
