#include "src/core/ranksum.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace gsnp::core {

namespace {

/// Standard normal upper-tail survival function via erfc.
double normal_sf(double z) { return 0.5 * std::erfc(z / std::sqrt(2.0)); }

}  // namespace

double rank_sum_p(std::span<const u8> a, std::span<const u8> b) {
  const double n1 = static_cast<double>(a.size());
  const double n2 = static_cast<double>(b.size());
  if (a.empty() || b.empty()) return 1.0;

  // Pool, sort, and assign mid-ranks to ties.
  struct Tagged {
    u8 value;
    bool from_a;
  };
  std::vector<Tagged> pool;
  pool.reserve(a.size() + b.size());
  for (const u8 v : a) pool.push_back({v, true});
  for (const u8 v : b) pool.push_back({v, false});
  std::sort(pool.begin(), pool.end(),
            [](const Tagged& x, const Tagged& y) { return x.value < y.value; });

  double rank_sum_a = 0.0;
  double tie_correction = 0.0;
  const std::size_t n = pool.size();
  for (std::size_t i = 0; i < n;) {
    std::size_t j = i;
    while (j < n && pool[j].value == pool[i].value) ++j;
    const double t = static_cast<double>(j - i);
    // Mid-rank of the tie group (ranks are 1-based).
    const double mid = (static_cast<double>(i + 1) + static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k)
      if (pool[k].from_a) rank_sum_a += mid;
    tie_correction += t * t * t - t;
    i = j;
  }

  const double total = n1 + n2;
  const double u = rank_sum_a - n1 * (n1 + 1.0) / 2.0;
  const double mean_u = n1 * n2 / 2.0;
  const double var_u = n1 * n2 / 12.0 *
                       (total + 1.0 - tie_correction / (total * (total - 1.0)));
  if (var_u <= 0.0) return 1.0;  // all values tied
  // Continuity-corrected two-sided p.
  const double z = (std::abs(u - mean_u) - 0.5) / std::sqrt(var_u);
  const double p = 2.0 * normal_sf(std::max(0.0, z));
  return std::min(1.0, p);
}

double round_p(double p) {
  return std::round(p * 1e4) / 1e4;
}

}  // namespace gsnp::core
