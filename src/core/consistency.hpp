#pragma once
// Result-consistency checking (paper §IV-G).
//
// BGI's requirement: GSNP must produce *exactly* the same results as
// SOAPsnp.  The engines enforce this structurally (shared tables, identical
// accumulation order); this module verifies it after the fact by comparing
// two output files row by row, whatever their container format.

#include <filesystem>
#include <string>
#include <vector>

#include "src/core/snp_row.hpp"

namespace gsnp::core {

struct ConsistencyReport {
  bool identical = false;
  u64 rows_compared = 0;
  u64 first_mismatch_row = 0;    ///< valid when !identical
  std::string detail;            ///< human-readable mismatch description
};

/// Compare two row streams.
ConsistencyReport compare_rows(const std::vector<SnpRow>& a,
                               const std::vector<SnpRow>& b);

/// Compare two output files; each may be plain text or compressed (the
/// format is sniffed from the magic bytes).
ConsistencyReport compare_output_files(const std::filesystem::path& a,
                                       const std::filesystem::path& b);

/// Load any output file (text or compressed).
std::vector<SnpRow> read_snp_output(const std::filesystem::path& path,
                                    std::string& seq_name);

}  // namespace gsnp::core
