#include "src/core/engine.hpp"

#include <algorithm>

#include "src/common/error.hpp"
#include "src/compress/device_rledict.hpp"
#include "src/compress/temp_input.hpp"
#include "src/core/kernels.hpp"
#include "src/core/likelihood.hpp"
#include "src/core/new_pmatrix.hpp"
#include "src/core/output_codec.hpp"
#include "src/core/posterior.hpp"
#include "src/core/window.hpp"
#include "src/reads/alignment.hpp"
#include "src/sortnet/multipass.hpp"

namespace gsnp::core {

double RunReport::total() const {
  double t = 0.0;
  for (const char* name : kComponents) t += component(name);
  return t;
}

namespace {

/// The cal_p_matrix pass: stream the alignment text file once, accumulate
/// the recalibration counts (unique hits vs the reference base), and — for
/// the GSNP engines — write the compressed temporary input alongside
/// (paper §V-A).
struct CalPResult {
  PMatrix pm;
  u64 records = 0;
  u64 temp_bytes = 0;
  IngestStats ingest;
};

CalPResult cal_p_pass(const EngineConfig& config, bool write_temp) {
  const genome::Reference& ref = *config.reference;
  const bool reuse_matrix = !config.p_matrix_in.empty();

  CalPResult result;
  // With a reloaded matrix and no temp file to produce (SOAPsnp engine), the
  // whole input pass is skipped — the point of the matrix-reuse feature.
  if (reuse_matrix && !write_temp) {
    result.pm = read_p_matrix(config.p_matrix_in);
    reads::AlignmentReader reader(config.alignment_file, config.ingest,
                                  ref.size());
    while (reader.next()) ++result.records;  // count only (no calibration)
    result.ingest = reader.stats();
    if (!config.p_matrix_out.empty())
      write_p_matrix(config.p_matrix_out, result.pm);
    return result;
  }

  reads::AlignmentReader reader(config.alignment_file, config.ingest,
                                ref.size());
  std::optional<compress::TempInputWriter> temp;
  if (write_temp) {
    GSNP_CHECK_MSG(!config.temp_file.empty(),
                   "GSNP engines need config.temp_file");
    temp.emplace(config.temp_file, ref.name());
  }

  PMatrixCounter counter;
  while (auto rec = reader.next()) {
    ++result.records;
    if (temp) temp->add(*rec);
    if (reuse_matrix || rec->hit_count != 1) continue;
    const u64 lo = rec->pos;
    const u64 hi = std::min<u64>(rec->pos + rec->length, ref.size());
    for (u64 p = lo; p < hi; ++p) {
      const u8 r = ref.base(p);
      if (r >= kNumBases) continue;
      reads::SiteObservation so;
      if (!reads::observe_site(*rec, p, so)) continue;
      counter.add(so.quality, so.coord, r, so.base);
    }
  }
  result.ingest = reader.stats();
  if (temp) result.temp_bytes = temp->finish();
  result.pm = reuse_matrix ? read_p_matrix(config.p_matrix_in)
                           : finalize_p_matrix(counter);
  if (!config.p_matrix_out.empty())
    write_p_matrix(config.p_matrix_out, result.pm);
  return result;
}

/// Posterior for a whole window -> rows (shared by all engines; identical
/// results by construction).  When `device_calls` is non-null the genotype
/// selection came from the device posterior kernel; only the statistics
/// columns are assembled on the host.
void window_posterior(const EngineConfig& config, PriorCache& priors,
                      const WindowRecords& win, const WindowObs& obs,
                      const std::vector<SiteStats>& stats,
                      const std::vector<TypeLikely>& type_likely,
                      std::vector<SnpRow>& rows,
                      const std::vector<PosteriorCall>* device_calls = nullptr,
                      int threads = 1) {
  const genome::Reference& ref = *config.reference;
  rows.resize(win.size);
#pragma omp parallel for schedule(static) num_threads(threads) \
    if (threads > 1)
  for (i64 si = 0; si < static_cast<i64>(win.size); ++si) {
    const u32 s = static_cast<u32>(si);
    const u64 pos = win.start + s;
    const genome::KnownSnpEntry* known =
        config.dbsnp ? config.dbsnp->find(pos) : nullptr;
    PosteriorCall call;
    if (device_calls) {
      call = (*device_calls)[s];
    } else if (known) {
      // dbSNP priors are site-specific; compute directly (thread-safe).
      call = select_genotype(
          genotype_log_priors(ref.base(pos), known, config.prior),
          type_likely[s]);
    } else {
      // Novel sites share one of five cached priors (read-only access).
      call = select_genotype(priors.get(ref.base(pos), nullptr),
                             type_likely[s]);
    }
    rows[s] = assemble_row(pos, ref.base(pos), known != nullptr, call,
                           stats[s], obs.site(s), obs.site_hits(s));
  }
}

/// Window-pass record source over the raw text (SOAPsnp engine).  The cal_p
/// pass already quarantined and counted this file; the second pass must skip
/// the same records without double-writing the quarantine, so the policy's
/// quarantine_file is cleared here (skips are deterministic, so both passes
/// see the identical surviving record stream).
WindowLoader::RecordSource text_source(const std::filesystem::path& path,
                                       IngestPolicy policy, u64 ref_len) {
  policy.quarantine_file.clear();
  auto reader = std::make_shared<reads::AlignmentReader>(
      path, std::move(policy), ref_len);
  return [reader] { return reader->next(); };
}

WindowLoader::RecordSource temp_source(const std::filesystem::path& path) {
  auto reader = std::make_shared<compress::TempInputReader>(path);
  return [reader] { return reader->next(); };
}

}  // namespace

RunReport run_soapsnp(const EngineConfig& config) {
  GSNP_CHECK(config.reference != nullptr);
  const genome::Reference& ref = *config.reference;
  const u32 window_size = config.window_size
                              ? config.window_size
                              : EngineConfig::kDefaultSoapsnpWindow;
  RunReport report;
  report.sites = ref.size();

  PMatrix pm;
  {
    const auto scope = report.host.scope("cal_p");
    CalPResult cal = cal_p_pass(config, /*write_temp=*/false);
    pm = std::move(cal.pm);
    report.records = cal.records;
    report.ingest = cal.ingest;
  }

  BaseOccWindow dense(window_size);
  WindowLoader loader(
      text_source(config.alignment_file, config.ingest, ref.size()),
      ref.size(), window_size);
  SnpTextWriter writer(config.output_file, ref.name());
  PriorCache priors(config.prior);
  const int threads = std::max(1, config.soapsnp_threads);

  WindowRecords win;
  WindowObs obs;
  std::vector<SiteStats> stats;
  std::vector<TypeLikely> type_likely;
  std::vector<SnpRow> rows;

  for (;;) {
    {
      const auto scope = report.host.scope("read");
      if (!loader.next(win)) break;
    }
    ++report.windows;
    {
      const auto scope = report.host.scope("count");
      count_window(win, obs, stats, &dense, nullptr);
    }
    {
      const auto scope = report.host.scope("likeli");
      type_likely.resize(win.size);
#pragma omp parallel for schedule(dynamic, 64) num_threads(threads) \
    if (threads > 1)
      for (i64 s = 0; s < static_cast<i64>(win.size); ++s)
        type_likely[static_cast<std::size_t>(s)] =
            likelihood_dense_site(dense.site(static_cast<u32>(s)), pm);
    }
    {
      const auto scope = report.host.scope("post");
      window_posterior(config, priors, win, obs, stats, type_likely, rows,
                       nullptr, threads);
    }
    {
      const auto scope = report.host.scope("output");
      writer.write_window(rows);
    }
    {
      const auto scope = report.host.scope("recycle");
      dense.recycle();
    }
  }
  report.output_bytes = writer.finish();
  report.peak_host_bytes = dense.bytes() + pm.flat().size() * sizeof(double);
  return report;
}

RunReport run_gsnp_cpu(const EngineConfig& config) {
  GSNP_CHECK(config.reference != nullptr);
  const genome::Reference& ref = *config.reference;
  const u32 window_size =
      config.window_size ? config.window_size : EngineConfig::kDefaultGsnpWindow;
  RunReport report;
  report.sites = ref.size();

  PMatrix pm;
  std::optional<NewPMatrix> npm;
  {
    // cal_p includes temp-file generation plus the new score tables
    // (paper Table IV note).
    const auto scope = report.host.scope("cal_p");
    CalPResult cal = cal_p_pass(config, /*write_temp=*/true);
    pm = std::move(cal.pm);
    report.records = cal.records;
    report.temp_bytes = cal.temp_bytes;
    report.ingest = cal.ingest;
    npm.emplace(pm);
  }

  BaseWordWindow sparse(window_size);
  WindowLoader loader(temp_source(config.temp_file), ref.size(), window_size);
  SnpOutputWriter writer(config.output_file, ref.name());
  const RleDictFn rle = host_rle_dict();
  PriorCache priors(config.prior);

  WindowRecords win;
  WindowObs obs;
  std::vector<SiteStats> stats;
  std::vector<TypeLikely> type_likely;
  std::vector<SnpRow> rows;
  u64 max_words = 0;

  for (;;) {
    {
      const auto scope = report.host.scope("read");
      if (!loader.next(win)) break;
    }
    ++report.windows;
    {
      const auto scope = report.host.scope("count");
      count_window(win, obs, stats, nullptr, &sparse);
      max_words = std::max<u64>(max_words, sparse.words.size());
    }
    {
      const auto sort_scope = report.host.scope("likeli_sort");
      likelihood_sort_cpu(sparse);
    }
    {
      const auto comp_scope = report.host.scope("likeli_comp");
      type_likely.resize(win.size);
      for (u32 s = 0; s < win.size; ++s)
        type_likely[s] = likelihood_sparse_site(sparse.site(s), *npm);
    }
    {
      const auto scope = report.host.scope("post");
      window_posterior(config, priors, win, obs, stats, type_likely, rows);
    }
    {
      const auto scope = report.host.scope("output");
      writer.write_window(rows, rle);
    }
    {
      const auto scope = report.host.scope("recycle");
      sparse.reset(window_size);
    }
  }
  report.host.add("likeli",
                  report.host.get("likeli_sort") + report.host.get("likeli_comp"));
  report.output_bytes = writer.finish();
  report.peak_host_bytes = max_words * sizeof(u32) +
                           npm->flat().size() * sizeof(double) +
                           pm.flat().size() * sizeof(double);
  return report;
}

RunReport run_gsnp(const EngineConfig& config, device::Device& dev,
                   const device::PerfModel& model) {
  GSNP_CHECK(config.reference != nullptr);
  const genome::Reference& ref = *config.reference;
  const u32 window_size =
      config.window_size ? config.window_size : EngineConfig::kDefaultGsnpWindow;
  RunReport report;
  report.sites = ref.size();

  const auto device_scope = [&](const char* name, auto&& body) {
    const device::DeviceCounters before = dev.counters();
    body();
    const device::DeviceCounters delta =
        device::counters_delta(before, dev.counters());
    report.device_modeled.add(name, model.seconds(delta));
  };

  PMatrix pm;
  std::optional<NewPMatrix> npm;
  std::optional<DeviceScoreTables> tables;
  {
    const auto scope = report.host.scope("cal_p");
    CalPResult cal = cal_p_pass(config, /*write_temp=*/true);
    pm = std::move(cal.pm);
    report.records = cal.records;
    report.temp_bytes = cal.temp_bytes;
    report.ingest = cal.ingest;
    npm.emplace(pm);
    // load_table (Fig 2): tables uploaded once, before any likelihood work.
    device_scope("cal_p", [&] { tables.emplace(dev, pm, *npm); });
  }

  BaseWordWindow sparse(window_size);
  WindowLoader loader(temp_source(config.temp_file), ref.size(), window_size);
  SnpOutputWriter writer(config.output_file, ref.name());
  // The six quality columns go through the device RLE-DICT kernels; their
  // modeled time is charged to "output" via the counters delta, and the
  // *simulation* wall time they burn is subtracted from the measured host
  // "output" time (the simulator is not the hardware being modeled).
  PriorCache priors(config.prior);
  double rle_sim_wall = 0.0;
  const RleDictFn rle = [&dev, &rle_sim_wall](std::span<const u32> column,
                                              std::vector<u8>& out) {
    const Timer t;
    compress::device_encode_rle_dict(dev, column, out);
    rle_sim_wall += t.seconds();
  };

  WindowRecords win;
  WindowObs obs;
  std::vector<SiteStats> stats;
  std::vector<TypeLikely> type_likely;
  std::vector<SnpRow> rows;
  u64 max_words = 0;

  for (;;) {
    {
      const auto scope = report.host.scope("read");
      if (!loader.next(win)) break;
    }
    ++report.windows;
    {
      const auto scope = report.host.scope("count");
      count_window(win, obs, stats, nullptr, &sparse);
      max_words = std::max<u64>(max_words, sparse.words.size());
    }

    // The window's base_word data goes to the device once and stays
    // resident through sorting and likelihood (the production data flow);
    // only the ten log-likelihoods per site come back.
    {
      std::optional<device::DeviceBuffer<u32>> words_dev;
      std::optional<device::DeviceBuffer<u64>> offsets_dev;

      // likelihood_sort: multipass batch bitonic, device-resident.
      device_scope("likeli_sort", [&] {
        words_dev.emplace(
            dev.to_device(std::span<const u32>(sparse.words)));
        sortnet::sort_device_multipass_resident(dev, *words_dev,
                                                sparse.offsets);
      });

      // likelihood_comp: the optimized kernel (shared memory + new table).
      device_scope("likeli_comp", [&] {
        offsets_dev.emplace(
            dev.to_device(std::span<const u64>(sparse.offsets)));
        type_likely = device_likelihood_sparse_resident(
            dev, *words_dev, *offsets_dev, win.size, *tables);
      });
    }

    {
      // Posterior: prior construction + genotype selection on the device
      // (modeled), statistics assembly on the host (measured).
      std::vector<GenotypePriors> window_priors(win.size);
      std::vector<PosteriorCall> calls;
      {
        const auto scope = report.host.scope("post");
        for (u32 s = 0; s < win.size; ++s) {
          const u64 pos = win.start + s;
          const genome::KnownSnpEntry* known =
              config.dbsnp ? config.dbsnp->find(pos) : nullptr;
          window_priors[s] = priors.get(ref.base(pos), known);
        }
      }
      device_scope("post",
                   [&] { calls = device_posterior(dev, type_likely,
                                                  window_priors); });
      {
        const auto scope = report.host.scope("post");
        window_posterior(config, priors, win, obs, stats, type_likely, rows,
                         &calls);
      }
    }
    {
      const Timer output_timer;
      rle_sim_wall = 0.0;
      device_scope("output", [&] { writer.write_window(rows, rle); });
      report.host.add("output",
                      std::max(0.0, output_timer.seconds() - rle_sim_wall));
    }
    {
      // Sparse recycle: offsets reset on the host, device buffers are
      // per-window; the dense 131,072-byte-per-site memset is gone entirely.
      const auto scope = report.host.scope("recycle");
      sparse.reset(window_size);
    }
  }
  report.device_modeled.add("likeli", report.device_modeled.get("likeli_sort") +
                                          report.device_modeled.get("likeli_comp"));
  report.output_bytes = writer.finish();
  report.peak_host_bytes = max_words * sizeof(u32) +
                           npm->flat().size() * sizeof(double) +
                           pm.flat().size() * sizeof(double);
  report.peak_device_bytes = dev.peak_allocated_bytes();
  report.device_counters = dev.counters();
  return report;
}

}  // namespace gsnp::core
