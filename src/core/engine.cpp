#include "src/core/engine.hpp"

#include <algorithm>
#include <future>
#include <memory>

#include "src/common/error.hpp"
#include "src/common/thread_pool.hpp"
#include "src/compress/device_rledict.hpp"
#include "src/compress/temp_input.hpp"
#include "src/core/kernels.hpp"
#include "src/core/likelihood.hpp"
#include "src/core/new_pmatrix.hpp"
#include "src/core/output_codec.hpp"
#include "src/core/posterior.hpp"
#include "src/core/simd.hpp"
#include "src/core/window.hpp"
#include "src/device/stream.hpp"
#include "src/obs/stream_trace.hpp"
#include "src/obs/trace.hpp"
#include "src/reads/alignment.hpp"
#include "src/sortnet/multipass.hpp"

namespace gsnp::core {

double RunReport::total() const {
  double t = 0.0;
  for (const char* name : kComponents) t += component(name);
  return t;
}

namespace {

/// The cal_p_matrix pass: stream the alignment text file once, accumulate
/// the recalibration counts (unique hits vs the reference base), and — for
/// the GSNP engines — write the compressed temporary input alongside
/// (paper §V-A).
struct CalPResult {
  PMatrix pm;
  u64 records = 0;
  u64 temp_bytes = 0;
  IngestStats ingest;
};

CalPResult cal_p_pass(const EngineConfig& config, bool write_temp) {
  const genome::Reference& ref = *config.reference;
  const bool reuse_matrix = !config.p_matrix_in.empty();

  CalPResult result;
  // With a reloaded matrix and no temp file to produce (SOAPsnp engine), the
  // whole input pass is skipped — the point of the matrix-reuse feature.
  if (reuse_matrix && !write_temp) {
    result.pm = read_p_matrix(config.p_matrix_in);
    reads::AlignmentReader reader(config.alignment_file, config.ingest,
                                  ref.size());
    while (reader.next()) {  // count only (no calibration)
      if ((++result.records & 0xFFF) == 0) check_cancel(config.cancel, "cal_p");
    }
    result.ingest = reader.stats();
    if (!config.p_matrix_out.empty())
      write_p_matrix(config.p_matrix_out, result.pm);
    return result;
  }

  reads::AlignmentReader reader(config.alignment_file, config.ingest,
                                ref.size());
  std::optional<compress::TempInputWriter> temp;
  if (write_temp) {
    GSNP_CHECK_MSG(!config.temp_file.empty(),
                   "GSNP engines need config.temp_file");
    temp.emplace(config.temp_file, ref.name());
  }

  PMatrixCounter counter;
  while (auto rec = reader.next()) {
    if ((++result.records & 0xFFF) == 0) check_cancel(config.cancel, "cal_p");
    if (temp) temp->add(*rec);
    if (reuse_matrix || rec->hit_count != 1) continue;
    const u64 lo = rec->pos;
    const u64 hi = std::min<u64>(rec->pos + rec->length, ref.size());
    for (u64 p = lo; p < hi; ++p) {
      const u8 r = ref.base(p);
      if (r >= kNumBases) continue;
      reads::SiteObservation so;
      if (!reads::observe_site(*rec, p, so)) continue;
      counter.add(so.quality, so.coord, r, so.base);
    }
  }
  result.ingest = reader.stats();
  if (temp) result.temp_bytes = temp->finish();
  result.pm = reuse_matrix ? read_p_matrix(config.p_matrix_in)
                           : finalize_p_matrix(counter);
  if (!config.p_matrix_out.empty())
    write_p_matrix(config.p_matrix_out, result.pm);
  return result;
}

/// Posterior for a whole window -> rows (shared by all engines; identical
/// results by construction).  When `device_calls` is non-null the genotype
/// selection came from the device posterior kernel; only the statistics
/// columns are assembled on the host.
void window_posterior(const EngineConfig& config, PriorCache& priors,
                      const WindowRecords& win, const WindowObs& obs,
                      const std::vector<SiteStats>& stats,
                      const std::vector<TypeLikely>& type_likely,
                      std::vector<SnpRow>& rows,
                      const std::vector<PosteriorCall>* device_calls = nullptr,
                      int threads = 1,
                      simd::SelectFn select = &select_genotype) {
  const genome::Reference& ref = *config.reference;
  rows.resize(win.size);
#pragma omp parallel for schedule(static) num_threads(threads) \
    if (threads > 1)
  for (i64 si = 0; si < static_cast<i64>(win.size); ++si) {
    const u32 s = static_cast<u32>(si);
    const u64 pos = win.start + s;
    const genome::KnownSnpEntry* known =
        config.dbsnp ? config.dbsnp->find(pos) : nullptr;
    PosteriorCall call;
    if (device_calls) {
      call = (*device_calls)[s];
    } else if (known) {
      // dbSNP priors are site-specific; compute directly (thread-safe).
      call = select(genotype_log_priors(ref.base(pos), known, config.prior),
                    type_likely[s]);
    } else {
      // Novel sites share one of five cached priors (read-only access).
      call = select(priors.get(ref.base(pos), nullptr), type_likely[s]);
    }
    rows[s] = assemble_row(pos, ref.base(pos), known != nullptr, call,
                           stats[s], obs.site(s), obs.site_hits(s));
  }
}

/// Window-pass record source over the raw text (SOAPsnp engine).  The cal_p
/// pass already quarantined and counted this file; the second pass must skip
/// the same records without double-writing the quarantine, so the policy's
/// quarantine_file is cleared here (skips are deterministic, so both passes
/// see the identical surviving record stream).
WindowLoader::RecordSource text_source(const std::filesystem::path& path,
                                       IngestPolicy policy, u64 ref_len) {
  policy.quarantine_file.clear();
  auto reader = std::make_shared<reads::AlignmentReader>(
      path, std::move(policy), ref_len);
  return [reader] { return reader->next(); };
}

WindowLoader::RecordSource temp_source(const std::filesystem::path& path) {
  auto reader = std::make_shared<compress::TempInputReader>(path);
  return [reader] { return reader->next(); };
}

/// One pipeline stage, measured once and recorded in both views: the
/// RunReport stopwatch (the Tables I/IV breakdowns) and — when a tracer is
/// attached — a span.  The stopwatch receives exactly the seconds the span
/// reports as host_sec, so the two views cannot drift.
class StageScope {
 public:
  StageScope(StopwatchSet& set, obs::Tracer* tracer, const char* name)
      : set_(set), name_(name), span_(tracer, name, "stage") {}

  /// Subtract simulator wall time misattributed to this stage: the GSNP
  /// engine runs device kernels through the host simulator, and that wall
  /// time belongs to the modeled device, not the host component.
  void deduct(double seconds) { deduct_ += seconds; }

  /// Annotate the stage's span (backend tag, SIMD dispatch level).
  void note(std::string_view key, std::string_view value) {
    span_.note(key, value);
  }

  ~StageScope() {
    const double sec = std::max(0.0, timer_.seconds() - deduct_);
    set_.add(name_, sec);
    span_.set_host_seconds(sec);
  }
  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

 private:
  StopwatchSet& set_;
  const char* name_;
  obs::Tracer::Scope span_;  // declared before timer_: dtor order measures
  Timer timer_;              // the stage, then finishes the span
  double deduct_ = 0.0;
};

/// Run totals into the tracer's metrics registry (exported with the run).
void record_run_metrics(obs::Tracer* tracer, const char* engine,
                        const RunReport& report) {
  if (!tracer) return;
  obs::Metrics& m = tracer->metrics();
  m.add(std::string("runs_") + engine);
  m.add("sites", report.sites);
  m.add("windows", report.windows);
  m.add("records", report.records);
  m.add("output_bytes", report.output_bytes);
  m.add("temp_bytes", report.temp_bytes);
  m.add("records_quarantined", report.ingest.records_quarantined);
  m.set_gauge("peak_host_bytes", static_cast<double>(report.peak_host_bytes));
  m.set_gauge("peak_device_bytes",
              static_cast<double>(report.peak_device_bytes));
  if (report.batch.batches > 0) {
    m.add("batches", report.batch.batches);
    m.set_gauge("batch_budget_bytes",
                static_cast<double>(report.batch.budget_bytes));
    m.set_gauge("batch_planned_peak_bytes",
                static_cast<double>(report.batch.planned_peak_bytes));
    m.set_gauge("batch_actual_peak_bytes",
                static_cast<double>(report.batch.actual_peak_bytes));
  }
  if (const double total = report.total(); total > 0.0)
    m.set_gauge("sites_per_sec", static_cast<double>(report.sites) / total);
}

/// Plan the window's batches when batching is on (EngineConfig::batch_bytes
/// > 0) and fold the plan into the run aggregate.  The device engine packs
/// from the sparse base-word CSR (the payload that actually lands on the
/// card); SOAPsnp, which has no sparse CSR, packs from the observation CSR —
/// per-site observation counts, the same depth signal.  Host backends use
/// the plan only to chunk their per-site loops (identical arithmetic, so
/// identical output), keeping RunReport::batch meaningful on every backend.
std::optional<BatchPlan> maybe_plan_batches(const EngineConfig& config,
                                            std::span<const u64> offsets,
                                            RunReport& report) {
  if (config.batch_bytes == 0) return std::nullopt;
  BatchPlan plan = plan_batches(offsets, config.batch_bytes);
  report.batch.absorb(plan);
  return plan;
}

// ---- overlapped (double-buffered) pipeline variants ------------------------
//
// Selected by config.streams >= 2.  The serial paths above are the
// bit-exactness reference and stay untouched; the overlapped variants run
// the same arithmetic on the same data in the same order — only *when* each
// stage executes relative to the others changes — so their output is
// byte-identical (enforced by tests/test_determinism).  The reduction-order
// rule that makes this true: every per-window artifact (counts, likelihoods,
// rows, output frames) is produced by exactly one stage, stages of one
// window are chained in serial order, and cross-window interleavings never
// share mutable state (disjoint window slots; the output writer consumes
// windows in index order via an ordered task chain / a dedicated stream).

/// SOAPsnp, overlapped: a host thread-pool prefetches (reads + recycles +
/// counts) window i+1 into its own dense slot while the main thread computes
/// likelihood/posterior for window i, and window i-1's text output drains
/// through an ordered pool task.
RunReport run_soapsnp_overlapped(const EngineConfig& config) {
  GSNP_CHECK(config.reference != nullptr);
  const genome::Reference& ref = *config.reference;
  const u32 window_size = config.window_size
                              ? config.window_size
                              : EngineConfig::kDefaultSoapsnpWindow;
  RunReport report;
  report.sites = ref.size();
  report.streams_used = config.streams;
  obs::Tracer* const tracer = config.tracer;

  PMatrix pm;
  {
    const StageScope scope(report.host, tracer, "cal_p");
    CalPResult cal = cal_p_pass(config, /*write_temp=*/false);
    pm = std::move(cal.pm);
    report.records = cal.records;
    report.ingest = cal.ingest;
  }

  struct Slot {
    WindowRecords win;
    WindowObs obs;
    std::vector<SiteStats> stats;
    std::unique_ptr<BaseOccWindow> dense;
    std::vector<TypeLikely> type_likely;
    std::vector<SnpRow> rows;
    std::shared_future<void> write_done;  // this slot's rows are in flight
    bool loaded = false;
  };
  const u32 depth = std::max<u32>(2, config.pipeline_depth);
  std::vector<Slot> slots(depth);
  for (Slot& s : slots)
    s.dense = std::make_unique<BaseOccWindow>(window_size);

  WindowLoader loader(
      text_source(config.alignment_file, config.ingest, ref.size()),
      ref.size(), window_size);
  SnpTextWriter writer(config.output_file, ref.name());
  PriorCache priors(config.prior);
  const int threads = std::max(1, config.soapsnp_threads);

  // Runs on the pool; at most one prefetch task is in flight at a time, so
  // loader access is serialized.  Recycle moves from "after output" to
  // "before count" of the slot's next occupant — numerically identical (a
  // zeroed matrix is a zeroed matrix), and it rides the prefetch thread.
  const auto load_into = [&](Slot& slot) {
    // Cancellation point for the overlapped paths: the CancelledError unwinds
    // through the prefetch future into the main loop's get().
    check_cancel(config.cancel, "window");
    {
      const StageScope scope(report.host, tracer, "read");
      slot.loaded = loader.next(slot.win);
    }
    if (!slot.loaded) return;
    {
      const StageScope scope(report.host, tracer, "recycle");
      slot.dense->recycle();
    }
    {
      const StageScope scope(report.host, tracer, "count");
      count_window(slot.win, slot.obs, slot.stats, slot.dense.get(), nullptr);
    }
  };

  std::shared_future<void> last_write;  // ordered output chain
  ThreadPool host_pool(std::max<u32>(1, config.host_threads));
  std::future<void> prefetch =
      host_pool.submit([&, s = &slots[0]] { load_into(*s); });
  for (u64 i = 0;; ++i) {
    prefetch.get();  // window i ingested (or end of input); rethrows errors
    Slot& slot = slots[i % depth];
    if (!slot.loaded) break;
    ++report.windows;
    prefetch = host_pool.submit(
        [&, s = &slots[(i + 1) % depth]] { load_into(*s); });
    {
      const StageScope scope(report.host, tracer, "likeli");
      slot.type_likely.resize(slot.win.size);
      if (const auto plan =
              maybe_plan_batches(config, slot.obs.offsets, report)) {
        for (const SiteBatch& b : plan->batches) {
#pragma omp parallel for schedule(dynamic, 64) num_threads(threads) \
    if (threads > 1)
          for (i64 s = b.begin; s < static_cast<i64>(b.end); ++s)
            slot.type_likely[static_cast<std::size_t>(s)] =
                likelihood_dense_site(slot.dense->site(static_cast<u32>(s)),
                                      pm);
        }
      } else {
#pragma omp parallel for schedule(dynamic, 64) num_threads(threads) \
    if (threads > 1)
        for (i64 s = 0; s < static_cast<i64>(slot.win.size); ++s)
          slot.type_likely[static_cast<std::size_t>(s)] =
              likelihood_dense_site(slot.dense->site(static_cast<u32>(s)), pm);
      }
    }
    // The slot's previous occupant may still be draining through the writer;
    // its rows must not be overwritten until that write retires.
    if (slot.write_done.valid()) slot.write_done.wait();
    {
      const StageScope scope(report.host, tracer, "post");
      window_posterior(config, priors, slot.win, slot.obs, slot.stats,
                       slot.type_likely, slot.rows, nullptr, threads);
    }
    // Deferred output: window i writes while iteration i+1 computes.  Each
    // task waits its predecessor, so windows hit the file in index order.
    const std::shared_future<void> prev = last_write;
    last_write = host_pool
                     .submit([&, s = &slot, prev] {
                       if (prev.valid()) prev.wait();
                       const StageScope scope(report.host, tracer, "output");
                       writer.write_window(s->rows);
                     })
                     .share();
    slot.write_done = last_write;
  }
  // Join every outstanding write; get() rethrows the first failure.
  for (Slot& slot : slots)
    if (slot.write_done.valid()) slot.write_done.get();
  report.output_bytes = writer.finish();
  report.peak_host_bytes =
      depth * slots[0].dense->bytes() + pm.flat().size() * sizeof(double);
  record_run_metrics(tracer, "soapsnp", report);
  return report;
}

/// Parameterization of the host sparse engine: gsnp_cpu and gsnp_simd run
/// the identical pipeline over the identical data; only the per-site
/// kernels (and the labels describing them) differ.  gsnp_cpu binds the
/// scalar reference kernels, gsnp_simd the dispatch level simd::kernels()
/// selected — so "forced scalar" gsnp_simd and gsnp_cpu execute the very
/// same functions.
struct HostSparseOps {
  const char* engine;      ///< metrics tag: "gsnp_cpu" / "gsnp_simd"
  const char* simd_level;  ///< non-null: span/metrics annotation
  simd::SparseSiteFn sparse_site;
  simd::SelectFn select;
};

/// Host sparse engine, overlapped: same shape as SOAPsnp's variant with the
/// sparse representation — prefetch packs base_words for window i+1 while
/// the main thread sorts + computes window i and the pool
/// RLE-DICT-compresses and writes window i-1 (the compression lives inside
/// the deferred output task, which is the point: it rides a spare host
/// thread).
RunReport run_host_sparse_overlapped(const EngineConfig& config,
                                     const HostSparseOps& ops) {
  GSNP_CHECK(config.reference != nullptr);
  const genome::Reference& ref = *config.reference;
  const u32 window_size =
      config.window_size ? config.window_size : EngineConfig::kDefaultGsnpWindow;
  RunReport report;
  report.sites = ref.size();
  report.streams_used = config.streams;
  obs::Tracer* const tracer = config.tracer;

  PMatrix pm;
  std::optional<NewPMatrix> npm;
  {
    const StageScope scope(report.host, tracer, "cal_p");
    CalPResult cal = cal_p_pass(config, /*write_temp=*/true);
    pm = std::move(cal.pm);
    report.records = cal.records;
    report.temp_bytes = cal.temp_bytes;
    report.ingest = cal.ingest;
    npm.emplace(pm);
  }

  struct Slot {
    WindowRecords win;
    WindowObs obs;
    std::vector<SiteStats> stats;
    BaseWordWindow sparse;
    std::vector<TypeLikely> type_likely;
    std::vector<SnpRow> rows;
    std::shared_future<void> write_done;
    bool loaded = false;
  };
  const u32 depth = std::max<u32>(2, config.pipeline_depth);
  std::vector<Slot> slots(depth);

  WindowLoader loader(temp_source(config.temp_file), ref.size(), window_size);
  SnpOutputWriter writer(config.output_file, ref.name());
  const RleDictFn rle = host_rle_dict();
  PriorCache priors(config.prior);
  u64 max_words = 0;

  const auto load_into = [&](Slot& slot) {
    // Cancellation point for the overlapped paths: the CancelledError unwinds
    // through the prefetch future into the main loop's get().
    check_cancel(config.cancel, "window");
    {
      const StageScope scope(report.host, tracer, "read");
      slot.loaded = loader.next(slot.win);
    }
    if (!slot.loaded) return;
    {
      const StageScope scope(report.host, tracer, "recycle");
      slot.sparse.reset(window_size);
    }
    {
      const StageScope scope(report.host, tracer, "count");
      count_window(slot.win, slot.obs, slot.stats, nullptr, &slot.sparse);
      max_words = std::max<u64>(max_words, slot.sparse.words.size());
    }
  };

  std::shared_future<void> last_write;
  ThreadPool host_pool(std::max<u32>(1, config.host_threads));
  std::future<void> prefetch =
      host_pool.submit([&, s = &slots[0]] { load_into(*s); });
  for (u64 i = 0;; ++i) {
    prefetch.get();
    Slot& slot = slots[i % depth];
    if (!slot.loaded) break;
    ++report.windows;
    prefetch = host_pool.submit(
        [&, s = &slots[(i + 1) % depth]] { load_into(*s); });
    {
      const StageScope likeli_scope(report.host, tracer, "likeli");
      {
        const StageScope sort_scope(report.host, tracer, "likeli_sort");
        likelihood_sort_cpu(slot.sparse);
      }
      {
        StageScope comp_scope(report.host, tracer, "likeli_comp");
        if (ops.simd_level != nullptr) {
          comp_scope.note("backend", ops.engine);
          comp_scope.note("simd", ops.simd_level);
        }
        slot.type_likely.resize(slot.win.size);
        if (const auto plan =
                maybe_plan_batches(config, slot.sparse.offsets, report)) {
          for (const SiteBatch& b : plan->batches)
            for (u32 s = b.begin; s < b.end; ++s)
              slot.type_likely[s] =
                  ops.sparse_site(slot.sparse.site(s), *npm);
        } else {
          for (u32 s = 0; s < slot.win.size; ++s)
            slot.type_likely[s] = ops.sparse_site(slot.sparse.site(s), *npm);
        }
      }
    }
    if (slot.write_done.valid()) slot.write_done.wait();
    {
      StageScope scope(report.host, tracer, "post");
      if (ops.simd_level != nullptr) {
        scope.note("backend", ops.engine);
        scope.note("simd", ops.simd_level);
      }
      window_posterior(config, priors, slot.win, slot.obs, slot.stats,
                       slot.type_likely, slot.rows, nullptr, 1, ops.select);
    }
    const std::shared_future<void> prev = last_write;
    last_write = host_pool
                     .submit([&, s = &slot, prev] {
                       if (prev.valid()) prev.wait();
                       const StageScope scope(report.host, tracer, "output");
                       writer.write_window(s->rows, rle);
                     })
                     .share();
    slot.write_done = last_write;
  }
  for (Slot& slot : slots)
    if (slot.write_done.valid()) slot.write_done.get();
  report.output_bytes = writer.finish();
  report.peak_host_bytes = depth * max_words * sizeof(u32) +
                           npm->flat().size() * sizeof(double) +
                           pm.flat().size() * sizeof(double);
  record_run_metrics(tracer, ops.engine, report);
  return report;
}

/// GSNP, overlapped: the full three-way overlap of the paper's pipeline.
/// Device work for window i is *enqueued* onto async streams (h2d copies on
/// the copy stream, sort + likelihood on the compute stream, chained by
/// events) together with window i-1's device-RLE output on the output
/// stream, then drained in one deterministic sync — the overlap-aware wall
/// clock charges max(compute, transfer, output) across the lanes.  The host
/// thread-pool prefetches window i+1 meanwhile.  Per-component modeled
/// seconds come from the per-op counter deltas in the pool's execution log,
/// mapped to the same components the serial path charges.
RunReport run_gsnp_overlapped(const EngineConfig& config, device::Device& dev,
                              const device::PerfModel& model) {
  GSNP_CHECK(config.reference != nullptr);
  const genome::Reference& ref = *config.reference;
  const u32 window_size =
      config.window_size ? config.window_size : EngineConfig::kDefaultGsnpWindow;
  RunReport report;
  report.sites = ref.size();
  obs::Tracer* const tracer = config.tracer;
  const device::DeviceCounters run_start = dev.counters();

  // Synchronous device stage (table upload happens before the pipeline).
  const auto device_scope = [&](const char* name, auto&& body) {
    obs::Tracer::Scope span(tracer, name, "stage", &dev, &model);
    span.set_host_seconds(0.0);
    const device::DeviceCounters before = dev.counters();
    body();
    const device::DeviceCounters delta =
        device::counters_delta(before, dev.counters());
    report.device_modeled.add(name, model.seconds(delta));
  };

  PMatrix pm;
  std::optional<NewPMatrix> npm;
  std::optional<DeviceScoreTables> tables;
  {
    const StageScope scope(report.host, tracer, "cal_p");
    CalPResult cal = cal_p_pass(config, /*write_temp=*/true);
    pm = std::move(cal.pm);
    report.records = cal.records;
    report.temp_bytes = cal.temp_bytes;
    report.ingest = cal.ingest;
    npm.emplace(pm);
    device_scope("cal_p", [&] { tables.emplace(dev, pm, *npm); });
  }

  struct Slot {
    WindowRecords win;
    WindowObs obs;
    std::vector<SiteStats> stats;
    BaseWordWindow sparse;
    std::vector<TypeLikely> type_likely;
    std::vector<GenotypePriors> window_priors;
    std::vector<PosteriorCall> calls;
    std::vector<SnpRow> rows;
    std::optional<device::DeviceBuffer<u32>> words_dev;
    std::optional<device::DeviceBuffer<u64>> offsets_dev;
    /// Batched mode: the window's pack plan and one rebased CSR slice per
    /// batch, built on the prefetch thread; the slices must outlive the
    /// stream drain (memcpy_h2d reads them at execution time).
    std::optional<BatchPlan> plan;
    std::vector<std::vector<u64>> boffsets;
    bool loaded = false;
  };
  const u32 depth = std::max<u32>(2, config.pipeline_depth);
  std::vector<Slot> slots(depth);

  WindowLoader loader(temp_source(config.temp_file), ref.size(), window_size);
  SnpOutputWriter writer(config.output_file, ref.name());
  PriorCache priors(config.prior);

  // Host "output" cost: wall time of write_window minus the simulator wall
  // burned inside the device RLE-DICT kernels (modeled, not measured).
  double rle_sim_wall = 0.0;
  double output_host_wall = 0.0;
  const RleDictFn rle = [&rle_sim_wall, &dev, &model, tracer](
                            std::span<const u32> column, std::vector<u8>& out) {
    obs::Tracer::Scope span(tracer, "rle_dict", "compress", &dev, &model);
    span.set_host_seconds(0.0);
    const Timer t;
    compress::device_encode_rle_dict(dev, column, out);
    rle_sim_wall += t.seconds();
  };

  const u32 n_streams = std::min<u32>(std::max<u32>(config.streams, 2), 8);
  device::StreamPool pool(dev, n_streams);
  obs::StreamSpanListener stream_spans(tracer, &dev, &model);
  pool.set_listener(&stream_spans);
  device::Stream& s_compute = pool.stream(0);
  device::Stream& s_copy = pool.stream(1);
  device::Stream& s_out = pool.stream(n_streams >= 3 ? 2 : 1);

  // Same component attribution as the serial path's device_scope calls: the
  // window upload belongs to likelihood_sort, the offsets upload to
  // likelihood_comp (each precedes the kernel it feeds).
  const auto component_of = [](const std::string& name) -> const char* {
    if (name == "h2d:base_word" || name == "likeli_sort") return "likeli_sort";
    if (name == "h2d:offsets" || name == "likeli_comp") return "likeli_comp";
    if (name == "post") return "post";
    if (name == "output") return "output";
    return nullptr;
  };
  std::size_t log_cursor = 0;
  const auto drain = [&] {
    pool.sync();
    const auto& log = pool.log();
    for (; log_cursor < log.size(); ++log_cursor) {
      const device::StreamOpRecord& rec = log[log_cursor];
      if (const char* comp = component_of(rec.name))
        report.device_modeled.add(comp, model.seconds(rec.delta));
    }
  };

  u64 max_words = 0;
  const auto load_into = [&](Slot& slot) {
    // Cancellation point for the overlapped paths: the CancelledError unwinds
    // through the prefetch future into the main loop's get().
    check_cancel(config.cancel, "window");
    {
      const StageScope scope(report.host, tracer, "read");
      slot.loaded = loader.next(slot.win);
    }
    if (!slot.loaded) return;
    {
      const StageScope scope(report.host, tracer, "recycle");
      slot.sparse.reset(window_size);
    }
    {
      const StageScope scope(report.host, tracer, "count");
      count_window(slot.win, slot.obs, slot.stats, nullptr, &slot.sparse);
      max_words = std::max<u64>(max_words, slot.sparse.words.size());
      // Pack plan + rebased CSR slices ride the prefetch thread; a
      // BatchBudgetError unwinds through the prefetch future's get().
      slot.plan = maybe_plan_batches(config, slot.sparse.offsets, report);
      slot.boffsets.clear();
      if (slot.plan) {
        slot.boffsets.resize(slot.plan->batches.size());
        for (std::size_t bi = 0; bi < slot.plan->batches.size(); ++bi) {
          const SiteBatch& b = slot.plan->batches[bi];
          slot.boffsets[bi].resize(b.sites() + 1);
          for (u32 s = 0; s <= b.sites(); ++s)
            slot.boffsets[bi][s] =
                slot.sparse.offsets[b.begin + s] - b.words_begin;
        }
      }
    }
  };

  const auto enqueue_output = [&](Slot* ps) {
    s_out.enqueue(device::StreamOpKind::kLaunch, "output",
                  [&, ps](device::Device&) {
                    const Timer t;
                    rle_sim_wall = 0.0;
                    writer.write_window(ps->rows, rle);
                    output_host_wall +=
                        std::max(0.0, t.seconds() - rle_sim_wall);
                  });
  };

  ThreadPool host_pool(std::max<u32>(1, config.host_threads));
  Slot* prev_slot = nullptr;
  std::future<void> prefetch =
      host_pool.submit([&, s = &slots[0]] { load_into(*s); });
  for (u64 i = 0;; ++i) {
    prefetch.get();
    Slot& slot = slots[i % depth];
    if (!slot.loaded) {
      if (prev_slot != nullptr) {  // flush the last window's output
        enqueue_output(prev_slot);
        drain();
      }
      break;
    }
    ++report.windows;
    prefetch = host_pool.submit(
        [&, s = &slots[(i + 1) % depth]] { load_into(*s); });

    Slot* const cur = &slot;
    if (cur->plan) {
      // Stage A, batched: each batch's upload + sort + likelihood is
      // enqueued and drained before the next batch uploads, so at most one
      // batch is device-resident at a time (the budget's whole point).
      // Window i-1's device-RLE output is enqueued alongside the first
      // batch, keeping the output-lane overlap.  The plan is identical to
      // the serial path's (same offsets, same budget), and so is the
      // arithmetic — the actual watermark is only measured serially, where
      // no concurrent output scratch pollutes it.
      cur->type_likely.resize(cur->win.size);
      bool output_enqueued = false;
      for (std::size_t bi = 0; bi < cur->plan->batches.size(); ++bi) {
        const SiteBatch& b = cur->plan->batches[bi];
        const device::Event e_words = pool.create_event();
        const device::Event e_offsets = pool.create_event();
        s_copy.memcpy_h2d(cur->words_dev,
                          std::span<const u32>(cur->sparse.words)
                              .subspan(b.words_begin, b.words()),
                          "h2d:base_word");
        s_copy.record(e_words);
        s_copy.memcpy_h2d(cur->offsets_dev,
                          std::span<const u64>(cur->boffsets[bi]),
                          "h2d:offsets");
        s_copy.record(e_offsets);
        s_compute.wait(e_words);
        s_compute.enqueue(
            device::StreamOpKind::kLaunch, "likeli_sort",
            [&, cur, bi](device::Device& d) {
              sortnet::sort_device_multipass_resident(
                  d, *cur->words_dev, cur->boffsets[bi],
                  sortnet::kDefaultClassBounds, tracer);
            });
        s_compute.wait(e_offsets);
        s_compute.enqueue(
            device::StreamOpKind::kLaunch, "likeli_comp",
            [&, cur, bi](device::Device& d) {
              const SiteBatch& bb = cur->plan->batches[bi];
              const std::vector<TypeLikely> btl =
                  device_likelihood_sparse_resident(d, *cur->words_dev,
                                                    *cur->offsets_dev,
                                                    bb.sites(), *tables);
              std::copy(btl.begin(), btl.end(),
                        cur->type_likely.begin() + bb.begin);
            });
        if (!output_enqueued && prev_slot != nullptr) {
          enqueue_output(prev_slot);
          output_enqueued = true;
        }
        drain();
        cur->words_dev.reset();
        cur->offsets_dev.reset();
      }

      // Stage B, batched: priors on the host, then one posterior launch per
      // batch over its likelihood/prior slices.  Ops run sequentially on the
      // compute stream, so each batch's posterior scratch is freed before
      // the next allocates.
      {
        const StageScope scope(report.host, tracer, "post");
        cur->window_priors.resize(cur->win.size);
        for (u32 s = 0; s < cur->win.size; ++s) {
          const u64 pos = cur->win.start + s;
          const genome::KnownSnpEntry* known =
              config.dbsnp ? config.dbsnp->find(pos) : nullptr;
          cur->window_priors[s] = priors.get(ref.base(pos), known);
        }
      }
      cur->calls.resize(cur->win.size);
      for (std::size_t bi = 0; bi < cur->plan->batches.size(); ++bi) {
        s_compute.enqueue(
            device::StreamOpKind::kLaunch, "post",
            [&, cur, bi](device::Device& d) {
              const SiteBatch& bb = cur->plan->batches[bi];
              const std::vector<PosteriorCall> bcalls = device_posterior(
                  d,
                  std::span<const TypeLikely>(cur->type_likely)
                      .subspan(bb.begin, bb.sites()),
                  std::span<const GenotypePriors>(cur->window_priors)
                      .subspan(bb.begin, bb.sites()));
              std::copy(bcalls.begin(), bcalls.end(),
                        cur->calls.begin() + bb.begin);
            });
      }
      drain();
      {
        const StageScope scope(report.host, tracer, "post");
        window_posterior(config, priors, cur->win, cur->obs, cur->stats,
                         cur->type_likely, cur->rows, &cur->calls);
      }
      prev_slot = cur;
      continue;
    }

    // Stage A: window i's upload (copy stream) + sort + likelihood (compute
    // stream, event-chained behind the uploads) concurrent with window
    // i-1's device-RLE output (output stream).
    const device::Event e_words = pool.create_event();
    const device::Event e_offsets = pool.create_event();
    s_copy.memcpy_h2d(cur->words_dev,
                      std::span<const u32>(cur->sparse.words),
                      "h2d:base_word");
    s_copy.record(e_words);
    s_copy.memcpy_h2d(cur->offsets_dev,
                      std::span<const u64>(cur->sparse.offsets),
                      "h2d:offsets");
    s_copy.record(e_offsets);
    s_compute.wait(e_words);
    s_compute.enqueue(
        device::StreamOpKind::kLaunch, "likeli_sort",
        [&, cur](device::Device& d) {
          sortnet::sort_device_multipass_resident(
              d, *cur->words_dev, cur->sparse.offsets,
              sortnet::kDefaultClassBounds, tracer);
        });
    s_compute.wait(e_offsets);
    s_compute.enqueue(
        device::StreamOpKind::kLaunch, "likeli_comp",
        [&, cur](device::Device& d) {
          cur->type_likely = device_likelihood_sparse_resident(
              d, *cur->words_dev, *cur->offsets_dev, cur->win.size, *tables);
        });
    if (prev_slot != nullptr) enqueue_output(prev_slot);
    drain();

    // Stage B: posterior for window i.  A second, short drain: the kernel
    // consumes the likelihoods stage A materialized.
    {
      const StageScope scope(report.host, tracer, "post");
      cur->window_priors.resize(cur->win.size);
      for (u32 s = 0; s < cur->win.size; ++s) {
        const u64 pos = cur->win.start + s;
        const genome::KnownSnpEntry* known =
            config.dbsnp ? config.dbsnp->find(pos) : nullptr;
        cur->window_priors[s] = priors.get(ref.base(pos), known);
      }
    }
    s_compute.enqueue(device::StreamOpKind::kLaunch, "post",
                      [&, cur](device::Device& d) {
                        cur->calls = device_posterior(d, cur->type_likely,
                                                      cur->window_priors);
                      });
    drain();
    {
      const StageScope scope(report.host, tracer, "post");
      window_posterior(config, priors, cur->win, cur->obs, cur->stats,
                       cur->type_likely, cur->rows, &cur->calls);
    }
    // Window i's device residency ends here; i-1's buffers were already
    // dropped, so at most one window's data is resident at a time.
    cur->words_dev.reset();
    cur->offsets_dev.reset();
    prev_slot = cur;
  }
  report.host.add("output", output_host_wall);
  report.device_modeled.add("likeli",
                            report.device_modeled.get("likeli_sort") +
                                report.device_modeled.get("likeli_comp"));
  report.output_bytes = writer.finish();
  report.peak_host_bytes = depth * max_words * sizeof(u32) +
                           npm->flat().size() * sizeof(double) +
                           pm.flat().size() * sizeof(double);
  report.peak_device_bytes = dev.peak_allocated_bytes();
  report.device_counters = dev.counters();
  report.streams_used = n_streams;
  for (u32 i = 0; i < n_streams; ++i)
    report.stream_counters.push_back(pool.stream_counters(i));
  const device::DeviceCounters run_delta =
      device::counters_delta(run_start, dev.counters());
  report.modeled_serial_seconds = model.seconds(run_delta);
  // Wall = overlap-aware replay of the stream timelines, plus the device
  // work that ran outside any stream (the cal_p table upload) charged
  // serially.
  report.modeled_wall_seconds =
      pool.modeled_wall_seconds(model) +
      model.seconds(device::counters_delta(pool.total_stream_counters(),
                                           run_delta));
  record_run_metrics(tracer, "gsnp", report);
  return report;
}

}  // namespace

RunReport run_soapsnp(const EngineConfig& config) {
  if (config.streams >= 2) return run_soapsnp_overlapped(config);
  GSNP_CHECK(config.reference != nullptr);
  const genome::Reference& ref = *config.reference;
  const u32 window_size = config.window_size
                              ? config.window_size
                              : EngineConfig::kDefaultSoapsnpWindow;
  RunReport report;
  report.sites = ref.size();
  obs::Tracer* const tracer = config.tracer;

  PMatrix pm;
  {
    const StageScope scope(report.host, tracer, "cal_p");
    CalPResult cal = cal_p_pass(config, /*write_temp=*/false);
    pm = std::move(cal.pm);
    report.records = cal.records;
    report.ingest = cal.ingest;
  }

  BaseOccWindow dense(window_size);
  WindowLoader loader(
      text_source(config.alignment_file, config.ingest, ref.size()),
      ref.size(), window_size);
  SnpTextWriter writer(config.output_file, ref.name());
  PriorCache priors(config.prior);
  const int threads = std::max(1, config.soapsnp_threads);

  WindowRecords win;
  WindowObs obs;
  std::vector<SiteStats> stats;
  std::vector<TypeLikely> type_likely;
  std::vector<SnpRow> rows;

  for (;;) {
    check_cancel(config.cancel, "window");
    {
      const StageScope scope(report.host, tracer, "read");
      if (!loader.next(win)) break;
    }
    ++report.windows;
    {
      const StageScope scope(report.host, tracer, "count");
      count_window(win, obs, stats, &dense, nullptr);
    }
    {
      const StageScope scope(report.host, tracer, "likeli");
      type_likely.resize(win.size);
      if (const auto plan = maybe_plan_batches(config, obs.offsets, report)) {
        for (const SiteBatch& b : plan->batches) {
#pragma omp parallel for schedule(dynamic, 64) num_threads(threads) \
    if (threads > 1)
          for (i64 s = b.begin; s < static_cast<i64>(b.end); ++s)
            type_likely[static_cast<std::size_t>(s)] =
                likelihood_dense_site(dense.site(static_cast<u32>(s)), pm);
        }
      } else {
#pragma omp parallel for schedule(dynamic, 64) num_threads(threads) \
    if (threads > 1)
        for (i64 s = 0; s < static_cast<i64>(win.size); ++s)
          type_likely[static_cast<std::size_t>(s)] =
              likelihood_dense_site(dense.site(static_cast<u32>(s)), pm);
      }
    }
    {
      const StageScope scope(report.host, tracer, "post");
      window_posterior(config, priors, win, obs, stats, type_likely, rows,
                       nullptr, threads);
    }
    {
      const StageScope scope(report.host, tracer, "output");
      writer.write_window(rows);
    }
    {
      const StageScope scope(report.host, tracer, "recycle");
      dense.recycle();
    }
  }
  report.output_bytes = writer.finish();
  report.peak_host_bytes = dense.bytes() + pm.flat().size() * sizeof(double);
  record_run_metrics(tracer, "soapsnp", report);
  return report;
}

namespace {

/// Host sparse engine, serial: the bit-exactness reference path.
RunReport run_host_sparse_serial(const EngineConfig& config,
                                 const HostSparseOps& ops) {
  GSNP_CHECK(config.reference != nullptr);
  const genome::Reference& ref = *config.reference;
  const u32 window_size =
      config.window_size ? config.window_size : EngineConfig::kDefaultGsnpWindow;
  RunReport report;
  report.sites = ref.size();
  obs::Tracer* const tracer = config.tracer;

  PMatrix pm;
  std::optional<NewPMatrix> npm;
  {
    // cal_p includes temp-file generation plus the new score tables
    // (paper Table IV note).
    const StageScope scope(report.host, tracer, "cal_p");
    CalPResult cal = cal_p_pass(config, /*write_temp=*/true);
    pm = std::move(cal.pm);
    report.records = cal.records;
    report.temp_bytes = cal.temp_bytes;
    report.ingest = cal.ingest;
    npm.emplace(pm);
  }

  BaseWordWindow sparse(window_size);
  WindowLoader loader(temp_source(config.temp_file), ref.size(), window_size);
  SnpOutputWriter writer(config.output_file, ref.name());
  const RleDictFn rle = host_rle_dict();
  PriorCache priors(config.prior);

  WindowRecords win;
  WindowObs obs;
  std::vector<SiteStats> stats;
  std::vector<TypeLikely> type_likely;
  std::vector<SnpRow> rows;
  u64 max_words = 0;

  for (;;) {
    check_cancel(config.cancel, "window");
    {
      const StageScope scope(report.host, tracer, "read");
      if (!loader.next(win)) break;
    }
    ++report.windows;
    {
      const StageScope scope(report.host, tracer, "count");
      count_window(win, obs, stats, nullptr, &sparse);
      max_words = std::max<u64>(max_words, sparse.words.size());
    }
    {
      // The aggregate "likeli" component is measured directly as the scope
      // enclosing both phases (it used to be reconstructed afterwards as
      // sort + comp, which silently drifted from what a wall clock around
      // the stage would have read).
      const StageScope likeli_scope(report.host, tracer, "likeli");
      {
        const StageScope sort_scope(report.host, tracer, "likeli_sort");
        likelihood_sort_cpu(sparse);
      }
      {
        StageScope comp_scope(report.host, tracer, "likeli_comp");
        if (ops.simd_level != nullptr) {
          comp_scope.note("backend", ops.engine);
          comp_scope.note("simd", ops.simd_level);
        }
        type_likely.resize(win.size);
        if (const auto plan =
                maybe_plan_batches(config, sparse.offsets, report)) {
          for (const SiteBatch& b : plan->batches)
            for (u32 s = b.begin; s < b.end; ++s)
              type_likely[s] = ops.sparse_site(sparse.site(s), *npm);
        } else {
          for (u32 s = 0; s < win.size; ++s)
            type_likely[s] = ops.sparse_site(sparse.site(s), *npm);
        }
      }
    }
    {
      StageScope scope(report.host, tracer, "post");
      if (ops.simd_level != nullptr) {
        scope.note("backend", ops.engine);
        scope.note("simd", ops.simd_level);
      }
      window_posterior(config, priors, win, obs, stats, type_likely, rows,
                       nullptr, 1, ops.select);
    }
    {
      const StageScope scope(report.host, tracer, "output");
      writer.write_window(rows, rle);
    }
    {
      const StageScope scope(report.host, tracer, "recycle");
      sparse.reset(window_size);
    }
  }
  report.output_bytes = writer.finish();
  report.peak_host_bytes = max_words * sizeof(u32) +
                           npm->flat().size() * sizeof(double) +
                           pm.flat().size() * sizeof(double);
  record_run_metrics(tracer, ops.engine, report);
  return report;
}

}  // namespace

RunReport run_gsnp_cpu(const EngineConfig& config) {
  static constexpr HostSparseOps kScalarOps{
      "gsnp_cpu", nullptr, &likelihood_sparse_site, &select_genotype};
  return config.streams >= 2 ? run_host_sparse_overlapped(config, kScalarOps)
                             : run_host_sparse_serial(config, kScalarOps);
}

RunReport run_gsnp_simd(const EngineConfig& config) {
  // Resolve the dispatch level once per run (env override or CPU detection;
  // see simd.hpp) so every window of one run uses one kernel set.
  const simd::Kernels& kernels = simd::active_kernels();
  const HostSparseOps ops{"gsnp_simd", simd::level_name(kernels.level),
                          kernels.sparse_site, kernels.select_genotype};
  RunReport report = config.streams >= 2
                         ? run_host_sparse_overlapped(config, ops)
                         : run_host_sparse_serial(config, ops);
  if (config.tracer != nullptr)
    config.tracer->metrics().add(std::string("simd_level_") +
                                 simd::level_name(kernels.level));
  return report;
}

RunReport run_gsnp(const EngineConfig& config, device::Device& dev,
                   const device::PerfModel& model) {
  if (config.streams >= 2) return run_gsnp_overlapped(config, dev, model);
  GSNP_CHECK(config.reference != nullptr);
  const genome::Reference& ref = *config.reference;
  const u32 window_size =
      config.window_size ? config.window_size : EngineConfig::kDefaultGsnpWindow;
  RunReport report;
  report.sites = ref.size();
  obs::Tracer* const tracer = config.tracer;
  const device::DeviceCounters run_start = dev.counters();

  // A device stage: the counter delta over `body` is modeled into GPU
  // seconds (Table IV's device columns).  The span mirrors the same delta
  // and model, with host_sec pinned to zero — the wall time `body` burns is
  // simulator time, not time on the modeled hardware.
  const auto device_scope = [&](const char* name, auto&& body) {
    obs::Tracer::Scope span(tracer, name, "stage", &dev, &model);
    span.set_host_seconds(0.0);
    const device::DeviceCounters before = dev.counters();
    body();
    const device::DeviceCounters delta =
        device::counters_delta(before, dev.counters());
    report.device_modeled.add(name, model.seconds(delta));
  };

  PMatrix pm;
  std::optional<NewPMatrix> npm;
  std::optional<DeviceScoreTables> tables;
  {
    const StageScope scope(report.host, tracer, "cal_p");
    CalPResult cal = cal_p_pass(config, /*write_temp=*/true);
    pm = std::move(cal.pm);
    report.records = cal.records;
    report.temp_bytes = cal.temp_bytes;
    report.ingest = cal.ingest;
    npm.emplace(pm);
    // load_table (Fig 2): tables uploaded once, before any likelihood work.
    device_scope("cal_p", [&] { tables.emplace(dev, pm, *npm); });
  }

  BaseWordWindow sparse(window_size);
  WindowLoader loader(temp_source(config.temp_file), ref.size(), window_size);
  SnpOutputWriter writer(config.output_file, ref.name());
  // The six quality columns go through the device RLE-DICT kernels; their
  // modeled time is charged to "output" via the counters delta, and the
  // *simulation* wall time they burn is subtracted from the measured host
  // "output" time (the simulator is not the hardware being modeled).
  PriorCache priors(config.prior);
  double rle_sim_wall = 0.0;
  const RleDictFn rle = [&dev, &model, &rle_sim_wall, tracer](
                            std::span<const u32> column, std::vector<u8>& out) {
    obs::Tracer::Scope span(tracer, "rle_dict", "compress", &dev, &model);
    span.set_host_seconds(0.0);
    const Timer t;
    compress::device_encode_rle_dict(dev, column, out);
    rle_sim_wall += t.seconds();
  };

  WindowRecords win;
  WindowObs obs;
  std::vector<SiteStats> stats;
  std::vector<TypeLikely> type_likely;
  std::vector<SnpRow> rows;
  u64 max_words = 0;

  for (;;) {
    check_cancel(config.cancel, "window");
    {
      const StageScope scope(report.host, tracer, "read");
      if (!loader.next(win)) break;
    }
    ++report.windows;
    {
      const StageScope scope(report.host, tracer, "count");
      count_window(win, obs, stats, nullptr, &sparse);
      max_words = std::max<u64>(max_words, sparse.words.size());
    }

    // Depth-aware batching: the window is split into the batcher's
    // position-ordered, byte-budgeted batches and each batch runs the full
    // device chain (upload, multipass sort, likelihood, posterior) on a
    // rebased CSR slice before the next begins.  Per-site arithmetic is
    // batch-invariant and rows are still assembled and written once per
    // window, so output is byte-identical to the fixed-window else-branch;
    // only the launch geometry (and hence the device counters) changes.
    // Each batch's actual allocation watermark is measured against its
    // planned peak — the property the admission budget relies on.
    if (const auto plan = maybe_plan_batches(config, sparse.offsets, report)) {
      std::vector<GenotypePriors> window_priors(win.size);
      {
        const StageScope scope(report.host, tracer, "post");
        for (u32 s = 0; s < win.size; ++s) {
          const u64 pos = win.start + s;
          const genome::KnownSnpEntry* known =
              config.dbsnp ? config.dbsnp->find(pos) : nullptr;
          window_priors[s] = priors.get(ref.base(pos), known);
        }
      }
      type_likely.resize(win.size);
      std::vector<PosteriorCall> calls(win.size);
      for (const SiteBatch& b : plan->batches) {
        obs::Tracer::Scope batch_span(tracer, "batch", "batcher", &dev,
                                      &model);
        batch_span.set_host_seconds(0.0);
        batch_span.note("sites", std::to_string(b.sites()));
        batch_span.note("words", std::to_string(b.words()));
        batch_span.note("planned_peak_bytes",
                        std::to_string(b.planned_peak_bytes));
        // Watermark the batch's incremental footprint over the resident
        // score tables (the budget bounds the batch, not the run baseline;
        // worst_case_device_bytes accounts for the tables).
        const u64 batch_base = dev.allocated_bytes();
        dev.reset_peak_watermark();
        // Rebased CSR slice: batch-local site i owns words
        // [boffsets[i], boffsets[i+1]) of the batch's word upload.
        std::vector<u64> boffsets(b.sites() + 1);
        for (u32 s = 0; s <= b.sites(); ++s)
          boffsets[s] = sparse.offsets[b.begin + s] - b.words_begin;
        {
          std::optional<device::DeviceBuffer<u32>> words_dev;
          std::optional<device::DeviceBuffer<u64>> offsets_dev;
          device_scope("likeli_sort", [&] {
            {
              obs::Tracer::Scope h2d(tracer, "h2d:base_word", "transfer",
                                     &dev, &model);
              h2d.set_host_seconds(0.0);
              words_dev.emplace(dev.to_device(
                  std::span<const u32>(sparse.words)
                      .subspan(b.words_begin, b.words())));
            }
            sortnet::sort_device_multipass_resident(
                dev, *words_dev, boffsets, sortnet::kDefaultClassBounds,
                tracer);
          });
          device_scope("likeli_comp", [&] {
            {
              obs::Tracer::Scope h2d(tracer, "h2d:offsets", "transfer", &dev,
                                     &model);
              h2d.set_host_seconds(0.0);
              offsets_dev.emplace(
                  dev.to_device(std::span<const u64>(boffsets)));
            }
            const std::vector<TypeLikely> btl =
                device_likelihood_sparse_resident(dev, *words_dev,
                                                  *offsets_dev, b.sites(),
                                                  *tables);
            std::copy(btl.begin(), btl.end(),
                      type_likely.begin() + b.begin);
          });
        }
        device_scope("post", [&] {
          const std::vector<PosteriorCall> bcalls = device_posterior(
              dev,
              std::span<const TypeLikely>(type_likely)
                  .subspan(b.begin, b.sites()),
              std::span<const GenotypePriors>(window_priors)
                  .subspan(b.begin, b.sites()));
          std::copy(bcalls.begin(), bcalls.end(), calls.begin() + b.begin);
        });
        const u64 actual = dev.peak_since_watermark() - batch_base;
        report.batch.record_actual(actual);
        batch_span.note("actual_peak_bytes", std::to_string(actual));
      }
      {
        const StageScope scope(report.host, tracer, "post");
        window_posterior(config, priors, win, obs, stats, type_likely, rows,
                         &calls);
      }
    } else {
    // The window's base_word data goes to the device once and stays
    // resident through sorting and likelihood (the production data flow);
    // only the ten log-likelihoods per site come back.  The enclosing
    // "likeli" span captures the combined counter delta, so its modeled
    // seconds equal likeli_sort + likeli_comp (the model is linear in the
    // counters) — the trace stays consistent with the aggregate component.
    {
      obs::Tracer::Scope likeli_span(tracer, "likeli", "stage", &dev, &model);
      likeli_span.set_host_seconds(0.0);
      std::optional<device::DeviceBuffer<u32>> words_dev;
      std::optional<device::DeviceBuffer<u64>> offsets_dev;

      // likelihood_sort: multipass batch bitonic, device-resident.
      device_scope("likeli_sort", [&] {
        {
          obs::Tracer::Scope h2d(tracer, "h2d:base_word", "transfer", &dev,
                                 &model);
          h2d.set_host_seconds(0.0);
          words_dev.emplace(
              dev.to_device(std::span<const u32>(sparse.words)));
        }
        sortnet::sort_device_multipass_resident(
            dev, *words_dev, sparse.offsets, sortnet::kDefaultClassBounds,
            tracer);
      });

      // likelihood_comp: the optimized kernel (shared memory + new table).
      device_scope("likeli_comp", [&] {
        {
          obs::Tracer::Scope h2d(tracer, "h2d:offsets", "transfer", &dev,
                                 &model);
          h2d.set_host_seconds(0.0);
          offsets_dev.emplace(
              dev.to_device(std::span<const u64>(sparse.offsets)));
        }
        type_likely = device_likelihood_sparse_resident(
            dev, *words_dev, *offsets_dev, win.size, *tables);
      });
    }

    {
      // Posterior: prior construction + genotype selection on the device
      // (modeled), statistics assembly on the host (measured).
      std::vector<GenotypePriors> window_priors(win.size);
      std::vector<PosteriorCall> calls;
      {
        const StageScope scope(report.host, tracer, "post");
        for (u32 s = 0; s < win.size; ++s) {
          const u64 pos = win.start + s;
          const genome::KnownSnpEntry* known =
              config.dbsnp ? config.dbsnp->find(pos) : nullptr;
          window_priors[s] = priors.get(ref.base(pos), known);
        }
      }
      device_scope("post",
                   [&] { calls = device_posterior(dev, type_likely,
                                                  window_priors); });
      {
        const StageScope scope(report.host, tracer, "post");
        window_posterior(config, priors, win, obs, stats, type_likely, rows,
                         &calls);
      }
    }
    }
    {
      // Host output seconds = wall time minus the simulator wall burned
      // inside the RLE-DICT kernels (their time is modeled, not measured).
      StageScope scope(report.host, tracer, "output");
      rle_sim_wall = 0.0;
      device_scope("output", [&] { writer.write_window(rows, rle); });
      scope.deduct(rle_sim_wall);
    }
    {
      // Sparse recycle: offsets reset on the host, device buffers are
      // per-window; the dense 131,072-byte-per-site memset is gone entirely.
      const StageScope scope(report.host, tracer, "recycle");
      sparse.reset(window_size);
    }
  }
  report.device_modeled.add("likeli", report.device_modeled.get("likeli_sort") +
                                          report.device_modeled.get("likeli_comp"));
  report.output_bytes = writer.finish();
  report.peak_host_bytes = max_words * sizeof(u32) +
                           npm->flat().size() * sizeof(double) +
                           pm.flat().size() * sizeof(double);
  report.peak_device_bytes = dev.peak_allocated_bytes();
  report.device_counters = dev.counters();
  // The serial path has no overlap: modeled wall == the no-overlap baseline.
  report.modeled_serial_seconds =
      model.seconds(device::counters_delta(run_start, dev.counters()));
  report.modeled_wall_seconds = report.modeled_serial_seconds;
  record_run_metrics(tracer, "gsnp", report);
  return report;
}

}  // namespace gsnp::core
