#include "src/core/prior.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"

namespace gsnp::core {

namespace {

/// Linear-space novel-site prior for the ten genotypes.
GenotypePriors novel_priors(u8 ref_base, const PriorParams& params) {
  GenotypePriors prior{};
  if (ref_base >= kNumBases) {
    prior.fill(1.0 / kNumGenotypes);
    return prior;
  }
  // Transition/transversion weights over the three alternate alleles.
  std::array<double, kNumBases> w{};
  double w_sum = 0.0;
  for (u8 b = 0; b < kNumBases; ++b) {
    if (b == ref_base) continue;
    w[b] = is_transition(ref_base, b) ? params.ti_weight : 1.0;
    w_sum += w[b];
  }

  double allocated = 0.0;
  for (int rank = 0; rank < kNumGenotypes; ++rank) {
    const Genotype g = genotype_from_rank(rank);
    if (g.allele1 == ref_base && g.allele2 == ref_base) continue;
    double p = 0.0;
    if (g.allele1 == ref_base || g.allele2 == ref_base) {
      const u8 alt = g.allele1 == ref_base ? g.allele2 : g.allele1;
      p = params.novel_het_rate * w[alt] / w_sum;
    } else if (g.homozygous()) {
      p = params.novel_hom_rate * w[g.allele1] / w_sum;
    } else {
      // Both alleles differ from the reference: second-order event.
      p = params.novel_het_rate * params.novel_hom_rate *
          (w[g.allele1] + w[g.allele2]) / (2.0 * w_sum);
    }
    prior[static_cast<std::size_t>(rank)] = p;
    allocated += p;
  }
  prior[static_cast<std::size_t>(genotype_rank(ref_base, ref_base))] =
      1.0 - allocated;
  return prior;
}

/// Hardy-Weinberg genotype probabilities from population allele frequencies.
GenotypePriors hwe_priors(const genome::KnownSnpEntry& known,
                          const PriorParams& params) {
  std::array<double, kNumBases> f{};
  double total = 0.0;
  for (int b = 0; b < kNumBases; ++b) {
    f[static_cast<std::size_t>(b)] =
        std::max(known.freq[static_cast<std::size_t>(b)], params.freq_floor);
    total += f[static_cast<std::size_t>(b)];
  }
  for (auto& v : f) v /= total;

  GenotypePriors prior{};
  for (int rank = 0; rank < kNumGenotypes; ++rank) {
    const Genotype g = genotype_from_rank(rank);
    const double p = f[g.allele1] * f[g.allele2];
    prior[static_cast<std::size_t>(rank)] = g.homozygous() ? p : 2.0 * p;
  }
  return prior;
}

}  // namespace

GenotypePriors genotype_log_priors(u8 ref_base,
                                   const genome::KnownSnpEntry* known,
                                   const PriorParams& params) {
  GenotypePriors prior = novel_priors(ref_base, params);
  if (known != nullptr && ref_base < kNumBases) {
    const GenotypePriors hwe = hwe_priors(*known, params);
    const double lambda =
        known->validated ? params.validated_weight : params.unvalidated_weight;
    for (int g = 0; g < kNumGenotypes; ++g)
      prior[static_cast<std::size_t>(g)] =
          (1.0 - lambda) * prior[static_cast<std::size_t>(g)] +
          lambda * hwe[static_cast<std::size_t>(g)];
  }
  GenotypePriors log_prior;
  for (int g = 0; g < kNumGenotypes; ++g)
    log_prior[static_cast<std::size_t>(g)] =
        std::log10(std::max(prior[static_cast<std::size_t>(g)], 1e-30));
  return log_prior;
}

}  // namespace gsnp::core
