#include "src/core/batcher.hpp"

#include <algorithm>
#include <sstream>

#include "src/core/kernels.hpp"
#include "src/core/new_pmatrix.hpp"
#include "src/core/pmatrix.hpp"
#include "src/sortnet/bitonic.hpp"

namespace gsnp::core {

namespace {

std::string budget_message(u64 budget_bytes, u64 needed_bytes,
                           u64 site_index) {
  std::ostringstream os;
  os << "batch budget too small: site " << site_index << " alone needs "
     << needed_bytes << " device bytes but the budget is " << budget_bytes
     << " — raise --batch-bytes to at least the deepest site's footprint";
  return os.str();
}

/// Conservative device scratch per output row for the RLE-DICT compressor
/// (src/compress/device_rledict.cpp): per column it holds the value upload,
/// flags, run values/starts, the sorted copy, uniqueness flags, dictionary
/// and index buffers — each at most 4 bytes per row, columns processed one
/// at a time.  Eight 4-byte buffers rounded up for the scalar totals.
constexpr u64 kRleWorstBytesPerRow = 40;

}  // namespace

BatchBudgetError::BatchBudgetError(u64 budget_bytes, u64 needed_bytes,
                                   u64 site_index)
    : Error(budget_message(budget_bytes, needed_bytes, site_index)),
      budget_bytes_(budget_bytes),
      needed_bytes_(needed_bytes),
      site_index_(site_index) {}

u64 planned_batch_peak_bytes(u64 sites, u64 words,
                             std::span<const u32> class_members,
                             u32 max_array_size,
                             std::span<const u32> class_bounds) {
  GSNP_CHECK(class_members.size() == class_bounds.size() + 1);
  // Resident CSR: base words (u32) + offsets (u64, sites + 1 entries).
  const u64 resident = 4 * words + 8 * (sites + 1);
  // Sort phase: multipass sorts one size class at a time and frees its
  // scratch between classes, so the phase cost is the max class, not the sum.
  u64 sort_scratch = 0;
  for (std::size_t c = 0; c < class_members.size(); ++c) {
    const u64 m = class_members[c];
    if (m == 0) continue;
    const u32 upper =
        c < class_bounds.size() ? class_bounds[c] : max_array_size;
    const u64 pad = sortnet::next_pow2(upper);
    // ClassMeta starts (u64) + sizes (u32) per member, plus the padded
    // gather batch (u32 per slot).
    sort_scratch = std::max(sort_scratch, 12 * m + 4 * m * pad);
  }
  // Likelihood phase: dep_count (u32 x kDepEntriesPerSite per site) + the
  // type_likely output (double x kNumGenotypes per site).
  const u64 likelihood =
      (u64{4} * kDepEntriesPerSite + u64{8} * kNumGenotypes) * sites;
  // Posterior phase: type_likely upload + priors upload (double x
  // kNumGenotypes each) + packed u32 calls.
  const u64 posterior = (u64{16} * kNumGenotypes + 4) * sites;
  return resident + std::max({sort_scratch, likelihood, posterior});
}

BatchPlan plan_batches(std::span<const u64> offsets, u64 budget_bytes,
                       std::span<const u32> class_bounds) {
  GSNP_CHECK_MSG(budget_bytes > 0, "plan_batches needs a nonzero budget");
  GSNP_CHECK(!offsets.empty());
  GSNP_CHECK(std::is_sorted(offsets.begin(), offsets.end()));
  GSNP_CHECK(std::is_sorted(class_bounds.begin(), class_bounds.end()));

  BatchPlan plan;
  plan.budget_bytes = budget_bytes;
  const u64 n_sites = offsets.size() - 1;
  if (n_sites == 0) return plan;

  const std::size_t n_classes = class_bounds.size() + 1;
  SiteBatch cur;
  cur.begin = 0;
  cur.words_begin = offsets[0];
  cur.class_members.assign(n_classes, 0);

  // Class index for a sortable array (size >= 2); mirrors the lower_bound
  // bucketing in sort_device_multipass_resident.
  const auto class_of = [&](u64 size) {
    const auto it = std::lower_bound(class_bounds.begin(), class_bounds.end(),
                                     static_cast<u32>(size));
    return static_cast<std::size_t>(it - class_bounds.begin());
  };

  for (u64 s = 0; s < n_sites; ++s) {
    const u64 size = offsets[s + 1] - offsets[s];
    const bool sortable = size > 1;
    const std::size_t cls = sortable ? class_of(size) : 0;

    // Trial state with site s appended; every model term is monotone in the
    // appended site, so greedy position-order packing never has to backtrack.
    if (sortable) ++cur.class_members[cls];
    const u32 trial_max =
        sortable ? std::max(cur.max_array_size, static_cast<u32>(size))
                 : cur.max_array_size;
    u64 trial_peak = planned_batch_peak_bytes(
        s + 1 - cur.begin, offsets[s + 1] - cur.words_begin, cur.class_members,
        trial_max, class_bounds);

    if (trial_peak > budget_bytes) {
      if (sortable) --cur.class_members[cls];
      if (s == cur.begin)
        throw BatchBudgetError(budget_bytes, trial_peak, s);
      // Close the running batch before s and restart with s alone.
      cur.end = static_cast<u32>(s);
      cur.words_end = offsets[s];
      plan.batches.push_back(cur);
      cur = SiteBatch{};
      cur.begin = static_cast<u32>(s);
      cur.words_begin = offsets[s];
      cur.class_members.assign(n_classes, 0);
      if (sortable) ++cur.class_members[cls];
      trial_peak = planned_batch_peak_bytes(
          1, size, cur.class_members,
          sortable ? static_cast<u32>(size) : 0, class_bounds);
      if (trial_peak > budget_bytes)
        throw BatchBudgetError(budget_bytes, trial_peak, s);
    }

    if (sortable)
      cur.max_array_size = std::max(cur.max_array_size, static_cast<u32>(size));
    cur.planned_peak_bytes = trial_peak;
  }

  cur.end = static_cast<u32>(n_sites);
  cur.words_end = offsets[n_sites];
  plan.batches.push_back(std::move(cur));

  for (const SiteBatch& b : plan.batches)
    plan.planned_peak_bytes =
        std::max(plan.planned_peak_bytes, b.planned_peak_bytes);
  return plan;
}

u64 worst_case_device_bytes(u64 batch_bytes, u64 window_size) {
  // Score tables are resident for the whole run (one upload, Fig 2's
  // load_table); the output phase compresses whole windows outside the batch
  // budget, so its scratch scales with window size, not batch bytes.
  const u64 tables = u64{8} * (PMatrix::kSize + NewPMatrix::kSize);
  return tables + batch_bytes + kRleWorstBytesPerRow * window_size;
}

void BatchStats::absorb(const BatchPlan& plan) {
  budget_bytes = plan.budget_bytes;
  windows_planned += 1;
  for (const SiteBatch& b : plan.batches) {
    batches += 1;
    if (min_batch_sites == 0 || b.sites() < min_batch_sites)
      min_batch_sites = b.sites();
    max_batch_sites = std::max(max_batch_sites, b.sites());
  }
  planned_peak_bytes = std::max(planned_peak_bytes, plan.planned_peak_bytes);
}

void BatchStats::record_actual(u64 peak_bytes) {
  actual_peak_bytes = std::max(actual_peak_bytes, peak_bytes);
}

}  // namespace gsnp::core
