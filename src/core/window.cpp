#include "src/core/window.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace gsnp::core {

WindowLoader::WindowLoader(RecordSource source, u64 total_sites,
                           u32 window_size)
    : source_(std::move(source)), total_sites_(total_sites),
      window_size_(window_size) {
  GSNP_CHECK(window_size_ > 0);
}

bool WindowLoader::next(WindowRecords& out) {
  if (next_start_ >= total_sites_) return false;
  const u64 start = next_start_;
  const u64 end = std::min(start + window_size_, total_sites_);
  out.start = start;
  out.size = static_cast<u32>(end - start);
  out.records.clear();

  // Records carried over from previous windows that overlap this one.
  // (Every carried record started before a previous window's end, so only
  // the right boundary needs checking.)
  for (const auto& rec : carry_)
    if (rec.pos + rec.length > start) out.records.push_back(rec);

  // Pull records starting inside this window.  `pending_` holds the one
  // look-ahead record that was read past a window boundary.
  while (!source_done_) {
    reads::AlignmentRecord rec;
    if (pending_) {
      if (pending_->pos >= end) break;  // still beyond this window
      rec = std::move(*pending_);
      pending_.reset();
    } else {
      auto r = source_();
      if (!r) {
        source_done_ = true;
        break;
      }
      if (r->pos >= end) {
        pending_ = std::move(r);
        break;
      }
      rec = std::move(*r);
    }
    if (rec.pos + rec.length > start) out.records.push_back(rec);
    if (rec.pos + rec.length > end) carry_.push_back(std::move(rec));
  }

  // Carried records that end within this window are never needed again.
  std::erase_if(carry_, [end](const reads::AlignmentRecord& rec) {
    return rec.pos + rec.length <= end;
  });

  next_start_ = end;
  return true;
}

void count_window(const WindowRecords& win, WindowObs& obs_out,
                  std::vector<SiteStats>& stats_out, BaseOccWindow* dense,
                  BaseWordWindow* sparse) {
  const u32 w = win.size;
  stats_out.assign(w, SiteStats{});
  obs_out.offsets.assign(static_cast<std::size_t>(w) + 1, 0);
  obs_out.obs.clear();
  obs_out.hits.clear();
  if (sparse) sparse->reset(w);

  // Pass 1: per-site observation counts (for CSR offsets).
  for (const auto& rec : win.records) {
    const u64 lo = std::max<u64>(rec.pos, win.start);
    const u64 hi = std::min<u64>(rec.pos + rec.length, win.start + w);
    for (u64 p = lo; p < hi; ++p) ++obs_out.offsets[p - win.start + 1];
  }
  for (u32 s = 0; s < w; ++s) obs_out.offsets[s + 1] += obs_out.offsets[s];
  const u64 total = obs_out.offsets[w];
  obs_out.obs.resize(total);
  obs_out.hits.resize(total);

  // Pass 2: fill observations in record-arrival order per site (two passes
  // over records in the same order keep per-site ordering stable).
  std::vector<u64> cursor(obs_out.offsets.begin(), obs_out.offsets.end() - 1);
  for (const auto& rec : win.records) {
    const u64 lo = std::max<u64>(rec.pos, win.start);
    const u64 hi = std::min<u64>(rec.pos + rec.length, win.start + w);
    for (u64 p = lo; p < hi; ++p) {
      reads::SiteObservation so;
      const bool ok = reads::observe_site(rec, p, so);
      GSNP_CHECK(ok);
      const u32 s = static_cast<u32>(p - win.start);
      AlignedBase ab;
      ab.base = so.base;
      ab.quality = so.quality;
      ab.coord = so.coord;
      ab.strand = so.strand;
      obs_out.obs[cursor[s]] = ab;
      obs_out.hits[cursor[s]] = rec.hit_count;
      ++cursor[s];
    }
  }

  // Pass 3: aggregates + likelihood structures.
  for (u32 s = 0; s < w; ++s) {
    SiteStats& st = stats_out[s];
    const auto site_obs = obs_out.site(s);
    const auto site_hits = obs_out.site_hits(s);
    for (std::size_t k = 0; k < site_obs.size(); ++k) {
      const AlignedBase& ab = site_obs[k];
      const bool unique = site_hits[k] == 1;
      ++st.count_all[ab.base];
      st.qual_sum_all[ab.base] += ab.quality;
      ++st.depth;
      st.hit_sum += site_hits[k];
      if (unique) {
        ++st.count_uniq[ab.base];
        if (dense) dense->add(s, ab);
      }
    }
  }

  if (sparse) {
    // CSR fill of base_word (unique hits only), arrival order within a site.
    sparse->offsets.assign(static_cast<std::size_t>(w) + 1, 0);
    for (u32 s = 0; s < w; ++s) {
      const auto site_hits = obs_out.site_hits(s);
      u64 n = 0;
      for (const u32 h : site_hits) n += (h == 1);
      sparse->offsets[s + 1] = sparse->offsets[s] + n;
    }
    sparse->words.resize(sparse->offsets[w]);
    for (u32 s = 0; s < w; ++s) {
      const auto site_obs = obs_out.site(s);
      const auto site_hits = obs_out.site_hits(s);
      u64 cur = sparse->offsets[s];
      for (std::size_t k = 0; k < site_obs.size(); ++k) {
        if (site_hits[k] != 1) continue;
        sparse->words[cur++] = base_word_pack(site_obs[k]);
      }
    }
  }
}

}  // namespace gsnp::core
