#pragma once
// The sparse aligned-base representation base_word (paper §IV-B, Fig. 3).
//
// Each aligned base is one 32-bit word packing (base, score, coord, strand)
// with the same bit layout as the dense index — except the score field stores
// 63 - score, so that sorting the words ascending reproduces Algorithm 1's
// canonical traversal order (base ascending, score DESCENDING, coord
// ascending, strand ascending).  One word per occurrence; duplicates simply
// repeat.
//
// A window's words are kept in CSR form: all sites' words concatenated with
// per-site offsets.  `recycle` for the sparse representation is just
// resetting the offsets — ~0.08% of the dense matrix's traffic.

#include <span>
#include <vector>

#include "src/common/types.hpp"

namespace gsnp::core {

/// Pack an aligned base into its sort key.
constexpr u32 base_word_pack(const AlignedBase& ab) {
  const u32 inv_score = static_cast<u32>(kQualityLevels - 1 - ab.quality);
  return (static_cast<u32>(ab.base) << 15) | (inv_score << 9) |
         (static_cast<u32>(ab.coord) << 1) | static_cast<u32>(ab.strand);
}

/// Unpack a sort key back into the aligned base it encodes.
constexpr AlignedBase base_word_unpack(u32 word) {
  AlignedBase ab;
  ab.base = static_cast<u8>(word >> 15);
  ab.quality = static_cast<u8>(kQualityLevels - 1 - ((word >> 9) & 63));
  ab.coord = static_cast<u16>((word >> 1) & 255);
  ab.strand = static_cast<Strand>(word & 1);
  return ab;
}

/// CSR container of per-site base_word arrays for one window.
struct BaseWordWindow {
  std::vector<u32> words;       ///< concatenated per-site words
  std::vector<u64> offsets;     ///< window_size + 1 offsets into words

  explicit BaseWordWindow(u32 window_size = 0) { reset(window_size); }

  u32 window_size() const { return static_cast<u32>(offsets.size() - 1); }

  std::span<u32> site(u32 s) {
    return std::span<u32>(words).subspan(offsets[s],
                                         offsets[s + 1] - offsets[s]);
  }
  std::span<const u32> site(u32 s) const {
    return std::span<const u32>(words).subspan(offsets[s],
                                               offsets[s + 1] - offsets[s]);
  }

  u64 size_of(u32 s) const { return offsets[s + 1] - offsets[s]; }

  /// Sparse recycle: drop the contents, keep the capacity.
  void reset(u32 window_size) {
    words.clear();
    offsets.assign(static_cast<std::size_t>(window_size) + 1, 0);
  }
};

}  // namespace gsnp::core
