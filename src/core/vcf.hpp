#pragma once
// VCF 4.2 export of SNP calls.
//
// The paper predates VCF's dominance (its output is the 17-column SOAPsnp
// table), but downstream tooling today consumes VCF; this exporter emits the
// variant sites (consensus genotype != homozygous reference) with genotype,
// consensus quality, depth and the rank-sum p as INFO/FORMAT fields.  It is
// an export, not a round-trip format — the compressed GSNP output remains
// the lossless record.

#include <filesystem>
#include <iosfwd>
#include <span>
#include <string>

#include "src/core/snp_row.hpp"

namespace gsnp::core {

struct VcfOptions {
  int min_quality = 0;        ///< emit only calls with consensus quality >= this
  bool include_ref_sites = false;  ///< also emit hom-ref sites (gVCF-style)
  std::string sample_name = "SAMPLE";
};

/// Write the VCF header (fileformat, INFO/FORMAT declarations, contig).
void write_vcf_header(std::ostream& out, const std::string& seq_name,
                      u64 seq_length, const VcfOptions& options);

/// Format one row as a VCF data line; returns empty when the row is filtered
/// (hom-ref without include_ref_sites, below min_quality, or uncallable).
std::string format_vcf_line(const std::string& seq_name, const SnpRow& row,
                            const VcfOptions& options);

/// Convert rows to a VCF file; returns the number of variant lines written.
u64 write_vcf_file(const std::filesystem::path& path,
                   const std::string& seq_name, u64 seq_length,
                   std::span<const SnpRow> rows, const VcfOptions& options = {});

}  // namespace gsnp::core
