#pragma once
// Posterior probability computation (workflow component `posterior`):
// combines the per-site genotype log-likelihoods with the genotype prior,
// selects the consensus genotype and quality, and fills the remaining
// statistics columns of the output row.

#include <span>

#include "src/core/likelihood.hpp"
#include "src/core/prior.hpp"
#include "src/core/snp_row.hpp"
#include "src/core/window.hpp"

namespace gsnp::core {

/// Compute one site's output row.
///
/// `site_obs`/`site_hits` are the arrival-order observations (for the
/// rank-sum test, which uses qualities of uniquely aligned reads only),
/// `stats` the per-site aggregates, `type_likely` the ten log10 likelihoods,
/// `ref_base` the reference base (kInvalidBase for 'N'), `known` the dbSNP
/// entry or nullptr.
SnpRow compute_posterior(u64 pos, u8 ref_base,
                         const genome::KnownSnpEntry* known,
                         const PriorParams& params, const TypeLikely& type_likely,
                         const SiteStats& stats,
                         std::span<const AlignedBase> site_obs,
                         std::span<const u32> site_hits);

/// The genotype-selection part of the posterior, separated out so the device
/// kernel and the host path share one definition: best/second genotype by
/// log posterior (prior + likelihood) and the Phred-scaled gap.
struct PosteriorCall {
  i8 best = 0;
  i8 second = 0;
  u16 quality = 0;  ///< clamp(round(10*(best-second)), 0, 99)
};
PosteriorCall select_genotype(const GenotypePriors& log_prior,
                              const TypeLikely& type_likely);

/// The selection scan over ten already-summed log posteriors
/// (prior + likelihood).  select_genotype and the SIMD backend both funnel
/// through this so the tie-breaking and quality-rounding rules have exactly
/// one definition (`lp` points at kNumGenotypes doubles).
PosteriorCall select_from_log_posteriors(const double* lp);

/// Assemble the full output row given an already-selected genotype call
/// (host path: select_genotype; GSNP path: the device posterior kernel,
/// which computes the identical selection).
SnpRow assemble_row(u64 pos, u8 ref_base, bool in_dbsnp,
                    const PosteriorCall& call, const SiteStats& stats,
                    std::span<const AlignedBase> site_obs,
                    std::span<const u32> site_hits);

/// Memoizes novel-site priors by reference base (they depend only on the
/// base), so per-site prior construction is O(1) away from dbSNP sites.
class PriorCache {
 public:
  explicit PriorCache(const PriorParams& params);

  /// Prior for a site: cached for novel sites, computed for dbSNP entries.
  const GenotypePriors& get(u8 ref_base, const genome::KnownSnpEntry* known);

 private:
  PriorParams params_;
  std::array<GenotypePriors, kNumBases + 1> novel_;  // [4] = 'N'
  GenotypePriors scratch_;
};

}  // namespace gsnp::core
