#pragma once
// Compressed SNP output (paper §V-B) and the plain-text writer it replaces.
//
// The output table is compressed column-by-column per window:
//   cols 1-2  : sequence name once per file; positions are consecutive within
//               a window, so a window stores only (start, count)
//   col 3     : reference base, 2 bits each + sparse 'N' exception list
//   col 4     : consensus genotype as exceptions against the predicted
//               homozygous-reference genotype (SNPs are rare)
//   cols 10-13: second-allele columns, stored sparse (non-zero entries only)
//   cols 5,7,8,9,14,16: the six quality-related columns, RLE-DICT
//   col 6     : best base, 2 bits + 'N' exceptions
//   col 15    : rank-sum p on the 1e-4 grid, dictionary-quantized
//   col 17    : dbSNP flag, sparse
//
// File layout: 8-byte magic, varint(name length), name bytes, then frames of
// [varint frame bytes][frame payload][4-byte LE CRC-32 of the payload] until
// EOF.  Each frame is one window.  Container version 2 ("GSNPOUT2") added
// the trailing frame CRC so corruption is caught at read time instead of
// decoding to garbage rows; version-1 files are rejected by the magic check.
// Decompression is a sequential in-memory pass per window — the access
// pattern downstream tools use (paper §V-B last paragraph); SnpOutputReader
// is that tool API.  Range queries still skip non-overlapping frames without
// reading them (the CRC is only checked on frames actually decompressed).
//
// The RLE-DICT step is pluggable so the GSNP engine can route those six
// columns through the device kernels (compress::device_encode_rle_dict)
// while producing byte-identical files to the host path.

#include <filesystem>
#include <fstream>
#include <functional>
#include <span>
#include <vector>

#include "src/common/types.hpp"
#include "src/core/snp_row.hpp"

namespace gsnp::core {

/// Signature of the RLE-DICT column encoder (host or device-backed).
using RleDictFn =
    std::function<void(std::span<const u32>, std::vector<u8>&)>;

/// The default host RLE-DICT encoder (compress::encode_rle_dict).
RleDictFn host_rle_dict();

/// Compress one window of rows into a self-contained frame payload.
std::vector<u8> compress_snp_window(std::span<const SnpRow> rows,
                                    const RleDictFn& rle_dict);

/// Decompress a frame payload produced by compress_snp_window.
std::vector<SnpRow> decompress_snp_window(std::span<const u8> data);

inline constexpr char kOutputMagic[8] = {'G', 'S', 'N', 'P',
                                         'O', 'U', 'T', '2'};

/// Streaming writer of the compressed output file.
class SnpOutputWriter {
 public:
  SnpOutputWriter(const std::filesystem::path& path, std::string seq_name);

  void write_window(std::span<const SnpRow> rows, const RleDictFn& rle_dict);
  /// Flush and report total bytes written.
  u64 finish();

 private:
  std::ofstream out_;
  std::filesystem::path path_;  ///< for fault routing + error messages
  u64 bytes_ = 0;
};

/// Streaming reader (the decompression API shipped with GSNP).
class SnpOutputReader {
 public:
  explicit SnpOutputReader(const std::filesystem::path& path);

  const std::string& seq_name() const { return seq_name_; }

  /// Read and decompress the next window; false at EOF.
  bool next_window(std::vector<SnpRow>& rows);

 private:
  std::ifstream in_;
  std::string seq_name_;
};

/// Plain-text output (the SOAPsnp format), one row per line.
class SnpTextWriter {
 public:
  SnpTextWriter(const std::filesystem::path& path, std::string seq_name);

  void write_window(std::span<const SnpRow> rows);
  u64 finish();

 private:
  std::ofstream out_;
  std::filesystem::path path_;
  std::string seq_name_;
  u64 bytes_ = 0;
};

/// Read a whole plain-text output file (consistency checks, tests).
std::vector<SnpRow> read_snp_text_file(const std::filesystem::path& path,
                                       std::string& seq_name);

/// Read a whole compressed output file.
std::vector<SnpRow> read_snp_compressed_file(const std::filesystem::path& path,
                                             std::string& seq_name);

/// Range query on a compressed output file: rows with pos in [lo, hi).
/// Non-overlapping windows are *skipped without decompression* — every frame
/// leads with (row count, start position) varints, so the reader peeks those
/// and seeks past the payload (the "higher level applications ... query
/// sites satisfying certain conditions" use case of §V-B).
std::vector<SnpRow> read_snp_range(const std::filesystem::path& path, u64 lo,
                                   u64 hi, std::string& seq_name);

}  // namespace gsnp::core
