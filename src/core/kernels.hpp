#pragma once
// Device likelihood kernels (paper §IV, Figs 5 and 8, Table III).
//
// The sparse kernel is Algorithm 4's computation step with one thread per
// site, in four variants crossing the two optimizations the paper ablates:
//
//   baseline    : type_likely in global memory; two p_matrix reads + a
//                 runtime log10 per (aligned base, genotype)
//   w/ shared   : type_likely accumulated in shared memory, flushed to global
//                 with coalesced writes at the end (§IV-E)
//   w/ new table: Algorithm 3 — one new_p_matrix read, no log10 (§IV-D)
//   optimized   : both (the production GSNP kernel)
//
// The dense kernel mirrors the "GPU dense" comparison point of Fig 5: one
// block per site cooperatively streams the 131,072-cell base_occ matrix with
// coalesced reads.  It exists for the performance comparison only; output
// paths always use the sparse optimized kernel.
//
// dep_count lives in global memory (one 512-entry array per in-flight site),
// exactly as §IV-E prescribes: it is too large for shared memory and accessed
// an order of magnitude less than type_likely.

#include <vector>

#include "src/core/base_occ.hpp"
#include "src/core/base_word.hpp"
#include "src/core/likelihood.hpp"
#include "src/core/new_pmatrix.hpp"
#include "src/core/posterior.hpp"
#include "src/core/pmatrix.hpp"
#include "src/device/device.hpp"

namespace gsnp::core {

/// Threads per block for the sparse likelihood kernel; sized so the shared
/// type_likely tile (threads x 10 doubles) fits the 48 KB shared budget.
inline constexpr u32 kLikelihoodBlockThreads = 64;

/// dep_count entries per in-flight site (§IV-E: one slot per strand x read
/// position).  The sparse kernel allocates `sites * kDepEntriesPerSite` u32
/// entries in global memory; the batcher's cost model charges the same term,
/// so the constant lives here rather than in the kernel TU.
inline constexpr u32 kDepEntriesPerSite = kNumStrands * kMaxReadLen;

struct SparseKernelOpts {
  bool use_shared = true;
  bool use_new_table = true;
};

/// Device-resident score tables, uploaded once per run (component
/// load_table in Fig 2).
class DeviceScoreTables {
 public:
  DeviceScoreTables(device::Device& dev, const PMatrix& pm,
                    const NewPMatrix& npm);

  const device::DeviceBuffer<double>& p_matrix() const { return p_matrix_; }
  const device::DeviceBuffer<double>& new_p_matrix() const { return new_p_; }
  const device::ConstantTable<double>& log_table() const { return logs_; }

 private:
  device::DeviceBuffer<double> p_matrix_;
  device::DeviceBuffer<double> new_p_;
  device::ConstantTable<double> logs_;
};

/// Sparse likelihood on the device: uploads the window's (sorted) base_word
/// CSR, runs the kernel variant, and downloads the ten log-likelihoods per
/// site.  Results are bit-identical to likelihood_sparse_site when
/// use_new_table is set (and identical here in practice for all variants,
/// since host and simulated device share one libm).
std::vector<TypeLikely> device_likelihood_sparse(
    device::Device& dev, const BaseWordWindow& sorted_window,
    const DeviceScoreTables& tables, const SparseKernelOpts& opts = {});

/// Device-resident variant: operates on word/offset buffers already in
/// device global memory (the production data flow — counting output stays on
/// the card through sorting and likelihood; only the ten log-likelihoods per
/// site come back).
std::vector<TypeLikely> device_likelihood_sparse_resident(
    device::Device& dev, const device::DeviceBuffer<u32>& words,
    const device::DeviceBuffer<u64>& offsets, u32 window_size,
    const DeviceScoreTables& tables, const SparseKernelOpts& opts = {});

/// Dense likelihood on the device (Fig 5's "GPU dense").  Builds base_occ on
/// the device from the window's words via a counting scatter kernel, then
/// block-per-site streams the dense matrix.  Processes the window in chunks
/// that respect the device's global-memory budget.
std::vector<TypeLikely> device_likelihood_dense(
    device::Device& dev, const BaseWordWindow& window,
    const DeviceScoreTables& tables);

/// Posterior genotype selection on the device (the `posterior` component of
/// Fig 2): one thread per site combines the ten log-likelihoods with the ten
/// log-priors and selects best/second/quality.  Bit-identical to the host
/// select_genotype; the speedup is modest because the work is dominated by
/// the host<->device transfer of the prior and likelihood arrays (the paper
/// observes the same: 6-7x, "less significant due to the data transfer
/// overhead").
std::vector<PosteriorCall> device_posterior(
    device::Device& dev, std::span<const TypeLikely> type_likely,
    std::span<const GenotypePriors> log_priors);

}  // namespace gsnp::core
