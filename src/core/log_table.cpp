#include "src/core/log_table.hpp"

namespace gsnp::core {

const std::array<double, kLogTableSize>& log_table() {
  static const std::array<double, kLogTableSize> table = make_log_table();
  return table;
}

}  // namespace gsnp::core
