#pragma once
// The SNP-calling engines (paper Figs 1 and 2):
//
//  * run_soapsnp   — the CPU baseline: dense base_occ, Algorithm 1 likelihood
//                    (runtime log10, two p_matrix reads per update), plain
//                    text output, full dense-matrix recycle per window.
//                    Default window 4,000 sites.
//  * run_gsnp_cpu  — GSNP's algorithm without the GPU: sparse base_word with
//                    per-array quicksort, new_p_matrix, compressed temporary
//                    input and compressed output (host codecs).  Default
//                    window 256,000 sites.
//  * run_gsnp_simd — run_gsnp_cpu with the hot per-site kernels (sparse
//                    likelihood accumulate, posterior sums) dispatched to
//                    the best vectorized implementation the CPU supports
//                    (core/simd.hpp: AVX2 -> SSE2 -> scalar).  Bit-identical
//                    output to run_gsnp_cpu at every dispatch level.
//  * run_gsnp      — the full system: sparse representation, multipass batch
//                    bitonic sort + the optimized likelihood kernel on the
//                    device, device RLE-DICT output compression.  Device work
//                    is timed through the analytical M2050 model from measured
//                    operation counts (see device/perf_model.hpp and
//                    DESIGN.md); host work is wall-clock.
//
// All engines emit identical SnpRow streams (paper §IV-G); only the
// container format differs (text vs compressed).  Component times use the
// paper's seven names: cal_p, read, count, likeli, post, output, recycle.
// Callers normally go through the registry in core/backend.hpp instead of
// naming these entry points directly.

#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "src/common/cancel.hpp"
#include "src/common/ingest.hpp"
#include "src/common/timer.hpp"
#include "src/core/batcher.hpp"
#include "src/core/prior.hpp"
#include "src/device/device.hpp"
#include "src/device/perf_model.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/reference.hpp"

namespace gsnp::obs {
class Tracer;
}

namespace gsnp::core {

/// Paper component names, in pipeline order.
inline constexpr const char* kComponents[] = {
    "cal_p", "read", "count", "likeli", "post", "output", "recycle"};

struct EngineConfig {
  std::filesystem::path alignment_file;
  const genome::Reference* reference = nullptr;
  const genome::DbSnpTable* dbsnp = nullptr;  ///< optional prior file
  std::filesystem::path output_file;
  std::filesystem::path temp_file;  ///< GSNP/GSNP_CPU compressed temp input
  u32 window_size = 0;              ///< 0 = engine default
  PriorParams prior;
  /// Threads for the SOAPsnp engine's per-site loops (the multi-threaded
  /// variant §VI-A mentions: ~3-4x with 16 threads, memory-bandwidth-bound).
  /// 1 = the official single-threaded SOAPsnp used in all comparisons.
  int soapsnp_threads = 1;

  /// How the alignment-file loaders treat malformed input: strict (default,
  /// first bad record aborts with a ParseError) or lenient (skip into the
  /// policy's quarantine file, bounded by its error budget).  The resulting
  /// per-reason breakdown lands in RunReport::ingest.
  IngestPolicy ingest;

  /// Reuse a calibration matrix from a previous run (core::write_p_matrix):
  /// cal_p_matrix skips the counting pass (SOAPsnp's matrix-reload feature).
  /// The GSNP engines still stream the input once to build the compressed
  /// temporary file.  Bit-exact with the matrix it was saved from.
  std::filesystem::path p_matrix_in;
  /// Save the calibration matrix computed by this run.
  std::filesystem::path p_matrix_out;

  /// Optional span tracing + metrics (src/obs): when non-null, every
  /// pipeline stage, sort pass, device compression call and host↔device
  /// transfer emits a span, and run totals land in the tracer's metrics
  /// registry.  The stopwatches in RunReport receive exactly the same
  /// measurements, so trace exports and the Tables I/IV breakdowns cannot
  /// drift.  Null = tracing off (zero overhead).
  obs::Tracer* tracer = nullptr;

  /// Overlapped-pipeline knobs.  `streams <= 1` selects the serial reference
  /// path (unchanged, the bit-exactness baseline).  `streams >= 2` runs the
  /// double-buffered pipeline: the GSNP engine issues device work onto a
  /// StreamPool of `streams` async streams (compute / h2d / output lanes)
  /// while a host thread pool prefetches (ingests + packs) the next window
  /// and the previous window's output+compression drains on its own stream;
  /// the CPU engines prefetch the next window and defer output (SOAPsnp
  /// text, GSNP_CPU host RLE-DICT) to ordered thread-pool tasks.  All
  /// arithmetic runs in the same order on the same data as the serial path,
  /// so output is byte-identical by construction (tests/test_determinism).
  u32 streams = 1;
  /// Window slots in flight for the overlapped path (clamped to >= 2).
  /// SOAPsnp note: each slot owns a dense base_occ window, so memory scales
  /// with depth there; the sparse engines pay ~0.1% of that per slot.
  u32 pipeline_depth = 2;
  /// Host worker threads for ingest prefetch + deferred output tasks.  Any
  /// size (including 1) produces identical output; it only changes how much
  /// host work overlaps.
  u32 host_threads = 2;

  /// Optional cooperative cancellation.  The engines poll the token at
  /// window boundaries and periodically inside the cal_p streaming pass, and
  /// unwind with CancelledError — the output/temp writers are abandoned
  /// mid-file, so the caller owns cleanup of the partial `.part` artifacts
  /// (the genome pipeline removes them; the CLI unlinks on interrupt).
  /// Null = never cancelled (zero overhead beyond one branch per window).
  const CancelToken* cancel = nullptr;

  /// Depth-aware batching (src/core/batcher.hpp).  0 = off: every window is
  /// one device batch, the historical fixed-window behavior.  > 0: each
  /// loader window is split into position-ordered batches whose planned
  /// device footprint never exceeds this many bytes, so batch size floats
  /// with observed depth.  Output stays byte-identical to the fixed-window
  /// path on every backend (batches never span a window, and per-site
  /// arithmetic is batch-invariant); device counters differ (more, smaller
  /// launches).  Host backends use the same plan to chunk their per-site
  /// loops, so RunReport::batch is populated for all four backends.  Throws
  /// BatchBudgetError if a single site cannot fit.
  u64 batch_bytes = 0;

  /// Default windows: SOAPsnp 4,000; GSNP / GSNP_CPU 256,000 (paper §VI-A).
  static constexpr u32 kDefaultSoapsnpWindow = 4'000;
  static constexpr u32 kDefaultGsnpWindow = 256'000;
};

struct RunReport {
  StopwatchSet host;            ///< measured seconds per component
  StopwatchSet device_modeled;  ///< modeled device seconds per component
                                ///< (plus "likeli_sort"/"likeli_comp" detail)
  u64 sites = 0;
  u64 windows = 0;
  u64 records = 0;
  u64 output_bytes = 0;
  u64 temp_bytes = 0;
  u64 peak_host_bytes = 0;    ///< dominant buffer footprint estimate
  u64 peak_device_bytes = 0;  ///< device allocation high-water mark
  device::DeviceCounters device_counters;
  /// Ingest outcome of the alignment file (ok / unsupported / quarantined
  /// per reason), from the cal_p streaming pass.
  IngestStats ingest;

  /// Number of device streams the run actually used (1 = serial path).
  u32 streams_used = 1;
  /// Overlap-aware modeled device wall seconds for the whole run: stream
  /// timelines replayed with event dependencies (max across concurrent
  /// streams), plus non-stream device work charged serially.  For the
  /// serial path this equals modeled_serial_seconds.  GSNP engine only.
  double modeled_wall_seconds = 0.0;
  /// No-overlap baseline: PerfModel seconds over the run's whole device
  /// counter delta.  Identical for serial and overlapped runs of the same
  /// input (the counters are identical).  GSNP engine only.
  double modeled_serial_seconds = 0.0;
  /// Exact per-stream counter movement (overlapped GSNP runs; index =
  /// stream id - 1).  Sums to the stream-issued part of device_counters.
  std::vector<device::DeviceCounters> stream_counters;

  /// Depth-aware batching aggregate (EngineConfig::batch_bytes > 0 only):
  /// batch counts, planned peak from the cost model, and — on the device
  /// engine — the actual per-batch allocation watermark.
  BatchStats batch;

  /// Combined (host + modeled device) seconds for one component.
  double component(const std::string& name) const {
    return host.get(name) + device_modeled.get(name);
  }
  /// Combined total over the seven pipeline components.
  double total() const;
};

RunReport run_soapsnp(const EngineConfig& config);
RunReport run_gsnp_cpu(const EngineConfig& config);
RunReport run_gsnp_simd(const EngineConfig& config);
RunReport run_gsnp(const EngineConfig& config, device::Device& dev,
                   const device::PerfModel& model = {});

}  // namespace gsnp::core
