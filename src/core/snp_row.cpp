#include "src/core/snp_row.hpp"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace gsnp::core {

std::string format_snp_row(const std::string& seq_name, const SnpRow& row) {
  // Fixed formatting keeps the text output byte-deterministic across
  // implementations (consistency requirement, paper §IV-G).
  char p_buf[16];
  std::snprintf(p_buf, sizeof(p_buf), "%.4f", row.rank_sum_p);
  char cn_buf[32];
  std::snprintf(cn_buf, sizeof(cn_buf), "%.2f", row.copy_number);

  std::ostringstream os;
  os << seq_name << '\t' << (row.pos + 1) << '\t' << char_from_base(row.ref_base)
     << '\t'
     << (row.genotype_rank < 0 ? 'N' : iupac_from_rank(row.genotype_rank))
     << '\t' << row.quality << '\t' << char_from_base(row.best_base) << '\t'
     << row.best_avg_quality << '\t' << row.best_uniq_count << '\t'
     << row.best_all_count << '\t' << char_from_base(row.second_base) << '\t'
     << row.second_avg_quality << '\t' << row.second_uniq_count << '\t'
     << row.second_all_count << '\t' << row.depth << '\t' << p_buf << '\t'
     << cn_buf << '\t' << (row.in_dbsnp ? 1 : 0);
  return os.str();
}

SnpRow parse_snp_row(std::string_view line, std::string& seq_name) {
  const auto f = split(trim(line), '\t');
  GSNP_CHECK_MSG(f.size() == 17, "bad SNP row: '" << line << "'");
  seq_name = std::string(f[0]);
  SnpRow row;
  row.pos = parse_int<u64>(f[1], "pos") - 1;
  row.ref_base = base_from_char(f[2][0]);
  row.genotype_rank = static_cast<i8>(rank_from_iupac(f[3][0]));
  row.quality = parse_int<u16>(f[4], "quality");
  row.best_base = base_from_char(f[5][0]);
  row.best_avg_quality = parse_int<u16>(f[6], "best avg q");
  row.best_uniq_count = parse_int<u32>(f[7], "best uniq");
  row.best_all_count = parse_int<u32>(f[8], "best all");
  row.second_base = base_from_char(f[9][0]);
  row.second_avg_quality = parse_int<u16>(f[10], "second avg q");
  row.second_uniq_count = parse_int<u32>(f[11], "second uniq");
  row.second_all_count = parse_int<u32>(f[12], "second all");
  row.depth = parse_int<u32>(f[13], "depth");
  row.rank_sum_p = parse_double(f[14], "rank-sum p");
  row.copy_number = parse_double(f[15], "copy number");
  row.in_dbsnp = parse_int<int>(f[16], "dbsnp flag") != 0;
  return row;
}

}  // namespace gsnp::core
