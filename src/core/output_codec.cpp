#include "src/core/output_codec.hpp"

#include <cstring>

#include "src/common/bitio.hpp"
#include "src/common/crc32.hpp"
#include "src/common/error.hpp"
#include "src/common/fs_fault.hpp"
#include "src/compress/codecs.hpp"

namespace gsnp::core {

RleDictFn host_rle_dict() {
  return [](std::span<const u32> column, std::vector<u8>& out) {
    compress::encode_rle_dict(column, out);
  };
}

namespace {

/// Base column with possible 'N's: 2-bit codes (N packed as 0) plus a sparse
/// exception column flagging the N positions.
void encode_base_column(std::span<const SnpRow> rows, u8 SnpRow::*field,
                        std::vector<u8>& out) {
  std::vector<u8> codes(rows.size());
  std::vector<u32> n_flags(rows.size(), 0);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const u8 b = rows[i].*field;
    codes[i] = b < kNumBases ? b : 0;
    n_flags[i] = b < kNumBases ? 0 : 1;
  }
  compress::pack_bases(codes, out);
  compress::encode_sparse(n_flags, out);
}

void decode_base_column(std::vector<SnpRow>& rows, u8 SnpRow::*field,
                        std::span<const u8> data, std::size_t& pos) {
  const std::vector<u8> codes = compress::unpack_bases(data, pos);
  const std::vector<u32> n_flags = compress::decode_sparse(data, pos);
  GSNP_CHECK(codes.size() == rows.size() && n_flags.size() == rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    rows[i].*field = n_flags[i] ? kInvalidBase : codes[i];
}

template <typename Field>
std::vector<u32> gather(std::span<const SnpRow> rows, Field&& get) {
  std::vector<u32> column(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) column[i] = get(rows[i]);
  return column;
}

/// Predicted genotype column: homozygous-reference (encoded rank+1; 0 = 'N').
std::vector<u32> predicted_genotypes(std::span<const SnpRow> rows) {
  std::vector<u32> predicted(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const u8 r = rows[i].ref_base;
    predicted[i] =
        r < kNumBases ? static_cast<u32>(genotype_rank(r, r)) + 1 : 0;
  }
  return predicted;
}

std::vector<u32> predicted_genotypes(const std::vector<SnpRow>& rows) {
  return predicted_genotypes(
      std::span<const SnpRow>(rows.data(), rows.size()));
}

}  // namespace

std::vector<u8> compress_snp_window(std::span<const SnpRow> rows,
                                    const RleDictFn& rle_dict) {
  std::vector<u8> out;
  varint_append(out, rows.size());
  if (rows.empty()) return out;

  // Cols 1-2: positions are consecutive — store the start only.
  varint_append(out, rows.front().pos);

  // Col 3: reference base.
  encode_base_column(rows, &SnpRow::ref_base, out);

  // Col 4: genotype vs predicted hom-ref.
  compress::encode_exceptions(
      gather(rows,
             [](const SnpRow& r) {
               return r.genotype_rank < 0
                          ? 0u
                          : static_cast<u32>(r.genotype_rank) + 1;
             }),
      predicted_genotypes(rows), out);

  // Col 5: consensus quality (quality-related -> RLE-DICT).
  rle_dict(gather(rows, [](const SnpRow& r) { return r.quality; }), out);

  // Col 6: best base.
  encode_base_column(rows, &SnpRow::best_base, out);

  // Cols 7-9: best-allele stats (quality-related -> RLE-DICT).
  rle_dict(gather(rows, [](const SnpRow& r) { return r.best_avg_quality; }),
           out);
  rle_dict(gather(rows, [](const SnpRow& r) { return r.best_uniq_count; }),
           out);
  rle_dict(gather(rows, [](const SnpRow& r) { return r.best_all_count; }),
           out);

  // Cols 10-13: second-allele columns, sparse (base stored as code+1).
  compress::encode_sparse(
      gather(rows,
             [](const SnpRow& r) {
               return r.second_base < kNumBases
                          ? static_cast<u32>(r.second_base) + 1
                          : 0u;
             }),
      out);
  compress::encode_sparse(
      gather(rows, [](const SnpRow& r) { return r.second_avg_quality; }), out);
  compress::encode_sparse(
      gather(rows, [](const SnpRow& r) { return r.second_uniq_count; }), out);
  compress::encode_sparse(
      gather(rows, [](const SnpRow& r) { return r.second_all_count; }), out);

  // Col 14: depth (quality-related -> RLE-DICT).
  rle_dict(gather(rows, [](const SnpRow& r) { return r.depth; }), out);

  // Col 15: rank-sum p (1e-4 grid).
  {
    std::vector<double> p(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) p[i] = rows[i].rank_sum_p;
    compress::encode_quantized(p, 1e4, out);
  }

  // Col 16: average copy number (1e-2 grid; quality-related family).
  {
    std::vector<double> cn(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) cn[i] = rows[i].copy_number;
    compress::encode_quantized(cn, 1e2, out);
  }

  // Col 17: dbSNP membership, sparse.
  compress::encode_sparse(
      gather(rows, [](const SnpRow& r) { return r.in_dbsnp ? 1u : 0u; }), out);

  return out;
}

std::vector<SnpRow> decompress_snp_window(std::span<const u8> data) {
  std::size_t pos = 0;
  const u64 n = varint_read(data, pos);
  GSNP_CHECK_MSG(n <= (1ULL << 28), "implausible window row count " << n);
  std::vector<SnpRow> rows(n);
  if (n == 0) return rows;

  const u64 start = varint_read(data, pos);
  for (u64 i = 0; i < n; ++i) rows[i].pos = start + i;

  decode_base_column(rows, &SnpRow::ref_base, data, pos);

  {
    const std::vector<u32> genotype = compress::decode_exceptions(
        predicted_genotypes(rows), data, pos);
    for (u64 i = 0; i < n; ++i)
      rows[i].genotype_rank =
          genotype[i] == 0 ? i8{-1} : static_cast<i8>(genotype[i] - 1);
  }

  const auto scatter_u32 = [&](auto set, const std::vector<u32>& col) {
    GSNP_CHECK(col.size() == n);
    for (u64 i = 0; i < n; ++i) set(rows[i], col[i]);
  };

  scatter_u32([](SnpRow& r, u32 v) { r.quality = static_cast<u16>(v); },
              compress::decode_rle_dict(data, pos));
  decode_base_column(rows, &SnpRow::best_base, data, pos);
  scatter_u32(
      [](SnpRow& r, u32 v) { r.best_avg_quality = static_cast<u16>(v); },
      compress::decode_rle_dict(data, pos));
  scatter_u32([](SnpRow& r, u32 v) { r.best_uniq_count = v; },
              compress::decode_rle_dict(data, pos));
  scatter_u32([](SnpRow& r, u32 v) { r.best_all_count = v; },
              compress::decode_rle_dict(data, pos));

  scatter_u32(
      [](SnpRow& r, u32 v) {
        r.second_base = v == 0 ? kInvalidBase : static_cast<u8>(v - 1);
      },
      compress::decode_sparse(data, pos));
  scatter_u32(
      [](SnpRow& r, u32 v) { r.second_avg_quality = static_cast<u16>(v); },
      compress::decode_sparse(data, pos));
  scatter_u32([](SnpRow& r, u32 v) { r.second_uniq_count = v; },
              compress::decode_sparse(data, pos));
  scatter_u32([](SnpRow& r, u32 v) { r.second_all_count = v; },
              compress::decode_sparse(data, pos));
  scatter_u32([](SnpRow& r, u32 v) { r.depth = v; },
              compress::decode_rle_dict(data, pos));

  {
    const std::vector<double> p = compress::decode_quantized(data, pos);
    GSNP_CHECK(p.size() == n);
    for (u64 i = 0; i < n; ++i) rows[i].rank_sum_p = p[i];
  }
  {
    const std::vector<double> cn = compress::decode_quantized(data, pos);
    GSNP_CHECK(cn.size() == n);
    for (u64 i = 0; i < n; ++i) rows[i].copy_number = cn[i];
  }
  scatter_u32([](SnpRow& r, u32 v) { r.in_dbsnp = v != 0; },
              compress::decode_sparse(data, pos));

  GSNP_CHECK_MSG(pos == data.size(), "trailing bytes in SNP window frame");
  return rows;
}

// ---- file-level writer / reader -------------------------------------------------

SnpOutputWriter::SnpOutputWriter(const std::filesystem::path& path,
                                 std::string seq_name)
    : out_(path, std::ios::binary), path_(path) {
  GSNP_CHECK_MSG(out_.good(), "cannot open output file " << path);
  std::string header(kOutputMagic, sizeof(kOutputMagic));
  std::vector<u8> len;
  varint_append(len, seq_name.size());
  header.append(reinterpret_cast<const char*>(len.data()), len.size());
  header.append(seq_name);
  fsfault::write(out_, path_, header);
  bytes_ = header.size();
}

void SnpOutputWriter::write_window(std::span<const SnpRow> rows,
                                   const RleDictFn& rle_dict) {
  const std::vector<u8> frame = compress_snp_window(rows, rle_dict);
  std::vector<u8> size_prefix;
  varint_append(size_prefix, frame.size());
  const u32 crc = crc32(frame.data(), frame.size());
  const u8 crc_le[4] = {static_cast<u8>(crc), static_cast<u8>(crc >> 8),
                        static_cast<u8>(crc >> 16), static_cast<u8>(crc >> 24)};
  // One fault-checked write per window: either the whole [size][frame][crc]
  // record goes out or a typed FsFaultError fires (a short-write fault can
  // still truncate mid-record on disk — the reader's CRC catches it).
  std::string record;
  record.reserve(size_prefix.size() + frame.size() + sizeof(crc_le));
  record.append(reinterpret_cast<const char*>(size_prefix.data()),
                size_prefix.size());
  record.append(reinterpret_cast<const char*>(frame.data()), frame.size());
  record.append(reinterpret_cast<const char*>(crc_le), sizeof(crc_le));
  fsfault::write(out_, path_, record);
  bytes_ += record.size();
}

u64 SnpOutputWriter::finish() {
  out_.flush();
  fsfault::check_stream(out_, path_, "flush");
  out_.close();
  return bytes_;
}

namespace {

/// Read one varint directly from a stream (frame sizes in file headers).
bool stream_varint(std::istream& in, u64& value) {
  value = 0;
  int shift = 0;
  for (;;) {
    const int c = in.get();
    if (c == EOF) return false;
    value |= static_cast<u64>(c & 0x7F) << shift;
    if (!(c & 0x80)) return true;
    shift += 7;
    GSNP_CHECK_MSG(shift < 64, "varint too long in stream");
  }
}

/// Read the trailing 4-byte little-endian frame CRC-32.
bool stream_crc32(std::istream& in, u32& crc) {
  u8 le[4];
  in.read(reinterpret_cast<char*>(le), sizeof(le));
  if (in.gcount() != sizeof(le)) return false;
  crc = static_cast<u32>(le[0]) | (static_cast<u32>(le[1]) << 8) |
        (static_cast<u32>(le[2]) << 16) | (static_cast<u32>(le[3]) << 24);
  return true;
}

}  // namespace

SnpOutputReader::SnpOutputReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  GSNP_CHECK_MSG(in_.good(), "cannot open compressed output " << path);
  char magic[sizeof(kOutputMagic)];
  in_.read(magic, sizeof(magic));
  GSNP_CHECK_MSG(
      in_.gcount() == sizeof(magic) &&
          std::memcmp(magic, kOutputMagic, sizeof(magic)) == 0,
      "bad magic in " << path);
  u64 name_len = 0;
  GSNP_CHECK(stream_varint(in_, name_len));
  seq_name_.resize(name_len);
  in_.read(seq_name_.data(), static_cast<std::streamsize>(name_len));
  GSNP_CHECK(in_.gcount() == static_cast<std::streamsize>(name_len));
}

bool SnpOutputReader::next_window(std::vector<SnpRow>& rows) {
  u64 frame_size = 0;
  if (!stream_varint(in_, frame_size)) return false;
  GSNP_CHECK_MSG(frame_size <= (1ULL << 32), "implausible frame size");
  std::vector<u8> frame(frame_size);
  in_.read(reinterpret_cast<char*>(frame.data()),
           static_cast<std::streamsize>(frame_size));
  GSNP_CHECK_MSG(in_.gcount() == static_cast<std::streamsize>(frame_size),
                 "truncated frame");
  u32 stored_crc = 0;
  GSNP_CHECK_MSG(stream_crc32(in_, stored_crc), "truncated frame CRC");
  GSNP_CHECK_MSG(crc32(frame.data(), frame.size()) == stored_crc,
                 "SNP output frame CRC mismatch (corrupt file)");
  rows = decompress_snp_window(frame);
  return true;
}

SnpTextWriter::SnpTextWriter(const std::filesystem::path& path,
                             std::string seq_name)
    : out_(path), path_(path), seq_name_(std::move(seq_name)) {
  GSNP_CHECK_MSG(out_.good(), "cannot open output file " << path);
}

void SnpTextWriter::write_window(std::span<const SnpRow> rows) {
  std::string block;
  for (const SnpRow& row : rows) {
    block += format_snp_row(seq_name_, row);
    block += '\n';
  }
  fsfault::write(out_, path_, block);
  bytes_ += block.size();
}

u64 SnpTextWriter::finish() {
  out_.flush();
  fsfault::check_stream(out_, path_, "flush");
  out_.close();
  return bytes_;
}

std::vector<SnpRow> read_snp_text_file(const std::filesystem::path& path,
                                       std::string& seq_name) {
  std::ifstream in(path);
  GSNP_CHECK_MSG(in.good(), "cannot open " << path);
  std::vector<SnpRow> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    rows.push_back(parse_snp_row(line, seq_name));
  }
  return rows;
}

std::vector<SnpRow> read_snp_compressed_file(
    const std::filesystem::path& path, std::string& seq_name) {
  SnpOutputReader reader(path);
  seq_name = reader.seq_name();
  std::vector<SnpRow> rows, window;
  while (reader.next_window(window))
    rows.insert(rows.end(), window.begin(), window.end());
  return rows;
}

std::vector<SnpRow> read_snp_range(const std::filesystem::path& path, u64 lo,
                                   u64 hi, std::string& seq_name) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open compressed output " << path);
  {
    char magic[sizeof(kOutputMagic)];
    in.read(magic, sizeof(magic));
    GSNP_CHECK_MSG(in.gcount() == sizeof(magic) &&
                       std::memcmp(magic, kOutputMagic, sizeof(magic)) == 0,
                   "bad magic in " << path);
    u64 name_len = 0;
    GSNP_CHECK(stream_varint(in, name_len));
    seq_name.resize(name_len);
    in.read(seq_name.data(), static_cast<std::streamsize>(name_len));
    GSNP_CHECK(in.gcount() == static_cast<std::streamsize>(name_len));
  }

  std::vector<SnpRow> result;
  u64 frame_size = 0;
  while (stream_varint(in, frame_size)) {
    GSNP_CHECK_MSG(frame_size <= (1ULL << 32), "implausible frame size");
    // Peek the frame header: varint row count, varint start position.
    // Two varints are at most 20 bytes.
    const std::size_t peek_len =
        static_cast<std::size_t>(std::min<u64>(frame_size, 20));
    std::vector<u8> head(peek_len);
    in.read(reinterpret_cast<char*>(head.data()),
            static_cast<std::streamsize>(peek_len));
    GSNP_CHECK_MSG(in.gcount() == static_cast<std::streamsize>(peek_len),
                   "truncated frame");
    std::size_t pos = 0;
    const u64 n = varint_read(head, pos);
    const u64 start = n == 0 ? 0 : varint_read(head, pos);

    const bool overlaps = n > 0 && start < hi && start + n > lo;
    if (!overlaps) {
      // Skip the rest of the payload plus its trailing CRC without
      // reading (the CRC is only verified on frames we decompress).
      in.seekg(static_cast<std::streamoff>(frame_size - peek_len + 4),
               std::ios::cur);
      continue;
    }
    // Read the remainder and decompress just this window.
    std::vector<u8> frame(frame_size);
    std::copy(head.begin(), head.end(), frame.begin());
    in.read(reinterpret_cast<char*>(frame.data() + peek_len),
            static_cast<std::streamsize>(frame_size - peek_len));
    GSNP_CHECK_MSG(in.gcount() ==
                       static_cast<std::streamsize>(frame_size - peek_len),
                   "truncated frame");
    u32 stored_crc = 0;
    GSNP_CHECK_MSG(stream_crc32(in, stored_crc), "truncated frame CRC");
    GSNP_CHECK_MSG(crc32(frame.data(), frame.size()) == stored_crc,
                   "SNP output frame CRC mismatch (corrupt file)");
    for (SnpRow& row : decompress_snp_window(frame)) {
      if (row.pos >= lo && row.pos < hi) result.push_back(std::move(row));
    }
  }
  return result;
}

}  // namespace gsnp::core
