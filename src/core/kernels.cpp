#include "src/core/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "src/common/error.hpp"
#include "src/core/adjust.hpp"
#include "src/core/log_table.hpp"

namespace gsnp::core {

using device::Access;
using device::BlockContext;
using device::Device;
using device::DeviceBuffer;
using device::ThreadContext;

DeviceScoreTables::DeviceScoreTables(Device& dev, const PMatrix& pm,
                                     const NewPMatrix& npm)
    : p_matrix_(dev.to_device(std::span<const double>(pm.flat()))),
      new_p_(dev.to_device(std::span<const double>(npm.flat()))),
      logs_(dev.to_constant(
          std::span<const double>(::gsnp::core::log_table()))) {}

namespace {

/// dep_count entries pack (base-tag, count) so per-base re-initialization
/// (Alg. 4 line 9) costs nothing: a mismatched tag reads as count 0.  The
/// whole buffer is device-filled once per window instead of 512 stores per
/// site per base.  (kDepEntriesPerSite itself is in kernels.hpp so the
/// batcher cost model can charge the identical term.)
constexpr u32 dep_pack(u32 base, u32 count) { return ((base + 1) << 16) | count; }
constexpr u32 dep_count_of(u32 entry, u32 base) {
  return (entry >> 16) == base + 1 ? (entry & 0xFFFF) : 0;
}

/// Integer quality adjustment reading the constant-memory log table —
/// bit-identical to core::adjust_quality (which reads the host table built
/// from the same values).
int device_adjust(ThreadContext& t, const device::ConstantTable<double>& logs,
                  int score, int dep) {
  const int k = std::min(dep, kLogTableSize - 1);
  const int penalty =
      static_cast<int>(10.0 * t.cload(logs, static_cast<u64>(k)) + 0.5);
  t.inst(3);
  const int q = score - penalty;
  return q < 0 ? 0 : (q >= kQualityLevels ? kQualityLevels - 1 : q);
}

}  // namespace

std::vector<TypeLikely> device_likelihood_sparse(
    Device& dev, const BaseWordWindow& win, const DeviceScoreTables& tables,
    const SparseKernelOpts& opts) {
  if (win.window_size() == 0) return {};
  DeviceBuffer<u32> words = dev.to_device(std::span<const u32>(win.words));
  DeviceBuffer<u64> offsets = dev.to_device(std::span<const u64>(win.offsets));
  return device_likelihood_sparse_resident(dev, words, offsets,
                                           win.window_size(), tables, opts);
}

std::vector<TypeLikely> device_likelihood_sparse_resident(
    Device& dev, const DeviceBuffer<u32>& words,
    const DeviceBuffer<u64>& offsets, u32 w, const DeviceScoreTables& tables,
    const SparseKernelOpts& opts) {
  std::vector<TypeLikely> result(w);
  if (w == 0) return result;

  DeviceBuffer<u32> dep =
      dev.alloc<u32>(static_cast<u64>(w) * kDepEntriesPerSite);
  dev.fill(dep, 0u);
  // Output layout is genotype-major (combo * w + site) so the shared-memory
  // variant's final flush is coalesced across the threads of a block.
  DeviceBuffer<double> out =
      dev.alloc<double>(static_cast<u64>(w) * kNumGenotypes);

  const u32 grid =
      (w + kLikelihoodBlockThreads - 1) / kLikelihoodBlockThreads;

  dev.launch("likelihood_comp", grid, kLikelihoodBlockThreads,
             [&](BlockContext& blk) {
    std::span<double> s_tl;
    if (opts.use_shared)
      s_tl = blk.shared_array<double>(kLikelihoodBlockThreads * kNumGenotypes);

    blk.threads([&](ThreadContext& t) {
      const u64 site = t.global_tid();
      t.inst();
      if (site >= w) return;

      // Zero this site's accumulator.
      for (int g = 0; g < kNumGenotypes; ++g) {
        if (opts.use_shared)
          t.sstore<double>(s_tl, t.tid() * kNumGenotypes + g, 0.0);
        else
          t.gstore(out, static_cast<u64>(g) * w + site, 0.0, Access::kRandom);
      }

      const u64 begin = t.gload(offsets, site, Access::kCoalesced);
      const u64 end = t.gload(offsets, site + 1, Access::kCoalesced);

      for (u64 i = begin; i < end; ++i) {
        const u32 word = t.gload(words, i, Access::kRandom);
        const u32 base = word >> 15;
        const int score =
            kQualityLevels - 1 - static_cast<int>((word >> 9) & 63);
        const u32 coord = (word >> 1) & 255;
        const u32 strand = word & 1;
        t.inst(4);

        const u64 dep_idx = site * kDepEntriesPerSite +
                            strand * kMaxReadLen + coord;
        const u32 entry = t.gload(dep, dep_idx, Access::kRandom);
        const u32 cnt = dep_count_of(entry, base) + 1;
        t.gstore(dep, dep_idx, dep_pack(base, cnt), Access::kRandom);
        const int q_adj = device_adjust(t, tables.log_table(), score,
                                        static_cast<int>(cnt));

        if (opts.use_new_table) {
          // Algorithm 3: one read per genotype, no transcendental.
          const u64 row = NewPMatrix::index(q_adj, static_cast<int>(coord),
                                            static_cast<int>(base), 0);
          for (int g = 0; g < kNumGenotypes; ++g) {
            t.inst(device::kUpdateOverhead);  // indexing + FMA accumulate
            const double v = t.gload(tables.new_p_matrix(),
                                     row + static_cast<u64>(g), Access::kRandom);
            if (opts.use_shared) {
              const u64 idx = t.tid() * kNumGenotypes + static_cast<u64>(g);
              t.sstore<double>(s_tl, idx, t.sload<double>(s_tl, idx) + v);
            } else {
              t.gadd(out, static_cast<u64>(g) * w + site, v, Access::kRandom);
            }
          }
        } else {
          // likely_update (Algorithm 2): two p_matrix reads + runtime log10.
          int combo = 0;
          for (int a1 = 0; a1 < kNumBases; ++a1) {
            for (int a2 = a1; a2 < kNumBases; ++a2) {
              t.inst(device::kUpdateOverhead);  // indexing + FMA accumulate
              const double p1 = t.gload(
                  tables.p_matrix(),
                  PMatrix::index(q_adj, static_cast<int>(coord), a1,
                                 static_cast<int>(base)),
                  Access::kRandom);
              const double p2 = t.gload(
                  tables.p_matrix(),
                  PMatrix::index(q_adj, static_cast<int>(coord), a2,
                                 static_cast<int>(base)),
                  Access::kRandom);
              const double v = likely_log10(p1, p2);
              t.inst(device::kTranscendentalCost);
              if (opts.use_shared) {
                const u64 idx =
                    t.tid() * kNumGenotypes + static_cast<u64>(combo);
                t.sstore<double>(s_tl, idx, t.sload<double>(s_tl, idx) + v);
              } else {
                t.gadd(out, static_cast<u64>(combo) * w + site, v,
                       Access::kRandom);
              }
              ++combo;
            }
          }
        }
      }

      // Shared variant: flush to global with coalesced writes (§IV-E) —
      // genotype-major layout makes consecutive threads write consecutive
      // addresses within each genotype plane.
      if (opts.use_shared) {
        for (int g = 0; g < kNumGenotypes; ++g)
          t.gstore(out, static_cast<u64>(g) * w + site,
                   t.sload<double>(s_tl, t.tid() * kNumGenotypes +
                                             static_cast<u64>(g)),
                   Access::kCoalesced);
      }
    });
  });

  const std::vector<double> flat = dev.to_host(out);
  for (u32 s = 0; s < w; ++s)
    for (int g = 0; g < kNumGenotypes; ++g)
      result[s][static_cast<std::size_t>(g)] =
          flat[static_cast<u64>(g) * w + s];
  return result;
}

std::vector<TypeLikely> device_likelihood_dense(
    Device& dev, const BaseWordWindow& win, const DeviceScoreTables& tables) {
  const u32 w = win.window_size();
  std::vector<TypeLikely> result(w);
  if (w == 0) return result;

  DeviceBuffer<u32> words = dev.to_device(std::span<const u32>(win.words));
  DeviceBuffer<u64> offsets = dev.to_device(std::span<const u64>(win.offsets));
  DeviceBuffer<double> out =
      dev.alloc<double>(static_cast<u64>(w) * kNumGenotypes);

  // Chunk the dense matrices to respect the 3 GB device budget.
  const u32 chunk_sites = std::min<u32>(w, 4096);

  for (u32 chunk_start = 0; chunk_start < w; chunk_start += chunk_sites) {
    const u32 n_sites = std::min<u32>(chunk_sites, w - chunk_start);
    DeviceBuffer<u8> dense =
        dev.alloc<u8>(static_cast<u64>(n_sites) * kBaseOccPerSite);
    dev.fill(dense, u8{0});  // per-chunk recycle of the dense matrices

    // Counting kernel: one block per site scatters its words into base_occ.
    dev.launch("base_occ_count", n_sites, 256, [&](BlockContext& blk) {
      const u32 site = chunk_start + blk.block_idx();
      blk.threads([&](ThreadContext& t) {
        const u64 begin = t.gload(offsets, site, Access::kCoalesced);
        const u64 end = t.gload(offsets, site + 1, Access::kCoalesced);
        for (u64 i = begin + t.tid(); i < end; i += blk.block_dim()) {
          const u32 word = t.gload(words, i, Access::kCoalesced);
          // The dense index uses the raw score; base_word stores 63-score.
          const u32 base = word >> 15;
          const u32 score = 63 - ((word >> 9) & 63);
          const u32 cell = (base << 15) | (score << 9) | (word & 0x1FF);
          t.inst(3);
          t.gadd(dense,
                 static_cast<u64>(blk.block_idx()) * kBaseOccPerSite + cell,
                 u8{1}, Access::kRandom);
        }
      });
    });

    // Likelihood kernel: one block per site streams the full 131,072-cell
    // matrix with coalesced reads (Algorithm 1's canonical order), paying
    // likely_update's cost on each occurrence.
    dev.launch("likelihood_comp_dense", n_sites, 1, [&](BlockContext& blk) {
      const u32 site = chunk_start + blk.block_idx();
      blk.single_thread([&](ThreadContext& t) {
        // The block's threads cooperatively stream the matrix; the simulator
        // models the whole block's traffic through one bulk read per base
        // plane (identical counter effect, far cheaper to simulate).
        TypeLikely tl{};
        std::array<u16, kNumStrands * kMaxReadLen> dep{};
        constexpr u64 kPlane = kBaseOccPerSite / kNumBases;
        for (int base = 0; base < kNumBases; ++base) {
          dep.fill(0);
          const auto plane = t.gload_bulk(
              dense,
              static_cast<u64>(blk.block_idx()) * kBaseOccPerSite +
                  (static_cast<u64>(base) << 15),
              kPlane, Access::kCoalesced);
          // Canonical order within the plane: score descending.
          for (int score = kQualityLevels - 1; score >= 0; --score) {
            const u64 row = static_cast<u64>(score) << 9;
            for (u64 cs = 0; cs < (1u << 9); ++cs) {
              const u8 occ = plane[row + cs];
              if (occ == 0) continue;
              const u32 coord = static_cast<u32>(cs >> 1);
              const u32 strand = static_cast<u32>(cs & 1);
              for (u8 k = 0; k < occ; ++k) {
                const int dcnt =
                    ++dep[static_cast<std::size_t>(strand * kMaxReadLen + coord)];
                const int q_adj =
                    device_adjust(t, tables.log_table(), score, dcnt);
                int combo = 0;
                for (int a1 = 0; a1 < kNumBases; ++a1) {
                  for (int a2 = a1; a2 < kNumBases; ++a2) {
                    t.inst(device::kUpdateOverhead);
                    const double p1 =
                        t.gload(tables.p_matrix(),
                                PMatrix::index(q_adj, static_cast<int>(coord),
                                               a1, base),
                                Access::kRandom);
                    const double p2 =
                        t.gload(tables.p_matrix(),
                                PMatrix::index(q_adj, static_cast<int>(coord),
                                               a2, base),
                                Access::kRandom);
                    tl[static_cast<std::size_t>(combo)] +=
                        likely_log10(p1, p2);
                    t.inst(device::kTranscendentalCost);
                    ++combo;
                  }
                }
              }
            }
          }
        }
        for (int g = 0; g < kNumGenotypes; ++g)
          t.gstore(out, static_cast<u64>(g) * w + site,
                   tl[static_cast<std::size_t>(g)], Access::kRandom);
      });
    });
  }

  const std::vector<double> flat = dev.to_host(out);
  for (u32 s = 0; s < w; ++s)
    for (int g = 0; g < kNumGenotypes; ++g)
      result[s][static_cast<std::size_t>(g)] =
          flat[static_cast<u64>(g) * w + s];
  return result;
}

std::vector<PosteriorCall> device_posterior(
    Device& dev, std::span<const TypeLikely> type_likely,
    std::span<const GenotypePriors> log_priors) {
  GSNP_CHECK(type_likely.size() == log_priors.size());
  const u64 w = type_likely.size();
  std::vector<PosteriorCall> calls(w);
  if (w == 0) return calls;

  // Flatten site-major (each site's ten values contiguous) and upload.
  std::vector<double> tl_flat(w * kNumGenotypes), prior_flat(w * kNumGenotypes);
  for (u64 s = 0; s < w; ++s) {
    for (int g = 0; g < kNumGenotypes; ++g) {
      tl_flat[s * kNumGenotypes + g] = type_likely[s][g];
      prior_flat[s * kNumGenotypes + g] = log_priors[s][g];
    }
  }
  DeviceBuffer<double> tl = dev.to_device(std::span<const double>(tl_flat));
  DeviceBuffer<double> prior =
      dev.to_device(std::span<const double>(prior_flat));
  // Packed result: best << 24 | second << 16 | quality.
  DeviceBuffer<u32> out = dev.alloc<u32>(w);

  constexpr u32 kBlock = 256;
  const u32 grid = static_cast<u32>((w + kBlock - 1) / kBlock);
  dev.launch("posterior_select", grid, kBlock, [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) {
      const u64 site = t.global_tid();
      t.inst();
      if (site >= w) return;
      // Identical math to select_genotype (§IV-G consistency applies to the
      // posterior too).
      int best_g = 0, second_g = 0;
      double best_lp = -1e300, second_lp = -1e300;
      for (int g = 0; g < kNumGenotypes; ++g) {
        const u64 idx = site * kNumGenotypes + static_cast<u64>(g);
        const double lp = t.gload(prior, idx, Access::kRandom) +
                          t.gload(tl, idx, Access::kRandom);
        t.inst(3);
        if (lp > best_lp) {
          second_lp = best_lp;
          second_g = best_g;
          best_lp = lp;
          best_g = g;
        } else if (lp > second_lp) {
          second_lp = lp;
          second_g = g;
        }
      }
      const double gap = 10.0 * (best_lp - second_lp);
      const long q = std::lround(gap);
      const u32 quality = static_cast<u32>(q < 0 ? 0 : (q > 99 ? 99 : q));
      t.inst(4);
      t.gstore(out,
               site,
               (static_cast<u32>(best_g) << 24) |
                   (static_cast<u32>(second_g) << 16) | quality,
               Access::kCoalesced);
    });
  });

  const std::vector<u32> packed = dev.to_host(out);
  for (u64 s = 0; s < w; ++s) {
    calls[s].best = static_cast<i8>(packed[s] >> 24);
    calls[s].second = static_cast<i8>((packed[s] >> 16) & 0xFF);
    calls[s].quality = static_cast<u16>(packed[s] & 0xFFFF);
  }
  return calls;
}

}  // namespace gsnp::core
