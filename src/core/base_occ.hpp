#pragma once
// The dense aligned-base matrix base_occ (paper §IV-A/B, SOAPsnp's layout).
//
// Per site: 4 x 64 x 256 x 2 one-byte occurrence counters indexed
//   base << 15 | score << 9 | coord << 1 | strand                (Alg. 1 l.7)
// 131,072 bytes per site.  A window of W sites holds W consecutive matrices
// in one flat allocation; `recycle` is a memset of the whole thing — the
// paper's second most expensive component, and the memory-bandwidth cost the
// sparse representation removes.

#include <cstring>
#include <span>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/types.hpp"

namespace gsnp::core {

/// Elements in one site's dense matrix: 4 * 64 * 256 * 2 = 131,072.
inline constexpr u64 kBaseOccPerSite =
    static_cast<u64>(kNumBases) * kQualityLevels * kMaxReadLen * kNumStrands;

/// Flat index within one site's matrix.
constexpr u64 base_occ_index(int base, int score, int coord, int strand) {
  return (static_cast<u64>(base) << 15) | (static_cast<u64>(score) << 9) |
         (static_cast<u64>(coord) << 1) | static_cast<u64>(strand);
}

/// Dense per-window storage: `window_size` consecutive per-site matrices.
class BaseOccWindow {
 public:
  explicit BaseOccWindow(u32 window_size)
      : window_size_(window_size),
        counts_(static_cast<std::size_t>(window_size) * kBaseOccPerSite, 0) {}

  u32 window_size() const { return window_size_; }
  u64 bytes() const { return counts_.size(); }

  /// The 131,072-entry matrix of one site.
  std::span<u8> site(u32 s) {
    return std::span<u8>(counts_).subspan(
        static_cast<std::size_t>(s) * kBaseOccPerSite, kBaseOccPerSite);
  }
  std::span<const u8> site(u32 s) const {
    return std::span<const u8>(counts_).subspan(
        static_cast<std::size_t>(s) * kBaseOccPerSite, kBaseOccPerSite);
  }

  /// Count one aligned base (saturating at 255, as a 1-byte counter must).
  void add(u32 s, const AlignedBase& ab) {
    u8& cell = counts_[static_cast<std::size_t>(s) * kBaseOccPerSite +
                       base_occ_index(ab.base, ab.quality, ab.coord,
                                      static_cast<int>(ab.strand))];
    if (cell != 0xFF) ++cell;
  }

  /// The recycle component: re-zero the entire window (the full memset the
  /// paper measures; deliberately not lazy).
  void recycle() { std::memset(counts_.data(), 0, counts_.size()); }

  const std::vector<u8>& flat() const { return counts_; }

 private:
  u32 window_size_;
  std::vector<u8> counts_;
};

}  // namespace gsnp::core
