#pragma once
// Likelihood calculation — CPU reference implementations.
//
//  * likelihood_dense_site   — Algorithm 1: SOAPsnp's canonical traversal of
//    the dense base_occ matrix, calling likely_update (Algorithm 2) with two
//    p_matrix reads and a runtime log10 per aligned base per genotype.
//  * likelihood_sparse_site  — Algorithm 4's computation step on a *sorted*
//    base_word array, using the precomputed new_p_matrix (Algorithm 3) and
//    the shared adjust/log_table machinery.
//
// Both produce the ten log10-likelihood values (type_likely) in canonical
// genotype order and are bit-identical for the same site data — the paper's
// §IV-G consistency property, which integration tests assert.
//
// The device kernels (kernels.hpp) mirror likelihood_sparse_site.

#include <array>
#include <cstddef>
#include <span>

#include "src/common/error.hpp"
#include "src/common/types.hpp"
#include "src/core/base_occ.hpp"
#include "src/core/base_word.hpp"
#include "src/core/new_pmatrix.hpp"
#include "src/core/pmatrix.hpp"

namespace gsnp::core {

using TypeLikely = std::array<double, kNumGenotypes>;

/// Thrown when the base_word array handed to likelihood_sparse_site is not
/// sorted ascending.  The sparse traversal's depth-count recycle (Algorithm 4
/// lines 8-10) is only correct on the canonical sort order; an out-of-order
/// word would silently reuse stale depth counts and corrupt the likelihoods,
/// so it is a broken invariant, not a recoverable condition.  Debug builds
/// assert first; release builds throw this typed error.
class UnsortedWindowError : public Error {
 public:
  UnsortedWindowError(std::size_t index, u32 previous, u32 word);
};

namespace detail {
/// Shared validation helper for the scalar and SIMD sparse kernels: asserts
/// in debug builds, then throws UnsortedWindowError.
[[noreturn]] void throw_unsorted_window(std::size_t index, u32 previous,
                                        u32 word);
}  // namespace detail

/// Algorithm 1 over one site's dense matrix (131,072 entries).
TypeLikely likelihood_dense_site(std::span<const u8> base_occ,
                                 const PMatrix& pm);

/// Algorithm 4's computation step over one site's *sorted* base_word array.
/// Validates sortedness (see UnsortedWindowError).
TypeLikely likelihood_sparse_site(std::span<const u32> sorted_words,
                                  const NewPMatrix& npm);

/// The likelihood_sort step of Algorithm 4 on the CPU (per-array quicksort);
/// the device equivalent is sortnet::sort_device_multipass.
void likelihood_sort_cpu(BaseWordWindow& window);

}  // namespace gsnp::core
