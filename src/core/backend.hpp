#pragma once
// First-class engine/backend registry.
//
// The daemon, the CLI and the benches used to hard-code an EngineKind switch
// each; this header makes the engines self-describing instead.  Every
// backend registers a canonical name, the stable identifier used in output
// filenames / manifests, capability flags, and a common run entry
// (run_backend), so callers select backends by name and interrogate the
// flags instead of switching on the enum.
//
// Naming: `name` is the user-facing registry name with hyphens ("gsnp-cpu",
// as the CLI always spelled it); `id` is the underscore identifier engines
// have always written into output filenames (<chr>.<id>.{txt,snp}) and
// manifests ("gsnp_cpu").  find_backend accepts either, so old job specs
// and manifests keep working; engine_name/engine_kind_from_name remain the
// strict id mapping used by manifest round-trips.
//
// Every backend is held to the same bit-exactness contract (§IV-G): for the
// same inputs all backends produce byte-identical output streams — the
// determinism battery's backend matrix enforces it, including gsnp-simd at
// every dispatch level.

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "src/common/error.hpp"
#include "src/core/engine.hpp"

namespace gsnp::core {

enum class EngineKind { kSoapsnp, kGsnpCpu, kGsnp, kGsnpSimd };

/// Stable identifier ("soapsnp", "gsnp_cpu", "gsnp", "gsnp_simd") used in
/// output filenames and manifests.
const char* engine_name(EngineKind kind);
/// Inverse of engine_name; nullopt for unknown names (corrupt manifests).
/// Accepts the hyphenated registry spelling too.
std::optional<EngineKind> engine_kind_from_name(std::string_view name);

/// One registered backend: identity, capabilities, description.
struct BackendInfo {
  EngineKind kind;
  const char* name;         ///< canonical registry name ("gsnp-cpu")
  const char* id;           ///< filename/manifest identifier ("gsnp_cpu")
  const char* description;  ///< one-line summary for --help / errors
  bool needs_device;        ///< run_backend requires a device::Device
  bool sparse;              ///< base_word sparse path (vs dense base_occ)
  bool text_output;         ///< SOAPsnp text rows (vs GSNPOUT2 binary)
  bool simd;                ///< host SIMD dispatch (AVX2 -> SSE2 -> scalar)
};

/// All registered backends, in registration order.
std::span<const BackendInfo> backend_registry();

/// Look up by canonical name or id; nullptr when unknown.
const BackendInfo* find_backend(std::string_view name);

/// Registry entry for an enum value (always exists).
const BackendInfo& backend_info(EngineKind kind);

/// "soapsnp, gsnp-cpu, gsnp, gsnp-simd" — for error messages and usage text.
std::string backend_name_list();

/// Thrown by require_backend for names the registry does not know; the
/// message lists every valid name.  The daemon maps it to the protocol's
/// invalid_argument error code, the CLI prints it and exits non-zero.
class UnknownBackendError : public Error {
 public:
  explicit UnknownBackendError(std::string_view name);
};

/// find_backend or throw UnknownBackendError.
const BackendInfo& require_backend(std::string_view name);

/// The common run entry: dispatch one chromosome run to `backend`.  `dev` is
/// required iff backend.needs_device (checked); `model` is only read by
/// device-backed engines.
RunReport run_backend(const BackendInfo& backend, const EngineConfig& config,
                      device::Device* dev = nullptr,
                      const device::PerfModel& model = {});

}  // namespace gsnp::core
