#include "src/core/new_pmatrix.hpp"

#include <cmath>

namespace gsnp::core {

NewPMatrix::NewPMatrix(const PMatrix& pm) : values_(kSize, 0.0) {
  for (int q = 0; q < kQualityLevels; ++q) {
    for (int coord = 0; coord < kMaxReadLen; ++coord) {
      for (int obs = 0; obs < kNumBases; ++obs) {
        int combo = 0;
        for (int a1 = 0; a1 < kNumBases; ++a1) {
          for (int a2 = a1; a2 < kNumBases; ++a2) {
            // Exactly likely_update's expression (Algorithm 2, zero guard
            // included), evaluated once here instead of per aligned base at
            // runtime.
            values_[index(q, coord, obs, combo)] = likely_log10(
                pm.at(q, coord, a1, obs), pm.at(q, coord, a2, obs));
            ++combo;
          }
        }
      }
    }
  }
}

}  // namespace gsnp::core
