#pragma once
// Vectorized host kernels for the gsnp-simd backend (ROADMAP item 2).
//
// The hot loops of the host GSNP engine are lane-parallel over the ten
// genotypes: the sparse likelihood accumulates one contiguous NewPMatrix row
// per aligned base (ten adds), the dense path evaluates ten allele-pair
// probabilities per occurrence, and the posterior sums ten priors with ten
// likelihoods before the selection scan.  Each kernel here vectorizes those
// lanes while keeping *per-lane* operation order identical to the scalar
// reference — so the results are bit-identical to gsnp-cpu, extending the
// paper's §IV-G consistency property to every dispatch level (enforced by
// tests/test_likelihood.cpp and the determinism battery's backend matrix).
//
// Bit-exactness rules the kernels obey:
//   * Lane g of a vector accumulator sees exactly the scalar code's addition
//     sequence for genotype g (vector adds are per-lane independent).
//   * The likely_update expression keeps the scalar shape
//     0.5*p1 + 0.5*p2 (mul, mul, add — never fused, never reassociated) and
//     the shared likely_log10 clamp; log10 itself stays scalar libm.
//   * All scalar bookkeeping (base_word unpack, depth counts, quality
//     adjustment, sortedness validation) is the shared scalar code.
//
// Dispatch: one binary carries scalar + SSE2 + AVX2 (x86-64) or scalar +
// NEON (aarch64) kernels; detect_level() picks the best the CPU supports at
// runtime, overridable by GSNP_FORCE_SCALAR=1 / GSNP_SIMD_LEVEL=<name> for
// CI and by force_level() for tests.

#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "src/common/types.hpp"
#include "src/core/likelihood.hpp"
#include "src/core/posterior.hpp"

namespace gsnp::core::simd {

/// Instruction-set tiers the dispatcher knows about, worst to best.
enum class Level { kScalar, kSse2, kAvx2, kNeon };

const char* level_name(Level level);
std::optional<Level> level_from_name(std::string_view name);

/// Can this binary execute `level` kernels on this CPU?
bool level_supported(Level level);
/// All supported levels, worst to best (always contains kScalar).
std::vector<Level> supported_levels();

/// The level the environment asks for: GSNP_FORCE_SCALAR=1 wins, then
/// GSNP_SIMD_LEVEL=<name> (throws gsnp::Error for an unknown name or a level
/// this host cannot execute), then the best supported level.
Level detect_level();

/// detect_level(), unless a test pinned a level via force_level().
Level active_level();

/// Test seam: pin dispatch to `level` (throws if unsupported); nullopt
/// restores environment-driven detection.
void force_level(std::optional<Level> level);

using SparseSiteFn = TypeLikely (*)(std::span<const u32>, const NewPMatrix&);
using DenseSiteFn = TypeLikely (*)(std::span<const u8>, const PMatrix&);
using SelectFn = PosteriorCall (*)(const GenotypePriors&, const TypeLikely&);

/// One dispatch level's kernel set.  kScalar's entries are the reference
/// implementations themselves (likelihood.cpp / posterior.cpp), so forcing
/// scalar *is* gsnp-cpu, not a copy of it.  Levels without a vectorized
/// dense kernel fall back to the scalar one (the gsnp-simd engine itself is
/// sparse; dense vectorization only serves the SOAPsnp-path parity tests).
struct Kernels {
  Level level;
  SparseSiteFn sparse_site;
  DenseSiteFn dense_site;
  SelectFn select_genotype;
};

/// Kernel set for `level` (throws gsnp::Error if unsupported on this host).
const Kernels& kernels(Level level);
/// kernels(active_level()).
const Kernels& active_kernels();

/// Convenience entry points for tests: dispatch one call at `level`.
TypeLikely likelihood_sparse_site(std::span<const u32> sorted_words,
                                  const NewPMatrix& npm, Level level);
TypeLikely likelihood_dense_site(std::span<const u8> base_occ,
                                 const PMatrix& pm, Level level);
PosteriorCall select_genotype(const GenotypePriors& log_prior,
                              const TypeLikely& type_likely, Level level);

}  // namespace gsnp::core::simd
