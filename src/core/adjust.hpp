#pragma once
// Quality adjustment for dependent observations (Algorithm 1 line 10 /
// Algorithm 4 line 12).
//
// Multiple aligned bases landing on the same (strand, read-coordinate) cell
// of a site are likely PCR duplicates rather than independent evidence, so
// their qualities are decayed: the k-th repeat is penalized by
// round(10 * log10(k)).  The logarithm is served from log_table so the dense
// CPU path, the sparse CPU path and the device kernel produce identical
// integers (paper §IV-G).

#include <algorithm>

#include "src/common/types.hpp"
#include "src/core/log_table.hpp"

namespace gsnp::core {

/// Adjusted quality for an observation with raw Phred `score` that is the
/// `dep_count`-th hit on its (strand, coord) cell (dep_count >= 1).
/// `logs` is log_table() (or its device constant-memory copy's host view).
constexpr int adjust_quality(int score, int dep_count, const double* logs) {
  const int k = std::min(dep_count, kLogTableSize - 1);
  const int penalty =
      static_cast<int>(10.0 * logs[static_cast<std::size_t>(k)] + 0.5);
  const int q = score - penalty;
  return q < 0 ? 0 : (q >= kQualityLevels ? kQualityLevels - 1 : q);
}

}  // namespace gsnp::core
