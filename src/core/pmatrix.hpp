#pragma once
// The global score matrix p_matrix and its calculation (workflow component
// cal_p_matrix).
//
// p_matrix[q][coord][allele][obs] is the calibrated probability of observing
// base `obs` at read coordinate `coord` with adjusted quality `q`, given the
// true allele is `allele`.  SOAPsnp builds it from a full counting pass over
// the alignment data blended with the Phred error model: the observed counts
// recalibrate the nominal quality per sequencing cycle.  GSNP keeps the exact
// computation but additionally compresses the input stream it reads into the
// temporary file read_site consumes (paper §V-A).
//
// Flat layout matches Algorithm 2's index arithmetic:
//   index = q << 12 | coord << 4 | allele << 2 | obs
// i.e. [kQualityLevels][kMaxReadLen][4][4] doubles (2 MiB; the paper reports
// 8 MB because it sizes the quality axis at 256 levels — see DESIGN.md).

#include <filesystem>
#include <vector>

#include "src/common/types.hpp"

namespace gsnp::core {

class PMatrix {
 public:
  static constexpr u64 kSize =
      static_cast<u64>(kQualityLevels) << 12;  // q<<12 spans the table

  PMatrix() : values_(kSize, 0.0) {}

  static constexpr u64 index(int q, int coord, int allele, int obs) {
    return (static_cast<u64>(q) << 12) | (static_cast<u64>(coord) << 4) |
           (static_cast<u64>(allele) << 2) | static_cast<u64>(obs);
  }

  double at(int q, int coord, int allele, int obs) const {
    return values_[index(q, coord, allele, obs)];
  }
  double& at(int q, int coord, int allele, int obs) {
    return values_[index(q, coord, allele, obs)];
  }

  double operator[](u64 flat) const { return values_[flat]; }
  const std::vector<double>& flat() const { return values_; }

 private:
  std::vector<double> values_;
};

/// Accumulates the counting pass of cal_p_matrix: one count per uniquely
/// aligned base, keyed by (quality, coord, reference base, observed base).
class PMatrixCounter {
 public:
  PMatrixCounter() : counts_(PMatrix::kSize, 0) {}

  void add(int q, int coord, int ref_base, int obs_base) {
    ++counts_[PMatrix::index(q, coord, ref_base, obs_base)];
  }

  const std::vector<u64>& counts() const { return counts_; }

 private:
  std::vector<u64> counts_;
};

/// Finalize p_matrix from the counting pass: observed frequencies blended
/// with the Phred error model through `pseudocount` virtual observations.
/// Cells with no data fall back to the pure error model; cells with deep data
/// are dominated by the measured miscall rates.
PMatrix finalize_p_matrix(const PMatrixCounter& counter,
                          double pseudocount = 32.0);

/// Serialize/load a finalized p_matrix (SOAPsnp's matrix dump feature: the
/// expensive calibration pass can be reused across runs over the same
/// library).  Binary format, bit-exact round trip — reloading preserves the
/// §IV-G consistency guarantee.
void write_p_matrix(const std::filesystem::path& path, const PMatrix& pm);
PMatrix read_p_matrix(const std::filesystem::path& path);

}  // namespace gsnp::core
