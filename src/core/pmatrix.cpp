#include "src/core/pmatrix.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>

#include "src/common/error.hpp"
#include "src/common/phred.hpp"

namespace gsnp::core {

PMatrix finalize_p_matrix(const PMatrixCounter& counter, double pseudocount) {
  GSNP_CHECK(pseudocount > 0.0);
  PMatrix pm;
  const auto& counts = counter.counts();
  for (int q = 0; q < kQualityLevels; ++q) {
    // Quality 0 means "no information": cap the error probability at 3/4 so
    // the call is uniformly random rather than certainly wrong — otherwise
    // P(obs == allele) would be exactly 0 and the log-likelihood -inf.
    const double p_err = std::min(phred_to_error(q), 0.75);
    for (int coord = 0; coord < kMaxReadLen; ++coord) {
      for (int allele = 0; allele < kNumBases; ++allele) {
        // Total observations for this (q, coord, allele) row.
        double total = 0.0;
        for (int obs = 0; obs < kNumBases; ++obs)
          total += static_cast<double>(
              counts[PMatrix::index(q, coord, allele, obs)]);
        for (int obs = 0; obs < kNumBases; ++obs) {
          const double observed = static_cast<double>(
              counts[PMatrix::index(q, coord, allele, obs)]);
          // Phred-model expectation for this cell.
          const double model = (obs == allele) ? (1.0 - p_err) : (p_err / 3.0);
          pm.at(q, coord, allele, obs) =
              (observed + pseudocount * model) / (total + pseudocount);
        }
      }
    }
  }
  return pm;
}

namespace {
constexpr char kPMatrixMagic[8] = {'G', 'S', 'N', 'P', 'M', 'T', 'X', '1'};
}  // namespace

void write_p_matrix(const std::filesystem::path& path, const PMatrix& pm) {
  std::ofstream out(path, std::ios::binary);
  GSNP_CHECK_MSG(out.good(), "cannot open p_matrix file for write " << path);
  out.write(kPMatrixMagic, sizeof(kPMatrixMagic));
  const u64 n = pm.flat().size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(pm.flat().data()),
            static_cast<std::streamsize>(n * sizeof(double)));
  GSNP_CHECK_MSG(out.good(), "p_matrix write failed");
}

PMatrix read_p_matrix(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open p_matrix file " << path);
  char magic[sizeof(kPMatrixMagic)];
  in.read(magic, sizeof(magic));
  GSNP_CHECK_MSG(in.gcount() == sizeof(magic) &&
                     std::memcmp(magic, kPMatrixMagic, sizeof(magic)) == 0,
                 "bad p_matrix magic in " << path);
  u64 n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  GSNP_CHECK_MSG(n == PMatrix::kSize,
                 "p_matrix size mismatch: " << n << " vs " << PMatrix::kSize);
  PMatrix pm;
  std::vector<double> values(n);
  in.read(reinterpret_cast<char*>(values.data()),
          static_cast<std::streamsize>(n * sizeof(double)));
  GSNP_CHECK_MSG(in.gcount() ==
                     static_cast<std::streamsize>(n * sizeof(double)),
                 "truncated p_matrix file");
  for (int q = 0; q < kQualityLevels; ++q)
    for (int c = 0; c < kMaxReadLen; ++c)
      for (int a = 0; a < kNumBases; ++a)
        for (int o = 0; o < kNumBases; ++o)
          pm.at(q, c, a, o) = values[PMatrix::index(q, c, a, o)];
  return pm;
}

}  // namespace gsnp::core
