#pragma once
// Genotype priors for the Bayesian posterior (SOAPsnp's model).
//
// For a site with reference base r the prior mass is dominated by the
// homozygous-reference genotype; heterozygotes carrying r get the novel-SNP
// rate (split across alternates with a transition/transversion bias),
// homozygous alternates a smaller rate, and double-non-reference
// heterozygotes a second-order rate.  Sites present in the dbSNP prior file
// blend this novel model with Hardy-Weinberg expectations from the recorded
// population allele frequencies, weighted by whether the entry is validated.

#include <array>

#include "src/common/types.hpp"
#include "src/genome/dbsnp.hpp"

namespace gsnp::core {

struct PriorParams {
  double novel_het_rate = 1e-3;   ///< P(heterozygous SNP) at an unlisted site
  double novel_hom_rate = 1e-4;   ///< P(homozygous alternate) at an unlisted site
  double ti_weight = 2.0;         ///< transition weight (transversion = 1)
  double validated_weight = 0.9;  ///< HWE blend weight for validated entries
  double unvalidated_weight = 0.5;
  double freq_floor = 1e-4;       ///< floor for population allele frequencies
};

using GenotypePriors = std::array<double, kNumGenotypes>;

/// log10 prior for the ten genotypes in canonical order.  `known` may be
/// nullptr (novel site).  A reference base of kInvalidBase ('N') yields a
/// flat prior.
GenotypePriors genotype_log_priors(u8 ref_base,
                                   const genome::KnownSnpEntry* known,
                                   const PriorParams& params);

}  // namespace gsnp::core
