#include "src/reads/simulator.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/phred.hpp"

namespace gsnp::reads {

namespace {

/// Apply a sequencing error: substitute a uniformly random different base.
u8 misread(u8 true_base, Rng& rng) {
  const u8 shift = static_cast<u8>(1 + rng.uniform(3));
  return static_cast<u8>((true_base + shift) & 3);
}

}  // namespace

std::vector<AlignmentRecord> simulate_reads(const genome::Diploid& individual,
                                            const ReadSimSpec& spec) {
  const genome::Reference& ref = individual.reference();
  GSNP_CHECK_MSG(ref.size() >= spec.read_len,
                 "reference shorter than read length");
  GSNP_CHECK(spec.read_len > 0 && spec.read_len <= kMaxReadLen);

  Rng rng(spec.seed);
  const QualityModel qmodel(spec.quality);

  const u64 n_reads = static_cast<u64>(
      spec.depth * static_cast<double>(ref.size()) / spec.read_len);
  const u64 max_start = ref.size() - spec.read_len;

  // Unmappable-region mask at block granularity: reads never start inside an
  // unmappable block (rejection sampling, bounded attempts).
  std::vector<bool> mappable;
  if (spec.mappable_fraction < 1.0) {
    GSNP_CHECK(spec.mappable_fraction > 0.0 && spec.mappable_block > 0);
    const u64 n_blocks = ref.size() / spec.mappable_block + 1;
    mappable.resize(n_blocks);
    for (u64 b = 0; b < n_blocks; ++b)
      mappable[b] = rng.bernoulli(spec.mappable_fraction);
  }
  const auto is_mappable = [&](u64 start) {
    return mappable.empty() || mappable[start / spec.mappable_block];
  };

  // Plan all reads first (positions, strands, haplotypes, pairing), sort by
  // position, then synthesize — records come out position-ordered like a
  // real aligner output prepared for SOAPsnp.
  struct ReadPlan {
    u64 start;
    Strand strand;
    int hap;
    char tag;
    u64 fragment;
  };
  std::vector<ReadPlan> plans;
  plans.reserve(n_reads);

  const auto sample_start = [&](u64 bound) {
    u64 s = rng.uniform(bound + 1);
    for (int attempt = 0; attempt < 64 && !is_mappable(s); ++attempt)
      s = rng.uniform(bound + 1);
    return s;
  };

  if (!spec.paired_end) {
    for (u64 i = 0; i < n_reads; ++i) {
      const Strand strand =
          rng.bernoulli(0.5) ? Strand::kForward : Strand::kReverse;
      const int hap = rng.bernoulli(0.5) ? 1 : 0;
      const char tag = rng.bernoulli(0.5) ? 'a' : 'b';
      plans.push_back({sample_start(max_start), strand, hap, tag, i});
    }
  } else {
    // Both mates come from the same DNA fragment: same haplotype, read 2
    // reverse-oriented ~insert_size downstream.
    GSNP_CHECK(spec.insert_size >= spec.read_len);
    const u64 n_frags = n_reads / 2;
    for (u64 f = 0; f < n_frags; ++f) {
      const u32 jitter = spec.insert_spread
                             ? static_cast<u32>(
                                   rng.uniform(2 * spec.insert_spread + 1))
                             : 0;
      u64 insert = spec.insert_size + jitter;
      insert = std::max<u64>(insert > spec.insert_spread
                                 ? insert - spec.insert_spread
                                 : spec.read_len,
                             spec.read_len);
      if (insert >= ref.size()) insert = spec.read_len;
      const u64 frag_start = sample_start(ref.size() - insert);
      const int hap = rng.bernoulli(0.5) ? 1 : 0;
      plans.push_back({frag_start, Strand::kForward, hap, 'a', f});
      plans.push_back(
          {frag_start + insert - spec.read_len, Strand::kReverse, hap, 'b', f});
    }
  }
  // Hotspot pileups: extra single-end reads over each island, enough that the
  // island's realized depth approaches depth_multiplier * baseline.  Starts
  // are uniform across the island (not the whole genome) and skip the
  // mappability rejection loop deliberately — see ReadSimSpec::hotspots.
  u64 next_fragment = spec.paired_end ? n_reads / 2 : n_reads;
  for (const genome::HotspotIsland& island : spec.hotspots) {
    GSNP_CHECK_MSG(island.length > 0 &&
                       island.start + island.length <= ref.size(),
                   "hotspot island [" << island.start << ", +" << island.length
                                      << ") out of bounds");
    GSNP_CHECK_MSG(island.depth_multiplier >= 1.0,
                   "hotspot multiplier " << island.depth_multiplier << " < 1");
    const u64 n_extra = static_cast<u64>(
        (island.depth_multiplier - 1.0) * spec.depth *
        static_cast<double>(island.length) / spec.read_len);
    GSNP_CHECK_MSG(island.start <= max_start,
                   "hotspot island start " << island.start
                                           << " leaves no room for a read");
    const u64 hi_start =
        std::min<u64>(island.start + island.length - 1, max_start);
    for (u64 i = 0; i < n_extra; ++i) {
      const u64 start = island.start + rng.uniform(hi_start - island.start + 1);
      const Strand strand =
          rng.bernoulli(0.5) ? Strand::kForward : Strand::kReverse;
      const int hap = rng.bernoulli(0.5) ? 1 : 0;
      plans.push_back({start, strand, hap, 'a', next_fragment++});
    }
  }

  std::sort(plans.begin(), plans.end(),
            [](const ReadPlan& a, const ReadPlan& b) {
              if (a.start != b.start) return a.start < b.start;
              if (a.fragment != b.fragment) return a.fragment < b.fragment;
              return a.tag < b.tag;
            });

  std::vector<AlignmentRecord> records;
  records.reserve(plans.size());

  for (u64 i = 0; i < plans.size(); ++i) {
    const ReadPlan& plan = plans[i];
    const u64 start = plan.start;
    const Strand strand = plan.strand;
    const int hap = plan.hap;

    const std::vector<u8> quals = qmodel.sample(spec.read_len, rng);

    // Bases on the forward reference strand covered by this read, with
    // sequencing errors applied per-cycle.
    std::string fwd_bases(spec.read_len, 'N');
    for (u32 j = 0; j < spec.read_len; ++j) {
      const u64 pos = start + j;
      u8 b = individual.haplotype_base(pos, hap);
      if (b >= kNumBases) {
        // 'N' gap in the reference: a real sequencer still emits a base.
        b = static_cast<u8>(rng.uniform(4));
      }
      // The sequencing cycle for this reference offset depends on strand.
      const u32 cycle =
          strand == Strand::kForward ? j : (spec.read_len - 1 - j);
      const double p_err =
          std::min(1.0, phred_to_error(quals[cycle]) * spec.error_scale);
      if (rng.bernoulli(p_err)) b = misread(b, rng);
      fwd_bases[j] = char_from_base(b);
    }

    AlignmentRecord rec;
    {
      std::ostringstream id;
      id << (spec.paired_end ? "frag_" : "read_") << plan.fragment;
      rec.read_id = id.str();
    }
    rec.length = static_cast<u16>(spec.read_len);
    rec.strand = strand;
    rec.chr_name = ref.name();
    rec.pos = start;
    rec.pair_tag = plan.tag;
    rec.hit_count =
        rng.bernoulli(spec.multi_hit_rate)
            ? static_cast<u32>(2 + rng.uniform(4))
            : 1;

    // Store seq/qual on the read's own strand, as aligners report them.
    rec.seq.resize(spec.read_len);
    rec.qual.resize(spec.read_len);
    for (u32 j = 0; j < spec.read_len; ++j) {
      const u8 fwd = base_from_char(fwd_bases[j]);
      if (strand == Strand::kForward) {
        rec.seq[j] = char_from_base(fwd);
        rec.qual[j] = quality_to_char(quals[j]);
      } else {
        // Read cycle c covers reference offset (len-1-c), complemented.
        const u32 c = spec.read_len - 1 - j;
        rec.seq[c] = char_from_base(complement(fwd));
        rec.qual[c] = quality_to_char(quals[c]);
      }
    }
    records.push_back(std::move(rec));
  }
  return records;
}

bool observe_site(const AlignmentRecord& rec, u64 site_pos,
                  SiteObservation& out) {
  if (site_pos < rec.pos || site_pos >= rec.pos + rec.length) return false;
  const u32 offset = static_cast<u32>(site_pos - rec.pos);
  if (rec.strand == Strand::kForward) {
    out.coord = static_cast<u16>(offset);
    const u8 b = base_from_char(rec.seq[offset]);
    if (b >= kNumBases) return false;
    out.base = b;
    out.quality = static_cast<u8>(quality_from_char(rec.qual[offset]));
  } else {
    // Reference offset j was sequenced at cycle (len-1-j); the stored read
    // base is on the read strand, so complement back to the reference strand.
    const u32 cycle = rec.length - 1u - offset;
    out.coord = static_cast<u16>(cycle);
    const u8 b = base_from_char(rec.seq[cycle]);
    if (b >= kNumBases) return false;
    out.base = complement(b);
    out.quality = static_cast<u8>(quality_from_char(rec.qual[cycle]));
  }
  out.strand = rec.strand;
  return true;
}

}  // namespace gsnp::reads
