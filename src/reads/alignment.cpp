#include "src/reads/alignment.hpp"

#include <ostream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/phred.hpp"
#include "src/common/strings.hpp"

namespace gsnp::reads {

namespace {

/// Sequence characters the pipeline accepts: letters (IUPAC codes map to 'N'
/// downstream).  Anything else — digits, punctuation, control bytes — is
/// aligner corruption, not biology.
bool valid_seq_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z');
}

void check_seq_qual(const std::string& seq, const std::string& qual,
                    const ParseContext& ctx) {
  for (const char c : seq)
    if (!valid_seq_char(c))
      ctx.fail("sequence", IngestReason::kBadField,
               "non-base character 0x" + std::to_string(
                   static_cast<unsigned>(static_cast<unsigned char>(c))));
  // Sanger qualities: '!' (0) upward.  Characters above the supported range
  // clamp to kQualityLevels-1 downstream (tolerated; some instruments emit
  // them), but bytes below '!' or beyond printable ASCII are corruption.
  for (const char c : qual)
    if (c < kQualityAsciiOffset || c > '~')
      ctx.fail("quality", IngestReason::kBadField,
               "quality byte 0x" + std::to_string(
                   static_cast<unsigned>(static_cast<unsigned char>(c))) +
                   " outside the Sanger range");
}

}  // namespace

std::string format_alignment(const AlignmentRecord& rec) {
  std::ostringstream os;
  os << rec.read_id << '\t' << rec.seq << '\t' << rec.qual << '\t'
     << rec.hit_count << '\t' << rec.pair_tag << '\t' << rec.length << '\t'
     << (rec.strand == Strand::kForward ? '+' : '-') << '\t' << rec.chr_name
     << '\t' << (rec.pos + 1);
  return os.str();
}

AlignmentRecord parse_alignment(std::string_view line,
                                const ParseContext& ctx) {
  const auto fields = split(trim(line), '\t');
  if (fields.size() < 9)
    ctx.fail("record", IngestReason::kTruncatedRecord,
             "expected 9 tab-separated fields, got " +
                 std::to_string(fields.size()));
  AlignmentRecord rec;
  rec.read_id = std::string(fields[0]);
  rec.seq = std::string(fields[1]);
  rec.qual = std::string(fields[2]);
  rec.hit_count = parse_int_ctx<u32>(fields[3], ctx, "hit count");
  if (fields[4].size() != 1)
    ctx.fail("pair tag", IngestReason::kBadField,
             "'" + std::string(fields[4]) + "'");
  rec.pair_tag = fields[4][0];
  const u32 length = parse_int_ctx<u32>(fields[5], ctx, "read length");
  if (length == 0)
    ctx.fail("read length", IngestReason::kBadField, "zero-length read");
  if (length > ctx.max_read_length)
    ctx.fail("read length", IngestReason::kReadTooLong,
             std::to_string(length) + " exceeds the " +
                 std::to_string(ctx.max_read_length) + "-base limit");
  rec.length = static_cast<u16>(length);
  if (fields[6] != "+" && fields[6] != "-")
    ctx.fail("strand", IngestReason::kBadField,
             "'" + std::string(fields[6]) + "'");
  rec.strand = fields[6] == "+" ? Strand::kForward : Strand::kReverse;
  rec.chr_name = std::string(fields[7]);
  const u64 pos1 = parse_int_ctx<u64>(fields[8], ctx, "position");
  if (pos1 < 1)
    ctx.fail("position", IngestReason::kPositionOutOfRange,
             "positions are 1-based");
  if (pos1 > kMaxIngestPosition)
    ctx.fail("position", IngestReason::kPositionOutOfRange,
             "position " + std::string(fields[8]) + " is absurd");
  rec.pos = pos1 - 1;
  if (ctx.reference_length > 0 &&
      (rec.pos >= ctx.reference_length ||
       length > ctx.reference_length - rec.pos))
    ctx.fail("position", IngestReason::kPositionOutOfRange,
             "alignment [" + std::to_string(rec.pos) + ", " +
                 std::to_string(rec.pos + length) +
                 ") extends past the reference end (" +
                 std::to_string(ctx.reference_length) + ")");
  if (rec.seq.size() != rec.length || rec.qual.size() != rec.length)
    ctx.fail("record", IngestReason::kLengthMismatch,
             "seq/qual lengths " + std::to_string(rec.seq.size()) + "/" +
                 std::to_string(rec.qual.size()) +
                 " do not match declared length " +
                 std::to_string(rec.length) + " in '" + rec.read_id + "'");
  check_seq_qual(rec.seq, rec.qual, ctx);
  return rec;
}

AlignmentRecord parse_alignment(std::string_view line) {
  return parse_alignment(line, ParseContext{});
}

void write_alignments(std::ostream& out,
                      const std::vector<AlignmentRecord>& recs) {
  for (const auto& rec : recs) out << format_alignment(rec) << '\n';
}

void write_alignment_file(const std::filesystem::path& path,
                          const std::vector<AlignmentRecord>& recs) {
  std::ofstream out(path);
  GSNP_CHECK_MSG(out.good(), "cannot open alignment file for write " << path);
  write_alignments(out, recs);
}

AlignmentReader::AlignmentReader(const std::filesystem::path& path,
                                 IngestPolicy policy, u64 reference_length)
    : in_(path),
      policy_(std::move(policy)),
      quarantine_(policy_.quarantine_file) {
  GSNP_CHECK_MSG(in_.good(), "cannot open alignment file " << path);
  ctx_.file = path.string();
  ctx_.max_read_length = policy_.max_read_length;
  ctx_.reference_length = reference_length;
}

std::optional<AlignmentRecord> AlignmentReader::next() {
  while (std::getline(in_, line_)) {
    ++ctx_.line_no;
    try {
      if (line_.size() > policy_.max_line_bytes)
        ctx_.fail("line", IngestReason::kLineTooLong,
                  std::to_string(line_.size()) + " bytes > max_line_bytes=" +
                      std::to_string(policy_.max_line_bytes));
      const auto body = trim(line_);
      if (body.empty()) continue;
      AlignmentRecord rec = parse_alignment(body, ctx_);
      if (any_record_ && rec.chr_name != chr_name_)
        ctx_.fail("sequence name", IngestReason::kBadField,
                  "file mixes sequences '" + chr_name_ + "' and '" +
                      rec.chr_name + "'");
      if (any_record_ && rec.pos < last_pos_)
        ctx_.fail("position", IngestReason::kSortOrderViolation,
                  "position " + std::to_string(rec.pos + 1) +
                      " after position " + std::to_string(last_pos_ + 1) +
                      " — input must be coordinate-sorted");
      chr_name_ = rec.chr_name;
      last_pos_ = rec.pos;
      any_record_ = true;
      ++stats_.records_ok;
      return rec;
    } catch (const ParseError& err) {
      if (!policy_.lenient()) throw;
      quarantine_record(policy_, stats_, &quarantine_, err, line_);
    }
  }
  return std::nullopt;
}

std::vector<AlignmentRecord> read_alignment_file(
    const std::filesystem::path& path) {
  AlignmentReader reader(path);
  std::vector<AlignmentRecord> recs;
  while (auto rec = reader.next()) recs.push_back(std::move(*rec));
  return recs;
}

}  // namespace gsnp::reads
