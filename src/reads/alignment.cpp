#include "src/reads/alignment.hpp"

#include <ostream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace gsnp::reads {

std::string format_alignment(const AlignmentRecord& rec) {
  std::ostringstream os;
  os << rec.read_id << '\t' << rec.seq << '\t' << rec.qual << '\t'
     << rec.hit_count << '\t' << rec.pair_tag << '\t' << rec.length << '\t'
     << (rec.strand == Strand::kForward ? '+' : '-') << '\t' << rec.chr_name
     << '\t' << (rec.pos + 1);
  return os.str();
}

AlignmentRecord parse_alignment(std::string_view line) {
  const auto fields = split(trim(line), '\t');
  GSNP_CHECK_MSG(fields.size() >= 9, "bad alignment line: '" << line << "'");
  AlignmentRecord rec;
  rec.read_id = std::string(fields[0]);
  rec.seq = std::string(fields[1]);
  rec.qual = std::string(fields[2]);
  rec.hit_count = parse_int<u32>(fields[3], "hit count");
  GSNP_CHECK_MSG(fields[4].size() == 1, "bad pair tag '" << fields[4] << "'");
  rec.pair_tag = fields[4][0];
  rec.length = parse_int<u16>(fields[5], "read length");
  GSNP_CHECK_MSG(fields[6] == "+" || fields[6] == "-",
                 "bad strand '" << fields[6] << "'");
  rec.strand = fields[6] == "+" ? Strand::kForward : Strand::kReverse;
  rec.chr_name = std::string(fields[7]);
  const u64 pos1 = parse_int<u64>(fields[8], "position");
  GSNP_CHECK_MSG(pos1 >= 1, "alignment position must be 1-based");
  rec.pos = pos1 - 1;
  GSNP_CHECK_MSG(rec.seq.size() == rec.length && rec.qual.size() == rec.length,
                 "seq/qual length mismatch in '" << rec.read_id << "'");
  return rec;
}

void write_alignments(std::ostream& out,
                      const std::vector<AlignmentRecord>& recs) {
  for (const auto& rec : recs) out << format_alignment(rec) << '\n';
}

void write_alignment_file(const std::filesystem::path& path,
                          const std::vector<AlignmentRecord>& recs) {
  std::ofstream out(path);
  GSNP_CHECK_MSG(out.good(), "cannot open alignment file for write " << path);
  write_alignments(out, recs);
}

AlignmentReader::AlignmentReader(const std::filesystem::path& path)
    : in_(path) {
  GSNP_CHECK_MSG(in_.good(), "cannot open alignment file " << path);
}

std::optional<AlignmentRecord> AlignmentReader::next() {
  while (std::getline(in_, line_)) {
    if (trim(line_).empty()) continue;
    return parse_alignment(line_);
  }
  return std::nullopt;
}

std::vector<AlignmentRecord> read_alignment_file(
    const std::filesystem::path& path) {
  AlignmentReader reader(path);
  std::vector<AlignmentRecord> recs;
  while (auto rec = reader.next()) recs.push_back(std::move(*rec));
  return recs;
}

}  // namespace gsnp::reads
