#pragma once
// Per-cycle sequencing quality model.
//
// Second-generation sequencers produce qualities that decline along the read
// and are strongly auto-correlated within a read (the paper exploits exactly
// this for RLE compression of the quality columns: "bases on a short read
// usually have the same sequencing quality").  The model draws a per-read
// offset plus a declining per-cycle mean, quantized to a small set of levels
// so consecutive cycles frequently repeat a value.

#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace gsnp::reads {

struct QualityModelSpec {
  int mean_quality = 30;      ///< quality at cycle 0 for an average read
  int end_decline = 12;       ///< how much the mean drops by the last cycle
  int read_spread = 6;        ///< +/- per-read offset range
  int quantization = 3;       ///< qualities snap to multiples of this
  double glitch_rate = 0.01;  ///< chance of an isolated low-quality cycle
};

/// Generates quality strings for simulated reads.
class QualityModel {
 public:
  explicit QualityModel(const QualityModelSpec& spec) : spec_(spec) {}

  /// Qualities (integer Phred values) for one read of `read_len` cycles.
  std::vector<u8> sample(u32 read_len, Rng& rng) const;

  const QualityModelSpec& spec() const { return spec_; }

 private:
  QualityModelSpec spec_;
};

}  // namespace gsnp::reads
