#pragma once
// Read simulator: samples short reads from a diploid individual, applies
// quality-driven sequencing errors, and emits alignment records sorted by
// reference position — the same distribution of (site -> aligned bases) the
// paper's BGI datasets feed into SNP detection (see DESIGN.md substitutions).

#include <vector>

#include "src/common/rng.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/alignment.hpp"
#include "src/reads/quality_model.hpp"

namespace gsnp::reads {

struct ReadSimSpec {
  u32 read_len = 100;
  double depth = 10.0;          ///< target sequencing depth (X)
  double error_scale = 1.0;     ///< multiplies the Phred error probability
  double multi_hit_rate = 0.08; ///< fraction of reads with hit_count > 1
  /// Fraction of the genome reads can align to.  Real resequencing leaves
  /// repetitive/unmappable regions uncovered (paper Table II: 88% coverage
  /// for Ch.1, 68% for Ch.21); reads are only sampled from mappable blocks.
  double mappable_fraction = 1.0;
  u32 mappable_block = 2'000;   ///< granularity of unmappable gaps (bp)
  /// Paired-end simulation: reads are emitted as mate pairs sharing a read
  /// id, tagged 'a'/'b', with the mate placed ~insert_size bp downstream.
  /// false = single-end (each read an independent draw).
  bool paired_end = false;
  u32 insert_size = 300;        ///< outer distance between paired-read starts
  u32 insert_spread = 30;       ///< +/- uniform jitter on the insert size
  /// Depth hotspots: extra single-end reads are piled onto each island so its
  /// realized depth is ~depth_multiplier * `depth`.  Hotspot reads ignore the
  /// mappability mask — the scenario models collapsed repeats / CNV gains,
  /// which stack reads precisely where mappability is dubious.
  std::vector<genome::HotspotIsland> hotspots;
  QualityModelSpec quality;
  u64 seed = 3;
};

/// Simulate reads over the diploid individual.  Records come out sorted by
/// (pos, read_id); reads never cross the sequence end, and reads whose window
/// overlaps an 'N' gap keep the gap cycles as low-quality random bases (as a
/// real aligner would report mismatching tails).
std::vector<AlignmentRecord> simulate_reads(const genome::Diploid& individual,
                                            const ReadSimSpec& spec);

/// The observed base of record `rec` at reference position `site_pos`
/// together with the read coordinate (sequencing cycle) it came from.
/// Returns false if the record does not cover the site.
struct SiteObservation {
  u8 base;      ///< observed base, expressed on the forward reference strand
  u8 quality;   ///< Phred quality of that cycle
  u16 coord;    ///< sequencing cycle (coordinate on the read as sequenced)
  Strand strand;
};
bool observe_site(const AlignmentRecord& rec, u64 site_pos,
                  SiteObservation& out);

}  // namespace gsnp::reads
