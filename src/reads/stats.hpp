#pragma once
// Dataset statistics: sequencing depth, coverage ratio, and record counts —
// the characteristics reported in paper Table II.

#include <vector>

#include "src/common/types.hpp"
#include "src/reads/alignment.hpp"

namespace gsnp::reads {

struct DatasetStats {
  u64 num_sites = 0;      ///< reference length
  u64 num_reads = 0;
  u64 total_bases = 0;    ///< sum of read lengths
  double depth = 0.0;     ///< total_bases / num_sites
  double coverage = 0.0;  ///< fraction of sites covered by >= 1 read
};

/// Compute depth/coverage statistics for records over a reference of
/// `reference_length` sites.
DatasetStats compute_stats(const std::vector<AlignmentRecord>& recs,
                           u64 reference_length);

}  // namespace gsnp::reads
