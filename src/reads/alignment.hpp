#pragma once
// Short-read alignment records and the SOAP-style text format.
//
// GSNP's main input is the output of a short-read aligner (SOAP), a text file
// of alignment records *sorted by reference position*.  Each record carries
// the read sequence and quality string on the read's own strand, its hit
// count (1 = uniquely aligned), length, strand, sequence name, and 1-based
// leftmost position.  GSNP keeps SOAPsnp's file format (paper §V-A constraint
// 1: "input files are stored in specific formats widely used by scientists").
//
// Columns (tab separated):
//   read_id  seq  qual  hit_count  pair_tag  length  strand(+/-)  chr  pos
//
// Parsing is hardened against malformed aligner output: every field is
// validated (overflow-checked integers, read length capped at
// IngestPolicy::max_read_length, quality characters in the Sanger range,
// positions bounded by the reference when its length is known, coordinate
// sort order enforced) and failures raise gsnp::ParseError with file/line/
// field/reason.  AlignmentReader can run lenient (skip + quarantine, bounded
// by the policy's error budget) instead of strict.

#include <filesystem>
#include <fstream>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ingest.hpp"
#include "src/common/types.hpp"

namespace gsnp::reads {

struct AlignmentRecord {
  std::string read_id;
  std::string seq;    ///< ASCII bases, on the read's own strand
  std::string qual;   ///< ASCII Phred qualities (Sanger offset), same order
  u32 hit_count = 1;  ///< number of equally good alignments; 1 = unique
  char pair_tag = 'a';
  u16 length = 0;
  Strand strand = Strand::kForward;
  std::string chr_name;
  u64 pos = 0;  ///< 0-based leftmost reference position of the alignment

  bool operator==(const AlignmentRecord&) const = default;
};

/// Serialize one record as a SOAP-format line (pos written 1-based).
std::string format_alignment(const AlignmentRecord& rec);

/// Parse one SOAP-format line.  Throws gsnp::ParseError (with the context's
/// file/line and a reason code) on malformed input.
AlignmentRecord parse_alignment(std::string_view line, const ParseContext& ctx);
AlignmentRecord parse_alignment(std::string_view line);

/// Write records to a stream, one line each.
void write_alignments(std::ostream& out,
                      const std::vector<AlignmentRecord>& recs);
void write_alignment_file(const std::filesystem::path& path,
                          const std::vector<AlignmentRecord>& recs);

/// Streaming reader over an alignment file; `next()` yields records in file
/// order and std::nullopt at end of file.  Enforces coordinate sort order and
/// a single sequence name per file.  In strict mode (the default) the first
/// malformed line throws ParseError; in lenient mode malformed lines are
/// skipped into the policy's quarantine file and counted in stats(), up to
/// the policy's error budget.
class AlignmentReader {
 public:
  explicit AlignmentReader(const std::filesystem::path& path,
                           IngestPolicy policy = {},
                           u64 reference_length = 0);

  std::optional<AlignmentRecord> next();

  const IngestStats& stats() const { return stats_; }
  /// 1-based number of the last line read.
  u64 line_number() const { return ctx_.line_no; }

 private:
  std::ifstream in_;
  std::string line_;
  IngestPolicy policy_;
  ParseContext ctx_;
  IngestStats stats_;
  QuarantineWriter quarantine_;
  std::string chr_name_;  ///< sequence name locked by the first record
  u64 last_pos_ = 0;
  bool any_record_ = false;
};

/// Read a whole file into memory (tests and small examples).
std::vector<AlignmentRecord> read_alignment_file(
    const std::filesystem::path& path);

}  // namespace gsnp::reads
