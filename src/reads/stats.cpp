#include "src/reads/stats.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace gsnp::reads {

DatasetStats compute_stats(const std::vector<AlignmentRecord>& recs,
                           u64 reference_length) {
  GSNP_CHECK(reference_length > 0);
  DatasetStats stats;
  stats.num_sites = reference_length;
  stats.num_reads = recs.size();

  // Coverage via a difference array: O(reads + sites), no per-base loop.
  std::vector<i32> delta(reference_length + 1, 0);
  for (const auto& rec : recs) {
    stats.total_bases += rec.length;
    const u64 begin = std::min<u64>(rec.pos, reference_length);
    const u64 end = std::min<u64>(rec.pos + rec.length, reference_length);
    ++delta[begin];
    --delta[end];
  }

  u64 covered = 0;
  i64 running = 0;
  for (u64 i = 0; i < reference_length; ++i) {
    running += delta[i];
    if (running > 0) ++covered;
  }
  stats.depth =
      static_cast<double>(stats.total_bases) / static_cast<double>(reference_length);
  stats.coverage =
      static_cast<double>(covered) / static_cast<double>(reference_length);
  return stats;
}

}  // namespace gsnp::reads
