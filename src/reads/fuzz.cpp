#include "src/reads/fuzz.hpp"

#include <fstream>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace gsnp::reads {

namespace {

constexpr const char* kMutationNames[kNumMutationKinds] = {
    "truncate",     "delete_field", "swap_fields", "corrupt_bases",
    "break_cigar",  "overflow_int", "zero_pos",    "unsort_pos",
    "garbage",      "oversize_line",
};

bool all_digits(std::string_view s) {
  if (s.empty()) return false;
  for (const char c : s)
    if (c < '0' || c > '9') return false;
  return true;
}

std::string join_fields(const std::vector<std::string>& fields) {
  std::string out;
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i) out.push_back('\t');
    out += fields[i];
  }
  return out;
}

/// SAM record lines have >= 11 fields with a CIGAR-ish field 5; SOAP has 9.
bool looks_like_sam(const std::vector<std::string>& fields) {
  return fields.size() >= 11;
}

}  // namespace

const char* mutation_name(MutationKind kind) {
  const auto i = static_cast<std::size_t>(kind);
  return i < kNumMutationKinds ? kMutationNames[i] : "?";
}

std::string LineMutator::mutate(std::string_view line,
                                MutationKind* kind_out) {
  const auto kind = static_cast<MutationKind>(rng_.uniform(kNumMutationKinds));
  if (kind_out) *kind_out = kind;

  std::vector<std::string> fields;
  for (const auto f : split(line, '\t')) fields.emplace_back(f);
  const bool sam = looks_like_sam(fields);
  // Position field: SAM column 4 (index 3), SOAP column 9 (index 8).
  const std::size_t pos_idx = sam ? 3 : (fields.size() > 8 ? 8 : 0);

  switch (kind) {
    case MutationKind::kTruncate:
      return std::string(line.substr(0, rng_.uniform(line.size() + 1)));
    case MutationKind::kDeleteField: {
      if (fields.size() < 2) return std::string(line.substr(0, 1));
      fields.erase(fields.begin() +
                   static_cast<std::ptrdiff_t>(rng_.uniform(fields.size())));
      return join_fields(fields);
    }
    case MutationKind::kSwapFields: {
      if (fields.size() < 2) return std::string(line);
      const std::size_t a = rng_.uniform(fields.size());
      std::size_t b = rng_.uniform(fields.size() - 1);
      if (b >= a) ++b;
      std::swap(fields[a], fields[b]);
      return join_fields(fields);
    }
    case MutationKind::kCorruptBases: {
      // The sequence is the longest field in both formats.
      std::size_t longest = 0;
      for (std::size_t i = 1; i < fields.size(); ++i)
        if (fields[i].size() > fields[longest].size()) longest = i;
      std::string& seq = fields[longest];
      static constexpr char kJunk[] = {'#', '5', '%', '?', '\x01', '\x7f'};
      const std::size_t hits = 1 + rng_.uniform(3);
      for (std::size_t h = 0; h < hits && !seq.empty(); ++h)
        seq[rng_.uniform(seq.size())] = kJunk[rng_.uniform(sizeof(kJunk))];
      return join_fields(fields);
    }
    case MutationKind::kBreakCigar: {
      static constexpr const char* kBadCigars[] = {
          "M", "0M", "4294967296M", "1?1M", "70000M", "5M3"};
      const char* bad = kBadCigars[rng_.uniform(std::size(kBadCigars))];
      if (sam) {
        fields[5] = bad;
      } else if (fields.size() > 5) {
        fields[5] = "70000";  // SOAP length field: overlong read
      }
      return join_fields(fields);
    }
    case MutationKind::kOverflowInt: {
      for (std::size_t i = 0; i < fields.size(); ++i) {
        if (!all_digits(fields[i])) continue;
        fields[i] = "184467440737095516159999";
        break;
      }
      return join_fields(fields);
    }
    case MutationKind::kZeroPos:
    case MutationKind::kUnsortPos: {
      if (pos_idx < fields.size() && all_digits(fields[pos_idx]))
        fields[pos_idx] = kind == MutationKind::kZeroPos ? "0" : "1";
      return join_fields(fields);
    }
    case MutationKind::kGarbage: {
      std::string out;
      const std::size_t n = 8 + rng_.uniform(48);
      for (std::size_t i = 0; i < n; ++i)
        out.push_back(static_cast<char>(1 + rng_.uniform(255)));
      return out;
    }
    case MutationKind::kOversizeLine: {
      std::string out(line);
      out.append(options_.oversize_bytes, 'A');
      return out;
    }
    case MutationKind::kCount: break;
  }
  return std::string(line);
}

FuzzReport fuzz_file(const std::filesystem::path& in_path,
                     const std::filesystem::path& out_path,
                     const FuzzOptions& options) {
  std::ifstream in(in_path);
  GSNP_CHECK_MSG(in.good(), "cannot open fuzz input " << in_path);
  std::ofstream out(out_path, std::ios::trunc);
  GSNP_CHECK_MSG(out.good(), "cannot open fuzz output " << out_path);

  LineMutator mutator(options);
  FuzzReport report;
  std::string line;
  while (std::getline(in, line)) {
    const auto body = trim(line);
    const bool header = body.empty() || body.front() == '@' ||
                        body.front() == '#' || body.front() == '>';
    if (header) {
      out << line << '\n';
      continue;
    }
    ++report.lines;
    if (mutator.rng().uniform_double() < options.rate) {
      MutationKind kind{};
      out << mutator.mutate(line, &kind) << '\n';
      ++report.mutated;
      ++report.by_kind[static_cast<std::size_t>(kind)];
    } else {
      out << line << '\n';
    }
  }
  GSNP_CHECK_MSG(out.good(), "fuzz output write failed " << out_path);
  return report;
}

}  // namespace gsnp::reads
