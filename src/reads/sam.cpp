#include "src/reads/sam.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace gsnp::reads {

namespace {

/// Reverse-complement a base string in place ('N' maps to itself).
std::string reverse_complement(std::string_view seq) {
  std::string out(seq.rbegin(), seq.rend());
  for (char& c : out) {
    const u8 b = base_from_char(c);
    c = b < kNumBases ? char_from_base(complement(b)) : 'N';
  }
  return out;
}

/// Parse a CIGAR string; returns true and the matched length if it reduces
/// to soft clips around a single M run; reports the left clip length.
bool parse_simple_cigar(std::string_view cigar, u32& match_len,
                        u32& left_clip) {
  match_len = 0;
  left_clip = 0;
  u32 value = 0;
  bool seen_match = false;
  for (const char c : cigar) {
    if (c >= '0' && c <= '9') {
      value = value * 10 + static_cast<u32>(c - '0');
      continue;
    }
    switch (c) {
      case 'M':
      case '=':
      case 'X':
        if (seen_match) return false;  // two separate match runs
        match_len = value;
        seen_match = true;
        break;
      case 'S':
        if (!seen_match) left_clip = value;
        break;  // trailing soft clip just trims
      case 'H':
        break;  // hard clip: bases absent from SEQ
      default:
        return false;  // I/D/N/P: gapped alignment, unsupported
    }
    value = 0;
  }
  return seen_match && match_len > 0;
}

}  // namespace

std::string format_sam_record(const AlignmentRecord& rec) {
  u32 flag = 0;
  if (rec.strand == Strand::kReverse) flag |= kSamFlagReverse;
  if (rec.pair_tag == 'a') flag |= kSamFlagFirstInPair;

  // SAM stores SEQ/QUAL on the forward reference strand.
  std::string seq = rec.seq;
  std::string qual = rec.qual;
  if (rec.strand == Strand::kReverse) {
    seq = reverse_complement(seq);
    std::reverse(qual.begin(), qual.end());
  }

  std::ostringstream os;
  os << rec.read_id << '\t' << flag << '\t' << rec.chr_name << '\t'
     << (rec.pos + 1) << '\t' << 60 << '\t' << rec.length << 'M' << '\t'
     << '*' << '\t' << 0 << '\t' << 0 << '\t' << seq << '\t' << qual
     << "\tNH:i:" << rec.hit_count;
  return os.str();
}

std::optional<AlignmentRecord> parse_sam_record(std::string_view line) {
  const auto fields = split(trim(line), '\t');
  GSNP_CHECK_MSG(fields.size() >= 11, "bad SAM line: '" << line << "'");

  const u32 flag = parse_int<u32>(fields[1], "SAM flag");
  if (flag & (kSamFlagUnmapped | kSamFlagSecondary | kSamFlagSupplementary))
    return std::nullopt;

  u32 match_len = 0, left_clip = 0;
  if (!parse_simple_cigar(fields[5], match_len, left_clip))
    return std::nullopt;

  AlignmentRecord rec;
  rec.read_id = std::string(fields[0]);
  rec.chr_name = std::string(fields[2]);
  const u64 pos1 = parse_int<u64>(fields[3], "SAM pos");
  GSNP_CHECK_MSG(pos1 >= 1, "SAM position must be 1-based");
  rec.pos = pos1 - 1;
  rec.strand = (flag & kSamFlagReverse) ? Strand::kReverse : Strand::kForward;
  rec.pair_tag = (flag & kSamFlagFirstInPair) ? 'a' : 'b';

  std::string seq(fields[9]);
  std::string qual(fields[10]);
  GSNP_CHECK_MSG(seq.size() == qual.size() || qual == "*",
                 "SAM SEQ/QUAL length mismatch in '" << fields[0] << "'");
  if (qual == "*") qual.assign(seq.size(), '!');
  // Trim soft clips: the aligned portion is [left_clip, left_clip+match).
  GSNP_CHECK_MSG(left_clip + match_len <= seq.size(),
                 "CIGAR longer than SEQ in '" << fields[0] << "'");
  seq = seq.substr(left_clip, match_len);
  qual = qual.substr(left_clip, match_len);

  // Back to read-strand orientation.
  if (rec.strand == Strand::kReverse) {
    seq = reverse_complement(seq);
    std::reverse(qual.begin(), qual.end());
  }
  rec.seq = std::move(seq);
  rec.qual = std::move(qual);
  rec.length = static_cast<u16>(match_len);

  // NH tag -> hit count.
  rec.hit_count = 1;
  for (std::size_t f = 11; f < fields.size(); ++f) {
    if (fields[f].substr(0, 5) == "NH:i:")
      rec.hit_count = parse_int<u32>(fields[f].substr(5), "NH tag");
  }
  return rec;
}

void write_sam_file(const std::filesystem::path& path,
                    const std::vector<AlignmentRecord>& records,
                    const std::string& seq_name, u64 seq_length) {
  std::ofstream out(path);
  GSNP_CHECK_MSG(out.good(), "cannot open SAM file for write " << path);
  out << "@HD\tVN:1.6\tSO:coordinate\n";
  out << "@SQ\tSN:" << seq_name << "\tLN:" << seq_length << '\n';
  out << "@PG\tID:gsnp\tPN:gsnp\n";
  for (const auto& rec : records) out << format_sam_record(rec) << '\n';
}

SamReader::SamReader(const std::filesystem::path& path) : in_(path) {
  GSNP_CHECK_MSG(in_.good(), "cannot open SAM file " << path);
}

std::optional<AlignmentRecord> SamReader::next() {
  while (std::getline(in_, line_)) {
    const auto body = trim(line_);
    if (body.empty() || body.front() == '@') continue;
    auto rec = parse_sam_record(body);
    if (rec) return rec;
    ++skipped_;
  }
  return std::nullopt;
}

u64 sam_to_soap(const std::filesystem::path& sam_path,
                const std::filesystem::path& soap_path) {
  SamReader reader(sam_path);
  std::ofstream out(soap_path);
  GSNP_CHECK_MSG(out.good(), "cannot open output " << soap_path);
  u64 converted = 0;
  u64 last_pos = 0;
  while (auto rec = reader.next()) {
    GSNP_CHECK_MSG(rec->pos >= last_pos,
                   "SAM input must be coordinate-sorted (samtools sort)");
    last_pos = rec->pos;
    out << format_alignment(*rec) << '\n';
    ++converted;
  }
  return converted;
}

}  // namespace gsnp::reads
