#include "src/reads/sam.hpp"

#include <algorithm>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/phred.hpp"
#include "src/common/strings.hpp"

namespace gsnp::reads {

namespace {

/// Reverse-complement a base string in place ('N' maps to itself).
std::string reverse_complement(std::string_view seq) {
  std::string out(seq.rbegin(), seq.rend());
  for (char& c : out) {
    const u8 b = base_from_char(c);
    c = b < kNumBases ? char_from_base(complement(b)) : 'N';
  }
  return out;
}

bool valid_seq_char(char c) {
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || c == '=' ||
         c == '.';
}

}  // namespace

CigarStatus parse_simple_cigar(std::string_view cigar, u32& match_len,
                               u32& left_clip) {
  match_len = 0;
  left_clip = 0;
  if (cigar.empty() || cigar == "*") return CigarStatus::kUnsupported;
  u32 value = 0;
  bool have_value = false;
  bool seen_match = false;
  for (const char c : cigar) {
    if (c >= '0' && c <= '9') {
      const u32 d = static_cast<u32>(c - '0');
      if (value > (0xFFFF'FFFFu - d) / 10u) return CigarStatus::kOverflow;
      value = value * 10 + d;
      have_value = true;
      continue;
    }
    // Every op needs an explicit non-zero count (the SAM grammar requires a
    // count; a zero count is an aligner bug that would silently vanish).
    if (!have_value || value == 0) return CigarStatus::kMalformed;
    switch (c) {
      case 'M':
      case '=':
      case 'X':
        if (seen_match) return CigarStatus::kUnsupported;  // two match runs
        match_len = value;
        seen_match = true;
        break;
      case 'S':
        if (!seen_match) {
          if (left_clip > 0xFFFF'FFFFu - value) return CigarStatus::kOverflow;
          left_clip += value;
        }
        break;  // trailing soft clip just trims
      case 'H':
        break;  // hard clip: bases absent from SEQ
      case 'I':
      case 'D':
      case 'N':
      case 'P':
        return CigarStatus::kUnsupported;  // gapped alignment
      default:
        return CigarStatus::kMalformed;  // unknown op character
    }
    value = 0;
    have_value = false;
  }
  if (have_value) return CigarStatus::kMalformed;  // trailing count, no op
  if (!seen_match || match_len == 0) return CigarStatus::kUnsupported;
  return CigarStatus::kSimple;
}

std::string format_sam_record(const AlignmentRecord& rec) {
  u32 flag = 0;
  if (rec.strand == Strand::kReverse) flag |= kSamFlagReverse;
  if (rec.pair_tag == 'a') flag |= kSamFlagFirstInPair;

  // SAM stores SEQ/QUAL on the forward reference strand.
  std::string seq = rec.seq;
  std::string qual = rec.qual;
  if (rec.strand == Strand::kReverse) {
    seq = reverse_complement(seq);
    std::reverse(qual.begin(), qual.end());
  }

  std::ostringstream os;
  os << rec.read_id << '\t' << flag << '\t' << rec.chr_name << '\t'
     << (rec.pos + 1) << '\t' << 60 << '\t' << rec.length << 'M' << '\t'
     << '*' << '\t' << 0 << '\t' << 0 << '\t' << seq << '\t' << qual
     << "\tNH:i:" << rec.hit_count;
  return os.str();
}

std::optional<AlignmentRecord> parse_sam_record(std::string_view line,
                                                const ParseContext& ctx) {
  const auto fields = split(trim(line), '\t');
  if (fields.size() < 11)
    ctx.fail("record", IngestReason::kTruncatedRecord,
             "expected 11 tab-separated fields, got " +
                 std::to_string(fields.size()));

  const u32 flag = parse_int_ctx<u32>(fields[1], ctx, "FLAG");
  if (flag & (kSamFlagUnmapped | kSamFlagSecondary | kSamFlagSupplementary))
    return std::nullopt;

  u32 match_len = 0, left_clip = 0;
  switch (parse_simple_cigar(fields[5], match_len, left_clip)) {
    case CigarStatus::kSimple: break;
    case CigarStatus::kUnsupported: return std::nullopt;
    case CigarStatus::kMalformed:
      ctx.fail("CIGAR", IngestReason::kBadCigar,
               "'" + std::string(fields[5]) + "'");
    case CigarStatus::kOverflow:
      ctx.fail("CIGAR", IngestReason::kCigarOverflow,
               "count overflows u32 in '" + std::string(fields[5]) + "'");
  }
  if (match_len > 0xFFFFu)
    ctx.fail("CIGAR", IngestReason::kCigarOverflow,
             "match run " + std::to_string(match_len) +
                 " overflows the 16-bit read length");
  if (match_len > ctx.max_read_length)
    ctx.fail("CIGAR", IngestReason::kReadTooLong,
             "match run " + std::to_string(match_len) + " exceeds the " +
                 std::to_string(ctx.max_read_length) + "-base limit");

  AlignmentRecord rec;
  rec.read_id = std::string(fields[0]);
  if (fields[2] == "*" || fields[2].empty())
    ctx.fail("RNAME", IngestReason::kBadField,
             "mapped record without a reference name");
  rec.chr_name = std::string(fields[2]);
  const u64 pos1 = parse_int_ctx<u64>(fields[3], ctx, "POS");
  if (pos1 < 1)
    ctx.fail("POS", IngestReason::kPositionOutOfRange,
             "SAM positions are 1-based");
  if (pos1 > kMaxIngestPosition)
    ctx.fail("POS", IngestReason::kPositionOutOfRange,
             "position " + std::string(fields[3]) + " is absurd");
  rec.pos = pos1 - 1;
  if (ctx.reference_length > 0 &&
      (rec.pos >= ctx.reference_length ||
       match_len > ctx.reference_length - rec.pos))
    ctx.fail("POS", IngestReason::kPositionOutOfRange,
             "alignment [" + std::to_string(rec.pos) + ", " +
                 std::to_string(rec.pos + match_len) +
                 ") extends past the reference end (" +
                 std::to_string(ctx.reference_length) + ")");
  rec.strand = (flag & kSamFlagReverse) ? Strand::kReverse : Strand::kForward;
  rec.pair_tag = (flag & kSamFlagFirstInPair) ? 'a' : 'b';

  std::string seq(fields[9]);
  std::string qual(fields[10]);
  if (seq == "*") return std::nullopt;  // sequence not stored: nothing to call
  if (qual != "*" && seq.size() != qual.size())
    ctx.fail("QUAL", IngestReason::kLengthMismatch,
             "SEQ/QUAL lengths " + std::to_string(seq.size()) + "/" +
                 std::to_string(qual.size()) + " differ in '" + rec.read_id +
                 "'");
  if (qual == "*") qual.assign(seq.size(), '!');
  // Trim soft clips: the aligned portion is [left_clip, left_clip+match).
  if (static_cast<u64>(left_clip) + match_len > seq.size())
    ctx.fail("CIGAR", IngestReason::kLengthMismatch,
             "CIGAR consumes " + std::to_string(left_clip + match_len) +
                 " bases but SEQ has " + std::to_string(seq.size()) +
                 " in '" + rec.read_id + "'");
  seq = seq.substr(left_clip, match_len);
  qual = qual.substr(left_clip, match_len);
  for (const char c : seq)
    if (!valid_seq_char(c))
      ctx.fail("SEQ", IngestReason::kBadField,
               "non-base character 0x" + std::to_string(
                   static_cast<unsigned>(static_cast<unsigned char>(c))));
  for (const char c : qual)
    if (c < kQualityAsciiOffset || c > '~')
      ctx.fail("QUAL", IngestReason::kBadField,
               "quality byte 0x" + std::to_string(
                   static_cast<unsigned>(static_cast<unsigned char>(c))) +
                   " outside the Sanger range");

  // Back to read-strand orientation.
  if (rec.strand == Strand::kReverse) {
    seq = reverse_complement(seq);
    std::reverse(qual.begin(), qual.end());
  }
  rec.seq = std::move(seq);
  rec.qual = std::move(qual);
  rec.length = static_cast<u16>(match_len);

  // NH tag -> hit count.
  rec.hit_count = 1;
  for (std::size_t f = 11; f < fields.size(); ++f) {
    if (fields[f].substr(0, 5) == "NH:i:")
      rec.hit_count = parse_int_ctx<u32>(fields[f].substr(5), ctx, "NH tag");
  }
  return rec;
}

std::optional<AlignmentRecord> parse_sam_record(std::string_view line) {
  return parse_sam_record(line, ParseContext{});
}

void write_sam_file(const std::filesystem::path& path,
                    const std::vector<AlignmentRecord>& records,
                    const std::string& seq_name, u64 seq_length) {
  std::ofstream out(path);
  GSNP_CHECK_MSG(out.good(), "cannot open SAM file for write " << path);
  out << "@HD\tVN:1.6\tSO:coordinate\n";
  out << "@SQ\tSN:" << seq_name << "\tLN:" << seq_length << '\n';
  out << "@PG\tID:gsnp\tPN:gsnp\n";
  for (const auto& rec : records) out << format_sam_record(rec) << '\n';
}

SamReader::SamReader(const std::filesystem::path& path, IngestPolicy policy)
    : in_(path),
      policy_(std::move(policy)),
      quarantine_(policy_.quarantine_file) {
  GSNP_CHECK_MSG(in_.good(), "cannot open SAM file " << path);
  ctx_.file = path.string();
  ctx_.max_read_length = policy_.max_read_length;
}

std::optional<AlignmentRecord> SamReader::next() {
  while (std::getline(in_, line_)) {
    ++ctx_.line_no;
    try {
      if (line_.size() > policy_.max_line_bytes)
        ctx_.fail("line", IngestReason::kLineTooLong,
                  std::to_string(line_.size()) + " bytes > max_line_bytes=" +
                      std::to_string(policy_.max_line_bytes));
      const auto body = trim(line_);
      if (body.empty() || body.front() == '@') continue;
      auto rec = parse_sam_record(body, ctx_);
      if (!rec) {
        ++stats_.records_unsupported;
        continue;
      }
      // (chr, pos) sort check.  A chromosome reappearing after another began
      // means the file is not sorted, even though each block may be.
      if (!seen_chrs_.empty() && seen_chrs_.back() == rec->chr_name) {
        if (rec->pos < last_pos_)
          ctx_.fail("POS", IngestReason::kSortOrderViolation,
                    "position " + std::to_string(rec->pos + 1) + " on " +
                        rec->chr_name + " after position " +
                        std::to_string(last_pos_ + 1) + " (line " +
                        std::to_string(ctx_.line_no) +
                        ") — input must be coordinate-sorted (samtools sort)");
      } else {
        if (std::find(seen_chrs_.begin(), seen_chrs_.end(), rec->chr_name) !=
            seen_chrs_.end())
          ctx_.fail("RNAME", IngestReason::kSortOrderViolation,
                    "chromosome " + rec->chr_name + " reappears at line " +
                        std::to_string(ctx_.line_no) +
                        " after another chromosome started — input must be "
                        "sorted by (chr, pos)");
        seen_chrs_.push_back(rec->chr_name);
      }
      last_pos_ = rec->pos;
      ++stats_.records_ok;
      return rec;
    } catch (const ParseError& err) {
      if (!policy_.lenient()) throw;
      quarantine_record(policy_, stats_, &quarantine_, err, line_);
    }
  }
  return std::nullopt;
}

u64 sam_to_soap(const std::filesystem::path& sam_path,
                const std::filesystem::path& soap_path,
                const IngestPolicy& policy, IngestStats* stats_out) {
  SamReader reader(sam_path, policy);
  std::ofstream out(soap_path);
  GSNP_CHECK_MSG(out.good(), "cannot open output " << soap_path);
  u64 converted = 0;
  while (auto rec = reader.next()) {
    out << format_alignment(*rec) << '\n';
    ++converted;
  }
  if (stats_out) *stats_out = reader.stats();
  return converted;
}

}  // namespace gsnp::reads
