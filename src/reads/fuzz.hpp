#pragma once
// Deterministic, seeded mutation fuzzer for the ingest layer.
//
// Takes well-formed alignment text (SOAP or SAM; the mutations are
// field-aware but format-agnostic) and corrupts a controlled fraction of the
// record lines with the failure modes real aligner output exhibits at scale:
// truncation, deleted/swapped fields, non-ACGT bases, broken CIGARs,
// overflow-sized integers, sort-order violations, binary garbage, and
// oversized lines.  Everything is driven by gsnp::Rng from a single seed, so
// a failing corpus reproduces from (seed, rate) alone.
//
// Used by the fuzz_smoke test target (run under ASan/UBSan by
// scripts/verify.sh) and available for ad-hoc corpus generation.

#include <array>
#include <filesystem>
#include <string>
#include <string_view>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"

namespace gsnp::reads {

enum class MutationKind : u8 {
  kTruncate,      ///< cut the line at a random byte
  kDeleteField,   ///< drop one tab-separated field
  kSwapFields,    ///< exchange two fields
  kCorruptBases,  ///< splatter non-ACGT junk into the longest (seq) field
  kBreakCigar,    ///< SAM: mangle the CIGAR; SOAP: mangle the length field
  kOverflowInt,   ///< replace an integer field with a 24-digit number
  kZeroPos,       ///< set the position field to 0 (positions are 1-based)
  kUnsortPos,     ///< set the position field to 1 (breaks sort order)
  kGarbage,       ///< replace the line with random binary bytes
  kOversizeLine,  ///< pad the line past IngestPolicy::max_line_bytes
  kCount
};

inline constexpr std::size_t kNumMutationKinds =
    static_cast<std::size_t>(MutationKind::kCount);

const char* mutation_name(MutationKind kind);

struct FuzzOptions {
  u64 seed = 1;
  double rate = 0.2;  ///< fraction of record lines mutated
  /// Bytes appended by kOversizeLine; pair with a policy whose
  /// max_line_bytes is smaller to exercise the line-length guard cheaply.
  u64 oversize_bytes = 8192;
};

/// Applies one random mutation per call; deterministic given the seed.
class LineMutator {
 public:
  explicit LineMutator(const FuzzOptions& options)
      : options_(options), rng_(options.seed) {}

  /// Mutate one record line; `kind_out` reports which mutation was applied.
  std::string mutate(std::string_view line, MutationKind* kind_out = nullptr);

  Rng& rng() { return rng_; }

 private:
  FuzzOptions options_;
  Rng rng_;
};

struct FuzzReport {
  u64 lines = 0;    ///< record lines seen (headers/blank lines pass through)
  u64 mutated = 0;  ///< record lines corrupted
  std::array<u64, kNumMutationKinds> by_kind{};
};

/// Corrupt `options.rate` of the record lines of an alignment text file.
/// Header lines ('@', '#', '>') and blank lines pass through untouched.
/// Deterministic: same input + options => byte-identical output.
FuzzReport fuzz_file(const std::filesystem::path& in_path,
                     const std::filesystem::path& out_path,
                     const FuzzOptions& options);

}  // namespace gsnp::reads
