#pragma once
// SAM format support (subset).
//
// The paper's input is SOAP alignment text, but the field has standardized
// on SAM (Li et al. 2009, the paper's reference [3]); a production SNP
// caller must ingest it.  This module converts between SAM records and
// AlignmentRecord:
//
//  * only mapped, primary, ungapped alignments are converted (CIGAR must be
//    a single <len>M run, optionally with soft clips, which are trimmed);
//    others are skipped and counted as unsupported,
//  * SAM stores SEQ/QUAL on the forward reference strand; AlignmentRecord
//    stores them on the read's own strand — reverse-flagged records are
//    reverse-complemented on conversion (and back on writing),
//  * hit counts come from the NH:i: tag (default 1).
//
// Malformed lines (truncated, overflow-sized integers, broken CIGARs,
// out-of-domain fields) raise gsnp::ParseError with file/line/field/reason;
// SamReader in lenient mode skips them into a quarantine file under the
// policy's error budget.  See FORMATS.md §2 and §11 for the exact accepted
// subset and skip semantics.

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/common/ingest.hpp"
#include "src/reads/alignment.hpp"

namespace gsnp::reads {

/// SAM FLAG bits used here.
inline constexpr u32 kSamFlagUnmapped = 0x4;
inline constexpr u32 kSamFlagReverse = 0x10;
inline constexpr u32 kSamFlagSecondary = 0x100;
inline constexpr u32 kSamFlagSupplementary = 0x800;
inline constexpr u32 kSamFlagFirstInPair = 0x40;

/// Outcome of reducing a CIGAR string to soft clips around one match run.
enum class CigarStatus {
  kSimple,       ///< <clips> + single M/=/X run: supported
  kUnsupported,  ///< well-formed but gapped / multi-run / '*': skip
  kMalformed,    ///< op without a count, zero count, unknown op, stray digits
  kOverflow      ///< a count overflows u32
};

/// Reduce `cigar`; on kSimple, `match_len` is the single match run and
/// `left_clip` the total clip preceding it.
CigarStatus parse_simple_cigar(std::string_view cigar, u32& match_len,
                               u32& left_clip);

/// Convert one alignment record to a SAM line (with an NH tag).
std::string format_sam_record(const AlignmentRecord& rec);

/// Parse one SAM alignment line.  Returns nullopt for records this subset
/// does not support (unmapped, secondary/supplementary, non-<len>M CIGAR
/// after soft-clip trimming, '*' SEQ); throws gsnp::ParseError on malformed
/// lines.
std::optional<AlignmentRecord> parse_sam_record(std::string_view line,
                                                const ParseContext& ctx);
std::optional<AlignmentRecord> parse_sam_record(std::string_view line);

/// Write records as a SAM file with a minimal @HD/@SQ header.
void write_sam_file(const std::filesystem::path& path,
                    const std::vector<AlignmentRecord>& records,
                    const std::string& seq_name, u64 seq_length);

/// Streaming SAM reader: yields supported records in file order, skipping
/// headers and unsupported records (counted in stats().records_unsupported).
/// Enforces (chr_name, pos) coordinate sort order: positions must be
/// non-decreasing within a chromosome and no chromosome may reappear after
/// another has started.  Strict mode throws ParseError on the first
/// malformed line; lenient mode quarantines and keeps going until the
/// policy's error budget is exhausted.
class SamReader {
 public:
  explicit SamReader(const std::filesystem::path& path,
                     IngestPolicy policy = {});

  std::optional<AlignmentRecord> next();

  /// Well-formed records outside the supported subset (back-compat alias
  /// for stats().records_unsupported).
  u64 skipped() const { return stats_.records_unsupported; }
  const IngestStats& stats() const { return stats_; }
  /// 1-based number of the last line read (header lines included).
  u64 line_number() const { return ctx_.line_no; }

 private:
  std::ifstream in_;
  std::string line_;
  IngestPolicy policy_;
  ParseContext ctx_;
  IngestStats stats_;
  QuarantineWriter quarantine_;
  std::vector<std::string> seen_chrs_;
  u64 last_pos_ = 0;
};

/// Convert a whole SAM file to the SOAP alignment format GSNP's engines
/// consume (records must be sorted by (chr, pos), as samtools sort
/// produces).  Returns the number of converted records; `stats_out`, when
/// non-null, receives the full ingest breakdown.
u64 sam_to_soap(const std::filesystem::path& sam_path,
                const std::filesystem::path& soap_path,
                const IngestPolicy& policy = {},
                IngestStats* stats_out = nullptr);

}  // namespace gsnp::reads
