#pragma once
// SAM format support (subset).
//
// The paper's input is SOAP alignment text, but the field has standardized
// on SAM (Li et al. 2009, the paper's reference [3]); a production SNP
// caller must ingest it.  This module converts between SAM records and
// AlignmentRecord:
//
//  * only mapped, primary, ungapped alignments are converted (CIGAR must be
//    a single <len>M run, optionally with soft clips, which are trimmed);
//    others are skipped and counted,
//  * SAM stores SEQ/QUAL on the forward reference strand; AlignmentRecord
//    stores them on the read's own strand — reverse-flagged records are
//    reverse-complemented on conversion (and back on writing),
//  * hit counts come from the NH:i: tag (default 1).

#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/reads/alignment.hpp"

namespace gsnp::reads {

/// SAM FLAG bits used here.
inline constexpr u32 kSamFlagUnmapped = 0x4;
inline constexpr u32 kSamFlagReverse = 0x10;
inline constexpr u32 kSamFlagSecondary = 0x100;
inline constexpr u32 kSamFlagSupplementary = 0x800;
inline constexpr u32 kSamFlagFirstInPair = 0x40;

/// Convert one alignment record to a SAM line (with an NH tag).
std::string format_sam_record(const AlignmentRecord& rec);

/// Parse one SAM alignment line.  Returns nullopt for records this subset
/// does not support (unmapped, secondary/supplementary, non-<len>M CIGAR
/// after soft-clip trimming); throws gsnp::Error on malformed lines.
std::optional<AlignmentRecord> parse_sam_record(std::string_view line);

/// Write records as a SAM file with a minimal @HD/@SQ header.
void write_sam_file(const std::filesystem::path& path,
                    const std::vector<AlignmentRecord>& records,
                    const std::string& seq_name, u64 seq_length);

/// Streaming SAM reader: yields supported records in file order, skipping
/// headers and unsupported records (counted in skipped()).
class SamReader {
 public:
  explicit SamReader(const std::filesystem::path& path);

  std::optional<AlignmentRecord> next();
  u64 skipped() const { return skipped_; }

 private:
  std::ifstream in_;
  std::string line_;
  u64 skipped_ = 0;
};

/// Convert a whole SAM file to the SOAP alignment format GSNP's engines
/// consume (records must already be position-sorted, as samtools sort
/// produces).  Returns the number of converted records.
u64 sam_to_soap(const std::filesystem::path& sam_path,
                const std::filesystem::path& soap_path);

}  // namespace gsnp::reads
