#include "src/reads/quality_model.hpp"

#include "src/common/phred.hpp"

namespace gsnp::reads {

std::vector<u8> QualityModel::sample(u32 read_len, Rng& rng) const {
  std::vector<u8> quals(read_len);
  const int offset = static_cast<int>(
      rng.uniform_range(-spec_.read_spread, spec_.read_spread));
  for (u32 c = 0; c < read_len; ++c) {
    // Declining mean along the read, then quantize so neighbouring cycles
    // repeat values (drives the RLE compressibility the paper observed).
    const double frac = read_len > 1 ? static_cast<double>(c) / (read_len - 1)
                                     : 0.0;
    int q = spec_.mean_quality + offset -
            static_cast<int>(frac * spec_.end_decline);
    if (spec_.glitch_rate > 0.0 && rng.bernoulli(spec_.glitch_rate)) {
      q -= static_cast<int>(rng.uniform(15));
    }
    if (spec_.quantization > 1) q -= q % spec_.quantization;
    quals[c] = static_cast<u8>(clamp_quality(q));
  }
  return quals;
}

}  // namespace gsnp::reads
