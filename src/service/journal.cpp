#include "src/service/journal.hpp"

#include <sstream>

namespace gsnp::service {

std::optional<JobState> job_state_from_name(std::string_view name) {
  if (name == "queued") return JobState::kQueued;
  if (name == "running") return JobState::kRunning;
  if (name == "done") return JobState::kDone;
  if (name == "failed") return JobState::kFailed;
  if (name == "cancelled") return JobState::kCancelled;
  if (name == "interrupted") return JobState::kInterrupted;
  return std::nullopt;
}

std::string encode_job_journal(const JobJournal& journal) {
  std::ostringstream os;
  os << "{\"version\":1,\"id\":";
  json::write_escaped(os, journal.id);
  os << ",\"state\":";
  json::write_escaped(os, job_state_name(journal.state));
  os << ",\"resumed\":" << (journal.resumed ? "true" : "false");
  if (!journal.error.empty()) {
    os << ",\"error\":";
    json::write_escaped(os, journal.error);
  }
  if (!journal.digest.empty()) {
    os << ",\"digest\":";
    json::write_escaped(os, journal.digest);
  }
  os << ",\"spec\":";
  encode_job_spec(os, journal.spec);
  os << "}\n";
  return os.str();
}

JobJournal parse_job_journal(std::string_view text) {
  const json::Value doc = json::parse(text);
  GSNP_CHECK_MSG(doc.kind == json::Value::Kind::kObject,
                 "job journal is not a JSON object");
  JobJournal journal;
  const u64 version = json::get_u64(doc, "version");
  GSNP_CHECK_MSG(version == 1, "unsupported job journal version " << version);
  journal.id = json::get_string(doc, "id");
  GSNP_CHECK_MSG(!journal.id.empty(), "job journal has an empty id");
  const std::string state_name = json::get_string(doc, "state");
  const auto state = job_state_from_name(state_name);
  GSNP_CHECK_MSG(state.has_value(),
                 "unknown job state '" << state_name << "' in journal");
  journal.state = *state;
  journal.resumed = json::get_bool(doc, "resumed");
  if (const json::Value* e = json::find(doc, "error")) journal.error = e->string;
  if (const json::Value* d = json::find(doc, "digest"))
    journal.digest = d->string;
  const json::Value* spec = json::find(doc, "spec");
  GSNP_CHECK_MSG(spec != nullptr, "job journal has no spec");
  journal.spec = parse_job_spec(*spec);
  journal.spec.job_id = journal.id;
  return journal;
}

}  // namespace gsnp::service
