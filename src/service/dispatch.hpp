#pragma once
// Request dispatch: maps one protocol Request onto the Daemon API and the
// outcome (including typed ServiceErrors) onto one Response.  Shared by the
// socket server (gsnp_cli serve) and the in-process protocol tests, so the
// wire behavior is exercised without needing a socket.

#include <string>

#include "src/service/daemon.hpp"
#include "src/service/protocol.hpp"

namespace gsnp::service {

/// Handle one request.  Never throws: daemon-side ServiceErrors become
/// ok=false responses with their typed code; anything else maps to
/// kInternal.  Ops: "ping", "submit", "status" (job_id, or all jobs when
/// empty via fields "jobs"/"job.<i>.*"), "cancel", "stats", "metrics"
/// (Prometheus text exposition in field "text"), "health" (readiness
/// fields; see DaemonHealth), "shutdown" (acknowledged here; the serve
/// loop owns actually stopping).
Response handle_request(Daemon& daemon, const Request& request);

/// Convenience for socket handlers: parse a line, dispatch, encode the
/// response line.  Malformed lines come back as kBadRequest responses.
std::string handle_line(Daemon& daemon, const std::string& line);

}  // namespace gsnp::service
