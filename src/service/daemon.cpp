#include "src/service/daemon.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <optional>
#include <sstream>

#include "src/common/atomic_file.hpp"
#include "src/genome/dbsnp.hpp"
#include "src/genome/reference.hpp"
#include "src/obs/prometheus.hpp"
#include "src/service/journal.hpp"

namespace gsnp::service {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Has the job reached a resting state (nothing left for this daemon to do)?
/// kInterrupted rests too — only a future recover() wakes it.
bool settled(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled || state == JobState::kInterrupted;
}

/// Every metric the daemon can ever emit, pre-registered at construction so
/// the Prometheus exposition shows the full family set (at zero) from the
/// first scrape — scripts/metrics_inventory.txt mirrors this list plus the
/// fsck_* verdict counters recover() registers.
constexpr const char* kDaemonCounters[] = {
    "jobs_submitted",       "jobs_admitted",
    "jobs_completed",       "jobs_failed",
    "jobs_cancelled",       "jobs_interrupted",
    "jobs_shed_queue_full", "jobs_shed_quota",
    "jobs_shed_payload",    "jobs_rejected_bad_request",
    "jobs_rejected_invalid_argument",
    "jobs_rejected_device_budget",
    "jobs_rejected_storage", "jobs_deduplicated",
    "jobs_resumed",         "journal_write_failures",
    "manifest_write_failures",
    "chromosomes_done",     "chromosomes_degraded",
    "chromosomes_failed",   "eventlog_write_failures",
};
constexpr const char* kDaemonGauges[] = {
    "jobs_active", "queue_depth", "workers_busy", "spool_bytes"};
constexpr const char* kDaemonHistograms[] = {
    "job_queue_wait_seconds", "chromosome_compute_seconds",
    "job_completion_seconds"};

}  // namespace

bool terminal_job_state(JobState state) {
  return state == JobState::kDone || state == JobState::kFailed ||
         state == JobState::kCancelled;
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
    case JobState::kInterrupted: return "interrupted";
  }
  return "?";
}

/// All mutable job state is guarded by the daemon's single mutex; workers
/// only touch it through the record/finish helpers, so the heavy engine work
/// runs unlocked.
struct Daemon::Job {
  JobSpec spec;
  std::string id;
  JobState state = JobState::kQueued;
  core::EngineKind kind = core::EngineKind::kGsnp;
  CancelToken token;
  bool resume = false;  ///< re-admitted by recover(); skip verified work
  core::RunManifest previous;  ///< prior manifest (resume verification)
  std::vector<std::optional<core::ManifestEntry>> entries;
  std::size_t remaining = 0;   ///< chromosome tasks not yet finished
  std::size_t done_count = 0;
  bool failing = false;        ///< a chromosome failed beyond retries
  bool degraded = false;
  std::string error;
  CancelReason observed = CancelReason::kNone;
  std::string manifest_digest;
  std::filesystem::path dir;
  std::filesystem::path manifest_path;
  std::filesystem::path output_dir;
  Clock::time_point submitted{};
  Clock::time_point started{};
  Clock::time_point finished{};
  bool started_any = false;
  double wait_seconds = 0.0;
  double run_seconds = 0.0;
};

Daemon::Daemon(DaemonConfig config) : config_(std::move(config)) {
  GSNP_CHECK_MSG(!config_.spool_dir.empty(), "daemon needs a spool_dir");
  if (config_.workers < 1) config_.workers = 1;
  std::filesystem::create_directories(config_.spool_dir / "jobs");
  for (const char* name : kDaemonCounters) metrics_.add(name, 0);
  for (const char* name : kDaemonGauges) metrics_.set_gauge(name, 0.0);
  for (const char* name : kDaemonHistograms) metrics_.histogram(name);
  if (config_.event_log) {
    try {
      events_ = std::make_unique<obs::EventLog>(config_.spool_dir /
                                                "events.jsonl");
    } catch (const Error&) {
      // An unopenable flight recorder must not ground the plane; jobs run,
      // the loss is counted.
      metrics_.add("eventlog_write_failures");
    }
  }
  update_spool_gauge();
  devices_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    devices_.push_back(std::make_unique<device::Device>());
  pool_ = std::make_unique<ThreadPool>(config_.workers);
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

Daemon::~Daemon() {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
    if (!crashed_.load()) {
      // Park unfinished work for the next incarnation: kShutdown journals
      // as "interrupted", which recover() re-admits.
      for (auto& [id, job] : jobs_)
        if (!settled(job->state)) job->token.cancel(CancelReason::kShutdown);
    }
  }
  // Drain the pool first: queued tasks short-circuit on the cancelled token
  // (or on crashed_) and finalize their jobs before the maps go away.
  pool_.reset();
  watchdog_stop_.store(true);
  if (watchdog_.joinable()) watchdog_.join();
}

void Daemon::log_event(obs::JobEvent event) {
  if (!events_ || crashed_.load()) return;
  try {
    events_->append(std::move(event));
  } catch (const FsFaultError&) {
    // A lost flight-recorder record under storage faults is survivable: the
    // job journal and manifest stay the source of truth.
    metrics_.add("eventlog_write_failures");
  }
}

void Daemon::update_spool_gauge() {
  if (crashed_.load()) return;
  u64 total = 0;
  std::error_code walk_ec;
  for (auto it = std::filesystem::recursive_directory_iterator(
           config_.spool_dir, walk_ec);
       !walk_ec && it != std::filesystem::recursive_directory_iterator();
       it.increment(walk_ec)) {
    // Workers publish and unlink concurrently; races surface as per-entry
    // errors here and the entry is simply not counted this round.
    std::error_code ec;
    if (!it->is_regular_file(ec) || ec) continue;
    const std::uintmax_t size = it->file_size(ec);
    if (!ec) total += static_cast<u64>(size);
  }
  metrics_.set_gauge("spool_bytes", static_cast<double>(total));
}

device::Device& Daemon::worker_device() {
  // Dense per-thread slot: each pool worker claims one device the first time
  // it runs a GSNP chromosome and keeps it for life, so fault plans armed
  // against "the device this attempt will use" stay attached to it.
  thread_local std::size_t slot = static_cast<std::size_t>(-1);
  if (slot == static_cast<std::size_t>(-1))
    slot = next_worker_slot_.fetch_add(1);
  return *devices_[slot % devices_.size()];
}

void Daemon::write_job_journal(const Job& job) {
  if (crashed_.load()) return;  // a dead process writes nothing
  JobJournal journal;
  journal.id = job.id;
  journal.state = job.state;
  journal.resumed = job.resume;
  journal.error = job.error;
  journal.digest = job.manifest_digest;
  journal.spec = job.spec;
  const std::filesystem::path target = job.dir / "job.json";
  try {
    write_file_atomic(target, encode_job_journal(journal));
  } catch (const FsFaultError& e) {
    // ENOSPC/EIO-class failure (real or injected): the previous journal, if
    // any, is intact — atomicity holds — but this state change is NOT
    // durable.  Surface it typed; callers decide whether that is fatal
    // (admission: yes, the client must know) or survivable (progress
    // journals: recover() just reruns a little more work).
    metrics_.add("journal_write_failures");
    throw ServiceError(ErrorCode::kStorageFailure,
                       std::string("job journal not durable: ") + e.what());
  }
}

std::string Daemon::admit_locked(JobSpec&& spec, bool resume,
                                 std::unique_lock<std::mutex>& lock) {
  metrics_.add("jobs_submitted");
  if (shutting_down_ || crashed_.load())
    throw ServiceError(ErrorCode::kShuttingDown, "daemon is draining");

  // Event-log note: daemon-assigned ids are allocated below, so a
  // "submitted" record carries the client-supplied id or none; the job's
  // replayable per-id sequence starts at "admitted" either way.
  if (!resume) {
    obs::JobEvent submitted;
    submitted.event = "submitted";
    submitted.job_id = spec.job_id;
    submitted.tenant = spec.tenant;
    submitted.backend = spec.engine;
    log_event(std::move(submitted));
  }

  const auto reject = [&](ErrorCode code, const std::string& counter,
                          const std::string& message) -> ServiceError {
    metrics_.add(counter);
    // "shed" = well-formed work refused for load (queue/quota/payload);
    // "rejected" = the request itself is unusable.  Both carry the typed
    // snake_case code, so the log answers "why did tenant X lose jobs?".
    obs::JobEvent refused;
    refused.event = counter.rfind("jobs_shed_", 0) == 0 ? "shed" : "rejected";
    refused.job_id = spec.job_id;
    refused.tenant = spec.tenant;
    refused.backend = spec.engine;
    refused.reason = error_code_name(code);
    refused.error = message;
    log_event(std::move(refused));
    return ServiceError(code, message);
  };

  // Backend names resolve through the registry (canonical or id spelling);
  // unknown names are a typed invalid_argument rejection that lists every
  // valid name, so clients can self-correct.
  const core::BackendInfo* backend = core::find_backend(spec.engine);
  if (backend == nullptr)
    throw reject(ErrorCode::kInvalidArgument, "jobs_rejected_invalid_argument",
                 "unknown backend '" + spec.engine +
                     "' (valid: " + core::backend_name_list() + ")");
  const auto kind = std::optional<core::EngineKind>(backend->kind);
  if (spec.chromosomes.empty())
    throw reject(ErrorCode::kBadRequest, "jobs_rejected_bad_request",
                 "job has no chromosomes");

  u64 payload = 0;
  for (std::size_t i = 0; i < spec.chromosomes.size(); ++i) {
    const ChromosomeSpec& c = spec.chromosomes[i];
    if (c.name.empty() || c.alignment_file.empty() || c.reference_file.empty())
      throw reject(ErrorCode::kBadRequest, "jobs_rejected_bad_request",
                   "chromosome " + std::to_string(i) +
                       " needs name/align/ref");
    for (std::size_t j = 0; j < i; ++j)
      if (spec.chromosomes[j].name == c.name)
        throw reject(ErrorCode::kBadRequest, "jobs_rejected_bad_request",
                     "duplicate chromosome '" + c.name + "'");
    std::error_code ec;
    const u64 bytes = std::filesystem::file_size(c.alignment_file, ec);
    if (ec)
      throw reject(ErrorCode::kBadRequest, "jobs_rejected_bad_request",
                   "missing alignment file " + c.alignment_file);
    if (!std::filesystem::exists(c.reference_file))
      throw reject(ErrorCode::kBadRequest, "jobs_rejected_bad_request",
                   "missing reference file " + c.reference_file);
    payload += bytes;
  }

  // Device-capacity gate: with batching, a job's worst-case device footprint
  // is a closed-form number (score tables + one batch at the budget +
  // per-window output scratch), so admission can refuse work the card could
  // never hold *before* any of it runs.  Without a batch budget the
  // footprint depends on input depth, which is exactly what the gate exists
  // to rule out — such jobs are rejected when the gate is armed.  Recovery
  // skips the gate like the shed gates: the work was already admitted.
  if (!resume && config_.max_device_bytes > 0) {
    const u64 budget =
        spec.batch_bytes != 0 ? spec.batch_bytes : config_.batch_bytes;
    if (budget == 0)
      throw reject(ErrorCode::kDeviceBudgetExceeded,
                   "jobs_rejected_device_budget",
                   "daemon enforces a device budget of " +
                       std::to_string(config_.max_device_bytes) +
                       " bytes but the job has no batch_bytes budget, so its "
                       "worst-case device footprint is unbounded");
    const u32 window = spec.window_size != 0
                           ? spec.window_size
                           : core::EngineConfig::kDefaultGsnpWindow;
    const u64 worst = core::worst_case_device_bytes(budget, window);
    if (worst > config_.max_device_bytes)
      throw reject(ErrorCode::kDeviceBudgetExceeded,
                   "jobs_rejected_device_budget",
                   "worst-case device footprint " + std::to_string(worst) +
                       " bytes (batch budget " + std::to_string(budget) +
                       ", window " + std::to_string(window) +
                       ") exceeds device capacity " +
                       std::to_string(config_.max_device_bytes));
  }

  // Recovery bypasses the load-shedding gates: this work was admitted (and
  // paid for) by a previous incarnation; dropping it would break the
  // exactly-once resume contract.  The payload cap still applies on first
  // admission only, where the files were measured.
  if (!resume) {
    if (payload > config_.max_payload_bytes)
      throw reject(ErrorCode::kPayloadTooLarge, "jobs_shed_payload",
                   "payload " + std::to_string(payload) + " bytes > cap " +
                       std::to_string(config_.max_payload_bytes));
    if (active_jobs_ >= config_.queue_capacity)
      throw reject(ErrorCode::kQueueFull, "jobs_shed_queue_full",
                   "admission queue at capacity (" +
                       std::to_string(config_.queue_capacity) + " jobs)");
    const auto it = tenant_active_.find(spec.tenant);
    if (it != tenant_active_.end() && it->second >= config_.tenant_quota)
      throw reject(ErrorCode::kQuotaExceeded, "jobs_shed_quota",
                   "tenant '" + spec.tenant + "' at quota (" +
                       std::to_string(config_.tenant_quota) + " jobs)");
  }

  if (spec.job_id.empty())
    spec.job_id = "job-" + std::to_string(next_job_number_++);
  if (jobs_.count(spec.job_id) != 0 && !resume) {
    // Idempotent resubmit: a client retrying after a lost ack re-sends the
    // same spec under its client-supplied id; admitting it again would
    // double-run the genome.  Accept iff the spec is byte-identical (modulo
    // the output_dir the daemon resolved on first admission) and hand back
    // the original id; a *different* spec under a taken id stays an error.
    const Job& existing = *jobs_.at(spec.job_id);
    JobSpec normalized = spec;
    if (normalized.output_dir.empty())
      normalized.output_dir = existing.spec.output_dir;
    std::ostringstream incoming, original;
    encode_job_spec(incoming, normalized);
    encode_job_spec(original, existing.spec);
    if (incoming.str() == original.str()) {
      metrics_.add("jobs_deduplicated");
      return spec.job_id;
    }
    throw reject(ErrorCode::kBadRequest, "jobs_rejected_bad_request",
                 "duplicate job id '" + spec.job_id + "' with different spec");
  }

  auto job = std::make_shared<Job>();
  job->id = spec.job_id;
  job->kind = *kind;
  job->resume = resume;
  job->dir = config_.spool_dir / "jobs" / job->id;
  job->manifest_path = job->dir / "manifest.json";
  std::filesystem::create_directories(job->dir);
  if (spec.output_dir.empty())
    spec.output_dir = (job->dir / "out").string();  // journaled resolved
  job->output_dir = spec.output_dir;
  std::filesystem::create_directories(job->output_dir);
  job->spec = std::move(spec);
  job->entries.resize(job->spec.chromosomes.size());
  job->remaining = job->spec.chromosomes.size();
  job->submitted = Clock::now();
  if (resume && std::filesystem::exists(job->manifest_path))
    job->previous = core::read_run_manifest(job->manifest_path);

  try {
    write_job_journal(*job);  // durable before any work runs
  } catch (const ServiceError&) {
    // Not journaled -> not admitted: the job was never inserted, so the
    // typed kStorageFailure rejection leaves no half-admitted state and the
    // client may retry the identical submit once the disk recovers.
    metrics_.add("jobs_rejected_storage");
    throw;
  }

  if (jobs_.count(job->id) == 0) job_order_.push_back(job->id);
  jobs_[job->id] = job;
  ++active_jobs_;
  ++tenant_active_[job->spec.tenant];
  metrics_.add("jobs_admitted");
  metrics_.set_gauge("jobs_active", static_cast<double>(active_jobs_));
  {
    obs::JobEvent admitted;
    admitted.event = resume ? "recovered" : "admitted";
    admitted.job_id = job->id;
    admitted.tenant = job->spec.tenant;
    admitted.backend = job->spec.engine;
    log_event(std::move(admitted));
  }

  lock.unlock();
  update_spool_gauge();
  enqueue_job(job);
  return job->id;
}

std::string Daemon::submit(JobSpec spec) {
  std::unique_lock<std::mutex> lock(mu_);
  return admit_locked(std::move(spec), /*resume=*/false, lock);
}

void Daemon::enqueue_job(const std::shared_ptr<Job>& job) {
  {
    const std::lock_guard<std::mutex> lock(mu_);
    pending_tasks_ += job->spec.chromosomes.size();
    metrics_.set_gauge("queue_depth", static_cast<double>(pending_tasks_));
  }
  for (std::size_t i = 0; i < job->spec.chromosomes.size(); ++i)
    // Futures dropped on purpose: run_chromosome never lets an exception
    // escape, and the pool destructor drains everything submitted.
    (void)pool_->submit([this, job, i] { run_chromosome(job, i); });
}

core::GenomeRunConfig Daemon::job_run_config(const Job& job) {
  core::GenomeRunConfig cfg;
  cfg.output_dir = job.output_dir;
  cfg.window_size = job.spec.window_size;
  cfg.streams = config_.streams;
  cfg.batch_bytes =
      job.spec.batch_bytes != 0 ? job.spec.batch_bytes : config_.batch_bytes;
  cfg.retry = config_.retry;
  cfg.ingest = config_.ingest;
  cfg.resume = job.resume;
  cfg.manifest_file = job.manifest_path;
  cfg.run_id = job.id;  // namespaces quarantine/temp/.part per job
  cfg.cancel = &job.token;
  if (config_.checkpoint_hook)
    cfg.checkpoint_hook = [this, id = job.id](std::string_view point,
                                              const std::string& chrom) {
      config_.checkpoint_hook(point, id, chrom);
    };
  return cfg;
}

void Daemon::run_chromosome(const std::shared_ptr<Job>& job, std::size_t index) {
  if (crashed_.load()) return;  // the "process" died; leave everything as-is

  // Queue-depth/busy-worker bookkeeping brackets the task itself; the scope
  // closes before chromosome_finished so wait_idle never observes a stale
  // workers_busy from the job it just waited on.
  struct BusyScope {
    Daemon& d;
    explicit BusyScope(Daemon& daemon) : d(daemon) {
      const std::lock_guard<std::mutex> lock(d.mu_);
      if (d.pending_tasks_ > 0) --d.pending_tasks_;
      ++d.busy_workers_;
      d.metrics_.set_gauge("queue_depth",
                           static_cast<double>(d.pending_tasks_));
      d.metrics_.set_gauge("workers_busy",
                           static_cast<double>(d.busy_workers_));
    }
    ~BusyScope() {
      const std::lock_guard<std::mutex> lock(d.mu_);
      if (d.busy_workers_ > 0) --d.busy_workers_;
      d.metrics_.set_gauge("workers_busy",
                           static_cast<double>(d.busy_workers_));
    }
  };

  {
    BusyScope busy_scope(*this);
    run_chromosome_task(job, index);
  }
  chromosome_finished(job);  // no-op when crashed_ tripped mid-task
}

void Daemon::run_chromosome_task(const std::shared_ptr<Job>& job,
                                 std::size_t index) {
  Job& j = *job;
  const ChromosomeSpec& cs = j.spec.chromosomes[index];

  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!j.started_any) {
      j.started_any = true;
      j.started = Clock::now();
      j.wait_seconds = seconds_between(j.submitted, j.started);
      j.state = JobState::kRunning;
      metrics_.record("job_queue_wait_seconds", j.wait_seconds);
      obs::JobEvent started;
      started.event = "started";
      started.job_id = j.id;
      started.tenant = j.spec.tenant;
      started.backend = j.spec.engine;
      started.wall_seconds = j.wait_seconds;
      log_event(std::move(started));
      try {
        write_job_journal(j);
      } catch (const ServiceError&) {
        // Journal stuck at "queued": after a crash, recover() reruns the
        // whole job, whose outputs rename over identical bytes — safe to
        // keep working (the failure is already counted).
      }
    }
    if (j.failing) {
      // A sibling chromosome already failed the job; don't start new work.
      return;
    }
  }
  if (j.token.cancelled()) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (j.observed == CancelReason::kNone) j.observed = j.token.reason();
    // fall through to finished in the caller, outside this lock
  }
  if (j.token.cancelled()) return;

  try {
    // Inputs load on the worker, per chromosome: jobs reference files, the
    // daemon never holds a genome in memory longer than the attempt.
    const std::vector<genome::Reference> refs =
        genome::read_fasta_file(cs.reference_file);
    GSNP_CHECK_MSG(refs.size() == 1, "reference " << cs.reference_file
                                                  << " must hold exactly one "
                                                     "sequence");
    std::optional<genome::DbSnpTable> dbsnp;
    if (!cs.dbsnp_file.empty())
      dbsnp = genome::read_dbsnp_file(cs.dbsnp_file, {}, nullptr,
                                      refs[0].size());

    core::ChromosomeJob chrom;
    chrom.name = cs.name;
    chrom.alignment_file = cs.alignment_file;
    chrom.reference = &refs[0];
    chrom.dbsnp = dbsnp ? &*dbsnp : nullptr;

    device::Device* dev = nullptr;
    if (core::backend_info(j.kind).needs_device) {
      dev = &worker_device();
      if (config_.fault_arm) config_.fault_arm(*dev, j.id, cs.name);
    }

    const core::GenomeRunConfig cfg = job_run_config(j);
    const Clock::time_point compute_start = Clock::now();
    core::ChromosomeRunResult r = core::run_one_chromosome(
        cfg, j.kind, dev, chrom, j.resume ? &j.previous : nullptr);
    const double compute_seconds =
        seconds_between(compute_start, Clock::now());

    if (r.fault != nullptr) {
      // Retries + fallback exhausted: journal the failed entry first, then
      // fail the whole job (siblings short-circuit; running ones complete).
      record_entry(job, index, std::move(r.entry));
      const std::string why = std::move(r.status.error);
      {
        const std::lock_guard<std::mutex> lock(mu_);
        j.failing = true;
        if (j.error.empty()) j.error = why;
      }
      metrics_.add("chromosomes_failed");
    } else {
      record_entry(job, index, std::move(r.entry));
      {
        const std::lock_guard<std::mutex> lock(mu_);
        ++j.done_count;
        if (r.status.degraded) j.degraded = true;
      }
      metrics_.add("chromosomes_done");
      if (r.status.degraded) metrics_.add("chromosomes_degraded");
      metrics_.record("chromosome_compute_seconds", compute_seconds);
      obs::JobEvent done;
      done.event = "chromosome_done";
      done.job_id = j.id;
      done.tenant = j.spec.tenant;
      done.backend = j.spec.engine;
      done.chromosome = cs.name;
      done.degraded = r.status.degraded;
      done.wall_seconds = compute_seconds;
      done.modeled_seconds = r.run.modeled_wall_seconds;
      log_event(std::move(done));
    }
  } catch (const CancelledError& cancelled) {
    const std::lock_guard<std::mutex> lock(mu_);
    if (j.observed == CancelReason::kNone) j.observed = cancelled.reason();
  } catch (const std::exception& e) {
    if (crashed_.load()) return;  // simulated crash unwound through the hook
    const std::lock_guard<std::mutex> lock(mu_);
    j.failing = true;
    if (j.error.empty()) j.error = e.what();
  }
}

void Daemon::record_entry(const std::shared_ptr<Job>& job, std::size_t index,
                          core::ManifestEntry entry) {
  const std::lock_guard<std::mutex> lock(mu_);
  job->entries[index] = std::move(entry);
  flush_manifest_locked(*job);
}

void Daemon::flush_manifest_locked(Job& job) {
  if (crashed_.load()) return;
  // Entries appear in submission (chromosome) order with gaps elided, so a
  // complete job's manifest is byte-comparable with a serial run_genome of
  // the same spec — the chaos harness compares manifest digests.
  core::RunManifest m;
  m.engine = core::engine_name(job.kind);
  for (const auto& e : job.entries)
    if (e.has_value()) m.chromosomes.push_back(*e);
  try {
    core::write_run_manifest(job.manifest_path, m);
  } catch (const FsFaultError&) {
    // The manifest is rebuilt from scratch on every entry and again at
    // finalize; a failed intermediate flush costs only resume granularity
    // (recover() re-verifies or reruns the unlisted chromosomes).
    metrics_.add("manifest_write_failures");
  }
}

void Daemon::chromosome_finished(const std::shared_ptr<Job>& job) {
  if (crashed_.load()) return;
  bool last = false;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    last = (--job->remaining == 0);
  }
  if (last) {
    finalize(job);
    update_spool_gauge();
  }
}

void Daemon::finalize(const std::shared_ptr<Job>& job) {
  const std::lock_guard<std::mutex> lock(mu_);
  Job& j = *job;
  if (settled(j.state)) return;

  JobState final_state;
  if (j.done_count == j.entries.size()) {
    final_state = JobState::kDone;  // a cancel that raced the finish loses
  } else if (j.failing) {
    final_state = JobState::kFailed;
  } else if (j.observed == CancelReason::kDeadline) {
    final_state = JobState::kFailed;
    j.error = error_code_name(ErrorCode::kDeadlineExceeded);
  } else if (j.observed == CancelReason::kClient) {
    final_state = JobState::kCancelled;
    if (j.error.empty()) j.error = "cancelled_by_client";
  } else if (j.observed != CancelReason::kNone) {
    final_state = JobState::kInterrupted;  // shutdown/signal: park for resume
  } else {
    final_state = JobState::kFailed;  // incomplete without a recorded cause
    if (j.error.empty()) j.error = "internal: chromosomes unaccounted for";
  }

  j.state = final_state;
  j.finished = Clock::now();
  j.run_seconds = seconds_between(j.submitted, j.finished);
  if (final_state == JobState::kDone) {
    // Every entry landed: derive the canonical result digest from the same
    // manifest the journal holds (computed here, not in record_entry, because
    // concurrent workers record entries before siblings have finished).
    core::RunManifest m;
    m.engine = core::engine_name(j.kind);
    for (const auto& e : j.entries) m.chromosomes.push_back(*e);
    j.manifest_digest = core::manifest_digest(m);
  } else {
    j.manifest_digest.clear();
  }
  try {
    write_job_journal(j);
  } catch (const ServiceError&) {
    // Terminal state not durable: the in-memory state machine still settles
    // (clients see the true verdict); the next recover() will rerun a done
    // job to identical bytes or re-fail a failed one.  Counted above.
  }

  --active_jobs_;
  auto it = tenant_active_.find(j.spec.tenant);
  if (it != tenant_active_.end() && --it->second == 0)
    tenant_active_.erase(it);

  const char* event_name = nullptr;
  switch (final_state) {
    case JobState::kDone:
      metrics_.add("jobs_completed");
      event_name = "published";
      // End-to-end latency (admission -> every chromosome published), the
      // distribution bench_service cross-checks against client clocks; the
      // per-tenant series feeds quota tuning.
      metrics_.record("job_completion_seconds", j.run_seconds);
      metrics_.record(obs::labeled_series("job_completion_seconds", "tenant",
                                          j.spec.tenant),
                      j.run_seconds);
      break;
    case JobState::kFailed:
      metrics_.add("jobs_failed");
      event_name = "failed";
      break;
    case JobState::kCancelled:
      metrics_.add("jobs_cancelled");
      event_name = "cancelled";
      break;
    case JobState::kInterrupted:
      metrics_.add("jobs_interrupted");
      event_name = "interrupted";
      break;
    default: break;
  }
  if (event_name != nullptr) {
    obs::JobEvent terminal;
    terminal.event = event_name;
    terminal.job_id = j.id;
    terminal.tenant = j.spec.tenant;
    terminal.backend = j.spec.engine;
    terminal.wall_seconds = j.run_seconds;
    if (!j.error.empty()) terminal.error = j.error;
    log_event(std::move(terminal));
  }
  metrics_.set_gauge("jobs_active", static_cast<double>(active_jobs_));
  cv_.notify_all();
}

JobStatus Daemon::status_locked(const Job& job) const {
  JobStatus s;
  s.job_id = job.id;
  s.tenant = job.spec.tenant;
  s.engine = job.spec.engine;
  s.state = job.state;
  s.chromosomes_total = job.entries.size();
  s.chromosomes_done = job.done_count;
  s.degraded = job.degraded;
  s.resumed = job.resume;
  s.error = job.error;
  s.manifest_digest = job.manifest_digest;
  s.manifest_file = job.manifest_path;
  s.output_dir = job.output_dir;
  s.wait_seconds = job.wait_seconds;
  s.run_seconds = settled(job.state)
                      ? job.run_seconds
                      : seconds_between(job.submitted, Clock::now());
  return s;
}

JobStatus Daemon::status(const std::string& job_id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end())
    throw ServiceError(ErrorCode::kNotFound, "unknown job '" + job_id + "'");
  return status_locked(*it->second);
}

std::vector<JobStatus> Daemon::jobs() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> all;
  all.reserve(job_order_.size());
  for (const std::string& id : job_order_) {
    const auto it = jobs_.find(id);
    if (it != jobs_.end()) all.push_back(status_locked(*it->second));
  }
  return all;
}

void Daemon::cancel(const std::string& job_id) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end())
    throw ServiceError(ErrorCode::kNotFound, "unknown job '" + job_id + "'");
  if (!settled(it->second->state))
    it->second->token.cancel(CancelReason::kClient);
}

DaemonStats Daemon::stats() const {
  DaemonStats s;
  s.submitted = metrics_.counter("jobs_submitted");
  s.admitted = metrics_.counter("jobs_admitted");
  s.completed = metrics_.counter("jobs_completed");
  s.failed = metrics_.counter("jobs_failed");
  s.cancelled = metrics_.counter("jobs_cancelled");
  s.interrupted = metrics_.counter("jobs_interrupted");
  s.shed_queue_full = metrics_.counter("jobs_shed_queue_full");
  s.shed_quota = metrics_.counter("jobs_shed_quota");
  s.shed_payload = metrics_.counter("jobs_shed_payload");
  s.rejected_bad_request = metrics_.counter("jobs_rejected_bad_request");
  s.rejected_invalid_argument =
      metrics_.counter("jobs_rejected_invalid_argument");
  s.rejected_storage = metrics_.counter("jobs_rejected_storage");
  s.rejected_device_budget = metrics_.counter("jobs_rejected_device_budget");
  s.deduplicated = metrics_.counter("jobs_deduplicated");
  s.journal_write_failures = metrics_.counter("journal_write_failures");
  s.manifest_write_failures = metrics_.counter("manifest_write_failures");
  s.chromosomes_done = metrics_.counter("chromosomes_done");
  s.chromosomes_degraded = metrics_.counter("chromosomes_degraded");
  s.eventlog_write_failures = metrics_.counter("eventlog_write_failures");
  s.spool_bytes = static_cast<u64>(metrics_.gauge("spool_bytes"));
  {
    const std::lock_guard<std::mutex> lock(mu_);
    s.active = active_jobs_;
    s.queue_depth = pending_tasks_;
    s.workers_busy = busy_workers_;
  }
  return s;
}

DaemonHealth Daemon::health() const {
  DaemonHealth h;
  h.queue_capacity = config_.queue_capacity;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    h.active_jobs = active_jobs_;
    h.queue_depth = pending_tasks_;
    h.shutting_down = shutting_down_;
  }
  h.workers_alive = pool_ != nullptr && !crashed_.load();
  // A real probe write through the fault-checked atomic path: when the
  // spool's disk is full (or a chaos plan says it is), readiness drops
  // before admissions start failing typed.
  try {
    const std::filesystem::path probe = config_.spool_dir / ".health.probe";
    write_file_atomic(probe, "ok\n");
    std::error_code ec;
    std::filesystem::remove(probe, ec);
    h.spool_writable = true;
  } catch (const std::exception&) {
    h.spool_writable = false;
  }
  h.ready = h.spool_writable && h.workers_alive && !h.shutting_down &&
            !crashed_.load();
  return h;
}

std::string Daemon::prometheus_text() const {
  return obs::render_prometheus(metrics_, "gsnpd_");
}

std::size_t Daemon::recover() {
  const std::filesystem::path jobs_root = config_.spool_dir / "jobs";
  if (!std::filesystem::exists(jobs_root)) return 0;

  if (config_.fsck_on_recover) {
    // Scrub before trusting: corrupt journals quarantine, orphans move to
    // lost+found, torn staging disappears, and unverifiable "done" jobs
    // demote to interrupted — so the resume scan below only ever sees
    // journals whose claims have been checked.
    FsckOptions fsck_options;
    fsck_options.repair = true;
    fsck_options.deep_verify = config_.fsck_deep_verify;
    last_fsck_ = fsck_spool(config_.spool_dir, fsck_options);
    for (int i = 0; i <= static_cast<int>(FsckVerdict::kCorruptQuarantined);
         ++i) {
      const auto verdict = static_cast<FsckVerdict>(i);
      metrics_.add(std::string("fsck_") + fsck_verdict_name(verdict),
                   last_fsck_.count(verdict));
    }
    metrics_.add("fsck_repairs", last_fsck_.repairs_applied);
  }

  std::vector<std::filesystem::path> dirs;
  for (const auto& entry : std::filesystem::directory_iterator(jobs_root))
    if (entry.is_directory()) dirs.push_back(entry.path());
  std::sort(dirs.begin(), dirs.end());  // deterministic resume order

  std::size_t resumed = 0;
  for (const std::filesystem::path& dir : dirs) {
    const std::filesystem::path journal = dir / "job.json";
    if (!std::filesystem::exists(journal)) continue;

    std::string text;
    {
      std::ifstream in(journal, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      text = buf.str();
    }
    JobSpec spec;
    JobState state;
    std::string error, digest;
    try {
      JobJournal parsed = parse_job_journal(text);
      spec = std::move(parsed.spec);
      state = parsed.state;
      error = std::move(parsed.error);
      digest = std::move(parsed.digest);
    } catch (const Error&) {
      continue;  // torn/corrupt journal: nothing trustworthy to resume
    }

    {
      // Keep id allocation ahead of every recovered id.
      const std::lock_guard<std::mutex> lock(mu_);
      if (spec.job_id.rfind("job-", 0) == 0) {
        char* end = nullptr;
        const unsigned long long n =
            std::strtoull(spec.job_id.c_str() + 4, &end, 10);
        if (end != nullptr && *end == '\0' && n >= next_job_number_)
          next_job_number_ = n + 1;
      }
      if (jobs_.count(spec.job_id) != 0) continue;
    }

    if (terminal_job_state(state)) {
      // History only: queryable, not re-run.
      auto job = std::make_shared<Job>();
      job->id = spec.job_id;
      job->kind =
          core::engine_kind_from_name(spec.engine).value_or(job->kind);
      job->state = state;
      job->error = std::move(error);
      job->manifest_digest = std::move(digest);
      job->dir = dir;
      job->manifest_path = dir / "manifest.json";
      job->output_dir = spec.output_dir;
      job->entries.resize(spec.chromosomes.size());
      if (state == JobState::kDone)
        job->done_count = spec.chromosomes.size();
      job->spec = std::move(spec);
      const std::lock_guard<std::mutex> lock(mu_);
      job_order_.push_back(job->id);
      jobs_[job->id] = job;
      continue;
    }

    // Incomplete (queued/running/interrupted): exactly-once resume.
    try {
      std::unique_lock<std::mutex> lock(mu_);
      admit_locked(std::move(spec), /*resume=*/true, lock);
      ++resumed;
      metrics_.add("jobs_resumed");
    } catch (const ServiceError&) {
      // Inputs vanished since first admission; nothing to run.  The stale
      // journal stays for the operator.
    }
  }
  update_spool_gauge();
  return resumed;
}

bool Daemon::wait_job(const std::string& job_id, double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mu_);
  const auto it = jobs_.find(job_id);
  if (it == jobs_.end())
    throw ServiceError(ErrorCode::kNotFound, "unknown job '" + job_id + "'");
  const std::shared_ptr<Job> job = it->second;
  const auto done = [&] { return settled(job->state) || crashed_.load(); };
  if (timeout_seconds < 0.0) {
    cv_.wait(lock, done);
    return settled(job->state);
  }
  return cv_.wait_for(lock, std::chrono::duration<double>(timeout_seconds),
                      done) &&
         settled(job->state);
}

void Daemon::wait_idle() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return active_jobs_ == 0 || crashed_.load(); });
}

void Daemon::simulate_crash() {
  crashed_.store(true);
  cv_.notify_all();
}

void Daemon::watchdog_loop() {
  while (!watchdog_stop_.load()) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(config_.watchdog_interval_seconds));
    if (crashed_.load()) continue;
    const std::lock_guard<std::mutex> lock(mu_);
    const auto now = Clock::now();
    for (auto& [id, job] : jobs_) {
      if (settled(job->state)) continue;
      if (job->spec.deadline_seconds > 0.0 &&
          seconds_between(job->submitted, now) > job->spec.deadline_seconds)
        job->token.cancel(CancelReason::kDeadline);
    }
  }
}

}  // namespace gsnp::service
