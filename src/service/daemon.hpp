#pragma once
// gsnpd — the long-lived variant-calling service (DESIGN.md "Service").
//
// A Daemon accepts genome jobs (protocol.hpp JobSpec), shards each job by
// chromosome across a fixed worker pool (common/thread_pool.hpp, one
// simulated device per worker), and wraps every job in a defense-in-depth
// envelope:
//
//  * admission control — a bounded count of unfinished jobs; submissions
//    beyond it are SHED with ServiceError(kQueueFull) instead of queued
//    unboundedly.  Per-tenant quotas (kQuotaExceeded) and a per-job payload
//    cap on summed alignment bytes (kPayloadTooLarge) reject abusive load
//    before it costs anything.
//  * deadlines — a watchdog thread cancels jobs past their budget through
//    the job's CancelToken (reason kDeadline); the engines observe it at
//    window granularity, so an overrun job dies in milliseconds, typed
//    kDeadlineExceeded, never by hanging its client.
//  * fault tolerance — per-chromosome retries with seeded-jitter backoff and
//    kGsnp→kGsnpCpu degradation, exactly the core pipeline's semantics
//    (core::run_one_chromosome is the shared unit of work).
//  * crash safety — every job journals `job.json` + the PR 1 run manifest
//    under `<spool>/jobs/<id>/`; outputs publish atomically.  After a crash,
//    recover() rescans the spool, re-verifies output CRC-32s, and resumes
//    every incomplete job exactly once (verified chromosomes skip; a
//    published-but-unjournaled chromosome re-runs to the identical bytes and
//    renames over itself).
//
// Determinism: outputs are byte-identical to serial single-job runs by
// construction — every chromosome runs the same engine code on the same
// input regardless of scheduling, and the final manifest lists chromosomes
// in submission order, so manifest digests are comparable with serial runs
// (bench/bench_service.cpp asserts this under chaos schedules).

#include <condition_variable>
#include <filesystem>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/cancel.hpp"
#include "src/common/thread_pool.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/device/device.hpp"
#include "src/obs/eventlog.hpp"
#include "src/obs/trace.hpp"
#include "src/service/fsck.hpp"
#include "src/service/protocol.hpp"

namespace gsnp::service {

/// Job lifecycle.  kInterrupted is the only non-terminal resting state: the
/// daemon went down (shutdown or crash) with the job unfinished, and the
/// next recover() re-admits it.
enum class JobState {
  kQueued,       ///< admitted, no chromosome finished yet
  kRunning,      ///< at least one chromosome task started
  kDone,         ///< every chromosome published and journaled
  kFailed,       ///< a chromosome failed beyond retries, or deadline overrun
  kCancelled,    ///< client cancel
  kInterrupted,  ///< daemon stopped mid-job; resumable
};

const char* job_state_name(JobState state);
/// Is a journaled state terminal across restarts (recover() must not rerun)?
bool terminal_job_state(JobState state);

struct DaemonConfig {
  /// Spool root: `<spool>/jobs/<job-id>/{job.json, manifest.json, out/}`.
  std::filesystem::path spool_dir;
  std::size_t workers = 2;         ///< chromosome worker threads (>= 1)
  std::size_t queue_capacity = 8;  ///< max unfinished jobs before shedding
  std::size_t tenant_quota = 4;    ///< max unfinished jobs per tenant
  u64 max_payload_bytes = 64ull << 20;  ///< per-job summed alignment bytes
  core::RetryPolicy retry;         ///< per-chromosome device-fault policy
  IngestPolicy ingest;             ///< malformed-input policy for all jobs
  u32 streams = 1;                 ///< engine pipeline width (1 = serial)
  /// Default depth-aware batching budget (device bytes per batch) for jobs
  /// that do not set JobSpec::batch_bytes.  0 = batching off.
  u64 batch_bytes = 0;
  /// Device capacity for admission control: when > 0, a job is admitted
  /// only if its worst-case device footprint — core::worst_case_device_bytes
  /// of its effective batch budget and window — fits.  Jobs with no
  /// effective batch budget are rejected typed kDeviceBudgetExceeded: an
  /// unbatched job's footprint is an emergent property of input depth, not
  /// a number admission can check.  0 = gate off.
  u64 max_device_bytes = 0;
  double watchdog_interval_seconds = 0.02;
  /// Scrub the spool (fsck, repairing) at the start of recover(), so resume
  /// decisions are made against a verified spool instead of crash litter.
  bool fsck_on_recover = true;
  bool fsck_deep_verify = false;  ///< per-frame container CRCs during fsck
  /// Structured job event log at `<spool>/events.jsonl` (obs/eventlog.hpp):
  /// every lifecycle transition appends one fsynced JSONL record.  Append
  /// failures are survivable (counted, never fatal to the job).
  bool event_log = true;

  /// Chaos hooks (null in production).  `fault_arm` runs on the worker
  /// thread right before a chromosome attempt, with the device that attempt
  /// will use — set a FaultPlan relative to the device's current operation
  /// counters for deterministic injection regardless of scheduling.
  /// `checkpoint_hook` forwards core::GenomeRunConfig::checkpoint_hook with
  /// the job id prepended; throwing from it (after simulate_crash())
  /// models the process dying at that durability point.
  std::function<void(device::Device& dev, const std::string& job_id,
                     const std::string& chromosome)>
      fault_arm;
  std::function<void(std::string_view point, const std::string& job_id,
                     const std::string& chromosome)>
      checkpoint_hook;
};

/// A point-in-time public view of one job.
struct JobStatus {
  std::string job_id;
  std::string tenant;
  std::string engine;
  JobState state = JobState::kQueued;
  std::size_t chromosomes_total = 0;
  std::size_t chromosomes_done = 0;
  bool degraded = false;     ///< any chromosome fell back to the CPU engine
  bool resumed = false;      ///< job was re-admitted by recover()
  std::string error;         ///< terminal failure/cancel detail ("" if clean)
  std::string manifest_digest;  ///< canonical result digest (done jobs)
  std::filesystem::path manifest_file;
  std::filesystem::path output_dir;
  double wait_seconds = 0.0;  ///< admission -> first chromosome start
  double run_seconds = 0.0;   ///< admission -> terminal state
};

/// Aggregate counters (mirrored in the obs metrics registry, metrics()).
struct DaemonStats {
  u64 submitted = 0;   ///< admission attempts, shed included
  u64 admitted = 0;
  u64 completed = 0;
  u64 failed = 0;
  u64 cancelled = 0;
  u64 interrupted = 0;
  u64 shed_queue_full = 0;
  u64 shed_quota = 0;
  u64 shed_payload = 0;
  u64 rejected_bad_request = 0;
  u64 rejected_invalid_argument = 0;  ///< unknown backend name in the spec
  u64 rejected_storage = 0;    ///< submits refused: journal not durable
  u64 rejected_device_budget = 0;  ///< worst-case device footprint over cap
  u64 deduplicated = 0;        ///< idempotent resubmits answered from state
  u64 journal_write_failures = 0;   ///< job.json writes that hit ENOSPC/EIO
  u64 manifest_write_failures = 0;  ///< manifest flushes that hit ENOSPC/EIO
  u64 chromosomes_done = 0;
  u64 chromosomes_degraded = 0;
  u64 eventlog_write_failures = 0;  ///< event records lost to ENOSPC/EIO
  std::size_t active = 0;      ///< unfinished jobs right now
  std::size_t queue_depth = 0;    ///< chromosome tasks enqueued, not started
  std::size_t workers_busy = 0;   ///< workers inside a chromosome task
  u64 spool_bytes = 0;  ///< spool footprint at the last admission/completion

  u64 shed_total() const { return shed_queue_full + shed_quota + shed_payload; }
};

/// Point-in-time readiness, served by the `health` protocol op.  `ready`
/// is the single bit a load balancer gates on; the rest says why not.
struct DaemonHealth {
  bool ready = false;           ///< accepting and able to run work durably
  bool spool_writable = false;  ///< a probe write to the spool succeeded
  bool workers_alive = false;   ///< pool up, no (simulated) crash
  bool shutting_down = false;
  std::size_t queue_depth = 0;     ///< chromosome tasks waiting for a worker
  std::size_t queue_capacity = 0;  ///< DaemonConfig::queue_capacity (jobs)
  std::size_t active_jobs = 0;     ///< unfinished jobs vs queue_capacity
};

class Daemon {
 public:
  explicit Daemon(DaemonConfig config);
  /// Graceful shutdown: stops admission, cancels unfinished jobs with reason
  /// kShutdown (journaled as "interrupted" — the next recover() resumes
  /// them), drains the pool, joins the watchdog.
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  /// Admit a job, journal it, and enqueue its chromosomes.  Returns the job
  /// id.  Throws ServiceError: kBadRequest (malformed spec, duplicate id,
  /// missing input file), kPayloadTooLarge, kQueueFull, kQuotaExceeded,
  /// kShuttingDown.
  std::string submit(JobSpec spec);

  /// Throws ServiceError(kNotFound) for unknown ids.
  JobStatus status(const std::string& job_id) const;
  std::vector<JobStatus> jobs() const;

  /// Cancel an unfinished job (reason kClient, terminal state kCancelled).
  /// A no-op on already-terminal jobs; throws kNotFound on unknown ids.
  void cancel(const std::string& job_id);

  DaemonStats stats() const;

  /// Readiness probe: spool writability (a real probe write through the
  /// fault-checked path), worker liveness, and queue depth vs capacity.
  DaemonHealth health() const;

  /// The full registry — counters, gauges, latency histograms — rendered in
  /// Prometheus text exposition format under the `gsnpd_` prefix (served by
  /// the `metrics` protocol op; see obs/prometheus.hpp).
  std::string prometheus_text() const;

  /// Scan the spool for jobs journaled by a previous daemon: terminal jobs
  /// become queryable history; incomplete jobs (queued/running/interrupted)
  /// are re-admitted with resume semantics — their manifests are read back,
  /// completed chromosomes re-verify by CRC-32 and are skipped, the rest
  /// run.  Recovery bypasses admission limits (the work was already
  /// admitted once).  With config.fsck_on_recover the spool is scrubbed
  /// first (repairing; see fsck.hpp) and the report kept in last_fsck().
  /// Returns the number of jobs resumed.
  std::size_t recover();

  /// The scrub report from the last recover() (empty before the first).
  const FsckReport& last_fsck() const { return last_fsck_; }

  /// Block until a job reaches a terminal state.  Returns false on timeout
  /// (timeout < 0 = wait forever).  Throws kNotFound for unknown ids.
  bool wait_job(const std::string& job_id, double timeout_seconds = -1.0);
  /// Block until no unfinished jobs remain.
  void wait_idle();

  /// Test-only crash switch: from this instant the daemon stops journaling
  /// and finalizing (as if the process died) — queued work is dropped, the
  /// destructor skips the graceful-shutdown journal writes.  The spool is
  /// left exactly as a real crash would, for a successor daemon's recover().
  void simulate_crash();

  /// Live metrics registry (job counters, queue gauges); the source the
  /// status verbs serve from.
  obs::Metrics& metrics() { return metrics_; }
  const DaemonConfig& config() const { return config_; }

 private:
  struct Job;

  std::string admit_locked(JobSpec&& spec, bool resume,
                           std::unique_lock<std::mutex>& lock);
  void enqueue_job(const std::shared_ptr<Job>& job);
  void run_chromosome(const std::shared_ptr<Job>& job, std::size_t index);
  void run_chromosome_task(const std::shared_ptr<Job>& job, std::size_t index);
  void record_entry(const std::shared_ptr<Job>& job, std::size_t index,
                    core::ManifestEntry entry);
  void chromosome_finished(const std::shared_ptr<Job>& job);
  void finalize(const std::shared_ptr<Job>& job);
  void flush_manifest_locked(Job& job);
  void write_job_journal(const Job& job);
  core::GenomeRunConfig job_run_config(const Job& job);
  JobStatus status_locked(const Job& job) const;
  device::Device& worker_device();
  void watchdog_loop();
  /// Append to the event log; silent (counted) on storage failure, no-op
  /// after simulate_crash() or when the log is disabled.
  void log_event(obs::JobEvent event);
  /// Recompute the spool_bytes gauge (filesystem walk; call unlocked).
  void update_spool_gauge();

  DaemonConfig config_;
  obs::Metrics metrics_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  std::vector<std::string> job_order_;  ///< submission order, for jobs()
  std::size_t active_jobs_ = 0;
  std::size_t pending_tasks_ = 0;  ///< chromosome tasks enqueued, not started
  std::size_t busy_workers_ = 0;   ///< workers inside run_chromosome
  std::map<std::string, std::size_t> tenant_active_;
  u64 next_job_number_ = 1;
  bool shutting_down_ = false;
  std::atomic<bool> crashed_{false};
  FsckReport last_fsck_;  ///< written by recover() before jobs re-admit

  std::unique_ptr<obs::EventLog> events_;  ///< null when disabled/unopenable

  std::vector<std::unique_ptr<device::Device>> devices_;
  std::atomic<std::size_t> next_worker_slot_{0};

  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};

  /// Workers last: the pool's destructor drains before members it uses die.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace gsnp::service
