#pragma once
// The gsnpd wire protocol and job model (FORMATS.md §12).
//
// Everything a client exchanges with the daemon is newline-delimited JSON:
// one request object per line in, one response object per line out, over a
// local AF_UNIX stream socket (src/service/socket.hpp).  The same structs
// drive the in-process API (service::Daemon) and the job journal, so a job
// admitted over the wire, journaled to the spool, and resumed after a crash
// is one representation throughout.
//
// Rejections are *typed*: admission failures carry an ErrorCode a client can
// branch on (shed on kQueueFull, back off on kQuotaExceeded, split the job on
// kPayloadTooLarge) instead of parsing prose.

#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/json.hpp"
#include "src/common/types.hpp"

namespace gsnp::service {

/// Why the daemon refused (or could not serve) a request.
enum class ErrorCode {
  kBadRequest,        ///< malformed spec: missing fields, no chromosomes, ...
  kInvalidArgument,   ///< well-formed spec with a bad value: unknown backend
  kQueueFull,         ///< admission queue at capacity — load shed, retry later
  kPayloadTooLarge,   ///< summed alignment bytes exceed the per-job cap
  kQuotaExceeded,     ///< tenant already holds its quota of unfinished jobs
  kDeadlineExceeded,  ///< job cancelled by the watchdog past its deadline
  kNotFound,          ///< unknown job id
  kShuttingDown,      ///< daemon is draining; nothing new is admitted
  kStorageFailure,    ///< spool write failed (ENOSPC/EIO class) — job not durable
  kFrameTooLarge,     ///< request line exceeds the server's max-frame cap
  kDeviceBudgetExceeded,  ///< worst-case device footprint over the daemon's
                          ///< capacity (or no batch budget to compute it)
  kInternal,          ///< unexpected server-side failure
};

const char* error_code_name(ErrorCode code);
std::optional<ErrorCode> error_code_from_name(std::string_view name);

/// Thrown by Daemon entry points; carries the typed code the protocol layer
/// serializes into the response line.
class ServiceError : public Error {
 public:
  ServiceError(ErrorCode code, const std::string& message)
      : Error(std::string(error_code_name(code)) + ": " + message),
        code_(code) {}

  ErrorCode code() const { return code_; }

 private:
  ErrorCode code_;
};

/// One chromosome of a job: the alignment to call plus the reference (a
/// single-sequence FASTA) and an optional known-SNP prior table.  All paths
/// are files on the daemon's filesystem — the protocol ships names, not data.
struct ChromosomeSpec {
  std::string name;
  std::string alignment_file;
  std::string reference_file;
  std::string dbsnp_file;  ///< "" = genome-wide novel-SNP prior only
};

struct JobSpec {
  std::string job_id;            ///< "" = daemon assigns "job-<n>"
  std::string tenant = "default";
  std::string engine = "gsnp";   ///< a backend name core::find_backend knows
                                 ///< ("gsnp", "gsnp-cpu", "gsnp-simd",
                                 ///< "soapsnp", or the "_" id spellings)
  std::vector<ChromosomeSpec> chromosomes;
  /// Where outputs publish; "" = the job's spool directory (`<job dir>/out`).
  std::string output_dir;
  u32 window_size = 0;           ///< 0 = engine default
  /// Depth-aware batching budget (device bytes per batch); 0 = daemon
  /// default (DaemonConfig::batch_bytes).  Bounds the job's worst-case
  /// device footprint, which admission control checks before accepting.
  u64 batch_bytes = 0;
  /// Wall-clock budget from admission (re-armed from resume on recovery);
  /// 0 = no deadline.  Overruns are cancelled by the watchdog and fail with
  /// kDeadlineExceeded.
  double deadline_seconds = 0.0;
};

/// One request line.  `op` selects the verb; the other fields are op-specific
/// ("submit" uses `job`; "status"/"cancel" use `job_id`; "stats", "ping",
/// "shutdown" take nothing).
struct Request {
  std::string op;
  std::string job_id;
  JobSpec job;
};

/// One response line.  ok=true carries `fields` (flat string map: job_id,
/// state, counters...); ok=false carries the typed error + message.
struct Response {
  bool ok = false;
  ErrorCode error = ErrorCode::kInternal;
  std::string message;
  std::map<std::string, std::string> fields;
};

/// Line codecs.  Encoders emit exactly one line WITHOUT the trailing '\n'
/// (the socket layer frames); parsers accept one line and throw
/// ServiceError(kBadRequest) / gsnp::Error on malformed input.
std::string encode_request(const Request& request);
Request parse_request(std::string_view line);
std::string encode_response(const Response& response);
Response parse_response(std::string_view line);

/// JobSpec <-> JSON object, shared by the wire format and the job journal
/// (daemon.cpp writes specs into `job.json` so recovery re-creates the exact
/// submitted job).
void encode_job_spec(std::ostream& os, const JobSpec& spec);
JobSpec parse_job_spec(const json::Value& value);

}  // namespace gsnp::service
