#pragma once
// Line-oriented AF_UNIX transport for the gsnpd protocol: a LineServer
// accepts local connections and feeds each received line (one JSON request)
// to a handler whose returned line (one JSON response) is written back; a
// LineClient is the blocking request/response counterpart.  The transport
// knows nothing about the protocol — protocol.hpp owns the line contents,
// which keeps the daemon fully testable in-process and the socket layer a
// thin shell the CLI wires up.

#include <atomic>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace gsnp::service {

class LineServer {
 public:
  /// Called once per received line (without the trailing '\n'); the returned
  /// string is sent back as one line.  Must be thread-safe: each connection
  /// is served from its own thread.
  using Handler = std::function<std::string(const std::string& line)>;

  /// Binds and listens on `socket_path` (an existing stale socket file is
  /// removed first).  Throws gsnp::Error when the socket cannot be bound —
  /// e.g. a sandbox with no AF_UNIX support; callers surface that loudly.
  LineServer(std::filesystem::path socket_path, Handler handler);
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Stop accepting, shut down open connections, join all threads, unlink
  /// the socket file.  Idempotent; the destructor calls it.
  void stop();

  const std::filesystem::path& path() const { return path_; }

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::filesystem::path path_;
  Handler handler_;
  int listen_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::thread acceptor_;
  std::mutex mu_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
};

class LineClient {
 public:
  /// Connects to a LineServer; throws gsnp::Error when the daemon is not
  /// listening.
  explicit LineClient(const std::filesystem::path& socket_path);
  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Send one line, block for one line back.  Throws gsnp::Error on a
  /// closed or failed connection.
  std::string request(const std::string& line);

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace gsnp::service
