#pragma once
// Line-oriented AF_UNIX transport for the gsnpd protocol: a LineServer
// accepts local connections and feeds each received line (one JSON request)
// to a handler whose returned line (one JSON response) is written back; a
// LineClient is the blocking request/response counterpart.  The transport
// knows nothing about the protocol contents — protocol.hpp owns the line
// payloads — with one deliberate exception: a request line that overruns the
// server's max-frame cap is answered with a typed
// `ServiceError(kFrameTooLarge)` response before the connection closes,
// because once framing is lost the handler can never be reached.
//
// Hardening (DESIGN.md "Storage and network faults"):
//  * bounded buffering — a client that streams bytes without a newline can
//    no longer balloon server memory; past ServerOptions::max_frame_bytes
//    the connection gets the typed reject and is closed.
//  * no SIGPIPE — all writes go through send(MSG_NOSIGNAL), so a peer that
//    disappears mid-reply surfaces as EPIPE on that write, never a signal
//    that kills the daemon.
//  * idle deadlines — a connected-but-silent peer is dropped after
//    ServerOptions::idle_timeout_seconds, freeing its thread.
//  * chaos mode — NetFaultPlan lets tests deterministically cut a reply
//    mid-frame, stall before a reply, or deliver every reply one byte per
//    write(); clients must survive all three.
//
// The resilient LineClient (ClientOptions constructor) wraps every request
// in per-operation poll deadlines and a seeded-jitter reconnect loop (the
// same core::RetryPolicy/backoff_sequence machinery the engines retry
// with).  Blind resend after reconnect is safe for every protocol verb
// because the daemon's mutating op — submit — is idempotent when the client
// supplies the job id: a resent submit of the identical spec is answered
// from existing state, not run twice.  Resilient clients should therefore
// always name their jobs.

#include <atomic>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/types.hpp"
#include "src/core/genome_pipeline.hpp"  // core::RetryPolicy

namespace gsnp::service {

/// Deterministic server-side network chaos, counted in replies served (the
/// counter is server-wide, so with a single test client "reply N" is exact).
/// All fields off by default; production servers never enable this.
struct NetFaultPlan {
  i64 disconnect_at = -1;  ///< cut reply #N mid-frame (half the bytes), close
  i64 stall_at = -1;       ///< sleep stall_seconds before writing reply #N
  double stall_seconds = 0.25;
  bool byte_sliced = false;  ///< deliver every reply one byte per write()

  bool enabled() const {
    return disconnect_at >= 0 || stall_at >= 0 || byte_sliced;
  }
};

struct ServerOptions {
  /// Longest request line accepted (bytes, newline excluded).  Overruns get
  /// a typed kFrameTooLarge response and the connection is closed.
  std::size_t max_frame_bytes = 4ull << 20;
  /// Drop a connection idle this long between requests; 0 = never.
  double idle_timeout_seconds = 0.0;
  NetFaultPlan chaos;  ///< test-only fault injection (see above)
};

class LineServer {
 public:
  /// Called once per received line (without the trailing '\n'); the returned
  /// string is sent back as one line.  Must be thread-safe: each connection
  /// is served from its own thread.
  using Handler = std::function<std::string(const std::string& line)>;

  /// Binds and listens on `socket_path` (an existing stale socket file is
  /// removed first).  Throws gsnp::Error when the socket cannot be bound —
  /// e.g. a sandbox with no AF_UNIX support; callers surface that loudly.
  LineServer(std::filesystem::path socket_path, Handler handler,
             ServerOptions options = {});
  ~LineServer();

  LineServer(const LineServer&) = delete;
  LineServer& operator=(const LineServer&) = delete;

  /// Stop accepting, shut down open connections, join all threads, unlink
  /// the socket file.  Idempotent; the destructor calls it.
  void stop();

  const std::filesystem::path& path() const { return path_; }
  const ServerOptions& options() const { return options_; }
  /// Replies written so far (chaos plans index into this counter).
  i64 replies_served() const { return replies_.load(); }

 private:
  void accept_loop();
  void serve_connection(int fd);

  std::filesystem::path path_;
  Handler handler_;
  ServerOptions options_;
  // Atomic: stop() exchanges the fd out while accept_loop() reads it.
  std::atomic<int> listen_fd_{-1};
  std::atomic<bool> stopping_{false};
  std::atomic<i64> replies_{0};
  std::thread acceptor_;
  std::mutex mu_;
  std::vector<int> connection_fds_;
  std::vector<std::thread> connection_threads_;
};

struct ClientOptions {
  /// Per-operation poll deadline (each blocking send/receive wait); a hung
  /// or stalled peer fails the attempt after this long.  0 = wait forever.
  double op_timeout_seconds = 5.0;
  /// Longest reply line this client will buffer before failing the attempt.
  std::size_t max_frame_bytes = 4ull << 20;
  /// Reconnect policy: max_attempts tries per request(), with the seeded
  /// jittered backoff_sequence sleeps between them.  max_attempts <= 1
  /// disables retry entirely.
  core::RetryPolicy retry;
  /// Salt for the backoff jitter stream, so concurrent clients desynchronize
  /// deterministically (same role as the daemon's per-chromosome salt).
  std::string backoff_salt = "line-client";
};

class LineClient {
 public:
  /// Legacy blocking client: connects eagerly (throws gsnp::Error when the
  /// daemon is not listening), no deadlines, no retry — exactly the PR 6
  /// behavior.
  explicit LineClient(const std::filesystem::path& socket_path);

  /// Resilient client: connects lazily on first request(); every request
  /// runs under `options` deadlines and reconnects with jittered backoff on
  /// connection loss, resending the line (see the idempotency note above).
  LineClient(std::filesystem::path socket_path, ClientOptions options);

  ~LineClient();

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  /// Send one line, block for one line back.  Throws gsnp::Error once every
  /// attempt allowed by the options is exhausted (or immediately on the
  /// legacy single-attempt path).
  std::string request(const std::string& line);

  bool connected() const { return fd_ >= 0; }
  /// Connection attempts that had to be made (first connects + reconnects);
  /// a resilience test asserts this grew across an injected disconnect.
  u64 connects() const { return connects_; }

 private:
  void ensure_connected();
  void disconnect();
  std::string attempt(const std::string& line);

  std::filesystem::path path_;
  ClientOptions options_;
  int fd_ = -1;
  u64 connects_ = 0;
  std::string buffer_;  ///< bytes read past the last returned line
};

}  // namespace gsnp::service
