#pragma once
// The job journal codec — the single definition of `job.json` (FORMATS.md
// §12), shared by the daemon (writes a journal per state change, parses on
// recover()) and the spool scrubber (fsck.hpp parses every journal it walks
// and rewrites demoted ones).  One codec, one format: a journal the daemon
// wrote is by construction one fsck can read and vice versa.

#include <string>
#include <string_view>

#include "src/service/daemon.hpp"
#include "src/service/protocol.hpp"

namespace gsnp::service {

/// The parsed content of one `job.json`.
struct JobJournal {
  std::string id;
  JobState state = JobState::kQueued;
  bool resumed = false;
  std::string error;   ///< terminal failure/cancel detail ("" when clean)
  std::string digest;  ///< canonical manifest digest (done jobs only)
  JobSpec spec;        ///< the exact submitted spec (id echoed inside)
};

std::optional<JobState> job_state_from_name(std::string_view name);

/// One JSON line (with trailing '\n'), ready for write_file_atomic.
std::string encode_job_journal(const JobJournal& journal);

/// Parse a complete `job.json`; throws gsnp::Error (or a subclass) on torn,
/// truncated, or semantically invalid journals — the caller decides whether
/// that means "skip" (recover) or "quarantine" (fsck).
JobJournal parse_job_journal(std::string_view text);

}  // namespace gsnp::service
