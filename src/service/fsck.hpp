#pragma once
// The spool scrubber (`gsnp_cli fsck <spool>`, FORMATS.md §13) — walks every
// job directory under `<spool>/jobs/`, verifies the journal / manifest /
// output invariants the formats promise, and classifies each job with a
// stable verdict:
//
//   clean               terminal job, everything it claims verifies
//   resumable           non-terminal job (queued/running/interrupted), or a
//                       done job demoted because an output or digest failed
//                       verification — the next recover() finishes it
//   torn_staging        valid journal plus `.part`/`.tmp` staging residue
//                       (or a torn/corrupt manifest) — removable litter from
//                       a crash mid-publish
//   orphaned            a job directory with no journal at all: outputs
//                       without provenance
//   corrupt_quarantined a journal that exists but does not parse/validate —
//                       nothing in the directory can be trusted
//
// Verdicts are ordered by severity; a job exhibiting several conditions
// reports the worst.  With `repair` set, fsck applies exactly the repairs
// that cannot lose data: staging residue is deleted (outputs re-derive from
// inputs), corrupt manifests are deleted (rebuilt on rerun), done jobs with
// unverifiable outputs are demoted to "interrupted" (rerun produces
// identical bytes), orphaned directories move to `<spool>/lost+found/`, and
// corrupt-journal directories move to `<spool>/quarantine/`.  Repair never
// deletes a published output and never edits a journal except the
// done->interrupted demotion.
//
// Daemon::recover() runs fsck (repairing) before resuming, so a daemon
// restarted onto a mauled spool starts from a scrubbed one.

#include <filesystem>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.hpp"

namespace gsnp::service {

enum class FsckVerdict : u8 {
  kClean,
  kResumable,
  kTornStaging,
  kOrphaned,
  kCorruptQuarantined,
};

const char* fsck_verdict_name(FsckVerdict verdict);
std::optional<FsckVerdict> fsck_verdict_from_name(std::string_view name);

struct FsckOptions {
  bool repair = false;       ///< apply the safe repairs described above
  /// Re-read GSNPOUT2 containers frame by frame (every CRC) instead of only
  /// the file-level CRC-32 the manifest records.  Slower, strictly stronger.
  bool deep_verify = false;
};

struct FsckJobReport {
  std::string job_id;  ///< spool directory name
  FsckVerdict verdict = FsckVerdict::kClean;
  std::vector<std::string> issues;   ///< what failed verification, and where
  std::vector<std::string> repairs;  ///< repair actions actually applied
};

struct FsckReport {
  std::vector<FsckJobReport> jobs;  ///< directory order (sorted, stable)
  u64 repairs_applied = 0;

  u64 count(FsckVerdict verdict) const;
  /// Every job clean — the post-chaos acceptance condition.
  bool all_clean() const;
  /// Nothing needing attention: every job clean or merely resumable.
  bool all_recoverable() const;
  std::string summary() const;  ///< one line: "jobs=N clean=N resumable=..."
};

/// Scrub `<spool>/jobs/*`.  Never throws on corrupt spool content — every
/// malformed artifact becomes a verdict, not an exception (I/O errors on the
/// spool root itself still throw).
FsckReport fsck_spool(const std::filesystem::path& spool_dir,
                      const FsckOptions& options = {});

}  // namespace gsnp::service
