#include "src/service/protocol.hpp"

#include <sstream>

namespace gsnp::service {

const char* error_code_name(ErrorCode code) {
  switch (code) {
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kInvalidArgument: return "invalid_argument";
    case ErrorCode::kQueueFull: return "queue_full";
    case ErrorCode::kPayloadTooLarge: return "payload_too_large";
    case ErrorCode::kQuotaExceeded: return "quota_exceeded";
    case ErrorCode::kDeadlineExceeded: return "deadline_exceeded";
    case ErrorCode::kNotFound: return "not_found";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kStorageFailure: return "storage_failure";
    case ErrorCode::kFrameTooLarge: return "frame_too_large";
    case ErrorCode::kDeviceBudgetExceeded: return "device_budget_exceeded";
    case ErrorCode::kInternal: return "internal";
  }
  return "?";
}

std::optional<ErrorCode> error_code_from_name(std::string_view name) {
  if (name == "bad_request") return ErrorCode::kBadRequest;
  if (name == "invalid_argument") return ErrorCode::kInvalidArgument;
  if (name == "queue_full") return ErrorCode::kQueueFull;
  if (name == "payload_too_large") return ErrorCode::kPayloadTooLarge;
  if (name == "quota_exceeded") return ErrorCode::kQuotaExceeded;
  if (name == "deadline_exceeded") return ErrorCode::kDeadlineExceeded;
  if (name == "not_found") return ErrorCode::kNotFound;
  if (name == "shutting_down") return ErrorCode::kShuttingDown;
  if (name == "storage_failure") return ErrorCode::kStorageFailure;
  if (name == "frame_too_large") return ErrorCode::kFrameTooLarge;
  if (name == "device_budget_exceeded")
    return ErrorCode::kDeviceBudgetExceeded;
  if (name == "internal") return ErrorCode::kInternal;
  return std::nullopt;
}

namespace {

void write_field(std::ostream& os, const char* key, std::string_view value,
                 bool& first) {
  if (!first) os << ',';
  first = false;
  json::write_escaped(os, key);
  os << ':';
  json::write_escaped(os, value);
}

std::string opt_string(const json::Value& obj, const std::string& key,
                       const std::string& fallback = "") {
  const json::Value* v = json::find(obj, key);
  if (v == nullptr || v->kind == json::Value::Kind::kNull) return fallback;
  GSNP_CHECK_MSG(v->kind == json::Value::Kind::kString,
                 "field '" << key << "' is not a string");
  return v->string;
}

double opt_number(const json::Value& obj, const std::string& key,
                  double fallback = 0.0) {
  const json::Value* v = json::find(obj, key);
  if (v == nullptr) return fallback;
  GSNP_CHECK_MSG(v->kind == json::Value::Kind::kNumber,
                 "field '" << key << "' is not a number");
  return v->number;
}

}  // namespace

void encode_job_spec(std::ostream& os, const JobSpec& spec) {
  os << '{';
  bool first = true;
  if (!spec.job_id.empty()) write_field(os, "id", spec.job_id, first);
  write_field(os, "tenant", spec.tenant, first);
  write_field(os, "engine", spec.engine, first);
  if (!spec.output_dir.empty())
    write_field(os, "output_dir", spec.output_dir, first);
  if (spec.window_size != 0) os << ",\"window\":" << spec.window_size;
  if (spec.batch_bytes != 0) os << ",\"batch_bytes\":" << spec.batch_bytes;
  if (spec.deadline_seconds > 0.0)
    os << ",\"deadline\":" << spec.deadline_seconds;
  os << ",\"chromosomes\":[";
  for (std::size_t i = 0; i < spec.chromosomes.size(); ++i) {
    const ChromosomeSpec& c = spec.chromosomes[i];
    if (i != 0) os << ',';
    os << '{';
    bool cf = true;
    write_field(os, "name", c.name, cf);
    write_field(os, "align", c.alignment_file, cf);
    write_field(os, "ref", c.reference_file, cf);
    if (!c.dbsnp_file.empty()) write_field(os, "dbsnp", c.dbsnp_file, cf);
    os << '}';
  }
  os << "]}";
}

JobSpec parse_job_spec(const json::Value& value) {
  GSNP_CHECK_MSG(value.kind == json::Value::Kind::kObject,
                 "job spec is not an object");
  JobSpec spec;
  spec.job_id = opt_string(value, "id");
  spec.tenant = opt_string(value, "tenant", "default");
  spec.engine = opt_string(value, "engine", "gsnp");
  spec.output_dir = opt_string(value, "output_dir");
  spec.window_size = static_cast<u32>(opt_number(value, "window", 0.0));
  spec.batch_bytes = static_cast<u64>(opt_number(value, "batch_bytes", 0.0));
  spec.deadline_seconds = opt_number(value, "deadline", 0.0);
  const json::Value* chroms = json::find(value, "chromosomes");
  if (chroms != nullptr) {
    GSNP_CHECK_MSG(chroms->kind == json::Value::Kind::kArray,
                   "'chromosomes' is not an array");
    for (const json::Value& c : chroms->array) {
      GSNP_CHECK_MSG(c.kind == json::Value::Kind::kObject,
                     "chromosome spec is not an object");
      ChromosomeSpec cs;
      cs.name = opt_string(c, "name");
      cs.alignment_file = opt_string(c, "align");
      cs.reference_file = opt_string(c, "ref");
      cs.dbsnp_file = opt_string(c, "dbsnp");
      spec.chromosomes.push_back(std::move(cs));
    }
  }
  return spec;
}

std::string encode_request(const Request& request) {
  std::ostringstream os;
  os << "{\"op\":";
  json::write_escaped(os, request.op);
  if (!request.job_id.empty()) {
    os << ",\"job_id\":";
    json::write_escaped(os, request.job_id);
  }
  if (request.op == "submit") {
    os << ",\"job\":";
    encode_job_spec(os, request.job);
  }
  os << '}';
  return os.str();
}

Request parse_request(std::string_view line) {
  json::Value doc;
  try {
    doc = json::parse(line);
  } catch (const Error& e) {
    throw ServiceError(ErrorCode::kBadRequest, e.what());
  }
  if (doc.kind != json::Value::Kind::kObject)
    throw ServiceError(ErrorCode::kBadRequest, "request is not an object");
  Request request;
  request.op = opt_string(doc, "op");
  if (request.op.empty())
    throw ServiceError(ErrorCode::kBadRequest, "missing 'op'");
  request.job_id = opt_string(doc, "job_id");
  if (const json::Value* job = json::find(doc, "job"))
    request.job = parse_job_spec(*job);
  return request;
}

std::string encode_response(const Response& response) {
  std::ostringstream os;
  os << "{\"ok\":" << (response.ok ? "true" : "false");
  if (!response.ok) {
    os << ",\"error\":";
    json::write_escaped(os, error_code_name(response.error));
    os << ",\"message\":";
    json::write_escaped(os, response.message);
  }
  for (const auto& [key, value] : response.fields) {
    os << ',';
    json::write_escaped(os, key);
    os << ':';
    json::write_escaped(os, value);
  }
  os << '}';
  return os.str();
}

Response parse_response(std::string_view line) {
  const json::Value doc = json::parse(line);
  GSNP_CHECK_MSG(doc.kind == json::Value::Kind::kObject,
                 "response is not an object");
  Response response;
  response.ok = json::get_bool(doc, "ok");
  for (const auto& [key, value] : doc.object) {
    if (key == "ok") continue;
    if (key == "error") {
      response.error =
          error_code_from_name(value.string).value_or(ErrorCode::kInternal);
      continue;
    }
    if (key == "message") {
      response.message = value.string;
      continue;
    }
    GSNP_CHECK_MSG(value.kind == json::Value::Kind::kString,
                   "response field '" << key << "' is not a string");
    response.fields[key] = value.string;
  }
  return response;
}

}  // namespace gsnp::service
