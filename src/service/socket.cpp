#include "src/service/socket.hpp"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "src/common/error.hpp"
#include "src/service/protocol.hpp"

namespace gsnp::service {

namespace {

int make_unix_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GSNP_CHECK_MSG(fd >= 0,
                 "cannot create AF_UNIX socket: " << std::strerror(errno));
  return fd;
}

sockaddr_un make_address(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string s = path.string();
  GSNP_CHECK_MSG(s.size() < sizeof(addr.sun_path),
                 "socket path too long: " << s);
  std::memcpy(addr.sun_path, s.c_str(), s.size() + 1);
  return addr;
}

/// FNV-1a of the client's salt string -> the u64 backoff_sequence wants.
u64 salt_hash(std::string_view s) {
  u64 h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

/// Wait until `fd` is ready for `events` (POLLIN/POLLOUT).  Returns false on
/// deadline expiry; timeout_seconds <= 0 waits forever.  Errors report as
/// ready (the following read/send surfaces the real errno).
bool wait_ready(int fd, short events, double timeout_seconds) {
  const int timeout_ms =
      timeout_seconds <= 0.0
          ? -1
          : std::max(1, static_cast<int>(timeout_seconds * 1000.0));
  for (;;) {
    pollfd p{};
    p.fd = fd;
    p.events = events;
    const int r = ::poll(&p, 1, timeout_ms);
    if (r > 0) return true;
    if (r == 0) return false;
    if (errno == EINTR) continue;
    return true;
  }
}

/// Write all of `data`.  MSG_NOSIGNAL: a vanished peer is EPIPE on this
/// call, never a process-wide SIGPIPE.  byte_sliced (chaos) issues one-byte
/// writes so readers see maximally fragmented delivery.  Returns false on a
/// broken connection or a POLLOUT deadline.
bool write_all(int fd, std::string_view data, double timeout_seconds,
               bool byte_sliced) {
  std::size_t off = 0;
  while (off < data.size()) {
    if (!wait_ready(fd, POLLOUT, timeout_seconds)) return false;
    const std::size_t want = byte_sliced ? 1 : data.size() - off;
    const ssize_t n = ::send(fd, data.data() + off, want, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool write_line(int fd, const std::string& line, double timeout_seconds = 0.0,
                bool byte_sliced = false) {
  std::string framed = line;
  framed.push_back('\n');
  return write_all(fd, framed, timeout_seconds, byte_sliced);
}

enum class ReadStatus {
  kLine,      ///< a complete line landed in `line`
  kClosed,    ///< EOF or a socket error with no complete line
  kTooLarge,  ///< buffered bytes exceeded max_frame with no newline yet
  kTimeout,   ///< no bytes arrived within timeout_seconds
};

/// Read up to the next '\n' into `line` (not included), buffering extra
/// bytes in `buffer`.  Bounded: never holds more than max_frame bytes of an
/// unterminated line.  timeout_seconds <= 0 blocks forever.
ReadStatus read_line(int fd, std::string& buffer, std::string& line,
                     std::size_t max_frame, double timeout_seconds) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      if (nl > max_frame) return ReadStatus::kTooLarge;
      line.assign(buffer, 0, nl);
      buffer.erase(0, nl + 1);
      return ReadStatus::kLine;
    }
    if (buffer.size() > max_frame) return ReadStatus::kTooLarge;
    if (!wait_ready(fd, POLLIN, timeout_seconds)) return ReadStatus::kTimeout;
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return ReadStatus::kClosed;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

std::string frame_too_large_line(std::size_t max_frame) {
  Response reject;
  reject.ok = false;
  reject.error = ErrorCode::kFrameTooLarge;
  reject.message =
      "request line exceeds " + std::to_string(max_frame) + " bytes";
  return encode_response(reject);
}

}  // namespace

LineServer::LineServer(std::filesystem::path socket_path, Handler handler,
                       ServerOptions options)
    : path_(std::move(socket_path)),
      handler_(std::move(handler)),
      options_(options) {
  GSNP_CHECK_MSG(handler_ != nullptr, "LineServer needs a handler");
  GSNP_CHECK_MSG(options_.max_frame_bytes > 0, "max_frame_bytes must be > 0");
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // stale socket from a dead daemon
  listen_fd_ = make_unix_socket();
  const sockaddr_un addr = make_address(path_);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    GSNP_CHECK_MSG(false, "cannot bind " << path_ << ": "
                                         << std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    std::filesystem::remove(path_, ec);
    GSNP_CHECK_MSG(false, "cannot listen on " << path_ << ": "
                                              << std::strerror(err));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

LineServer::~LineServer() { stop(); }

void LineServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // Closing the listen fd unblocks accept(); shutting down connection fds
  // unblocks their reads.  Exchange the fd out so the accept loop, which
  // re-reads it every iteration, never races the close.
  const int listen_fd = listen_fd_.exchange(-1);
  if (listen_fd >= 0) {
    ::shutdown(listen_fd, SHUT_RDWR);
    ::close(listen_fd);
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

void LineServer::accept_loop() {
  for (;;) {
    const int listen_fd = listen_fd_.load();
    if (listen_fd < 0) return;  // stop() already closed it
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd closed by stop(), or fatal — either way, done
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const std::lock_guard<std::mutex> lock(mu_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void LineServer::serve_connection(int fd) {
  std::string buffer, line;
  while (!stopping_.load()) {
    const ReadStatus status =
        read_line(fd, buffer, line, options_.max_frame_bytes,
                  options_.idle_timeout_seconds);
    if (status == ReadStatus::kTooLarge) {
      // Framing is unrecoverable past the cap — typed reject, then close.
      (void)write_line(fd, frame_too_large_line(options_.max_frame_bytes));
      break;
    }
    if (status != ReadStatus::kLine) break;  // peer closed, or idle deadline

    std::string reply = handler_(line);
    const i64 reply_index = replies_.fetch_add(1);
    const NetFaultPlan& chaos = options_.chaos;
    if (chaos.stall_at >= 0 && reply_index == chaos.stall_at &&
        chaos.stall_seconds > 0.0)
      std::this_thread::sleep_for(
          std::chrono::duration<double>(chaos.stall_seconds));
    if (chaos.disconnect_at >= 0 && reply_index == chaos.disconnect_at) {
      // Mid-frame cut: half the framed reply, then hang up.  The client sees
      // a truncated line followed by EOF and must discard + reconnect.
      std::string framed = reply;
      framed.push_back('\n');
      (void)write_all(fd, std::string_view(framed).substr(0, framed.size() / 2),
                      0.0, false);
      break;
    }
    if (!write_line(fd, reply, 0.0, chaos.byte_sliced)) break;
  }
  ::close(fd);
}

LineClient::LineClient(const std::filesystem::path& socket_path)
    : path_(socket_path) {
  // Legacy semantics: eager connect, no deadlines, single attempt.
  options_.op_timeout_seconds = 0.0;
  options_.retry.max_attempts = 1;
  ensure_connected();
}

LineClient::LineClient(std::filesystem::path socket_path,
                       ClientOptions options)
    : path_(std::move(socket_path)), options_(std::move(options)) {}

LineClient::~LineClient() {
  if (fd_ >= 0) ::close(fd_);
}

void LineClient::ensure_connected() {
  if (fd_ >= 0) return;
  const int fd = make_unix_socket();
  const sockaddr_un addr = make_address(path_);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd);
    GSNP_CHECK_MSG(false, "cannot connect to " << path_ << ": "
                                               << std::strerror(err)
                                               << " (is gsnpd running?)");
  }
  fd_ = fd;
  buffer_.clear();  // stale bytes from a previous connection are meaningless
  ++connects_;
}

void LineClient::disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

std::string LineClient::attempt(const std::string& line) {
  ensure_connected();
  GSNP_CHECK_MSG(
      write_line(fd_, line, options_.op_timeout_seconds),
      "connection lost while sending (or send deadline expired)");
  std::string reply;
  const ReadStatus status =
      read_line(fd_, buffer_, reply, options_.max_frame_bytes,
                options_.op_timeout_seconds);
  GSNP_CHECK_MSG(status != ReadStatus::kTimeout,
                 "no reply within " << options_.op_timeout_seconds
                                    << "s from " << path_);
  GSNP_CHECK_MSG(status != ReadStatus::kTooLarge,
                 "reply exceeds the client frame cap of "
                     << options_.max_frame_bytes << " bytes");
  GSNP_CHECK_MSG(status == ReadStatus::kLine,
                 "connection closed before a reply arrived");
  return reply;
}

std::string LineClient::request(const std::string& line) {
  const int attempts = std::max(1, options_.retry.max_attempts);
  const std::vector<double> sleeps = core::backoff_sequence(
      options_.retry, salt_hash(options_.backoff_salt));
  std::string last_error;
  for (int attempt = 1; attempt <= attempts; ++attempt) {
    try {
      return this->attempt(line);
    } catch (const Error& e) {
      last_error = e.what();
      // A failed attempt may have left a half-read reply or a half-written
      // request on the wire; the only safe recovery is a fresh connection.
      disconnect();
      if (attempt == attempts) break;
      const std::size_t sleep_index = static_cast<std::size_t>(
          std::min<int>(attempt - 1, static_cast<int>(sleeps.size()) - 1));
      if (!sleeps.empty() && sleeps[sleep_index] > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(sleeps[sleep_index]));
    }
  }
  GSNP_CHECK_MSG(false, "request failed after " << attempts << " attempt(s): "
                                                << last_error);
}

}  // namespace gsnp::service
