#include "src/service/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/error.hpp"

namespace gsnp::service {

namespace {

int make_unix_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  GSNP_CHECK_MSG(fd >= 0,
                 "cannot create AF_UNIX socket: " << std::strerror(errno));
  return fd;
}

sockaddr_un make_address(const std::filesystem::path& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string s = path.string();
  GSNP_CHECK_MSG(s.size() < sizeof(addr.sun_path),
                 "socket path too long: " << s);
  std::memcpy(addr.sun_path, s.c_str(), s.size() + 1);
  return addr;
}

/// Write all of `line` plus '\n'; returns false on a broken connection.
bool write_line(int fd, const std::string& line) {
  std::string framed = line;
  framed.push_back('\n');
  std::size_t off = 0;
  while (off < framed.size()) {
    const ssize_t n = ::write(fd, framed.data() + off, framed.size() - off);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

/// Read up to the next '\n' into `line` (not included), buffering extra
/// bytes in `buffer`.  Returns false on EOF/error with no complete line.
bool read_line(int fd, std::string& buffer, std::string& line) {
  for (;;) {
    const std::size_t nl = buffer.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer, 0, nl);
      buffer.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return false;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace

LineServer::LineServer(std::filesystem::path socket_path, Handler handler)
    : path_(std::move(socket_path)), handler_(std::move(handler)) {
  GSNP_CHECK_MSG(handler_ != nullptr, "LineServer needs a handler");
  std::error_code ec;
  std::filesystem::remove(path_, ec);  // stale socket from a dead daemon
  listen_fd_ = make_unix_socket();
  const sockaddr_un addr = make_address(path_);
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    GSNP_CHECK_MSG(false, "cannot bind " << path_ << ": "
                                         << std::strerror(err));
  }
  if (::listen(listen_fd_, 16) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    std::filesystem::remove(path_, ec);
    GSNP_CHECK_MSG(false, "cannot listen on " << path_ << ": "
                                              << std::strerror(err));
  }
  acceptor_ = std::thread([this] { accept_loop(); });
}

LineServer::~LineServer() { stop(); }

void LineServer::stop() {
  if (stopping_.exchange(true)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // Closing the listen fd unblocks accept(); shutting down connection fds
  // unblocks their reads.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const int fd : connection_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  std::vector<std::thread> threads;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    threads.swap(connection_threads_);
  }
  for (std::thread& t : threads)
    if (t.joinable()) t.join();
  std::error_code ec;
  std::filesystem::remove(path_, ec);
}

void LineServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd closed by stop(), or fatal — either way, done
    }
    if (stopping_.load()) {
      ::close(fd);
      return;
    }
    const std::lock_guard<std::mutex> lock(mu_);
    connection_fds_.push_back(fd);
    connection_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void LineServer::serve_connection(int fd) {
  std::string buffer, line;
  while (!stopping_.load() && read_line(fd, buffer, line)) {
    if (!write_line(fd, handler_(line))) break;
  }
  ::close(fd);
}

LineClient::LineClient(const std::filesystem::path& socket_path) {
  fd_ = make_unix_socket();
  const sockaddr_un addr = make_address(socket_path);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    GSNP_CHECK_MSG(false, "cannot connect to " << socket_path << ": "
                                               << std::strerror(err)
                                               << " (is gsnpd running?)");
  }
}

LineClient::~LineClient() {
  if (fd_ >= 0) ::close(fd_);
}

std::string LineClient::request(const std::string& line) {
  GSNP_CHECK_MSG(fd_ >= 0, "client not connected");
  GSNP_CHECK_MSG(write_line(fd_, line), "connection lost while sending");
  std::string reply;
  GSNP_CHECK_MSG(read_line(fd_, buffer_, reply),
                 "connection closed before a reply arrived");
  return reply;
}

}  // namespace gsnp::service
