#include "src/service/dispatch.hpp"

#include <sstream>

namespace gsnp::service {

namespace {

std::string format_seconds(double seconds) {
  std::ostringstream os;
  os.precision(6);
  os << std::fixed << seconds;
  return os.str();
}

void fill_status_fields(const JobStatus& s, const std::string& prefix,
                        std::map<std::string, std::string>& fields) {
  fields[prefix + "job_id"] = s.job_id;
  fields[prefix + "tenant"] = s.tenant;
  fields[prefix + "engine"] = s.engine;
  fields[prefix + "state"] = job_state_name(s.state);
  fields[prefix + "chromosomes_total"] = std::to_string(s.chromosomes_total);
  fields[prefix + "chromosomes_done"] = std::to_string(s.chromosomes_done);
  if (s.degraded) fields[prefix + "degraded"] = "true";
  if (s.resumed) fields[prefix + "resumed"] = "true";
  if (!s.error.empty()) fields[prefix + "error"] = s.error;
  if (!s.manifest_digest.empty())
    fields[prefix + "manifest_digest"] = s.manifest_digest;
  fields[prefix + "manifest_file"] = s.manifest_file.string();
  fields[prefix + "output_dir"] = s.output_dir.string();
  fields[prefix + "run_seconds"] = format_seconds(s.run_seconds);
}

}  // namespace

Response handle_request(Daemon& daemon, const Request& request) {
  Response response;
  try {
    if (request.op == "ping") {
      response.ok = true;
      response.fields["pong"] = "gsnpd";
    } else if (request.op == "submit") {
      response.ok = true;
      response.fields["job_id"] = daemon.submit(request.job);
    } else if (request.op == "status") {
      response.ok = true;
      if (!request.job_id.empty()) {
        fill_status_fields(daemon.status(request.job_id), "", response.fields);
      } else {
        const std::vector<JobStatus> all = daemon.jobs();
        response.fields["jobs"] = std::to_string(all.size());
        for (std::size_t i = 0; i < all.size(); ++i)
          fill_status_fields(all[i], "job." + std::to_string(i) + ".",
                             response.fields);
      }
    } else if (request.op == "cancel") {
      daemon.cancel(request.job_id);
      response.ok = true;
      response.fields["job_id"] = request.job_id;
    } else if (request.op == "stats") {
      const DaemonStats s = daemon.stats();
      response.ok = true;
      response.fields["submitted"] = std::to_string(s.submitted);
      response.fields["admitted"] = std::to_string(s.admitted);
      response.fields["completed"] = std::to_string(s.completed);
      response.fields["failed"] = std::to_string(s.failed);
      response.fields["cancelled"] = std::to_string(s.cancelled);
      response.fields["interrupted"] = std::to_string(s.interrupted);
      response.fields["shed_queue_full"] = std::to_string(s.shed_queue_full);
      response.fields["shed_quota"] = std::to_string(s.shed_quota);
      response.fields["shed_payload"] = std::to_string(s.shed_payload);
      response.fields["rejected_bad_request"] =
          std::to_string(s.rejected_bad_request);
      response.fields["rejected_device_budget"] =
          std::to_string(s.rejected_device_budget);
      response.fields["chromosomes_done"] =
          std::to_string(s.chromosomes_done);
      response.fields["active"] = std::to_string(s.active);
      response.fields["queue_depth"] = std::to_string(s.queue_depth);
      response.fields["workers_busy"] = std::to_string(s.workers_busy);
      response.fields["spool_bytes"] = std::to_string(s.spool_bytes);
      response.fields["eventlog_write_failures"] =
          std::to_string(s.eventlog_write_failures);
    } else if (request.op == "metrics") {
      response.ok = true;
      response.fields["format"] = "prometheus-text-0.0.4";
      response.fields["text"] = daemon.prometheus_text();
    } else if (request.op == "health") {
      const DaemonHealth h = daemon.health();
      response.ok = true;
      response.fields["ready"] = h.ready ? "true" : "false";
      response.fields["spool_writable"] = h.spool_writable ? "true" : "false";
      response.fields["workers_alive"] = h.workers_alive ? "true" : "false";
      response.fields["shutting_down"] = h.shutting_down ? "true" : "false";
      response.fields["queue_depth"] = std::to_string(h.queue_depth);
      response.fields["queue_capacity"] = std::to_string(h.queue_capacity);
      response.fields["active_jobs"] = std::to_string(h.active_jobs);
    } else if (request.op == "shutdown") {
      response.ok = true;
      response.fields["stopping"] = "true";
    } else {
      response.error = ErrorCode::kBadRequest;
      response.message = "unknown op '" + request.op + "'";
    }
  } catch (const ServiceError& e) {
    response.ok = false;
    response.error = e.code();
    response.message = e.what();
    response.fields.clear();
  } catch (const std::exception& e) {
    response.ok = false;
    response.error = ErrorCode::kInternal;
    response.message = e.what();
    response.fields.clear();
  }
  return response;
}

std::string handle_line(Daemon& daemon, const std::string& line) {
  try {
    return encode_response(handle_request(daemon, parse_request(line)));
  } catch (const ServiceError& e) {
    Response response;
    response.error = e.code();
    response.message = e.what();
    return encode_response(response);
  } catch (const std::exception& e) {
    Response response;
    response.error = ErrorCode::kBadRequest;
    response.message = e.what();
    return encode_response(response);
  }
}

}  // namespace gsnp::service
