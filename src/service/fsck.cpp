#include "src/service/fsck.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "src/common/atomic_file.hpp"
#include "src/common/crc32.hpp"
#include "src/core/output_codec.hpp"
#include "src/core/run_manifest.hpp"
#include "src/service/journal.hpp"

namespace gsnp::service {

namespace {

constexpr const char* kVerdictNames[] = {
    "clean", "resumable", "torn_staging", "orphaned", "corrupt_quarantined",
};
constexpr int kVerdictCount = sizeof(kVerdictNames) / sizeof(kVerdictNames[0]);

/// Verdicts are ordered by severity in the enum; a job keeps the worst one
/// observed across all its checks.
void worsen(FsckJobReport& report, FsckVerdict verdict) {
  if (static_cast<u8>(verdict) > static_cast<u8>(report.verdict))
    report.verdict = verdict;
}

std::string read_text(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool is_staging_name(const std::string& name) {
  return ends_with(name, ".part") || ends_with(name, ".tmp");
}

/// Move a whole job directory aside (lost+found / quarantine), dodging name
/// collisions from repeated fsck runs with a numeric suffix.
void move_dir_aside(const std::filesystem::path& dir,
                    const std::filesystem::path& destination_root,
                    FsckJobReport& report, u64& repairs) {
  std::filesystem::create_directories(destination_root);
  std::filesystem::path destination = destination_root / dir.filename();
  for (int n = 1; std::filesystem::exists(destination); ++n)
    destination = destination_root / (dir.filename().string() + "." +
                                      std::to_string(n));
  std::filesystem::rename(dir, destination);
  report.repairs.push_back("moved " + dir.filename().string() + " to " +
                           destination.string());
  ++repairs;
}

/// Delete `.part`/`.tmp` staging residue for this job: everything under the
/// job directory, plus — when the spec published into an external output
/// directory — only files namespaced by this job's id (`<id>.*`), so fsck of
/// one job never touches a neighbour sharing that directory.
void scan_staging(const std::filesystem::path& dir,
                  const std::string& job_id,
                  const std::filesystem::path& output_dir,
                  const FsckOptions& options, FsckJobReport& report,
                  u64& repairs) {
  std::vector<std::filesystem::path> torn;
  std::error_code ec;
  for (auto it = std::filesystem::recursive_directory_iterator(dir, ec);
       !ec && it != std::filesystem::recursive_directory_iterator(); ++it)
    if (it->is_regular_file() && is_staging_name(it->path().filename().string()))
      torn.push_back(it->path());
  const bool external_output =
      !output_dir.empty() &&
      output_dir.lexically_normal().string().rfind(
          dir.lexically_normal().string(), 0) != 0;
  if (external_output && std::filesystem::exists(output_dir)) {
    for (const auto& entry : std::filesystem::directory_iterator(output_dir)) {
      const std::string name = entry.path().filename().string();
      if (entry.is_regular_file() && is_staging_name(name) &&
          name.rfind(job_id + ".", 0) == 0)
        torn.push_back(entry.path());
    }
  }
  std::sort(torn.begin(), torn.end());
  for (const std::filesystem::path& path : torn) {
    worsen(report, FsckVerdict::kTornStaging);
    report.issues.push_back("torn staging file " + path.string());
    if (options.repair) {
      std::filesystem::remove(path);
      report.repairs.push_back("removed " + path.string());
      ++repairs;
    }
  }
}

}  // namespace

const char* fsck_verdict_name(FsckVerdict verdict) {
  const int index = static_cast<int>(verdict);
  GSNP_CHECK_MSG(index >= 0 && index < kVerdictCount,
                 "invalid FsckVerdict " << index);
  return kVerdictNames[index];
}

std::optional<FsckVerdict> fsck_verdict_from_name(std::string_view name) {
  for (int i = 0; i < kVerdictCount; ++i)
    if (name == kVerdictNames[i]) return static_cast<FsckVerdict>(i);
  return std::nullopt;
}

u64 FsckReport::count(FsckVerdict verdict) const {
  u64 n = 0;
  for (const FsckJobReport& job : jobs)
    if (job.verdict == verdict) ++n;
  return n;
}

bool FsckReport::all_clean() const {
  return count(FsckVerdict::kClean) == jobs.size();
}

bool FsckReport::all_recoverable() const {
  return count(FsckVerdict::kClean) + count(FsckVerdict::kResumable) ==
         jobs.size();
}

std::string FsckReport::summary() const {
  std::ostringstream os;
  os << "jobs=" << jobs.size();
  for (int i = 0; i < kVerdictCount; ++i) {
    const auto verdict = static_cast<FsckVerdict>(i);
    os << ' ' << fsck_verdict_name(verdict) << '=' << count(verdict);
  }
  os << " repairs=" << repairs_applied;
  return os.str();
}

FsckReport fsck_spool(const std::filesystem::path& spool_dir,
                      const FsckOptions& options) {
  FsckReport report;
  const std::filesystem::path jobs_root = spool_dir / "jobs";
  if (!std::filesystem::exists(jobs_root)) return report;

  std::vector<std::filesystem::path> dirs;
  for (const auto& entry : std::filesystem::directory_iterator(jobs_root))
    if (entry.is_directory()) dirs.push_back(entry.path());
  std::sort(dirs.begin(), dirs.end());

  for (const std::filesystem::path& dir : dirs) {
    FsckJobReport job;
    job.job_id = dir.filename().string();

    // -- journal: the root of trust for everything else in the directory.
    const std::filesystem::path journal_path = dir / "job.json";
    if (!std::filesystem::exists(journal_path)) {
      worsen(job, FsckVerdict::kOrphaned);
      job.issues.push_back("no job.json journal (outputs without provenance)");
      if (options.repair)
        move_dir_aside(dir, spool_dir / "lost+found", job,
                       report.repairs_applied);
      report.jobs.push_back(std::move(job));
      continue;
    }

    JobJournal journal;
    bool journal_ok = false;
    try {
      journal = parse_job_journal(read_text(journal_path));
      GSNP_CHECK_MSG(journal.id == job.job_id,
                     "journal id '" << journal.id
                                    << "' does not match directory");
      journal_ok = true;
    } catch (const Error& e) {
      worsen(job, FsckVerdict::kCorruptQuarantined);
      job.issues.push_back(std::string("journal does not verify: ") +
                           e.what());
      if (options.repair)
        move_dir_aside(dir, spool_dir / "quarantine", job,
                       report.repairs_applied);
      report.jobs.push_back(std::move(job));
      continue;
    }
    (void)journal_ok;

    const std::filesystem::path output_dir =
        journal.spec.output_dir.empty()
            ? dir / "out"
            : std::filesystem::path(journal.spec.output_dir);

    // -- staging residue: `.part`/`.tmp` files are crash litter by contract
    // (every publisher stages then renames), always safe to delete.
    scan_staging(dir, job.job_id, output_dir, options, job,
                 report.repairs_applied);

    // -- manifest: optional for unfinished jobs, required for done ones.
    const std::filesystem::path manifest_path = dir / "manifest.json";
    core::RunManifest manifest;
    bool manifest_ok = false;
    if (std::filesystem::exists(manifest_path)) {
      try {
        manifest = core::read_run_manifest(manifest_path);
        manifest_ok = true;
      } catch (const Error& e) {
        worsen(job, FsckVerdict::kTornStaging);
        job.issues.push_back(std::string("manifest does not verify: ") +
                             e.what());
        if (options.repair) {
          std::filesystem::remove(manifest_path);
          job.repairs.push_back("removed corrupt " + manifest_path.string());
          ++report.repairs_applied;
        }
      }
    }

    // -- done jobs must prove their claim: every recorded output exists with
    // the journaled size and CRC, and the journal digest matches the
    // manifest.  Any miss demotes the job to "interrupted" — rerunning a
    // deterministic job is always safe; trusting a wrong "done" never is.
    bool demote = false;
    if (journal.state == JobState::kDone) {
      if (!manifest_ok) {
        demote = true;
        if (!std::filesystem::exists(manifest_path))
          job.issues.push_back("done job has no manifest.json");
      } else {
        for (const core::ManifestEntry& entry : manifest.chromosomes) {
          if (entry.status != "done") continue;
          const std::filesystem::path out = output_dir / entry.output;
          std::error_code ec;
          const u64 bytes = std::filesystem::file_size(out, ec);
          if (ec) {
            demote = true;
            job.issues.push_back("missing output " + out.string());
            continue;
          }
          if (bytes != entry.output_bytes) {
            demote = true;
            job.issues.push_back(
                "output " + out.string() + " is " + std::to_string(bytes) +
                " bytes, manifest says " + std::to_string(entry.output_bytes));
            continue;
          }
          if (crc32_file(out) != entry.output_crc32) {
            demote = true;
            job.issues.push_back("output " + out.string() +
                                 " fails its manifest CRC-32");
            continue;
          }
          if (options.deep_verify && ends_with(entry.output, ".snp")) {
            try {
              std::string seq_name;
              (void)core::read_snp_compressed_file(out, seq_name);
            } catch (const Error& e) {
              demote = true;
              job.issues.push_back("output " + out.string() +
                                   " fails frame verification: " + e.what());
            }
          }
        }
        if (!journal.digest.empty() &&
            core::manifest_digest(manifest) != journal.digest) {
          demote = true;
          job.issues.push_back(
              "journal digest does not match the manifest contents");
        }
      }
      if (demote) {
        worsen(job, FsckVerdict::kResumable);
        if (options.repair) {
          JobJournal demoted = journal;
          demoted.state = JobState::kInterrupted;
          demoted.digest.clear();
          write_file_atomic(journal_path, encode_job_journal(demoted));
          job.repairs.push_back("demoted job.json to interrupted");
          ++report.repairs_applied;
        }
      }
    } else if (!terminal_job_state(journal.state)) {
      // queued/running/interrupted: unfinished by definition — the next
      // recover() picks it up.  Not an issue, just not clean.
      worsen(job, FsckVerdict::kResumable);
    }

    report.jobs.push_back(std::move(job));
  }
  return report;
}

}  // namespace gsnp::service
