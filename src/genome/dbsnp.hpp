#pragma once
// Known-SNP prior table ("dbSNP" in SOAPsnp terms).
//
// SOAPsnp's third input file lists, for known polymorphic sites, the allele
// frequencies observed in the population and whether the site is validated.
// The Bayesian posterior uses these as a site-specific genotype prior; sites
// absent from the table use the genome-wide novel-SNP prior.
//
// Text format (one site per line, '#' comments allowed):
//   <seq-name> <pos> <freqA> <freqC> <freqG> <freqT> <validated 0|1>

#include <array>
#include <filesystem>
#include <iosfwd>
#include <vector>

#include "src/common/ingest.hpp"
#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/genome/synthetic.hpp"

namespace gsnp::genome {

struct KnownSnpEntry {
  u64 pos = 0;
  std::array<double, kNumBases> freq = {0, 0, 0, 0};
  bool validated = false;
};

/// A per-sequence table of known SNP sites, sorted by position.
class DbSnpTable {
 public:
  DbSnpTable() = default;
  DbSnpTable(std::string seq_name, std::vector<KnownSnpEntry> entries);

  const std::string& seq_name() const { return seq_name_; }
  const std::vector<KnownSnpEntry>& entries() const { return entries_; }
  std::size_t size() const { return entries_.size(); }

  /// Entry at `pos`, or nullptr if the site is not a known SNP.
  const KnownSnpEntry* find(u64 pos) const;

 private:
  std::string seq_name_;
  std::vector<KnownSnpEntry> entries_;
};

/// Build a prior table covering a fraction of planted SNPs (those flagged
/// in_dbsnp), plus `decoy_rate` * |genome| known sites where the individual is
/// actually homozygous reference (dbSNP lists population polymorphisms, most
/// of which any one individual does not carry).
DbSnpTable make_dbsnp(const Reference& ref,
                      const std::vector<PlantedSnp>& snps,
                      double decoy_rate, u64 seed);

/// Text serialization.  Reading validates every line (7 fields, frequencies
/// finite and within [0, 1], positions strictly increasing and — when
/// `reference_length` is non-zero — inside the reference); violations raise
/// gsnp::ParseError with file/line/field/reason.  A lenient policy skips bad
/// lines into its quarantine file instead, bounded by the error budget, with
/// the breakdown reported through `stats_out`.
void write_dbsnp(std::ostream& out, const DbSnpTable& table);
void write_dbsnp_file(const std::filesystem::path& path,
                      const DbSnpTable& table);
DbSnpTable read_dbsnp(std::istream& in, const std::string& label = "<dbsnp>",
                      const IngestPolicy& policy = {},
                      IngestStats* stats_out = nullptr,
                      u64 reference_length = 0);
DbSnpTable read_dbsnp_file(const std::filesystem::path& path,
                           const IngestPolicy& policy = {},
                           IngestStats* stats_out = nullptr,
                           u64 reference_length = 0);

}  // namespace gsnp::genome
