#include "src/genome/synthetic.hpp"

#include <algorithm>

#include "src/common/error.hpp"

namespace gsnp::genome {

Reference generate_reference(const GenomeSpec& spec) {
  GSNP_CHECK_MSG(spec.gc_content >= 0.0 && spec.gc_content <= 1.0,
                 "gc_content=" << spec.gc_content);
  Rng rng(spec.seed);
  std::vector<u8> bases(spec.length);
  for (auto& b : bases) {
    if (spec.n_gap_rate > 0.0 && rng.bernoulli(spec.n_gap_rate)) {
      b = kInvalidBase;
      continue;
    }
    // Choose GC vs AT, then one of the two bases within the class.
    const bool gc = rng.bernoulli(spec.gc_content);
    const bool second = rng.bernoulli(0.5);
    b = gc ? (second ? 2 /*G*/ : 1 /*C*/) : (second ? 3 /*T*/ : 0 /*A*/);
  }
  return Reference(spec.name, std::move(bases));
}

u8 draw_alt_allele(u8 ref_base, double transition_bias, Rng& rng) {
  GSNP_CHECK(ref_base < kNumBases);
  // One transition partner, two transversion partners; weight the transition
  // by `transition_bias` relative to each transversion.
  const u8 transition = static_cast<u8>(ref_base ^ 2);
  u8 transversions[2];
  int n = 0;
  for (u8 b = 0; b < kNumBases; ++b)
    if (b != ref_base && b != transition) transversions[n++] = b;
  const double total = transition_bias + 2.0;
  const double draw = rng.uniform_double() * total;
  if (draw < transition_bias) return transition;
  return draw < transition_bias + 1.0 ? transversions[0] : transversions[1];
}

std::vector<PlantedSnp> plant_snps(const Reference& ref,
                                   const SnpPlantSpec& spec) {
  Rng rng(spec.seed);
  std::vector<PlantedSnp> snps;
  const u64 n = ref.size();
  snps.reserve(static_cast<std::size_t>(spec.snp_rate * 1.3 * n) + 16);
  for (u64 pos = 0; pos < n; ++pos) {
    const u8 rb = ref.base(pos);
    if (rb >= kNumBases) continue;  // never plant on an 'N' gap
    if (!rng.bernoulli(spec.snp_rate)) continue;
    const u8 alt = draw_alt_allele(rb, spec.transition_bias, rng);
    PlantedSnp snp;
    snp.pos = pos;
    snp.ref_base = rb;
    if (rng.bernoulli(spec.het_fraction)) {
      snp.genotype = {std::min(rb, alt), std::max(rb, alt)};
    } else {
      snp.genotype = {alt, alt};
    }
    snp.in_dbsnp = rng.bernoulli(spec.known_fraction);
    snps.push_back(snp);
  }
  return snps;  // generated in position order
}

Diploid::Diploid(const Reference& ref, std::vector<PlantedSnp> snps)
    : ref_(&ref), snps_(std::move(snps)) {
  GSNP_CHECK_MSG(
      std::is_sorted(snps_.begin(), snps_.end(),
                     [](const auto& a, const auto& b) { return a.pos < b.pos; }),
      "planted SNPs must be sorted by position");
}

const PlantedSnp* Diploid::find(u64 pos) const {
  const auto it = std::lower_bound(
      snps_.begin(), snps_.end(), pos,
      [](const PlantedSnp& s, u64 p) { return s.pos < p; });
  return (it != snps_.end() && it->pos == pos) ? &*it : nullptr;
}

Genotype Diploid::genotype_at(u64 pos) const {
  if (const PlantedSnp* snp = find(pos)) return snp->genotype;
  const u8 rb = ref_->base(pos);
  return {rb, rb};
}

u8 Diploid::haplotype_base(u64 pos, int hap) const {
  GSNP_CHECK(hap == 0 || hap == 1);
  if (const PlantedSnp* snp = find(pos))
    return hap == 0 ? snp->genotype.allele1 : snp->genotype.allele2;
  return ref_->base(pos);
}

std::vector<HotspotIsland> place_hotspot_islands(u64 genome_length,
                                                 const HotspotSpec& spec) {
  GSNP_CHECK_MSG(spec.island_length > 0 &&
                     spec.island_length <= genome_length,
                 "island_length=" << spec.island_length
                                  << " genome_length=" << genome_length);
  GSNP_CHECK_MSG(spec.multiplier_lo >= 1.0 &&
                     spec.multiplier_hi >= spec.multiplier_lo,
                 "multiplier range [" << spec.multiplier_lo << ", "
                                      << spec.multiplier_hi << "]");
  GSNP_CHECK_MSG(static_cast<u64>(spec.islands) * spec.island_length <=
                     genome_length,
                 "islands do not fit the genome");

  Rng rng(spec.seed);
  std::vector<HotspotIsland> islands;
  islands.reserve(spec.islands);
  const u64 max_start = genome_length - spec.island_length;

  // Rejection-sample non-overlapping starts.  Placement is sparse in every
  // intended use (a few kb of island per Mb of genome), so bounded retries
  // suffice; the hard cap keeps a pathological spec from spinning.
  const auto overlaps = [&](u64 start) {
    for (const HotspotIsland& h : islands) {
      if (start < h.start + h.length && h.start < start + spec.island_length)
        return true;
    }
    return false;
  };
  for (u32 i = 0; i < spec.islands; ++i) {
    u64 start = rng.uniform(max_start + 1);
    int attempts = 0;
    while (overlaps(start)) {
      GSNP_CHECK_MSG(++attempts < 1024, "cannot place non-overlapping island "
                                            << i << " after 1024 attempts");
      start = rng.uniform(max_start + 1);
    }
    const double mult =
        spec.multiplier_lo +
        rng.uniform_double() * (spec.multiplier_hi - spec.multiplier_lo);
    islands.push_back({start, spec.island_length, mult});
  }
  std::sort(islands.begin(), islands.end(),
            [](const HotspotIsland& a, const HotspotIsland& b) {
              return a.start < b.start;
            });
  return islands;
}

}  // namespace gsnp::genome
