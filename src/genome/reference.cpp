#include "src/genome/reference.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace gsnp::genome {

std::string Reference::substring(u64 pos, u64 len) const {
  GSNP_CHECK_MSG(pos + len <= size(), "substring out of range");
  std::string s;
  s.reserve(len);
  for (u64 i = 0; i < len; ++i) s.push_back(char_from_base(bases_[pos + i]));
  return s;
}

std::vector<Reference> read_fasta(std::istream& in) {
  std::vector<Reference> refs;
  std::string name;
  std::vector<u8> bases;
  bool have_seq = false;

  const auto flush = [&] {
    if (have_seq) refs.emplace_back(std::move(name), std::move(bases));
    name.clear();
    bases.clear();
  };

  std::string line;
  while (std::getline(in, line)) {
    const std::string_view body = trim(line);
    if (body.empty()) continue;
    if (body.front() == '>') {
      flush();
      // Header: sequence name is the first whitespace-delimited token.
      const auto rest = trim(body.substr(1));
      const auto space = rest.find(' ');
      name = std::string(space == std::string_view::npos ? rest
                                                         : rest.substr(0, space));
      have_seq = true;
      GSNP_CHECK_MSG(!name.empty(), "FASTA header without a name");
    } else {
      GSNP_CHECK_MSG(have_seq, "FASTA data before first '>' header");
      for (const char c : body) {
        // Unknown / ambiguity codes are stored as 'N'.
        bases.push_back(base_from_char(c));
      }
    }
  }
  flush();
  return refs;
}

std::vector<Reference> read_fasta_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  GSNP_CHECK_MSG(in.good(), "cannot open FASTA file " << path);
  return read_fasta(in);
}

void write_fasta(std::ostream& out, const Reference& ref, int line_width) {
  GSNP_CHECK(line_width > 0);
  out << '>' << ref.name() << '\n';
  const u64 n = ref.size();
  for (u64 i = 0; i < n; i += static_cast<u64>(line_width)) {
    const u64 len = std::min<u64>(line_width, n - i);
    out << ref.substring(i, len) << '\n';
  }
}

void write_fasta_file(const std::filesystem::path& path,
                      const std::vector<Reference>& refs, int line_width) {
  std::ofstream out(path);
  GSNP_CHECK_MSG(out.good(), "cannot open FASTA file for write " << path);
  for (const auto& ref : refs) write_fasta(out, ref, line_width);
}

}  // namespace gsnp::genome
