#include "src/genome/reference.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/fs_fault.hpp"
#include "src/common/ingest.hpp"
#include "src/common/strings.hpp"

namespace gsnp::genome {

/// Memory-DoS guard for single-line FASTA (a whole human chromosome on one
/// line is ~250 MB; 1 GiB leaves headroom without letting a corrupt stream
/// buffer unbounded bytes).
inline constexpr u64 kMaxFastaLineBytes = u64{1} << 30;

std::string Reference::substring(u64 pos, u64 len) const {
  GSNP_CHECK_MSG(pos + len <= size(), "substring out of range");
  std::string s;
  s.reserve(len);
  for (u64 i = 0; i < len; ++i) s.push_back(char_from_base(bases_[pos + i]));
  return s;
}

std::vector<Reference> read_fasta(std::istream& in, const std::string& label) {
  std::vector<Reference> refs;
  std::string name;
  std::vector<u8> bases;
  bool have_seq = false;
  ParseContext ctx;
  ctx.file = label;

  const auto flush = [&] {
    if (have_seq) refs.emplace_back(std::move(name), std::move(bases));
    name.clear();
    bases.clear();
  };

  std::string line;
  while (std::getline(in, line)) {
    ++ctx.line_no;
    // Single-line FASTA puts a whole sequence on one line, so the cap here
    // is a memory-DoS guard, not a format limit.
    if (line.size() > kMaxFastaLineBytes)
      ctx.fail("line", IngestReason::kLineTooLong,
               std::to_string(line.size()) + " bytes in one FASTA line");
    const std::string_view body = trim(line);
    if (body.empty()) continue;
    if (body.front() == '>') {
      flush();
      // Header: sequence name is the first whitespace-delimited token.
      const auto rest = trim(body.substr(1));
      const auto space = rest.find(' ');
      name = std::string(space == std::string_view::npos ? rest
                                                         : rest.substr(0, space));
      have_seq = true;
      if (name.empty())
        ctx.fail("header", IngestReason::kBadHeader,
                 "FASTA header without a name");
    } else {
      if (!have_seq)
        ctx.fail("sequence", IngestReason::kBadHeader,
                 "FASTA data before the first '>' header");
      for (const char c : body) {
        // Letters only: known bases get their 2-bit code, IUPAC ambiguity
        // codes are stored as 'N'; anything else is file corruption.
        if (!((c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z')))
          ctx.fail("sequence", IngestReason::kBadField,
                   "non-base character 0x" + std::to_string(
                       static_cast<unsigned>(static_cast<unsigned char>(c))));
        bases.push_back(base_from_char(c));
      }
    }
  }
  flush();
  return refs;
}

std::vector<Reference> read_fasta_file(const std::filesystem::path& path) {
  std::ifstream in(path);
  GSNP_CHECK_MSG(in.good(), "cannot open FASTA file " << path);
  return read_fasta(in, path.string());
}

void write_fasta(std::ostream& out, const Reference& ref, int line_width) {
  GSNP_CHECK(line_width > 0);
  out << '>' << ref.name() << '\n';
  const u64 n = ref.size();
  for (u64 i = 0; i < n; i += static_cast<u64>(line_width)) {
    const u64 len = std::min<u64>(line_width, n - i);
    out << ref.substring(i, len) << '\n';
  }
}

void write_fasta_file(const std::filesystem::path& path,
                      const std::vector<Reference>& refs, int line_width) {
  std::ofstream out(path);
  GSNP_CHECK_MSG(out.good(), "cannot open FASTA file for write " << path);
  std::ostringstream buf;
  for (const auto& ref : refs) write_fasta(buf, ref, line_width);
  fsfault::write(out, path, buf.str());
  out.flush();
  fsfault::check_stream(out, path, "flush");
}

}  // namespace gsnp::genome
