#pragma once
// Reference sequence model and FASTA I/O.
//
// A Reference is one named DNA sequence stored as 2-bit base codes (with
// kInvalidBase marking 'N').  SNP detection consumes the reference both to
// compute genotype priors (homozygous-reference gets most of the mass) and to
// emit column 3 of the output table.

#include <filesystem>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace gsnp::genome {

class Reference {
 public:
  Reference() = default;
  Reference(std::string name, std::vector<u8> bases)
      : name_(std::move(name)), bases_(std::move(bases)) {}

  const std::string& name() const { return name_; }
  u64 size() const { return bases_.size(); }
  bool empty() const { return bases_.empty(); }

  /// Base code at `pos` (0..3 or kInvalidBase for 'N').
  u8 base(u64 pos) const { return bases_[pos]; }
  void set_base(u64 pos, u8 b) { bases_[pos] = b; }

  const std::vector<u8>& bases() const { return bases_; }

  /// ASCII rendering of a subsequence [pos, pos+len).
  std::string substring(u64 pos, u64 len) const;

 private:
  std::string name_;
  std::vector<u8> bases_;
};

/// Parse all sequences from a FASTA stream.  Throws gsnp::ParseError (with
/// `label` as the file name and a 1-based line number) on malformed input:
/// data before the first header, a header without a name, or sequence
/// characters that are not letters (IUPAC ambiguity codes are letters and
/// map to 'N'; digits, punctuation, and control bytes are corruption).
/// The reference is the coordinate system every other input is validated
/// against, so FASTA parsing is always strict — there is no lenient mode.
std::vector<Reference> read_fasta(std::istream& in,
                                  const std::string& label = "<fasta>");
std::vector<Reference> read_fasta_file(const std::filesystem::path& path);

/// Write sequences in FASTA format with the given line width.
void write_fasta(std::ostream& out, const Reference& ref, int line_width = 70);
void write_fasta_file(const std::filesystem::path& path,
                      const std::vector<Reference>& refs, int line_width = 70);

}  // namespace gsnp::genome
