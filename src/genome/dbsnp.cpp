#include "src/genome/dbsnp.hpp"

#include <algorithm>
#include <fstream>
#include <istream>
#include <ostream>

#include "src/common/error.hpp"
#include "src/common/strings.hpp"

namespace gsnp::genome {

DbSnpTable::DbSnpTable(std::string seq_name, std::vector<KnownSnpEntry> entries)
    : seq_name_(std::move(seq_name)), entries_(std::move(entries)) {
  GSNP_CHECK_MSG(std::is_sorted(entries_.begin(), entries_.end(),
                                [](const auto& a, const auto& b) {
                                  return a.pos < b.pos;
                                }),
                 "dbSNP entries must be sorted by position");
}

const KnownSnpEntry* DbSnpTable::find(u64 pos) const {
  const auto it = std::lower_bound(
      entries_.begin(), entries_.end(), pos,
      [](const KnownSnpEntry& e, u64 p) { return e.pos < p; });
  return (it != entries_.end() && it->pos == pos) ? &*it : nullptr;
}

DbSnpTable make_dbsnp(const Reference& ref,
                      const std::vector<PlantedSnp>& snps,
                      double decoy_rate, u64 seed) {
  Rng rng(seed);
  std::vector<KnownSnpEntry> entries;

  // Real planted SNPs flagged as known: frequency mass split between the
  // reference allele and the alternate allele(s).
  for (const auto& snp : snps) {
    if (!snp.in_dbsnp) continue;
    KnownSnpEntry e;
    e.pos = snp.pos;
    const u8 alt = snp.genotype.allele1 == snp.ref_base ? snp.genotype.allele2
                                                        : snp.genotype.allele1;
    const double alt_freq = 0.05 + 0.45 * rng.uniform_double();
    e.freq[snp.ref_base] = 1.0 - alt_freq;
    e.freq[alt] += alt_freq;
    e.validated = rng.bernoulli(0.7);
    entries.push_back(e);
  }

  // Decoy sites: known population polymorphisms this individual doesn't carry.
  const u64 n_decoys = static_cast<u64>(decoy_rate * ref.size());
  for (u64 i = 0; i < n_decoys; ++i) {
    const u64 pos = rng.uniform(ref.size());
    const u8 rb = ref.base(pos);
    if (rb >= kNumBases) continue;
    KnownSnpEntry e;
    e.pos = pos;
    const u8 alt = draw_alt_allele(rb, 2.0, rng);
    const double alt_freq = 0.01 + 0.2 * rng.uniform_double();
    e.freq[rb] = 1.0 - alt_freq;
    e.freq[alt] += alt_freq;
    e.validated = rng.bernoulli(0.5);
    entries.push_back(e);
  }

  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.pos < b.pos; });
  // Deduplicate colliding positions (keep the first, i.e. prefer real SNPs
  // which were inserted before decoys at equal positions after stable sort).
  entries.erase(std::unique(entries.begin(), entries.end(),
                            [](const auto& a, const auto& b) {
                              return a.pos == b.pos;
                            }),
                entries.end());
  return DbSnpTable(ref.name(), std::move(entries));
}

void write_dbsnp(std::ostream& out, const DbSnpTable& table) {
  out << "# seq pos freqA freqC freqG freqT validated\n";
  for (const auto& e : table.entries()) {
    out << table.seq_name() << '\t' << e.pos;
    for (const double f : e.freq) out << '\t' << f;
    out << '\t' << (e.validated ? 1 : 0) << '\n';
  }
}

void write_dbsnp_file(const std::filesystem::path& path,
                      const DbSnpTable& table) {
  std::ofstream out(path);
  GSNP_CHECK_MSG(out.good(), "cannot open dbSNP file for write " << path);
  write_dbsnp(out, table);
}

namespace {

KnownSnpEntry parse_dbsnp_line(std::string_view body, const ParseContext& ctx,
                               std::string& seq_name) {
  const auto fields = split(body, '\t');
  if (fields.size() != 7)
    ctx.fail("record", IngestReason::kTruncatedRecord,
             "expected 7 tab-separated fields, got " +
                 std::to_string(fields.size()));
  if (seq_name.empty()) seq_name = std::string(fields[0]);
  if (fields[0] != seq_name)
    ctx.fail("seq name", IngestReason::kBadField,
             "file mixes sequences '" + seq_name + "' and '" +
                 std::string(fields[0]) + "'");
  KnownSnpEntry e;
  e.pos = parse_int_ctx<u64>(fields[1], ctx, "dbSNP pos");
  if (e.pos > kMaxIngestPosition)
    ctx.fail("dbSNP pos", IngestReason::kPositionOutOfRange,
             "position " + std::string(fields[1]) + " is absurd");
  if (ctx.reference_length > 0 && e.pos >= ctx.reference_length)
    ctx.fail("dbSNP pos", IngestReason::kPositionOutOfRange,
             "position " + std::to_string(e.pos) +
                 " beyond the reference end (" +
                 std::to_string(ctx.reference_length) + ")");
  for (int b = 0; b < kNumBases; ++b) {
    double f = 0.0;
    if (!try_parse_double(fields[static_cast<std::size_t>(2 + b)], f))
      ctx.fail("dbSNP freq", IngestReason::kBadField,
               "'" + std::string(fields[static_cast<std::size_t>(2 + b)]) +
                   "' is not a finite number");
    if (f < 0.0 || f > 1.0)
      ctx.fail("dbSNP freq", IngestReason::kBadField,
               "allele frequency " + std::to_string(f) +
                   " outside [0, 1]");
    e.freq[static_cast<std::size_t>(b)] = f;
  }
  e.validated = parse_int_ctx<int>(fields[6], ctx, "dbSNP validated") != 0;
  return e;
}

}  // namespace

DbSnpTable read_dbsnp(std::istream& in, const std::string& label,
                      const IngestPolicy& policy, IngestStats* stats_out,
                      u64 reference_length) {
  std::string seq_name;
  std::vector<KnownSnpEntry> entries;
  std::string line;
  ParseContext ctx;
  ctx.file = label;
  ctx.reference_length = reference_length;
  IngestStats stats;
  QuarantineWriter quarantine(policy.quarantine_file);
  while (std::getline(in, line)) {
    ++ctx.line_no;
    try {
      if (line.size() > policy.max_line_bytes)
        ctx.fail("line", IngestReason::kLineTooLong,
                 std::to_string(line.size()) + " bytes > max_line_bytes=" +
                     std::to_string(policy.max_line_bytes));
      const auto body = trim(line);
      if (body.empty() || body.front() == '#') continue;
      KnownSnpEntry e = parse_dbsnp_line(body, ctx, seq_name);
      if (!entries.empty() && e.pos <= entries.back().pos)
        ctx.fail("dbSNP pos", IngestReason::kSortOrderViolation,
                 "position " + std::to_string(e.pos) +
                     " after position " + std::to_string(entries.back().pos) +
                     " — entries must be strictly increasing");
      entries.push_back(e);
      ++stats.records_ok;
    } catch (const ParseError& err) {
      if (!policy.lenient()) throw;
      quarantine_record(policy, stats, &quarantine, err, line);
    }
  }
  if (stats_out) *stats_out = stats;
  return DbSnpTable(std::move(seq_name), std::move(entries));
}

DbSnpTable read_dbsnp_file(const std::filesystem::path& path,
                           const IngestPolicy& policy, IngestStats* stats_out,
                           u64 reference_length) {
  std::ifstream in(path);
  GSNP_CHECK_MSG(in.good(), "cannot open dbSNP file " << path);
  return read_dbsnp(in, path.string(), policy, stats_out, reference_length);
}

}  // namespace gsnp::genome
