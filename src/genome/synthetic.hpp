#pragma once
// Synthetic genome generation and SNP planting.
//
// The paper evaluates on BGI's operational human resequencing data, which we
// do not have; this module is the documented substitution (see DESIGN.md).
// It produces (a) a random reference with a configurable GC content and
// N-gap fraction, and (b) a diploid "individual" derived from the reference
// by planting SNPs at a configurable rate — the ground truth against which
// called SNPs can be scored and from which reads are sampled.

#include <optional>
#include <vector>

#include "src/common/rng.hpp"
#include "src/common/types.hpp"
#include "src/genome/reference.hpp"

namespace gsnp::genome {

/// Parameters for reference generation.
struct GenomeSpec {
  std::string name = "chrS";
  u64 length = 1'000'000;
  double gc_content = 0.41;  ///< human-like GC fraction
  double n_gap_rate = 0.0;   ///< probability a site is an 'N' gap
  u64 seed = 1;
};

/// Generate a random reference sequence per the spec.
Reference generate_reference(const GenomeSpec& spec);

/// One planted polymorphic site in the simulated individual.
struct PlantedSnp {
  u64 pos = 0;
  u8 ref_base = 0;       ///< the reference allele at this site
  Genotype genotype;     ///< the individual's diploid genotype (differs from ref)
  bool in_dbsnp = false; ///< whether this site appears in the prior file
};

/// Parameters for SNP planting.
struct SnpPlantSpec {
  double snp_rate = 0.001;      ///< fraction of sites carrying a SNP (~human)
  double het_fraction = 0.6;    ///< fraction of SNPs that are heterozygous
  double transition_bias = 2.0; ///< ti/tv ratio for the alternate allele
  double known_fraction = 0.9;  ///< fraction of planted SNPs present in dbSNP
  u64 seed = 2;
};

/// Plant SNPs on a reference; returns sites sorted by position.  'N' sites
/// are never polymorphic.
std::vector<PlantedSnp> plant_snps(const Reference& ref,
                                   const SnpPlantSpec& spec);

/// A diploid individual: the reference plus planted genotypes.  Supports the
/// two queries the read simulator needs — the genotype at a site and a random
/// allele draw (maternal/paternal chromosome chosen per read).
class Diploid {
 public:
  Diploid(const Reference& ref, std::vector<PlantedSnp> snps);

  const Reference& reference() const { return *ref_; }
  const std::vector<PlantedSnp>& snps() const { return snps_; }

  /// Genotype at `pos`: hom-ref unless a SNP is planted there.
  Genotype genotype_at(u64 pos) const;

  /// The base carried by haplotype `hap` (0 or 1) at `pos`.  For planted hets
  /// haplotype 0 carries allele1 and haplotype 1 carries allele2.
  u8 haplotype_base(u64 pos, int hap) const;

  /// Planted SNP at `pos`, if any.
  const PlantedSnp* find(u64 pos) const;

 private:
  const Reference* ref_;
  std::vector<PlantedSnp> snps_;  // sorted by pos
};

/// Draw an alternate allele for `ref_base` honoring the transition bias.
u8 draw_alt_allele(u8 ref_base, double transition_bias, Rng& rng);

/// One depth hotspot: a contiguous island whose coverage is
/// `depth_multiplier` times the baseline depth.  Models the pileups real
/// resequencing shows over collapsed repeats / CNV gains, where an aligner
/// stacks many more reads than the genome-wide average — the skewed-depth
/// regime the byte-budget batcher exists for.
struct HotspotIsland {
  u64 start = 0;          ///< first reference position of the island
  u64 length = 0;         ///< island span in bp
  double depth_multiplier = 1.0;  ///< island depth / baseline depth
};

/// Parameters for hotspot placement.
///
/// Mind the device ceiling when simulating for the GSNP backend: the batch
/// bitonic sorter launches one block of next_pow2(array size) threads, so a
/// per-site pileup beyond the device's max_block_threads (1,024 in the
/// simulated spec) makes the sort pass unlaunchable and the pipeline
/// degrades the chromosome to the CPU engine.  With a 6x baseline the
/// default 50-200x range straddles that cliff; device-path tests should
/// pick multipliers that keep `baseline * multiplier` safely under it.
struct HotspotSpec {
  u32 islands = 4;                ///< number of islands to place
  u64 island_length = 3'000;      ///< length of each island (bp)
  double multiplier_lo = 50.0;    ///< lower bound on the depth multiplier
  double multiplier_hi = 200.0;   ///< upper bound on the depth multiplier
  u64 seed = 7;
};

/// Place non-overlapping hotspot islands on a genome of `genome_length` bp.
/// Deterministic in the seed; islands come back sorted by start, pairwise
/// disjoint, fully in-bounds, with multipliers drawn uniformly from
/// [multiplier_lo, multiplier_hi].
std::vector<HotspotIsland> place_hotspot_islands(u64 genome_length,
                                                 const HotspotSpec& spec);

}  // namespace gsnp::genome
