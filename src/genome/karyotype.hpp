#pragma once
// The human karyotype profile used to scale the 24-chromosome end-to-end
// benchmark (paper Fig. 12).  Sizes are the NCBI36/hg18 assembly lengths the
// paper's datasets correspond to (Ch. 1 = 247 Mbp is the largest sequence,
// Ch. 21 = 47 Mbp the smallest autosome, matching paper Table II).

#include <array>
#include <string_view>

#include "src/common/types.hpp"

namespace gsnp::genome {

struct ChromosomeInfo {
  std::string_view name;
  double mbp;  ///< assembly length in megabase pairs
};

/// The 24 human nuclear chromosomes.
inline constexpr std::array<ChromosomeInfo, 24> kHumanKaryotype = {{
    {"chr1", 247.2},  {"chr2", 242.7},  {"chr3", 199.5},  {"chr4", 191.3},
    {"chr5", 180.9},  {"chr6", 170.9},  {"chr7", 158.8},  {"chr8", 146.3},
    {"chr9", 140.3},  {"chr10", 135.4}, {"chr11", 134.5}, {"chr12", 132.3},
    {"chr13", 114.1}, {"chr14", 106.4}, {"chr15", 100.3}, {"chr16", 88.8},
    {"chr17", 78.7},  {"chr18", 76.1},  {"chr19", 63.8},  {"chr20", 62.4},
    {"chr21", 46.9},  {"chr22", 49.7},  {"chrX", 154.9},  {"chrY", 57.8},
}};

/// Scale a chromosome to a benchmark-sized site count: the number of sites a
/// whole-genome bench uses for this chromosome when the largest chromosome
/// (chr1) is assigned `chr1_sites` sites.
constexpr u64 scaled_sites(const ChromosomeInfo& info, u64 chr1_sites) {
  return static_cast<u64>(info.mbp / kHumanKaryotype[0].mbp *
                          static_cast<double>(chr1_sites));
}

}  // namespace gsnp::genome
