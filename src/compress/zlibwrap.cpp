#include "src/compress/zlibwrap.hpp"

#include <zlib.h>

#include "src/common/bitio.hpp"
#include "src/common/error.hpp"

namespace gsnp::compress {

std::vector<u8> zlib_compress(std::span<const u8> data, int level) {
  // Frame: varint original size, then the deflate stream.
  std::vector<u8> out;
  varint_append(out, data.size());
  uLongf bound = compressBound(static_cast<uLong>(data.size()));
  const std::size_t header = out.size();
  out.resize(header + bound);
  const int rc =
      compress2(out.data() + header, &bound,
                reinterpret_cast<const Bytef*>(data.data()),
                static_cast<uLong>(data.size()), level);
  GSNP_CHECK_MSG(rc == Z_OK, "zlib compress2 failed: " << rc);
  out.resize(header + bound);
  return out;
}

std::vector<u8> zlib_decompress(std::span<const u8> data) {
  std::size_t pos = 0;
  const u64 original_size = varint_read(data, pos);
  std::vector<u8> out(original_size);
  uLongf dest_len = static_cast<uLongf>(original_size);
  const int rc = uncompress(out.data(), &dest_len,
                            reinterpret_cast<const Bytef*>(data.data() + pos),
                            static_cast<uLong>(data.size() - pos));
  GSNP_CHECK_MSG(rc == Z_OK && dest_len == original_size,
                 "zlib uncompress failed: " << rc);
  return out;
}

}  // namespace gsnp::compress
