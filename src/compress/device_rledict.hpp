#pragma once
// GPU-accelerated RLE-DICT compression (paper §V-B).
//
// "RLE is implemented using the primitive reduction on the GPU.  For DICT, we
// first use primitives sort and unique to build the dictionary.  Then a
// binary search is performed for multiple elements in parallel to find their
// index in the dictionary.  The dictionary is loaded into the constant memory
// if it fits.  Next, we encode the index using least bits through a map."
//
// The kernels below follow that structure on the simulated device: a
// boundary-flag kernel + scan implements the run decomposition; the device
// radix sort + a unique kernel builds each dictionary; a parallel
// binary-search kernel maps values to indices.  Final varint/bit framing runs
// on the host and is byte-identical to the host encoder
// (compress::encode_rle_dict), so the two paths share one decoder.

#include <span>
#include <vector>

#include "src/compress/codecs.hpp"
#include "src/device/device.hpp"

namespace gsnp::compress {

/// Compress `column` with RLE-DICT using device kernels; the returned bytes
/// equal what encode_rle_dict produces.  Device work is recorded on `dev`'s
/// counters (use counters_delta + PerfModel to time it).
void device_encode_rle_dict(device::Device& dev, std::span<const u32> column,
                            std::vector<u8>& out);

/// Device run decomposition only (exposed for tests and Fig 9b analysis).
RunDecomposition device_run_decompose(device::Device& dev,
                                      std::span<const u32> column);

/// Device dictionary build + index mapping (exposed for tests): returns the
/// sorted unique dictionary and per-element indices into it.
struct DictMapping {
  std::vector<u32> dict;
  std::vector<u32> indices;
};
DictMapping device_build_dict(device::Device& dev,
                              std::span<const u32> column);

}  // namespace gsnp::compress
