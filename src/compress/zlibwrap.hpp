#pragma once
// Thin RAII wrapper around zlib — the general-purpose comparator the paper
// benchmarks its customized codecs against (Figs 9 and 10).

#include <span>
#include <vector>

#include "src/common/types.hpp"

namespace gsnp::compress {

/// Deflate `data` at the given zlib level (1 fastest .. 9 best).
std::vector<u8> zlib_compress(std::span<const u8> data, int level = 6);

/// Inflate a buffer produced by zlib_compress.
std::vector<u8> zlib_decompress(std::span<const u8> data);

}  // namespace gsnp::compress
