#include "src/compress/temp_input.hpp"

#include <cstring>

#include "src/common/bitio.hpp"
#include "src/common/crc32.hpp"
#include "src/common/error.hpp"
#include "src/common/fs_fault.hpp"
#include "src/common/phred.hpp"
#include "src/compress/codecs.hpp"

namespace gsnp::compress {

std::vector<u8> encode_alignment_chunk(
    std::span<const reads::AlignmentRecord> records) {
  std::vector<u8> out;
  varint_append(out, records.size());
  if (records.empty()) return out;

  // Positions: sorted input -> non-negative deltas.
  varint_append(out, records.front().pos);
  for (std::size_t i = 1; i + 0 < records.size(); ++i) {
    GSNP_CHECK_MSG(records[i].pos >= records[i - 1].pos,
                   "temp input requires position-sorted records");
    varint_append(out, records[i].pos - records[i - 1].pos);
  }

  // Lengths: dictionary (usually a single value).
  std::vector<u32> lengths(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) lengths[i] = records[i].length;
  encode_dict(lengths, out);

  // Strand and pair-tag bit arrays.
  {
    BitWriter bw;
    for (const auto& rec : records)
      bw.write(rec.strand == Strand::kReverse ? 1 : 0, 1);
    for (const auto& rec : records) bw.write(rec.pair_tag == 'b' ? 1 : 0, 1);
    const auto bits = bw.finish();
    out.insert(out.end(), bits.begin(), bits.end());
  }

  // Hit counts: mostly 1 -> RLE-DICT.
  std::vector<u32> hits(records.size());
  for (std::size_t i = 0; i < records.size(); ++i) hits[i] = records[i].hit_count;
  encode_rle_dict(hits, out);

  // Bases: concatenated 2-bit codes with sparse 'N' exceptions.
  std::vector<u8> bases;
  std::vector<u32> n_flags;
  for (const auto& rec : records) {
    for (const char c : rec.seq) {
      const u8 b = base_from_char(c);
      bases.push_back(b < kNumBases ? b : 0);
      n_flags.push_back(b < kNumBases ? 0 : 1);
    }
  }
  pack_bases(bases, out);
  encode_sparse(n_flags, out);

  // Qualities: concatenated integer values, RLE-DICT (auto-correlated within
  // reads -> long runs).
  std::vector<u32> quals;
  quals.reserve(bases.size());
  for (const auto& rec : records)
    for (const char c : rec.qual) quals.push_back(
        static_cast<u32>(quality_from_char(c)));
  encode_rle_dict(quals, out);

  return out;
}

std::vector<reads::AlignmentRecord> decode_alignment_chunk(
    std::span<const u8> data, const std::string& chr_name) {
  std::size_t pos = 0;
  const u64 n = varint_read(data, pos);
  GSNP_CHECK_MSG(n <= (1ULL << 28), "implausible record count " << n);
  std::vector<reads::AlignmentRecord> records(n);
  if (n == 0) return records;

  u64 position = varint_read(data, pos);
  records[0].pos = position;
  for (u64 i = 1; i < n; ++i) {
    position += varint_read(data, pos);
    records[i].pos = position;
  }

  const std::vector<u32> lengths = decode_dict(data, pos);
  GSNP_CHECK(lengths.size() == n);
  u64 total_bases = 0;
  for (u64 i = 0; i < n; ++i) {
    records[i].length = static_cast<u16>(lengths[i]);
    total_bases += lengths[i];
  }

  {
    const std::size_t bytes = (2 * n + 7) / 8;
    GSNP_CHECK(pos + bytes <= data.size());
    BitReader br(data.subspan(pos, bytes));
    pos += bytes;
    for (u64 i = 0; i < n; ++i)
      records[i].strand = br.read(1) ? Strand::kReverse : Strand::kForward;
    for (u64 i = 0; i < n; ++i) records[i].pair_tag = br.read(1) ? 'b' : 'a';
  }

  const std::vector<u32> hits = decode_rle_dict(data, pos);
  GSNP_CHECK(hits.size() == n);
  for (u64 i = 0; i < n; ++i) records[i].hit_count = hits[i];

  const std::vector<u8> bases = unpack_bases(data, pos);
  const std::vector<u32> n_flags = decode_sparse(data, pos);
  const std::vector<u32> quals = decode_rle_dict(data, pos);
  GSNP_CHECK(bases.size() == total_bases && n_flags.size() == total_bases &&
             quals.size() == total_bases);

  u64 cursor = 0;
  for (u64 i = 0; i < n; ++i) {
    auto& rec = records[i];
    rec.chr_name = chr_name;
    rec.seq.resize(rec.length);
    rec.qual.resize(rec.length);
    for (u16 j = 0; j < rec.length; ++j, ++cursor) {
      rec.seq[j] = n_flags[cursor] ? 'N' : char_from_base(bases[cursor]);
      rec.qual[j] = quality_to_char(static_cast<int>(quals[cursor]));
    }
  }
  GSNP_CHECK_MSG(pos == data.size(), "trailing bytes in alignment chunk");
  return records;
}

// ---- file-level ------------------------------------------------------------------

TempInputWriter::TempInputWriter(const std::filesystem::path& path,
                                 std::string chr_name, u32 chunk_records)
    : out_(path, std::ios::binary), path_(path),
      chr_name_(std::move(chr_name)), chunk_records_(chunk_records) {
  GSNP_CHECK(chunk_records_ > 0);
  GSNP_CHECK_MSG(out_.good(), "cannot open temp input file " << path);
  std::string header(kTempMagic, sizeof(kTempMagic));
  std::vector<u8> len;
  varint_append(len, chr_name_.size());
  header.append(reinterpret_cast<const char*>(len.data()), len.size());
  header.append(chr_name_);
  fsfault::write(out_, path_, header);
  bytes_ = header.size();
}

void TempInputWriter::add(const reads::AlignmentRecord& rec) {
  buffer_.push_back(rec);
  if (buffer_.size() >= chunk_records_) flush_chunk();
}

void TempInputWriter::flush_chunk() {
  if (buffer_.empty()) return;
  const std::vector<u8> chunk = encode_alignment_chunk(buffer_);
  std::vector<u8> prefix;
  varint_append(prefix, chunk.size());
  const u32 crc = crc32(chunk.data(), chunk.size());
  const u8 crc_le[4] = {static_cast<u8>(crc), static_cast<u8>(crc >> 8),
                        static_cast<u8>(crc >> 16), static_cast<u8>(crc >> 24)};
  std::string record;
  record.reserve(prefix.size() + chunk.size() + sizeof(crc_le));
  record.append(reinterpret_cast<const char*>(prefix.data()), prefix.size());
  record.append(reinterpret_cast<const char*>(chunk.data()), chunk.size());
  record.append(reinterpret_cast<const char*>(crc_le), sizeof(crc_le));
  fsfault::write(out_, path_, record);
  bytes_ += record.size();
  buffer_.clear();
}

u64 TempInputWriter::finish() {
  flush_chunk();
  out_.flush();
  fsfault::check_stream(out_, path_, "flush");
  out_.close();
  return bytes_;
}

TempInputReader::TempInputReader(const std::filesystem::path& path)
    : in_(path, std::ios::binary) {
  GSNP_CHECK_MSG(in_.good(), "cannot open temp input file " << path);
  char magic[sizeof(kTempMagic)];
  in_.read(magic, sizeof(magic));
  GSNP_CHECK_MSG(in_.gcount() == sizeof(magic) &&
                     std::memcmp(magic, kTempMagic, sizeof(magic)) == 0,
                 "bad magic in " << path);
  u64 name_len = 0;
  int shift = 0;
  for (;;) {
    const int c = in_.get();
    GSNP_CHECK_MSG(c != EOF, "truncated temp input header");
    name_len |= static_cast<u64>(c & 0x7F) << shift;
    if (!(c & 0x80)) break;
    shift += 7;
  }
  chr_name_.resize(name_len);
  in_.read(chr_name_.data(), static_cast<std::streamsize>(name_len));
  GSNP_CHECK(in_.gcount() == static_cast<std::streamsize>(name_len));
}

bool TempInputReader::load_chunk() {
  u64 chunk_size = 0;
  int shift = 0;
  for (;;) {
    const int c = in_.get();
    if (c == EOF) return false;
    chunk_size |= static_cast<u64>(c & 0x7F) << shift;
    if (!(c & 0x80)) break;
    shift += 7;
  }
  GSNP_CHECK_MSG(chunk_size <= (1ULL << 32), "implausible chunk size");
  std::vector<u8> buf(chunk_size);
  in_.read(reinterpret_cast<char*>(buf.data()),
           static_cast<std::streamsize>(chunk_size));
  GSNP_CHECK_MSG(in_.gcount() == static_cast<std::streamsize>(chunk_size),
                 "truncated temp input chunk");
  u8 crc_le[4];
  in_.read(reinterpret_cast<char*>(crc_le), sizeof(crc_le));
  GSNP_CHECK_MSG(in_.gcount() == sizeof(crc_le), "truncated chunk CRC");
  const u32 stored_crc =
      static_cast<u32>(crc_le[0]) | (static_cast<u32>(crc_le[1]) << 8) |
      (static_cast<u32>(crc_le[2]) << 16) | (static_cast<u32>(crc_le[3]) << 24);
  GSNP_CHECK_MSG(crc32(buf.data(), buf.size()) == stored_crc,
                 "temp input chunk CRC mismatch (corrupt file)");
  chunk_ = decode_alignment_chunk(buf, chr_name_);
  cursor_ = 0;
  return true;
}

std::optional<reads::AlignmentRecord> TempInputReader::next() {
  while (cursor_ >= chunk_.size()) {
    if (!load_chunk()) return std::nullopt;
  }
  return chunk_[cursor_++];
}

}  // namespace gsnp::compress
