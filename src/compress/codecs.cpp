#include "src/compress/codecs.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/error.hpp"

namespace gsnp::compress {

namespace {
/// Upper bound on any decoded element count: corrupted varints must raise
/// gsnp::Error, not trigger multi-gigabyte allocations.
constexpr u64 kMaxDecodedElements = 1ULL << 28;

void check_count(u64 n, const char* what) {
  GSNP_CHECK_MSG(n <= kMaxDecodedElements,
                 what << ": implausible element count " << n);
}
}  // namespace

// ---- 2-bit base packing ----------------------------------------------------

void pack_bases(std::span<const u8> bases, std::vector<u8>& out) {
  varint_append(out, bases.size());
  BitWriter bw;
  for (const u8 b : bases) {
    GSNP_CHECK_MSG(b < kNumBases, "pack_bases: base out of range " << int(b));
    bw.write(b, 2);
  }
  const auto bits = bw.finish();
  out.insert(out.end(), bits.begin(), bits.end());
}

std::vector<u8> unpack_bases(std::span<const u8> data, std::size_t& pos) {
  const u64 n = varint_read(data, pos);
  check_count(n, "unpack_bases");
  const std::size_t bytes = (n * 2 + 7) / 8;
  GSNP_CHECK_MSG(pos + bytes <= data.size(), "unpack_bases: truncated frame");
  BitReader br(data.subspan(pos, bytes));
  pos += bytes;
  std::vector<u8> out(n);
  for (auto& b : out) b = static_cast<u8>(br.read(2));
  return out;
}

// ---- run-length encoding ---------------------------------------------------

RunDecomposition run_decompose(std::span<const u32> column) {
  RunDecomposition runs;
  for (std::size_t i = 0; i < column.size(); ++i) {
    if (i == 0 || column[i] != column[i - 1]) {
      runs.values.push_back(column[i]);
      runs.lengths.push_back(1);
    } else {
      ++runs.lengths.back();
    }
  }
  return runs;
}

std::vector<u32> run_compose(const RunDecomposition& runs) {
  GSNP_CHECK(runs.values.size() == runs.lengths.size());
  std::vector<u32> column;
  for (std::size_t r = 0; r < runs.values.size(); ++r) {
    check_count(column.size() + runs.lengths[r], "run_compose elements");
    column.insert(column.end(), runs.lengths[r], runs.values[r]);
  }
  return column;
}

void encode_rle(std::span<const u32> column, std::vector<u8>& out) {
  const RunDecomposition runs = run_decompose(column);
  varint_append(out, runs.values.size());
  for (std::size_t r = 0; r < runs.values.size(); ++r) {
    varint_append(out, runs.values[r]);
    varint_append(out, runs.lengths[r]);
  }
}

std::vector<u32> decode_rle(std::span<const u8> data, std::size_t& pos) {
  const u64 n_runs = varint_read(data, pos);
  check_count(n_runs, "decode_rle runs");
  std::vector<u32> column;
  for (u64 r = 0; r < n_runs; ++r) {
    const u32 value = static_cast<u32>(varint_read(data, pos));
    const u32 length = static_cast<u32>(varint_read(data, pos));
    check_count(column.size() + length, "decode_rle elements");
    column.insert(column.end(), length, value);
  }
  return column;
}

// ---- dictionary encoding ---------------------------------------------------

std::vector<u32> build_dictionary(std::span<const u32> column) {
  std::vector<u32> dict(column.begin(), column.end());
  std::sort(dict.begin(), dict.end());
  dict.erase(std::unique(dict.begin(), dict.end()), dict.end());
  return dict;
}

void encode_dict(std::span<const u32> column, std::vector<u8>& out) {
  const std::vector<u32> dict = build_dictionary(column);
  varint_append(out, dict.size());
  // Delta-code the sorted dictionary entries.
  u32 prev = 0;
  for (const u32 v : dict) {
    varint_append(out, v - prev);
    prev = v;
  }
  varint_append(out, column.size());
  if (column.empty()) return;
  const int width = bits_for(dict.size());
  BitWriter bw;
  for (const u32 v : column) {
    const auto it = std::lower_bound(dict.begin(), dict.end(), v);
    bw.write(static_cast<u64>(it - dict.begin()), width);
  }
  const auto bits = bw.finish();
  out.insert(out.end(), bits.begin(), bits.end());
}

std::vector<u32> decode_dict(std::span<const u8> data, std::size_t& pos) {
  const u64 dict_size = varint_read(data, pos);
  check_count(dict_size, "decode_dict dictionary");
  std::vector<u32> dict(dict_size);
  u32 prev = 0;
  for (auto& v : dict) {
    prev += static_cast<u32>(varint_read(data, pos));
    v = prev;
  }
  const u64 n = varint_read(data, pos);
  check_count(n, "decode_dict column");
  std::vector<u32> column(n);
  if (n == 0) return column;
  GSNP_CHECK_MSG(dict_size > 0, "decode_dict: empty dictionary, n>0");
  const int width = bits_for(dict_size);
  const std::size_t bytes = (n * static_cast<u64>(width) + 7) / 8;
  GSNP_CHECK_MSG(pos + bytes <= data.size(), "decode_dict: truncated frame");
  BitReader br(data.subspan(pos, bytes));
  pos += bytes;
  for (auto& v : column) {
    const u64 idx = br.read(width);
    GSNP_CHECK_MSG(idx < dict_size, "decode_dict: index out of range");
    v = dict[idx];
  }
  return column;
}

// ---- RLE-DICT ----------------------------------------------------------------

void encode_rle_dict(std::span<const u32> column, std::vector<u8>& out) {
  const RunDecomposition runs = run_decompose(column);
  encode_dict(runs.values, out);
  encode_dict(runs.lengths, out);
}

std::vector<u32> decode_rle_dict(std::span<const u8> data, std::size_t& pos) {
  RunDecomposition runs;
  runs.values = decode_dict(data, pos);
  runs.lengths = decode_dict(data, pos);
  return run_compose(runs);
}

// ---- sparse columns ----------------------------------------------------------

void encode_sparse(std::span<const u32> column, std::vector<u8>& out) {
  varint_append(out, column.size());
  u64 nnz = 0;
  for (const u32 v : column) nnz += (v != 0);
  varint_append(out, nnz);
  u64 prev_index = 0;
  for (std::size_t i = 0; i < column.size(); ++i) {
    if (column[i] == 0) continue;
    varint_append(out, i - prev_index);  // delta to the previous non-zero
    varint_append(out, column[i]);
    prev_index = i;
  }
}

std::vector<u32> decode_sparse(std::span<const u8> data, std::size_t& pos) {
  const u64 n = varint_read(data, pos);
  check_count(n, "decode_sparse");
  const u64 nnz = varint_read(data, pos);
  GSNP_CHECK_MSG(nnz <= n, "decode_sparse: nnz " << nnz << " > n " << n);
  std::vector<u32> column(n, 0);
  u64 index = 0;
  for (u64 k = 0; k < nnz; ++k) {
    index += varint_read(data, pos);
    GSNP_CHECK_MSG(index < n, "decode_sparse: index out of range");
    column[index] = static_cast<u32>(varint_read(data, pos));
  }
  return column;
}

// ---- difference-from-prediction columns ---------------------------------------

void encode_exceptions(std::span<const u32> actual,
                       std::span<const u32> predicted, std::vector<u8>& out) {
  GSNP_CHECK_MSG(actual.size() == predicted.size(),
                 "encode_exceptions: size mismatch");
  varint_append(out, actual.size());
  u64 n_exceptions = 0;
  for (std::size_t i = 0; i < actual.size(); ++i)
    n_exceptions += (actual[i] != predicted[i]);
  varint_append(out, n_exceptions);
  u64 prev_index = 0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (actual[i] == predicted[i]) continue;
    varint_append(out, i - prev_index);
    varint_append(out, actual[i]);
    prev_index = i;
  }
}

std::vector<u32> decode_exceptions(std::span<const u32> predicted,
                                   std::span<const u8> data, std::size_t& pos) {
  const u64 n = varint_read(data, pos);
  GSNP_CHECK_MSG(n == predicted.size(), "decode_exceptions: size mismatch");
  const u64 n_exceptions = varint_read(data, pos);
  std::vector<u32> actual(predicted.begin(), predicted.end());
  u64 index = 0;
  for (u64 k = 0; k < n_exceptions; ++k) {
    index += varint_read(data, pos);
    GSNP_CHECK_MSG(index < n, "decode_exceptions: index out of range");
    actual[index] = static_cast<u32>(varint_read(data, pos));
  }
  return actual;
}

// ---- quantized doubles ---------------------------------------------------------

void encode_quantized(std::span<const double> column, double scale,
                      std::vector<u8>& out) {
  GSNP_CHECK(scale > 0.0);
  // The scale is stored as a u64 reinterpretation for exactness.
  u64 scale_bits;
  static_assert(sizeof(scale_bits) == sizeof(scale));
  std::memcpy(&scale_bits, &scale, sizeof(scale));
  varint_append(out, scale_bits);
  std::vector<u32> ints(column.size());
  for (std::size_t i = 0; i < column.size(); ++i) {
    const double scaled = column[i] * scale;
    const auto v = static_cast<u32>(std::llround(scaled));
    GSNP_CHECK_MSG(std::abs(scaled - static_cast<double>(v)) < 1e-6,
                   "encode_quantized: value " << column[i]
                                              << " not on the 1/" << scale
                                              << " grid");
    ints[i] = v;
  }
  encode_dict(ints, out);
}

std::vector<double> decode_quantized(std::span<const u8> data,
                                     std::size_t& pos) {
  const u64 scale_bits = varint_read(data, pos);
  double scale;
  std::memcpy(&scale, &scale_bits, sizeof(scale));
  const std::vector<u32> ints = decode_dict(data, pos);
  std::vector<double> column(ints.size());
  for (std::size_t i = 0; i < ints.size(); ++i)
    column[i] = static_cast<double>(ints[i]) / scale;
  return column;
}

}  // namespace gsnp::compress
