#pragma once
// Customized column codecs (paper §V-B).
//
// The SNP output table compresses column-by-column with simple, cache-friendly
// single-scan algorithms chosen per column characteristic:
//
//  * pack_bases / unpack_bases            — 2 bits per base (columns holding
//                                           one of the four base types)
//  * encode_rle / decode_rle              — run-length (value, length) pairs
//  * encode_dict / decode_dict            — dictionary + least-bits packing
//  * encode_rle_dict / decode_rle_dict    — RLE then DICT on both run arrays
//                                           (the paper's "RLE-DICT" scheme for
//                                           the six quality-related columns)
//  * encode_sparse / decode_sparse        — (index, value) pairs for columns
//                                           that are mostly zero (second-
//                                           allele columns)
//  * encode_exceptions / decode_exceptions — positions where a column differs
//                                           from a predicted column (genotype
//                                           vs homozygous-reference: SNPs are
//                                           rare, so exceptions are few)
//
// Every encoder is self-describing (varint-framed) and appends to a byte
// vector; decoders consume from a (data, pos) cursor so frames can be
// concatenated freely.  All codecs are exact (lossless) and single-scan.

#include <span>
#include <vector>

#include "src/common/bitio.hpp"
#include "src/common/types.hpp"

namespace gsnp::compress {

// ---- 2-bit base packing ----------------------------------------------------

/// Pack base codes (each must be < 4) at 2 bits each.
void pack_bases(std::span<const u8> bases, std::vector<u8>& out);
std::vector<u8> unpack_bases(std::span<const u8> data, std::size_t& pos);

// ---- run-length encoding ---------------------------------------------------

/// The raw (values, lengths) decomposition of a column.
struct RunDecomposition {
  std::vector<u32> values;
  std::vector<u32> lengths;
};
RunDecomposition run_decompose(std::span<const u32> column);
std::vector<u32> run_compose(const RunDecomposition& runs);

/// RLE with varint-coded runs.
void encode_rle(std::span<const u32> column, std::vector<u8>& out);
std::vector<u32> decode_rle(std::span<const u8> data, std::size_t& pos);

// ---- dictionary encoding ---------------------------------------------------

/// Dictionary + fixed-width index packing ("least bits through a map").
void encode_dict(std::span<const u32> column, std::vector<u8>& out);
std::vector<u32> decode_dict(std::span<const u8> data, std::size_t& pos);

/// The dictionary a column would use (sorted unique values) — exposed so the
/// device implementation and tests can validate against the host.
std::vector<u32> build_dictionary(std::span<const u32> column);

// ---- RLE-DICT (the paper's scheme for quality columns) ----------------------

void encode_rle_dict(std::span<const u32> column, std::vector<u8>& out);
std::vector<u32> decode_rle_dict(std::span<const u8> data, std::size_t& pos);

// ---- sparse columns ----------------------------------------------------------

/// Store only non-zero entries as (delta-index, value) pairs.
void encode_sparse(std::span<const u32> column, std::vector<u8>& out);
std::vector<u32> decode_sparse(std::span<const u8> data, std::size_t& pos);

// ---- difference-from-prediction columns -------------------------------------

/// Store only entries where `actual` differs from `predicted` (sizes equal).
void encode_exceptions(std::span<const u32> actual,
                       std::span<const u32> predicted, std::vector<u8>& out);
/// Reconstruct `actual` given the same `predicted` column.
std::vector<u32> decode_exceptions(std::span<const u32> predicted,
                                   std::span<const u8> data, std::size_t& pos);

// ---- doubles via fixed-point quantization header ----------------------------

/// Lossless encoding of doubles that are known to be quantized values (e.g.
/// rank-sum p rounded to 1e-4): scales to u32 and dictionary-encodes.  The
/// scale is part of the frame.
void encode_quantized(std::span<const double> column, double scale,
                      std::vector<u8>& out);
std::vector<double> decode_quantized(std::span<const u8> data,
                                     std::size_t& pos);

}  // namespace gsnp::compress
