#pragma once
// Compressed temporary alignment input (paper §V-A).
//
// cal_p_matrix must read the whole alignment stream once to build the score
// matrix; read_site then reads the same data again window by window.  The
// two reads cannot be merged, but GSNP has the first pass write the records
// to a *compressed temporary file* that the second pass reads at roughly a
// third of the text size.  Read identifiers are not stored — no downstream
// computation consumes them (records reconstructed from the temporary file
// carry empty ids).
//
// Chunked columnar format per chunk of records:
//   varint n, varint first position, delta-varint positions,
//   dict lengths, strand/pair bit arrays, RLE-DICT hit counts,
//   2-bit packed bases + sparse 'N' exceptions, RLE-DICT qualities.
//
// File layout: 8-byte magic, varint(name length), name bytes, then chunks of
// [varint chunk bytes][chunk payload][4-byte LE CRC-32 of the payload].
// Container version 2 ("GSNPTMP2") added the trailing chunk CRC so a corrupt
// temporary file fails fast instead of feeding garbage records to read_site;
// version-1 files are rejected by the magic check.

#include <filesystem>
#include <span>
#include <fstream>
#include <optional>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/reads/alignment.hpp"

namespace gsnp::compress {

/// Encode one chunk of records (exposed for tests and the Fig 10b bench).
std::vector<u8> encode_alignment_chunk(
    std::span<const reads::AlignmentRecord> records);
std::vector<reads::AlignmentRecord> decode_alignment_chunk(
    std::span<const u8> data, const std::string& chr_name);

inline constexpr char kTempMagic[8] = {'G', 'S', 'N', 'P', 'T', 'M', 'P', '2'};

/// Streaming writer: buffers records into fixed-size chunks.
class TempInputWriter {
 public:
  TempInputWriter(const std::filesystem::path& path, std::string chr_name,
                  u32 chunk_records = 4096);

  void add(const reads::AlignmentRecord& rec);
  /// Flush the tail chunk and return total bytes written.
  u64 finish();

 private:
  void flush_chunk();

  std::ofstream out_;
  std::filesystem::path path_;  ///< for fault routing + error messages
  std::string chr_name_;
  u32 chunk_records_;
  std::vector<reads::AlignmentRecord> buffer_;
  u64 bytes_ = 0;
};

/// Streaming reader yielding records in file order.
class TempInputReader {
 public:
  explicit TempInputReader(const std::filesystem::path& path);

  std::optional<reads::AlignmentRecord> next();

 private:
  bool load_chunk();

  std::ifstream in_;
  std::string chr_name_;
  std::vector<reads::AlignmentRecord> chunk_;
  std::size_t cursor_ = 0;
};

}  // namespace gsnp::compress
