#include "src/compress/device_rledict.hpp"

#include "src/common/bitio.hpp"
#include "src/common/error.hpp"
#include "src/sortnet/batch_sort.hpp"

namespace gsnp::compress {

using device::Access;
using device::BlockContext;
using device::Device;
using device::DeviceBuffer;
using device::ThreadContext;

namespace {

constexpr u32 kBlockThreads = 256;

u32 grid_for(u64 n) {
  return static_cast<u32>((n + kBlockThreads - 1) / kBlockThreads);
}

/// Inclusive scan of a u32 flag buffer on the device (single-block serial
/// kernel — adequate for per-window column sizes); returns the total.
/// After the scan, element i of a flagged sequence belongs to group
/// scan[i] - 1, and i starts a group iff i == 0 or scan[i] != scan[i-1].
u32 device_inclusive_scan(Device& dev, DeviceBuffer<u32>& flags) {
  const u64 n = flags.size();
  DeviceBuffer<u32> total = dev.alloc<u32>(1);
  dev.launch("rle_inclusive_scan", 1, 1, [&](BlockContext& blk) {
    blk.single_thread([&](ThreadContext& t) {
      u32 running = 0;
      for (u64 i = 0; i < n; ++i) {
        running += t.gload(flags, i, Access::kCoalesced);
        t.gstore(flags, i, running, Access::kCoalesced);
        t.inst();
      }
      t.gstore(total, 0, running);
    });
  });
  return dev.to_host(total)[0];
}

}  // namespace

RunDecomposition device_run_decompose(Device& dev,
                                      std::span<const u32> column) {
  RunDecomposition runs;
  if (column.empty()) return runs;
  const u64 n = column.size();

  DeviceBuffer<u32> values = dev.to_device(column);
  DeviceBuffer<u32> flags = dev.alloc<u32>(n);

  // Kernel 1: run-boundary flags (coalesced neighbour reads).
  dev.launch("rle_boundary_flags", grid_for(n), kBlockThreads,
             [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) {
      const u64 i = static_cast<u64>(blk.block_idx()) * kBlockThreads + t.tid();
      if (i >= n) return;
      const u32 v = t.gload(values, i, Access::kCoalesced);
      const u32 boundary =
          (i == 0 || t.gload(values, i - 1, Access::kCoalesced) != v) ? 1 : 0;
      t.inst();
      t.gstore(flags, i, boundary, Access::kCoalesced);
    });
  });

  // Kernel 2: inclusive scan -> run id per element, plus the run count.
  const u32 n_runs = device_inclusive_scan(dev, flags);

  // Kernel 3: the first element of each run scatters its value and start
  // index; lengths follow from consecutive starts.
  DeviceBuffer<u32> run_values = dev.alloc<u32>(n_runs);
  DeviceBuffer<u32> run_starts = dev.alloc<u32>(n_runs);
  dev.launch("rle_emit_runs", grid_for(n), kBlockThreads,
             [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) {
      const u64 i = static_cast<u64>(blk.block_idx()) * kBlockThreads + t.tid();
      if (i >= n) return;
      const u32 scan = t.gload(flags, i, Access::kCoalesced);
      const bool is_start =
          (i == 0) || scan != t.gload(flags, i - 1, Access::kCoalesced);
      t.inst();
      if (!is_start) return;
      const u32 rid = scan - 1;
      t.gstore(run_values, rid, t.gload(values, i, Access::kCoalesced),
               Access::kRandom);
      t.gstore(run_starts, rid, static_cast<u32>(i), Access::kRandom);
    });
  });

  runs.values = dev.to_host(run_values);
  const std::vector<u32> starts = dev.to_host(run_starts);
  runs.lengths.resize(n_runs);
  for (u32 r = 0; r < n_runs; ++r) {
    const u32 end = (r + 1 < n_runs) ? starts[r + 1] : static_cast<u32>(n);
    runs.lengths[r] = end - starts[r];
  }
  return runs;
}

DictMapping device_build_dict(Device& dev, std::span<const u32> column) {
  DictMapping m;
  if (column.empty()) return m;
  const u64 n = column.size();

  // Sort a copy with the device radix sort, then mark/keep unique values.
  DeviceBuffer<u32> sorted = dev.to_device(column);
  sortnet::device_radix_sort(dev, sorted);

  DeviceBuffer<u32> uniq_flags = dev.alloc<u32>(n);
  dev.launch("dict_uniq_flags", grid_for(n), kBlockThreads,
             [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) {
      const u64 i = static_cast<u64>(blk.block_idx()) * kBlockThreads + t.tid();
      if (i >= n) return;
      const u32 v = t.gload(sorted, i, Access::kCoalesced);
      const u32 uniq =
          (i == 0 || t.gload(sorted, i - 1, Access::kCoalesced) != v) ? 1 : 0;
      t.inst();
      t.gstore(uniq_flags, i, uniq, Access::kCoalesced);
    });
  });
  const u32 dict_size = device_inclusive_scan(dev, uniq_flags);

  DeviceBuffer<u32> dict = dev.alloc<u32>(dict_size);
  dev.launch("dict_emit", grid_for(n), kBlockThreads,
             [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) {
      const u64 i = static_cast<u64>(blk.block_idx()) * kBlockThreads + t.tid();
      if (i >= n) return;
      const u32 scan = t.gload(uniq_flags, i, Access::kCoalesced);
      const bool is_first =
          (i == 0) || scan != t.gload(uniq_flags, i - 1, Access::kCoalesced);
      t.inst();
      if (is_first)
        t.gstore(dict, scan - 1, t.gload(sorted, i, Access::kCoalesced),
                 Access::kRandom);
    });
  });

  // Dictionary lookup: parallel binary search.  The paper loads the
  // dictionary into constant memory when it fits (quality columns have
  // < 100 distinct values, so it always does here).
  m.dict = dev.to_host(dict);
  const bool use_constant =
      m.dict.size() * sizeof(u32) <= dev.spec().constant_bytes / 2;
  device::ConstantTable<u32> cdict;
  if (use_constant) cdict = dev.to_constant(std::span<const u32>(m.dict));

  DeviceBuffer<u32> values = dev.to_device(column);
  DeviceBuffer<u32> indices = dev.alloc<u32>(n);
  dev.launch("dict_lookup", grid_for(n), kBlockThreads,
             [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) {
      const u64 i = static_cast<u64>(blk.block_idx()) * kBlockThreads + t.tid();
      if (i >= n) return;
      const u32 v = t.gload(values, i, Access::kCoalesced);
      u32 lo = 0, hi = dict_size;
      while (lo + 1 < hi) {
        const u32 mid = (lo + hi) / 2;
        const u32 dv = use_constant ? t.cload(cdict, mid)
                                    : t.gload(dict, mid, Access::kRandom);
        t.inst(2);
        if (dv <= v) lo = mid; else hi = mid;
      }
      t.gstore(indices, i, lo, Access::kCoalesced);
    });
  });
  m.indices = dev.to_host(indices);
  return m;
}

namespace {

/// Emit a dictionary frame identical to the host encode_dict, given the
/// device-computed dictionary and indices.
void emit_dict_frame(const std::vector<u32>& dict,
                     const std::vector<u32>& indices, std::vector<u8>& out) {
  varint_append(out, dict.size());
  u32 prev = 0;
  for (const u32 v : dict) {
    varint_append(out, v - prev);
    prev = v;
  }
  varint_append(out, indices.size());
  if (indices.empty()) return;
  const int width = bits_for(dict.size());
  BitWriter bw;
  for (const u32 idx : indices) bw.write(idx, width);
  const auto bits = bw.finish();
  out.insert(out.end(), bits.begin(), bits.end());
}

}  // namespace

void device_encode_rle_dict(Device& dev, std::span<const u32> column,
                            std::vector<u8>& out) {
  const RunDecomposition runs = device_run_decompose(dev, column);
  const DictMapping values_map =
      device_build_dict(dev, std::span<const u32>(runs.values));
  const DictMapping lengths_map =
      device_build_dict(dev, std::span<const u32>(runs.lengths));
  emit_dict_frame(values_map.dict, values_map.indices, out);
  emit_dict_frame(lengths_map.dict, lengths_map.indices, out);
}

}  // namespace gsnp::compress
