#include "src/obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>
#include <sstream>

#include "src/common/error.hpp"
#include "src/common/json.hpp"

namespace gsnp::obs {

namespace {

/// Shortest exact double rendering (%.17g round-trips every finite double);
/// the determinism contract for snapshots rests on this being a pure
/// function of the bit pattern.
std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

}  // namespace

int Histogram::bucket_index(double value) {
  if (!(value > 0.0)) return kUnderflowBucket;  // <= 0 and NaN
  if (std::isinf(value)) return kOverflowBucket;
  int exp = 0;
  const double frac = std::frexp(value, &exp);  // value = frac * 2^exp
  const int octave = exp - 1;                   // frac in [0.5, 1)
  if (octave < kMinExponent) return kUnderflowBucket;
  if (octave > kMaxExponent) return kOverflowBucket;
  int sub = static_cast<int>((frac - 0.5) * (2 * kSubBuckets));
  if (sub >= kSubBuckets) sub = kSubBuckets - 1;  // frac == 1-ulp guard
  if (sub < 0) sub = 0;
  return 1 + (octave - kMinExponent) * kSubBuckets + sub;
}

double Histogram::bucket_lower(int index) {
  GSNP_CHECK_MSG(index >= 0 && index < kNumBuckets,
                 "histogram bucket index out of range: " << index);
  if (index == kUnderflowBucket) return 0.0;
  if (index == kOverflowBucket)
    return std::ldexp(1.0, kMaxExponent + 1);  // 2^(kMaxExponent+1)
  const int octave = (index - 1) / kSubBuckets + kMinExponent;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub) / kSubBuckets, octave);
}

double Histogram::bucket_upper(int index) {
  GSNP_CHECK_MSG(index >= 0 && index < kNumBuckets,
                 "histogram bucket index out of range: " << index);
  if (index == kUnderflowBucket) return std::ldexp(1.0, kMinExponent);
  if (index == kOverflowBucket)
    return std::numeric_limits<double>::infinity();
  const int octave = (index - 1) / kSubBuckets + kMinExponent;
  const int sub = (index - 1) % kSubBuckets;
  return sub + 1 == kSubBuckets
             ? std::ldexp(1.0, octave + 1)
             : std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets,
                          octave);
}

void Histogram::record(double value) {
  const int index = bucket_index(value);
  const std::lock_guard<std::mutex> lock(mu_);
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  ++buckets_[static_cast<std::size_t>(index)];
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::merge(const Snapshot& other) {
  if (other.count == 0) return;
  const std::lock_guard<std::mutex> lock(mu_);
  if (buckets_.empty()) buckets_.assign(kNumBuckets, 0);
  for (const auto& [index, n] : other.buckets) {
    GSNP_CHECK_MSG(index >= 0 && index < kNumBuckets,
                   "histogram merge: bucket index out of range " << index);
    buckets_[static_cast<std::size_t>(index)] += n;
  }
  if (count_ == 0) {
    min_ = other.min;
    max_ = other.max;
  } else {
    min_ = std::min(min_, other.min);
    max_ = std::max(max_, other.max);
  }
  count_ += other.count;
  sum_ += other.sum;
}

Histogram::Snapshot Histogram::snapshot() const {
  const std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.count = count_;
  snap.sum = sum_;
  snap.min = min_;
  snap.max = max_;
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    if (buckets_[i] != 0)
      snap.buckets.emplace_back(static_cast<int>(i), buckets_[i]);
  return snap;
}

void Histogram::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
  buckets_.clear();
}

// ---- Snapshot -------------------------------------------------------------

u64 Histogram::Snapshot::bucket_count(int index) const {
  for (const auto& [i, n] : buckets)
    if (i == index) return n;
  return 0;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank ceil(q * count), at least 1 — the same ceil-rank convention the
  // bench harness uses for its client-side percentiles.
  u64 target = static_cast<u64>(std::ceil(q * static_cast<double>(count)));
  if (target < 1) target = 1;
  if (target > count) target = count;
  u64 cumulative = 0;
  for (const auto& [index, n] : buckets) {
    cumulative += n;
    if (cumulative >= target)
      return std::clamp(bucket_upper(index), min, max);
  }
  return max;  // unreachable when buckets are consistent with count
}

void Histogram::Snapshot::merge(const Snapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  std::vector<std::pair<int, u64>> merged;
  merged.reserve(buckets.size() + other.buckets.size());
  std::size_t a = 0, b = 0;
  while (a < buckets.size() || b < other.buckets.size()) {
    if (b == other.buckets.size() ||
        (a < buckets.size() && buckets[a].first < other.buckets[b].first)) {
      merged.push_back(buckets[a++]);
    } else if (a == buckets.size() ||
               other.buckets[b].first < buckets[a].first) {
      merged.push_back(other.buckets[b++]);
    } else {
      merged.emplace_back(buckets[a].first,
                          buckets[a].second + other.buckets[b].second);
      ++a;
      ++b;
    }
  }
  buckets = std::move(merged);
  count += other.count;
  sum += other.sum;
  min = std::min(min, other.min);
  max = std::max(max, other.max);
}

void Histogram::Snapshot::write_json(std::ostream& os) const {
  os << "{\"count\":" << count << ",\"sum\":" << fmt_double(sum)
     << ",\"min\":" << fmt_double(min) << ",\"max\":" << fmt_double(max)
     << ",\"buckets\":[";
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (i != 0) os << ',';
    os << '[' << buckets[i].first << ',' << buckets[i].second << ']';
  }
  os << "]}";
}

std::string Histogram::Snapshot::json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

Histogram::Snapshot Histogram::Snapshot::from_json(const json::Value& value) {
  GSNP_CHECK_MSG(value.kind == json::Value::Kind::kObject,
                 "histogram snapshot is not a JSON object");
  Snapshot snap;
  snap.count = json::get_u64(value, "count");
  snap.sum = json::get_number(value, "sum");
  snap.min = json::get_number(value, "min");
  snap.max = json::get_number(value, "max");
  const json::Value* buckets = json::find(value, "buckets");
  GSNP_CHECK_MSG(buckets != nullptr &&
                     buckets->kind == json::Value::Kind::kArray,
                 "histogram snapshot: 'buckets' missing or not an array");
  int previous = -1;
  for (const json::Value& entry : buckets->array) {
    GSNP_CHECK_MSG(entry.kind == json::Value::Kind::kArray &&
                       entry.array.size() == 2 &&
                       entry.array[0].kind == json::Value::Kind::kNumber &&
                       entry.array[1].kind == json::Value::Kind::kNumber,
                   "histogram snapshot: bucket entry is not [index, count]");
    const int index = static_cast<int>(entry.array[0].number);
    GSNP_CHECK_MSG(index > previous && index < kNumBuckets,
                   "histogram snapshot: bucket index " << index
                                                       << " out of order");
    previous = index;
    snap.buckets.emplace_back(index,
                              static_cast<u64>(entry.array[1].number));
  }
  return snap;
}

}  // namespace gsnp::obs
