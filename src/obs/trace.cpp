#include "src/obs/trace.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <set>
#include <sstream>

#include "src/common/atomic_file.hpp"
#include "src/common/error.hpp"
#include "src/common/json.hpp"

namespace gsnp::obs {

namespace {

/// Per-thread stack of open spans, tagged with their tracer so independent
/// tracers nest correctly even when interleaved on one thread.
thread_local std::vector<std::pair<const Tracer*, u64>> t_open_spans;

double ns_to_sec(u64 ns) { return static_cast<double>(ns) * 1e-9; }

/// JSON number formatting for seconds/ratios: shortest round-trippable-ish
/// representation, always finite.
std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

}  // namespace

// ---- Metrics --------------------------------------------------------------

void Metrics::add(std::string_view name, u64 delta) {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_[std::string(name)] += delta;
}

void Metrics::set_gauge(std::string_view name, double value) {
  const std::lock_guard<std::mutex> lock(mu_);
  gauges_[std::string(name)] = value;
}

u64 Metrics::counter(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(std::string(name));
  return it == counters_.end() ? 0 : it->second;
}

double Metrics::gauge(std::string_view name) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(std::string(name));
  return it == gauges_.end() ? 0.0 : it->second;
}

Histogram& Metrics::histogram(std::string_view name) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[std::string(name)];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

void Metrics::record(std::string_view name, double value) {
  histogram(name).record(value);
}

std::map<std::string, u64> Metrics::counters() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

std::map<std::string, double> Metrics::gauges() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return gauges_;
}

std::map<std::string, Histogram::Snapshot> Metrics::histograms() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, Histogram::Snapshot> out;
  for (const auto& [name, hist] : histograms_) out[name] = hist->snapshot();
  return out;
}

void Metrics::clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

Metrics& Metrics::process() {
  static Metrics instance;
  return instance;
}

// ---- Tracer ---------------------------------------------------------------

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

u64 Tracer::now_ns() const {
  return static_cast<u64>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - epoch_)
                              .count());
}

u64 Tracer::begin_span() {
  const std::lock_guard<std::mutex> lock(mu_);
  return next_id_++;
}

void Tracer::commit(SpanRecord&& record) {
  const std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(record));
}

u32 Tracer::thread_index() {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = thread_ids_.try_emplace(
      std::this_thread::get_id(), static_cast<u32>(thread_ids_.size()));
  (void)inserted;
  return it->second;
}

u64 Tracer::add_complete(SpanRecord record) {
  if (record.id == 0) record.id = begin_span();
  const u64 id = record.id;
  commit(std::move(record));
  return id;
}

std::vector<SpanRecord> Tracer::spans() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::map<std::string, double> Tracer::stage_breakdown(
    std::string_view category) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::map<std::string, double> totals;
  for (const SpanRecord& s : spans_) {
    if (!category.empty() && s.category != category) continue;
    totals[s.name] += s.table_seconds();
  }
  return totals;
}

device::DeviceCounters Tracer::device_totals() const {
  const std::lock_guard<std::mutex> lock(mu_);
  // Only spans with no device-capturing ancestor contribute, so a parent
  // span enclosing instrumented children does not double-count their delta.
  std::set<u64> device_ids;
  for (const SpanRecord& s : spans_)
    if (s.has_device) device_ids.insert(s.id);
  std::map<u64, u64> parent_of;
  for (const SpanRecord& s : spans_) parent_of[s.id] = s.parent;

  device::DeviceCounters total;
  for (const SpanRecord& s : spans_) {
    if (!s.has_device) continue;
    bool covered = false;
    for (u64 p = s.parent; p != 0;) {
      if (device_ids.count(p)) {
        covered = true;
        break;
      }
      const auto it = parent_of.find(p);
      p = it == parent_of.end() ? 0 : it->second;
    }
    if (!covered) total += s.device;
  }
  return total;
}

u64 Tracer::device_peak_bytes() const {
  const std::lock_guard<std::mutex> lock(mu_);
  u64 peak = 0;
  for (const SpanRecord& s : spans_)
    peak = std::max(peak, s.device_peak_bytes);
  return peak;
}

// ---- Tracer::Scope --------------------------------------------------------

Tracer::Scope::Scope(Tracer* tracer, std::string_view name,
                     std::string_view category, device::Device* dev,
                     const device::PerfModel* model)
    : tracer_(tracer) {
  if (!tracer_) return;  // null sink: nothing else runs, here or in ~Scope
  dev_ = dev;
  model_ = model;
  if (dev_) before_ = dev_->counters();
  pending_ = std::make_unique<SpanRecord>();
  pending_->id = tracer_->begin_span();
  pending_->name = std::string(name);
  pending_->category = std::string(category);
  pending_->thread = tracer_->thread_index();
  for (auto it = t_open_spans.rbegin(); it != t_open_spans.rend(); ++it) {
    if (it->first == tracer_) {
      pending_->parent = it->second;
      break;
    }
  }
  t_open_spans.emplace_back(tracer_, pending_->id);
  start_ns_ = tracer_->now_ns();  // last: exclude setup from the span
}

Tracer::Scope::~Scope() {
  if (!tracer_) return;
  const u64 end_ns = tracer_->now_ns();
  // Pop this span; scopes are strictly nested per thread by construction.
  if (!t_open_spans.empty() && t_open_spans.back().first == tracer_ &&
      t_open_spans.back().second == pending_->id)
    t_open_spans.pop_back();
  pending_->start_ns = start_ns_;
  pending_->duration_ns = end_ns - start_ns_;
  pending_->host_sec = host_sec_override_ >= 0.0
                           ? host_sec_override_
                           : ns_to_sec(pending_->duration_ns);
  if (dev_) {
    pending_->has_device = true;
    pending_->device = device::counters_delta(before_, dev_->counters());
    pending_->device_peak_bytes = dev_->peak_allocated_bytes();
    static const device::PerfModel default_model;
    pending_->modeled_sec =
        (model_ ? *model_ : default_model).seconds(pending_->device);
  }
  tracer_->commit(std::move(*pending_));
}

void Tracer::Scope::note(std::string_view key, std::string_view value) {
  if (!tracer_) return;
  pending_->args.emplace_back(std::string(key), std::string(value));
}

void Tracer::Scope::set_host_seconds(double sec) {
  if (!tracer_) return;
  host_sec_override_ = std::max(0.0, sec);
}

void Tracer::Scope::set_stream(u32 stream_id) {
  if (!tracer_) return;
  pending_->stream = stream_id;
}

// ---- exporters ------------------------------------------------------------

void write_chrome_trace(const std::filesystem::path& path,
                        const Tracer& tracer) {
  const std::filesystem::path tmp = path.string() + ".part";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    GSNP_CHECK_MSG(out.good(), "cannot open trace for write " << tmp);
    out << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
    const auto spans = tracer.spans();
    for (std::size_t i = 0; i < spans.size(); ++i) {
      const SpanRecord& s = spans[i];
      // Stream-tagged spans get their own lane per stream (tid 1000+N) so
      // overlap across streams is visible as parallel rows in the viewer.
      const u32 tid = s.stream != 0 ? 1000 + s.stream : s.thread;
      out << (i ? ",\n " : "\n ") << "{\"ph\": \"X\", \"pid\": 1, \"tid\": "
          << tid << ", \"name\": ";
      json::write_escaped(out, s.name);
      out << ", \"cat\": ";
      json::write_escaped(out, s.category.empty() ? "span" : s.category);
      // trace_event timestamps are microseconds.
      out << ", \"ts\": " << fmt(static_cast<double>(s.start_ns) * 1e-3)
          << ", \"dur\": " << fmt(static_cast<double>(s.duration_ns) * 1e-3)
          << ", \"args\": {\"id\": " << s.id << ", \"parent\": " << s.parent
          << ", \"table_sec\": " << fmt(s.table_seconds())
          << ", \"host_sec\": " << fmt(s.host_sec)
          << ", \"modeled_sec\": " << fmt(s.modeled_sec);
      if (s.stream != 0) out << ", \"stream\": " << s.stream;
      if (s.has_device) {
        const device::DeviceCounters& d = s.device;
        out << ", \"dev_instructions\": " << d.instructions
            << ", \"dev_global_loads\": " << d.global_loads()
            << ", \"dev_global_stores\": " << d.global_stores()
            << ", \"dev_shared_loads\": " << d.shared_loads
            << ", \"dev_shared_stores\": " << d.shared_stores
            << ", \"dev_h2d_bytes\": " << d.h2d_bytes
            << ", \"dev_d2h_bytes\": " << d.d2h_bytes
            << ", \"dev_kernel_launches\": " << d.kernel_launches
            << ", \"dev_peak_global_bytes\": " << s.device_peak_bytes;
      }
      for (const auto& [key, value] : s.args) {
        out << ", ";
        json::write_escaped(out, key);
        out << ": ";
        json::write_escaped(out, value);
      }
      out << "}}";
    }
    out << "\n]}\n";
    out.flush();
    GSNP_CHECK_MSG(out.good(), "trace write failed " << tmp);
  }
  atomic_publish(tmp, path);
}

void write_metrics_json(const std::filesystem::path& path,
                        const Tracer& tracer) {
  // Host and modeled seconds broken out per stage name.
  std::map<std::string, std::pair<double, double>> stages;
  for (const SpanRecord& s : tracer.spans()) {
    if (s.category != "stage") continue;
    auto& [host, modeled] = stages[s.name];
    host += s.host_sec;
    modeled += s.modeled_sec;
  }
  const device::DeviceCounters dev = tracer.device_totals();

  const std::filesystem::path tmp = path.string() + ".part";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    GSNP_CHECK_MSG(out.good(), "cannot open metrics for write " << tmp);
    out << "{\n  \"version\": 1,\n  \"stages\": {";
    bool first = true;
    for (const auto& [name, sec] : stages) {
      out << (first ? "\n    " : ",\n    ");
      first = false;
      json::write_escaped(out, name);
      out << ": {\"seconds\": " << fmt(sec.first + sec.second)
          << ", \"host_seconds\": " << fmt(sec.first)
          << ", \"modeled_seconds\": " << fmt(sec.second) << "}";
    }
    out << "\n  },\n  \"device\": {"
        << "\"instructions\": " << dev.instructions
        << ", \"global_loads\": " << dev.global_loads()
        << ", \"global_stores\": " << dev.global_stores()
        << ", \"shared_loads\": " << dev.shared_loads
        << ", \"shared_stores\": " << dev.shared_stores
        << ", \"global_load_bytes\": "
        << dev.global_load_bytes_coalesced + dev.global_load_bytes_random
        << ", \"global_store_bytes\": "
        << dev.global_store_bytes_coalesced + dev.global_store_bytes_random
        << ", \"h2d_bytes\": " << dev.h2d_bytes
        << ", \"d2h_bytes\": " << dev.d2h_bytes
        << ", \"kernel_launches\": " << dev.kernel_launches
        << ", \"peak_global_bytes\": " << tracer.device_peak_bytes() << "},\n";
    out << "  \"counters\": {";
    first = true;
    for (const auto& [name, value] : tracer.metrics().counters()) {
      out << (first ? "" : ", ");
      first = false;
      json::write_escaped(out, name);
      out << ": " << value;
    }
    out << "},\n  \"gauges\": {";
    first = true;
    for (const auto& [name, value] : tracer.metrics().gauges()) {
      out << (first ? "" : ", ");
      first = false;
      json::write_escaped(out, name);
      out << ": " << fmt(value);
    }
    out << "},\n  \"histograms\": {";
    first = true;
    for (const auto& [name, snap] : tracer.metrics().histograms()) {
      out << (first ? "\n    " : ",\n    ");
      first = false;
      json::write_escaped(out, name);
      out << ": ";
      snap.write_json(out);
    }
    out << "\n  }\n}\n";
    out.flush();
    GSNP_CHECK_MSG(out.good(), "metrics write failed " << tmp);
  }
  atomic_publish(tmp, path);
}

MetricsSnapshot read_metrics_json(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open metrics " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const json::Value root = json::parse(buf.str());
  GSNP_CHECK_MSG(root.kind == json::Value::Kind::kObject,
                 "metrics " << path << " is not a JSON object");
  GSNP_CHECK_MSG(json::get_u64(root, "version") == 1,
                 "unsupported metrics version in " << path);

  MetricsSnapshot snap;
  if (const json::Value* stages = json::find(root, "stages")) {
    GSNP_CHECK_MSG(stages->kind == json::Value::Kind::kObject,
                   "metrics: 'stages' is not an object");
    for (const auto& [name, v] : stages->object)
      snap.stages[name] = json::get_number(v, "seconds");
  }
  if (const json::Value* counters = json::find(root, "counters")) {
    for (const auto& [name, v] : counters->object) {
      GSNP_CHECK_MSG(v.kind == json::Value::Kind::kNumber,
                     "metrics: counter '" << name << "' is not a number");
      snap.counters[name] = static_cast<u64>(v.number);
    }
  }
  if (const json::Value* gauges = json::find(root, "gauges")) {
    for (const auto& [name, v] : gauges->object) {
      GSNP_CHECK_MSG(v.kind == json::Value::Kind::kNumber,
                     "metrics: gauge '" << name << "' is not a number");
      snap.gauges[name] = v.number;
    }
  }
  if (const json::Value* hists = json::find(root, "histograms")) {
    GSNP_CHECK_MSG(hists->kind == json::Value::Kind::kObject,
                   "metrics: 'histograms' is not an object");
    for (const auto& [name, v] : hists->object)
      snap.histograms[name] = Histogram::Snapshot::from_json(v);
  }
  return snap;
}

}  // namespace gsnp::obs
