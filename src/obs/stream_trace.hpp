#pragma once
// Bridges device stream execution into the tracer: attached to a StreamPool
// as its StreamOpListener, it opens one span per executed stream op on that
// stream's trace lane (category "stream", SpanRecord::stream = stream id, so
// the Chrome exporter renders each stream as its own row and overlap is
// visible as parallel bars).  Host seconds are pinned to 0 — draining runs
// on the host simulator thread, but the time that matters is the modeled
// device seconds of the op's counter delta, which the span captures the
// same way engine device stages do.
//
// Lives in src/obs because the device layer must not depend on obs.

#include <memory>
#include <string>

#include "src/device/stream.hpp"
#include "src/obs/trace.hpp"

namespace gsnp::obs {

class StreamSpanListener final : public device::StreamOpListener {
 public:
  /// `tracer` may be null (the listener then does nothing, like every
  /// null-sink path in obs).  `dev`/`model` drive the span's device-counter
  /// delta and modeled seconds exactly as engine device scopes do.
  StreamSpanListener(Tracer* tracer, device::Device* dev,
                     const device::PerfModel* model = nullptr)
      : tracer_(tracer), dev_(dev), model_(model) {}

  void on_op_begin(u32 stream, device::StreamOpKind kind,
                   const std::string& name) override {
    if (tracer_ == nullptr) return;
    open_ = std::make_unique<Tracer::Scope>(tracer_, name, "stream", dev_,
                                            model_);
    open_->set_stream(stream);
    open_->set_host_seconds(0.0);
    open_->note("kind", device::stream_op_kind_name(kind));
  }

  void on_op_end(const device::StreamOpRecord& record) override {
    if (open_ == nullptr) return;
    if (record.failed) open_->note("failed", "1");
    open_.reset();  // closes the span; counters have not moved since the op
  }

 private:
  Tracer* tracer_ = nullptr;
  device::Device* dev_ = nullptr;
  const device::PerfModel* model_ = nullptr;
  std::unique_ptr<Tracer::Scope> open_;
};

}  // namespace gsnp::obs
