#include "src/obs/prometheus.hpp"

#include <cstdio>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

namespace gsnp::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

/// Split a registry key into (sanitized family, verbatim label block).
/// `name{tenant="a"}` -> ("name", "{tenant=\"a\"}"); plain names get "".
std::pair<std::string, std::string> split_series(std::string_view key) {
  const std::size_t pos = key.find('{');
  if (pos == std::string_view::npos || key.back() != '}')
    return {sanitize_metric_name(key), std::string()};
  return {sanitize_metric_name(key.substr(0, pos)),
          std::string(key.substr(pos))};
}

/// Append `extra` (e.g. `le="0.5"`) to a possibly-empty label block.
std::string with_label(const std::string& labels, const std::string& extra) {
  if (labels.empty()) return "{" + extra + "}";
  return labels.substr(0, labels.size() - 1) + "," + extra + "}";
}

template <typename T>
using FamilyMap = std::map<std::string, std::vector<std::pair<std::string, T>>>;

/// Regroup registry keys by family so every family renders exactly one
/// `# TYPE` line even when labeled and unlabeled keys interleave in the
/// registry's lexicographic order ('{' sorts after 'z').
template <typename M>
FamilyMap<typename M::mapped_type> group_families(const M& entries) {
  FamilyMap<typename M::mapped_type> families;
  for (const auto& [key, value] : entries) {
    auto [family, labels] = split_series(key);
    families[family].emplace_back(std::move(labels), value);
  }
  return families;
}

}  // namespace

std::string labeled_series(std::string_view base, std::string_view label_key,
                           std::string_view label_value) {
  std::string out(base);
  out += '{';
  out += label_key;
  out += "=\"";
  for (const char c : label_value) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  out += "\"}";
  return out;
}

std::string sanitize_metric_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty()) out = "_";
  if (out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string render_prometheus(const Metrics& metrics,
                              std::string_view prefix) {
  std::ostringstream os;
  const std::string p(prefix);

  for (const auto& [family, series] : group_families(metrics.counters())) {
    os << "# TYPE " << p << family << "_total counter\n";
    for (const auto& [labels, value] : series)
      os << p << family << "_total" << labels << ' ' << value << '\n';
  }

  for (const auto& [family, series] : group_families(metrics.gauges())) {
    os << "# TYPE " << p << family << " gauge\n";
    for (const auto& [labels, value] : series)
      os << p << family << labels << ' ' << fmt_double(value) << '\n';
  }

  for (const auto& [family, series] : group_families(metrics.histograms())) {
    os << "# TYPE " << p << family << " histogram\n";
    for (const auto& [labels, snap] : series) {
      u64 cumulative = 0;
      for (const auto& [index, n] : snap.buckets) {
        if (index == Histogram::kOverflowBucket) break;  // folded into +Inf
        cumulative += n;
        os << p << family << "_bucket"
           << with_label(labels,
                         "le=\"" + fmt_double(Histogram::bucket_upper(index)) +
                             "\"")
           << ' ' << cumulative << '\n';
      }
      os << p << family << "_bucket" << with_label(labels, "le=\"+Inf\"")
         << ' ' << snap.count << '\n';
      os << p << family << "_sum" << labels << ' ' << fmt_double(snap.sum)
         << '\n';
      os << p << family << "_count" << labels << ' ' << snap.count << '\n';
    }
  }

  return os.str();
}

}  // namespace gsnp::obs
