#pragma once
// gsnp::obs — log-linear latency histogram for the service telemetry plane.
//
// The bucket layout is FIXED at compile time (no per-instance configuration):
// every histogram in every process buckets a given value into the same index,
// so snapshots from different workers, runs, or daemon incarnations are
// directly mergeable and byte-diffable.  Layout: one octave [2^e, 2^(e+1))
// per binary exponent e in [kMinExponent, kMaxExponent], each split into
// kSubBuckets equal linear sub-buckets, plus an underflow bucket (values
// <= 0 or below 2^kMinExponent) and an overflow bucket.  With kSubBuckets=8
// a bucket spans at most 1/8 of its octave, so the quantile estimate — the
// upper bound of the bucket holding the target rank, clamped to the observed
// [min, max] — overestimates the true sample by at most 12.5%.
//
// record() takes one mutex; snapshots are sparse (only non-empty buckets),
// deterministic (same values recorded -> bit-identical JSON, independent of
// recording order across threads), and mergeable (bucket-wise addition).
// The seconds range covered exactly is [2^-30 (~0.93ns), 2^31 (~68 years)).

#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.hpp"

namespace gsnp {
namespace json {
struct Value;
}
}  // namespace gsnp

namespace gsnp::obs {

class Histogram {
 public:
  static constexpr int kSubBuckets = 8;    ///< linear sub-buckets per octave
  static constexpr int kMinExponent = -30; ///< first octave is [2^-30, 2^-29)
  static constexpr int kMaxExponent = 30;  ///< last octave is [2^30, 2^31)
  static constexpr int kUnderflowBucket = 0;
  static constexpr int kOverflowBucket =
      (kMaxExponent - kMinExponent + 1) * kSubBuckets + 1;
  static constexpr int kNumBuckets = kOverflowBucket + 1;

  /// The bucket `value` lands in.  <= 0 (and NaN) underflow; +inf overflows.
  static int bucket_index(double value);
  /// Half-open bucket ranges: [lower, upper).  The underflow bucket reports
  /// lower 0; the overflow bucket reports upper +inf.
  static double bucket_lower(int index);
  static double bucket_upper(int index);

  /// A point-in-time copy: exact count/sum/min/max plus the sparse non-empty
  /// buckets in ascending index order.  Plain data — freely copyable,
  /// mergeable, and serializable without the source histogram's lock.
  struct Snapshot {
    u64 count = 0;
    double sum = 0.0;
    double min = 0.0;  ///< 0 when empty
    double max = 0.0;  ///< 0 when empty
    std::vector<std::pair<int, u64>> buckets;

    u64 bucket_count(int index) const;

    /// Upper bound of the bucket holding rank ceil(q * count), clamped to
    /// the observed [min, max] — so quantile(1) == max exactly, and the
    /// estimate never exceeds the true sample by more than one sub-bucket
    /// width (12.5%).  Monotone in q.  Returns 0 on an empty snapshot.
    double quantile(double q) const;

    /// Bucket-wise addition; count/sum add, min/max widen.  Associative and
    /// commutative up to floating-point addition order in `sum`.
    void merge(const Snapshot& other);

    /// Deterministic single-line JSON:
    ///   {"count":N,"sum":S,"min":m,"max":M,"buckets":[[idx,n],...]}
    /// Doubles print with %.17g, so equal snapshots render byte-identically
    /// and parse back exactly.
    void write_json(std::ostream& os) const;
    std::string json() const;
    static Snapshot from_json(const json::Value& value);
  };

  void record(double value);
  /// Fold a snapshot in (shard aggregation, restart carry-over).
  void merge(const Snapshot& other);
  Snapshot snapshot() const;
  void clear();

 private:
  mutable std::mutex mu_;
  u64 count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  std::vector<u64> buckets_;  ///< dense, lazily sized to kNumBuckets
};

}  // namespace gsnp::obs
