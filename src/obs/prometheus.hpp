#pragma once
// gsnp::obs — Prometheus text exposition (format 0.0.4) for a Metrics
// registry.  Counters render as `<prefix><name>_total`, gauges as
// `<prefix><name>`, histograms as the conventional `_bucket{le="..."}` /
// `_sum` / `_count` triple with cumulative bucket counts; every family gets
// one `# TYPE` line.  Names sanitize to the Prometheus charset
// ([a-zA-Z_][a-zA-Z0-9_]*) and the output is byte-deterministic for a given
// registry state (families and series in lexicographic order), so
// scripts/check_metrics.py can lint it and diff the name inventory.
//
// Labeled series: a registry key of the form `name{key="value"}` (built
// with labeled_series(), which escapes the value) renders as one series of
// the `name` family — the daemon uses this for per-tenant latency
// histograms.  The label block passes through verbatim.

#include <string>
#include <string_view>

#include "src/obs/trace.hpp"

namespace gsnp::obs {

/// `base{key="value"}` with backslash/quote/newline escaped in `value` —
/// the registry key for one labeled series of family `base`.
std::string labeled_series(std::string_view base, std::string_view label_key,
                           std::string_view label_value);

/// Replace every character outside [a-zA-Z0-9_] with '_'; prefix a '_' when
/// the result would start with a digit.  Applied to family names only —
/// label values carry arbitrary (escaped) bytes.
std::string sanitize_metric_name(std::string_view name);

/// Render the whole registry.  `prefix` namespaces every family
/// (the daemon uses "gsnpd_").
std::string render_prometheus(const Metrics& metrics,
                              std::string_view prefix = "gsnp_");

}  // namespace gsnp::obs
