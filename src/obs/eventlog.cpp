#include "src/obs/eventlog.hpp"

#include <cstdio>
#include <sstream>

#include "src/common/atomic_file.hpp"
#include "src/common/error.hpp"
#include "src/common/fs_fault.hpp"
#include "src/common/json.hpp"

namespace gsnp::obs {

namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return std::string(buf);
}

void append_string_field(std::ostream& os, const char* key,
                         const std::string& value) {
  if (value.empty()) return;
  os << ",\"" << key << "\":";
  json::write_escaped(os, value);
}

}  // namespace

std::string encode_job_event(const JobEvent& event) {
  std::ostringstream os;
  os << "{\"seq\":" << event.seq << ",\"ts_ns\":" << event.ts_ns
     << ",\"event\":";
  json::write_escaped(os, event.event);
  append_string_field(os, "job", event.job_id);
  append_string_field(os, "tenant", event.tenant);
  append_string_field(os, "backend", event.backend);
  append_string_field(os, "reason", event.reason);
  append_string_field(os, "chromosome", event.chromosome);
  if (event.degraded) os << ",\"degraded\":true";
  if (event.wall_seconds != 0.0)
    os << ",\"wall_seconds\":" << fmt_double(event.wall_seconds);
  if (event.modeled_seconds != 0.0)
    os << ",\"modeled_seconds\":" << fmt_double(event.modeled_seconds);
  append_string_field(os, "error", event.error);
  os << "}";
  return os.str();
}

JobEvent parse_job_event(std::string_view line) {
  const json::Value root = json::parse(line);
  GSNP_CHECK_MSG(root.kind == json::Value::Kind::kObject,
                 "job event line is not a JSON object");
  JobEvent event;
  event.seq = json::get_u64(root, "seq");
  event.ts_ns = json::get_u64(root, "ts_ns");
  event.event = json::get_string(root, "event");
  const auto opt_string = [&root](const char* key, std::string& out) {
    if (const json::Value* v = json::find(root, key)) out = v->string;
  };
  opt_string("job", event.job_id);
  opt_string("tenant", event.tenant);
  opt_string("backend", event.backend);
  opt_string("reason", event.reason);
  opt_string("chromosome", event.chromosome);
  opt_string("error", event.error);
  if (const json::Value* v = json::find(root, "degraded"))
    event.degraded = v->boolean;
  if (const json::Value* v = json::find(root, "wall_seconds"))
    event.wall_seconds = v->number;
  if (const json::Value* v = json::find(root, "modeled_seconds"))
    event.modeled_seconds = v->number;
  return event;
}

EventLog::EventLog(std::filesystem::path path, bool fsync_each)
    : path_(std::move(path)),
      fsync_each_(fsync_each),
      epoch_(std::chrono::steady_clock::now()) {
  // A predecessor that died mid-append leaves a file without a trailing
  // newline; detect it so the first new record does not fuse with the torn
  // fragment (the fragment itself stays — read_event_log skips it).
  bool needs_separator = false;
  {
    std::ifstream probe(path_, std::ios::binary | std::ios::ate);
    if (probe.good() && probe.tellg() > 0) {
      probe.seekg(-1, std::ios::end);
      char last = '\n';
      probe.get(last);
      needs_separator = last != '\n';
    }
  }
  out_.open(path_, std::ios::binary | std::ios::app);
  GSNP_CHECK_MSG(out_.is_open(), "cannot open event log " << path_);
  if (needs_separator) {
    out_ << '\n';
    out_.flush();
  }
}

void EventLog::append(JobEvent event) {
  const u64 ts_ns = static_cast<u64>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count());
  const std::lock_guard<std::mutex> lock(mu_);
  event.seq = next_seq_++;
  event.ts_ns = ts_ns;
  const std::string line = encode_job_event(event) + "\n";
  fsfault::write(out_, path_, line);
  out_.flush();
  fsfault::check_stream(out_, path_, "event log flush");
  if (fsync_each_) fsync_path(path_);
  ++appended_;
}

u64 EventLog::appended() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return appended_;
}

std::vector<JobEvent> read_event_log(const std::filesystem::path& path) {
  std::vector<JobEvent> events;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) return events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      events.push_back(parse_job_event(line));
    } catch (const Error&) {
      // Torn tail or short-write fragment: skip, keep reading — a valid
      // record can follow a separator-repaired fragment.
    }
  }
  return events;
}

}  // namespace gsnp::obs
