#pragma once
// gsnp::obs — append-only structured job event log (JSONL).
//
// The daemon's job state machine emits one record per lifecycle transition
// (submitted, admitted, shed, rejected, started, chromosome_done, published,
// failed, cancelled, interrupted, recovered) into `<spool>/events.jsonl`.
// One JSON object per line, append-only, never rewritten — the log is the
// service's flight recorder: after any crash the surviving prefix replays
// the exact transition history, and the per-job suffix answers "did this
// job's result publish exactly once?".
//
// Crash safety follows the spool's discipline: every append goes through
// the fsfault::write shim (so storage chaos plans can tear it), is flushed,
// and is fsynced before append() returns.  A crash mid-append leaves at most
// one torn final line; read_event_log() skips unparseable lines, and a new
// EventLog opening a file with a torn tail writes a newline first so the
// next record starts clean (the torn fragment stays, as crash evidence).
// Appends throw FsFaultError on injected or real storage failures; callers
// (the daemon) treat that as survivable — the event stream loses a record,
// the job state machine does not.
//
// Record schema: FORMATS.md §14.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <string>
#include <vector>

#include "src/common/types.hpp"

namespace gsnp::obs {

/// One job lifecycle transition.  String fields are empty (and numeric
/// fields zero) when not meaningful for the event type; the encoder omits
/// empty/zero optional fields from the JSON line.
struct JobEvent {
  u64 seq = 0;    ///< 1-based append order within one EventLog instance
  u64 ts_ns = 0;  ///< monotonic ns since this EventLog instance opened
  std::string event;       ///< transition name, e.g. "published"
  std::string job_id;
  std::string tenant;
  std::string backend;     ///< backend name from the job spec
  std::string reason;      ///< typed shed/reject/cancel reason (snake_case)
  std::string chromosome;  ///< chromosome_done only
  bool degraded = false;   ///< chromosome_done: fell back to the CPU engine
  double wall_seconds = 0.0;     ///< measured wall time for the transition
  double modeled_seconds = 0.0;  ///< modeled device seconds (chromosome_done)
  std::string error;             ///< failure detail (failed/rejected)
};

/// JobEvent -> one-line JSON (no trailing newline); deterministic field
/// order.  Exposed for tests and external tooling.
std::string encode_job_event(const JobEvent& event);
/// Inverse; throws gsnp::Error on malformed lines (torn tails).
JobEvent parse_job_event(std::string_view line);

class EventLog {
 public:
  /// Opens (appending) or creates the log.  `fsync_each` trades append
  /// latency for durability of every record; the daemon keeps it on.
  /// Throws gsnp::Error when the file cannot be opened.
  explicit EventLog(std::filesystem::path path, bool fsync_each = true);

  /// Stamp seq/ts_ns and append one record durably.  Thread-safe; appends
  /// from concurrent workers serialize in seq order.  Throws FsFaultError
  /// (injected or real storage failure); the record may then be torn or
  /// absent on disk, never merged with a neighbor.
  void append(JobEvent event);

  const std::filesystem::path& path() const { return path_; }
  u64 appended() const;  ///< records successfully appended by this instance

 private:
  std::filesystem::path path_;
  bool fsync_each_;
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::ofstream out_;
  u64 next_seq_ = 1;
  u64 appended_ = 0;
};

/// Read every parseable record, in file order.  Unparseable lines (torn
/// crash tails, short-write fragments) are skipped, not fatal; a missing
/// file reads as empty.
std::vector<JobEvent> read_event_log(const std::filesystem::path& path);

}  // namespace gsnp::obs
