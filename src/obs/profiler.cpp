#include "src/obs/profiler.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>

#include "src/common/atomic_file.hpp"
#include "src/common/error.hpp"
#include "src/common/json.hpp"

namespace gsnp::obs {

namespace {

std::string fmt(double v) {
  std::ostringstream os;
  os << std::setprecision(12) << v;
  return os.str();
}

u64 global_bytes(const device::DeviceCounters& c) {
  return c.global_load_bytes_coalesced + c.global_load_bytes_random +
         c.global_store_bytes_coalesced + c.global_store_bytes_random;
}

bool any_counter(const device::DeviceCounters& c) {
  return c.instructions || c.global_loads() || c.global_stores() ||
         global_bytes(c) || c.shared_loads || c.shared_stores ||
         c.shared_bytes || c.h2d_bytes || c.d2h_bytes || c.kernel_launches;
}

}  // namespace

const char* roofline_name(RooflineBound b) {
  switch (b) {
    case RooflineBound::kCompute:
      return "compute";
    case RooflineBound::kCoalescedBandwidth:
      return "coalesced-bw";
    case RooflineBound::kRandomAccess:
      return "random-access";
    case RooflineBound::kNone:
      return "n/a";
  }
  return "n/a";
}

RooflineBound classify_roofline(const device::DeviceCounters& c,
                                const device::PerfModel& model) {
  const device::PerfModel::Terms t = model.terms(c);
  if (t.instructions <= 0.0 && t.coalesced <= 0.0 && t.random <= 0.0) {
    return RooflineBound::kNone;
  }
  if (t.instructions >= t.coalesced && t.instructions >= t.random) {
    return RooflineBound::kCompute;
  }
  if (t.coalesced >= t.random) return RooflineBound::kCoalescedBandwidth;
  return RooflineBound::kRandomAccess;
}

double arithmetic_intensity(const device::DeviceCounters& c) {
  const u64 bytes = std::max<u64>(1, global_bytes(c));
  return static_cast<double>(c.instructions) / static_cast<double>(bytes);
}

// ---- Profiler --------------------------------------------------------------

Profiler::Profiler(device::Device& dev, const device::PerfModel& model)
    : dev_(&dev), model_(model), attach_(dev.counters()), last_seen_(attach_) {
  GSNP_CHECK_MSG(dev.launch_listener() == nullptr,
                 "device already has a launch listener attached");
  dev.set_launch_listener(this);
}

Profiler::~Profiler() {
  if (dev_->launch_listener() == this) dev_->set_launch_listener(nullptr);
}

void Profiler::on_kernel_launch(const device::LaunchInfo& info) {
  std::lock_guard<std::mutex> lock(mu_);
  // Anything the device aggregate moved since the previous launch beyond this
  // launch's own delta happened outside kernels (fill / transfers); bank it
  // under "(memops)" so per-kernel sums stay exact.
  const device::DeviceCounters now = dev_->counters();
  const device::DeviceCounters since_last = counters_delta(last_seen_, now);
  memops_ += counters_delta(info.delta, since_last);
  last_seen_ = now;

  KernelRecord rec;
  rec.name = std::string(info.name);
  rec.grid_dim = info.grid_dim;
  rec.block_dim = info.block_dim;
  rec.stream = info.stream_id;
  rec.failed = info.failed;
  rec.delta = info.delta;
  rec.allocated_bytes = info.allocated_bytes;
  rec.peak_global_bytes = info.peak_global_bytes;
  rec.modeled_sec = model_.seconds(info.delta);
  records_.push_back(std::move(rec));
}

std::vector<KernelRecord> Profiler::records() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_;
}

ProfileReport Profiler::report() const {
  std::lock_guard<std::mutex> lock(mu_);
  const device::DeviceCounters now = dev_->counters();

  std::map<std::string, KernelStats> by_name;
  for (const KernelRecord& rec : records_) {
    std::string key = rec.name.empty() ? std::string(kUnnamedName) : rec.name;
    // Stream-issued launches get one row per (kernel, stream).
    if (rec.stream != 0) key += "@s" + std::to_string(rec.stream);
    KernelStats& st = by_name[key];
    st.name = key;
    st.stream = rec.stream;
    st.launches++;
    st.blocks += rec.grid_dim;
    st.block_dim = rec.block_dim;
    if (rec.failed) st.failed++;
    st.total += rec.delta;
    st.peak_global_bytes = std::max(st.peak_global_bytes, rec.peak_global_bytes);
  }

  // Movement since the last recorded launch is (so far) unattributed memops.
  device::DeviceCounters memops = memops_;
  memops += counters_delta(last_seen_, now);
  if (any_counter(memops)) {
    KernelStats& st = by_name[std::string(kMemOpsName)];
    st.name = std::string(kMemOpsName);
    st.total += memops;
    st.peak_global_bytes = dev_->peak_allocated_bytes();
  }

  ProfileReport rep;
  rep.total = counters_delta(attach_, now);
  rep.peak_global_bytes = dev_->peak_allocated_bytes();
  rep.launches = records_.size();
  for (auto& [name, st] : by_name) {
    st.modeled_sec = model_.seconds(st.total);
    st.intensity = arithmetic_intensity(st.total);
    st.bound = (name == kMemOpsName) ? RooflineBound::kNone
                                     : classify_roofline(st.total, model_);
    rep.modeled_sec += st.modeled_sec;
    rep.kernels.push_back(std::move(st));
  }
  std::sort(rep.kernels.begin(), rep.kernels.end(),
            [](const KernelStats& a, const KernelStats& b) {
              if (a.modeled_sec != b.modeled_sec)
                return a.modeled_sec > b.modeled_sec;
              return a.name < b.name;
            });
  return rep;
}

// ---- exporters -------------------------------------------------------------

namespace {

/// Compact human form for large counts (table only; JSON keeps exact u64s).
std::string human(u64 v) {
  char buf[32];
  if (v < 100000) {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3g", static_cast<double>(v));
  }
  return buf;
}

std::string human_ms(double sec) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", sec * 1e3);
  return buf;
}

void table_row(std::ostringstream& os, std::string_view name,
               const std::string& launches, const std::string& blocks,
               const device::DeviceCounters& c, u64 peak, double modeled,
               double total_modeled, const std::string& intensity,
               const char* bound) {
  char buf[256];
  const double pct = total_modeled > 0.0 ? 100.0 * modeled / total_modeled : 0.0;
  std::snprintf(buf, sizeof(buf),
                "%-22.22s %8s %8s %10s %10s %10s %10s %10s %8s %9s %5.1f %8s  %s\n",
                std::string(name).c_str(), launches.c_str(), blocks.c_str(),
                human(c.instructions).c_str(), human(c.global_loads()).c_str(),
                human(c.global_stores()).c_str(),
                human(global_bytes(c)).c_str(), human(c.shared_loads + c.shared_stores).c_str(),
                human(peak >> 20).c_str(), human_ms(modeled).c_str(), pct,
                intensity.c_str(), bound);
  os << buf;
}

std::string intensity_str(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

void write_counters_json(std::ostream& out, const device::DeviceCounters& c) {
  out << "{\"instructions\": " << c.instructions
      << ", \"global_loads_coalesced\": " << c.global_loads_coalesced
      << ", \"global_loads_random\": " << c.global_loads_random
      << ", \"global_stores_coalesced\": " << c.global_stores_coalesced
      << ", \"global_stores_random\": " << c.global_stores_random
      << ", \"global_load_bytes_coalesced\": " << c.global_load_bytes_coalesced
      << ", \"global_load_bytes_random\": " << c.global_load_bytes_random
      << ", \"global_store_bytes_coalesced\": " << c.global_store_bytes_coalesced
      << ", \"global_store_bytes_random\": " << c.global_store_bytes_random
      << ", \"shared_loads\": " << c.shared_loads
      << ", \"shared_stores\": " << c.shared_stores
      << ", \"shared_bytes\": " << c.shared_bytes
      << ", \"h2d_bytes\": " << c.h2d_bytes
      << ", \"d2h_bytes\": " << c.d2h_bytes
      << ", \"kernel_launches\": " << c.kernel_launches << "}";
}

device::DeviceCounters read_counters_json(const json::Value& obj) {
  device::DeviceCounters c;
  c.instructions = json::get_u64(obj, "instructions");
  c.global_loads_coalesced = json::get_u64(obj, "global_loads_coalesced");
  c.global_loads_random = json::get_u64(obj, "global_loads_random");
  c.global_stores_coalesced = json::get_u64(obj, "global_stores_coalesced");
  c.global_stores_random = json::get_u64(obj, "global_stores_random");
  c.global_load_bytes_coalesced =
      json::get_u64(obj, "global_load_bytes_coalesced");
  c.global_load_bytes_random = json::get_u64(obj, "global_load_bytes_random");
  c.global_store_bytes_coalesced =
      json::get_u64(obj, "global_store_bytes_coalesced");
  c.global_store_bytes_random =
      json::get_u64(obj, "global_store_bytes_random");
  c.shared_loads = json::get_u64(obj, "shared_loads");
  c.shared_stores = json::get_u64(obj, "shared_stores");
  c.shared_bytes = json::get_u64(obj, "shared_bytes");
  c.h2d_bytes = json::get_u64(obj, "h2d_bytes");
  c.d2h_bytes = json::get_u64(obj, "d2h_bytes");
  c.kernel_launches = json::get_u64(obj, "kernel_launches");
  return c;
}

RooflineBound bound_from_name(const std::string& s) {
  if (s == "compute") return RooflineBound::kCompute;
  if (s == "coalesced-bw") return RooflineBound::kCoalescedBandwidth;
  if (s == "random-access") return RooflineBound::kRandomAccess;
  return RooflineBound::kNone;
}

}  // namespace

std::string format_profile_table(const ProfileReport& report) {
  std::ostringstream os;
  char hdr[256];
  std::snprintf(hdr, sizeof(hdr),
                "%-22s %8s %8s %10s %10s %10s %10s %10s %8s %9s %5s %8s  %s\n",
                "kernel", "launches", "blocks", "inst", "g_load", "g_store",
                "g_bytes", "shared", "peak_MB", "model_ms", "%", "inst/B",
                "bound");
  os << hdr;
  os << std::string(138, '-') << "\n";
  for (const KernelStats& st : report.kernels) {
    table_row(os, st.name, human(st.launches), human(st.blocks), st.total,
              st.peak_global_bytes, st.modeled_sec, report.modeled_sec,
              intensity_str(st.intensity), roofline_name(st.bound));
  }
  os << std::string(138, '-') << "\n";
  table_row(os, "total", human(report.launches), "-", report.total,
            report.peak_global_bytes, report.modeled_sec, report.modeled_sec,
            intensity_str(arithmetic_intensity(report.total)), "");
  return os.str();
}

std::string format_profile_diff(const ProfileReport& base,
                                const ProfileReport& other,
                                std::string_view base_label,
                                std::string_view other_label) {
  // Union of kernel names: base order first, then other-only extras.
  std::vector<std::string> names;
  std::map<std::string, const KernelStats*> base_by, other_by;
  for (const KernelStats& st : base.kernels) {
    base_by[st.name] = &st;
    names.push_back(st.name);
  }
  for (const KernelStats& st : other.kernels) {
    other_by[st.name] = &st;
    if (!base_by.count(st.name)) names.push_back(st.name);
  }

  std::ostringstream os;
  os << "profile diff: " << other_label << " vs " << base_label
     << " (100% = " << base_label << ")\n";
  char hdr[256];
  std::snprintf(hdr, sizeof(hdr), "%-22s %-12s %12s %12s %12s %12s %12s %10s\n",
                "kernel", "run", "inst", "g_load", "g_store", "s_load",
                "s_store", "model_ms");
  os << hdr;
  os << std::string(110, '-') << "\n";

  const auto row = [&](std::string_view kname, std::string_view run,
                       const KernelStats* st) {
    char buf[256];
    if (st == nullptr) {
      std::snprintf(buf, sizeof(buf), "%-22.22s %-12.12s %12s %12s %12s %12s %12s %10s\n",
                    std::string(kname).c_str(), std::string(run).c_str(), "-",
                    "-", "-", "-", "-", "-");
    } else {
      std::snprintf(buf, sizeof(buf),
                    "%-22.22s %-12.12s %12s %12s %12s %12s %12s %10s\n",
                    std::string(kname).c_str(), std::string(run).c_str(),
                    human(st->total.instructions).c_str(),
                    human(st->total.global_loads()).c_str(),
                    human(st->total.global_stores()).c_str(),
                    human(st->total.shared_loads).c_str(),
                    human(st->total.shared_stores).c_str(),
                    human_ms(st->modeled_sec).c_str());
    }
    os << buf;
  };
  const auto pct = [](u64 a, u64 b) {
    char buf[32];
    if (a == 0) {
      std::snprintf(buf, sizeof(buf), "%s", b == 0 ? "100%" : "inf");
    } else {
      std::snprintf(buf, sizeof(buf), "%.1f%%",
                    100.0 * static_cast<double>(b) / static_cast<double>(a));
    }
    return std::string(buf);
  };
  const auto ratio_row = [&](const KernelStats* a, const KernelStats* b) {
    if (a == nullptr || b == nullptr) return;
    char buf[256];
    const std::string pm =
        a->modeled_sec > 0.0
            ? pct(static_cast<u64>(a->modeled_sec * 1e9),
                  static_cast<u64>(b->modeled_sec * 1e9))
            : "-";
    std::snprintf(buf, sizeof(buf),
                  "%-22.22s %-12.12s %12s %12s %12s %12s %12s %10s\n", "",
                  "ratio", pct(a->total.instructions, b->total.instructions).c_str(),
                  pct(a->total.global_loads(), b->total.global_loads()).c_str(),
                  pct(a->total.global_stores(), b->total.global_stores()).c_str(),
                  pct(a->total.shared_loads, b->total.shared_loads).c_str(),
                  pct(a->total.shared_stores, b->total.shared_stores).c_str(),
                  pm.c_str());
    os << buf;
  };

  for (const std::string& name : names) {
    const KernelStats* a = base_by.count(name) ? base_by[name] : nullptr;
    const KernelStats* b = other_by.count(name) ? other_by[name] : nullptr;
    row(name, base_label, a);
    row(name, other_label, b);
    ratio_row(a, b);
  }

  // Totals.
  KernelStats ta, tb;
  ta.name = tb.name = "total";
  ta.total = base.total;
  tb.total = other.total;
  ta.modeled_sec = base.modeled_sec;
  tb.modeled_sec = other.modeled_sec;
  os << std::string(110, '-') << "\n";
  row("total", base_label, &ta);
  row("total", other_label, &tb);
  ratio_row(&ta, &tb);
  return os.str();
}

void write_profile_json(const std::filesystem::path& path,
                        const ProfileReport& report) {
  // std::map iteration gives lexicographic kernel order: deterministic output
  // for deterministic runs (no timestamps anywhere in this document).
  std::map<std::string, const KernelStats*> by_name;
  for (const KernelStats& st : report.kernels) by_name[st.name] = &st;

  const std::filesystem::path tmp = path.string() + ".part";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    GSNP_CHECK_MSG(out.good(), "cannot open profile for write " << tmp);
    out << "{\n  \"schema\": \"gsnp-profile\",\n  \"version\": 1,\n"
        << "  \"launches\": " << report.launches << ",\n"
        << "  \"modeled_seconds\": " << fmt(report.modeled_sec) << ",\n"
        << "  \"peak_global_bytes\": " << report.peak_global_bytes << ",\n"
        << "  \"total\": ";
    write_counters_json(out, report.total);
    out << ",\n  \"kernels\": {";
    bool first = true;
    for (const auto& [name, st] : by_name) {
      out << (first ? "\n    " : ",\n    ");
      first = false;
      json::write_escaped(out, name);
      out << ": {\"launches\": " << st->launches
          << ", \"blocks\": " << st->blocks
          << ", \"block_dim\": " << st->block_dim
          << ", \"stream\": " << st->stream
          << ", \"failed\": " << st->failed
          << ", \"peak_global_bytes\": " << st->peak_global_bytes
          << ", \"modeled_seconds\": " << fmt(st->modeled_sec)
          << ", \"arithmetic_intensity\": " << fmt(st->intensity)
          << ", \"bound\": \"" << roofline_name(st->bound) << "\""
          << ", \"counters\": ";
      write_counters_json(out, st->total);
      out << "}";
    }
    out << "\n  }\n}\n";
    out.flush();
    GSNP_CHECK_MSG(out.good(), "profile write failed " << tmp);
  }
  atomic_publish(tmp, path);
}

ProfileReport read_profile_json(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open profile " << path);
  std::ostringstream buf;
  buf << in.rdbuf();
  const json::Value doc = json::parse(buf.str());

  GSNP_CHECK_MSG(json::get_string(doc, "schema") == "gsnp-profile",
                 "not a gsnp-profile document: " << path);
  GSNP_CHECK_MSG(json::get_u64(doc, "version") == 1,
                 "unsupported gsnp-profile version in " << path);

  ProfileReport rep;
  rep.launches = json::get_u64(doc, "launches");
  rep.modeled_sec = json::get_number(doc, "modeled_seconds");
  rep.peak_global_bytes = json::get_u64(doc, "peak_global_bytes");
  const json::Value* total = json::find(doc, "total");
  GSNP_CHECK_MSG(total != nullptr &&
                     total->kind == json::Value::Kind::kObject,
                 "profile missing total counters: " << path);
  rep.total = read_counters_json(*total);

  const json::Value* kernels = json::find(doc, "kernels");
  GSNP_CHECK_MSG(kernels != nullptr &&
                     kernels->kind == json::Value::Kind::kObject,
                 "profile missing kernels object: " << path);
  for (const auto& [name, v] : kernels->object) {
    GSNP_CHECK_MSG(v.kind == json::Value::Kind::kObject,
                   "profile kernel entry is not an object: " << name);
    KernelStats st;
    st.name = name;
    st.launches = json::get_u64(v, "launches");
    st.blocks = json::get_u64(v, "blocks");
    st.block_dim = static_cast<u32>(json::get_u64(v, "block_dim"));
    // "stream" was added with the stream abstraction; absent (pre-stream
    // documents) means the default queue.
    if (json::find(v, "stream") != nullptr)
      st.stream = static_cast<u32>(json::get_u64(v, "stream"));
    st.failed = json::get_u64(v, "failed");
    st.peak_global_bytes = json::get_u64(v, "peak_global_bytes");
    st.modeled_sec = json::get_number(v, "modeled_seconds");
    st.intensity = json::get_number(v, "arithmetic_intensity");
    st.bound = bound_from_name(json::get_string(v, "bound"));
    const json::Value* counters = json::find(v, "counters");
    GSNP_CHECK_MSG(counters != nullptr &&
                       counters->kind == json::Value::Kind::kObject,
                   "profile kernel missing counters: " << name);
    st.total = read_counters_json(*counters);
    rep.kernels.push_back(std::move(st));
  }
  std::sort(rep.kernels.begin(), rep.kernels.end(),
            [](const KernelStats& a, const KernelStats& b) {
              if (a.modeled_sec != b.modeled_sec)
                return a.modeled_sec > b.modeled_sec;
              return a.name < b.name;
            });
  return rep;
}

}  // namespace gsnp::obs
