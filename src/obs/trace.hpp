#pragma once
// gsnp::obs — span-based tracing and metrics for the SNP-calling pipeline.
//
// One measurement, every view: the engines time each pipeline stage exactly
// once and record it simultaneously in the RunReport stopwatches (the paper's
// Tables I/IV breakdowns) and — when a Tracer is attached — as a span in the
// trace stream.  A span carries wall time, thread, parent (derived from a
// per-thread scope stack), and, when opened against a device, the delta of
// the device's hardware counters over the span plus the analytical-model
// seconds for that delta (paper Table III / the "GPU seconds" of Table IV).
//
// Two exporters serialize a finished run:
//   * write_chrome_trace — Chrome trace_event JSON ("traceEvents" with "X"
//     complete events), loadable in chrome://tracing or Perfetto.
//   * write_metrics_json — compact machine-readable metrics: per-stage
//     breakdown (host + modeled-device seconds), device counters, and the
//     registry's counters/gauges.  read_metrics_json parses it back.
//
// Cost model: a Tracer* of nullptr is the null sink.  Scope's constructor and
// destructor reduce to a single branch then — no clock read, no allocation —
// so instrumented hot paths (the likelihood loop runs millions of sites per
// span) pay nothing when tracing is off.  With tracing on, span finish takes
// one mutex acquisition; spans are per-stage/per-window/per-sort-pass, never
// per-site.

#include <chrono>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/types.hpp"
#include "src/device/device.hpp"
#include "src/device/perf_model.hpp"
#include "src/obs/histogram.hpp"

namespace gsnp::obs {

/// One finished span.
struct SpanRecord {
  u64 id = 0;       ///< 1-based, unique within the tracer
  u64 parent = 0;   ///< enclosing span on the same thread (0 = root)
  std::string name;
  std::string category;  ///< "stage", "pipeline", "sort", "compress", ...
  u64 start_ns = 0;      ///< relative to the tracer's epoch
  u64 duration_ns = 0;   ///< wall time the scope was open
  u32 thread = 0;        ///< tracer-local thread index
  u32 stream = 0;        ///< device stream lane (1-based; 0 = host/default)
  /// Extra annotations ("engine" = "gsnp", "attempt" = "2", ...).
  std::vector<std::pair<std::string, std::string>> args;

  /// Seconds this span contributes to the component breakdown tables.
  /// Defaults to the wall duration; stages that run device kernels through
  /// the simulator override it (the simulation wall time is not time on the
  /// modeled hardware — see engine.cpp).
  double host_sec = 0.0;
  /// Modeled device seconds for the counter delta (0 for host-only spans).
  double modeled_sec = 0.0;

  bool has_device = false;
  device::DeviceCounters device;  ///< hardware-counter delta over the span
  u64 device_peak_bytes = 0;      ///< device allocation high-water mark at end

  double table_seconds() const { return host_sec + modeled_sec; }
};

/// Process-wide (or per-run) metrics registry: monotonically increasing
/// counters, last-value gauges, and named latency histograms (fixed-layout
/// log-linear, histogram.hpp).  All operations are thread-safe.
class Metrics {
 public:
  void add(std::string_view name, u64 delta = 1);
  void set_gauge(std::string_view name, double value);
  u64 counter(std::string_view name) const;   ///< 0 if never added
  double gauge(std::string_view name) const;  ///< 0.0 if never set

  /// The histogram registered under `name`, created empty on first use.
  /// The reference stays valid for the registry's lifetime (clear()
  /// excepted), so hot paths may cache it and record() without re-lookup.
  /// Names may carry a Prometheus-style label block — see prometheus.hpp's
  /// labeled_series() — which the exposition renderer splits back out.
  Histogram& histogram(std::string_view name);
  void record(std::string_view name, double value);  ///< lookup + record

  std::map<std::string, u64> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, Histogram::Snapshot> histograms() const;
  void clear();

  /// The process-wide registry (long-lived daemons; tests use instances).
  static Metrics& process();

 private:
  mutable std::mutex mu_;
  std::map<std::string, u64> counters_;
  std::map<std::string, double> gauges_;
  /// unique_ptr: Histogram holds a mutex (immovable); map nodes keep the
  /// pointed-to histograms stable across inserts.
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Thread-safe span collector.  Create one per run, pass `&tracer` (or
/// nullptr for off) down the pipeline, then export.
class Tracer {
 public:
  Tracer();

  /// RAII span.  `tracer` may be null: the scope is then a no-op branch.
  /// When `dev` is non-null the span captures the device-counter delta over
  /// its lifetime and models its seconds with `model` (default PerfModel
  /// when null).  The caller must not run device work concurrently from
  /// other threads while such a span is open (the engines never do).
  class Scope {
   public:
    Scope(Tracer* tracer, std::string_view name, std::string_view category,
          device::Device* dev = nullptr,
          const device::PerfModel* model = nullptr);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    /// Attach a key/value annotation (exported as trace-event args).
    void note(std::string_view key, std::string_view value);
    /// Override the seconds this span contributes to the breakdown tables
    /// (default: its wall duration).  See SpanRecord::host_sec.
    void set_host_seconds(double sec);
    /// Assign the span to a device stream lane (Chrome exporter renders
    /// each stream as its own row).  See SpanRecord::stream.
    void set_stream(u32 stream_id);

   private:
    Tracer* tracer_;  // null = disabled scope: every member stays untouched
    device::Device* dev_ = nullptr;
    const device::PerfModel* model_ = nullptr;
    device::DeviceCounters before_{};
    u64 start_ns_ = 0;
    double host_sec_override_ = -1.0;  // < 0 = use the wall duration
    std::unique_ptr<SpanRecord> pending_;  // allocated only when enabled
  };

  /// Record a span that was timed externally (rarely needed; Scope covers
  /// the pipeline).  Returns the span id.
  u64 add_complete(SpanRecord record);

  /// Snapshot of all finished spans, in completion order.
  std::vector<SpanRecord> spans() const;

  /// Per-name totals of table_seconds() (host + modeled device), the
  /// source of the Tables I/IV breakdowns.  Restricted to `category` when
  /// non-empty.
  std::map<std::string, double> stage_breakdown(
      std::string_view category = "stage") const;

  /// Sum of device-counter deltas over spans that captured a device, plus
  /// the largest device_peak_bytes seen (drives the Table III report).
  device::DeviceCounters device_totals() const;
  u64 device_peak_bytes() const;

  /// Nanoseconds since the tracer's epoch (monotonic).
  u64 now_ns() const;

  /// Per-run metrics registry exported alongside the spans.
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

 private:
  friend class Scope;
  u64 begin_span();    // allocates the next span id
  void commit(SpanRecord&& record);
  u32 thread_index();  // tracer-local dense id for the calling thread

  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  u64 next_id_ = 1;
  std::map<std::thread::id, u32> thread_ids_;
  Metrics metrics_;
};

/// Export all spans as Chrome trace_event JSON (chrome://tracing, Perfetto).
void write_chrome_trace(const std::filesystem::path& path,
                        const Tracer& tracer);

/// Export the compact machine-readable metrics JSON: stage breakdown,
/// device counter totals, and the registry (tracer.metrics()).
void write_metrics_json(const std::filesystem::path& path,
                        const Tracer& tracer);

/// Parsed-back form of write_metrics_json, for round-trip checks and the
/// benchmark harness.
struct MetricsSnapshot {
  std::map<std::string, double> stages;  ///< table seconds per stage name
  std::map<std::string, u64> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, Histogram::Snapshot> histograms;
};
MetricsSnapshot read_metrics_json(const std::filesystem::path& path);

}  // namespace gsnp::obs
