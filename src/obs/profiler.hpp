#pragma once
// gsnp::obs — per-kernel-launch profiler over the device simulator.
//
// A Profiler attaches to a Device as its LaunchListener and records one
// KernelRecord per launch: grid/block dims, the exact counter delta the
// launch produced (blocks that ran before a cancellation included), the
// allocation high-water mark, modeled seconds from PerfModel, arithmetic
// intensity, and a roofline classification derived from which PerfModel term
// dominates.  report() aggregates records by kernel name into a
// ProfileReport whose per-kernel counters sum *exactly* to the device-global
// aggregate since attach: counter movement that happens outside any launch
// (Device::fill, h2d/d2h transfers) is attributed to a synthetic "(memops)"
// row instead of being dropped.
//
// Exporters: a fixed-width text table, a Table III-style diff of two
// reports, and a deterministic JSON document (schema "gsnp-profile" v1,
// atomic publish, no timestamps — two identical runs produce bit-identical
// files).

#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/device/device.hpp"
#include "src/device/perf_model.hpp"

namespace gsnp::obs {

/// Synthetic kernel name for counter movement outside any launch
/// (Device::fill, host<->device transfers).
inline constexpr std::string_view kMemOpsName = "(memops)";
/// Aggregation bucket for launches made through the unnamed legacy overload.
inline constexpr std::string_view kUnnamedName = "(unnamed)";

/// Which PerfModel term dominates a kernel's modeled time.  Only the three
/// kernel-execution terms compete; kNone marks rows where classification is
/// meaningless (the "(memops)" row, or an all-zero delta).
enum class RooflineBound : u8 {
  kCompute,             ///< instruction issue dominates
  kCoalescedBandwidth,  ///< streaming global traffic dominates
  kRandomAccess,        ///< scattered global traffic dominates
  kNone,
};

const char* roofline_name(RooflineBound b);

/// Classify by the largest of the instruction / coalesced / random model
/// terms.  Ties break toward the cheaper-to-fix bound in the order
/// compute > coalesced > random (a tie means either lens is valid).
RooflineBound classify_roofline(const device::DeviceCounters& c,
                                const device::PerfModel& model);

/// Instructions per global-memory byte moved (the roofline x-axis).
/// Zero-byte kernels report instructions-per-one-byte to stay finite.
double arithmetic_intensity(const device::DeviceCounters& c);

/// One kernel launch as the profiler saw it.
struct KernelRecord {
  std::string name;  // "" for unnamed launches
  u32 grid_dim = 0;
  u32 block_dim = 0;
  u32 stream = 0;  // issuing stream (LaunchInfo::stream_id); 0 = default
  bool failed = false;
  device::DeviceCounters delta;
  u64 allocated_bytes = 0;    // live global bytes when the launch finished
  u64 peak_global_bytes = 0;  // device high-water mark at launch end
  double modeled_sec = 0.0;
};

/// Aggregate of all launches sharing a kernel name and issuing stream.
/// Stream-issued launches aggregate under the composite key "name@sN" (the
/// (kernel, stream) row); default-queue launches keep the bare name, so
/// serial runs produce exactly the same rows as before streams existed.
struct KernelStats {
  std::string name;  // aggregation key, "name" or "name@sN"
  u32 stream = 0;    // 0 = default queue
  u64 launches = 0;
  u64 blocks = 0;     // total grid blocks across launches
  u32 block_dim = 0;  // of the most recent launch
  u64 failed = 0;
  device::DeviceCounters total;
  u64 peak_global_bytes = 0;  // max over launches
  double modeled_sec = 0.0;
  double intensity = 0.0;
  RooflineBound bound = RooflineBound::kNone;
};

struct ProfileReport {
  /// Sorted by modeled seconds descending, then name ascending.
  std::vector<KernelStats> kernels;
  /// Exact device-global counter movement since the profiler attached;
  /// equals the field-wise sum over `kernels` (including "(memops)").
  device::DeviceCounters total;
  double modeled_sec = 0.0;
  u64 peak_global_bytes = 0;  // run high-water mark
  u64 launches = 0;           // individual launch records
};

/// Attaches to `dev` on construction, detaches on destruction.  Thread-safe
/// with respect to concurrent launches (the simulator notifies from the
/// launching host thread).
class Profiler final : public device::LaunchListener {
 public:
  explicit Profiler(device::Device& dev,
                    const device::PerfModel& model = device::PerfModel{});
  ~Profiler() override;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void on_kernel_launch(const device::LaunchInfo& info) override;

  std::vector<KernelRecord> records() const;

  /// Aggregate everything seen so far (plus any counter movement since the
  /// last launch, folded into "(memops)").  Callable repeatedly.
  ProfileReport report() const;

  const device::PerfModel& model() const { return model_; }

 private:
  device::Device* dev_;
  device::PerfModel model_;
  device::DeviceCounters attach_;  // device aggregate at attach time

  mutable std::mutex mu_;
  device::DeviceCounters last_seen_;  // device aggregate at last record
  device::DeviceCounters memops_;     // between-launch movement accumulated
  std::vector<KernelRecord> records_;
};

/// Fixed-width per-kernel table (one row per KernelStats plus a totals row).
std::string format_profile_table(const ProfileReport& report);

/// Table III-style comparison of two reports: for every kernel in either,
/// base and other counter rows plus an other/base percentage row.
std::string format_profile_diff(const ProfileReport& base,
                                const ProfileReport& other,
                                std::string_view base_label,
                                std::string_view other_label);

/// Deterministic JSON export (schema "gsnp-profile" v1): kernels keyed by
/// name in lexicographic order, no timestamps, atomic publish via a .part
/// sibling.  Throws gsnp::Error on I/O failure.
void write_profile_json(const std::filesystem::path& path,
                        const ProfileReport& report);

/// Parse a document written by write_profile_json.  Throws gsnp::Error on
/// malformed input or schema mismatch.
ProfileReport read_profile_json(const std::filesystem::path& path);

}  // namespace gsnp::obs
