#pragma once
// Deterministic, fast pseudo-random number generation (xoshiro256**) used by
// the synthetic genome / read simulators and the benchmark workload
// generators.  std::mt19937_64 would work but xoshiro is ~2x faster and the
// simulators draw billions of variates at benchmark scale.

#include <cstdint>
#include <limits>

#include "src/common/types.hpp"

namespace gsnp {

/// splitmix64: used to expand a single seed into xoshiro state.
constexpr u64 splitmix64_next(u64& state) noexcept {
  u64 z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna; public-domain reference algorithm.
class Rng {
 public:
  using result_type = u64;

  explicit constexpr Rng(u64 seed = 0x853C49E6748FEA9BULL) noexcept {
    u64 sm = seed;
    for (auto& s : state_) s = splitmix64_next(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<u64>::max();
  }

  constexpr u64 operator()() noexcept {
    const u64 result = rotl(state_[1] * 5, 7) * 9;
    const u64 t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift reduction.
  constexpr u64 uniform(u64 bound) noexcept {
    const u64 x = (*this)();
    // 128-bit multiply-high; unbiased enough for simulation workloads.
    return static_cast<u64>((static_cast<unsigned __int128>(x) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform_double() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with success probability p.
  constexpr bool bernoulli(double p) noexcept { return uniform_double() < p; }

  /// Uniform integer in [lo, hi] inclusive.
  constexpr i64 uniform_range(i64 lo, i64 hi) noexcept {
    return lo + static_cast<i64>(uniform(static_cast<u64>(hi - lo + 1)));
  }

 private:
  static constexpr u64 rotl(u64 x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  u64 state_[4] = {};
};

}  // namespace gsnp
