#pragma once
// Error handling helpers.  GSNP uses exceptions for unrecoverable conditions
// (malformed input files, broken invariants at API boundaries) and GSNP_CHECK
// as an always-on assertion with a formatted message.

#include <sstream>
#include <stdexcept>
#include <string>

namespace gsnp {

/// Exception thrown for malformed input data or violated API contracts.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "GSNP_CHECK failed: (" << expr << ") at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace gsnp

/// Always-on checked precondition; throws gsnp::Error with location info.
#define GSNP_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) ::gsnp::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (0)

/// Checked precondition with a streamed message: GSNP_CHECK_MSG(x > 0, "x=" << x).
#define GSNP_CHECK_MSG(cond, msg_stream)                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::ostringstream gsnp_check_os_;                                   \
      gsnp_check_os_ << msg_stream;                                        \
      ::gsnp::detail::check_failed(#cond, __FILE__, __LINE__,              \
                                   gsnp_check_os_.str());                  \
    }                                                                      \
  } while (0)
