#pragma once
// Fundamental nucleotide / strand / quality types shared by every GSNP module.
//
// Bases are encoded 0..3 in alphabetical order (A=0, C=1, G=2, T=3) so that the
// Watson-Crick complement is simply `3 - b`.  Unknown bases ('N' and friends)
// are represented out-of-band by kInvalidBase.

#include <array>
#include <cstdint>
#include <string>
#include <string_view>

namespace gsnp {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;

/// Number of distinct nucleotide bases.
inline constexpr int kNumBases = 4;
/// Sentinel for an unknown/ambiguous base ('N').
inline constexpr u8 kInvalidBase = 0xFF;

/// Number of distinct unordered allele pairs (genotypes): C(4,2) + 4 = 10.
inline constexpr int kNumGenotypes = 10;

/// Quality scores are Phred-scaled integers in [0, kQualityLevels).
inline constexpr int kQualityLevels = 64;
/// Maximum read length supported by the base_occ / base_word coordinate axis.
inline constexpr int kMaxReadLen = 256;
/// Number of strands (forward / reverse).
inline constexpr int kNumStrands = 2;

/// Forward (+) or reverse (-) strand of the reference a read aligned to.
enum class Strand : u8 { kForward = 0, kReverse = 1 };

/// Convert an ASCII nucleotide character to its 2-bit code (A=0,C=1,G=2,T=3).
/// Returns kInvalidBase for anything else (including 'N').
constexpr u8 base_from_char(char c) noexcept {
  switch (c) {
    case 'A': case 'a': return 0;
    case 'C': case 'c': return 1;
    case 'G': case 'g': return 2;
    case 'T': case 't': return 3;
    default: return kInvalidBase;
  }
}

/// Convert a 2-bit base code back to its (uppercase) ASCII character.
constexpr char char_from_base(u8 b) noexcept {
  constexpr std::array<char, 5> kChars = {'A', 'C', 'G', 'T', 'N'};
  return b < kNumBases ? kChars[b] : 'N';
}

/// Watson-Crick complement of a 2-bit base code.
constexpr u8 complement(u8 b) noexcept {
  return b < kNumBases ? static_cast<u8>(3 - b) : kInvalidBase;
}

/// True if the pair (a, b) is a transition (A<->G or C<->T); transversions are
/// every other heterozygous pair.  Transitions are ~2x more common in nature
/// and get a correspondingly larger prior in the Bayesian model.
constexpr bool is_transition(u8 a, u8 b) noexcept {
  // A=0,G=2 differ by 2; C=1,T=3 differ by 2.
  return a != b && ((a ^ b) == 2);
}

/// A diploid genotype: an unordered pair of alleles with allele1 <= allele2.
struct Genotype {
  u8 allele1 = 0;
  u8 allele2 = 0;

  constexpr bool homozygous() const noexcept { return allele1 == allele2; }
  constexpr bool operator==(const Genotype&) const noexcept = default;

  /// Two-character string such as "AG" (sorted order).
  std::string to_string() const {
    return std::string{char_from_base(allele1), char_from_base(allele2)};
  }
};

/// Rank of genotype (a1, a2), a1 <= a2, in the canonical enumeration used by
/// type_likely: the paper indexes type_likely[a1 << 2 | a2] but only ten slots
/// are live; this gives the dense 0..9 rank in the same (a1, a2) loop order.
constexpr int genotype_rank(u8 a1, u8 a2) noexcept {
  // Loop order: (0,0),(0,1),(0,2),(0,3),(1,1),(1,2),(1,3),(2,2),(2,3),(3,3).
  // Number of pairs preceding row a1: sum_{k<a1} (4-k) = a1*(9-a1)/2.
  return a1 * (9 - a1) / 2 + (a2 - a1);
}

/// Inverse of genotype_rank: the i-th genotype in canonical loop order.
constexpr Genotype genotype_from_rank(int rank) noexcept {
  constexpr std::array<Genotype, kNumGenotypes> kTable = {{
      {0, 0}, {0, 1}, {0, 2}, {0, 3},
      {1, 1}, {1, 2}, {1, 3},
      {2, 2}, {2, 3},
      {3, 3},
  }};
  return kTable[static_cast<std::size_t>(rank)];
}

/// One aligned base observation at a reference site: the observed base type,
/// its Phred quality, the 0-based coordinate on the read it came from, and the
/// strand of that read.  This quadruple is exactly what base_occ / base_word
/// index.
struct AlignedBase {
  u8 base = 0;      ///< 0..3
  u8 quality = 0;   ///< 0..kQualityLevels-1
  u16 coord = 0;    ///< 0..kMaxReadLen-1, position within the read
  Strand strand = Strand::kForward;

  constexpr bool operator==(const AlignedBase&) const noexcept = default;
};

}  // namespace gsnp
