#pragma once
// Phred quality-score arithmetic.  Sequencing qualities are integers
// q = -10 * log10(P(error)) clamped to [0, kQualityLevels).  The ASCII
// encoding follows the classic Sanger convention (offset '!').

#include <algorithm>
#include <cmath>

#include "src/common/types.hpp"

namespace gsnp {

/// ASCII offset for quality characters in alignment files (Sanger '!').
inline constexpr char kQualityAsciiOffset = '!';

/// Probability that a base call with Phred quality q is wrong.
inline double phred_to_error(int q) noexcept {
  return std::pow(10.0, -q / 10.0);
}

/// Phred quality for an error probability, clamped to the supported range.
inline int error_to_phred(double p_error) noexcept {
  if (p_error <= 0.0) return kQualityLevels - 1;
  const int q = static_cast<int>(std::lround(-10.0 * std::log10(p_error)));
  return std::clamp(q, 0, kQualityLevels - 1);
}

/// Clamp an arbitrary integer quality into the supported range.
constexpr int clamp_quality(int q) noexcept {
  return q < 0 ? 0 : (q >= kQualityLevels ? kQualityLevels - 1 : q);
}

/// ASCII character for a quality value.
constexpr char quality_to_char(int q) noexcept {
  return static_cast<char>(kQualityAsciiOffset + clamp_quality(q));
}

/// Quality value for an ASCII character (clamped into range).
constexpr int quality_from_char(char c) noexcept {
  return clamp_quality(c - kQualityAsciiOffset);
}

}  // namespace gsnp
