#pragma once
// A small fixed-size host thread pool for the overlapped genome pipeline
// (window ingest/pack prefetch and deferred output/compress tasks).
//
// Semantics chosen for pipeline correctness rather than generality:
//  - submit() returns a std::future; task exceptions are delivered through
//    it (never std::terminate).
//  - FIFO dispatch: with one worker, tasks run in submission order, so a
//    pool of size 1 degenerates to deferred-but-ordered execution.
//  - The destructor DRAINS the queue: every task submitted before
//    destruction runs to completion.  This matters during exception unwind —
//    an output task chained on a predecessor's future must not be silently
//    dropped, or the successor (possibly already running) would wait
//    forever on a future that will never be set.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace gsnp {

class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_threads) {
    if (n_threads < 1) n_threads = 1;
    workers_.reserve(n_threads);
    for (std::size_t i = 0; i < n_threads; ++i) {
      workers_.emplace_back([this] { worker(); });
    }
  }

  ~ThreadPool() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (auto& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue `fn` and return a future for its result.  Exceptions thrown by
  /// `fn` surface from future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>&>> {
    using R = std::invoke_result_t<std::decay_t<F>&>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      const std::lock_guard<std::mutex> lock(mu_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker() {
    for (;;) {
      std::function<void()> task;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
        if (queue_.empty()) return;  // stopping_ and fully drained
        task = std::move(queue_.front());
        queue_.pop_front();
      }
      task();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace gsnp
