#include "src/common/json.hpp"

#include <cctype>
#include <cstdio>

#include "src/common/error.hpp"

namespace gsnp::json {

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parse() {
    Value v = value();
    skip_ws();
    check(pos_ == text_.size(), "trailing bytes after JSON document");
    return v;
  }

 private:
  void check(bool cond, const char* what) const {
    GSNP_CHECK_MSG(cond, "JSON: " << what << " at byte " << pos_);
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  char peek() {
    check(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }
  void expect(char c) {
    check(pos_ < text_.size() && text_[pos_] == c, "unexpected character");
    ++pos_;
  }
  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  Value value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        Value v;
        v.kind = Value::Kind::kString;
        v.string = string();
        return v;
      }
      case 't': {
        check(consume("true"), "bad literal");
        Value v;
        v.kind = Value::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        check(consume("false"), "bad literal");
        Value v;
        v.kind = Value::Kind::kBool;
        return v;
      }
      case 'n': {
        check(consume("null"), "bad literal");
        return Value{};
      }
      default: return number();
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      check(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      check(pos_ < text_.size(), "unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': {
          check(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else check(false, "bad \\u escape");
          }
          // Producers in this repo emit ASCII (paths, engine names, stage
          // labels); store BMP code points naively as UTF-8.
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: check(false, "bad escape character");
      }
    }
  }

  Value number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    check(pos_ > start, "expected a value");
    Value v;
    v.kind = Value::Kind::kNumber;
    try {
      v.number = std::stod(std::string(text_.substr(start, pos_ - start)));
    } catch (const std::exception&) {
      check(false, "bad number");
    }
    return v;
  }

  Value array() {
    expect('[');
    Value v;
    v.kind = Value::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ']') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  Value object() {
    expect('{');
    Value v;
    v.kind = Value::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      if (peek() == '}') {
        ++pos_;
        return v;
      }
      expect(',');
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parse(); }

void write_escaped(std::ostream& os, std::string_view s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

const Value* find(const Value& obj, const std::string& key) {
  const auto it = obj.object.find(key);
  return it == obj.object.end() ? nullptr : &it->second;
}

std::string get_string(const Value& obj, const std::string& key) {
  const Value* v = find(obj, key);
  GSNP_CHECK_MSG(v && v->kind == Value::Kind::kString,
                 "JSON: missing string field '" << key << "'");
  return v->string;
}

double get_number(const Value& obj, const std::string& key) {
  const Value* v = find(obj, key);
  GSNP_CHECK_MSG(v && v->kind == Value::Kind::kNumber,
                 "JSON: missing numeric field '" << key << "'");
  return v->number;
}

u64 get_u64(const Value& obj, const std::string& key) {
  const Value* v = find(obj, key);
  GSNP_CHECK_MSG(v && v->kind == Value::Kind::kNumber && v->number >= 0,
                 "JSON: missing numeric field '" << key << "'");
  return static_cast<u64>(v->number);
}

bool get_bool(const Value& obj, const std::string& key) {
  const Value* v = find(obj, key);
  GSNP_CHECK_MSG(v && v->kind == Value::Kind::kBool,
                 "JSON: missing boolean field '" << key << "'");
  return v->boolean;
}

}  // namespace gsnp::json
