#pragma once
// Small string helpers for parsing the tab/space separated text formats
// (FASTA headers, SOAP alignment lines, dbSNP prior lines).

#include <charconv>
#include <cmath>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/error.hpp"

namespace gsnp {

/// Split `s` on a single separator character; empty fields are preserved.
inline std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

/// Strip leading/trailing whitespace (space, tab, CR, LF).
inline std::string_view trim(std::string_view s) {
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n';
  };
  while (!s.empty() && is_ws(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_ws(s.back())) s.remove_suffix(1);
  return s;
}

/// Outcome of a non-throwing integer parse: overflow is distinguished from
/// garbage bytes so ingest can classify the two differently.
enum class IntParseStatus { kOk, kMalformed, kOverflow };

/// Parse an integral field without throwing.  The whole field must be
/// consumed; partial parses ("12x") are malformed.
template <typename Int>
IntParseStatus try_parse_int(std::string_view field, Int& value) {
  value = Int{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  if (ec == std::errc::result_out_of_range) return IntParseStatus::kOverflow;
  if (ec != std::errc() || ptr != field.data() + field.size())
    return IntParseStatus::kMalformed;
  return IntParseStatus::kOk;
}

/// Parse an integral field, throwing gsnp::Error on malformed input.
template <typename Int>
Int parse_int(std::string_view field, std::string_view what = "integer") {
  Int value{};
  GSNP_CHECK_MSG(try_parse_int(field, value) == IntParseStatus::kOk,
                 "bad " << what << ": '" << field << "'");
  return value;
}

/// Parse a floating-point field without throwing; rejects NaN/inf and
/// partial parses.
inline bool try_parse_double(std::string_view field, double& value) {
  value = 0.0;
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  return ec == std::errc() && ptr == field.data() + field.size() &&
         std::isfinite(value);
}

/// Parse a floating-point field, throwing gsnp::Error on malformed input.
inline double parse_double(std::string_view field,
                           std::string_view what = "number") {
  // std::from_chars for double is available in libstdc++ 11+.
  double value{};
  const auto [ptr, ec] =
      std::from_chars(field.data(), field.data() + field.size(), value);
  GSNP_CHECK_MSG(ec == std::errc() && ptr == field.data() + field.size(),
                 "bad " << what << ": '" << field << "'");
  return value;
}

}  // namespace gsnp
