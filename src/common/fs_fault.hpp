#pragma once
// Filesystem fault injection — the storage mirror of the device FaultPlan
// (device.hpp).  Every durable write in the system (spool journals, run
// manifests, GSNPOUT2/GSNPTMP2 containers, quarantine sidecars, FASTA
// writers) and every durability primitive (fsync, atomic rename) funnels
// through the hooks below, so a seeded FsFaultPlan can make the Nth write to
// a chosen file class fail with a *typed* fault — ENOSPC, EIO, a short
// write that really truncates the file, a torn rename that leaves the
// `.part` staged, or a failed fsync — deterministically, the way the device
// plan fails the Nth kernel launch.
//
// The injector is process-global (armed/disarmed by tests and chaos
// harnesses; production never arms it): writers sit many layers below the
// daemon and threading a plan through every constructor would couple every
// layer to chaos testing.  Hooks are cheap when disarmed (one relaxed atomic
// load).  Plan JSON schema: FORMATS.md §13.

#include <atomic>
#include <filesystem>
#include <optional>
#include <ostream>
#include <string>
#include <string_view>

#include "src/common/error.hpp"
#include "src/common/types.hpp"

namespace gsnp {

namespace json {
struct Value;
}

/// What the injected fault looks like to the writer.
enum class FsFaultKind : u8 {
  kNone,        ///< plan disabled
  kEnospc,      ///< write fails, no bytes written (errno ENOSPC)
  kEio,         ///< write fails, no bytes written (errno EIO)
  kShortWrite,  ///< a seeded prefix lands on disk, then the write fails
  kTornRename,  ///< atomic_publish dies before the rename: `.part` stays
  kFsyncFail,   ///< fsync fails after the data was written (errno EIO)
};

const char* fs_fault_kind_name(FsFaultKind kind);
std::optional<FsFaultKind> fs_fault_kind_from_name(std::string_view name);

/// Thrown by the hooks when the armed plan triggers.  Typed so callers can
/// distinguish an injected (or real, see fsfault::write) storage failure
/// from corrupt input or broken invariants and route it to retry /
/// job-failure / typed service rejection paths.
class FsFaultError : public Error {
 public:
  FsFaultError(FsFaultKind kind, int error_number,
               const std::filesystem::path& path, u64 sequence);

  FsFaultKind kind() const { return kind_; }
  int error_number() const { return error_number_; }  ///< ENOSPC / EIO
  const std::string& path() const { return path_; }
  u64 sequence() const { return sequence_; }  ///< matching-op index that hit

 private:
  FsFaultKind kind_;
  int error_number_;
  std::string path_;
  u64 sequence_;
};

/// A seeded storage fault schedule, mirroring device::FaultPlan's
/// trigger-at-operation-count shape.  The op counter counts only operations
/// in the kind's category (writes for kEnospc/kEio/kShortWrite, fsyncs for
/// kFsyncFail, renames for kTornRename) whose path contains `path_filter`,
/// so "fail the 2nd manifest write" is `{kEnospc, 2, 1, seed, "manifest"}`
/// regardless of what else the process writes.
struct FsFaultPlan {
  FsFaultKind kind = FsFaultKind::kNone;
  i64 trigger_at = 0;        ///< matching-op index to start faulting
  i64 fault_count = 1;       ///< ops affected from the trigger on; -1 = all
  u64 seed = 0x5EEDF00DULL;  ///< short-write truncation point selection
  std::string path_filter;   ///< substring of the path; "" matches all

  bool enabled() const { return kind != FsFaultKind::kNone; }

  /// Does matching operation number `seq` fault?  (Same contract as
  /// device::FaultPlan::hits.)
  bool hits(u64 seq) const {
    if (!enabled() || static_cast<i64>(seq) < trigger_at) return false;
    return fault_count < 0 ||
           static_cast<i64>(seq) < trigger_at + fault_count;
  }
};

/// FsFaultPlan <-> JSON (`{"kind":"enospc","at":2,"count":1,"seed":7,
/// "path":"manifest"}`, FORMATS.md §13).  Parser throws gsnp::Error on
/// unknown kinds or malformed fields.
FsFaultPlan fs_fault_plan_from_json(const json::Value& value);
void encode_fs_fault_plan(std::ostream& os, const FsFaultPlan& plan);

namespace fsfault {

/// Install `plan` (resets the matching-op and injected counters).
void arm(const FsFaultPlan& plan);
/// Remove any armed plan.  Hooks become pass-through (plus real-error
/// checking in write()).
void disarm();
bool armed();
FsFaultPlan current_plan();
/// Faults injected since the last arm() — how tests synchronize with the
/// schedule ("the chaos actually happened").
u64 injected();
/// Matching operations observed since the last arm().
u64 matched_ops();

/// The shim-mediated durable append: writes `payload` to `out` (which must
/// be open on `path`).  On an armed, triggering plan: kEnospc/kEio throw
/// FsFaultError without writing; kShortWrite writes a seeded strict prefix,
/// flushes it, and then throws — the truncated bytes are really on disk.
/// Also the *real*-failure guard: after any write the stream state is
/// checked and a failed stream (actual disk full, I/O error) raises
/// FsFaultError(kEio) instead of letting ofstream fail silently.
void write(std::ostream& out, const std::filesystem::path& path,
           std::string_view payload);

/// Called by fsync_path() before the real fsync; throws on kFsyncFail.
void check_fsync(const std::filesystem::path& path);

/// Called by atomic_publish() before the rename; throws on kTornRename,
/// leaving the staged `.part` in place — exactly the residue a crash
/// between fsync and rename leaves for fsck.
void check_rename(const std::filesystem::path& tmp,
                  const std::filesystem::path& target);

/// Post-write stream guard for writers that stream through the raw
/// ofstream elsewhere: throws FsFaultError(kEio) when `out` has failed.
void check_stream(const std::ostream& out, const std::filesystem::path& path,
                  const char* what);

}  // namespace fsfault

}  // namespace gsnp
