#pragma once
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the integrity
// checksum used by the fault-tolerance layer: every host<->device transfer is
// verified end-to-end, and every frame of the compressed containers
// (GSNPOUT2 / GSNPTMP2) carries the CRC of its payload so corruption is
// caught at read time instead of producing garbage rows.
//
// Implementation: slicing-by-4 table lookup, ~1 GB/s on one core — cheap
// next to the simulation and codec work it guards.  The tables are built on
// first use (thread-safe static initialization).

#include <array>
#include <cstddef>
#include <filesystem>
#include <fstream>
#include <span>

#include "src/common/error.hpp"
#include "src/common/types.hpp"

namespace gsnp {

namespace detail {

struct Crc32Tables {
  std::array<std::array<u32, 256>, 4> t;

  Crc32Tables() {
    for (u32 i = 0; i < 256; ++i) {
      u32 c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[0][i] = c;
    }
    for (u32 i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xFF];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xFF];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xFF];
    }
  }
};

inline const Crc32Tables& crc32_tables() {
  static const Crc32Tables tables;
  return tables;
}

}  // namespace detail

/// Incremental update: feed `n` bytes into a running CRC state.  `crc` is the
/// *internal* (pre-inverted) state; start from crc32_init() and finalize with
/// crc32_final(), or use the one-shot crc32() helpers below.
inline u32 crc32_update(u32 crc, const void* data, std::size_t n) {
  const auto& t = detail::crc32_tables().t;
  const u8* p = static_cast<const u8*>(data);
  while (n >= 4) {
    crc ^= static_cast<u32>(p[0]) | static_cast<u32>(p[1]) << 8 |
           static_cast<u32>(p[2]) << 16 | static_cast<u32>(p[3]) << 24;
    crc = t[3][crc & 0xFF] ^ t[2][(crc >> 8) & 0xFF] ^
          t[1][(crc >> 16) & 0xFF] ^ t[0][crc >> 24];
    p += 4;
    n -= 4;
  }
  while (n--) crc = t[0][(crc ^ *p++) & 0xFF] ^ (crc >> 8);
  return crc;
}

inline constexpr u32 crc32_init() { return 0xFFFFFFFFu; }
inline constexpr u32 crc32_final(u32 state) { return state ^ 0xFFFFFFFFu; }

/// One-shot CRC-32 of a byte range ("123456789" -> 0xCBF43926).
inline u32 crc32(const void* data, std::size_t n) {
  return crc32_final(crc32_update(crc32_init(), data, n));
}

inline u32 crc32(std::span<const u8> bytes) {
  return crc32(bytes.data(), bytes.size());
}

/// Streaming accumulator for multi-buffer checksums.
class Crc32 {
 public:
  void update(const void* data, std::size_t n) {
    state_ = crc32_update(state_, data, n);
  }
  u32 value() const { return crc32_final(state_); }

 private:
  u32 state_ = crc32_init();
};

/// CRC-32 of a whole file (manifest output verification on --resume).
inline u32 crc32_file(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  GSNP_CHECK_MSG(in.good(), "cannot open for checksum " << path);
  Crc32 crc;
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0)
    crc.update(buf, static_cast<std::size_t>(in.gcount()));
  GSNP_CHECK_MSG(in.eof(), "read failed while checksumming " << path);
  return crc.value();
}

}  // namespace gsnp
