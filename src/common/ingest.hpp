#pragma once
// Hardened ingest: the shared machinery every loader of untrusted text input
// (SOAP alignment, SAM, dbSNP priors, FASTA) uses to contain malformed
// records instead of aborting a whole-genome run.
//
//  * ParseError — a structured gsnp::Error carrying (file, line number,
//    field, reason code), so a strict-mode abort pinpoints the offending
//    byte range and a lenient-mode skip is classifiable.
//  * IngestPolicy — strict (throw on the first malformed record; the
//    historical behaviour) vs lenient (skip malformed records into a
//    quarantine file, bounded by an error budget).
//  * IngestStats — per-reason skip counters, threaded through RunReport and
//    the whole-genome JSON manifest for observability.
//  * QuarantineWriter — the sidecar file of skipped records (FORMATS.md §11).
//
// Resource guards (max line bytes, max read length, position caps) live in
// IngestPolicy / ParseContext so every parser enforces the same limits.

#include <array>
#include <filesystem>
#include <fstream>
#include <optional>
#include <string>
#include <string_view>

#include "src/common/strings.hpp"
#include "src/common/types.hpp"

namespace gsnp {

/// Why a record was rejected.  Values are stable: reason names appear in
/// quarantine files and run manifests (FORMATS.md §11).
enum class IngestReason : u8 {
  kTruncatedRecord,     ///< fewer fields than the format requires
  kBadInteger,          ///< non-numeric bytes in an integer field
  kIntegerOverflow,     ///< integer field exceeds its type's range
  kBadCigar,            ///< CIGAR op with a missing/zero count or unknown op
  kCigarOverflow,       ///< CIGAR count overflows u32 / the u16 read length
  kLengthMismatch,      ///< seq/qual/declared-length/CIGAR disagree
  kBadField,            ///< enum-like field out of domain (strand, bases, ...)
  kPositionOutOfRange,  ///< pos not 1-based, absurd, or past the reference end
  kSortOrderViolation,  ///< input not coordinate-sorted
  kLineTooLong,         ///< line exceeds IngestPolicy::max_line_bytes
  kReadTooLong,         ///< read length exceeds IngestPolicy::max_read_length
  kBadHeader,           ///< malformed header line
  kCount
};

inline constexpr std::size_t kNumIngestReasons =
    static_cast<std::size_t>(IngestReason::kCount);

/// Stable snake_case name for a reason code (quarantine files, manifests).
const char* ingest_reason_name(IngestReason reason);
std::optional<IngestReason> ingest_reason_from_name(std::string_view name);

/// Structured parse failure: file, 1-based line number, field, reason.
class ParseError : public Error {
 public:
  ParseError(std::string file, u64 line, std::string field,
             IngestReason reason, const std::string& detail);

  const std::string& file() const { return file_; }
  u64 line() const { return line_; }
  const std::string& field() const { return field_; }
  IngestReason reason() const { return reason_; }

 private:
  std::string file_;
  std::string field_;
  u64 line_ = 0;
  IngestReason reason_ = IngestReason::kBadField;
};

enum class IngestMode { kStrict, kLenient };

/// Positions beyond this are rejected outright (no genome comes close; the
/// cap keeps pos+length arithmetic far from u64 overflow downstream).
inline constexpr u64 kMaxIngestPosition = u64{1} << 48;

/// How a loader treats malformed records, and the resource limits it
/// enforces on every line of untrusted input.
struct IngestPolicy {
  IngestMode mode = IngestMode::kStrict;

  // Lenient-mode error budget: abort (gsnp::Error) when more than
  // max_bad_records are quarantined, or when the quarantined fraction of all
  // records seen exceeds max_bad_fraction (checked only after
  // fraction_grace_records, so a bad prefix of a tiny file cannot dodge it).
  u64 max_bad_records = 100'000;
  double max_bad_fraction = 0.5;
  u64 fraction_grace_records = 1'000;

  // Resource guards, applied in both modes.
  u64 max_line_bytes = u64{1} << 20;
  u32 max_read_length = static_cast<u32>(kMaxReadLen);

  /// Lenient mode: where skipped records are written ("" = nowhere).
  std::filesystem::path quarantine_file;

  bool lenient() const { return mode == IngestMode::kLenient; }

  static IngestPolicy make_strict() { return {}; }
  static IngestPolicy make_lenient(std::filesystem::path quarantine = {}) {
    IngestPolicy p;
    p.mode = IngestMode::kLenient;
    p.quarantine_file = std::move(quarantine);
    return p;
  }
};

/// Per-file ingest outcome: how many records parsed, how many were skipped
/// as well-formed-but-unsupported, and how many were quarantined per reason.
struct IngestStats {
  u64 records_ok = 0;
  u64 records_unsupported = 0;  ///< e.g. SAM secondary/gapped records
  u64 records_quarantined = 0;  ///< malformed, skipped in lenient mode
  std::array<u64, kNumIngestReasons> by_reason{};

  u64 total() const {
    return records_ok + records_unsupported + records_quarantined;
  }
  bool clean() const {
    return records_unsupported == 0 && records_quarantined == 0;
  }
  void merge(const IngestStats& other);
  /// "ok=100 unsupported=2 quarantined=3 (bad_integer=2, bad_cigar=1)"
  std::string summary() const;
};

/// Sidecar file of quarantined records; opened lazily so clean runs write
/// nothing.  Format (FORMATS.md §11): a '#'-comment header, then one
/// tab-separated line per record: source:line, reason, field, original line
/// (truncated to kQuarantineLineCap bytes).
class QuarantineWriter {
 public:
  static constexpr std::size_t kQuarantineLineCap = 4096;

  QuarantineWriter() = default;  ///< disabled
  explicit QuarantineWriter(std::filesystem::path path)
      : path_(std::move(path)) {}

  bool enabled() const { return !path_.empty(); }
  u64 written() const { return written_; }
  const std::filesystem::path& path() const { return path_; }

  void add(const ParseError& err, std::string_view line);

 private:
  std::filesystem::path path_;
  std::ofstream out_;
  u64 written_ = 0;
};

/// Lenient-mode bookkeeping for one malformed record: count it under its
/// reason, append it to the quarantine, and enforce the error budget —
/// throws gsnp::Error when the budget is exhausted.  Callers reach here only
/// in lenient mode (strict mode propagates the ParseError directly).
void quarantine_record(const IngestPolicy& policy, IngestStats& stats,
                       QuarantineWriter* quarantine, const ParseError& err,
                       std::string_view line);

/// Location + limits handed to line parsers so they can throw ParseError
/// with full context.
struct ParseContext {
  std::string file = "<memory>";
  u64 line_no = 0;
  u32 max_read_length = static_cast<u32>(kMaxReadLen);
  u64 reference_length = 0;  ///< 0 = unknown (skip the bounds check)

  [[noreturn]] void fail(std::string field, IngestReason reason,
                         const std::string& detail) const {
    throw ParseError(file, line_no, std::move(field), reason, detail);
  }
};

/// Parse an integral field under a ParseContext, classifying failures as
/// kBadInteger vs kIntegerOverflow.
template <typename Int>
Int parse_int_ctx(std::string_view field, const ParseContext& ctx,
                  const char* what) {
  Int value{};
  switch (try_parse_int(field, value)) {
    case IntParseStatus::kOk: return value;
    case IntParseStatus::kOverflow:
      ctx.fail(what, IngestReason::kIntegerOverflow,
               "value '" + std::string(field) + "' out of range");
    case IntParseStatus::kMalformed: break;
  }
  ctx.fail(what, IngestReason::kBadInteger,
           "'" + std::string(field) + "' is not an integer");
}

}  // namespace gsnp
