#include "src/common/fs_fault.hpp"

#include <cerrno>
#include <cstring>
#include <mutex>
#include <sstream>

#include "src/common/json.hpp"
#include "src/common/rng.hpp"

namespace gsnp {

namespace {

constexpr const char* kKindNames[] = {
    "none", "enospc", "eio", "short_write", "torn_rename", "fsync_fail",
};
constexpr int kKindCount = sizeof(kKindNames) / sizeof(kKindNames[0]);

std::string describe(FsFaultKind kind, int error_number,
                     const std::filesystem::path& path, u64 sequence) {
  std::ostringstream os;
  os << "storage fault [" << fs_fault_kind_name(kind) << "] on " << path
     << " (op #" << sequence << ", errno " << error_number << " "
     << std::strerror(error_number) << ")";
  return os.str();
}

}  // namespace

const char* fs_fault_kind_name(FsFaultKind kind) {
  const int index = static_cast<int>(kind);
  GSNP_CHECK_MSG(index >= 0 && index < kKindCount,
                 "invalid FsFaultKind " << index);
  return kKindNames[index];
}

std::optional<FsFaultKind> fs_fault_kind_from_name(std::string_view name) {
  for (int i = 0; i < kKindCount; ++i) {
    if (name == kKindNames[i]) return static_cast<FsFaultKind>(i);
  }
  return std::nullopt;
}

FsFaultError::FsFaultError(FsFaultKind kind, int error_number,
                           const std::filesystem::path& path, u64 sequence)
    : Error(describe(kind, error_number, path, sequence)),
      kind_(kind),
      error_number_(error_number),
      path_(path.string()),
      sequence_(sequence) {}

FsFaultPlan fs_fault_plan_from_json(const json::Value& value) {
  GSNP_CHECK_MSG(value.kind == json::Value::Kind::kObject,
                 "fs fault plan: expected a JSON object");
  // Closed schema: a typo'd key would silently disable the chaos a test
  // thinks it armed, so unknown keys are errors.
  for (const auto& [key, member] : value.object) {
    (void)member;
    GSNP_CHECK_MSG(key == "kind" || key == "at" || key == "count" ||
                       key == "seed" || key == "path",
                   "fs fault plan: unknown key '" << key << "'");
  }
  FsFaultPlan plan;
  const std::string kind_name = json::get_string(value, "kind");
  const auto kind = fs_fault_kind_from_name(kind_name);
  GSNP_CHECK_MSG(kind.has_value(),
                 "fs fault plan: unknown kind '" << kind_name << "'");
  plan.kind = *kind;
  if (const json::Value* at = json::find(value, "at")) {
    GSNP_CHECK_MSG(at->kind == json::Value::Kind::kNumber,
                   "fs fault plan: 'at' must be a number");
    plan.trigger_at = static_cast<i64>(at->number);
  }
  if (const json::Value* count = json::find(value, "count")) {
    GSNP_CHECK_MSG(count->kind == json::Value::Kind::kNumber,
                   "fs fault plan: 'count' must be a number");
    plan.fault_count = static_cast<i64>(count->number);
  }
  if (const json::Value* seed = json::find(value, "seed")) {
    GSNP_CHECK_MSG(seed->kind == json::Value::Kind::kNumber,
                   "fs fault plan: 'seed' must be a number");
    plan.seed = static_cast<u64>(seed->number);
  }
  if (const json::Value* path = json::find(value, "path")) {
    GSNP_CHECK_MSG(path->kind == json::Value::Kind::kString,
                   "fs fault plan: 'path' must be a string");
    plan.path_filter = path->string;
  }
  GSNP_CHECK_MSG(plan.trigger_at >= 0,
                 "fs fault plan: 'at' must be >= 0, got " << plan.trigger_at);
  GSNP_CHECK_MSG(plan.fault_count >= -1 && plan.fault_count != 0,
                 "fs fault plan: 'count' must be -1 or > 0, got "
                     << plan.fault_count);
  return plan;
}

void encode_fs_fault_plan(std::ostream& os, const FsFaultPlan& plan) {
  os << "{\"kind\":";
  json::write_escaped(os, fs_fault_kind_name(plan.kind));
  os << ",\"at\":" << plan.trigger_at << ",\"count\":" << plan.fault_count
     << ",\"seed\":" << plan.seed << ",\"path\":";
  json::write_escaped(os, plan.path_filter);
  os << "}";
}

namespace fsfault {

namespace {

// The injector proper.  `armed_flag` is the fast-path gate: a relaxed load
// decides whether the (mutexed) slow path runs at all, so disarmed
// production writes pay one atomic read.
std::atomic<bool> armed_flag{false};
std::mutex state_mutex;
FsFaultPlan plan_state;        // guarded by state_mutex
u64 matched_ops_state = 0;     // guarded by state_mutex
u64 injected_state = 0;        // guarded by state_mutex

bool path_matches(const FsFaultPlan& plan, const std::filesystem::path& path) {
  return plan.path_filter.empty() ||
         path.string().find(plan.path_filter) != std::string::npos;
}

/// Counts a matching op for `category_kind` against the armed plan and, when
/// the schedule triggers, fills `plan_out`/`seq_out` and bumps the injected
/// counter.  Returns false (no fault) whenever the armed plan's kind is in a
/// different category or the path misses the filter — those ops don't even
/// advance the counter, so schedules stay deterministic per file class.
bool should_fault(FsFaultKind category_kind, const std::filesystem::path& path,
                  FsFaultPlan* plan_out, u64* seq_out) {
  if (!armed_flag.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(state_mutex);
  if (plan_state.kind != category_kind) return false;
  if (!path_matches(plan_state, path)) return false;
  const u64 seq = matched_ops_state++;
  if (!plan_state.hits(seq)) return false;
  ++injected_state;
  *plan_out = plan_state;
  *seq_out = seq;
  return true;
}

/// Write-category membership: kEnospc/kEio/kShortWrite all arm the write
/// hook, so the category check can't be a simple kind equality there.
bool is_write_kind(FsFaultKind kind) {
  return kind == FsFaultKind::kEnospc || kind == FsFaultKind::kEio ||
         kind == FsFaultKind::kShortWrite;
}

bool should_fault_write(const std::filesystem::path& path,
                        FsFaultPlan* plan_out, u64* seq_out) {
  if (!armed_flag.load(std::memory_order_relaxed)) return false;
  std::lock_guard<std::mutex> lock(state_mutex);
  if (!is_write_kind(plan_state.kind)) return false;
  if (!path_matches(plan_state, path)) return false;
  const u64 seq = matched_ops_state++;
  if (!plan_state.hits(seq)) return false;
  ++injected_state;
  *plan_out = plan_state;
  *seq_out = seq;
  return true;
}

}  // namespace

void arm(const FsFaultPlan& plan) {
  std::lock_guard<std::mutex> lock(state_mutex);
  plan_state = plan;
  matched_ops_state = 0;
  injected_state = 0;
  armed_flag.store(plan.enabled(), std::memory_order_relaxed);
}

void disarm() {
  std::lock_guard<std::mutex> lock(state_mutex);
  plan_state = FsFaultPlan{};
  armed_flag.store(false, std::memory_order_relaxed);
}

bool armed() { return armed_flag.load(std::memory_order_relaxed); }

FsFaultPlan current_plan() {
  std::lock_guard<std::mutex> lock(state_mutex);
  return plan_state;
}

u64 injected() {
  std::lock_guard<std::mutex> lock(state_mutex);
  return injected_state;
}

u64 matched_ops() {
  std::lock_guard<std::mutex> lock(state_mutex);
  return matched_ops_state;
}

void write(std::ostream& out, const std::filesystem::path& path,
           std::string_view payload) {
  FsFaultPlan plan;
  u64 seq = 0;
  if (should_fault_write(path, &plan, &seq)) {
    switch (plan.kind) {
      case FsFaultKind::kEnospc:
        throw FsFaultError(plan.kind, ENOSPC, path, seq);
      case FsFaultKind::kEio:
        throw FsFaultError(plan.kind, EIO, path, seq);
      case FsFaultKind::kShortWrite: {
        // A *strict* prefix really lands on disk: seed + sequence pick the
        // truncation point so reruns of the same schedule tear identically.
        u64 mix = plan.seed ^ (seq * 0x9E3779B97F4A7C15ULL);
        Rng rng(splitmix64_next(mix));
        const u64 keep =
            payload.empty() ? 0 : rng.uniform(static_cast<u64>(payload.size()));
        out.write(payload.data(), static_cast<std::streamsize>(keep));
        out.flush();
        throw FsFaultError(plan.kind, ENOSPC, path, seq);
      }
      default:
        break;  // unreachable: should_fault_write filters to write kinds
    }
  }
  out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  check_stream(out, path, "write");
}

void check_fsync(const std::filesystem::path& path) {
  FsFaultPlan plan;
  u64 seq = 0;
  if (should_fault(FsFaultKind::kFsyncFail, path, &plan, &seq)) {
    throw FsFaultError(FsFaultKind::kFsyncFail, EIO, path, seq);
  }
}

void check_rename(const std::filesystem::path& tmp,
                  const std::filesystem::path& target) {
  FsFaultPlan plan;
  u64 seq = 0;
  // The *target* name is what schedules filter on (".snp", "manifest.json");
  // the staged `.part` stays behind for fsck, like a crash mid-publish.
  if (should_fault(FsFaultKind::kTornRename, target, &plan, &seq)) {
    (void)tmp;
    throw FsFaultError(FsFaultKind::kTornRename, EIO, target, seq);
  }
}

void check_stream(const std::ostream& out, const std::filesystem::path& path,
                  const char* what) {
  if (out.good()) return;
  (void)what;
  throw FsFaultError(FsFaultKind::kEio, errno != 0 ? errno : EIO, path, 0);
}

}  // namespace fsfault

}  // namespace gsnp
