#pragma once
// Wall-clock timing utilities.  StopwatchSet accumulates named component
// times; it backs the per-component breakdown tables (paper Tables I and IV).

#include <chrono>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gsnp {

/// Simple monotonic wall-clock timer returning seconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A set of named accumulating stopwatches, used for component breakdowns.
/// Components are registered lazily; iteration order is insertion order so
/// breakdown tables print in pipeline order.
///
/// Thread-safe: the engines run Scope timers inside and around OpenMP
/// regions (per-window worker loops, parallel likelihood), so every
/// accumulation and read takes the internal mutex.  The hot path is a
/// per-stage add — a few per window — never per-site, so one mutex is cheap.
class StopwatchSet {
 public:
  StopwatchSet() = default;
  StopwatchSet(const StopwatchSet& o) {
    const std::lock_guard<std::mutex> lock(o.mu_);
    entries_ = o.entries_;
  }
  StopwatchSet(StopwatchSet&& o) noexcept {
    const std::lock_guard<std::mutex> lock(o.mu_);
    entries_ = std::move(o.entries_);
  }
  StopwatchSet& operator=(const StopwatchSet& o) {
    if (this != &o) {
      const std::scoped_lock lock(mu_, o.mu_);
      entries_ = o.entries_;
    }
    return *this;
  }
  StopwatchSet& operator=(StopwatchSet&& o) noexcept {
    if (this != &o) {
      const std::scoped_lock lock(mu_, o.mu_);
      entries_ = std::move(o.entries_);
    }
    return *this;
  }

  /// Add `seconds` to the named component.
  void add(const std::string& name, double seconds) {
    const std::lock_guard<std::mutex> lock(mu_);
    find_or_insert(name) += seconds;
  }

  /// Accumulated seconds for a component (0 if never recorded).
  double get(const std::string& name) const {
    const std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [key, value] : entries_)
      if (key == name) return value;
    return 0.0;
  }

  /// Sum of all components.
  double total() const {
    const std::lock_guard<std::mutex> lock(mu_);
    double t = 0.0;
    for (const auto& [key, value] : entries_) t += value;
    return t;
  }

  /// Snapshot of (name, seconds) pairs in insertion order.
  std::vector<std::pair<std::string, double>> entries() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return entries_;
  }

  void clear() {
    const std::lock_guard<std::mutex> lock(mu_);
    entries_.clear();
  }

  /// RAII scope that adds its lifetime to the named component on destruction.
  class Scope {
   public:
    Scope(StopwatchSet& set, std::string name)
        : set_(set), name_(std::move(name)) {}
    ~Scope() { set_.add(name_, timer_.seconds()); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    StopwatchSet& set_;
    std::string name_;
    Timer timer_;
  };

  Scope scope(std::string name) { return Scope(*this, std::move(name)); }

 private:
  /// Callers must hold mu_.
  double& find_or_insert(const std::string& name) {
    for (auto& [key, value] : entries_)
      if (key == name) return value;
    entries_.emplace_back(name, 0.0);
    return entries_.back().second;
  }

  mutable std::mutex mu_;
  std::vector<std::pair<std::string, double>> entries_;
};

}  // namespace gsnp
