#pragma once
// SHA-256 (FIPS 180-4) — used for the golden end-to-end output corpus and
// run-manifest digests.  Self-contained so the repo takes no dependency on a
// crypto library; this is an integrity fingerprint, not a security boundary.

#include <array>
#include <filesystem>
#include <span>
#include <string>
#include <string_view>

#include "src/common/types.hpp"

namespace gsnp {

/// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() { reset(); }

  void reset();
  void update(const void* data, std::size_t len);
  void update(std::string_view s) { update(s.data(), s.size()); }

  /// Finalize and return the 32-byte digest.  The hasher must be reset()
  /// before further use.
  std::array<u8, 32> digest();

  /// Finalize and return the digest as 64 lowercase hex characters.
  std::string hex_digest();

 private:
  void compress(const u8* block);

  std::array<u32, 8> state_{};
  std::array<u8, 64> buffer_{};
  u64 total_bytes_ = 0;
  std::size_t buffered_ = 0;
};

/// One-shot helpers.
std::string sha256_hex(std::span<const u8> data);
std::string sha256_hex(std::string_view data);
/// Hashes a file's raw bytes; throws gsnp::Error if it cannot be opened.
std::string sha256_file_hex(const std::filesystem::path& path);

}  // namespace gsnp
