#pragma once
// Bit-granular serialization used by the column codecs (2-bit base packing,
// dictionary index packing).  Bits are written LSB-first within each byte so
// that fixed-width fields can be read back with shifts and masks.

#include <cstddef>
#include <span>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/types.hpp"

namespace gsnp {

/// Appends bit fields to a growing byte vector.
class BitWriter {
 public:
  /// Write the low `bits` bits of `value` (bits in 0..64).
  void write(u64 value, int bits) {
    GSNP_CHECK_MSG(bits >= 0 && bits <= 64, "bits=" << bits);
    if (bits > 32) {
      // Split so the accumulator (fill_ < 8 after draining) never overflows.
      write(value & 0xFFFFFFFFULL, 32);
      write(value >> 32, bits - 32);
      return;
    }
    if (bits < 32) value &= (1ULL << bits) - 1;
    acc_ |= value << fill_;
    fill_ += bits;
    while (fill_ >= 8) {
      bytes_.push_back(static_cast<u8>(acc_ & 0xFF));
      acc_ >>= 8;
      fill_ -= 8;
    }
  }

  /// Flush any partial byte (zero-padded) and return the buffer.
  std::vector<u8> finish() {
    if (fill_ > 0) {
      bytes_.push_back(static_cast<u8>(acc_ & 0xFF));
      acc_ = 0;
      fill_ = 0;
    }
    return std::move(bytes_);
  }

  std::size_t bit_count() const { return bytes_.size() * 8 + fill_; }

 private:
  std::vector<u8> bytes_;
  u64 acc_ = 0;
  int fill_ = 0;
};

/// Reads LSB-first bit fields from a byte span.
class BitReader {
 public:
  explicit BitReader(std::span<const u8> data) : data_(data) {}

  /// Read `bits` bits (0..57 per call; wider fields split the call).
  u64 read(int bits) {
    GSNP_CHECK_MSG(bits >= 0 && bits <= 57, "bits=" << bits);
    while (fill_ < bits) {
      GSNP_CHECK_MSG(pos_ < data_.size(), "BitReader out of data");
      acc_ |= static_cast<u64>(data_[pos_++]) << fill_;
      fill_ += 8;
    }
    const u64 value = (bits == 0) ? 0 : (acc_ & ((~0ULL) >> (64 - bits)));
    acc_ >>= bits;
    fill_ -= bits;
    return value;
  }

  /// Read a field of up to 64 bits by splitting into two reads.
  u64 read_wide(int bits) {
    if (bits <= 57) return read(bits);
    const u64 lo = read(32);
    const u64 hi = read(bits - 32);
    return lo | (hi << 32);
  }

  bool exhausted() const { return pos_ >= data_.size() && fill_ == 0; }

 private:
  std::span<const u8> data_;
  std::size_t pos_ = 0;
  u64 acc_ = 0;
  int fill_ = 0;
};

/// Number of bits needed to represent values in [0, n) (at least 1).
constexpr int bits_for(u64 n) noexcept {
  int b = 1;
  while ((1ULL << b) < n) ++b;
  return b;
}

/// LEB128-style varint append (used by sparse/delta columns).
inline void varint_append(std::vector<u8>& out, u64 value) {
  while (value >= 0x80) {
    out.push_back(static_cast<u8>(value) | 0x80);
    value >>= 7;
  }
  out.push_back(static_cast<u8>(value));
}

/// Varint decode; advances `pos`.
inline u64 varint_read(std::span<const u8> data, std::size_t& pos) {
  u64 value = 0;
  int shift = 0;
  for (;;) {
    GSNP_CHECK_MSG(pos < data.size(), "varint out of data");
    const u8 byte = data[pos++];
    value |= static_cast<u64>(byte & 0x7F) << shift;
    if (!(byte & 0x80)) return value;
    shift += 7;
    GSNP_CHECK_MSG(shift < 64, "varint too long");
  }
}

}  // namespace gsnp
