#pragma once
// Minimal JSON reading shared by the run manifest, the observability
// exporters' tests, and the benchmark-baseline validator.  Supports exactly
// JSON's grammar for objects, arrays, strings, numbers, booleans and null;
// parse errors throw gsnp::Error with a byte offset.  Writing stays with each
// producer (streamed, schema-specific); this module only standardizes the
// read side plus string escaping.

#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/types.hpp"

namespace gsnp::json {

struct Value {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Value> array;
  std::map<std::string, Value> object;
};

/// Parse a complete JSON document; throws gsnp::Error on malformed input.
Value parse(std::string_view text);

/// Write `s` as a JSON string literal (quotes + escapes) to `os`.
void write_escaped(std::ostream& os, std::string_view s);

/// Field lookup on an object value; nullptr when absent.
const Value* find(const Value& obj, const std::string& key);

/// Typed field accessors: throw gsnp::Error naming the missing/mistyped key.
std::string get_string(const Value& obj, const std::string& key);
double get_number(const Value& obj, const std::string& key);
u64 get_u64(const Value& obj, const std::string& key);
bool get_bool(const Value& obj, const std::string& key);

}  // namespace gsnp::json
