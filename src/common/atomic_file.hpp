#pragma once
// Crash-safe file publication: write to `<name>.part`, fsync, rename into
// place, fsync the directory.  A reader (or a resumed run) therefore only
// ever sees either the complete previous file or the complete new one —
// never a torn write.  POSIX-only, like the rest of the build.
//
// Both primitives route through the fsfault hooks (fs_fault.hpp) so the
// chaos layer can fail the Nth fsync or tear the Nth rename on a chosen
// file class; the hooks are one relaxed atomic load when disarmed.

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <string_view>

#include "src/common/error.hpp"
#include "src/common/fs_fault.hpp"

namespace gsnp {

/// fsync a file (or, with `directory`, a directory entry) by path.
inline void fsync_path(const std::filesystem::path& path,
                       bool directory = false) {
  fsfault::check_fsync(path);
  const int fd =
      ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY : O_RDONLY);
  GSNP_CHECK_MSG(fd >= 0, "cannot open for fsync " << path);
  const int rc = ::fsync(fd);
  ::close(fd);
  GSNP_CHECK_MSG(rc == 0, "fsync failed for " << path);
}

/// Atomically publish `tmp` as `target`: fsync the data, rename over any
/// existing target, fsync the containing directory so the rename is durable.
inline void atomic_publish(const std::filesystem::path& tmp,
                           const std::filesystem::path& target) {
  GSNP_CHECK_MSG(std::filesystem::exists(tmp),
                 "atomic_publish: missing temp file " << tmp);
  fsync_path(tmp);
  fsfault::check_rename(tmp, target);
  std::filesystem::rename(tmp, target);
  const std::filesystem::path dir = target.parent_path();
  fsync_path(dir.empty() ? std::filesystem::path(".") : dir,
             /*directory=*/true);
}

/// Write `payload` to `target` atomically: stage to `<target>.part` through
/// the fault-checked write path, then atomic_publish.  Throws FsFaultError
/// on injected or real storage failures; the staged `.part` (possibly
/// truncated, for short-write faults) is left in place for fsck, exactly as
/// a crash would leave it.
inline void write_file_atomic(const std::filesystem::path& target,
                              std::string_view payload) {
  const std::filesystem::path tmp = target.string() + ".part";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    GSNP_CHECK_MSG(out.is_open(), "cannot open for write " << tmp);
    fsfault::write(out, tmp, payload);
    out.flush();
    fsfault::check_stream(out, tmp, "flush");
  }
  atomic_publish(tmp, target);
}

}  // namespace gsnp
