#pragma once
// Crash-safe file publication: write to `<name>.part`, fsync, rename into
// place, fsync the directory.  A reader (or a resumed run) therefore only
// ever sees either the complete previous file or the complete new one —
// never a torn write.  POSIX-only, like the rest of the build.

#include <fcntl.h>
#include <unistd.h>

#include <filesystem>

#include "src/common/error.hpp"

namespace gsnp {

/// fsync a file (or, with `directory`, a directory entry) by path.
inline void fsync_path(const std::filesystem::path& path,
                       bool directory = false) {
  const int fd =
      ::open(path.c_str(), directory ? O_RDONLY | O_DIRECTORY : O_RDONLY);
  GSNP_CHECK_MSG(fd >= 0, "cannot open for fsync " << path);
  const int rc = ::fsync(fd);
  ::close(fd);
  GSNP_CHECK_MSG(rc == 0, "fsync failed for " << path);
}

/// Atomically publish `tmp` as `target`: fsync the data, rename over any
/// existing target, fsync the containing directory so the rename is durable.
inline void atomic_publish(const std::filesystem::path& tmp,
                           const std::filesystem::path& target) {
  GSNP_CHECK_MSG(std::filesystem::exists(tmp),
                 "atomic_publish: missing temp file " << tmp);
  fsync_path(tmp);
  std::filesystem::rename(tmp, target);
  const std::filesystem::path dir = target.parent_path();
  fsync_path(dir.empty() ? std::filesystem::path(".") : dir,
             /*directory=*/true);
}

}  // namespace gsnp
