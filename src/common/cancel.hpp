#pragma once
// Cooperative cancellation.  A CancelToken is an atomic flag plus a reason;
// long-running code (the engines' window loops, the genome pipeline's retry
// sleeps) polls it at natural checkpoints and unwinds with CancelledError.
// Cancellation is always *cooperative* and always *clean*: the code that
// observes the token finishes or discards its current unit of work (a torn
// `.part` output is removed, the manifest is flushed) before the exception
// propagates, so an interrupted run can be resumed instead of repaired.
//
// Producers of cancellation:
//  * the CLI's SIGINT/SIGTERM handler (reason kSignal),
//  * the service watchdog when a job overruns its deadline (kDeadline),
//  * a client cancel request (kClient),
//  * daemon shutdown, which parks jobs for later resume (kShutdown).

#include <atomic>
#include <string>

#include "src/common/error.hpp"

namespace gsnp {

/// Why a token was cancelled; kNone means "not cancelled".
enum class CancelReason : int {
  kNone = 0,
  kSignal,    ///< SIGINT/SIGTERM delivered to the process
  kDeadline,  ///< job ran past its deadline (service watchdog)
  kClient,    ///< explicit cancel request from a client
  kShutdown,  ///< daemon stopping; work is parked for resume, not abandoned
};

const char* cancel_reason_name(CancelReason reason);

/// Thrown when a cancellation point observes a cancelled token.
class CancelledError : public Error {
 public:
  CancelledError(CancelReason reason, const std::string& where)
      : Error("cancelled (" + std::string(cancel_reason_name(reason)) +
              ") at " + where),
        reason_(reason) {}

  CancelReason reason() const { return reason_; }

 private:
  CancelReason reason_;
};

/// A cancellation flag shared between a controller (signal handler, watchdog)
/// and the worker code polling it.  cancel() is async-signal-safe (a relaxed
/// atomic store); check() is the cancellation point.
class CancelToken {
 public:
  /// Request cancellation.  The first reason wins; later calls are no-ops so
  /// a deadline firing during shutdown keeps its original attribution.
  void cancel(CancelReason reason) noexcept {
    int expected = static_cast<int>(CancelReason::kNone);
    reason_.compare_exchange_strong(expected, static_cast<int>(reason),
                                    std::memory_order_relaxed);
  }

  bool cancelled() const noexcept {
    return reason_.load(std::memory_order_relaxed) !=
           static_cast<int>(CancelReason::kNone);
  }

  CancelReason reason() const noexcept {
    return static_cast<CancelReason>(reason_.load(std::memory_order_relaxed));
  }

  /// Reset to the uncancelled state (between CLI runs reusing one token).
  void reset() noexcept {
    reason_.store(static_cast<int>(CancelReason::kNone),
                  std::memory_order_relaxed);
  }

  /// Cancellation point: throws CancelledError when cancelled.
  void check(const char* where) const {
    if (cancelled()) throw CancelledError(reason(), where);
  }

 private:
  std::atomic<int> reason_{static_cast<int>(CancelReason::kNone)};
};

inline const char* cancel_reason_name(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone: return "none";
    case CancelReason::kSignal: return "signal";
    case CancelReason::kDeadline: return "deadline";
    case CancelReason::kClient: return "client";
    case CancelReason::kShutdown: return "shutdown";
  }
  return "?";
}

/// Convenience for optional tokens threaded through config structs.
inline void check_cancel(const CancelToken* token, const char* where) {
  if (token != nullptr) token->check(where);
}

}  // namespace gsnp
