#include "src/common/ingest.hpp"

#include <sstream>

#include "src/common/fs_fault.hpp"

namespace gsnp {

namespace {

constexpr const char* kReasonNames[kNumIngestReasons] = {
    "truncated_record",  "bad_integer",       "integer_overflow",
    "bad_cigar",         "cigar_overflow",    "length_mismatch",
    "bad_field",         "position_out_of_range",
    "sort_order_violation", "line_too_long",  "read_too_long",
    "bad_header",
};

std::string format_parse_error(const std::string& file, u64 line,
                               const std::string& field, IngestReason reason,
                               const std::string& detail) {
  std::ostringstream os;
  os << file << ':' << line << ": bad " << field << " ["
     << ingest_reason_name(reason) << ']';
  if (!detail.empty()) os << ": " << detail;
  return os.str();
}

}  // namespace

const char* ingest_reason_name(IngestReason reason) {
  const auto i = static_cast<std::size_t>(reason);
  return i < kNumIngestReasons ? kReasonNames[i] : "?";
}

std::optional<IngestReason> ingest_reason_from_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumIngestReasons; ++i)
    if (name == kReasonNames[i]) return static_cast<IngestReason>(i);
  return std::nullopt;
}

ParseError::ParseError(std::string file, u64 line, std::string field,
                       IngestReason reason, const std::string& detail)
    : Error(format_parse_error(file, line, field, reason, detail)),
      file_(std::move(file)),
      field_(std::move(field)),
      line_(line),
      reason_(reason) {}

void IngestStats::merge(const IngestStats& other) {
  records_ok += other.records_ok;
  records_unsupported += other.records_unsupported;
  records_quarantined += other.records_quarantined;
  for (std::size_t i = 0; i < kNumIngestReasons; ++i)
    by_reason[i] += other.by_reason[i];
}

std::string IngestStats::summary() const {
  std::ostringstream os;
  os << "ok=" << records_ok << " unsupported=" << records_unsupported
     << " quarantined=" << records_quarantined;
  if (records_quarantined > 0) {
    os << " (";
    bool first = true;
    for (std::size_t i = 0; i < kNumIngestReasons; ++i) {
      if (by_reason[i] == 0) continue;
      if (!first) os << ", ";
      os << kReasonNames[i] << '=' << by_reason[i];
      first = false;
    }
    os << ')';
  }
  return os.str();
}

void QuarantineWriter::add(const ParseError& err, std::string_view line) {
  if (!enabled()) return;
  std::ostringstream rec;
  if (!out_.is_open()) {
    out_.open(path_, std::ios::trunc);
    GSNP_CHECK_MSG(out_.good(), "cannot open quarantine file " << path_);
    rec << "#GSNP-QUARANTINE\tv1\n"
        << "#source:line\treason\tfield\toriginal_line\n";
  }
  rec << err.file() << ':' << err.line() << '\t'
      << ingest_reason_name(err.reason()) << '\t' << err.field() << '\t';
  if (line.size() > kQuarantineLineCap) {
    rec.write(line.data(), kQuarantineLineCap);
    rec << "...(+" << (line.size() - kQuarantineLineCap)
        << " bytes truncated)";
  } else {
    rec.write(line.data(), static_cast<std::streamsize>(line.size()));
  }
  rec << '\n';
  // One fault-checked write + flush per record: the quarantine is a forensic
  // sidecar and must be complete even if the run aborts right after this
  // record.  A failed write surfaces typed instead of silently losing the
  // evidence.
  fsfault::write(out_, path_, rec.str());
  out_.flush();
  fsfault::check_stream(out_, path_, "flush");
  ++written_;
}

void quarantine_record(const IngestPolicy& policy, IngestStats& stats,
                       QuarantineWriter* quarantine, const ParseError& err,
                       std::string_view line) {
  ++stats.records_quarantined;
  ++stats.by_reason[static_cast<std::size_t>(err.reason())];
  if (quarantine) quarantine->add(err, line);

  if (stats.records_quarantined > policy.max_bad_records)
    throw Error("ingest error budget exceeded: " +
                std::to_string(stats.records_quarantined) +
                " malformed records > max_bad_records=" +
                std::to_string(policy.max_bad_records) +
                "; last: " + err.what());
  const u64 total = stats.total();
  if (total >= policy.fraction_grace_records &&
      static_cast<double>(stats.records_quarantined) >
          policy.max_bad_fraction * static_cast<double>(total))
    throw Error("ingest error budget exceeded: " +
                std::to_string(stats.records_quarantined) + "/" +
                std::to_string(total) +
                " malformed records exceed max_bad_fraction=" +
                std::to_string(policy.max_bad_fraction) +
                "; last: " + err.what());
}

}  // namespace gsnp
