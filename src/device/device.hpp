#pragma once
// gsnp::device — a deterministic SIMT device simulator.
//
// This module is the documented substitution for the paper's CUDA/Tesla M2050
// environment (DESIGN.md).  Kernels are written against a CUDA-shaped API:
// a launch is a grid of thread blocks; each block has its own shared-memory
// arena and executes *phases* separated by barriers (`BlockContext::threads`
// runs a functor for every thread id and the end of the call is a
// __syncthreads()); global/shared/constant memory accesses go through
// instrumented accessors on ThreadContext.
//
// Instrumentation model (drives paper Table III):
//   * `instructions` — incremented once per memory access plus explicitly via
//     ThreadContext::inst() for arithmetic work (a transcendental such as
//     log10 is conventionally counted as kTranscendentalCost).
//   * `global_loads` / `global_stores` — one count per global access request.
//   * `shared_loads` / `shared_stores` — one count per shared access.
//   * constant-memory reads are cached on real hardware; they count one
//     instruction and no global traffic.
//   * h2d/d2h transfer bytes are tracked per copy.
// The paper reports per-warp ("PW") counters; benches divide the raw
// per-thread counts by kWarpSize for presentation.
//
// Blocks execute in parallel across host threads (OpenMP); within a block,
// threads of a phase run sequentially in tid order, which makes every kernel
// deterministic and race-free by construction provided threads write disjoint
// global locations within a phase (the CUDA discipline).

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/crc32.hpp"
#include "src/common/error.hpp"
#include "src/common/types.hpp"

namespace gsnp::device {

inline constexpr int kWarpSize = 32;
/// Instruction-count convention for a transcendental function call.
/// Calibrated against paper Table III: removing ten log10 calls plus ten
/// loads per aligned base lowered the profiler's issued-instruction count to
/// only ~73% of baseline, implying the transcendental issues few instructions
/// relative to the surrounding index arithmetic (kUpdateOverhead per
/// genotype-update iteration).
inline constexpr u64 kTranscendentalCost = 2;
inline constexpr u64 kUpdateOverhead = 8;

/// A device-level fault (failed kernel launch, corrupted transfer, wedged
/// card).  Subclass of gsnp::Error so existing catch sites still work; the
/// genome pipeline catches this type specifically to retry and degrade to
/// the CPU engine.
class DeviceFaultError : public Error {
 public:
  using Error::Error;
};

/// Device global-memory exhaustion, with the byte accounting that triggered
/// it.  Raised both by real budget violations (DeviceSpec::global_bytes, the
/// M2050's 3 GB) and by injected allocation faults.
class DeviceOomError : public DeviceFaultError {
 public:
  DeviceOomError(const std::string& what, u64 requested, u64 allocated)
      : DeviceFaultError(what), requested_bytes(requested),
        allocated_bytes(allocated) {}

  u64 requested_bytes;  ///< size of the allocation that failed
  u64 allocated_bytes;  ///< bytes already allocated when it failed
};

/// Deterministic fault-injection plan.  Device operations are counted per
/// category (allocations, kernel launches, H2D transfers, D2H transfers);
/// an operation whose 0-based sequence number falls in
/// [trigger, trigger + fault_count) fails.  `fault_count = -1` makes the
/// fault persistent (every operation from the trigger on fails) — the model
/// of a wedged card; a finite count models a transient glitch that heals,
/// e.g. `fault_count = max_attempts` fails every retry of one chromosome
/// and then clears.  Transfer corruption flips one seeded-random byte of the
/// destination copy; the end-to-end transfer CRC then detects it.
struct FaultPlan {
  i64 fail_alloc_at = -1;    ///< allocation index to start failing (-1 = off)
  i64 fail_launch_at = -1;   ///< kernel-launch index to start failing
  i64 corrupt_h2d_at = -1;   ///< H2D transfer index to start corrupting
  i64 corrupt_d2h_at = -1;   ///< D2H transfer index to start corrupting
  i64 fault_count = 1;       ///< ops affected from the trigger on; -1 = all
  u64 seed = 0x600D5EEDULL;  ///< corruption byte / mask selection

  /// Does operation number `seq` of a category with trigger `at` fault?
  bool hits(i64 at, u64 seq) const {
    if (at < 0 || static_cast<i64>(seq) < at) return false;
    return fault_count < 0 || static_cast<i64>(seq) < at + fault_count;
  }
  bool any() const {
    return fail_alloc_at >= 0 || fail_launch_at >= 0 || corrupt_h2d_at >= 0 ||
           corrupt_d2h_at >= 0;
  }
};

/// Hardware parameters of the simulated device (defaults: Tesla M2050).
struct DeviceSpec {
  u64 global_bytes = 3ULL << 30;   ///< 3 GB global memory
  u64 shared_bytes = 48 << 10;     ///< 48 KB shared memory per block
  u64 constant_bytes = 64 << 10;   ///< 64 KB constant memory
  int max_block_threads = 1024;
  FaultPlan fault;                 ///< fault-injection plan (default: none)
};

/// Memory access pattern annotation for global accesses.  Kernel authors
/// mark accesses the way a CUDA programmer reasons about them: kCoalesced for
/// warp-consecutive addresses (served at the device's streaming bandwidth),
/// kRandom for scattered addresses (served at the random-access bandwidth).
enum class Access : u8 { kCoalesced, kRandom };

/// Aggregated hardware counters for a Device.
struct DeviceCounters {
  u64 instructions = 0;
  u64 global_loads_coalesced = 0;
  u64 global_loads_random = 0;
  u64 global_stores_coalesced = 0;
  u64 global_stores_random = 0;
  u64 global_load_bytes_coalesced = 0;
  u64 global_load_bytes_random = 0;
  u64 global_store_bytes_coalesced = 0;
  u64 global_store_bytes_random = 0;
  u64 shared_loads = 0;
  u64 shared_stores = 0;
  u64 shared_bytes = 0;
  u64 h2d_bytes = 0;
  u64 d2h_bytes = 0;
  u64 kernel_launches = 0;

  u64 global_loads() const {
    return global_loads_coalesced + global_loads_random;
  }
  u64 global_stores() const {
    return global_stores_coalesced + global_stores_random;
  }

  DeviceCounters& operator+=(const DeviceCounters& o) {
    instructions += o.instructions;
    global_loads_coalesced += o.global_loads_coalesced;
    global_loads_random += o.global_loads_random;
    global_stores_coalesced += o.global_stores_coalesced;
    global_stores_random += o.global_stores_random;
    global_load_bytes_coalesced += o.global_load_bytes_coalesced;
    global_load_bytes_random += o.global_load_bytes_random;
    global_store_bytes_coalesced += o.global_store_bytes_coalesced;
    global_store_bytes_random += o.global_store_bytes_random;
    shared_loads += o.shared_loads;
    shared_stores += o.shared_stores;
    shared_bytes += o.shared_bytes;
    h2d_bytes += o.h2d_bytes;
    d2h_bytes += o.d2h_bytes;
    kernel_launches += o.kernel_launches;
    return *this;
  }
};

class Device;

/// Everything the device knows about one finished (or failed) kernel launch.
/// `name` points at the launch site's string literal and is only valid for
/// the duration of the callback.
struct LaunchInfo {
  std::string_view name;      ///< kernel name ("" for unnamed legacy launches)
  u32 grid_dim = 0;
  u32 block_dim = 0;
  u32 stream_id = 0;          ///< issuing stream (1-based); 0 = default queue
  bool failed = false;        ///< a block threw; delta covers blocks that ran
  DeviceCounters delta;       ///< counter movement attributable to the launch
  u64 allocated_bytes = 0;    ///< global bytes live when the launch finished
  u64 peak_global_bytes = 0;  ///< device-lifetime allocation high-water mark
};

/// Observer for kernel launches (the profiler implements this; the device
/// layer cannot depend on src/obs).  At most one listener per Device; the
/// callback runs on the launching host thread after block shards have been
/// reduced into the device aggregate, and must not launch kernels or throw.
class LaunchListener {
 public:
  virtual ~LaunchListener() = default;
  virtual void on_kernel_launch(const LaunchInfo& info) = 0;
};

/// A typed allocation in simulated device global memory.  Host code must not
/// dereference it directly; kernels access it through ThreadContext, host
/// code through Device::to_host / copy_to_host.
template <typename T>
class DeviceBuffer {
 public:
  DeviceBuffer() = default;
  DeviceBuffer(DeviceBuffer&& o) noexcept { swap(o); }
  DeviceBuffer& operator=(DeviceBuffer&& o) noexcept {
    if (this != &o) {
      release();
      swap(o);
    }
    return *this;
  }
  DeviceBuffer(const DeviceBuffer&) = delete;
  DeviceBuffer& operator=(const DeviceBuffer&) = delete;
  ~DeviceBuffer() { release(); }

  u64 size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }
  u64 bytes() const { return data_.size() * sizeof(T); }

 private:
  friend class Device;
  friend class ThreadContext;

  DeviceBuffer(Device* dev, std::vector<T> data)
      : dev_(dev), data_(std::move(data)) {}

  inline void release();
  void swap(DeviceBuffer& o) noexcept {
    std::swap(dev_, o.dev_);
    std::swap(data_, o.data_);
  }

  Device* dev_ = nullptr;
  std::vector<T> data_;
};

/// A table resident in (cached) constant memory: read-only for kernels,
/// limited to DeviceSpec::constant_bytes across all live tables.
template <typename T>
class ConstantTable {
 public:
  ConstantTable() = default;
  ConstantTable(ConstantTable&& o) noexcept { swap(o); }
  ConstantTable& operator=(ConstantTable&& o) noexcept {
    if (this != &o) {
      release();
      swap(o);
    }
    return *this;
  }
  ConstantTable(const ConstantTable&) = delete;
  ConstantTable& operator=(const ConstantTable&) = delete;
  ~ConstantTable() { release(); }

  u64 size() const { return data_.size(); }
  u64 bytes() const { return data_.size() * sizeof(T); }

 private:
  friend class Device;
  friend class ThreadContext;

  ConstantTable(Device* dev, std::vector<T> data)
      : dev_(dev), data_(std::move(data)) {}

  inline void release();
  void swap(ConstantTable& o) noexcept {
    std::swap(dev_, o.dev_);
    std::swap(data_, o.data_);
  }

  Device* dev_ = nullptr;
  std::vector<T> data_;
};

class BlockContext;

/// Per-thread view inside a kernel phase: instrumented memory accessors.
class ThreadContext {
 public:
  u32 tid() const { return tid_; }
  u32 block_dim() const { return block_dim_; }
  u32 block_idx() const { return block_idx_; }
  /// Global linear thread index across the launch.
  u64 global_tid() const {
    return static_cast<u64>(block_idx_) * block_dim_ + tid_;
  }

  /// Instrumented global-memory load.
  template <typename T>
  T gload(const DeviceBuffer<T>& buf, u64 i, Access acc = Access::kRandom) {
    GSNP_CHECK_MSG(i < buf.data_.size(),
                   "device gload out of range: " << i << "/" << buf.data_.size());
    if (acc == Access::kCoalesced) {
      counters_->global_loads_coalesced++;
      counters_->global_load_bytes_coalesced += sizeof(T);
    } else {
      counters_->global_loads_random++;
      counters_->global_load_bytes_random += sizeof(T);
    }
    counters_->instructions++;
    return buf.data_[i];
  }

  /// Instrumented global-memory store.
  template <typename T>
  void gstore(DeviceBuffer<T>& buf, u64 i, T v, Access acc = Access::kRandom) {
    GSNP_CHECK_MSG(i < buf.data_.size(),
                   "device gstore out of range: " << i << "/" << buf.data_.size());
    if (acc == Access::kCoalesced) {
      counters_->global_stores_coalesced++;
      counters_->global_store_bytes_coalesced += sizeof(T);
    } else {
      counters_->global_stores_random++;
      counters_->global_store_bytes_random += sizeof(T);
    }
    counters_->instructions++;
    buf.data_[i] = v;
  }

  /// Read-modify-write on global memory (counts one load + one store).
  template <typename T>
  void gadd(DeviceBuffer<T>& buf, u64 i, T v, Access acc = Access::kRandom) {
    gstore(buf, i, static_cast<T>(gload(buf, i, acc) + v), acc);
  }

  /// Instrumented shared-memory load.
  template <typename T>
  T sload(std::span<const T> shared, u64 i) {
    GSNP_CHECK_MSG(i < shared.size(), "device sload out of range");
    counters_->shared_loads++;
    counters_->shared_bytes += sizeof(T);
    counters_->instructions++;
    return shared[i];
  }

  /// Instrumented shared-memory store.
  template <typename T>
  void sstore(std::span<T> shared, u64 i, T v) {
    GSNP_CHECK_MSG(i < shared.size(), "device sstore out of range");
    counters_->shared_stores++;
    counters_->shared_bytes += sizeof(T);
    counters_->instructions++;
    shared[i] = v;
  }

  /// Bulk global load: `n` consecutive elements as one call (counts n loads).
  /// Models a thread/block streaming a contiguous run — same counter effect
  /// as n scalar gloads, far cheaper to simulate.
  template <typename T>
  std::span<const T> gload_bulk(const DeviceBuffer<T>& buf, u64 i, u64 n,
                                Access acc = Access::kCoalesced) {
    GSNP_CHECK_MSG(i + n <= buf.data_.size(), "device gload_bulk out of range");
    if (acc == Access::kCoalesced) {
      counters_->global_loads_coalesced += n;
      counters_->global_load_bytes_coalesced += n * sizeof(T);
    } else {
      counters_->global_loads_random += n;
      counters_->global_load_bytes_random += n * sizeof(T);
    }
    counters_->instructions += n;
    return std::span<const T>(buf.data_).subspan(i, n);
  }

  /// Constant-memory read: cached on hardware, no global traffic.
  template <typename T>
  T cload(const ConstantTable<T>& table, u64 i) {
    GSNP_CHECK_MSG(i < table.data_.size(), "device cload out of range");
    counters_->instructions++;
    return table.data_[i];
  }

  /// Account `n` arithmetic/control instructions.
  void inst(u64 n = 1) { counters_->instructions += n; }

 private:
  friend class BlockContext;
  ThreadContext(u32 tid, u32 block_dim, u32 block_idx, DeviceCounters* counters)
      : tid_(tid), block_dim_(block_dim), block_idx_(block_idx),
        counters_(counters) {}

  u32 tid_;
  u32 block_dim_;
  u32 block_idx_;
  DeviceCounters* counters_;
};

/// Per-block view inside a kernel: shared-memory arena and phase execution.
class BlockContext {
 public:
  u32 block_idx() const { return block_idx_; }
  u32 grid_dim() const { return grid_dim_; }
  u32 block_dim() const { return block_dim_; }

  /// Allocate a zero-initialized array in this block's shared memory.
  /// Throws if the block's shared-memory budget is exceeded.
  template <typename T>
  std::span<T> shared_array(u64 n) {
    const u64 bytes = n * sizeof(T);
    // Align the arena cursor to the element size.
    const u64 aligned = (shared_used_ + alignof(T) - 1) & ~(alignof(T) - 1);
    GSNP_CHECK_MSG(aligned + bytes <= arena_.size(),
                   "shared memory exceeded: need " << (aligned + bytes)
                                                   << " of " << arena_.size());
    T* ptr = reinterpret_cast<T*>(arena_.data() + aligned);
    shared_used_ = aligned + bytes;
    std::fill_n(ptr, n, T{});
    return {ptr, static_cast<std::size_t>(n)};
  }

  /// Execute one SIMT phase: `fn(ThreadContext&)` for every thread of the
  /// block.  The end of the call is a block-wide barrier (__syncthreads()).
  template <typename Fn>
  void threads(Fn&& fn) {
    for (u32 tid = 0; tid < block_dim_; ++tid) {
      ThreadContext ctx(tid, block_dim_, block_idx_, counters_);
      fn(ctx);
    }
  }

  /// Convenience: a phase where only thread 0 runs (e.g. block bookkeeping).
  template <typename Fn>
  void single_thread(Fn&& fn) {
    ThreadContext ctx(0, block_dim_, block_idx_, counters_);
    fn(ctx);
  }

 private:
  friend class Device;
  BlockContext(u32 block_idx, u32 grid_dim, u32 block_dim,
               std::span<std::byte> arena, DeviceCounters* counters)
      : block_idx_(block_idx), grid_dim_(grid_dim), block_dim_(block_dim),
        arena_(arena), counters_(counters) {}

  u32 block_idx_;
  u32 grid_dim_;
  u32 block_dim_;
  std::span<std::byte> arena_;
  u64 shared_used_ = 0;
  DeviceCounters* counters_;
};

/// The simulated device: allocation, transfers, kernel launches, counters.
class Device {
 public:
  explicit Device(const DeviceSpec& spec = {});

  const DeviceSpec& spec() const { return spec_; }

  /// Allocate `n` default-initialized elements of global memory.
  template <typename T>
  DeviceBuffer<T> alloc(u64 n, T init = T{}) {
    reserve_global(n * sizeof(T));
    return DeviceBuffer<T>(this, std::vector<T>(n, init));
  }

  /// Copy host data to a fresh device buffer (counts H2D bytes).  Every
  /// transfer is CRC-verified end-to-end: the source checksum is compared to
  /// the destination copy's, so (injected) DMA corruption raises
  /// DeviceFaultError instead of propagating garbage into kernels.
  template <typename T>
  DeviceBuffer<T> to_device(std::span<const T> host) {
    reserve_global(host.size() * sizeof(T));
    counters_.h2d_bytes += host.size() * sizeof(T);
    std::vector<T> data(host.begin(), host.end());
    finish_h2d({reinterpret_cast<std::byte*>(data.data()),
                data.size() * sizeof(T)},
               crc32(host.data(), host.size() * sizeof(T)));
    return DeviceBuffer<T>(this, std::move(data));
  }

  /// Copy a device buffer back to the host (counts D2H bytes, CRC-verified).
  template <typename T>
  std::vector<T> to_host(const DeviceBuffer<T>& buf) {
    counters_.d2h_bytes += buf.bytes();
    std::vector<T> host = buf.data_;
    finish_d2h({reinterpret_cast<std::byte*>(host.data()),
                host.size() * sizeof(T)},
               crc32(buf.data_.data(), buf.bytes()));
    return host;
  }

  /// Overwrite device buffer contents from host data (sizes must match,
  /// CRC-verified like to_device).
  template <typename T>
  void upload(DeviceBuffer<T>& buf, std::span<const T> host) {
    GSNP_CHECK_MSG(host.size() == buf.data_.size(), "upload size mismatch");
    counters_.h2d_bytes += host.size() * sizeof(T);
    std::copy(host.begin(), host.end(), buf.data_.begin());
    finish_h2d({reinterpret_cast<std::byte*>(buf.data_.data()),
                buf.data_.size() * sizeof(T)},
               crc32(host.data(), host.size() * sizeof(T)));
  }

  /// Place a read-only table in constant memory (counts H2D bytes; enforces
  /// the 64 KB constant budget across live tables).
  template <typename T>
  ConstantTable<T> to_constant(std::span<const T> host) {
    const u64 bytes = host.size() * sizeof(T);
    GSNP_CHECK_MSG(constant_used_ + bytes <= spec_.constant_bytes,
                   "constant memory exceeded: " << (constant_used_ + bytes)
                                                << " > " << spec_.constant_bytes);
    constant_used_ += bytes;
    counters_.h2d_bytes += bytes;
    std::vector<T> data(host.begin(), host.end());
    finish_h2d({reinterpret_cast<std::byte*>(data.data()),
                data.size() * sizeof(T)},
               crc32(host.data(), host.size() * sizeof(T)));
    return ConstantTable<T>(this, std::move(data));
  }

  /// Device-side fill (cudaMemset-style): counts coalesced stores for the
  /// whole buffer.
  template <typename T>
  void fill(DeviceBuffer<T>& buf, T value) {
    std::fill(buf.data_.begin(), buf.data_.end(), value);
    counters_.global_stores_coalesced += buf.size();
    counters_.global_store_bytes_coalesced += buf.bytes();
    counters_.instructions += buf.size();
  }

  /// Launch `grid_dim` blocks of `block_dim` threads running `kernel`, a
  /// callable taking BlockContext&.  Blocks run in parallel across host
  /// threads; each gets a private shared-memory arena.  `name` identifies the
  /// kernel to an attached LaunchListener (the profiler aggregates by it);
  /// pass a string literal so LaunchInfo::name stays valid in the callback.
  template <typename Kernel>
  void launch(std::string_view name, u32 grid_dim, u32 block_dim,
              Kernel&& kernel) {
    if (block_dim < 1 ||
        block_dim > static_cast<u32>(spec_.max_block_threads)) {
      std::ostringstream os;
      os << "bad block_dim " << block_dim << " (max_block_threads "
         << spec_.max_block_threads << ")";
      throw DeviceFaultError(os.str());
    }
    GSNP_CHECK(grid_dim >= 1);
    begin_launch();
    // Snapshot before bumping kernel_launches so the launch's own fixed cost
    // lands inside its delta.
    const DeviceCounters before = counters_;
    counters_.kernel_launches++;
    if (listener_.load(std::memory_order_acquire) == nullptr) {
      run_blocks(grid_dim, block_dim, [&](BlockContext& blk) { kernel(blk); });
      return;
    }
    try {
      run_blocks(grid_dim, block_dim, [&](BlockContext& blk) { kernel(blk); });
    } catch (...) {
      // run_blocks has already reduced the shards of the blocks that ran, so
      // the listener still sees an exact delta for the partial launch.
      notify_launch(name, grid_dim, block_dim, before, /*failed=*/true);
      throw;
    }
    notify_launch(name, grid_dim, block_dim, before, /*failed=*/false);
  }

  /// Unnamed launch (legacy sites and one-off test kernels).  Profilers
  /// aggregate these under "(unnamed)".
  template <typename Kernel>
  void launch(u32 grid_dim, u32 block_dim, Kernel&& kernel) {
    launch(std::string_view{}, grid_dim, block_dim,
           std::forward<Kernel>(kernel));
  }

  /// Attach/detach a launch observer (at most one; nullptr detaches).  The
  /// pointer is atomic so registration from one thread is visible to
  /// launches on another without a data race (ThreadSanitizer-clean); the
  /// listener object itself must outlive any launch that can observe it.
  void set_launch_listener(LaunchListener* listener) {
    listener_.store(listener, std::memory_order_release);
  }
  LaunchListener* launch_listener() const {
    return listener_.load(std::memory_order_acquire);
  }

  /// The stream currently draining ops on this device (set by StreamPool
  /// around each op; 0 = default synchronous queue).  Stamped into
  /// LaunchInfo::stream_id so profilers can key rows by (kernel, stream).
  void set_current_stream(u32 stream_id) { current_stream_ = stream_id; }
  u32 current_stream() const { return current_stream_; }

  const DeviceCounters& counters() const { return counters_; }
  void reset_counters() { counters_ = DeviceCounters{}; }

  u64 allocated_bytes() const { return global_used_.load(); }
  u64 peak_allocated_bytes() const { return global_peak_.load(); }
  u64 constant_bytes_used() const { return constant_used_; }

  /// Secondary high-water mark for scoped measurements (the batcher reads
  /// the actual peak of each batch through this).  Resetting rebases the
  /// watermark to the bytes currently live; the lifetime peak reported by
  /// peak_allocated_bytes() is never disturbed.
  void reset_peak_watermark() { watermark_peak_.store(global_used_.load()); }
  u64 peak_since_watermark() const { return watermark_peak_.load(); }

  /// Fault injection (see FaultPlan).  Operation sequence numbers keep
  /// counting across the device's whole lifetime, so a plan can target the
  /// Nth operation of a multi-chromosome run deterministically.
  void set_fault_plan(const FaultPlan& plan) { spec_.fault = plan; }
  const FaultPlan& fault_plan() const { return spec_.fault; }
  u64 alloc_count() const { return alloc_seq_; }
  u64 launch_count() const { return launch_seq_; }
  u64 h2d_count() const { return h2d_seq_; }
  u64 d2h_count() const { return d2h_seq_; }

 private:
  template <typename T>
  friend class DeviceBuffer;
  template <typename T>
  friend class ConstantTable;

  void reserve_global(u64 bytes);
  void release_global(u64 bytes) { global_used_ -= bytes; }
  void release_constant(u64 bytes) { constant_used_ -= bytes; }

  /// Fault-injection + CRC verification tail of every transfer: optionally
  /// corrupts the destination copy per the plan, then compares its CRC to
  /// the source's and throws DeviceFaultError on mismatch.
  void begin_launch();
  void finish_h2d(std::span<std::byte> dst, u32 src_crc);
  void finish_d2h(std::span<std::byte> dst, u32 src_crc);
  void verify_transfer(const char* dir, std::span<std::byte> dst, u32 src_crc,
                       u64 seq, bool corrupt);

  /// Type-erased block loop (implemented in device.cpp so the OpenMP pragma
  /// lives in one translation unit).
  void run_blocks(u32 grid_dim, u32 block_dim,
                  const std::function<void(BlockContext&)>& body);

  /// Non-template listener notification (device.cpp) so launch() stays lean.
  void notify_launch(std::string_view name, u32 grid_dim, u32 block_dim,
                     const DeviceCounters& before, bool failed);

  DeviceSpec spec_;
  DeviceCounters counters_;
  std::atomic<LaunchListener*> listener_{nullptr};
  u32 current_stream_ = 0;
  std::atomic<u64> global_used_{0};
  std::atomic<u64> global_peak_{0};
  std::atomic<u64> watermark_peak_{0};
  u64 constant_used_ = 0;
  // Operation sequence counters driving FaultPlan triggers (host-side only).
  u64 alloc_seq_ = 0;
  u64 launch_seq_ = 0;
  u64 h2d_seq_ = 0;
  u64 d2h_seq_ = 0;
};

template <typename T>
inline void DeviceBuffer<T>::release() {
  if (dev_) dev_->release_global(bytes());
  dev_ = nullptr;
  data_.clear();
}

template <typename T>
inline void ConstantTable<T>::release() {
  if (dev_) dev_->release_constant(bytes());
  dev_ = nullptr;
  data_.clear();
}

}  // namespace gsnp::device
