#include "src/device/device.hpp"

#include <omp.h>

#include <algorithm>
#include <functional>

namespace gsnp::device {

Device::Device(const DeviceSpec& spec) : spec_(spec) {}

void Device::reserve_global(u64 bytes) {
  const u64 used = global_used_.fetch_add(bytes) + bytes;
  if (used > spec_.global_bytes) {
    global_used_ -= bytes;
    GSNP_CHECK_MSG(false, "device global memory exceeded: " << used << " > "
                                                            << spec_.global_bytes);
  }
  u64 peak = global_peak_.load();
  while (peak < used && !global_peak_.compare_exchange_weak(peak, used)) {
  }
}

void Device::run_blocks(u32 grid_dim, u32 block_dim,
                        const std::function<void(BlockContext&)>& body) {
  const int n_workers = std::max(1, omp_get_max_threads());

  // Per-worker shared-memory arenas and counter shards, reduced at the end;
  // kernels therefore never contend on the device-wide counter struct.
  std::vector<std::vector<std::byte>> arenas(
      static_cast<std::size_t>(n_workers));
  std::vector<DeviceCounters> shards(static_cast<std::size_t>(n_workers));
  for (auto& arena : arenas) arena.resize(spec_.shared_bytes);

  // Exceptions cannot cross an OpenMP region boundary; capture the first one
  // and rethrow after the loop (kernels throw on contract violations such as
  // out-of-range accesses or shared-memory overflow).
  std::exception_ptr first_error;

#pragma omp parallel for schedule(dynamic, 16) num_threads(n_workers)
  for (i64 b = 0; b < static_cast<i64>(grid_dim); ++b) {
    const auto w = static_cast<std::size_t>(omp_get_thread_num());
    BlockContext blk(static_cast<u32>(b), grid_dim, block_dim,
                     std::span<std::byte>(arenas[w]), &shards[w]);
    try {
      body(blk);
    } catch (...) {
#pragma omp critical
      if (!first_error) first_error = std::current_exception();
    }
  }

  for (const auto& shard : shards) counters_ += shard;
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace gsnp::device
