#include "src/device/device.hpp"

#ifdef _OPENMP
#include <omp.h>
#endif

#include <algorithm>
#include <mutex>
#include <functional>
#include <sstream>

#include "src/common/rng.hpp"
#include "src/device/perf_model.hpp"

namespace gsnp::device {

Device::Device(const DeviceSpec& spec) : spec_(spec) {}

void Device::reserve_global(u64 bytes) {
  const u64 seq = alloc_seq_++;
  if (spec_.fault.hits(spec_.fault.fail_alloc_at, seq)) {
    std::ostringstream os;
    os << "injected device OOM at allocation #" << seq << " (" << bytes
       << " bytes requested, " << global_used_.load() << " allocated)";
    throw DeviceOomError(os.str(), bytes, global_used_.load());
  }
  const u64 used = global_used_.fetch_add(bytes) + bytes;
  if (used > spec_.global_bytes) {
    global_used_ -= bytes;
    std::ostringstream os;
    os << "device global memory exceeded: " << bytes << " bytes requested, "
       << (used - bytes) << " allocated of " << spec_.global_bytes;
    throw DeviceOomError(os.str(), bytes, used - bytes);
  }
  u64 peak = global_peak_.load();
  while (peak < used && !global_peak_.compare_exchange_weak(peak, used)) {
  }
  u64 wpeak = watermark_peak_.load();
  while (wpeak < used && !watermark_peak_.compare_exchange_weak(wpeak, used)) {
  }
}

void Device::begin_launch() {
  const u64 seq = launch_seq_++;
  if (spec_.fault.hits(spec_.fault.fail_launch_at, seq)) {
    std::ostringstream os;
    os << "injected device fault: kernel launch #" << seq << " failed";
    throw DeviceFaultError(os.str());
  }
}

void Device::verify_transfer(const char* dir, std::span<std::byte> dst,
                             u32 src_crc, u64 seq, bool corrupt) {
  if (corrupt && !dst.empty()) {
    // Deterministic corruption: one seeded-random byte XORed with a nonzero
    // mask, different per transfer.
    Rng rng(spec_.fault.seed ^ (seq * 0x9E3779B97F4A7C15ULL));
    const u64 at = rng.uniform(dst.size());
    dst[at] ^= static_cast<std::byte>(1 + rng.uniform(255));
  }
  const u32 dst_crc = crc32(dst.data(), dst.size());
  if (dst_crc != src_crc) {
    std::ostringstream os;
    os << dir << " transfer #" << seq << " corrupted: crc " << std::hex
       << dst_crc << " != " << src_crc << " over " << std::dec << dst.size()
       << " bytes";
    throw DeviceFaultError(os.str());
  }
}

void Device::finish_h2d(std::span<std::byte> dst, u32 src_crc) {
  const u64 seq = h2d_seq_++;
  verify_transfer("h2d", dst, src_crc, seq,
                  spec_.fault.hits(spec_.fault.corrupt_h2d_at, seq));
}

void Device::finish_d2h(std::span<std::byte> dst, u32 src_crc) {
  const u64 seq = d2h_seq_++;
  verify_transfer("d2h", dst, src_crc, seq,
                  spec_.fault.hits(spec_.fault.corrupt_d2h_at, seq));
}

void Device::run_blocks(u32 grid_dim, u32 block_dim,
                        const std::function<void(BlockContext&)>& body) {
#ifdef _OPENMP
  const int n_workers = std::max(1, omp_get_max_threads());
#else
  // Built without OpenMP (e.g. the TSan preset, whose runtime cannot see
  // into libgomp): blocks run sequentially on the calling thread.
  const int n_workers = 1;
#endif

  // Per-worker shared-memory arenas and counter shards, reduced at the end;
  // kernels therefore never contend on the device-wide counter struct.
  std::vector<std::vector<std::byte>> arenas(
      static_cast<std::size_t>(n_workers));
  std::vector<DeviceCounters> shards(static_cast<std::size_t>(n_workers));
  for (auto& arena : arenas) arena.resize(spec_.shared_bytes);

  // Exceptions cannot cross an OpenMP region boundary; capture the first one
  // and rethrow after the loop (kernels throw on contract violations such as
  // out-of-range accesses or shared-memory overflow).  The cancellation flag
  // makes the abort prompt: once any block has thrown, remaining blocks are
  // skipped instead of executing the whole grid against a known-failed
  // launch (OpenMP cannot break out of a parallel for).
  std::exception_ptr first_error;
  std::atomic<bool> cancelled{false};
  std::mutex error_mu;

#ifdef _OPENMP
#pragma omp parallel for schedule(dynamic, 16) num_threads(n_workers)
#endif
  for (i64 b = 0; b < static_cast<i64>(grid_dim); ++b) {
    if (cancelled.load(std::memory_order_relaxed)) continue;
#ifdef _OPENMP
    const auto w = static_cast<std::size_t>(omp_get_thread_num());
#else
    const std::size_t w = 0;
#endif
    BlockContext blk(static_cast<u32>(b), grid_dim, block_dim,
                     std::span<std::byte>(arenas[w]), &shards[w]);
    try {
      body(blk);
    } catch (...) {
      cancelled.store(true, std::memory_order_relaxed);
      const std::lock_guard<std::mutex> lock(error_mu);
      if (!first_error) first_error = std::current_exception();
    }
  }

  // Shards are reduced exactly once, aborted launch or not: blocks that ran
  // before the cancellation still count (their work happened), blocks that
  // were skipped contributed nothing to their shard.
  for (const auto& shard : shards) counters_ += shard;
  if (first_error) std::rethrow_exception(first_error);
}

void Device::notify_launch(std::string_view name, u32 grid_dim, u32 block_dim,
                           const DeviceCounters& before, bool failed) {
  LaunchInfo info;
  info.name = name;
  info.grid_dim = grid_dim;
  info.block_dim = block_dim;
  info.stream_id = current_stream_;
  info.failed = failed;
  info.delta = counters_delta(before, counters_);
  info.allocated_bytes = global_used_.load();
  info.peak_global_bytes = global_peak_.load();
  if (auto* listener = listener_.load(std::memory_order_acquire))
    listener->on_kernel_launch(info);
}

}  // namespace gsnp::device
