#include "src/device/stream.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "src/common/error.hpp"

namespace gsnp::device {

const char* stream_op_kind_name(StreamOpKind kind) {
  switch (kind) {
    case StreamOpKind::kLaunch: return "launch";
    case StreamOpKind::kH2d: return "h2d";
    case StreamOpKind::kD2h: return "d2h";
    case StreamOpKind::kRecord: return "record";
    case StreamOpKind::kWait: return "wait";
  }
  return "?";
}

void Stream::enqueue(StreamOpKind kind, std::string name,
                     std::function<void(Device&)> fn) {
  GSNP_CHECK_MSG(kind != StreamOpKind::kRecord && kind != StreamOpKind::kWait,
                 "use Stream::record/wait for event ops");
  PendingOp op;
  op.kind = kind;
  op.name = std::move(name);
  op.fn = std::move(fn);
  queue_.push_back(std::move(op));
}

void Stream::record(const Event& event) {
  GSNP_CHECK_MSG(event.valid(), "cannot record a null Event");
  PendingOp op;
  op.kind = StreamOpKind::kRecord;
  op.name = "record";
  op.event = event.id();
  queue_.push_back(std::move(op));
}

void Stream::wait(const Event& event) {
  GSNP_CHECK_MSG(event.valid(), "cannot wait on a null Event");
  PendingOp op;
  op.kind = StreamOpKind::kWait;
  op.name = "wait";
  op.event = event.id();
  queue_.push_back(std::move(op));
}

StreamPool::StreamPool(Device& dev, u32 n_streams) : dev_(&dev) {
  GSNP_CHECK_MSG(n_streams >= 1, "StreamPool needs at least one stream");
  streams_.reserve(n_streams);
  for (u32 i = 0; i < n_streams; ++i) {
    streams_.emplace_back(new Stream(this, i + 1));
  }
  per_stream_.resize(n_streams);
  recorded_.push_back(false);  // slot 0: the null event, never recorded
}

StreamPool::~StreamPool() {
  // Dropped (e.g. during exception unwind) with work still queued: discard
  // it rather than run side effects from a destructor.
  for (auto& s : streams_) s->queue_.clear();
}

Event StreamPool::create_event() {
  recorded_.push_back(false);
  return Event(next_event_++);
}

bool StreamPool::event_recorded(const Event& event) const {
  return event.valid() && event.id() < recorded_.size() &&
         recorded_[event.id()];
}

bool StreamPool::idle() const {
  return std::all_of(streams_.begin(), streams_.end(),
                     [](const auto& s) { return s->queue_.empty(); });
}

DeviceCounters StreamPool::total_stream_counters() const {
  DeviceCounters total;
  for (const auto& c : per_stream_) total += c;
  return total;
}

void StreamPool::run_op(Stream& s, Stream::PendingOp op) {
  StreamOpRecord rec;
  rec.stream = s.id();
  rec.kind = op.kind;
  rec.name = op.name;
  rec.event = op.event;

  if (op.kind == StreamOpKind::kRecord) {
    recorded_[op.event] = true;
    log_.push_back(std::move(rec));
    return;
  }
  if (op.kind == StreamOpKind::kWait) {
    // The scheduler only dispatches a wait once its event is recorded.
    log_.push_back(std::move(rec));
    return;
  }

  if (listener_ != nullptr) listener_->on_op_begin(rec.stream, rec.kind, rec.name);
  const DeviceCounters before = dev_->counters();
  dev_->set_current_stream(s.id());
  try {
    op.fn(*dev_);
  } catch (...) {
    // Exactly-once accounting even on failure: the device reduces its
    // counter shards before rethrowing, so the delta is already final.
    dev_->set_current_stream(0);
    rec.failed = true;
    rec.delta = counters_delta(before, dev_->counters());
    per_stream_[s.id() - 1] += rec.delta;
    log_.push_back(rec);
    if (listener_ != nullptr) listener_->on_op_end(log_.back());
    for (auto& stream : streams_) stream->queue_.clear();
    throw;
  }
  dev_->set_current_stream(0);
  rec.delta = counters_delta(before, dev_->counters());
  per_stream_[s.id() - 1] += rec.delta;
  log_.push_back(std::move(rec));
  if (listener_ != nullptr) listener_->on_op_end(log_.back());
}

void StreamPool::sync() {
  while (!idle()) {
    bool progress = false;
    for (auto& sp : streams_) {
      Stream& s = *sp;
      if (s.queue_.empty()) continue;
      Stream::PendingOp& head = s.queue_.front();
      if (head.kind == StreamOpKind::kWait &&
          !(head.event < recorded_.size() && recorded_[head.event])) {
        continue;  // blocked on an unrecorded event
      }
      Stream::PendingOp op = std::move(head);
      s.queue_.pop_front();
      run_op(s, std::move(op));  // throws after clearing queues on failure
      progress = true;
    }
    if (!progress) {
      std::ostringstream oss;
      oss << "stream sync deadlock: every pending stream heads a wait on an "
             "unrecorded event (";
      for (const auto& sp : streams_) {
        if (sp->queue_.empty()) continue;
        oss << "s" << sp->id() << ":event=" << sp->queue_.front().event << " ";
      }
      oss << ")";
      for (auto& stream : streams_) stream->queue_.clear();
      throw DeviceFaultError(oss.str());
    }
  }
}

double StreamPool::modeled_wall_seconds(const PerfModel& model) const {
  std::vector<double> clock(streams_.size(), 0.0);
  std::unordered_map<u64, double> event_time;
  for (const auto& rec : log_) {
    double& t = clock[rec.stream - 1];
    switch (rec.kind) {
      case StreamOpKind::kRecord:
        event_time[rec.event] = t;
        break;
      case StreamOpKind::kWait: {
        const auto it = event_time.find(rec.event);
        if (it != event_time.end()) t = std::max(t, it->second);
        break;
      }
      default:
        t += model.seconds(rec.delta);
        break;
    }
  }
  return clock.empty() ? 0.0 : *std::max_element(clock.begin(), clock.end());
}

double StreamPool::modeled_serial_seconds(const PerfModel& model) const {
  double total = 0.0;
  for (const auto& rec : log_) total += model.seconds(rec.delta);
  return total;
}

}  // namespace gsnp::device
