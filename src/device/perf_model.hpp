#pragma once
// Analytical GPU time model.
//
// The simulator measures *what the kernels do* (instructions, coalesced and
// random global traffic, shared traffic, transfers, launches); this model
// converts those measured counts into an estimated execution time on the
// paper's hardware (NVIDIA Tesla M2050).  All "GPU seconds" reported by the
// benchmark harness are produced this way, from real measured operation
// counts — never guessed.  CPU-side times are always direct wall-clock
// measurements.  DESIGN.md documents this substitution; the model parameters
// default to the figures the paper itself reports for the M2050 (82 GB/s
// coalesced, 3.2 GB/s random measured bandwidths).

#include "src/device/device.hpp"

namespace gsnp::device {

struct PerfModel {
  /// Scalar instruction throughput: 448 cores x 1.15 GHz.
  double instructions_per_sec = 448.0 * 1.15e9;
  /// Measured global-memory bandwidths from the paper's setup (GB/s).
  double coalesced_bytes_per_sec = 82.0e9;
  double random_bytes_per_sec = 3.2e9;
  /// On-chip shared memory aggregate bandwidth (GB/s) — effectively free
  /// relative to global traffic, as on real hardware.
  double shared_bytes_per_sec = 1000.0e9;
  /// Effective PCIe 2.0 x16 transfer bandwidth (GB/s).
  double pcie_bytes_per_sec = 5.0e9;
  /// Fixed cost per kernel launch (seconds).
  double launch_overhead_sec = 5.0e-6;

  /// The additive terms of the model, individually.  The profiler
  /// (src/obs/profiler) uses these for roofline attribution: a kernel is
  /// classified by whichever term dominates its modeled time.
  struct Terms {
    double instructions = 0.0;
    double coalesced = 0.0;
    double random = 0.0;
    double shared = 0.0;
    double transfer = 0.0;
    double launch = 0.0;

    double total() const {
      return instructions + coalesced + random + shared + transfer + launch;
    }
  };

  Terms terms(const DeviceCounters& c) const {
    Terms t;
    t.instructions =
        static_cast<double>(c.instructions) / instructions_per_sec;
    t.coalesced = static_cast<double>(c.global_load_bytes_coalesced +
                                      c.global_store_bytes_coalesced) /
                  coalesced_bytes_per_sec;
    t.random = static_cast<double>(c.global_load_bytes_random +
                                   c.global_store_bytes_random) /
               random_bytes_per_sec;
    t.shared = static_cast<double>(c.shared_bytes) / shared_bytes_per_sec;
    t.transfer =
        static_cast<double>(c.h2d_bytes + c.d2h_bytes) / pcie_bytes_per_sec;
    t.launch = static_cast<double>(c.kernel_launches) * launch_overhead_sec;
    return t;
  }

  /// Estimated seconds to execute the work described by `c`.
  /// Compute and memory are summed (a deliberately simple, monotone model;
  /// the paper's own Formula 1 estimate is the same style of
  /// bytes-over-bandwidth reasoning).
  double seconds(const DeviceCounters& c) const { return terms(c).total(); }
};

/// Difference of two counter snapshots (end - begin), for timing a region.
inline DeviceCounters counters_delta(const DeviceCounters& begin,
                                     const DeviceCounters& end) {
  DeviceCounters d;
  d.instructions = end.instructions - begin.instructions;
  d.global_loads_coalesced =
      end.global_loads_coalesced - begin.global_loads_coalesced;
  d.global_loads_random = end.global_loads_random - begin.global_loads_random;
  d.global_stores_coalesced =
      end.global_stores_coalesced - begin.global_stores_coalesced;
  d.global_stores_random =
      end.global_stores_random - begin.global_stores_random;
  d.global_load_bytes_coalesced =
      end.global_load_bytes_coalesced - begin.global_load_bytes_coalesced;
  d.global_load_bytes_random =
      end.global_load_bytes_random - begin.global_load_bytes_random;
  d.global_store_bytes_coalesced =
      end.global_store_bytes_coalesced - begin.global_store_bytes_coalesced;
  d.global_store_bytes_random =
      end.global_store_bytes_random - begin.global_store_bytes_random;
  d.shared_loads = end.shared_loads - begin.shared_loads;
  d.shared_stores = end.shared_stores - begin.shared_stores;
  d.shared_bytes = end.shared_bytes - begin.shared_bytes;
  d.h2d_bytes = end.h2d_bytes - begin.h2d_bytes;
  d.d2h_bytes = end.d2h_bytes - begin.d2h_bytes;
  d.kernel_launches = end.kernel_launches - begin.kernel_launches;
  return d;
}

}  // namespace gsnp::device
