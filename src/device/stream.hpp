#pragma once
// Asynchronous device streams for the simulator (CUDA-stream-shaped).
//
// A Stream is a FIFO command queue: `launch`, `memcpy_h2d`, `memcpy_d2h` (and
// the generic `enqueue`) defer work instead of executing it.  `record` /
// `wait` provide CUDA-event-style cross-stream ordering.  Nothing runs until
// StreamPool::sync(), which drains every queue with a deterministic
// round-robin scheduler: visit streams in id order, execute exactly one ready
// operation per visit, skip a stream whose head is a wait on an event that
// has not been recorded yet, and fail loudly (rather than hang) if every
// non-empty stream is blocked.  The schedule is a pure function of the
// enqueue sequence — no wall-clock, no thread scheduling — so any pipeline
// built on streams replays the exact same interleaving every run, which is
// what makes the overlapped engine bit-identical to the serial one.
//
// Accounting: the pool snapshots the device counters around every operation,
// so each op owns an exact counter delta (per-stream sums equal the device
// aggregate over the drained ops).  The execution-order op log doubles as a
// timeline for the overlap-aware wall-clock model: replaying it with one
// clock per stream — ops advance their stream's clock by
// PerfModel::seconds(delta), `record` stamps the event, `wait` advances the
// clock to max(clock, event stamp) — yields `modeled_wall_seconds`, which
// charges max(compute, transfer) across streams that genuinely overlap
// while `modeled_serial_seconds` (the plain sum) is the no-overlap baseline.

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "src/common/types.hpp"
#include "src/device/device.hpp"
#include "src/device/perf_model.hpp"

namespace gsnp::device {

class StreamPool;

/// A cross-stream synchronization point (CUDA event).  Created by
/// StreamPool::create_event(); a default-constructed Event is null.
class Event {
 public:
  Event() = default;
  u64 id() const { return id_; }
  bool valid() const { return id_ != 0; }

 private:
  friend class StreamPool;
  explicit Event(u64 id) : id_(id) {}
  u64 id_ = 0;
};

/// What kind of work a stream operation is (drives trace lanes and lets the
/// wall-clock model distinguish compute from transfer if it ever needs to).
enum class StreamOpKind : u8 { kLaunch, kH2d, kD2h, kRecord, kWait };

const char* stream_op_kind_name(StreamOpKind kind);

/// One executed stream operation.  The pool appends these in execution order
/// (the deterministic round-robin order), each with its exact counter delta.
struct StreamOpRecord {
  u32 stream = 0;  ///< 1-based owning stream id
  StreamOpKind kind = StreamOpKind::kLaunch;
  std::string name;
  u64 event = 0;        ///< event id for kRecord / kWait, else 0
  bool failed = false;  ///< op threw (delta still captured exactly-once)
  DeviceCounters delta;
};

/// Observer of stream op execution.  The obs layer bridges this into tracer
/// spans; the device layer itself must not depend on obs.
class StreamOpListener {
 public:
  virtual ~StreamOpListener() = default;
  virtual void on_op_begin(u32 stream, StreamOpKind kind,
                           const std::string& name) = 0;
  virtual void on_op_end(const StreamOpRecord& record) = 0;
};

/// One asynchronous command queue.  Obtain from StreamPool::stream(i);
/// ids are 1-based so that stream 0 can mean "the default synchronous
/// queue" in LaunchInfo.
class Stream {
 public:
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;

  u32 id() const { return id_; }
  std::size_t pending() const { return queue_.size(); }

  /// Enqueue an arbitrary deferred device operation.  `fn` runs on the
  /// draining thread during StreamPool::sync(); everything it captures by
  /// reference must stay alive until then.
  void enqueue(StreamOpKind kind, std::string name,
               std::function<void(Device&)> fn);

  /// Deferred kernel launch (same shape as Device::launch).
  template <typename Kernel>
  void launch(std::string name, u32 grid_dim, u32 block_dim, Kernel kernel) {
    auto label = name;
    enqueue(StreamOpKind::kLaunch, std::move(name),
            [label = std::move(label), grid_dim, block_dim,
             kernel = std::move(kernel)](Device& dev) {
              dev.launch(label, grid_dim, block_dim, kernel);
            });
  }

  /// Deferred host->device copy into `dst` (allocated at execution time, so
  /// a fresh upload each drain).  `src` must stay alive until sync().
  template <typename T>
  void memcpy_h2d(std::optional<DeviceBuffer<T>>& dst, std::span<const T> src,
                  std::string name = "h2d") {
    enqueue(StreamOpKind::kH2d, std::move(name),
            [&dst, src](Device& dev) { dst.emplace(dev.to_device(src)); });
  }

  /// Deferred device->host copy.  `src` must hold a buffer by the time the
  /// op executes.
  template <typename T>
  void memcpy_d2h(std::vector<T>& dst,
                  const std::optional<DeviceBuffer<T>>& src,
                  std::string name = "d2h") {
    enqueue(StreamOpKind::kD2h, std::move(name),
            [&dst, &src](Device& dev) { dst = dev.to_host(*src); });
  }

  /// Enqueue an event record: when the scheduler reaches it, `event` becomes
  /// signalled and any stream waiting on it may proceed.
  void record(const Event& event);

  /// Enqueue a wait: the scheduler will not run anything later in this
  /// stream until `event` has been recorded (by any stream).
  void wait(const Event& event);

 private:
  friend class StreamPool;
  struct PendingOp {
    StreamOpKind kind = StreamOpKind::kLaunch;
    std::string name;
    u64 event = 0;
    std::function<void(Device&)> fn;
  };
  Stream(StreamPool* pool, u32 id) : pool_(pool), id_(id) {}

  StreamPool* pool_ = nullptr;
  u32 id_ = 0;
  std::deque<PendingOp> queue_;
};

/// Owns N streams over one Device and drains them deterministically.
class StreamPool {
 public:
  StreamPool(Device& dev, u32 n_streams);
  ~StreamPool();

  StreamPool(const StreamPool&) = delete;
  StreamPool& operator=(const StreamPool&) = delete;

  u32 size() const { return static_cast<u32>(streams_.size()); }
  Stream& stream(u32 i) { return *streams_.at(i); }

  Event create_event();
  bool event_recorded(const Event& event) const;

  /// True when every stream's queue is empty.
  bool idle() const;

  /// Drain every queue (deterministic round-robin; see file comment).
  /// Throws DeviceFaultError on a wait-dependency deadlock, and rethrows the
  /// first failing op's exception after clearing all queues (so a retry
  /// starts from a clean pool).
  void sync();

  /// Exact counter movement attributed to stream `i` (0-based index, i.e.
  /// stream id i+1) across every sync() so far.
  const DeviceCounters& stream_counters(u32 i) const {
    return per_stream_.at(i);
  }
  /// Sum of all per-stream counters (== device aggregate over drained ops).
  DeviceCounters total_stream_counters() const;

  /// Execution-order log of every drained op with exact deltas.
  const std::vector<StreamOpRecord>& log() const { return log_; }

  void set_listener(StreamOpListener* listener) { listener_ = listener; }

  /// Overlap-aware modeled wall-clock over the executed log (see file
  /// comment).  Strictly <= modeled_serial_seconds(), with equality iff no
  /// two ops overlapped.
  double modeled_wall_seconds(const PerfModel& model = {}) const;
  /// The no-overlap baseline: plain sum of per-op modeled seconds.
  double modeled_serial_seconds(const PerfModel& model = {}) const;

 private:
  friend class Stream;

  void run_op(Stream& s, Stream::PendingOp op);

  Device* dev_ = nullptr;
  std::vector<std::unique_ptr<Stream>> streams_;
  std::vector<DeviceCounters> per_stream_;
  std::vector<StreamOpRecord> log_;
  std::vector<bool> recorded_;  // indexed by event id (slot 0 unused)
  u64 next_event_ = 1;
  StreamOpListener* listener_ = nullptr;
};

}  // namespace gsnp::device
