// Tests for the backend registry (src/core/backend.hpp): the self-describing
// engine table that replaced the hard-coded EngineKind switches in the
// daemon, the CLI and the benches.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "src/core/backend.hpp"

namespace gsnp::core {
namespace {

TEST(Backend, RegistryListsEveryEngineOnce) {
  const auto registry = backend_registry();
  ASSERT_EQ(registry.size(), 4u);

  std::set<std::string> names, ids;
  std::set<EngineKind> kinds;
  for (const BackendInfo& b : registry) {
    EXPECT_TRUE(names.insert(b.name).second) << b.name;
    EXPECT_TRUE(ids.insert(b.id).second) << b.id;
    EXPECT_TRUE(kinds.insert(b.kind).second);
    EXPECT_NE(b.description, nullptr);
    EXPECT_GT(std::string(b.description).size(), 0u);
  }
  EXPECT_TRUE(names.count("soapsnp"));
  EXPECT_TRUE(names.count("gsnp-cpu"));
  EXPECT_TRUE(names.count("gsnp"));
  EXPECT_TRUE(names.count("gsnp-simd"));
}

TEST(Backend, CapabilityFlags) {
  EXPECT_FALSE(backend_info(EngineKind::kSoapsnp).needs_device);
  EXPECT_FALSE(backend_info(EngineKind::kSoapsnp).sparse);
  EXPECT_TRUE(backend_info(EngineKind::kSoapsnp).text_output);
  EXPECT_FALSE(backend_info(EngineKind::kSoapsnp).simd);

  EXPECT_FALSE(backend_info(EngineKind::kGsnpCpu).needs_device);
  EXPECT_TRUE(backend_info(EngineKind::kGsnpCpu).sparse);
  EXPECT_FALSE(backend_info(EngineKind::kGsnpCpu).text_output);

  EXPECT_TRUE(backend_info(EngineKind::kGsnp).needs_device);
  EXPECT_TRUE(backend_info(EngineKind::kGsnp).sparse);
  EXPECT_FALSE(backend_info(EngineKind::kGsnp).text_output);

  EXPECT_FALSE(backend_info(EngineKind::kGsnpSimd).needs_device);
  EXPECT_TRUE(backend_info(EngineKind::kGsnpSimd).sparse);
  EXPECT_TRUE(backend_info(EngineKind::kGsnpSimd).simd);
  // Exactly one backend carries the SIMD flag.
  int simd_count = 0;
  for (const BackendInfo& b : backend_registry()) simd_count += b.simd;
  EXPECT_EQ(simd_count, 1);
}

TEST(Backend, FindAcceptsNameAndId) {
  for (const BackendInfo& b : backend_registry()) {
    const BackendInfo* by_name = find_backend(b.name);
    const BackendInfo* by_id = find_backend(b.id);
    ASSERT_NE(by_name, nullptr) << b.name;
    ASSERT_NE(by_id, nullptr) << b.id;
    EXPECT_EQ(by_name, by_id);
    EXPECT_EQ(by_name->kind, b.kind);
  }
  EXPECT_EQ(find_backend("warp-drive"), nullptr);
  EXPECT_EQ(find_backend(""), nullptr);
  EXPECT_EQ(find_backend("GSNP"), nullptr);  // names are case-sensitive
}

TEST(Backend, RequireBackendThrowsListingValidNames) {
  EXPECT_EQ(&require_backend("gsnp-simd"),
            &backend_info(EngineKind::kGsnpSimd));
  try {
    require_backend("warp-drive");
    FAIL() << "expected UnknownBackendError";
  } catch (const UnknownBackendError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("warp-drive"), std::string::npos);
    for (const BackendInfo& b : backend_registry())
      EXPECT_NE(what.find(b.name), std::string::npos) << b.name;
  }
}

TEST(Backend, EngineNameRoundTripsThroughRegistry) {
  // engine_name stays the strict "_" id spelling (filenames, manifests);
  // engine_kind_from_name accepts both spellings via the registry.
  EXPECT_STREQ(engine_name(EngineKind::kGsnpSimd), "gsnp_simd");
  for (const BackendInfo& b : backend_registry()) {
    EXPECT_STREQ(engine_name(b.kind), b.id);
    ASSERT_TRUE(engine_kind_from_name(b.id).has_value());
    EXPECT_EQ(*engine_kind_from_name(b.id), b.kind);
    ASSERT_TRUE(engine_kind_from_name(b.name).has_value());
    EXPECT_EQ(*engine_kind_from_name(b.name), b.kind);
  }
  EXPECT_FALSE(engine_kind_from_name("warp-drive").has_value());
}

TEST(Backend, NameListMentionsEveryBackend) {
  const std::string list = backend_name_list();
  for (const BackendInfo& b : backend_registry())
    EXPECT_NE(list.find(b.name), std::string::npos) << b.name;
}

TEST(Backend, RunBackendEnforcesDeviceRequirement) {
  EngineConfig config;  // never reached: the device check fires first
  EXPECT_THROW(run_backend(backend_info(EngineKind::kGsnp), config, nullptr),
               Error);
}

}  // namespace
}  // namespace gsnp::core
