// Tests for src/obs/histogram + src/obs/prometheus: the fixed log-linear
// bucket layout (index/bound round-trips, underflow/overflow edges), exact
// count/sum/min/max accounting, the quantile contract (monotone, <= 12.5%
// overestimate, quantile(1) == max), merge associativity, bit-identical JSON
// snapshots with exact round-trips, a concurrent-recorder stress run (TSan
// coverage for the record() lock), and the Prometheus text rendering built
// on top of the snapshots.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/json.hpp"
#include "src/obs/histogram.hpp"
#include "src/obs/prometheus.hpp"
#include "src/obs/trace.hpp"

namespace gsnp::obs {
namespace {

// ---- bucket layout ---------------------------------------------------------

TEST(HistogramBuckets, NonPositiveAndTinyValuesUnderflow) {
  EXPECT_EQ(Histogram::bucket_index(0.0), Histogram::kUnderflowBucket);
  EXPECT_EQ(Histogram::bucket_index(-1.0), Histogram::kUnderflowBucket);
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMinExponent - 1)),
            Histogram::kUnderflowBucket);
  EXPECT_EQ(Histogram::bucket_index(std::nan("")), Histogram::kUnderflowBucket);
}

TEST(HistogramBuckets, HugeValuesOverflow) {
  EXPECT_EQ(Histogram::bucket_index(std::ldexp(1.0, Histogram::kMaxExponent + 1)),
            Histogram::kOverflowBucket);
  EXPECT_EQ(Histogram::bucket_index(1e300), Histogram::kOverflowBucket);
  EXPECT_EQ(Histogram::bucket_index(std::numeric_limits<double>::infinity()),
            Histogram::kOverflowBucket);
}

TEST(HistogramBuckets, EveryValueLandsInsideItsBucketBounds) {
  // Sweep octaves with several offsets per octave; each value must land in a
  // bucket whose [lower, upper) range contains it.
  for (int e = Histogram::kMinExponent; e <= Histogram::kMaxExponent; ++e) {
    for (const double frac : {0.5, 0.5625, 0.75, 0.9375, 0.999}) {
      const double v = std::ldexp(frac, e + 1);  // in [2^e, 2^(e+1))
      const int idx = Histogram::bucket_index(v);
      ASSERT_GT(idx, Histogram::kUnderflowBucket) << "value " << v;
      ASSERT_LT(idx, Histogram::kOverflowBucket) << "value " << v;
      EXPECT_LE(Histogram::bucket_lower(idx), v) << "value " << v;
      EXPECT_LT(v, Histogram::bucket_upper(idx)) << "value " << v;
    }
  }
}

TEST(HistogramBuckets, BoundsTileTheRangeWithoutGaps) {
  for (int idx = 1; idx < Histogram::kOverflowBucket - 1; ++idx) {
    EXPECT_EQ(Histogram::bucket_upper(idx), Histogram::bucket_lower(idx + 1))
        << "gap after bucket " << idx;
    EXPECT_LT(Histogram::bucket_lower(idx), Histogram::bucket_upper(idx));
  }
  EXPECT_EQ(Histogram::bucket_lower(Histogram::kUnderflowBucket), 0.0);
  EXPECT_TRUE(std::isinf(Histogram::bucket_upper(Histogram::kOverflowBucket)));
}

// ---- exact accounting ------------------------------------------------------

TEST(Histogram, CountSumMinMaxAreExact) {
  Histogram h;
  // Exactly representable values: the sum has one valid answer.
  const std::vector<double> values = {0.25, 0.5, 1.5, 2.0, 8.0, 0.125};
  double want_sum = 0.0;
  for (const double v : values) {
    h.record(v);
    want_sum += v;
  }
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, values.size());
  EXPECT_EQ(s.sum, want_sum);
  EXPECT_EQ(s.min, 0.125);
  EXPECT_EQ(s.max, 8.0);
  u64 bucketed = 0;
  for (const auto& [idx, n] : s.buckets) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, Histogram::kNumBuckets);
    bucketed += n;
  }
  EXPECT_EQ(bucketed, s.count);
}

TEST(Histogram, EmptySnapshotIsAllZero) {
  const Histogram::Snapshot s = Histogram().snapshot();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.sum, 0.0);
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_TRUE(s.buckets.empty());
  EXPECT_EQ(s.json(), "{\"count\":0,\"sum\":0,\"min\":0,\"max\":0,"
                      "\"buckets\":[]}");
}

// ---- quantiles -------------------------------------------------------------

TEST(HistogramQuantile, MonotoneAndBoundedOverestimate) {
  Histogram h;
  std::vector<double> values;
  for (int i = 1; i <= 1000; ++i) values.push_back(0.001 * i);  // 1ms..1s
  for (const double v : values) h.record(v);
  const Histogram::Snapshot s = h.snapshot();

  double prev = 0.0;
  for (const double q : {0.01, 0.10, 0.25, 0.50, 0.75, 0.90, 0.99, 1.0}) {
    const double est = s.quantile(q);
    EXPECT_GE(est, prev) << "quantile not monotone at q=" << q;
    prev = est;
    // True sample at the same ceil-rank convention.
    const auto rank = static_cast<std::size_t>(
        std::ceil(q * static_cast<double>(values.size())));
    const double truth = values[rank == 0 ? 0 : rank - 1];
    EXPECT_GE(est, truth * (1.0 - 1e-12)) << "q=" << q;
    EXPECT_LE(est, truth * 1.125 + 1e-12) << "q=" << q;
  }
  EXPECT_EQ(s.quantile(1.0), s.max);  // clamped to the observed max, exactly
}

TEST(HistogramQuantile, SingleSampleIsItsOwnEveryQuantile) {
  Histogram h;
  h.record(0.375);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.quantile(0.0), 0.375);
  EXPECT_EQ(s.quantile(0.5), 0.375);
  EXPECT_EQ(s.quantile(1.0), 0.375);
}

// ---- merge -----------------------------------------------------------------

TEST(HistogramMerge, AssociativeAndOrderIndependent) {
  // Exactly representable values so sum is order-independent too, making the
  // merged snapshots byte-comparable.
  Histogram a, b, c;
  for (const double v : {0.25, 0.5, 1.0}) a.record(v);
  for (const double v : {2.0, 4.0}) b.record(v);
  for (const double v : {0.125, 8.0, 16.0}) c.record(v);

  // (a + b) + c
  Histogram::Snapshot left = a.snapshot();
  left.merge(b.snapshot());
  left.merge(c.snapshot());
  // a + (b + c)
  Histogram::Snapshot bc = b.snapshot();
  bc.merge(c.snapshot());
  Histogram::Snapshot right = a.snapshot();
  right.merge(bc);

  EXPECT_EQ(left.json(), right.json());
  EXPECT_EQ(left.count, 8u);
  EXPECT_EQ(left.min, 0.125);
  EXPECT_EQ(left.max, 16.0);

  // Merging into a live histogram matches snapshot-level merging.
  Histogram folded;
  folded.merge(a.snapshot());
  folded.merge(b.snapshot());
  folded.merge(c.snapshot());
  EXPECT_EQ(folded.snapshot().json(), left.json());
}

TEST(HistogramMerge, EmptyIsTheIdentity) {
  Histogram a;
  for (const double v : {0.25, 1.0}) a.record(v);
  Histogram::Snapshot s = a.snapshot();
  const std::string before = s.json();
  s.merge(Histogram::Snapshot{});
  EXPECT_EQ(s.json(), before);
  Histogram::Snapshot empty;
  empty.merge(a.snapshot());
  EXPECT_EQ(empty.json(), before);
}

// ---- snapshot serialization ------------------------------------------------

TEST(HistogramSnapshot, JsonIsBitIdenticalAcrossIdenticalRuns) {
  const auto run = [] {
    Histogram h;
    for (int i = 1; i <= 64; ++i) h.record(0.013 * i);
    return h.snapshot().json();
  };
  EXPECT_EQ(run(), run());
}

TEST(HistogramSnapshot, JsonRoundTripsExactly) {
  Histogram h;
  for (const double v : {1e-9, 0.0013, 0.375, 17.25, 1e12, -1.0, 0.0})
    h.record(v);
  const Histogram::Snapshot s = h.snapshot();
  const Histogram::Snapshot back =
      Histogram::Snapshot::from_json(json::parse(s.json()));
  EXPECT_EQ(back.json(), s.json());  // %.17g survives parse -> print
  EXPECT_EQ(back.count, s.count);
  EXPECT_EQ(back.sum, s.sum);
  EXPECT_EQ(back.min, s.min);
  EXPECT_EQ(back.max, s.max);
  EXPECT_EQ(back.buckets, s.buckets);
}

TEST(HistogramSnapshot, RecordingOrderDoesNotChangeTheJson) {
  const std::vector<double> values = {0.25, 0.5, 4.0, 0.125, 2.0};
  Histogram fwd, rev;
  for (std::size_t i = 0; i < values.size(); ++i) {
    fwd.record(values[i]);
    rev.record(values[values.size() - 1 - i]);
  }
  EXPECT_EQ(fwd.snapshot().json(), rev.snapshot().json());
}

// ---- concurrency (exercised under TSan by scripts/verify.sh) ---------------

TEST(HistogramConcurrency, ParallelRecordersLoseNothing) {
  Histogram h;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t)
    workers.emplace_back([&h] {
      for (int i = 0; i < kPerThread; ++i) h.record(0.25);  // representable
    });
  for (std::thread& w : workers) w.join();
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<u64>(kThreads) * kPerThread);
  EXPECT_EQ(s.sum, 0.25 * kThreads * kPerThread);
  EXPECT_EQ(s.min, 0.25);
  EXPECT_EQ(s.max, 0.25);
}

// ---- metrics registry integration ------------------------------------------

TEST(MetricsHistogram, RegistryRecordsAndSurvivesJsonRoundTrip) {
  Tracer tracer;
  tracer.metrics().record("latency_seconds", 0.25);
  tracer.metrics().record("latency_seconds", 0.5);
  const auto snaps = tracer.metrics().histograms();
  ASSERT_EQ(snaps.count("latency_seconds"), 1u);
  EXPECT_EQ(snaps.at("latency_seconds").count, 2u);

  const std::filesystem::path path =
      std::filesystem::temp_directory_path() / "gsnp_histogram_metrics.json";
  write_metrics_json(path, tracer);
  const MetricsSnapshot back = read_metrics_json(path);
  std::filesystem::remove(path);
  ASSERT_EQ(back.histograms.count("latency_seconds"), 1u);
  EXPECT_EQ(back.histograms.at("latency_seconds").json(),
            snaps.at("latency_seconds").json());
}

// ---- Prometheus rendering --------------------------------------------------

TEST(Prometheus, RendersCountersGaugesAndHistograms) {
  Metrics m;
  m.add("jobs_done", 3);
  m.set_gauge("queue_depth", 2.0);
  m.record("wait_seconds", 0.25);
  m.record("wait_seconds", 0.5);
  const std::string text = render_prometheus(m, "t_");

  EXPECT_NE(text.find("# TYPE t_jobs_done_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("t_jobs_done_total 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_queue_depth gauge\n"), std::string::npos);
  EXPECT_NE(text.find("t_queue_depth 2\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE t_wait_seconds histogram\n"), std::string::npos);
  EXPECT_NE(text.find("t_wait_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("t_wait_seconds_sum 0.75\n"), std::string::npos);
  EXPECT_NE(text.find("t_wait_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
}

TEST(Prometheus, CumulativeBucketsAreMonotone) {
  Metrics m;
  for (int i = 1; i <= 100; ++i) m.record("lat_seconds", 0.001 * i);
  const std::string text = render_prometheus(m, "t_");
  std::istringstream in(text);
  std::string line;
  u64 prev = 0;
  u64 inf_value = 0;
  bool saw_bucket = false;
  while (std::getline(in, line)) {
    const std::string prefix = "t_lat_seconds_bucket{le=\"";
    if (line.rfind(prefix, 0) != 0) continue;
    saw_bucket = true;
    const u64 n = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(n, prev) << line;
    prev = n;
    if (line.find("+Inf") != std::string::npos) inf_value = n;
  }
  EXPECT_TRUE(saw_bucket);
  EXPECT_EQ(inf_value, 100u);  // +Inf bucket equals the sample count
}

TEST(Prometheus, LabeledSeriesGroupUnderOneFamily) {
  Metrics m;
  m.record("done_seconds", 0.25);
  m.record(labeled_series("done_seconds", "tenant", "alice"), 0.25);
  m.record(labeled_series("done_seconds", "tenant", "bob"), 0.5);
  const std::string text = render_prometheus(m, "t_");
  // Exactly one TYPE line for the family, covering all three series.
  std::size_t type_lines = 0;
  std::size_t at = 0;
  const std::string type_line = "# TYPE t_done_seconds histogram";
  while ((at = text.find(type_line, at)) != std::string::npos) {
    ++type_lines;
    at += type_line.size();
  }
  EXPECT_EQ(type_lines, 1u);
  EXPECT_NE(text.find("t_done_seconds_count{tenant=\"alice\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_done_seconds_count{tenant=\"bob\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("t_done_seconds_count 1\n"), std::string::npos);
}

TEST(Prometheus, SanitizesHostileMetricNames) {
  EXPECT_EQ(sanitize_metric_name("good_name_1"), "good_name_1");
  EXPECT_EQ(sanitize_metric_name("has-dash.and space"), "has_dash_and_space");
  EXPECT_EQ(sanitize_metric_name("9starts_with_digit"), "_9starts_with_digit");
}

}  // namespace
}  // namespace gsnp::obs
