// The batcher proof harness (ISSUE: depth-aware device batcher).
//
// Three layers: (1) a hand-computed golden pack plan pinning the cost model's
// exact arithmetic, (2) randomized-depth property tests over the packing
// invariants — every site exactly once, in position order, never over budget,
// planned occupancy consistent with brute-force classification — and (3) an
// end-to-end serial GSNP run over a skewed-depth hotspot dataset asserting
// the *measured* device watermark of every batch stays under the configured
// budget while the output bytes stay identical to the fixed-window baseline.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/batcher.hpp"
#include "src/core/genome_pipeline.hpp"
#include "src/core/kernels.hpp"
#include "src/core/run_manifest.hpp"
#include "src/core/new_pmatrix.hpp"
#include "src/core/pmatrix.hpp"
#include "src/genome/synthetic.hpp"
#include "src/reads/simulator.hpp"

namespace gsnp::core {
namespace {

namespace fs = std::filesystem;

// ---- golden pack plan -------------------------------------------------------
//
// Three sites with observation-list sizes {2, 5, 8}: all land in size class 1
// (bound 8, pad next_pow2(8) = 8) of the default bounds {1,8,16,32,64}.
// Hand arithmetic, charged phase by phase:
//   S=3, W=15:  resident = 4*15 + 8*4          =   92
//               sort     = 12*3 + 4*3*8        =  132
//               likeli   = (4*512 + 8*10) * 3  = 6384   <- dominates
//               post     = (16*10 + 4) * 3     =  492
//               peak     = 92 + 6384           = 6476
// Splitting after site 1:
//   {0,2}: S=2, W=7:  resident 52, sort 88, likeli 4256 -> peak 4308
//   {2,3}: S=1, W=8:  resident 48, sort 44, likeli 2128 -> peak 2176

constexpr u64 kGoldenOffsets[] = {0, 2, 7, 15};

TEST(BatcherGolden, SingleBatchAtExactBudget) {
  const BatchPlan plan = plan_batches(kGoldenOffsets, 6476);
  ASSERT_EQ(plan.batches.size(), 1u);
  const SiteBatch& b = plan.batches[0];
  EXPECT_EQ(b.begin, 0u);
  EXPECT_EQ(b.end, 3u);
  EXPECT_EQ(b.words_begin, 0u);
  EXPECT_EQ(b.words_end, 15u);
  EXPECT_EQ(b.planned_peak_bytes, 6476u);
  EXPECT_EQ(b.max_array_size, 8u);
  ASSERT_EQ(b.class_members.size(), sortnet::kDefaultClassBounds.size() + 1);
  EXPECT_EQ(b.class_members[1], 3u);  // sizes 2, 5, 8 all bucket to bound 8
  EXPECT_EQ(plan.planned_peak_bytes, 6476u);
}

TEST(BatcherGolden, OneByteLessSplitsTheWindow) {
  const BatchPlan plan = plan_batches(kGoldenOffsets, 6475);
  ASSERT_EQ(plan.batches.size(), 2u);
  EXPECT_EQ(plan.batches[0].begin, 0u);
  EXPECT_EQ(plan.batches[0].end, 2u);
  EXPECT_EQ(plan.batches[0].words_end, 7u);
  EXPECT_EQ(plan.batches[0].planned_peak_bytes, 4308u);
  EXPECT_EQ(plan.batches[0].max_array_size, 5u);
  EXPECT_EQ(plan.batches[1].begin, 2u);
  EXPECT_EQ(plan.batches[1].end, 3u);
  EXPECT_EQ(plan.batches[1].words_begin, 7u);
  EXPECT_EQ(plan.batches[1].words_end, 15u);
  EXPECT_EQ(plan.batches[1].planned_peak_bytes, 2176u);
  EXPECT_EQ(plan.batches[1].class_members[1], 1u);
  EXPECT_EQ(plan.planned_peak_bytes, 4308u);
}

TEST(BatcherGolden, SingleSiteOverBudgetThrowsTyped) {
  // One site of 2 words needs resident 4*2 + 8*2 = 24 plus the dominant
  // likelihood phase 2128 = 2152 bytes; a 2000-byte budget has no packing.
  const u64 offsets[] = {0, 2};
  try {
    plan_batches(offsets, 2000);
    FAIL() << "expected BatchBudgetError";
  } catch (const BatchBudgetError& e) {
    EXPECT_EQ(e.budget_bytes(), 2000u);
    EXPECT_EQ(e.needed_bytes(), 2152u);
    EXPECT_EQ(e.site_index(), 0u);
    EXPECT_NE(std::string(e.what()).find("batch budget too small"),
              std::string::npos);
  }
}

TEST(BatcherGolden, ZeroBudgetIsACallerBug) {
  const u64 offsets[] = {0, 2};
  EXPECT_THROW(plan_batches(offsets, 0), Error);
}

TEST(BatcherGolden, WorstCaseDeviceBytesFormula) {
  // Admission control's closed form: resident score tables + one batch at
  // the budget + per-window RLE-DICT output scratch.
  const u64 tables = u64{8} * (PMatrix::kSize + NewPMatrix::kSize);
  EXPECT_EQ(worst_case_device_bytes(1 << 20, 2048),
            tables + (1u << 20) + 40u * 2048);
  EXPECT_EQ(worst_case_device_bytes(0, 0), tables);
}

// ---- randomized-depth property suite ---------------------------------------

/// Brute-force re-derivation of a batch's sortnet occupancy from the raw
/// offsets, mirroring sort_device_multipass_resident's bucketing.
void expected_occupancy(std::span<const u64> offsets, u32 begin, u32 end,
                        std::vector<u32>& members, u32& max_size) {
  members.assign(sortnet::kDefaultClassBounds.size() + 1, 0);
  max_size = 0;
  for (u32 s = begin; s < end; ++s) {
    const u64 size = offsets[s + 1] - offsets[s];
    if (size <= 1) continue;  // skipped by the sort, counted nowhere
    const auto& bounds = sortnet::kDefaultClassBounds;
    const auto it = std::lower_bound(bounds.begin(), bounds.end(),
                                     static_cast<u32>(size));
    ++members[static_cast<std::size_t>(it - bounds.begin())];
    max_size = std::max(max_size, static_cast<u32>(size));
  }
}

TEST(BatcherProperty, RandomizedDepthProfiles) {
  Rng rng(0xBA7C4);
  for (int trial = 0; trial < 200; ++trial) {
    // Skewed depth profile: mostly shallow sites, occasional 50-200x-style
    // pileups (sizes up to 300 words), plus empty and singleton sites that
    // the sort skips entirely.
    const u64 n_sites = 1 + rng.uniform(160);
    std::vector<u64> offsets(n_sites + 1, 0);
    for (u64 s = 0; s < n_sites; ++s) {
      u64 size = rng.uniform(9);  // 0..8, includes unsortable 0 and 1
      if (rng.bernoulli(0.08)) size = 50 + rng.uniform(251);  // hotspot site
      offsets[s + 1] = offsets[s] + size;
    }

    // Feasible budget: at least the deepest single site's footprint.
    u64 min_feasible = 0;
    for (u64 s = 0; s < n_sites; ++s) {
      std::vector<u32> members;
      u32 max_size = 0;
      expected_occupancy(offsets, static_cast<u32>(s),
                         static_cast<u32>(s + 1), members, max_size);
      min_feasible = std::max(
          min_feasible,
          planned_batch_peak_bytes(1, offsets[s + 1] - offsets[s], members,
                                   max_size, sortnet::kDefaultClassBounds));
    }
    const u64 budget = min_feasible + rng.uniform(20'000);

    const BatchPlan plan = plan_batches(offsets, budget);
    ASSERT_FALSE(plan.batches.empty());
    EXPECT_EQ(plan.budget_bytes, budget);

    u64 plan_max = 0;
    for (std::size_t i = 0; i < plan.batches.size(); ++i) {
      const SiteBatch& b = plan.batches[i];
      // Exactly-once coverage in position order.
      EXPECT_EQ(b.begin, i == 0 ? 0u : plan.batches[i - 1].end);
      EXPECT_LT(b.begin, b.end);
      // Word ranges are the CSR image of the site range.
      EXPECT_EQ(b.words_begin, offsets[b.begin]);
      EXPECT_EQ(b.words_end, offsets[b.end]);
      // The budget is a hard ceiling and the stored peak re-derives exactly.
      EXPECT_LE(b.planned_peak_bytes, budget);
      std::vector<u32> members;
      u32 max_size = 0;
      expected_occupancy(offsets, b.begin, b.end, members, max_size);
      EXPECT_EQ(b.class_members, members);
      EXPECT_EQ(b.max_array_size, max_size);
      EXPECT_EQ(b.planned_peak_bytes,
                planned_batch_peak_bytes(b.sites(), b.words(), members,
                                         max_size,
                                         sortnet::kDefaultClassBounds));
      plan_max = std::max(plan_max, b.planned_peak_bytes);
    }
    EXPECT_EQ(plan.batches.back().end, n_sites);
    EXPECT_EQ(plan.planned_peak_bytes, plan_max);
  }
}

TEST(BatcherProperty, GenerousBudgetPacksOneBatch) {
  const u64 offsets[] = {0, 3, 3, 10, 11, 40};
  const BatchPlan plan = plan_batches(offsets, u64{1} << 40);
  ASSERT_EQ(plan.batches.size(), 1u);
  EXPECT_EQ(plan.batches[0].sites(), 5u);
  EXPECT_EQ(plan.batches[0].words(), 40u);
}

TEST(BatcherProperty, StatsAbsorbAggregatesAcrossWindows) {
  BatchStats stats;
  stats.absorb(plan_batches(kGoldenOffsets, 6475));  // 2 batches, peak 4308
  stats.absorb(plan_batches(kGoldenOffsets, 6476));  // 1 batch,  peak 6476
  EXPECT_EQ(stats.windows_planned, 2u);
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.min_batch_sites, 1u);
  EXPECT_EQ(stats.max_batch_sites, 3u);
  EXPECT_EQ(stats.planned_peak_bytes, 6476u);
  stats.record_actual(1000);
  stats.record_actual(900);
  EXPECT_EQ(stats.actual_peak_bytes, 1000u);
}

// ---- end-to-end: hotspot dataset under a byte budget -----------------------

std::string read_file_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

TEST(BatcherEndToEnd, HotspotRunRespectsBudgetAndMatchesFixedWindow) {
  const fs::path dir = fs::temp_directory_path() / "gsnp_batcher_e2e";
  fs::remove_all(dir);
  fs::create_directories(dir);

  // A genome with seeded 25-75x pileup islands over a 6x baseline — the
  // skewed-depth regime the batcher exists for.  The multipliers are chosen
  // so island pileups stay under the device's 1,024-thread block limit:
  // deeper arrays make the bitonic sort pass unlaunchable, and the engine
  // would silently degrade to the CPU path this test is not about.
  genome::GenomeSpec gspec;
  gspec.name = "chrHot";
  gspec.length = 60'000;
  gspec.seed = 91;
  const genome::Reference ref = genome::generate_reference(gspec);
  genome::SnpPlantSpec pspec;
  pspec.seed = 92;
  const genome::Diploid individual(ref, plant_snps(ref, pspec));

  genome::HotspotSpec hspec;
  hspec.islands = 3;
  hspec.island_length = 2'000;
  hspec.multiplier_lo = 25.0;
  hspec.multiplier_hi = 75.0;
  hspec.seed = 93;
  reads::ReadSimSpec rspec;
  rspec.depth = 6.0;
  rspec.seed = 94;
  rspec.hotspots = genome::place_hotspot_islands(ref.size(), hspec);
  const fs::path align = dir / "chrHot.soap";
  reads::write_alignment_file(align,
                              reads::simulate_reads(individual, rspec));

  GenomeRunConfig config;
  ChromosomeJob job;
  job.name = ref.name();
  job.alignment_file = align;
  job.reference = &ref;
  config.chromosomes = {job};
  config.window_size = 2'048;

  // Fixed-window baseline.
  config.output_dir = dir / "fixed";
  device::Device dev_fixed;
  const GenomeReport fixed = run_genome(config, EngineKind::kGsnp, &dev_fixed);
  ASSERT_EQ(fixed.output_files.size(), 1u);

  // Batched run under a budget small enough to split every window.
  const u64 budget = 256 * 1024;
  config.batch_bytes = budget;
  config.output_dir = dir / "batched";
  device::Device dev_batched;
  const GenomeReport batched =
      run_genome(config, EngineKind::kGsnp, &dev_batched);
  ASSERT_EQ(batched.output_files.size(), 1u);

  // Neither run may have silently degraded to the CPU engine: the fallback
  // produces the same bytes by design, which would make every assertion
  // below vacuously about the wrong backend.
  for (const GenomeReport* r : {&fixed, &batched})
    for (const auto& e : read_run_manifest(r->manifest_file).chromosomes) {
      ASSERT_EQ(e.status, "done") << e.error;
      ASSERT_FALSE(e.degraded) << "degraded to " << e.engine << ": "
                               << e.error;
    }

  // Byte-identity with the fixed-window baseline (§IV-G extended).
  EXPECT_EQ(read_file_bytes(batched.output_files[0]),
            read_file_bytes(fixed.output_files[0]));

  // The plan actually split windows, and no batch's *measured* device
  // watermark exceeded the configured budget.
  ASSERT_EQ(batched.per_chromosome.size(), 1u);
  const BatchStats& stats = batched.per_chromosome[0].batch;
  EXPECT_EQ(stats.budget_bytes, budget);
  EXPECT_GT(stats.windows_planned, 1u);
  EXPECT_GT(stats.batches, stats.windows_planned);  // windows really split
  EXPECT_GT(stats.planned_peak_bytes, 0u);
  EXPECT_LE(stats.planned_peak_bytes, budget);
  EXPECT_GT(stats.actual_peak_bytes, 0u);
  EXPECT_LE(stats.actual_peak_bytes, budget);
  // The hotspot skew shows up as strongly uneven batch sizes.
  EXPECT_LT(stats.min_batch_sites, stats.max_batch_sites);

  // The fixed-window run must not report batching.
  EXPECT_EQ(fixed.per_chromosome[0].batch.batches, 0u);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace gsnp::core
