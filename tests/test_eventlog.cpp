// Tests for src/obs/eventlog: encode/parse round-trips, durable appends with
// monotone seq/ts stamps, torn-tail tolerance on read and separator repair
// on reopen, and FsFault-injected append failures surfacing as typed
// FsFaultError without corrupting the surviving prefix (FORMATS.md §14).

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "src/common/fs_fault.hpp"
#include "src/obs/eventlog.hpp"

namespace gsnp::obs {
namespace {

namespace fs = std::filesystem;

class EventLogTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "gsnp_eventlog_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    log_path_ = dir_ / "events.jsonl";
  }
  void TearDown() override {
    fsfault::disarm();  // never leak a plan into the next test
    fs::remove_all(dir_);
  }

  static JobEvent sample(const std::string& event, const std::string& job) {
    JobEvent ev;
    ev.event = event;
    ev.job_id = job;
    ev.tenant = "acme";
    ev.backend = "gsnp";
    return ev;
  }

  static std::string read_raw(const fs::path& path) {
    std::ifstream in(path, std::ios::binary);
    return std::string(std::istreambuf_iterator<char>(in), {});
  }

  fs::path dir_;
  fs::path log_path_;
};

// ---- encoding --------------------------------------------------------------

TEST_F(EventLogTest, EncodeParseRoundTripsEveryField) {
  JobEvent ev;
  ev.seq = 7;
  ev.ts_ns = 123456789;
  ev.event = "chromosome_done";
  ev.job_id = "job-1";
  ev.tenant = "t\"quoted\"";  // escaping must survive the trip
  ev.backend = "gsnp_cpu";
  ev.reason = "queue_full";
  ev.chromosome = "chr2";
  ev.degraded = true;
  ev.wall_seconds = 0.25;
  ev.modeled_seconds = 0.125;
  ev.error = "line1\nline2";

  const JobEvent back = parse_job_event(encode_job_event(ev));
  EXPECT_EQ(back.seq, ev.seq);
  EXPECT_EQ(back.ts_ns, ev.ts_ns);
  EXPECT_EQ(back.event, ev.event);
  EXPECT_EQ(back.job_id, ev.job_id);
  EXPECT_EQ(back.tenant, ev.tenant);
  EXPECT_EQ(back.backend, ev.backend);
  EXPECT_EQ(back.reason, ev.reason);
  EXPECT_EQ(back.chromosome, ev.chromosome);
  EXPECT_EQ(back.degraded, ev.degraded);
  EXPECT_EQ(back.wall_seconds, ev.wall_seconds);
  EXPECT_EQ(back.modeled_seconds, ev.modeled_seconds);
  EXPECT_EQ(back.error, ev.error);
}

TEST_F(EventLogTest, EncodedLineOmitsEmptyOptionalsAndHasNoNewline) {
  JobEvent ev;
  ev.seq = 1;
  ev.event = "submitted";
  ev.job_id = "j";
  const std::string line = encode_job_event(ev);
  EXPECT_EQ(line.find('\n'), std::string::npos);
  EXPECT_EQ(line.find("tenant"), std::string::npos);
  EXPECT_EQ(line.find("degraded"), std::string::npos);
  EXPECT_EQ(line.find("wall_seconds"), std::string::npos);
}

// ---- append & read-back ----------------------------------------------------

TEST_F(EventLogTest, AppendReadBackPreservesOrderAndStampsMonotonically) {
  {
    EventLog log(log_path_);
    for (int i = 0; i < 5; ++i)
      log.append(sample("started", "job-" + std::to_string(i)));
    EXPECT_EQ(log.appended(), 5u);
  }
  const std::vector<JobEvent> events = read_event_log(log_path_);
  ASSERT_EQ(events.size(), 5u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, i + 1);
    EXPECT_EQ(events[i].job_id, "job-" + std::to_string(i));
    if (i > 0) EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST_F(EventLogTest, MissingFileReadsAsEmpty) {
  EXPECT_TRUE(read_event_log(dir_ / "nope.jsonl").empty());
}

TEST_F(EventLogTest, ReopeningAppendsAfterTheExistingRecords) {
  { EventLog(log_path_).append(sample("submitted", "a")); }
  { EventLog(log_path_).append(sample("published", "a")); }
  const std::vector<JobEvent> events = read_event_log(log_path_);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event, "submitted");
  EXPECT_EQ(events[1].event, "published");
}

// ---- torn tails ------------------------------------------------------------

TEST_F(EventLogTest, ReaderSkipsATornFinalLine) {
  {
    EventLog log(log_path_);
    log.append(sample("submitted", "a"));
    log.append(sample("published", "a"));
  }
  // Crash mid-append: chop the file inside the last record.
  std::string raw = read_raw(log_path_);
  raw.resize(raw.size() - 10);
  std::ofstream(log_path_, std::ios::binary | std::ios::trunc) << raw;

  const std::vector<JobEvent> events = read_event_log(log_path_);
  ASSERT_EQ(events.size(), 1u);  // the torn "published" is skipped, not fatal
  EXPECT_EQ(events[0].event, "submitted");
}

TEST_F(EventLogTest, ReopenAfterTornTailStartsANewCleanLine) {
  { EventLog(log_path_).append(sample("submitted", "a")); }
  std::string raw = read_raw(log_path_);
  raw.resize(raw.size() - 5);  // tear: no trailing newline
  std::ofstream(log_path_, std::ios::binary | std::ios::trunc) << raw;

  { EventLog(log_path_).append(sample("recovered", "a")); }
  const std::vector<JobEvent> events = read_event_log(log_path_);
  ASSERT_EQ(events.size(), 1u);  // torn fragment stays skipped...
  EXPECT_EQ(events[0].event, "recovered");  // ...new record parses clean
}

// ---- storage fault injection ----------------------------------------------

TEST_F(EventLogTest, InjectedWriteFailureThrowsTypedAndKeepsThePrefix) {
  EventLog log(log_path_);
  log.append(sample("submitted", "a"));

  FsFaultPlan plan;
  plan.kind = FsFaultKind::kEnospc;
  plan.path_filter = "events";
  fsfault::arm(plan);
  EXPECT_THROW(log.append(sample("published", "a")), FsFaultError);
  EXPECT_GE(fsfault::injected(), 1u);
  fsfault::disarm();

  // The surviving prefix still reads, and the log keeps accepting appends.
  log.append(sample("published", "a"));
  const std::vector<JobEvent> events = read_event_log(log_path_);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].event, "submitted");
  EXPECT_EQ(events[1].event, "published");
  EXPECT_EQ(log.appended(), 2u);  // the failed append never counted
}

TEST_F(EventLogTest, ShortWriteTearIsSkippedOnRead) {
  EventLog log(log_path_);
  log.append(sample("submitted", "a"));

  FsFaultPlan plan;
  plan.kind = FsFaultKind::kShortWrite;
  plan.path_filter = "events";
  plan.seed = 42;
  fsfault::arm(plan);
  EXPECT_THROW(log.append(sample("started", "a")), FsFaultError);
  fsfault::disarm();

  const std::vector<JobEvent> events = read_event_log(log_path_);
  ASSERT_EQ(events.size(), 1u);  // the torn fragment does not parse
  EXPECT_EQ(events[0].event, "submitted");
}

}  // namespace
}  // namespace gsnp::obs
