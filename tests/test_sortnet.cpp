// Unit and property tests for the sorting network module: host bitonic,
// device batch bitonic, device radix, and the four variable-size strategies.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/error.hpp"
#include "src/common/rng.hpp"
#include "src/sortnet/batch_sort.hpp"
#include "src/sortnet/bitonic.hpp"
#include "src/sortnet/multipass.hpp"
#include "src/sortnet/var_arrays.hpp"

namespace gsnp::sortnet {
namespace {

TEST(Bitonic, NextPow2) {
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(2), 2u);
  EXPECT_EQ(next_pow2(3), 4u);
  EXPECT_EQ(next_pow2(17), 32u);
  EXPECT_EQ(next_pow2(256), 256u);
}

class BitonicHost : public ::testing::TestWithParam<u32> {};

TEST_P(BitonicHost, MatchesStdSort) {
  const u32 n = GetParam();
  Rng rng(n);
  std::vector<u32> a(n);
  for (auto& v : a) v = static_cast<u32>(rng.uniform(1000));
  std::vector<u32> expected = a;
  std::sort(expected.begin(), expected.end());
  bitonic_sort_host(a);
  EXPECT_EQ(a, expected);
}

INSTANTIATE_TEST_SUITE_P(Pow2Sizes, BitonicHost,
                         ::testing::Values(1, 2, 4, 8, 16, 64, 256, 1024));

TEST(BitonicHost2, RejectsNonPowerOfTwo) {
  std::vector<u32> a(6);
  EXPECT_THROW(bitonic_sort_host(a), Error);
}

TEST(BitonicHost2, PaddingSortsToTail) {
  std::vector<u32> a = {5, kPadValue, 3, kPadValue};
  bitonic_sort_host(a);
  EXPECT_EQ(a[0], 3u);
  EXPECT_EQ(a[1], 5u);
  EXPECT_EQ(a[2], kPadValue);
  EXPECT_EQ(a[3], kPadValue);
}

// ---- device batch sort -----------------------------------------------------------

class BatchSort : public ::testing::TestWithParam<std::pair<u32, u64>> {};

TEST_P(BatchSort, SortsEveryArray) {
  const auto [array_size, num_arrays] = GetParam();
  device::Device dev;
  VarArrays va = equal_var_arrays(num_arrays, array_size, 100000, 77);
  std::vector<u32> data = va.values;

  auto buf = dev.to_device(std::span<const u32>(data));
  batch_bitonic_sort(dev, buf, array_size, num_arrays);
  const auto sorted = dev.to_host(buf);

  for (u64 i = 0; i < num_arrays; ++i) {
    std::vector<u32> expected(data.begin() + i * array_size,
                              data.begin() + (i + 1) * array_size);
    std::sort(expected.begin(), expected.end());
    for (u32 j = 0; j < array_size; ++j)
      EXPECT_EQ(sorted[i * array_size + j], expected[j]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BatchSort,
    ::testing::Values(std::pair<u32, u64>{2, 100}, std::pair<u32, u64>{8, 64},
                      std::pair<u32, u64>{16, 33}, std::pair<u32, u64>{64, 10},
                      std::pair<u32, u64>{256, 5}, std::pair<u32, u64>{512, 3},
                      std::pair<u32, u64>{1, 10}));

TEST(BatchSortEdge, RejectsNonPow2ArraySize) {
  device::Device dev;
  auto buf = dev.alloc<u32>(12);
  EXPECT_THROW(batch_bitonic_sort(dev, buf, 3, 4), Error);
}

TEST(BatchSortEdge, UsesSharedMemoryAndCoalescedIo) {
  device::Device dev;
  VarArrays va = equal_var_arrays(64, 32, 1000, 3);
  auto buf = dev.to_device(std::span<const u32>(va.values));
  dev.reset_counters();
  batch_bitonic_sort(dev, buf, 32, 64);
  const auto& c = dev.counters();
  // One coalesced load + store per element; compare-exchange in shared.
  EXPECT_EQ(c.global_loads_coalesced, 64u * 32);
  EXPECT_EQ(c.global_stores_coalesced, 64u * 32);
  EXPECT_EQ(c.global_loads_random, 0u);
  EXPECT_GT(c.shared_loads, 0u);
}

// ---- device radix sort --------------------------------------------------------------

class RadixSort : public ::testing::TestWithParam<u64> {};

TEST_P(RadixSort, MatchesStdSort) {
  const u64 n = GetParam();
  device::Device dev;
  Rng rng(n + 1);
  std::vector<u32> data(n);
  for (auto& v : data) v = static_cast<u32>(rng());
  std::vector<u32> expected = data;
  std::sort(expected.begin(), expected.end());

  auto buf = dev.to_device(std::span<const u32>(data));
  device_radix_sort(dev, buf);
  EXPECT_EQ(dev.to_host(buf), expected);
}

INSTANTIATE_TEST_SUITE_P(Sizes, RadixSort,
                         ::testing::Values(1, 2, 17, 255, 256, 257, 1000,
                                           4096, 10000));

// ---- variable-size strategies ---------------------------------------------------------

VarArrays clone(const VarArrays& va) { return va; }

class Strategies : public ::testing::TestWithParam<u64> {
 protected:
  VarArrays make(u64 seed) {
    return random_var_arrays(/*count=*/400, /*mean_size=*/10.0,
                             /*max_size=*/120, /*value_bound=*/1u << 18, seed);
  }
};

TEST_P(Strategies, AllAgreeWithCpuSort) {
  const u64 seed = GetParam();
  const VarArrays original = make(seed);
  device::Device dev;

  VarArrays cpu = clone(original);
  sort_cpu_batch(cpu);
  EXPECT_TRUE(cpu.all_sorted());

  VarArrays mp = clone(original);
  sort_device_multipass(dev, mp);
  EXPECT_EQ(mp.values, cpu.values);

  VarArrays sp = clone(original);
  sort_device_singlepass(dev, sp);
  EXPECT_EQ(sp.values, cpu.values);

  VarArrays ne = clone(original);
  sort_device_noneq(dev, ne);
  EXPECT_EQ(ne.values, cpu.values);

  VarArrays rs = clone(original);
  sort_device_radix_seq(dev, rs);
  EXPECT_EQ(rs.values, cpu.values);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Strategies, ::testing::Values(1, 2, 3, 4, 5));

TEST(Multipass, SortsFewerElementsThanSinglePass) {
  // The Fig 7(b) effect: padding to per-class sizes does ~4x less work than
  // padding everything to the global maximum.
  const VarArrays original =
      random_var_arrays(2000, 8.0, 100, 1u << 18, 99);
  device::Device dev;

  VarArrays a = clone(original);
  const SortStats mp = sort_device_multipass(dev, a);
  VarArrays b = clone(original);
  const SortStats sp = sort_device_singlepass(dev, b);

  EXPECT_EQ(mp.arrays_sorted, sp.arrays_sorted);
  EXPECT_GT(sp.elements_padded, 2 * mp.elements_padded);
  // Padding never changes the real element count.
  EXPECT_EQ(mp.elements_real, sp.elements_real);
  EXPECT_GT(mp.passes, 1u);
  EXPECT_EQ(sp.passes, 1u);
}

TEST(Multipass, ElementsRealIdenticalAcrossStrategies) {
  // Regression: elements_sorted used to mix definitions — multipass counted
  // padded network slots, noneq counted per-array next_pow2 — so the same
  // input reported different "elements sorted" depending on the path.  The
  // split into elements_real / elements_padded pins one definition:
  // elements_real is a property of the input alone.
  const VarArrays original =
      random_var_arrays(1500, 9.0, 110, 1u << 18, 2024);
  u64 expected_real = 0;
  for (u64 i = 0; i < original.count(); ++i)
    if (original.size_of(i) > 1) expected_real += original.size_of(i);
  device::Device dev;

  VarArrays a = clone(original);
  const SortStats mp = sort_device_multipass(dev, a);
  VarArrays b = clone(original);
  const SortStats sp = sort_device_singlepass(dev, b);
  VarArrays c = clone(original);
  const SortStats ne = sort_device_noneq(dev, c);
  VarArrays d = clone(original);
  const SortStats rs = sort_device_radix_seq(dev, d);

  EXPECT_EQ(mp.elements_real, expected_real);
  EXPECT_EQ(sp.elements_real, expected_real);
  EXPECT_EQ(ne.elements_real, expected_real);
  EXPECT_EQ(rs.elements_real, expected_real);

  // The resident path sorts the same data from a device-side CSR buffer.
  VarArrays e = clone(original);
  auto words = dev.to_device(std::span<const u32>(e.values));
  const SortStats res = sort_device_multipass_resident(
      dev, words, std::span<const u64>(e.offsets));
  EXPECT_EQ(res.elements_real, expected_real);
  EXPECT_EQ(res.elements_padded, mp.elements_padded);

  // Padded work is strategy-specific but always >= the real work; radix
  // pads nothing by construction.
  EXPECT_GE(mp.elements_padded, mp.elements_real);
  EXPECT_GE(sp.elements_padded, sp.elements_real);
  EXPECT_GE(ne.elements_padded, ne.elements_real);
  EXPECT_EQ(rs.elements_padded, rs.elements_real);
}

TEST(Multipass, PaperClassBounds) {
  EXPECT_EQ(kDefaultClassBounds.size(), 5u);  // six classes
  EXPECT_EQ(kDefaultClassBounds[0], 1u);
  EXPECT_EQ(kDefaultClassBounds[4], 64u);
}

TEST(Multipass, HandlesEmptyAndSingletonArrays) {
  VarArrays va;
  va.push_back(std::vector<u32>{});
  va.push_back(std::vector<u32>{42});
  va.push_back(std::vector<u32>{5, 3, 4, 1});
  device::Device dev;
  const SortStats stats = sort_device_multipass(dev, va);
  EXPECT_TRUE(va.all_sorted());
  EXPECT_EQ(stats.arrays_sorted, 1u);  // only the size-4 array needed sorting
}

TEST(Multipass, AllEqualSizesDegeneratesToOnePass) {
  VarArrays va = equal_var_arrays(50, 16, 1000, 4);
  device::Device dev;
  const SortStats stats = sort_device_multipass(dev, va);
  EXPECT_EQ(stats.passes, 1u);
  EXPECT_TRUE(va.all_sorted());
}

TEST(RadixSeq, PaysPerArrayLaunchOverhead) {
  // The Thrust-style baseline launches many kernels per tiny array — the
  // reason Fig 7(a) shows it with very low throughput.
  const VarArrays original = random_var_arrays(50, 10.0, 64, 1u << 18, 7);
  device::Device dev;

  VarArrays a = clone(original);
  dev.reset_counters();
  sort_device_multipass(dev, a);
  const u64 mp_launches = dev.counters().kernel_launches;

  VarArrays b = clone(original);
  dev.reset_counters();
  sort_device_radix_seq(dev, b);
  const u64 rs_launches = dev.counters().kernel_launches;

  EXPECT_GT(rs_launches, 10 * mp_launches);
}

TEST(MultipassResident, MatchesHostMultipass) {
  // The device-resident variant must sort identically while moving no word
  // data over PCIe beyond the initial upload.
  const VarArrays original =
      random_var_arrays(3000, 9.0, 100, 1u << 18, 123);
  VarArrays host_sorted = original;
  sort_cpu_batch(host_sorted);

  device::Device dev;
  auto words = dev.to_device(std::span<const u32>(original.values));
  dev.reset_counters();
  const SortStats stats = sort_device_multipass_resident(
      dev, words, original.offsets);
  EXPECT_GT(stats.passes, 1u);
  EXPECT_EQ(dev.to_host(words), host_sorted.values);

  // No D2H of word data inside the sort itself (the to_host above is the
  // test's own check); H2D is only the small per-class metadata.
  const auto& c = dev.counters();
  EXPECT_LT(c.h2d_bytes, original.values.size() * sizeof(u32));
}

TEST(MultipassResident, RejectsMismatchedOffsets) {
  device::Device dev;
  auto words = dev.alloc<u32>(10);
  const std::vector<u64> offsets = {0, 4};  // claims 4 words, buffer has 10
  EXPECT_THROW(sort_device_multipass_resident(
                   dev, words, std::span<const u64>(offsets)),
               Error);
}

TEST(MultipassResident, EmptyAndSingletonArrays) {
  VarArrays va;
  va.push_back(std::vector<u32>{});
  va.push_back(std::vector<u32>{9});
  va.push_back(std::vector<u32>{7, 3, 5, 1, 2});
  device::Device dev;
  auto words = dev.to_device(std::span<const u32>(va.values));
  sort_device_multipass_resident(dev, words, va.offsets);
  const auto sorted = dev.to_host(words);
  EXPECT_EQ(sorted, (std::vector<u32>{9, 1, 2, 3, 5, 7}));
}

// ---- generators -------------------------------------------------------------------------

TEST(VarArraysGen, RandomShapes) {
  const VarArrays va = random_var_arrays(1000, 12.0, 200, 100, 11);
  EXPECT_EQ(va.count(), 1000u);
  double mean = static_cast<double>(va.total_elements()) / va.count();
  EXPECT_NEAR(mean, 12.0, 2.0);
  for (u64 i = 0; i < va.count(); ++i) EXPECT_LE(va.size_of(i), 200u);
  for (const u32 v : va.values) EXPECT_LT(v, 100u);
}

TEST(VarArraysGen, PushBackAndSpans) {
  VarArrays va;
  const std::vector<u32> a = {3, 1, 2};
  va.push_back(a);
  va.push_back(std::vector<u32>{9});
  EXPECT_EQ(va.count(), 2u);
  EXPECT_EQ(va.size_of(0), 3u);
  EXPECT_EQ(va.array(1)[0], 9u);
}

}  // namespace
}  // namespace gsnp::sortnet
