// Unit tests for the SIMT device simulator: allocation accounting, memory
// limits, kernel execution semantics, counter exactness, and the analytical
// performance model.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "src/common/error.hpp"
#include "src/device/device.hpp"
#include "src/device/perf_model.hpp"
#include "src/device/stream.hpp"

namespace gsnp::device {
namespace {

TEST(DeviceAlloc, TracksAllocatedBytes) {
  Device dev;
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  {
    auto buf = dev.alloc<u32>(1000);
    EXPECT_EQ(dev.allocated_bytes(), 4000u);
    auto buf2 = dev.alloc<double>(10);
    EXPECT_EQ(dev.allocated_bytes(), 4080u);
  }
  EXPECT_EQ(dev.allocated_bytes(), 0u);
  EXPECT_EQ(dev.peak_allocated_bytes(), 4080u);
}

TEST(DeviceAlloc, EnforcesGlobalMemoryLimit) {
  DeviceSpec spec;
  spec.global_bytes = 1024;
  Device dev(spec);
  EXPECT_THROW(dev.alloc<u8>(2048), Error);
  auto ok = dev.alloc<u8>(1024);  // exactly at the limit
  EXPECT_THROW(dev.alloc<u8>(1), Error);
}

TEST(DeviceAlloc, MoveTransfersOwnership) {
  Device dev;
  auto a = dev.alloc<u32>(100);
  auto b = std::move(a);
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(a.size(), 0u);  // NOLINT(bugprone-use-after-move)
  EXPECT_EQ(dev.allocated_bytes(), 400u);
}

TEST(DeviceTransfer, CountsBytes) {
  Device dev;
  std::vector<u32> host(256, 7);
  auto buf = dev.to_device(std::span<const u32>(host));
  EXPECT_EQ(dev.counters().h2d_bytes, 1024u);
  const auto back = dev.to_host(buf);
  EXPECT_EQ(dev.counters().d2h_bytes, 1024u);
  EXPECT_EQ(back, host);
}

TEST(DeviceTransfer, UploadRequiresMatchingSize) {
  Device dev;
  auto buf = dev.alloc<u32>(4);
  std::vector<u32> wrong(5);
  EXPECT_THROW(dev.upload(buf, std::span<const u32>(wrong)), Error);
  std::vector<u32> right = {1, 2, 3, 4};
  dev.upload(buf, std::span<const u32>(right));
  EXPECT_EQ(dev.to_host(buf), right);
}

TEST(ConstantMemory, EnforcesBudget) {
  DeviceSpec spec;
  spec.constant_bytes = 64;
  Device dev(spec);
  std::vector<double> eight(8);
  auto table = dev.to_constant(std::span<const double>(eight));
  std::vector<double> one(1);
  EXPECT_THROW(dev.to_constant(std::span<const double>(one)), Error);
}

TEST(ConstantMemory, ReleasedOnDestruction) {
  DeviceSpec spec;
  spec.constant_bytes = 64;
  Device dev(spec);
  std::vector<double> eight(8);
  {
    auto table = dev.to_constant(std::span<const double>(eight));
    EXPECT_EQ(dev.constant_bytes_used(), 64u);
  }
  EXPECT_EQ(dev.constant_bytes_used(), 0u);
  auto again = dev.to_constant(std::span<const double>(eight));  // fits again
}

TEST(KernelLaunch, AllThreadsOfAllBlocksRun) {
  Device dev;
  const u32 grid = 13, block = 32;
  auto out = dev.alloc<u32>(grid * block);
  dev.launch(grid, block, [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) {
      t.gstore(out, t.global_tid(), static_cast<u32>(t.global_tid()) * 3,
               Access::kCoalesced);
    });
  });
  const auto host = dev.to_host(out);
  for (u32 i = 0; i < grid * block; ++i) EXPECT_EQ(host[i], i * 3);
}

TEST(KernelLaunch, RejectsBadDimensions) {
  Device dev;
  EXPECT_THROW(dev.launch(0, 32, [](BlockContext&) {}), Error);
  EXPECT_THROW(dev.launch(1, 0, [](BlockContext&) {}), Error);
  EXPECT_THROW(dev.launch(1, 5000, [](BlockContext&) {}), Error);
}

TEST(KernelLaunch, PhasesActAsBarriers) {
  // Phase 2 reads values written by *other* threads in phase 1 — correct only
  // if a barrier separates the phases.
  Device dev;
  const u32 block = 64;
  auto out = dev.alloc<u32>(block);
  dev.launch(1, block, [&](BlockContext& blk) {
    auto sh = blk.shared_array<u32>(block);
    blk.threads([&](ThreadContext& t) { t.sstore(sh, t.tid(), t.tid() + 1); });
    blk.threads([&](ThreadContext& t) {
      // Read the *reversed* neighbour: only valid post-barrier.
      const u32 v = t.sload<u32>(sh, block - 1 - t.tid());
      t.gstore(out, t.tid(), v);
    });
  });
  const auto host = dev.to_host(out);
  for (u32 i = 0; i < block; ++i) EXPECT_EQ(host[i], block - i);
}

TEST(SharedMemory, ZeroInitialized) {
  Device dev;
  bool all_zero = true;
  dev.launch(1, 1, [&](BlockContext& blk) {
    auto sh = blk.shared_array<u64>(128);
    for (const u64 v : sh) all_zero &= (v == 0);
  });
  EXPECT_TRUE(all_zero);
}

TEST(SharedMemory, OverflowThrows) {
  DeviceSpec spec;
  spec.shared_bytes = 1024;
  Device dev(spec);
  EXPECT_THROW(dev.launch(1, 1,
                          [&](BlockContext& blk) {
                            blk.shared_array<u8>(2048);
                          }),
               Error);
}

TEST(SharedMemory, FreshPerBlock) {
  // Each block should see zeroed shared memory even when blocks reuse arenas.
  Device dev;
  auto flags = dev.alloc<u32>(64);
  dev.launch(64, 1, [&](BlockContext& blk) {
    auto sh = blk.shared_array<u32>(16);
    blk.single_thread([&](ThreadContext& t) {
      u32 sum = 0;
      for (u64 i = 0; i < 16; ++i) sum += t.sload<u32>(sh, i);
      t.gstore(flags, blk.block_idx(), sum);
      // Dirty the arena for the next block.
      for (u64 i = 0; i < 16; ++i) t.sstore(sh, i, 0xDEADu);
    });
  });
  for (const u32 v : dev.to_host(flags)) EXPECT_EQ(v, 0u);
}

TEST(Counters, ExactForKnownKernel) {
  Device dev;
  auto buf = dev.alloc<u32>(64);
  dev.reset_counters();
  dev.launch(2, 32, [&](BlockContext& blk) {
    auto sh = blk.shared_array<u32>(32);
    blk.threads([&](ThreadContext& t) {
      const u32 v = t.gload(buf, t.global_tid(), Access::kCoalesced);
      t.sstore(sh, t.tid(), v);
      const u32 w = t.sload<u32>(sh, t.tid());
      t.gstore(buf, t.global_tid(), w + 1, Access::kRandom);
      t.inst(5);
    });
  });
  const DeviceCounters& c = dev.counters();
  EXPECT_EQ(c.global_loads_coalesced, 64u);
  EXPECT_EQ(c.global_loads_random, 0u);
  EXPECT_EQ(c.global_stores_random, 64u);
  EXPECT_EQ(c.global_stores_coalesced, 0u);
  EXPECT_EQ(c.shared_loads, 64u);
  EXPECT_EQ(c.shared_stores, 64u);
  EXPECT_EQ(c.global_load_bytes_coalesced, 256u);
  EXPECT_EQ(c.global_store_bytes_random, 256u);
  EXPECT_EQ(c.kernel_launches, 1u);
  // inst: 4 memory ops + 5 explicit, per thread.
  EXPECT_EQ(c.instructions, 64u * 9);
}

TEST(Counters, BulkLoadEquivalentToScalarLoads) {
  Device dev;
  auto buf = dev.alloc<u32>(1000);
  dev.reset_counters();
  dev.launch(1, 1, [&](BlockContext& blk) {
    blk.single_thread([&](ThreadContext& t) {
      const auto view = t.gload_bulk(buf, 100, 500, Access::kCoalesced);
      EXPECT_EQ(view.size(), 500u);
    });
  });
  EXPECT_EQ(dev.counters().global_loads_coalesced, 500u);
  EXPECT_EQ(dev.counters().global_load_bytes_coalesced, 2000u);
}

TEST(Counters, FillCountsStores) {
  Device dev;
  auto buf = dev.alloc<u8>(333);
  dev.reset_counters();
  dev.fill(buf, u8{9});
  EXPECT_EQ(dev.counters().global_stores_coalesced, 333u);
  EXPECT_EQ(dev.counters().global_store_bytes_coalesced, 333u);
  for (const u8 v : dev.to_host(buf)) EXPECT_EQ(v, 9);
}

TEST(Counters, GaddCountsLoadAndStore) {
  Device dev;
  auto buf = dev.alloc<u32>(1);
  dev.reset_counters();
  dev.launch(1, 1, [&](BlockContext& blk) {
    blk.single_thread([&](ThreadContext& t) { t.gadd(buf, 0, 5u); });
  });
  EXPECT_EQ(dev.counters().global_loads_random, 1u);
  EXPECT_EQ(dev.counters().global_stores_random, 1u);
  EXPECT_EQ(dev.to_host(buf)[0], 5u);
}

TEST(Counters, OutOfRangeAccessThrows) {
  Device dev;
  auto buf = dev.alloc<u32>(8);
  EXPECT_THROW(dev.launch(1, 1,
                          [&](BlockContext& blk) {
                            blk.single_thread(
                                [&](ThreadContext& t) { t.gload(buf, 8); });
                          }),
               Error);
}

// ---- fault injection --------------------------------------------------------------

TEST(DeviceFaults, OomCarriesByteAccounting) {
  DeviceSpec spec;
  spec.global_bytes = 1024;
  Device dev(spec);
  auto ok = dev.alloc<u8>(1000);
  try {
    dev.alloc<u8>(100);
    FAIL() << "allocation over budget must throw";
  } catch (const DeviceOomError& e) {
    EXPECT_EQ(e.requested_bytes, 100u);
    EXPECT_EQ(e.allocated_bytes, 1000u);
  }
}

TEST(DeviceFaults, InjectedAllocFailureHitsExactlyTheNth) {
  DeviceSpec spec;
  spec.fault.fail_alloc_at = 2;  // third allocation fails once
  Device dev(spec);
  auto a = dev.alloc<u32>(8);
  auto b = dev.alloc<u32>(8);
  EXPECT_THROW(dev.alloc<u32>(8), DeviceOomError);
  auto c = dev.alloc<u32>(8);  // the transient fault has cleared
  EXPECT_EQ(dev.alloc_count(), 4u);
}

TEST(DeviceFaults, FaultCountScopesARange) {
  DeviceSpec spec;
  spec.fault.fail_alloc_at = 1;
  spec.fault.fault_count = 2;  // allocations 1 and 2 fail
  Device dev(spec);
  auto a = dev.alloc<u32>(8);
  EXPECT_THROW(dev.alloc<u32>(8), DeviceOomError);
  EXPECT_THROW(dev.alloc<u32>(8), DeviceOomError);
  auto b = dev.alloc<u32>(8);
}

TEST(DeviceFaults, PersistentFaultNeverClears) {
  DeviceSpec spec;
  spec.fault.fail_launch_at = 0;
  spec.fault.fault_count = -1;  // wedged card
  Device dev(spec);
  for (int i = 0; i < 4; ++i)
    EXPECT_THROW(dev.launch(1, 1, [](BlockContext&) {}), DeviceFaultError);
  EXPECT_EQ(dev.counters().kernel_launches, 0u);
}

TEST(DeviceFaults, InjectedLaunchFailure) {
  DeviceSpec spec;
  spec.fault.fail_launch_at = 1;
  Device dev(spec);
  dev.launch(1, 1, [](BlockContext&) {});
  EXPECT_THROW(dev.launch(1, 1, [](BlockContext&) {}), DeviceFaultError);
  dev.launch(1, 1, [](BlockContext&) {});
  EXPECT_EQ(dev.counters().kernel_launches, 2u);
}

TEST(DeviceFaults, H2dCorruptionCaughtByTransferCrc) {
  DeviceSpec spec;
  spec.fault.corrupt_h2d_at = 0;
  Device dev(spec);
  std::vector<u32> host(256, 7);
  EXPECT_THROW(dev.to_device(std::span<const u32>(host)), DeviceFaultError);
  // The next transfer is clean and round-trips exactly.
  auto buf = dev.to_device(std::span<const u32>(host));
  EXPECT_EQ(dev.to_host(buf), host);
}

TEST(DeviceFaults, D2hCorruptionCaughtByTransferCrc) {
  DeviceSpec spec;
  spec.fault.corrupt_d2h_at = 0;
  Device dev(spec);
  std::vector<u32> host(256, 7);
  auto buf = dev.to_device(std::span<const u32>(host));
  EXPECT_THROW(dev.to_host(buf), DeviceFaultError);
  EXPECT_EQ(dev.to_host(buf), host);  // device copy itself is intact
}

TEST(DeviceFaults, UploadAndConstantAreCrcVerifiedToo) {
  DeviceSpec spec;
  spec.fault.corrupt_h2d_at = 1;
  spec.fault.fault_count = -1;
  Device dev(spec);
  std::vector<u32> host(16, 3);
  auto buf = dev.to_device(std::span<const u32>(host));  // transfer 0: clean
  EXPECT_THROW(dev.upload(buf, std::span<const u32>(host)), DeviceFaultError);
  std::vector<double> table(8);
  EXPECT_THROW(dev.to_constant(std::span<const double>(table)),
               DeviceFaultError);
}

TEST(DeviceFaults, FaultsAreSubclassesOfError) {
  // Callers that only know gsnp::Error keep working.
  DeviceSpec spec;
  spec.fault.fail_alloc_at = 0;
  Device dev(spec);
  EXPECT_THROW(dev.alloc<u8>(1), Error);
}

// ---- perf model -------------------------------------------------------------------

TEST(PerfModel, HandComputedSeconds) {
  PerfModel model;
  model.instructions_per_sec = 1e9;
  model.coalesced_bytes_per_sec = 1e9;
  model.random_bytes_per_sec = 1e8;
  model.shared_bytes_per_sec = 1e10;
  model.pcie_bytes_per_sec = 1e9;
  model.launch_overhead_sec = 1e-3;

  DeviceCounters c;
  c.instructions = 2'000'000'000;        // 2 s
  c.global_load_bytes_coalesced = 5e8;   // 0.5 s
  c.global_store_bytes_random = 1e7;     // 0.1 s
  c.shared_bytes = 1e10;                 // 1 s
  c.h2d_bytes = 5e8;                     // 0.5 s
  c.kernel_launches = 100;               // 0.1 s
  EXPECT_NEAR(model.seconds(c), 4.2, 1e-9);
}

TEST(PerfModel, RandomTrafficCostsMoreThanCoalesced) {
  PerfModel model;  // M2050 defaults: 82 GB/s vs 3.2 GB/s
  DeviceCounters coal, rand;
  coal.global_load_bytes_coalesced = 1 << 30;
  rand.global_load_bytes_random = 1 << 30;
  EXPECT_GT(model.seconds(rand), 20.0 * model.seconds(coal));
}

TEST(PerfModel, CountersDelta) {
  DeviceCounters a, b;
  a.instructions = 10;
  a.global_loads_random = 2;
  b.instructions = 25;
  b.global_loads_random = 7;
  b.shared_stores = 3;
  const DeviceCounters d = counters_delta(a, b);
  EXPECT_EQ(d.instructions, 15u);
  EXPECT_EQ(d.global_loads_random, 5u);
  EXPECT_EQ(d.shared_stores, 3u);
}

TEST(KernelLaunch, CancelsRemainingBlocksAfterThrow) {
  // Regression: run_blocks used to execute every block of the grid even
  // after one had thrown, so a failed launch burned the whole grid's
  // simulation time before surfacing the fault.  With the cancellation flag
  // the abort is prompt: blocks scheduled after the throw are skipped.
  Device dev;
  constexpr u32 kGrid = 8192;
  std::atomic<u64> executed{0};
  EXPECT_THROW(
      dev.launch(kGrid, 1,
                 [&](BlockContext& blk) {
                   executed.fetch_add(1, std::memory_order_relaxed);
                   blk.single_thread([](ThreadContext& t) { t.inst(1); });
                   if (blk.block_idx() == 0)
                     throw std::runtime_error("block 0 failed");
                 }),
      std::runtime_error);
  // Block 0 sits in the first scheduled chunk, so the flag is raised almost
  // immediately; only blocks already in flight on other workers may finish.
  EXPECT_LT(executed.load(), kGrid);
  // Counter shards are reduced exactly once, aborted launch or not: the
  // device must account precisely the blocks that ran, with nothing dropped
  // and nothing double-counted.
  EXPECT_EQ(dev.counters().instructions, executed.load());
  EXPECT_EQ(dev.counters().kernel_launches, 1u);
}

// ---- streams and events -----------------------------------------------------

TEST(Streams, WaitBeforeRecordStillOrdersCorrectly) {
  // Stream 1's head is a wait on an event that stream 2 records *later* in
  // the enqueue order.  The scheduler must skip the blocked stream, run the
  // record, and only then let stream 1 proceed — the waiting launch must
  // observe the dependency's write.
  Device dev;
  StreamPool pool(dev, 2);
  const Event e = pool.create_event();

  auto cell = dev.alloc<u32>(1);
  dev.launch(1, 1, [&](BlockContext& blk) {
    blk.single_thread(
        [&](ThreadContext& t) { t.gstore(cell, 0, 0u, Access::kCoalesced); });
  });

  pool.stream(0).wait(e);
  pool.stream(0).launch("reader", 1, 1, [&](BlockContext& blk) {
    blk.single_thread([&](ThreadContext& t) {
      const u32 v = t.gload<u32>(cell, 0, Access::kCoalesced);
      t.gstore(cell, 0, v + 1, Access::kCoalesced);
    });
  });
  pool.stream(1).launch("writer", 1, 1, [&](BlockContext& blk) {
    blk.single_thread(
        [&](ThreadContext& t) { t.gstore(cell, 0, 41u, Access::kCoalesced); });
  });
  pool.stream(1).record(e);
  pool.sync();

  EXPECT_EQ(dev.to_host(cell)[0], 42u);  // reader saw the writer's 41
  EXPECT_TRUE(pool.idle());
  // The log records execution order: writer, record, wait, reader.
  ASSERT_EQ(pool.log().size(), 4u);
  EXPECT_EQ(pool.log()[0].name, "writer");
  EXPECT_EQ(pool.log()[1].kind, StreamOpKind::kRecord);
  EXPECT_EQ(pool.log()[2].kind, StreamOpKind::kWait);
  EXPECT_EQ(pool.log()[3].name, "reader");
}

TEST(Streams, CrossStreamDependencyChain) {
  // s1 -> s2 -> s3 chained through two events: each stage increments the
  // cell, so the final value proves every stage ran after its predecessor.
  Device dev;
  StreamPool pool(dev, 3);
  const Event ab = pool.create_event();
  const Event bc = pool.create_event();

  auto cell = dev.alloc<u32>(1);
  dev.launch(1, 1, [&](BlockContext& blk) {
    blk.single_thread(
        [&](ThreadContext& t) { t.gstore(cell, 0, 1u, Access::kCoalesced); });
  });
  const auto triple = [&](BlockContext& blk) {
    blk.single_thread([&](ThreadContext& t) {
      const u32 v = t.gload<u32>(cell, 0, Access::kCoalesced);
      t.gstore(cell, 0, v * 3, Access::kCoalesced);
    });
  };
  // Enqueue the chain back-to-front so the scheduler has to resolve both
  // events before the tail stages can run.
  pool.stream(2).wait(bc);
  pool.stream(2).launch("c", 1, 1, triple);
  pool.stream(1).wait(ab);
  pool.stream(1).launch("b", 1, 1, triple);
  pool.stream(1).record(bc);
  pool.stream(0).launch("a", 1, 1, triple);
  pool.stream(0).record(ab);
  pool.sync();

  EXPECT_EQ(dev.to_host(cell)[0], 27u);
  EXPECT_TRUE(pool.event_recorded(ab));
  EXPECT_TRUE(pool.event_recorded(bc));
}

TEST(Streams, DeadlockDetectedNotHung) {
  // A wait on an event nobody records must fail loudly, not spin forever,
  // and must leave the pool clean (queues cleared) for reuse.
  Device dev;
  StreamPool pool(dev, 2);
  const Event never = pool.create_event();
  pool.stream(0).wait(never);
  pool.stream(0).launch("unreachable", 1, 1, [](BlockContext&) {});
  EXPECT_THROW(pool.sync(), DeviceFaultError);
  EXPECT_TRUE(pool.idle());
  pool.sync();  // clean pool: draining nothing succeeds
}

TEST(Streams, ThrowMidStreamKeepsCountersExactlyOnce) {
  // A kernel that throws mid-launch: the device reduces its counter shards
  // exactly once before the exception propagates, and the pool must capture
  // that delta for the failing op (nothing dropped, nothing double-counted),
  // then clear all queues so a retry starts clean.
  Device dev;
  StreamPool pool(dev, 2);
  const DeviceCounters before = dev.counters();

  pool.stream(0).launch("ok", 4, 32, [&](BlockContext& blk) {
    blk.threads([](ThreadContext& t) { t.inst(2); });
  });
  pool.stream(1).launch("boom", 4, 1, [&](BlockContext& blk) {
    blk.single_thread([](ThreadContext& t) { t.inst(1); });
    if (blk.block_idx() == 0) throw std::runtime_error("mid-stream failure");
  });
  pool.stream(1).launch("after_boom", 1, 1, [](BlockContext&) {});
  EXPECT_THROW(pool.sync(), std::runtime_error);
  EXPECT_TRUE(pool.idle());  // queues cleared, including "after_boom"

  // Per-stream sums must equal the device aggregate over what actually ran.
  const DeviceCounters ran = counters_delta(before, dev.counters());
  const DeviceCounters streamed = pool.total_stream_counters();
  EXPECT_EQ(streamed.instructions, ran.instructions);
  EXPECT_EQ(streamed.kernel_launches, ran.kernel_launches);
  EXPECT_EQ(ran.kernel_launches, 2u);

  // The failing op is in the log, flagged, with its delta captured.
  bool saw_failed = false;
  for (const auto& rec : pool.log())
    if (rec.name == "boom") {
      saw_failed = true;
      EXPECT_TRUE(rec.failed);
      EXPECT_GE(rec.delta.instructions, 1u);
    }
  EXPECT_TRUE(saw_failed);
}

TEST(Streams, PerStreamCountersSumToDeviceAggregate) {
  Device dev;
  StreamPool pool(dev, 3);
  const DeviceCounters before = dev.counters();

  std::vector<u32> host(128);  // exactly the 2x64 grid below
  std::iota(host.begin(), host.end(), 0u);
  std::optional<DeviceBuffer<u32>> buf;
  pool.stream(0).memcpy_h2d(buf, std::span<const u32>(host), "up");
  const Event up = pool.create_event();
  pool.stream(0).record(up);
  pool.stream(1).wait(up);
  pool.stream(1).launch("sum", 2, 64, [&](BlockContext& blk) {
    blk.threads([&](ThreadContext& t) {
      const u32 v = t.gload<u32>(*buf, t.global_tid(), Access::kCoalesced);
      t.gstore(*buf, t.global_tid(), v + 1, Access::kCoalesced);
      t.inst(1);
    });
  });
  std::vector<u32> back;
  const Event done = pool.create_event();
  pool.stream(1).record(done);
  pool.stream(2).wait(done);
  pool.stream(2).memcpy_d2h(back, buf, "down");
  pool.sync();

  ASSERT_EQ(back.size(), host.size());
  for (u32 i = 0; i < back.size(); ++i) EXPECT_EQ(back[i], i + 1);

  const DeviceCounters ran = counters_delta(before, dev.counters());
  const DeviceCounters streamed = pool.total_stream_counters();
  EXPECT_EQ(streamed.instructions, ran.instructions);
  EXPECT_EQ(streamed.h2d_bytes, ran.h2d_bytes);
  EXPECT_EQ(streamed.d2h_bytes, ran.d2h_bytes);
  EXPECT_EQ(streamed.kernel_launches, ran.kernel_launches);
  EXPECT_EQ(streamed.global_loads(), ran.global_loads());
  EXPECT_EQ(streamed.global_stores(), ran.global_stores());
  // Individual streams saw only their own ops.
  EXPECT_EQ(pool.stream_counters(0).h2d_bytes, ran.h2d_bytes);
  EXPECT_EQ(pool.stream_counters(0).kernel_launches, 0u);
  EXPECT_EQ(pool.stream_counters(1).kernel_launches, 1u);
  EXPECT_EQ(pool.stream_counters(2).d2h_bytes, ran.d2h_bytes);
}

TEST(Streams, OverlapWallBelowSerialSum) {
  // Two independent streams with real work must overlap in the replayed
  // timeline: wall < serial sum.  A single stream cannot overlap: equal.
  Device dev;
  const PerfModel model;
  const auto busy = [](BlockContext& blk) {
    blk.threads([](ThreadContext& t) { t.inst(100); });
  };
  {
    StreamPool pool(dev, 2);
    pool.stream(0).launch("a", 8, 64, busy);
    pool.stream(1).launch("b", 8, 64, busy);
    pool.sync();
    EXPECT_LT(pool.modeled_wall_seconds(model),
              pool.modeled_serial_seconds(model));
  }
  {
    StreamPool pool(dev, 1);
    pool.stream(0).launch("a", 8, 64, busy);
    pool.stream(0).launch("b", 8, 64, busy);
    pool.sync();
    EXPECT_DOUBLE_EQ(pool.modeled_wall_seconds(model),
                     pool.modeled_serial_seconds(model));
  }
}

TEST(Streams, LaunchInfoCarriesStreamId) {
  // The profiler keys rows by (kernel, stream): LaunchInfo.stream_id must be
  // the issuing stream's 1-based id, and 0 for default-queue launches.
  struct Capture final : LaunchListener {
    std::vector<u32> ids;
    void on_kernel_launch(const LaunchInfo& info) override {
      ids.push_back(info.stream_id);
    }
  } capture;
  Device dev;
  dev.set_launch_listener(&capture);
  dev.launch(1, 1, [](BlockContext&) {});
  StreamPool pool(dev, 2);
  pool.stream(1).launch("on_s2", 1, 1, [](BlockContext&) {});
  pool.sync();
  dev.launch(1, 1, [](BlockContext&) {});
  dev.set_launch_listener(nullptr);
  ASSERT_EQ(capture.ids.size(), 3u);
  EXPECT_EQ(capture.ids[0], 0u);  // default queue
  EXPECT_EQ(capture.ids[1], 2u);  // stream id is 1-based
  EXPECT_EQ(capture.ids[2], 0u);  // restored after the drain
}

TEST(DeviceSpecDefaults, MatchPaperHardware) {
  const DeviceSpec spec;
  EXPECT_EQ(spec.global_bytes, 3ULL << 30);   // 3 GB M2050
  EXPECT_EQ(spec.shared_bytes, 48u << 10);    // 48 KB shared
  EXPECT_EQ(spec.constant_bytes, 64u << 10);  // 64 KB constant
  const PerfModel model;
  EXPECT_DOUBLE_EQ(model.coalesced_bytes_per_sec, 82.0e9);
  EXPECT_DOUBLE_EQ(model.random_bytes_per_sec, 3.2e9);
}

}  // namespace
}  // namespace gsnp::device
