// Unit tests for the filesystem fault-injection shim (src/common/fs_fault.hpp)
// and the atomic-publication primitives it guards: plan trigger semantics,
// the JSON plan codec (FORMATS.md §13), deterministic seeded short writes,
// category-scoped op counting with path filters, and the exact residue each
// fault kind leaves behind write_file_atomic (what fsck later cleans up).

#include <gtest/gtest.h>

#include <cerrno>
#include <filesystem>
#include <fstream>

#include "src/common/atomic_file.hpp"
#include "src/common/fs_fault.hpp"
#include "src/common/json.hpp"

namespace gsnp {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in), {});
}

/// Every test runs against a fresh temp dir and leaves the process-global
/// injector disarmed, no matter how it exits.
class FsFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fsfault::disarm();
    dir_ = fs::temp_directory_path() / "gsnp_fsfault_test";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override {
    fsfault::disarm();
    fs::remove_all(dir_);
  }

  FsFaultPlan plan(FsFaultKind kind, i64 at = 0, i64 count = 1,
                   const std::string& filter = "") {
    FsFaultPlan p;
    p.kind = kind;
    p.trigger_at = at;
    p.fault_count = count;
    p.path_filter = filter;
    return p;
  }

  fs::path dir_;
};

TEST_F(FsFaultTest, PlanHitsMirrorsDeviceFaultPlan) {
  FsFaultPlan p = plan(FsFaultKind::kEio, 2, 3);
  EXPECT_FALSE(p.hits(0));
  EXPECT_FALSE(p.hits(1));
  EXPECT_TRUE(p.hits(2));
  EXPECT_TRUE(p.hits(4));
  EXPECT_FALSE(p.hits(5));

  p.fault_count = -1;  // every matching op from the trigger on
  EXPECT_TRUE(p.hits(2));
  EXPECT_TRUE(p.hits(1'000'000));
  EXPECT_FALSE(p.hits(1));

  FsFaultPlan off;  // kNone: never enabled, never hits
  EXPECT_FALSE(off.enabled());
  EXPECT_FALSE(off.hits(0));
}

TEST_F(FsFaultTest, KindNamesRoundTrip) {
  for (const FsFaultKind kind :
       {FsFaultKind::kNone, FsFaultKind::kEnospc, FsFaultKind::kEio,
        FsFaultKind::kShortWrite, FsFaultKind::kTornRename,
        FsFaultKind::kFsyncFail}) {
    const auto back = fs_fault_kind_from_name(fs_fault_kind_name(kind));
    ASSERT_TRUE(back.has_value()) << fs_fault_kind_name(kind);
    EXPECT_EQ(*back, kind);
  }
  EXPECT_FALSE(fs_fault_kind_from_name("meteor_strike").has_value());
}

TEST_F(FsFaultTest, JsonPlanRoundTripsAndRejectsMalformed) {
  FsFaultPlan p = plan(FsFaultKind::kShortWrite, 3, 2, "manifest");
  p.seed = 99;
  std::ostringstream os;
  encode_fs_fault_plan(os, p);
  const FsFaultPlan back = fs_fault_plan_from_json(json::parse(os.str()));
  EXPECT_EQ(back.kind, p.kind);
  EXPECT_EQ(back.trigger_at, p.trigger_at);
  EXPECT_EQ(back.fault_count, p.fault_count);
  EXPECT_EQ(back.seed, p.seed);
  EXPECT_EQ(back.path_filter, p.path_filter);

  // Minimal plan: kind alone, everything else defaulted.
  const FsFaultPlan minimal =
      fs_fault_plan_from_json(json::parse(R"({"kind":"enospc"})"));
  EXPECT_EQ(minimal.kind, FsFaultKind::kEnospc);
  EXPECT_EQ(minimal.trigger_at, 0);
  EXPECT_EQ(minimal.fault_count, 1);

  for (const char* bad : {
           R"({"kind":"warp_failure"})",   // unknown kind
           R"({"kind":"eio","at":-1})",    // negative trigger
           R"({"kind":"eio","count":0})",  // zero faults is meaningless
           R"({"kind":"eio","bogus":1})",  // unknown key (schema is closed)
           R"({"at":1})",                  // kind is required
       })
    EXPECT_THROW(fs_fault_plan_from_json(json::parse(bad)), Error) << bad;
}

TEST_F(FsFaultTest, DisarmedHooksPassThrough) {
  EXPECT_FALSE(fsfault::armed());
  const fs::path target = dir_ / "plain.txt";
  write_file_atomic(target, "hello");
  EXPECT_EQ(slurp(target), "hello");
  EXPECT_FALSE(fs::exists(dir_ / "plain.txt.part"));
  EXPECT_EQ(fsfault::injected(), 0u);
  EXPECT_EQ(fsfault::matched_ops(), 0u);
}

TEST_F(FsFaultTest, EnospcFaultsTheChosenWriteOnly) {
  // Second write (seq 1) to a path containing "victim" fails; everything
  // else, including non-matching paths, is untouched.
  fsfault::arm(plan(FsFaultKind::kEnospc, 1, 1, "victim"));

  write_file_atomic(dir_ / "bystander.txt", "safe");   // no "victim": no count
  write_file_atomic(dir_ / "victim_a.txt", "first");   // seq 0: passes

  try {
    write_file_atomic(dir_ / "victim_b.txt", "second");  // seq 1: faults
    FAIL() << "expected FsFaultError";
  } catch (const FsFaultError& e) {
    EXPECT_EQ(e.kind(), FsFaultKind::kEnospc);
    EXPECT_EQ(e.error_number(), ENOSPC);
    EXPECT_EQ(e.sequence(), 1u);
    EXPECT_NE(e.path().find("victim_b"), std::string::npos);
  }
  EXPECT_EQ(slurp(dir_ / "bystander.txt"), "safe");
  EXPECT_EQ(slurp(dir_ / "victim_a.txt"), "first");
  EXPECT_FALSE(fs::exists(dir_ / "victim_b.txt"));  // never published
  // ENOSPC refuses before writing: the staged .part exists but is empty.
  EXPECT_TRUE(fs::exists(dir_ / "victim_b.txt.part"));
  EXPECT_TRUE(fs::is_empty(dir_ / "victim_b.txt.part"));
  EXPECT_EQ(fsfault::injected(), 1u);

  // Burst exhausted (fault_count=1): the next matching write succeeds.
  write_file_atomic(dir_ / "victim_c.txt", "third");
  EXPECT_EQ(slurp(dir_ / "victim_c.txt"), "third");
}

TEST_F(FsFaultTest, ShortWriteLeavesSeededStrictPrefixOnDisk) {
  const std::string payload(733, 'x');
  const auto run_once = [&](u64 seed) {
    FsFaultPlan p = plan(FsFaultKind::kShortWrite, 0, 1, "torn");
    p.seed = seed;
    fsfault::arm(p);
    EXPECT_THROW(write_file_atomic(dir_ / "torn.bin", payload), FsFaultError);
    fsfault::disarm();
    const std::string kept = slurp(dir_ / "torn.bin.part");
    fs::remove(dir_ / "torn.bin.part");
    return kept;
  };

  const std::string a = run_once(7);
  EXPECT_LT(a.size(), payload.size());  // strictly torn
  EXPECT_EQ(a, payload.substr(0, a.size()));
  EXPECT_FALSE(fs::exists(dir_ / "torn.bin"));  // target never appeared

  EXPECT_EQ(run_once(7).size(), a.size());  // same seed -> same tear point
}

TEST_F(FsFaultTest, TornRenameStagesFullPayloadWithoutPublishing) {
  fsfault::arm(plan(FsFaultKind::kTornRename, 0, 1, ""));
  EXPECT_THROW(write_file_atomic(dir_ / "out.json", "{\"k\":1}"),
               FsFaultError);
  // The write and fsync both succeeded — only the rename was torn, so the
  // complete payload sits in the .part exactly as a crash-at-rename leaves.
  EXPECT_EQ(slurp(dir_ / "out.json.part"), "{\"k\":1}");
  EXPECT_FALSE(fs::exists(dir_ / "out.json"));

  fsfault::disarm();
  write_file_atomic(dir_ / "out.json", "{\"k\":1}");  // clean retry publishes
  EXPECT_EQ(slurp(dir_ / "out.json"), "{\"k\":1}");
}

TEST_F(FsFaultTest, FsyncFailureSurfacesTyped) {
  fsfault::arm(plan(FsFaultKind::kFsyncFail, 0, 1, ".part"));
  try {
    write_file_atomic(dir_ / "durable.txt", "payload");
    FAIL() << "expected FsFaultError";
  } catch (const FsFaultError& e) {
    EXPECT_EQ(e.kind(), FsFaultKind::kFsyncFail);
    EXPECT_EQ(e.error_number(), EIO);
  }
  EXPECT_FALSE(fs::exists(dir_ / "durable.txt"));
  EXPECT_EQ(slurp(dir_ / "durable.txt.part"), "payload");
}

TEST_F(FsFaultTest, CategoriesCountIndependently) {
  // A rename-kind plan must not consume write ops, and vice versa: filter
  // matches everything, trigger at the 3rd rename — the three writes that
  // precede it are not renames and must not advance the counter.
  fsfault::arm(plan(FsFaultKind::kTornRename, 2, 1, ""));
  write_file_atomic(dir_ / "a.txt", "a");  // rename seq 0
  write_file_atomic(dir_ / "b.txt", "b");  // rename seq 1
  EXPECT_THROW(write_file_atomic(dir_ / "c.txt", "c"), FsFaultError);
  EXPECT_EQ(fsfault::matched_ops(), 3u);  // renames only
  EXPECT_EQ(fsfault::injected(), 1u);
  EXPECT_EQ(slurp(dir_ / "a.txt"), "a");
  EXPECT_EQ(slurp(dir_ / "b.txt"), "b");
}

TEST_F(FsFaultTest, RealStreamFailureRaisesTypedEio) {
  // Not injection: an ofstream that was never opened is a failed stream, and
  // fsfault::write must refuse to let it fail silently even when disarmed.
  std::ofstream dead;  // closed stream: badbit on write
  EXPECT_THROW(fsfault::write(dead, dir_ / "ghost.txt", "bytes"),
               FsFaultError);
}

}  // namespace
}  // namespace gsnp
