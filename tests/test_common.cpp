// Unit tests for src/common: types, RNG, bit I/O, strings, phred, timers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "src/common/bitio.hpp"
#include "src/common/crc32.hpp"
#include "src/common/error.hpp"
#include "src/common/phred.hpp"
#include "src/common/rng.hpp"
#include "src/common/strings.hpp"
#include "src/common/timer.hpp"
#include "src/common/types.hpp"

namespace gsnp {
namespace {

// ---- types -----------------------------------------------------------------

TEST(Types, BaseCharRoundTrip) {
  for (u8 b = 0; b < kNumBases; ++b)
    EXPECT_EQ(base_from_char(char_from_base(b)), b);
}

TEST(Types, BaseFromCharHandlesCase) {
  EXPECT_EQ(base_from_char('a'), base_from_char('A'));
  EXPECT_EQ(base_from_char('t'), base_from_char('T'));
  EXPECT_EQ(base_from_char('g'), base_from_char('G'));
  EXPECT_EQ(base_from_char('c'), base_from_char('C'));
}

TEST(Types, InvalidBaseMapsToN) {
  EXPECT_EQ(base_from_char('N'), kInvalidBase);
  EXPECT_EQ(base_from_char('X'), kInvalidBase);
  EXPECT_EQ(char_from_base(kInvalidBase), 'N');
}

TEST(Types, ComplementPairsAreWatsonCrick) {
  EXPECT_EQ(char_from_base(complement(base_from_char('A'))), 'T');
  EXPECT_EQ(char_from_base(complement(base_from_char('T'))), 'A');
  EXPECT_EQ(char_from_base(complement(base_from_char('C'))), 'G');
  EXPECT_EQ(char_from_base(complement(base_from_char('G'))), 'C');
}

TEST(Types, ComplementIsInvolution) {
  for (u8 b = 0; b < kNumBases; ++b) EXPECT_EQ(complement(complement(b)), b);
}

TEST(Types, TransitionsAreAGAndCT) {
  const u8 A = base_from_char('A'), G = base_from_char('G');
  const u8 C = base_from_char('C'), T = base_from_char('T');
  EXPECT_TRUE(is_transition(A, G));
  EXPECT_TRUE(is_transition(G, A));
  EXPECT_TRUE(is_transition(C, T));
  EXPECT_FALSE(is_transition(A, C));
  EXPECT_FALSE(is_transition(A, T));
  EXPECT_FALSE(is_transition(G, C));
  EXPECT_FALSE(is_transition(A, A));
}

TEST(Types, GenotypeRankRoundTrip) {
  int rank = 0;
  for (u8 a1 = 0; a1 < kNumBases; ++a1) {
    for (u8 a2 = a1; a2 < kNumBases; ++a2) {
      EXPECT_EQ(genotype_rank(a1, a2), rank);
      const Genotype g = genotype_from_rank(rank);
      EXPECT_EQ(g.allele1, a1);
      EXPECT_EQ(g.allele2, a2);
      ++rank;
    }
  }
  EXPECT_EQ(rank, kNumGenotypes);
}

TEST(Types, GenotypeToString) {
  EXPECT_EQ((Genotype{0, 2}.to_string()), "AG");
  EXPECT_EQ((Genotype{3, 3}.to_string()), "TT");
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a() == b());
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.uniform(17), 17u);
}

TEST(Rng, UniformCoversRange) {
  Rng rng(9);
  std::set<u64> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformRangeInclusive) {
  Rng rng(17);
  std::set<i64> seen;
  for (int i = 0; i < 1000; ++i) {
    const i64 v = rng.uniform_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

// ---- bitio ------------------------------------------------------------------

TEST(BitIo, SingleBits) {
  BitWriter bw;
  const std::vector<int> bits = {1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1};
  for (const int b : bits) bw.write(static_cast<u64>(b), 1);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (const int b : bits) EXPECT_EQ(br.read(1), static_cast<u64>(b));
}

class BitIoWidth : public ::testing::TestWithParam<int> {};

TEST_P(BitIoWidth, RoundTripRandomValues) {
  const int width = GetParam();
  Rng rng(static_cast<u64>(width) * 1000 + 5);
  std::vector<u64> values(257);
  const u64 mask = width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  for (auto& v : values) v = rng() & mask;

  BitWriter bw;
  for (const u64 v : values) bw.write(v, width);
  const auto bytes = bw.finish();
  BitReader br(bytes);
  for (const u64 v : values) EXPECT_EQ(br.read_wide(width), v);
}

INSTANTIATE_TEST_SUITE_P(Widths, BitIoWidth,
                         ::testing::Values(1, 2, 3, 5, 7, 8, 9, 13, 16, 21, 31,
                                           32, 33, 47, 57, 63, 64));

TEST(BitIo, WriteMasksHighBits) {
  BitWriter bw;
  bw.write(0xFF, 4);  // only low 4 bits should be kept
  bw.write(0x0, 4);
  const auto bytes = bw.finish();
  ASSERT_EQ(bytes.size(), 1u);
  EXPECT_EQ(bytes[0], 0x0F);
}

TEST(BitIo, BitCountTracksBits) {
  BitWriter bw;
  bw.write(1, 3);
  EXPECT_EQ(bw.bit_count(), 3u);
  bw.write(1, 13);
  EXPECT_EQ(bw.bit_count(), 16u);
}

TEST(BitIo, ReaderThrowsPastEnd) {
  const std::vector<u8> one_byte = {0xAB};
  BitReader br(one_byte);
  br.read(8);
  EXPECT_THROW(br.read(1), Error);
}

TEST(BitIo, BitsFor) {
  EXPECT_EQ(bits_for(1), 1);
  EXPECT_EQ(bits_for(2), 1);
  EXPECT_EQ(bits_for(3), 2);
  EXPECT_EQ(bits_for(4), 2);
  EXPECT_EQ(bits_for(5), 3);
  EXPECT_EQ(bits_for(256), 8);
  EXPECT_EQ(bits_for(257), 9);
}

TEST(Varint, RoundTripBoundaries) {
  const std::vector<u64> values = {0,   1,   127,        128,
                                   255, 300, 16383,      16384,
                                   1ULL << 32, ~0ULL};
  std::vector<u8> buf;
  for (const u64 v : values) varint_append(buf, v);
  std::size_t pos = 0;
  for (const u64 v : values) EXPECT_EQ(varint_read(buf, pos), v);
  EXPECT_EQ(pos, buf.size());
}

TEST(Varint, ThrowsOnTruncation) {
  std::vector<u8> buf;
  varint_append(buf, 1ULL << 40);
  buf.pop_back();
  std::size_t pos = 0;
  EXPECT_THROW(varint_read(buf, pos), Error);
}

// ---- strings -----------------------------------------------------------------

TEST(Strings, SplitPreservesEmptyFields) {
  const auto fields = split("a\t\tb\t", '\t');
  ASSERT_EQ(fields.size(), 4u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "");
  EXPECT_EQ(fields[2], "b");
  EXPECT_EQ(fields[3], "");
}

TEST(Strings, SplitSingleField) {
  const auto fields = split("hello", ',');
  ASSERT_EQ(fields.size(), 1u);
  EXPECT_EQ(fields[0], "hello");
}

TEST(Strings, Trim) {
  EXPECT_EQ(trim("  x  "), "x");
  EXPECT_EQ(trim("\r\n"), "");
  EXPECT_EQ(trim("a b"), "a b");
  EXPECT_EQ(trim(""), "");
}

TEST(Strings, ParseInt) {
  EXPECT_EQ(parse_int<int>("42"), 42);
  EXPECT_EQ(parse_int<i64>("-7"), -7);
  EXPECT_THROW(parse_int<int>("4x"), Error);
  EXPECT_THROW(parse_int<int>(""), Error);
  EXPECT_THROW(parse_int<u32>("99999999999999"), Error);
}

TEST(Strings, ParseDouble) {
  EXPECT_DOUBLE_EQ(parse_double("0.25"), 0.25);
  EXPECT_DOUBLE_EQ(parse_double("-1e3"), -1000.0);
  EXPECT_THROW(parse_double("abc"), Error);
}

// ---- phred ---------------------------------------------------------------------

TEST(Phred, ErrorProbabilities) {
  EXPECT_DOUBLE_EQ(phred_to_error(0), 1.0);
  EXPECT_NEAR(phred_to_error(10), 0.1, 1e-12);
  EXPECT_NEAR(phred_to_error(30), 0.001, 1e-12);
}

TEST(Phred, ErrorToPhredInverse) {
  for (int q = 1; q < kQualityLevels; ++q)
    EXPECT_EQ(error_to_phred(phred_to_error(q)), q);
}

TEST(Phred, CharRoundTrip) {
  for (int q = 0; q < kQualityLevels; ++q)
    EXPECT_EQ(quality_from_char(quality_to_char(q)), q);
}

TEST(Phred, ClampQuality) {
  EXPECT_EQ(clamp_quality(-5), 0);
  EXPECT_EQ(clamp_quality(1000), kQualityLevels - 1);
  EXPECT_EQ(clamp_quality(33), 33);
}

// ---- error -----------------------------------------------------------------------

TEST(ErrorChecks, CheckThrowsWithLocation) {
  try {
    GSNP_CHECK_MSG(1 == 2, "custom detail " << 42);
    FAIL() << "expected throw";
  } catch (const Error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("custom detail 42"), std::string::npos);
  }
}

// ---- timer ------------------------------------------------------------------------

TEST(Timer, StopwatchSetAccumulates) {
  StopwatchSet set;
  set.add("a", 1.5);
  set.add("b", 2.0);
  set.add("a", 0.5);
  EXPECT_DOUBLE_EQ(set.get("a"), 2.0);
  EXPECT_DOUBLE_EQ(set.get("b"), 2.0);
  EXPECT_DOUBLE_EQ(set.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(set.total(), 4.0);
}

TEST(Timer, StopwatchSetPreservesInsertionOrder) {
  StopwatchSet set;
  set.add("z", 1);
  set.add("a", 1);
  set.add("m", 1);
  ASSERT_EQ(set.entries().size(), 3u);
  EXPECT_EQ(set.entries()[0].first, "z");
  EXPECT_EQ(set.entries()[1].first, "a");
  EXPECT_EQ(set.entries()[2].first, "m");
}

TEST(Timer, ScopeAddsElapsed) {
  StopwatchSet set;
  {
    const auto scope = set.scope("x");
  }
  EXPECT_GE(set.get("x"), 0.0);
  EXPECT_LT(set.get("x"), 1.0);
}

TEST(Timer, StopwatchSetConcurrentAddsAreExact) {
  // Regression: StopwatchSet had no synchronization while the engines use it
  // inside and around OpenMP regions — concurrent add() was a data race on
  // the entries vector.  Hammer it from OpenMP workers across a few names
  // (forcing both the insert and the accumulate path) and check nothing is
  // lost, duplicated or torn.
  StopwatchSet set;
  constexpr int kIters = 20'000;
  const char* names[] = {"read", "count", "likeli", "post", "output"};
#pragma omp parallel for schedule(static)
  for (int i = 0; i < kIters; ++i) {
    set.add(names[i % 5], 1.0);
    if (i % 100 == 0) (void)set.total();  // concurrent reads too
  }
  for (const char* name : names) EXPECT_DOUBLE_EQ(set.get(name), kIters / 5.0);
  EXPECT_DOUBLE_EQ(set.total(), static_cast<double>(kIters));
  EXPECT_EQ(set.entries().size(), 5u);

  // Scopes from concurrent workers must also be safe (the engine pattern).
  StopwatchSet scoped;
#pragma omp parallel for schedule(dynamic, 8)
  for (int i = 0; i < 256; ++i) {
    const auto scope = scoped.scope(names[i % 5]);
  }
  EXPECT_EQ(scoped.entries().size(), 5u);
  EXPECT_GE(scoped.total(), 0.0);
}

// ---- crc32 -----------------------------------------------------------------

TEST(Crc32, KnownVector) {
  // The IEEE CRC-32 check value: crc32("123456789") == 0xCBF43926.
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  std::vector<u8> data(1337);
  Rng rng(5);
  for (auto& b : data) b = static_cast<u8>(rng.uniform(256));
  const u32 oneshot = crc32(data.data(), data.size());

  Crc32 crc;
  // Feed in uneven slices, crossing the slicing-by-4 alignment boundaries.
  std::size_t at = 0;
  for (const std::size_t step : {1u, 3u, 4u, 7u, 64u, 1000u, 258u}) {
    crc.update(data.data() + at, std::min(step, data.size() - at));
    at += std::min(step, data.size() - at);
  }
  EXPECT_EQ(at, data.size());
  EXPECT_EQ(crc.value(), oneshot);
}

TEST(Crc32, DetectsSingleBitFlips) {
  std::vector<u8> data(256);
  Rng rng(9);
  for (auto& b : data) b = static_cast<u8>(rng.uniform(256));
  const u32 clean = crc32(data.data(), data.size());
  for (int trial = 0; trial < 64; ++trial) {
    auto copy = data;
    copy[rng.uniform(copy.size())] ^= static_cast<u8>(1u << rng.uniform(8));
    if (copy == data) continue;
    EXPECT_NE(crc32(copy.data(), copy.size()), clean);
  }
}

}  // namespace
}  // namespace gsnp
