// Tests for the dense (base_occ) and sparse (base_word) aligned-base
// representations, including the key property: sorting base_word keys
// reproduces Algorithm 1's canonical traversal order.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/common/rng.hpp"
#include "src/core/base_occ.hpp"
#include "src/core/base_word.hpp"

namespace gsnp::core {
namespace {

AlignedBase random_base(Rng& rng) {
  AlignedBase ab;
  ab.base = static_cast<u8>(rng.uniform(kNumBases));
  ab.quality = static_cast<u8>(rng.uniform(kQualityLevels));
  ab.coord = static_cast<u16>(rng.uniform(kMaxReadLen));
  ab.strand = static_cast<Strand>(rng.uniform(kNumStrands));
  return ab;
}

// ---- dense ------------------------------------------------------------------

TEST(BaseOcc, MatrixSizeMatchesPaper) {
  // 4 x 64 x 256 x 2 = 131,072 one-byte counters per site (§IV-B).
  EXPECT_EQ(kBaseOccPerSite, 131072u);
}

TEST(BaseOcc, IndexIsBijective) {
  std::vector<bool> seen(kBaseOccPerSite, false);
  for (int b = 0; b < kNumBases; ++b)
    for (int s = 0; s < kQualityLevels; ++s)
      for (int c = 0; c < kMaxReadLen; ++c)
        for (int st = 0; st < kNumStrands; ++st) {
          const u64 idx = base_occ_index(b, s, c, st);
          ASSERT_LT(idx, kBaseOccPerSite);
          ASSERT_FALSE(seen[idx]);
          seen[idx] = true;
        }
}

TEST(BaseOccWindow, AddAndRecycle) {
  BaseOccWindow window(4);
  AlignedBase ab;
  ab.base = 2;
  ab.quality = 30;
  ab.coord = 17;
  ab.strand = Strand::kReverse;
  window.add(1, ab);
  window.add(1, ab);
  EXPECT_EQ(window.site(1)[base_occ_index(2, 30, 17, 1)], 2);
  EXPECT_EQ(window.site(0)[base_occ_index(2, 30, 17, 1)], 0);
  window.recycle();
  EXPECT_EQ(window.site(1)[base_occ_index(2, 30, 17, 1)], 0);
}

TEST(BaseOccWindow, CounterSaturatesInsteadOfWrapping) {
  BaseOccWindow window(1);
  AlignedBase ab;
  for (int i = 0; i < 300; ++i) window.add(0, ab);
  EXPECT_EQ(window.site(0)[base_occ_index(0, 0, 0, 0)], 255);
}

TEST(BaseOccWindow, BytesMatchWindowSize) {
  BaseOccWindow window(10);
  EXPECT_EQ(window.bytes(), 10 * kBaseOccPerSite);
}

// ---- sparse ------------------------------------------------------------------------

TEST(BaseWord, PackUnpackRoundTripAllFields) {
  // Exhaustive over base/strand, sampled over score/coord.
  for (u8 base = 0; base < kNumBases; ++base)
    for (int strand = 0; strand < kNumStrands; ++strand)
      for (u8 quality : {0, 1, 31, 62, 63})
        for (u16 coord : {0, 1, 128, 254, 255}) {
          const AlignedBase ab{base, quality, coord,
                               static_cast<Strand>(strand)};
          EXPECT_EQ(base_word_unpack(base_word_pack(ab)), ab);
        }
}

TEST(BaseWord, PaperExampleLayout) {
  // Fig. 3: word = base<<15 | (inverted score)<<9 | coord<<1 | strand.
  AlignedBase ab;
  ab.base = 1;
  ab.quality = 63 - 16;  // stored score field becomes 16
  ab.coord = 10;
  ab.strand = static_cast<Strand>(1);
  EXPECT_EQ(base_word_pack(ab), (1u << 15 | 16u << 9 | 10u << 1 | 1u));
}

TEST(BaseWord, SortedOrderIsCanonical) {
  // THE key property (§IV-B/Fig 3): ascending sort of packed words yields
  // base ascending, then score DESCENDING, then coord, then strand — exactly
  // Algorithm 1's traversal order.
  Rng rng(5);
  std::vector<u32> words(3000);
  for (auto& w : words) w = base_word_pack(random_base(rng));
  std::sort(words.begin(), words.end());

  for (std::size_t i = 1; i < words.size(); ++i) {
    const AlignedBase a = base_word_unpack(words[i - 1]);
    const AlignedBase b = base_word_unpack(words[i]);
    if (a.base != b.base) {
      EXPECT_LT(a.base, b.base);
    } else if (a.quality != b.quality) {
      EXPECT_GT(a.quality, b.quality);  // score descending
    } else if (a.coord != b.coord) {
      EXPECT_LT(a.coord, b.coord);
    } else {
      EXPECT_LE(static_cast<int>(a.strand), static_cast<int>(b.strand));
    }
  }
}

TEST(BaseWord, KeysFitSortPadValue) {
  // Every possible key must stay below the batch-sort padding value.
  AlignedBase ab;
  ab.base = 3;
  ab.quality = 0;  // inverted -> max score field
  ab.coord = 255;
  ab.strand = static_cast<Strand>(1);
  EXPECT_LT(base_word_pack(ab), 0xFFFFFFFFu);
  EXPECT_LT(base_word_pack(ab), 1u << 18);
}

TEST(BaseWordWindow, CsrAccessors) {
  BaseWordWindow window(3);
  window.offsets = {0, 2, 2, 5};
  window.words = {10, 11, 20, 21, 22};
  EXPECT_EQ(window.window_size(), 3u);
  EXPECT_EQ(window.size_of(0), 2u);
  EXPECT_EQ(window.size_of(1), 0u);
  EXPECT_EQ(window.site(2).size(), 3u);
  EXPECT_EQ(window.site(2)[0], 20u);
}

TEST(BaseWordWindow, ResetClearsContents) {
  BaseWordWindow window(2);
  window.offsets = {0, 1, 2};
  window.words = {1, 2};
  window.reset(4);
  EXPECT_EQ(window.window_size(), 4u);
  EXPECT_TRUE(window.words.empty());
  for (const u64 off : window.offsets) EXPECT_EQ(off, 0u);
}

TEST(Sparsity, TypicalDepthGivesTinyNonZeroFraction) {
  // Formula 2 (§IV-B): at depth X, non-zero fraction ~= X / 131072 <= 0.08%.
  const double depth = 100.0;
  EXPECT_LE(depth / static_cast<double>(kBaseOccPerSite), 0.0008);
}

}  // namespace
}  // namespace gsnp::core
