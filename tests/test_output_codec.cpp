// Tests for the 17-column output compression: window frames, file container,
// device/host parity, and the decompression reader API.

#include <gtest/gtest.h>

#include <filesystem>

#include "src/common/rng.hpp"
#include "src/compress/device_rledict.hpp"
#include <cmath>

#include "src/core/consistency.hpp"
#include "src/core/output_codec.hpp"
#include "src/core/ranksum.hpp"

namespace gsnp::core {
namespace {

namespace fs = std::filesystem;

/// Rows shaped like real output: mostly hom-ref with high-quality stats and
/// occasional SNPs / uncovered sites / N reference bases.
std::vector<SnpRow> realistic_rows(u64 n, u64 start_pos, u64 seed) {
  Rng rng(seed);
  std::vector<SnpRow> rows(n);
  for (u64 i = 0; i < n; ++i) {
    SnpRow& r = rows[i];
    r.pos = start_pos + i;
    const bool n_ref = rng.bernoulli(0.002);
    r.ref_base = n_ref ? kInvalidBase : static_cast<u8>(rng.uniform(4));
    const bool covered = rng.bernoulli(0.9);
    if (!covered || n_ref) {
      r.genotype_rank =
          n_ref ? i8{-1}
                : static_cast<i8>(genotype_rank(r.ref_base, r.ref_base));
      r.rank_sum_p = 1.0;
      continue;
    }
    const bool snp = rng.bernoulli(0.001);
    const u8 alt = static_cast<u8>((r.ref_base + 1 + rng.uniform(3)) & 3);
    r.genotype_rank = static_cast<i8>(
        snp ? genotype_rank(std::min(r.ref_base, alt), std::max(r.ref_base, alt))
            : genotype_rank(r.ref_base, r.ref_base));
    r.quality = static_cast<u16>(rng.uniform(100));
    r.best_base = r.ref_base;
    r.best_avg_quality = static_cast<u16>(24 + 3 * rng.uniform(6));
    r.best_uniq_count = static_cast<u32>(5 + rng.uniform(10));
    r.best_all_count = r.best_uniq_count + static_cast<u32>(rng.uniform(2));
    if (snp) {
      r.second_base = alt;
      r.second_avg_quality = static_cast<u16>(20 + rng.uniform(20));
      r.second_uniq_count = static_cast<u32>(1 + rng.uniform(5));
      r.second_all_count = r.second_uniq_count;
    }
    r.depth = r.best_all_count + r.second_all_count;
    r.rank_sum_p = round_p(rng.uniform_double());
    r.copy_number =
        std::round(100.0 * (1.0 + rng.uniform_double() * 0.2)) / 100.0;
    r.in_dbsnp = rng.bernoulli(0.01);
  }
  return rows;
}

class WindowCodec : public ::testing::TestWithParam<u64> {};

TEST_P(WindowCodec, RoundTrip) {
  const auto rows = realistic_rows(3000, 64000, GetParam());
  const auto frame = compress_snp_window(rows, host_rle_dict());
  const auto decoded = decompress_snp_window(frame);
  ASSERT_EQ(decoded.size(), rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i)
    ASSERT_EQ(decoded[i], rows[i]) << "row " << i;
}

TEST_P(WindowCodec, DeviceRleDictProducesIdenticalFrames) {
  const auto rows = realistic_rows(2000, 0, GetParam());
  const auto host_frame = compress_snp_window(rows, host_rle_dict());
  device::Device dev;
  const RleDictFn device_rle = [&dev](std::span<const u32> col,
                                      std::vector<u8>& out) {
    compress::device_encode_rle_dict(dev, col, out);
  };
  const auto device_frame = compress_snp_window(rows, device_rle);
  EXPECT_EQ(device_frame, host_frame);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WindowCodec, ::testing::Values(1, 2, 3));

TEST(WindowCodecEdge, EmptyWindow) {
  const auto frame =
      compress_snp_window(std::vector<SnpRow>{}, host_rle_dict());
  EXPECT_TRUE(decompress_snp_window(frame).empty());
}

TEST(WindowCodecEdge, SingleRow) {
  const auto rows = realistic_rows(1, 42, 9);
  const auto frame = compress_snp_window(rows, host_rle_dict());
  const auto decoded = decompress_snp_window(frame);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0], rows[0]);
}

TEST(WindowCodecEdge, TrailingGarbageDetected) {
  const auto rows = realistic_rows(10, 0, 10);
  auto frame = compress_snp_window(rows, host_rle_dict());
  frame.push_back(0xAB);
  EXPECT_THROW(decompress_snp_window(frame), Error);
}

TEST(CompressionRatio, BeatsTextByALot) {
  // The Fig 9(a) effect: custom columnar compression vs the text format.
  const auto rows = realistic_rows(20000, 0, 21);
  const auto frame = compress_snp_window(rows, host_rle_dict());
  u64 text_bytes = 0;
  for (const auto& r : rows) text_bytes += format_snp_row("chr1", r).size() + 1;
  EXPECT_LT(frame.size() * 5, text_bytes);
}

// ---- file container -----------------------------------------------------------------

TEST(OutputFile, MultiWindowRoundTrip) {
  const fs::path path = fs::temp_directory_path() / "gsnp_out_test.bin";
  const auto w1 = realistic_rows(500, 0, 31);
  const auto w2 = realistic_rows(500, 500, 32);
  {
    SnpOutputWriter writer(path, "chrF");
    writer.write_window(w1, host_rle_dict());
    writer.write_window(w2, host_rle_dict());
    EXPECT_GT(writer.finish(), 0u);
  }
  SnpOutputReader reader(path);
  EXPECT_EQ(reader.seq_name(), "chrF");
  std::vector<SnpRow> rows;
  ASSERT_TRUE(reader.next_window(rows));
  EXPECT_EQ(rows, w1);
  ASSERT_TRUE(reader.next_window(rows));
  EXPECT_EQ(rows, w2);
  EXPECT_FALSE(reader.next_window(rows));
  fs::remove(path);
}

TEST(OutputFile, BadMagicRejected) {
  const fs::path path = fs::temp_directory_path() / "gsnp_bad_magic.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOTMAGIC and some data";
  }
  EXPECT_THROW(SnpOutputReader reader(path), Error);
  fs::remove(path);
}

TEST(OutputFile, TextWriterRoundTrip) {
  const fs::path path = fs::temp_directory_path() / "gsnp_out_test.txt";
  const auto rows = realistic_rows(300, 0, 41);
  {
    SnpTextWriter writer(path, "chrT");
    writer.write_window(rows);
    writer.finish();
  }
  std::string seq_name;
  const auto parsed = read_snp_text_file(path, seq_name);
  EXPECT_EQ(seq_name, "chrT");
  EXPECT_EQ(parsed, rows);
  fs::remove(path);
}

TEST(OutputFile, ReadSnpOutputSniffsFormat) {
  const fs::path bin = fs::temp_directory_path() / "gsnp_sniff.bin";
  const fs::path txt = fs::temp_directory_path() / "gsnp_sniff.txt";
  const auto rows = realistic_rows(100, 0, 51);
  {
    SnpOutputWriter writer(bin, "chrS");
    writer.write_window(rows, host_rle_dict());
    writer.finish();
    SnpTextWriter twriter(txt, "chrS");
    twriter.write_window(rows);
    twriter.finish();
  }
  std::string name_a, name_b;
  EXPECT_EQ(read_snp_output(bin, name_a), read_snp_output(txt, name_b));
  EXPECT_EQ(name_a, name_b);
  fs::remove(bin);
  fs::remove(txt);
}

}  // namespace
}  // namespace gsnp::core
