// Tests for the score tables: log_table, quality adjustment, p_matrix
// construction, and new_p_matrix (Algorithm 3's precomputation).

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/phred.hpp"
#include "src/common/rng.hpp"
#include "src/core/adjust.hpp"
#include "src/core/log_table.hpp"
#include "src/core/new_pmatrix.hpp"
#include "src/core/pmatrix.hpp"

namespace gsnp::core {
namespace {

// ---- log table ---------------------------------------------------------------

TEST(LogTable, ValuesAreBase10Logs) {
  const auto& table = log_table();
  EXPECT_DOUBLE_EQ(table[1], 0.0);
  EXPECT_DOUBLE_EQ(table[10], 1.0);
  EXPECT_DOUBLE_EQ(table[64], std::log10(64.0));
  EXPECT_DOUBLE_EQ(table[0], 0.0);  // sentinel, never used with dep >= 1
}

TEST(LogTable, CoversPaperRange) {
  // "we calculate all base-10 logarithm results of the 64 integers" (§IV-G).
  EXPECT_EQ(kLogTableSize, 65);
}

TEST(LogTable, SharedInstanceIsStable) {
  EXPECT_EQ(&log_table(), &log_table());
}

// ---- adjust ---------------------------------------------------------------------

TEST(Adjust, FirstObservationKeepsScore) {
  const double* logs = log_table().data();
  for (int q = 0; q < kQualityLevels; ++q)
    EXPECT_EQ(adjust_quality(q, 1, logs), q);
}

TEST(Adjust, PenaltyGrowsWithDependencyCount) {
  const double* logs = log_table().data();
  int prev = adjust_quality(40, 1, logs);
  for (int dep = 2; dep <= 64; dep *= 2) {
    const int q = adjust_quality(40, dep, logs);
    EXPECT_LE(q, prev);
    prev = q;
  }
  // dep=10 -> penalty 10; dep=100 (clamped to 64) -> penalty ~18.
  EXPECT_EQ(adjust_quality(40, 10, logs), 30);
}

TEST(Adjust, ClampsToValidRange) {
  const double* logs = log_table().data();
  EXPECT_EQ(adjust_quality(2, 64, logs), 0);
  EXPECT_GE(adjust_quality(0, 64, logs), 0);
  EXPECT_LT(adjust_quality(63, 1, logs), kQualityLevels);
}

TEST(Adjust, DepCountClampedAtTableEnd) {
  const double* logs = log_table().data();
  EXPECT_EQ(adjust_quality(40, 64, logs), adjust_quality(40, 500, logs));
}

// ---- p_matrix ----------------------------------------------------------------------

TEST(PMatrixIndex, MatchesAlgorithm2Layout) {
  // p1 = q << 12 | coord << 4 | allele << 2 | base.
  EXPECT_EQ(PMatrix::index(0, 0, 0, 0), 0u);
  EXPECT_EQ(PMatrix::index(1, 0, 0, 0), 4096u);
  EXPECT_EQ(PMatrix::index(0, 1, 0, 0), 16u);
  EXPECT_EQ(PMatrix::index(0, 0, 1, 0), 4u);
  EXPECT_EQ(PMatrix::index(0, 0, 0, 1), 1u);
  EXPECT_EQ(PMatrix::index(63, 255, 3, 3), PMatrix::kSize - 1);
}

TEST(PMatrixFinalize, NoDataFallsBackToPhredModel) {
  PMatrixCounter counter;  // empty
  const PMatrix pm = finalize_p_matrix(counter);
  for (const int q : {5, 20, 40}) {
    const double e = phred_to_error(q);
    EXPECT_NEAR(pm.at(q, 10, 0, 0), 1.0 - e, 1e-12);
    EXPECT_NEAR(pm.at(q, 10, 0, 1), e / 3.0, 1e-12);
  }
}

TEST(PMatrixFinalize, RowsSumToOne) {
  PMatrixCounter counter;
  Rng rng(3);
  for (int i = 0; i < 100000; ++i)
    counter.add(static_cast<int>(rng.uniform(kQualityLevels)),
                static_cast<int>(rng.uniform(100)),
                static_cast<int>(rng.uniform(4)),
                static_cast<int>(rng.uniform(4)));
  const PMatrix pm = finalize_p_matrix(counter);
  for (const int q : {0, 17, 63})
    for (const int c : {0, 50, 255})
      for (int a = 0; a < 4; ++a) {
        double total = 0.0;
        for (int o = 0; o < 4; ++o) total += pm.at(q, c, a, o);
        EXPECT_NEAR(total, 1.0, 1e-9);
      }
}

TEST(PMatrixFinalize, HeavyCountsDominatePseudocounts) {
  PMatrixCounter counter;
  // 10000 observations at (q=30, c=5, allele=A): 90% A, 10% C — far from the
  // Phred expectation of 99.9% A.
  for (int i = 0; i < 9000; ++i) counter.add(30, 5, 0, 0);
  for (int i = 0; i < 1000; ++i) counter.add(30, 5, 0, 1);
  const PMatrix pm = finalize_p_matrix(counter);
  EXPECT_NEAR(pm.at(30, 5, 0, 0), 0.9, 0.01);
  EXPECT_NEAR(pm.at(30, 5, 0, 1), 0.1, 0.01);
}

TEST(PMatrixFinalize, AllValuesAreProbabilities) {
  PMatrixCounter counter;
  counter.add(10, 3, 2, 1);
  const PMatrix pm = finalize_p_matrix(counter);
  for (const double v : pm.flat()) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

// ---- new_p_matrix -----------------------------------------------------------------------

TEST(NewPMatrixIndex, MatchesAlgorithm3Layout) {
  // idx = (q << 10 | coord << 2 | base) * 10 + i.
  EXPECT_EQ(NewPMatrix::index(0, 0, 0, 0), 0u);
  EXPECT_EQ(NewPMatrix::index(0, 0, 0, 9), 9u);
  EXPECT_EQ(NewPMatrix::index(0, 0, 1, 0), 10u);
  EXPECT_EQ(NewPMatrix::index(0, 1, 0, 0), 40u);
  EXPECT_EQ(NewPMatrix::index(1, 0, 0, 0), 10240u);
  EXPECT_EQ(NewPMatrix::kSize,
            static_cast<u64>(kQualityLevels) * 1024 * kNumGenotypes);
}

TEST(NewPMatrix, EqualsLikelyUpdateExpression) {
  // Property: every cell equals log10(0.5*p1 + 0.5*p2) of the source matrix
  // (Algorithm 2 vs Algorithm 3 equivalence).
  PMatrixCounter counter;
  Rng rng(9);
  for (int i = 0; i < 20000; ++i)
    counter.add(static_cast<int>(rng.uniform(kQualityLevels)),
                static_cast<int>(rng.uniform(kMaxReadLen)),
                static_cast<int>(rng.uniform(4)),
                static_cast<int>(rng.uniform(4)));
  const PMatrix pm = finalize_p_matrix(counter);
  const NewPMatrix npm(pm);

  for (int trial = 0; trial < 2000; ++trial) {
    const int q = static_cast<int>(rng.uniform(kQualityLevels));
    const int c = static_cast<int>(rng.uniform(kMaxReadLen));
    const int obs = static_cast<int>(rng.uniform(4));
    int combo = 0;
    for (int a1 = 0; a1 < 4; ++a1) {
      for (int a2 = a1; a2 < 4; ++a2) {
        const double expected = std::log10(
            0.5 * pm.at(q, c, a1, obs) + 0.5 * pm.at(q, c, a2, obs));
        // Bit-exact: the table stores exactly this expression (§IV-G).
        EXPECT_EQ(npm.at(q, c, obs, combo), expected);
        ++combo;
      }
    }
  }
}

TEST(NewPMatrix, TenValuesPerCell) {
  // The table is ten times p_matrix's (q, coord, obs) cell count (§IV-D).
  EXPECT_EQ(NewPMatrix::kSize / NewPMatrix::kCells,
            static_cast<u64>(kNumGenotypes));
}

}  // namespace
}  // namespace gsnp::core
